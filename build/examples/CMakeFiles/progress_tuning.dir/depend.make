# Empty dependencies file for progress_tuning.
# This may be replaced when dependencies are built.
