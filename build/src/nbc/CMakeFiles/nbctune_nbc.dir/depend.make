# Empty dependencies file for nbctune_nbc.
# This may be replaced when dependencies are built.
