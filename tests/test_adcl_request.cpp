// End-to-end tuning through the persistent Request / Timer API in the
// simulator: learning-phase switching, winner quality, payload integrity
// throughout, blocking function-set members, co-tuning, historic learning.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "adcl/adcl.hpp"
#include "mpi/world.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"

using namespace nbctune;
namespace t = nbctune::testing;

namespace {
const net::Platform kIb = net::whale();

std::byte a2a_byte(int s, int d, std::size_t i, int it) {
  return static_cast<std::byte>((s * 37 + d * 101 + int(i) * 3 + it * 11) &
                                0xff);
}

/// Runs the micro-benchmark loop with a tuned request; returns the winner
/// name, total time, and whether payloads stayed correct.
struct TunedRun {
  std::string winner;
  double total_time = 0.0;
  bool data_ok = true;
  int decision_iteration = -1;
  std::map<int, double> scores;
};

TunedRun run_tuned_alltoall(int nprocs, std::size_t block, int iters,
                            adcl::TuningOptions opts,
                            double compute = 200e-6, int progress_calls = 4) {
  TunedRun out;
  t::run_world(kIb, nprocs, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int me = ctx.world_rank();
    const int n = comm.size();
    std::vector<std::byte> sbuf(n * block), rbuf(n * block);
    auto req = adcl::ialltoall_init(ctx, comm, sbuf.data(), rbuf.data(),
                                    block, opts);
    for (int it = 0; it < iters; ++it) {
      for (int d = 0; d < n; ++d)
        for (std::size_t i = 0; i < block; ++i)
          sbuf[d * block + i] = a2a_byte(me, d, i, it);
      req->init();
      for (int p = 0; p < progress_calls; ++p) {
        ctx.compute(compute / progress_calls);
        req->progress();
      }
      req->wait();
      for (int src = 0; src < n && out.data_ok; ++src)
        for (std::size_t i = 0; i < block; ++i)
          if (rbuf[src * block + i] != a2a_byte(src, me, i, it)) {
            out.data_ok = false;
            break;
          }
    }
    if (me == 0) {
      out.winner = req->selection().decided()
                       ? req->current_function().name
                       : "<undecided>";
      out.decision_iteration = req->selection().decision_iteration();
      out.scores = req->selection().scores();
      out.total_time = ctx.now();
    }
  });
  return out;
}

}  // namespace

TEST(Request, LearningPhaseCyclesThenDecides) {
  adcl::TuningOptions opts;
  opts.policy = adcl::PolicyKind::BruteForce;
  opts.tests_per_function = 3;
  auto r = run_tuned_alltoall(4, 1024, 3 * 3 + 5, opts);
  EXPECT_TRUE(r.data_ok);
  EXPECT_NE(r.winner, "<undecided>");
  EXPECT_EQ(r.decision_iteration, 9);  // 3 functions x 3 tests
  EXPECT_EQ(r.scores.size(), 3u);      // every algorithm was measured
}

TEST(Request, DataStaysCorrectAcrossImplementationSwitches) {
  // The learning phase runs a different algorithm per batch; every single
  // iteration must still deliver correct payloads.
  adcl::TuningOptions opts;
  opts.policy = adcl::PolicyKind::BruteForce;
  opts.tests_per_function = 2;
  auto r = run_tuned_alltoall(5, 700, 10, opts);
  EXPECT_TRUE(r.data_ok);
}

TEST(Request, WinnerMatchesBestFixedImplementation) {
  // Verification-run logic (paper §IV-A): the tuned winner must be the
  // implementation with the lowest fixed-run time (or within 5%).
  const int nprocs = 8;
  const std::size_t block = 1024;
  adcl::TuningOptions opts;
  opts.policy = adcl::PolicyKind::BruteForce;
  opts.tests_per_function = 4;
  auto tuned = run_tuned_alltoall(nprocs, block, 20, opts);
  ASSERT_TRUE(tuned.data_ok);

  // Fixed runs: pin each function via force_winner.
  std::map<std::string, double> fixed_times;
  auto fset = adcl::make_ialltoall_functionset();
  for (std::size_t f = 0; f < fset->size(); ++f) {
    double loop_time = 0.0;
    t::run_world(kIb, nprocs, [&](mpi::Ctx& ctx) {
      auto comm = ctx.world().comm_world();
      const int n = comm.size();
      std::vector<std::byte> sbuf(n * block), rbuf(n * block);
      auto req = adcl::ialltoall_init(ctx, comm, sbuf.data(), rbuf.data(),
                                      block, opts);
      req->selection().force_winner(static_cast<int>(f));
      const double t0 = ctx.now();
      for (int it = 0; it < 8; ++it) {
        req->init();
        for (int p = 0; p < 4; ++p) {
          ctx.compute(50e-6);
          req->progress();
        }
        req->wait();
      }
      if (ctx.world_rank() == 0) loop_time = ctx.now() - t0;
    });
    fixed_times[fset->function(f).name] = loop_time;
  }
  double best = 1e30;
  std::string best_name;
  for (const auto& [name, time] : fixed_times) {
    if (time < best) {
      best = time;
      best_name = name;
    }
  }
  EXPECT_LE(fixed_times.at(tuned.winner), best * 1.05)
      << "tuned winner " << tuned.winner << " vs best fixed " << best_name;
}

TEST(Request, TimerDrivesSelection) {
  // Timer-driven mode (paper Fig. 1): the request does not self-time; the
  // timer's start/stop bracketing feeds the samples.
  std::string winner;
  int iterations = 0;
  t::run_world(kIb, 4, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int n = comm.size();
    const std::size_t block = 2048;
    std::vector<std::byte> sbuf(n * block), rbuf(n * block);
    adcl::TuningOptions opts;
    opts.tests_per_function = 2;
    auto req = adcl::ialltoall_init(ctx, comm, sbuf.data(), rbuf.data(),
                                    block, opts);
    adcl::Timer timer(ctx, {req.get()});
    for (int it = 0; it < 10; ++it) {
      timer.start();
      req->init();
      ctx.compute(100e-6);
      req->progress();
      req->wait();
      timer.stop();
    }
    if (ctx.world_rank() == 0) {
      winner = req->selection().decided() ? req->current_function().name
                                          : "<undecided>";
      iterations = req->selection().iterations();
    }
  });
  EXPECT_NE(winner, "<undecided>");
  EXPECT_EQ(iterations, 10);
}

TEST(Request, TimerMisuseThrows) {
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    std::vector<std::byte> b(2 * 64);
    auto req = adcl::ialltoall_init(ctx, comm, b.data(), b.data(), 64);
    adcl::Timer timer(ctx, {req.get()});
    EXPECT_THROW(timer.stop(), std::logic_error);
    timer.start();
    EXPECT_THROW(timer.start(), std::logic_error);
    timer.stop();
    EXPECT_THROW(adcl::Timer(ctx, {}), std::invalid_argument);
  });
}

TEST(Request, BlockingFunctionSetMembers) {
  // Extended function-set (paper §IV-B): blocking implementations join
  // the set with a null wait phase; tuning still works and data stays
  // correct whichever kind wins.
  adcl::TuningOptions opts;
  opts.policy = adcl::PolicyKind::BruteForce;
  opts.tests_per_function = 2;
  bool data_ok = true;
  std::string winner;
  t::run_world(kIb, 4, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int n = comm.size();
    const std::size_t block = 512;
    std::vector<std::byte> sbuf(n * block), rbuf(n * block);
    auto req = adcl::ialltoall_init(ctx, comm, sbuf.data(), rbuf.data(),
                                    block, opts, nullptr,
                                    /*include_blocking=*/true);
    for (int it = 0; it < 14; ++it) {  // 6 functions x 2 + extra
      for (int d = 0; d < n; ++d)
        for (std::size_t i = 0; i < block; ++i)
          sbuf[d * block + i] = a2a_byte(ctx.world_rank(), d, i, it);
      req->init();
      ctx.compute(50e-6);
      req->progress();
      req->wait();
      for (int src = 0; src < n && data_ok; ++src)
        for (std::size_t i = 0; i < block; ++i)
          if (rbuf[src * block + i] != a2a_byte(src, ctx.world_rank(), i, it))
            data_ok = false;
    }
    if (ctx.world_rank() == 0 && req->selection().decided()) {
      winner = req->current_function().name;
    }
  });
  EXPECT_TRUE(data_ok);
  EXPECT_FALSE(winner.empty());
}

TEST(Request, CoTunedRequestsShareDecision) {
  // Two window-slot requests (as in the FFT kernel) share one
  // SelectionState: a single timer sample per iteration tunes both.
  std::string w0, w1;
  t::run_world(kIb, 4, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int n = comm.size();
    const std::size_t block = 1024;
    std::vector<std::byte> s0(n * block), r0(n * block);
    std::vector<std::byte> s1(n * block), r1(n * block);
    adcl::TuningOptions opts;
    opts.tests_per_function = 2;
    auto reqA =
        adcl::ialltoall_init(ctx, comm, s0.data(), r0.data(), block, opts);
    auto reqB = adcl::ialltoall_init(ctx, comm, s1.data(), r1.data(), block,
                                     opts, reqA->selection_ptr());
    adcl::Timer timer(ctx, {reqA.get(), reqB.get()});
    for (int it = 0; it < 8; ++it) {
      timer.start();
      reqA->init();
      reqB->init();
      ctx.compute(100e-6);
      reqA->progress();
      reqA->wait();
      reqB->wait();
      timer.stop();
    }
    if (ctx.world_rank() == 0) {
      w0 = reqA->current_function().name;
      w1 = reqB->current_function().name;
      EXPECT_TRUE(reqA->selection().decided());
      EXPECT_EQ(&reqA->selection(), &reqB->selection());
    }
  });
  EXPECT_EQ(w0, w1);
}

TEST(Request, MismatchedSharedSelectionThrows) {
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    std::vector<std::byte> b(2 * 64);
    auto reqA = adcl::ialltoall_init(ctx, comm, b.data(), b.data(), 64);
    // Binding an ibcast request to the alltoall selection must fail.
    adcl::OpArgs args;
    args.comm = comm;
    args.rbuf = b.data();
    args.bytes = 64;
    EXPECT_THROW(adcl::request_create(ctx, adcl::make_ibcast_functionset(),
                                      args, {}, reqA->selection_ptr()),
                 std::invalid_argument);
  });
}

TEST(Request, LifecycleErrors) {
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    std::vector<std::byte> b(2 * 64);
    auto req = adcl::ialltoall_init(ctx, comm, b.data(), b.data(), 64);
    EXPECT_THROW(req->wait(), std::logic_error);
    req->init();
    EXPECT_THROW(req->init(), std::logic_error);
    req->wait();
  });
}

TEST(History, RoundTripAndReuse) {
  adcl::HistoryStore store;
  // First run records the winner...
  adcl::TuningOptions opts;
  opts.tests_per_function = 2;
  opts.history = &store;
  auto first = run_tuned_alltoall(4, 1024, 10, opts);
  ASSERT_NE(first.winner, "<undecided>");
  EXPECT_EQ(store.size(), 1u);
  // ... a second run skips the learning phase entirely and lands on the
  // stored winner at iteration 0 (paper §IV-B "historic learning").
  auto second = run_tuned_alltoall(4, 1024, 4, opts);
  EXPECT_EQ(second.winner, first.winner);
  EXPECT_EQ(second.decision_iteration, 0);
  EXPECT_TRUE(second.scores.empty());  // nothing was measured
}

TEST(History, FilePersistence) {
  adcl::HistoryStore store;
  store.put(adcl::history_key("whale", "ialltoall", 32, 1024), "pairwise");
  store.put(adcl::history_key("crill", "ibcast", 128, 2048, "pc5"),
            "binomial/seg64k");
  const std::string path = ::testing::TempDir() + "/nbctune_history.txt";
  store.save(path);
  adcl::HistoryStore loaded;
  loaded.load(path);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.get("whale/ialltoall/np32/b1024"), "pairwise");
  EXPECT_EQ(loaded.get("crill/ibcast/np128/b2048/pc5"), "binomial/seg64k");
  EXPECT_FALSE(loaded.get("nope").has_value());
  EXPECT_THROW(loaded.load("/definitely/not/here"), std::runtime_error);
}
