#pragma once

// Non-blocking allgather schedules (linear, ring, recursive doubling —
// the shapes the paper converted from Open MPI to LibNBC schedules).
//
// Buffers: `sbuf` holds this rank's block (`block` bytes); `rbuf` holds n
// blocks, block i ending up with rank i's contribution on every rank.

#include <cstddef>

#include "nbc/schedule.hpp"

namespace nbctune::coll {

nbc::Schedule build_iallgather_linear(int me, int n, const void* sbuf,
                                      void* rbuf, std::size_t block);

nbc::Schedule build_iallgather_ring(int me, int n, const void* sbuf,
                                    void* rbuf, std::size_t block);

/// Recursive doubling; requires n to be a power of two (callers fall back
/// to ring otherwise, mirroring production MPI decision logic).
nbc::Schedule build_iallgather_recursive_doubling(int me, int n,
                                                  const void* sbuf, void* rbuf,
                                                  std::size_t block);

[[nodiscard]] constexpr bool is_pow2(int n) noexcept {
  return n > 0 && (n & (n - 1)) == 0;
}

}  // namespace nbctune::coll
