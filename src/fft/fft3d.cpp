#include "fft/fft3d.hpp"

#include <cassert>
#include <stdexcept>

#include "coll/blocking.hpp"

namespace nbctune::fft {

const char* pattern_name(Pattern p) noexcept {
  switch (p) {
    case Pattern::Pipelined:
      return "pipelined";
    case Pattern::Tiled:
      return "tiled";
    case Pattern::Windowed:
      return "windowed";
    case Pattern::WindowTiled:
      return "window-tiled";
  }
  return "?";
}

const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::Blocking:
      return "MPI(blocking)";
    case Backend::LibNBC:
      return "LibNBC";
    case Backend::Adcl:
      return "ADCL";
  }
  return "?";
}

std::pair<int, int> pattern_params(Pattern p) noexcept {
  switch (p) {
    case Pattern::Pipelined:
      return {2, 1};
    case Pattern::Tiled:
      return {2, 10};
    case Pattern::Windowed:
      return {3, 1};
    case Pattern::WindowTiled:
      return {3, 10};
  }
  return {2, 1};
}

Fft3d::Fft3d(mpi::Ctx& ctx, mpi::Comm comm, Fft3dOptions opt)
    : ctx_(ctx), comm_(std::move(comm)), opt_(opt) {
  nprocs_ = comm_.size();
  me_ = comm_.rank_of_world(ctx_.world_rank());
  if (opt_.n % nprocs_ != 0) {
    throw std::invalid_argument("Fft3d: N must be divisible by P");
  }
  planes_ = opt_.n / nprocs_;
  width_ = opt_.n / nprocs_;
  auto [w, t] = pattern_params(opt_.pattern);
  tile_planes_ = std::min(t, planes_);
  while (planes_ % tile_planes_ != 0) --tile_planes_;  // keep blocks uniform
  tiles_ = planes_ / tile_planes_;
  window_ = std::min(w, tiles_);
  block_ = std::size_t(tile_planes_) * opt_.n * width_ * sizeof(cplx);
  slot_tile_.assign(window_, -1);

  const bool payload = opt_.real_math;
  send_.resize(window_);
  recv_.resize(window_);
  const std::size_t elems_per_buf =
      std::size_t(tile_planes_) * opt_.n * opt_.n;  // n blocks x tile*N*M
  for (int s = 0; s < window_; ++s) {
    if (payload) {
      send_[s].resize(elems_per_buf);
      recv_[s].resize(elems_per_buf);
    }
  }
  if (payload) {
    planes_data_.resize(std::size_t(planes_) * opt_.n * opt_.n);
    pencils_.resize(std::size_t(width_) * opt_.n * opt_.n);
  }

  if (opt_.backend != Backend::Blocking) {
    // One persistent request per window slot.  LibNBC uses the fixed
    // linear algorithm (its default implementation, paper §IV-B); ADCL
    // co-tunes all slots through a shared SelectionState.
    std::vector<adcl::Request*> raw;
    for (int s = 0; s < window_; ++s) {
      auto req = adcl::ialltoall_init(
          ctx_, comm_, payload ? send_[s].data() : nullptr,
          payload ? recv_[s].data() : nullptr, block_, opt_.tuning,
          selection_, opt_.extended_set);
      if (s == 0) selection_ = req->selection_ptr();
      if (opt_.backend == Backend::LibNBC) {
        req->selection().force_winner(
            req->selection().function_set().find_by_name("linear"));
      }
      raw.push_back(req.get());
      reqs_.push_back(std::move(req));
    }
    if (opt_.backend == Backend::Adcl) {
      timer_ = std::make_unique<adcl::Timer>(ctx_, raw);
    }
  }
}

Fft3d::~Fft3d() = default;

void Fft3d::set_local_input(std::vector<cplx> planes) {
  if (!opt_.real_math) {
    throw std::logic_error("set_local_input requires real_math");
  }
  if (planes.size() != planes_data_.size()) {
    throw std::invalid_argument("set_local_input: wrong size");
  }
  planes_data_ = std::move(planes);
}

double Fft3d::copy_cost(std::size_t bytes) const {
  return static_cast<double>(bytes) * ctx_.world().platform().copy_byte_time;
}

void Fft3d::chunked_compute(double seconds, bool progress) {
  const int pc = progress ? std::max(1, opt_.progress_calls) : 1;
  for (int p = 0; p < pc; ++p) {
    ctx_.compute(seconds / pc);
    if (progress) ctx_.progress();
  }
}

void Fft3d::pack_tile(int tile, int slot) {
  // Send block for peer q: my planes of this tile restricted to q's
  // x-range; layout [zl][y][xl], blocks ordered by q.
  if (opt_.real_math) {
    const int n = opt_.n;
    cplx* out = send_[slot].data();
    for (int q = 0; q < nprocs_; ++q) {
      for (int zl = 0; zl < tile_planes_; ++zl) {
        const cplx* plane =
            planes_data_.data() +
            (std::size_t(tile) * tile_planes_ + zl) * n * n;
        for (int y = 0; y < n; ++y) {
          const cplx* row = plane + std::size_t(y) * n + q * width_;
          for (int xl = 0; xl < width_; ++xl) *out++ = row[xl];
        }
      }
    }
  }
  ctx_.compute(copy_cost(block_ * nprocs_));
}

void Fft3d::unpack_tile(int tile, int slot) {
  // Received block from peer q: q's planes of this tile for my x-range;
  // scatter into pencils [xl][y][z] at z = q * planes_ + tile offset.
  if (opt_.real_math) {
    const int n = opt_.n;
    const cplx* in = recv_[slot].data();
    for (int q = 0; q < nprocs_; ++q) {
      for (int zl = 0; zl < tile_planes_; ++zl) {
        const int z = q * planes_ + tile * tile_planes_ + zl;
        for (int y = 0; y < n; ++y) {
          for (int xl = 0; xl < width_; ++xl) {
            pencils_[(std::size_t(xl) * n + y) * n + z] = *in++;
          }
        }
      }
    }
  }
  ctx_.compute(copy_cost(block_ * nprocs_));
}

void Fft3d::start_slot(int slot) {
  if (opt_.backend == Backend::Blocking) {
    coll::blocking_alltoall(ctx_, comm_,
                            opt_.real_math ? send_[slot].data() : nullptr,
                            opt_.real_math ? recv_[slot].data() : nullptr,
                            block_);
  } else {
    reqs_[slot]->init();
  }
}

void Fft3d::wait_slot(int slot, bool inverse) {
  if (slot_tile_[slot] < 0) return;
  if (opt_.backend != Backend::Blocking) reqs_[slot]->wait();
  if (inverse) {
    unpack_tile_inverse(slot_tile_[slot], slot);
  } else {
    unpack_tile(slot_tile_[slot], slot);
  }
  slot_tile_[slot] = -1;
}

void Fft3d::pack_tile_inverse(int tile, int slot) {
  // Mirror of pack_tile: the block for peer q is the pencil data whose z
  // range is q's tile-t planes, layout [zl][y][xl] so q can unpack with
  // the forward routine's inverse.
  if (opt_.real_math) {
    const int n = opt_.n;
    cplx* out = send_[slot].data();
    for (int q = 0; q < nprocs_; ++q) {
      for (int zl = 0; zl < tile_planes_; ++zl) {
        const int z = q * planes_ + tile * tile_planes_ + zl;
        for (int y = 0; y < n; ++y) {
          for (int xl = 0; xl < width_; ++xl) {
            *out++ = pencils_[(std::size_t(xl) * n + y) * n + z];
          }
        }
      }
    }
  }
  ctx_.compute(copy_cost(block_ * nprocs_));
}

void Fft3d::unpack_tile_inverse(int tile, int slot) {
  // Received from peer q: my tile-t planes restricted to q's x columns.
  if (opt_.real_math) {
    const int n = opt_.n;
    const cplx* in = recv_[slot].data();
    for (int q = 0; q < nprocs_; ++q) {
      for (int zl = 0; zl < tile_planes_; ++zl) {
        cplx* plane = planes_data_.data() +
                      (std::size_t(tile) * tile_planes_ + zl) * n * n;
        for (int y = 0; y < n; ++y) {
          cplx* row = plane + std::size_t(y) * n + q * width_;
          for (int xl = 0; xl < width_; ++xl) row[xl] = *in++;
        }
      }
    }
  }
  ctx_.compute(copy_cost(block_ * nprocs_));
}

void Fft3d::run_iteration() {
  const auto& platform = ctx_.world().platform();
  const int n = opt_.n;
  const double tile_2d_cost =
      tile_planes_ * 2.0 * n * fft_flops(n) / platform.flops_per_sec;
  const double z_cost =
      static_cast<double>(width_) * n * fft_flops(n) / platform.flops_per_sec;

  if (timer_) timer_->start();

  for (int tile = 0; tile < tiles_; ++tile) {
    // 2-D FFTs of this tile's planes, overlapped (via progress calls)
    // with the transposes of earlier tiles.
    const bool outstanding = tile > 0 && opt_.backend != Backend::Blocking;
    chunked_compute(tile_2d_cost, outstanding);
    if (opt_.real_math) {
      for (int zl = 0; zl < tile_planes_; ++zl) {
        cplx* plane = planes_data_.data() +
                      (std::size_t(tile) * tile_planes_ + zl) * n * n;
        for (int y = 0; y < n; ++y) fft(plane + std::size_t(y) * n, n);
        std::vector<cplx> col(n);
        for (int x = 0; x < n; ++x) {
          for (int y = 0; y < n; ++y) col[y] = plane[std::size_t(y) * n + x];
          fft(col.data(), n);
          for (int y = 0; y < n; ++y) plane[std::size_t(y) * n + x] = col[y];
        }
      }
    }
    const int slot = tile % window_;
    wait_slot(slot, false);  // free the buffers if an older tile holds them
    pack_tile(tile, slot);
    slot_tile_[slot] = tile;
    start_slot(slot);
    if (opt_.backend == Backend::Blocking) wait_slot(slot, false);
  }
  for (int s = 0; s < window_; ++s) wait_slot(s, false);

  // 1-D FFTs along z on the assembled pencils.
  chunked_compute(z_cost, false);
  if (opt_.real_math) {
    for (int xl = 0; xl < width_; ++xl) {
      for (int y = 0; y < n; ++y) {
        fft(pencils_.data() + (std::size_t(xl) * n + y) * n, n);
      }
    }
  }

  if (timer_) timer_->stop();
}

void Fft3d::run_inverse_iteration() {
  const auto& platform = ctx_.world().platform();
  const int n = opt_.n;
  const double tile_2d_cost =
      tile_planes_ * 2.0 * n * fft_flops(n) / platform.flops_per_sec;
  const double z_cost =
      static_cast<double>(width_) * n * fft_flops(n) / platform.flops_per_sec;

  if (timer_) timer_->start();

  // 1-D inverse FFTs along z first (we start from the pencil spectrum).
  chunked_compute(z_cost, false);
  if (opt_.real_math) {
    for (int xl = 0; xl < width_; ++xl) {
      for (int y = 0; y < n; ++y) {
        fft(pencils_.data() + (std::size_t(xl) * n + y) * n, n,
            /*inverse=*/true);
      }
    }
  }

  // Mirrored transpose back to z-slabs, tile by tile, overlapping the
  // per-tile 2-D inverse FFTs with the next tile's communication.
  for (int tile = 0; tile < tiles_; ++tile) {
    const int slot = tile % window_;
    wait_slot(slot, true);
    pack_tile_inverse(tile, slot);
    slot_tile_[slot] = tile;
    start_slot(slot);
    if (opt_.backend == Backend::Blocking) wait_slot(slot, true);
  }
  for (int s = 0; s < window_; ++s) wait_slot(s, true);

  // 2-D inverse FFTs on the reassembled planes.
  chunked_compute(tiles_ * tile_2d_cost, false);
  if (opt_.real_math) {
    std::vector<cplx> col(n);
    for (int zl = 0; zl < planes_; ++zl) {
      cplx* plane = planes_data_.data() + std::size_t(zl) * n * n;
      for (int x = 0; x < n; ++x) {
        for (int y = 0; y < n; ++y) col[y] = plane[std::size_t(y) * n + x];
        fft(col.data(), n, /*inverse=*/true);
        for (int y = 0; y < n; ++y) plane[std::size_t(y) * n + x] = col[y];
      }
      for (int y = 0; y < n; ++y) {
        fft(plane + std::size_t(y) * n, n, /*inverse=*/true);
      }
    }
  }

  if (timer_) timer_->stop();
}

}  // namespace nbctune::fft
