#include "adcl/functionsets.hpp"

#include <string>

#include <stdexcept>

#include "coll/hierarchical.hpp"
#include "coll/iallgather.hpp"
#include "coll/iallreduce.hpp"
#include "coll/ialltoall.hpp"
#include "coll/ibcast.hpp"
#include "coll/ineighbor.hpp"
#include "coll/ireduce.hpp"
#include "coll/iscatter.hpp"

namespace nbctune::adcl {

namespace {
int comm_rank(mpi::Ctx& ctx, const OpArgs& a) {
  return a.comm.rank_of_world(ctx.world_rank());
}

/// Node id of every communicator rank (the hierarchical builders' map).
std::vector<int> comm_nodes(mpi::Ctx& ctx, const mpi::Comm& comm) {
  std::vector<int> nodes(static_cast<std::size_t>(comm.size()));
  for (int r = 0; r < comm.size(); ++r) {
    nodes[static_cast<std::size_t>(r)] = ctx.world().node_of(comm.world_rank(r));
  }
  return nodes;
}

nbc::Schedule build_a2a(int algo, mpi::Ctx& ctx, const OpArgs& a) {
  const int n = a.comm.size();
  const int me = comm_rank(ctx, a);
  switch (algo) {
    case kA2aLinear:
      return coll::build_ialltoall_linear(me, n, a.sbuf, a.rbuf, a.bytes);
    case kA2aBruck:
      return coll::build_ialltoall_bruck(me, n, a.sbuf, a.rbuf, a.bytes);
    case kA2aPairwise:
    default:
      return coll::build_ialltoall_pairwise(me, n, a.sbuf, a.rbuf, a.bytes);
  }
}
}  // namespace

std::shared_ptr<FunctionSet> make_ialltoall_functionset(bool include_blocking) {
  std::vector<Attribute> attr_list{
      {"algorithm", {kA2aLinear, kA2aBruck, kA2aPairwise}}};
  if (include_blocking) attr_list.push_back({"blocking", {0, 1}});
  AttributeSet attrs(std::move(attr_list));
  std::vector<Function> fns;
  const char* names[] = {"linear", "dissemination", "pairwise"};
  for (int algo : {kA2aLinear, kA2aBruck, kA2aPairwise}) {
    Function f;
    f.name = names[algo];
    f.attrs = include_blocking ? std::vector<int>{algo, 0}
                               : std::vector<int>{algo};
    f.build = [algo](mpi::Ctx& ctx, const OpArgs& a) {
      return build_a2a(algo, ctx, a);
    };
    fns.push_back(std::move(f));
  }
  if (include_blocking) {
    for (int algo : {kA2aLinear, kA2aBruck, kA2aPairwise}) {
      Function f;
      f.name = std::string("blocking-") + names[algo];
      f.attrs = {algo, 1};
      f.blocking = true;
      f.build = [algo](mpi::Ctx& ctx, const OpArgs& a) {
        return build_a2a(algo, ctx, a);
      };
      fns.push_back(std::move(f));
    }
  }
  return std::make_shared<FunctionSet>(
      include_blocking ? "ialltoall+blocking" : "ialltoall", std::move(attrs),
      std::move(fns));
}

std::shared_ptr<FunctionSet> make_ibcast_functionset(bool include_two_level) {
  // Fan-out 0 (linear), 1 (chain), 2..5 (k-ary), binomial; segment sizes
  // 32, 64, 128 KB: the paper's 7 x 3 = 21 implementations.
  std::vector<Attribute> attr_list{
      {"fanout", {0, 1, 2, 3, 4, 5, kBcastBinomialAttr}},
      {"segsize", {32 * 1024, 64 * 1024, 128 * 1024}},
  };
  if (include_two_level) attr_list.push_back({"hier", {0, 1}});
  AttributeSet attrs(std::move(attr_list));
  std::vector<Function> fns;
  for (int fanout : attrs.at(0).values) {
    for (int seg : attrs.at(1).values) {
      Function f;
      const std::string fo =
          fanout == 0                    ? std::string("linear")
          : fanout == kBcastBinomialAttr ? std::string("binomial")
          : fanout == 1                  ? std::string("chain")
                                         : "fanout" + std::to_string(fanout);
      f.name = fo + "/seg" + std::to_string(seg / 1024) + "k";
      f.attrs = include_two_level ? std::vector<int>{fanout, seg, 0}
                                  : std::vector<int>{fanout, seg};
      f.build = [fanout, seg](mpi::Ctx& ctx, const OpArgs& a) {
        const int real_fanout = fanout == kBcastBinomialAttr
                                    ? coll::kFanoutBinomial
                                    : fanout;
        return coll::build_ibcast(comm_rank(ctx, a), a.comm.size(), a.rbuf,
                                  a.bytes, a.root, real_fanout,
                                  static_cast<std::size_t>(seg));
      };
      fns.push_back(std::move(f));
    }
  }
  if (include_two_level) {
    Function f;
    f.name = "2lvl-binomial";
    f.attrs = {kBcastBinomialAttr, 32 * 1024, 1};
    f.build = [](mpi::Ctx& ctx, const OpArgs& a) {
      return coll::build_ibcast_two_level(comm_rank(ctx, a), a.comm.size(),
                                          a.rbuf, a.bytes, a.root,
                                          comm_nodes(ctx, a.comm));
    };
    fns.push_back(std::move(f));
  }
  return std::make_shared<FunctionSet>(
      include_two_level ? "ibcast+2lvl" : "ibcast", std::move(attrs),
      std::move(fns));
}

std::shared_ptr<FunctionSet> make_iallgather_functionset() {
  AttributeSet attrs{{{"algorithm", {0, 1, 2}}}};
  std::vector<Function> fns(3);
  fns[0].name = "linear";
  fns[0].attrs = {0};
  fns[0].build = [](mpi::Ctx& ctx, const OpArgs& a) {
    return coll::build_iallgather_linear(comm_rank(ctx, a), a.comm.size(),
                                         a.sbuf, a.rbuf, a.bytes);
  };
  fns[1].name = "ring";
  fns[1].attrs = {1};
  fns[1].build = [](mpi::Ctx& ctx, const OpArgs& a) {
    return coll::build_iallgather_ring(comm_rank(ctx, a), a.comm.size(),
                                       a.sbuf, a.rbuf, a.bytes);
  };
  fns[2].name = "recursive-doubling";
  fns[2].attrs = {2};
  fns[2].build = [](mpi::Ctx& ctx, const OpArgs& a) {
    const int n = a.comm.size();
    // Production decision logic: fall back to ring off powers of two.
    if (!coll::is_pow2(n)) {
      return coll::build_iallgather_ring(comm_rank(ctx, a), n, a.sbuf, a.rbuf,
                                         a.bytes);
    }
    return coll::build_iallgather_recursive_doubling(comm_rank(ctx, a), n,
                                                     a.sbuf, a.rbuf, a.bytes);
  };
  return std::make_shared<FunctionSet>("iallgather", std::move(attrs),
                                       std::move(fns));
}

std::shared_ptr<FunctionSet> make_ireduce_functionset() {
  AttributeSet attrs{{
      {"algorithm", {0, 1}},  // 0 = binomial, 1 = chain
      {"segsize", {0, 32 * 1024}},
  }};
  std::vector<Function> fns;
  for (int algo : {0, 1}) {
    for (int seg : attrs.at(1).values) {
      if (algo == 0 && seg != 0) continue;  // binomial is unsegmented
      Function f;
      f.name = algo == 0 ? "binomial"
                         : (seg == 0 ? "chain" : "chain/seg32k");
      f.attrs = {algo, seg};
      f.build = [algo, seg](mpi::Ctx& ctx, const OpArgs& a) {
        const int n = a.comm.size();
        const int me = comm_rank(ctx, a);
        if (algo == 0) {
          return coll::build_ireduce_binomial(me, n, a.sbuf, a.rbuf, a.count,
                                              a.dtype, a.op, a.root);
        }
        const std::size_t seg_elems =
            seg == 0 ? 0 : static_cast<std::size_t>(seg) / nbc::dtype_size(a.dtype);
        return coll::build_ireduce_chain(me, n, a.sbuf, a.rbuf, a.count,
                                         a.dtype, a.op, a.root, seg_elems);
      };
      fns.push_back(std::move(f));
    }
  }
  return std::make_shared<FunctionSet>("ireduce", std::move(attrs),
                                       std::move(fns));
}

std::shared_ptr<FunctionSet> make_iallreduce_functionset(
    bool include_two_level) {
  std::vector<int> algos{0, 1, 2};
  if (include_two_level) algos.push_back(3);
  AttributeSet attrs{{{"algorithm", std::move(algos)}}};
  std::vector<Function> fns(3);
  fns[0].name = "recursive-doubling";
  fns[0].attrs = {0};
  fns[0].build = [](mpi::Ctx& ctx, const OpArgs& a) {
    const int n = a.comm.size();
    const int me = comm_rank(ctx, a);
    // Production decision logic: fall back to ring off powers of two.
    if (!coll::is_pow2(n)) {
      return coll::build_iallreduce_ring(me, n, a.sbuf, a.rbuf, a.count,
                                         a.dtype, a.op);
    }
    return coll::build_iallreduce_recursive_doubling(me, n, a.sbuf, a.rbuf,
                                                     a.count, a.dtype, a.op);
  };
  fns[1].name = "reduce-bcast";
  fns[1].attrs = {1};
  fns[1].build = [](mpi::Ctx& ctx, const OpArgs& a) {
    return coll::build_iallreduce_reduce_bcast(comm_rank(ctx, a),
                                               a.comm.size(), a.sbuf, a.rbuf,
                                               a.count, a.dtype, a.op);
  };
  fns[2].name = "ring";
  fns[2].attrs = {2};
  fns[2].build = [](mpi::Ctx& ctx, const OpArgs& a) {
    return coll::build_iallreduce_ring(comm_rank(ctx, a), a.comm.size(),
                                       a.sbuf, a.rbuf, a.count, a.dtype,
                                       a.op);
  };
  if (include_two_level) {
    Function f;
    f.name = "2lvl-reduce-bcast";
    f.attrs = {3};
    f.build = [](mpi::Ctx& ctx, const OpArgs& a) {
      return coll::build_iallreduce_two_level(comm_rank(ctx, a), a.comm.size(),
                                              a.sbuf, a.rbuf, a.count, a.dtype,
                                              a.op, comm_nodes(ctx, a.comm));
    };
    fns.push_back(std::move(f));
  }
  return std::make_shared<FunctionSet>(
      include_two_level ? "iallreduce+2lvl" : "iallreduce", std::move(attrs),
      std::move(fns));
}

std::shared_ptr<FunctionSet> make_iscatter_functionset(int nrails) {
  if (nrails <= 0) {
    throw std::invalid_argument("iscatter function-set: bad rail count");
  }
  AttributeSet attrs{{{"mapping", {0, 1, 2, 3}}}};
  std::vector<Function> fns(4);
  fns[0].name = "linear";
  fns[0].attrs = {0};
  fns[0].build = [](mpi::Ctx& ctx, const OpArgs& a) {
    return coll::build_iscatter_linear(comm_rank(ctx, a), a.comm.size(),
                                       a.sbuf, a.rbuf, a.bytes, a.root);
  };
  fns[1].name = "fan-rail0";
  fns[1].attrs = {1};
  fns[1].build = [](mpi::Ctx& ctx, const OpArgs& a) {
    return coll::build_iscatter_fan(comm_rank(ctx, a), a.comm.size(), a.sbuf,
                                    a.rbuf, a.bytes, a.root, /*rail=*/0);
  };
  fns[2].name = "rail";
  fns[2].attrs = {2};
  fns[2].build = [nrails](mpi::Ctx& ctx, const OpArgs& a) {
    return coll::build_iscatter_rail(comm_rank(ctx, a), a.comm.size(), a.sbuf,
                                     a.rbuf, a.bytes, a.root, nrails);
  };
  fns[3].name = "striped";
  fns[3].attrs = {3};
  fns[3].build = [](mpi::Ctx& ctx, const OpArgs& a) {
    const auto stripes =
        ctx.world().machine().topology().plan_stripes(a.bytes);
    return coll::build_iscatter_striped(comm_rank(ctx, a), a.comm.size(),
                                        a.sbuf, a.rbuf, a.bytes, a.root,
                                        stripes);
  };
  return std::make_shared<FunctionSet>("iscatter", std::move(attrs),
                                       std::move(fns));
}

std::shared_ptr<FunctionSet> make_ineighbor_functionset(coll::CartTopo topo) {
  AttributeSet attrs{{{"ordering", {0, 1, 2}}}};
  std::vector<Function> fns(3);
  auto check = [](const coll::CartTopo& t, const OpArgs& a) {
    if (t.size() != a.comm.size()) {
      throw std::invalid_argument(
          "ineighbor: topology size does not match the communicator");
    }
  };
  fns[0].name = "all-at-once";
  fns[0].attrs = {0};
  fns[0].build = [topo, check](mpi::Ctx& ctx, const OpArgs& a) {
    check(topo, a);
    return coll::build_ineighbor_all_at_once(topo, comm_rank(ctx, a), a.sbuf,
                                             a.rbuf, a.bytes);
  };
  fns[1].name = "dimension-ordered";
  fns[1].attrs = {1};
  fns[1].build = [topo, check](mpi::Ctx& ctx, const OpArgs& a) {
    check(topo, a);
    return coll::build_ineighbor_dimension_ordered(topo, comm_rank(ctx, a),
                                                   a.sbuf, a.rbuf, a.bytes);
  };
  fns[2].name = "even-odd";
  fns[2].attrs = {2};
  fns[2].build = [topo, check](mpi::Ctx& ctx, const OpArgs& a) {
    check(topo, a);
    return coll::build_ineighbor_even_odd(topo, comm_rank(ctx, a), a.sbuf,
                                          a.rbuf, a.bytes);
  };
  return std::make_shared<FunctionSet>("ineighbor", std::move(attrs),
                                       std::move(fns));
}

std::shared_ptr<FunctionSet> make_ialltoall_progress_functionset(
    std::vector<int> progress_counts, bool include_blocking) {
  if (progress_counts.empty()) {
    throw std::invalid_argument(
        "progress function-set needs at least one candidate count");
  }
  auto base = make_ialltoall_functionset(include_blocking);
  std::vector<Attribute> attr_list = base->attributes().all();
  attr_list.push_back(Attribute{"progress", progress_counts});
  std::vector<Function> fns;
  for (const Function& bf : base->functions()) {
    for (int pc : progress_counts) {
      Function f = bf;
      f.name = bf.name + "/pc" + std::to_string(pc);
      f.attrs.push_back(pc);
      fns.push_back(std::move(f));
    }
  }
  return std::make_shared<FunctionSet>(
      include_blocking ? "ialltoall+progress+blocking" : "ialltoall+progress",
      AttributeSet(std::move(attr_list)), std::move(fns));
}

}  // namespace nbctune::adcl
