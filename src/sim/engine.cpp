#include "sim/engine.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "trace/trace.hpp"

namespace nbctune::sim {

// ---------------------------------------------------------------- Process

Process::Process(Engine& engine, int id, std::string name,
                 std::function<void(Process&)> body, std::size_t stack_bytes)
    : engine_(engine),
      id_(id),
      name_(std::move(name)),
      fiber_([this, body = std::move(body)] { body(*this); }, stack_bytes) {}

void Process::sleep(Time dt) {
  if (dt < 0) throw std::invalid_argument("Process::sleep: negative dt");
  if (dt == 0) return;
  engine_.schedule_after(dt, [this] { run_slice(); });
  fiber_.yield();
}

void Process::suspend() {
  if (wake_pending_) {
    wake_pending_ = false;
    return;
  }
  suspended_ = true;
  fiber_.yield();
  suspended_ = false;
}

void Process::wake() {
  if (fiber_.running() || finished()) return;
  if (!suspended_) {
    // Sleeping or not yet started: remember the wake so the next suspend()
    // returns immediately.
    wake_pending_ = true;
    return;
  }
  if (wake_pending_) return;  // a resume event is already queued
  wake_pending_ = true;
  engine_.schedule_after(0.0, [this] {
    if (suspended_) {
      wake_pending_ = false;
      run_slice();
    }
    // If the process is no longer suspended (e.g. finished), drop the wake.
  });
}

void Process::run_slice() { fiber_.resume(); }

// ----------------------------------------------------------------- Engine

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

std::uint32_t Engine::acquire_slot(Callback cb) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(cb));
    slot_gen_.push_back(0);
  }
  return slot;
}

void Engine::release_slot(std::uint32_t slot) noexcept {
  slots_[slot].reset();
  // The generation bump invalidates every outstanding id and heap/FIFO
  // entry referring to this slot's previous occupant.  (A single slot
  // would need 2^32 reuses for an id to alias; experiments run tens of
  // millions of events, far below that.)
  ++slot_gen_[slot];
  free_slots_.push_back(slot);
}

std::uint64_t Engine::schedule_at(Time t, Callback cb) {
  if (t < now_) throw std::invalid_argument("schedule_at: time in the past");
  const std::uint32_t slot = acquire_slot(std::move(cb));
  const std::uint32_t gen = slot_gen_[slot];
  trace::count(trace::Ctr::EngineEventsScheduled);
  if (t == now_) {
    // Zero-delay fast path: no heap sift.  FIFO order equals sequence
    // order, and every heap event at this instant predates the clock's
    // arrival here, so heap-before-FIFO preserves global (t, seq) order.
    trace::count(trace::Ctr::EngineNowFifoHits);
    now_fifo_.push_back(NowEvent{slot, gen});
  } else {
    queue_.push(Event{t, next_seq_++, slot, gen});
  }
  return make_id(slot, gen);
}

void Engine::cancel(std::uint64_t id) {
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id);
  if (slot < slot_gen_.size() && slot_gen_[slot] == gen) {
    trace::count(trace::Ctr::EngineEventsCancelled);
    release_slot(slot);
  }
}

Process& Engine::add_process(std::string name,
                             std::function<void(Process&)> body,
                             std::size_t stack_bytes) {
  const int id = static_cast<int>(processes_.size());
  processes_.push_back(std::make_unique<Process>(*this, id, std::move(name),
                                                 std::move(body), stack_bytes));
  Process* p = processes_.back().get();
  start_pending_.push_back(p);
  if (running_) {
    // Started mid-run: launch via an event at the current time.
    schedule_after(0.0, [this] { launch_pending(); });
  }
  return *p;
}

bool Engine::step(Time limit) {
  for (;;) {
    std::uint32_t slot;
    const bool fifo_ready = now_head_ < now_fifo_.size();
    if (!queue_.empty() && (!fifo_ready || queue_.top().t <= now_)) {
      const Event ev = queue_.top();
      if (ev.t > limit) return false;
      queue_.pop();
      if (slot_gen_[ev.slot] != ev.gen) continue;  // cancelled: stale entry
      now_ = ev.t;
      slot = ev.slot;
    } else if (fifo_ready) {
      if (now_ > limit) return false;  // run_until() into the past
      const NowEvent ev = now_fifo_[now_head_];
      if (++now_head_ == now_fifo_.size()) {
        now_fifo_.clear();
        now_head_ = 0;
      }
      if (slot_gen_[ev.slot] != ev.gen) continue;  // cancelled
      slot = ev.slot;
    } else {
      return false;
    }
    Callback cb = std::move(slots_[slot]);
    release_slot(slot);
    ++events_processed_;
    trace::count(trace::Ctr::EngineEventsFired);
    cb();
    return true;
  }
}

void Engine::check_deadlock() const {
  std::ostringstream oss;
  bool any = false;
  for (const auto& p : processes_) {
    if (!p->finished() && p->suspended()) {
      if (!any) {
        oss << "simulated deadlock: event queue empty but processes "
               "suspended:";
        any = true;
      }
      oss << ' ' << p->name();
    }
  }
  if (any) throw DeadlockError(oss.str());
}

void Engine::launch_pending() {
  // FIFO start order (process 0 first) for reproducible startup.
  std::vector<Process*> batch;
  batch.swap(start_pending_);
  for (Process* p : batch) p->run_slice();
}

void Engine::run() {
  running_ = true;
  launch_pending();
  while (step(std::numeric_limits<Time>::infinity())) {
  }
  running_ = false;
  check_deadlock();
}

void Engine::run_until(Time t) {
  running_ = true;
  launch_pending();
  while (step(t)) {
  }
  if (now_ < t) now_ = t;
  running_ = false;
}

}  // namespace nbctune::sim
