#pragma once

// The explicit machine hierarchy over a Platform: sockets inside nodes,
// nodes inside racks, and the multi-NIC rails that leave each node.
//
// The Platform struct carries the raw shape (sockets_per_node,
// nodes_per_rack, nics_per_node, per-level LinkParams); a Topology makes
// it queryable — which hierarchy level a message crosses, which rack a
// node sits in, which rail the k-th transfer should ride — and plans
// message striping across rails so a multi-NIC node can inject one large
// message on all of its NICs at once.  Rail selection and stripe planning
// are pure functions of their arguments, which is what keeps multi-rail
// runs byte-deterministic at any thread count.

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "net/platform.hpp"

namespace nbctune::net {

/// Hierarchy levels a message can cross, innermost first.  `System` is a
/// rack-crossing path (pays Platform::rack_extra_latency on top of the
/// inter-node link).
enum class Level { Socket = 0, Node = 1, Rack = 2, System = 3 };

inline constexpr int kNumLevels = 4;

[[nodiscard]] const char* level_name(Level l) noexcept;

/// One stripe of a striped transfer: `bytes` starting at `offset` of the
/// original message, pinned to NIC rail `rail`.
struct Stripe {
  int rail = 0;
  std::size_t offset = 0;
  std::size_t bytes = 0;
};

/// Queryable hierarchy of one Platform.  Cheap to construct; Machine owns
/// one and the collective builders consult it through the World.
class Topology {
 public:
  explicit Topology(const Platform& p);

  [[nodiscard]] const Platform& platform() const noexcept { return *p_; }

  [[nodiscard]] int rails() const noexcept { return p_->nics_per_node; }
  [[nodiscard]] int sockets_per_node() const noexcept { return sockets_; }
  [[nodiscard]] int cores_per_socket() const noexcept {
    return cores_per_socket_;
  }
  /// Nodes per rack (the whole machine when the platform declares none).
  [[nodiscard]] int nodes_per_rack() const noexcept { return rack_nodes_; }
  [[nodiscard]] int num_racks() const noexcept {
    return (p_->nodes + rack_nodes_ - 1) / rack_nodes_;
  }

  [[nodiscard]] int rack_of(int node) const noexcept {
    return node / rack_nodes_;
  }
  /// Socket housing a node-local core index (0 .. cores_per_node-1).
  [[nodiscard]] int socket_of_core(int core) const noexcept {
    return core / cores_per_socket_;
  }

  /// The innermost hierarchy level containing both endpoints.
  [[nodiscard]] Level level_between(int node_a, int core_a, int node_b,
                                    int core_b) const noexcept;

  /// Link parameters of one level.  Socket falls back to the node (intra)
  /// link when the platform declares no socket path; System is the
  /// inter-node link (the rack-crossing latency premium is additive and
  /// lives in Machine::latency).
  [[nodiscard]] const LinkParams& link(Level l) const noexcept;

  /// Deterministic round-robin rail for the `seq`-th transfer of a
  /// sequence (a pure function: the caller owns the sequence counter, so
  /// schedules built concurrently on different threads agree).
  [[nodiscard]] int rail_for(int seq) const noexcept {
    const int r = rails();
    return r <= 1 ? 0 : (seq % r + r) % r;
  }

  /// Split a message into at most rails() stripes of near-equal size, one
  /// per rail.  Stripes below `min_stripe_bytes` are not worth their
  /// per-message overhead, so small messages yield fewer (or one) stripes.
  /// Invariants: at least one stripe for bytes > 0, offsets are contiguous
  /// ascending, and the stripe sizes sum to `bytes` exactly.
  [[nodiscard]] std::vector<Stripe> plan_stripes(
      std::size_t bytes, std::size_t min_stripe_bytes = 4096) const;

 private:
  const Platform* p_;
  int sockets_ = 1;
  int cores_per_socket_ = 1;
  int rack_nodes_ = 1;
};

/// Human-readable parameter dump of one platform (the `--list-platforms`
/// surface): nodes/cores/sockets/NICs, per-level links, torus shape.
void describe_platform(std::ostream& os, const Platform& p);

}  // namespace nbctune::net
