// Extension bench (paper §III-C): "auto-tuning offers for this scenario
// the unique opportunity to optimize the number and frequency of progress
// calls".  The paper leaves this as an observation; here the Ialltoall
// function-set is crossed with a "progress" attribute and the tuner picks
// the (algorithm, progress-count) pair jointly.  The application reads
// the tuned count through Request::recommended_progress_calls().
//
// Output: the full fixed grid (every algorithm at every count) versus the
// co-tuned request, on whale and whale-tcp.

#include <vector>

#include "bench_util.hpp"
#include "mpi/world.hpp"
#include "net/machine.hpp"
#include "net/platform.hpp"
#include "sim/engine.hpp"

using namespace nbctune;
using namespace nbctune::harness;

namespace {

struct GridResult {
  double loop_time = 0.0;
  std::string impl;
};

/// One run; pc < 0 means "ask the request each iteration".  `what` is the
/// microbench label suffix ("fixed:<grid-point>" / "adcl:<policy>") that
/// puts the run in the analyzer's comparison group when tracing is on.
GridResult run_once(const net::Platform& platform, int pinned_fn, int pc,
                    const std::vector<int>& counts, int iters,
                    const std::string& what,
                    adcl::PolicyKind policy = adcl::PolicyKind::BruteForce) {
  GridResult out;
  trace::Scope scope("ialltoall " + platform.name + " np32 131072B " + what);
  sim::Engine engine(5);
  net::Machine machine(platform);
  mpi::WorldOptions wopts;
  wopts.nprocs = 32;
  wopts.noise_scale = 0;
  mpi::World world(engine, machine, wopts);
  world.launch([&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    adcl::OpArgs args;
    args.comm = comm;
    args.bytes = 128 * 1024;
    adcl::TuningOptions opts;
    opts.tests_per_function = 1;
    opts.policy = policy;
    auto req = adcl::request_create(
        ctx, adcl::make_ialltoall_progress_functionset(counts), args, opts);
    if (pinned_fn >= 0) req->selection().force_winner(pinned_fn);
    const double t0 = ctx.now();
    for (int it = 0; it < iters; ++it) {
      const int calls = pc >= 0 ? pc : req->recommended_progress_calls(1);
      req->init();
      for (int p = 0; p < calls; ++p) {
        ctx.compute(20e-3 / calls);
        req->progress();
      }
      req->wait();
    }
    if (ctx.world_rank() == 0) {
      out.loop_time = ctx.now() - t0;
      out.impl = req->selection().decided() ? req->current_function().name
                                            : "<undecided>";
    }
  });
  engine.run();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Driver drv("ext-progress-tuning", argc, argv);
  const std::vector<int> counts{1, 5, 20, 100};
  auto fset = adcl::make_ialltoall_progress_functionset(counts);
  const int iters = drv.full() ? 80 : 40;

  for (const auto& platform : {net::whale(), net::whale_tcp()}) {
    banner("Extension: joint (algorithm, progress-count) tuning — " +
           platform.name + ", 32 procs, 128 KB, 20 ms compute/iter");
    Table t({"implementation", "loop_time[s]", "vs_best"});
    double best = 1e300;
    std::string best_name;
    std::vector<std::pair<std::string, double>> rows;
    for (std::size_t f = 0; f < fset->size(); ++f) {
      // Fixed grid point: algorithm + count pinned; drive at its count.
      const int pc = fset->function(f).attrs.at(1);
      const auto r =
          run_once(platform, static_cast<int>(f), pc, counts, iters,
                   "fixed:" + fset->function(f).name);
      rows.emplace_back(fset->function(f).name, r.loop_time);
      if (r.loop_time < best) {
        best = r.loop_time;
        best_name = fset->function(f).name;
      }
    }
    const auto tuned =
        run_once(platform, -1, -1, counts, iters, "adcl:brute-force");
    // The attribute heuristic prunes the 12-function grid to ~one sweep
    // per attribute — a shorter learning phase at the risk of missing
    // algorithm/progress-count interactions.
    const auto heur = run_once(platform, -1, -1, counts, iters,
                               "adcl:heuristic",
                               adcl::PolicyKind::AttributeHeuristic);
    for (const auto& [name, time] : rows) {
      t.add_row({name, Table::num(time), Table::num(time / best, 2)});
    }
    t.add_row({"ADCL(brute-force)", Table::num(tuned.loop_time),
               Table::num(tuned.loop_time / best, 2)});
    t.add_row({"ADCL(heuristic)", Table::num(heur.loop_time),
               Table::num(heur.loop_time / best, 2)});
    t.print();
    std::cout << "best fixed grid point: " << best_name
              << "; brute-force winner: " << tuned.impl
              << "; heuristic winner: " << heur.impl << "\n";
  }
  std::cout << "\nExpected: the tuned run converges on (or within a few "
               "percent of)\nthe best (algorithm, count) pair on both "
               "networks, paying only its\nlearning phase — no a-priori "
               "grid search needed.\n";
  return 0;
}
