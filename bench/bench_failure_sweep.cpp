// Failure sweep: the fig-3 tuned Ialltoall under every canned kill plan
// (fault/fault.hpp) on whale over InfiniBand and over Gigabit Ethernet,
// plus a lease-period sensitivity scan.
//
// The sweep answers the fail-stop robustness question end to end: when a
// rank (or a cascade of ranks, or the rank-0 "leader") is killed mid-loop,
// do the survivors detect it within the lease, agree on a consistent
// failed set, shrink the communicator, rebuild the collective schedules
// and finish the sweep with a sensible winner?  Run with --report /
// --trace-counters to get the analyzer's RecoverySummary (detection,
// agreement, rebuild and time-to-recover); CI diffs both against
// committed goldens and byte-compares stdout across thread counts.
//
// Fiber mode only: kill plans are outside the machine-mode envelope
// (run_loop_machine rejects them), so this driver does not honour --exec.

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::harness;

namespace {

MicroScenario base_scenario(const net::Platform& platform, bool full) {
  MicroScenario s;
  s.platform = platform;
  s.nprocs = 16;
  s.op = OpKind::Ialltoall;
  s.bytes = 64 * 1024;
  s.compute_per_iter = 2e-3;
  s.progress_calls = 3;
  // Kills land at fixed simulated times (3-12 ms); the loop must still be
  // running then, so the iteration budget stays above the latest kill.
  s.iterations = full ? 64 : 40;
  s.noise_scale = 0.0;  // fail-stop faults are the only perturbation
  s.seed = 42;
  return s;
}

adcl::TuningOptions tuning() {
  adcl::TuningOptions opts;
  opts.policy = adcl::PolicyKind::BruteForce;
  opts.tests_per_function = 2;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Driver drv("failure_sweep", argc, argv);

  std::vector<fault::CannedPlan> plans;
  for (const fault::CannedPlan& p : fault::canned_plans()) {
    if (fault::FaultPlan::parse(p.spec).has_kills()) plans.push_back(p);
  }

  for (const auto& platform : {net::whale(), net::whale_tcp()}) {
    const MicroScenario base = base_scenario(platform, drv.full());

    harness::banner("Failure sweep: tuned Ialltoall under kill plans on " +
                    platform.name);
    std::cout << "platform=" << platform.name << " nprocs=" << base.nprocs
              << " bytes=" << base.bytes
              << " compute/iter=" << base.compute_per_iter
              << "s iterations=" << base.iterations << "\n\n";

    std::vector<RunOutcome> runs(plans.size());
    drv.pool().run_indexed(plans.size(), [&](std::size_t i) {
      MicroScenario s = base;
      s.fault_plan = plans[i].spec;
      s.fault_plan_name = plans[i].name;
      runs[i] = run_adcl(s, tuning());
    });

    harness::Table t({"plan", "winner", "loop_time[s]", "decision_iter"});
    for (std::size_t i = 0; i < plans.size(); ++i) {
      t.add_row({plans[i].name, runs[i].impl,
                 harness::Table::num(runs[i].loop_time),
                 std::to_string(runs[i].decision_iteration)});
    }
    t.print();
  }

  // Lease sensitivity: the same single-death scenario at widening lease
  // periods.  Detection latency is the lease by construction, so a longer
  // lease delays the whole recovery and the survivors' loop time grows;
  // the --report RecoverySummary shows detection == lease per row.
  {
    harness::banner("Lease sensitivity: one death at t=4ms, varying lease");
    const MicroScenario base = base_scenario(net::whale(), drv.full());
    const std::vector<std::string> leases = {"5e-4", "1e-3", "2e-3", "4e-3",
                                             "8e-3"};
    std::vector<RunOutcome> runs(leases.size());
    drv.pool().run_indexed(leases.size(), [&](std::size_t i) {
      MicroScenario s = base;
      s.fault_plan = "seed=31;kill=5@0.004;lease=" + leases[i];
      s.fault_plan_name = "lease" + leases[i];
      runs[i] = run_adcl(s, tuning());
    });
    harness::Table t({"lease[s]", "winner", "loop_time[s]", "decision_iter"});
    for (std::size_t i = 0; i < leases.size(); ++i) {
      t.add_row({leases[i], runs[i].impl,
                 harness::Table::num(runs[i].loop_time),
                 std::to_string(runs[i].decision_iteration)});
    }
    t.print();
  }
  return 0;
}
