#include "harness/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace nbctune::harness {

std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << (c == 0 ? "" : "  ") << std::left << std::setw(int(width[c]))
         << cell;
    }
    os << '\n';
  };
  line(header_);
  std::string sep;
  for (std::size_t c = 0; c < width.size(); ++c) {
    sep += std::string(width[c], '-') + (c + 1 < width.size() ? "  " : "");
  }
  os << sep << '\n';
  for (const auto& row : rows_) line(row);
}

void Table::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << row[c];
    }
    os << '\n';
  };
  line(header_);
  for (const auto& row : rows_) line(row);
}

void banner(const std::string& title, std::ostream& os) {
  os << '\n' << std::string(72, '=') << '\n'
     << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace nbctune::harness
