#pragma once

// Platform descriptions: the hardware parameters of the simulated clusters.
//
// The evaluation platforms of the paper are modeled as LogGP-family
// parameter sets plus protocol behaviour (eager/rendezvous switch, whether
// bulk transfers are NIC-driven as with InfiniBand RDMA or CPU-driven as
// with TCP sockets), per-node NIC and memory-port resources, and a noise
// model so the auto-tuner's statistical filtering has something to do.
//
// Presets:
//   crill()      - 16 nodes x 48 cores (4x 12-core Magny Cours), 64 GB,
//                  2x DDR InfiniBand HCAs per node
//   whale()      - 64 nodes x 8 cores (2x quad-core Barcelona), 16 GB,
//                  1x DDR InfiniBand HCA per node
//   whale_tcp()  - same nodes over Gigabit Ethernet
//   bluegene_p() - IBM BlueGene/P rack: 3-D torus, 4 cores per node
//
// The absolute values are order-of-magnitude realistic for the ~2008-2012
// hardware in the paper; the reproduction targets relative behaviour.

#include <cstddef>
#include <string>

namespace nbctune::net {

/// Cost parameters of one communication path (LogGP-style).
struct LinkParams {
  double latency = 0.0;        ///< one-way wire/header latency L (s)
  double byte_time = 0.0;      ///< per-byte transmission time G (s/byte)
  double send_overhead = 0.0;  ///< CPU cost o_s per message on the sender (s)
  double recv_overhead = 0.0;  ///< CPU cost o_r per matched message (s)
  double msg_gap = 0.0;        ///< extra NIC occupancy g per message (s)
};

/// Measurement noise injected by the simulated OS/environment.
struct NoiseParams {
  double rel_sigma = 0.0;      ///< relative gaussian jitter on costs
  double outlier_prob = 0.0;   ///< probability a compute slice is disturbed
  double outlier_factor = 1.0; ///< multiplier applied to disturbed slices
};

/// Full description of a simulated cluster.
struct Platform {
  std::string name;

  int nodes = 1;
  int cores_per_node = 1;
  int nics_per_node = 1;

  LinkParams inter;  ///< network path between nodes
  LinkParams intra;  ///< shared-memory path within a node

  /// Messages up to this many bytes use the eager protocol (payload flies
  /// with the envelope, NIC-driven); larger ones use rendezvous.
  std::size_t eager_limit = 12 * 1024;

  /// TCP-style transports need the sender's CPU to push bulk data in
  /// chunks from inside the progress engine; RDMA-style transports move
  /// bulk data entirely on the NIC once the handshake is done.
  bool cpu_driven_bulk = false;
  std::size_t bulk_chunk = 64 * 1024;  ///< bytes per CPU push

  /// Congestion model: receive-side service time is inflated by
  ///   1 + coef * max(0, in-flight messages to the node - free)
  /// capturing incast/flooding collapse (TCP incast, memory-system
  /// thrashing when a linear all-to-all floods a fat node).  The
  /// inter-node path and the intra-node memory port have separate knobs.
  double congest_coef = 0.0;
  int congest_free = 16;
  double congest_cap = 3.0;  ///< max inflation factor (flow control limits
                             ///< collapse on lossless fabrics)
  double mem_congest_coef = 0.0;
  int mem_congest_free = 64;
  double mem_congest_cap = 3.0;

  double ctrl_overhead = 0.0;      ///< CPU cost to emit RTS/CTS (s)
  double progress_cost = 0.0;      ///< base CPU cost of one progress pass (s)
  double per_req_poll_cost = 0.0;  ///< CPU cost per outstanding request polled
  double copy_byte_time = 0.0;     ///< CPU memcpy cost (s/byte): packing, shm
  double mem_byte_time = 0.0;      ///< per-node memory-port serialization

  NoiseParams noise;

  /// Torus topology (BlueGene/P): when torus_x > 0, inter-node latency is
  /// latency + hops * hop_latency with hops measured on the 3-D torus.
  /// Axes beyond torus_x default to width 1 when left at 0.
  int torus_x = 0, torus_y = 0, torus_z = 0;
  double hop_latency = 0.0;

  /// Hierarchy (net/topology.hpp): how the cores of a node split into
  /// sockets and how the nodes group into racks.  sockets_per_node must
  /// divide cores_per_node; nodes_per_rack == 0 means a single rack.
  int sockets_per_node = 1;
  int nodes_per_rack = 0;
  /// Extra one-way latency a message crossing rack boundaries pays
  /// (added by Machine::latency when the endpoints' racks differ).
  double rack_extra_latency = 0.0;
  /// Intra-socket path; all-zero means "derive from intra" (the topology
  /// layer then reports the node-level link for the socket level too).
  LinkParams socket;

  /// Compute speed used by application cost models (useful FLOP/s).
  double flops_per_sec = 1e9;

  [[nodiscard]] int total_cores() const noexcept {
    return nodes * cores_per_node;
  }
};

/// The 16-node, 48-core AMD Magny Cours InfiniBand cluster of the paper.
Platform crill();
/// The 64-node, 8-core AMD Barcelona InfiniBand cluster of the paper.
Platform whale();
/// The whale cluster using its Gigabit Ethernet interconnect.
Platform whale_tcp();
/// An IBM BlueGene/P partition (3-D torus, 1024 cores).
Platform bluegene_p();
/// A synthetic 4096-node x 32-core system (131072 ranks) for the
/// machine-mode mega-scale sweeps.
Platform mega();

/// Look up a preset by name ("crill", "whale", "whale-tcp", "bgp", "mega");
/// throws std::invalid_argument for unknown names.
Platform platform_by_name(const std::string& name);

}  // namespace nbctune::net
