// Domain example: exploring the progress problem (paper §III-C, §IV-A-d).
//
// The same non-blocking all-to-all is run with different numbers of
// explicit progress calls per iteration, on InfiniBand and on TCP.  The
// output shows (a) that overlap needs progress calls on single-threaded
// MPI stacks, (b) that too many calls cost more than they gain, and
// (c) that the best implementation depends on the progress-call count —
// the reason the paper tunes it at run time.

#include <cstdio>
#include <vector>

#include "adcl/adcl.hpp"
#include "mpi/world.hpp"
#include "net/machine.hpp"
#include "net/platform.hpp"
#include "sim/engine.hpp"

using namespace nbctune;

namespace {

double run_with(const net::Platform& platform, int progress_calls,
                const char* pinned_name, std::string* winner) {
  sim::Engine engine(3);
  net::Machine machine(platform);
  mpi::WorldOptions options;
  options.nprocs = 32;
  options.noise_scale = 0.0;
  mpi::World world(engine, machine, options);
  double total = 0.0;
  world.launch([&](mpi::Ctx& ctx) {
    const auto comm = ctx.world().comm_world();
    adcl::TuningOptions opts;
    opts.tests_per_function = 3;  // decided after 9 of the 12 iterations
    auto req = adcl::ialltoall_init(ctx, comm, nullptr, nullptr, 128 * 1024,
                                    opts);
    if (pinned_name != nullptr) {
      req->selection().force_winner(
          req->selection().function_set().find_by_name(pinned_name));
    }
    for (int it = 0; it < 12; ++it) {
      req->init();
      const int pc = progress_calls > 0 ? progress_calls : 1;
      for (int p = 0; p < pc; ++p) {
        ctx.compute(20e-3 / pc);
        if (progress_calls > 0) req->progress();
      }
      req->wait();
    }
    if (ctx.world_rank() == 0) {
      total = ctx.now();
      if (winner != nullptr && req->selection().decided()) {
        *winner = req->current_function().name;
      }
    }
  });
  engine.run();
  return total;
}

}  // namespace

int main() {
  for (const auto& platform : {net::whale(), net::whale_tcp()}) {
    std::printf("\n=== %s: 32 procs, 128 KB Ialltoall, 20 ms compute/iter\n",
                platform.name.c_str());
    std::printf("%8s %12s %12s %12s %14s\n", "progress", "linear[s]",
                "pairwise[s]", "tuned[s]", "tuned winner");
    for (int pc : {0, 1, 5, 20, 100, 1000}) {
      std::string winner;
      const double lin = run_with(platform, pc, "linear", nullptr);
      const double pw = run_with(platform, pc, "pairwise", nullptr);
      const double tuned = run_with(platform, pc, nullptr, &winner);
      std::printf("%8d %12.4f %12.4f %12.4f %14s\n", pc, lin, pw, tuned,
                  winner.c_str());
    }
  }
  std::printf(
      "\nReading guide: on InfiniBand the one-round linear algorithm "
      "overlaps\nonce a few progress calls exist; on TCP it floods the "
      "link and loses\nto pairwise regardless.  The tuned column follows "
      "the winner without\nbeing told which network it runs on.\n");
  return 0;
}
