# Empty dependencies file for historic_learning.
# This may be replaced when dependencies are built.
