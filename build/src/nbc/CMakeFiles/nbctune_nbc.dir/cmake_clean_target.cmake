file(REMOVE_RECURSE
  "libnbctune_nbc.a"
)
