// Schedule engine semantics: round barriers, one-communication-round-per-
// progress-pass, restartability, rebinding, local-only rounds.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mpi/world.hpp"
#include "nbc/handle.hpp"
#include "nbc/schedule.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"

using namespace nbctune;
namespace t = nbctune::testing;

namespace {
const net::Platform kIb = net::whale();
}

TEST(Schedule, BuilderFormsRounds) {
  nbc::Schedule s;
  int x = 0;
  s.send(&x, 4, 1);
  s.recv(&x, 4, 1);
  s.barrier();
  s.copy(&x, &x, 4);
  s.barrier();
  s.barrier();  // double barrier must not create an empty round
  s.send(&x, 4, 2);
  s.finalize();
  ASSERT_EQ(s.num_rounds(), 3u);
  EXPECT_EQ(s.round(0).size(), 2u);
  EXPECT_EQ(s.round(1).size(), 1u);
  EXPECT_EQ(s.round(2).size(), 1u);
  EXPECT_EQ(s.total_sends(), 2u);
  EXPECT_EQ(s.total_send_bytes(), 8u);
}

TEST(Schedule, FinalizeDropsTrailingEmptyRound) {
  nbc::Schedule s;
  int x = 0;
  s.send(&x, 4, 0);
  s.barrier();
  s.finalize();
  EXPECT_EQ(s.num_rounds(), 1u);
}

TEST(Handle, EmptyScheduleIsImmediatelyDone) {
  t::run_world(kIb, 1, [&](mpi::Ctx& ctx) {
    nbc::Schedule s;
    s.finalize();
    // A schedule with one empty round (no actions at all).
    nbc::Handle h(ctx, ctx.world().comm_world(), &s, ctx.world().comm_world().context() + (1 << 20));
    h.start();
    EXPECT_TRUE(h.done());
    h.wait();  // returns immediately
  });
}

TEST(Handle, LocalOnlyRoundsCompleteAtStart) {
  std::vector<int> dst(4, 0);
  t::run_world(kIb, 1, [&](mpi::Ctx& ctx) {
    std::vector<int> src{1, 2, 3, 4};
    nbc::Schedule s;
    s.copy(src.data(), dst.data(), 2 * sizeof(int));
    s.barrier();
    s.copy(src.data() + 2, dst.data() + 2, 2 * sizeof(int));
    s.finalize();
    nbc::Handle h(ctx, ctx.world().comm_world(), &s, 1 << 20);
    h.start();
    EXPECT_TRUE(h.done());
  });
  EXPECT_EQ(dst, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Handle, RoundBarrierOrdersMessages) {
  // Rank 0's schedule: send A to 1, barrier, send B to 1.  Rank 1 receives
  // both; B must carry the value A's round completed with.
  int got_a = 0, got_b = 0;
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int tag = 1 << 20;
    if (ctx.world_rank() == 0) {
      int a = 10, b = 20;
      nbc::Schedule s;
      s.send(&a, sizeof a, 1);
      s.barrier();
      s.send(&b, sizeof b, 1);
      s.finalize();
      nbc::Handle h(ctx, comm, &s, tag);
      h.start();
      h.wait();
    } else {
      nbc::Schedule s;
      s.recv(&got_a, sizeof got_a, 0);
      s.barrier();
      s.recv(&got_b, sizeof got_b, 0);
      s.finalize();
      nbc::Handle h(ctx, comm, &s, tag);
      h.start();
      h.wait();
    }
  });
  EXPECT_EQ(got_a, 10);
  EXPECT_EQ(got_b, 20);
}

TEST(Handle, MultiRoundNeedsMultiplePokes) {
  // A k-round ping schedule on the sender side advances at most one
  // communication round per progress pass.
  const int kRounds = 4;
  std::vector<double> completion_rounds;
  t::run_world(kIb, 9, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int tag = 1 << 20;
    std::vector<int> vals(kRounds, 7);
    if (ctx.world_rank() == 0) {
      nbc::Schedule s;
      for (int r = 0; r < kRounds; ++r) {
        s.send(&vals[r], sizeof(int), 8);
        s.barrier();
      }
      s.finalize();
      nbc::Handle h(ctx, comm, &s, tag);
      h.start();
      // Sends are eager: each round completes quickly on the NIC, but the
      // NEXT round is only posted by a progress pass.
      int pokes = 0;
      while (!h.done()) {
        ctx.compute(1e-4);
        ctx.progress();
        ++pokes;
      }
      EXPECT_GE(pokes, kRounds - 1);
      completion_rounds.push_back(h.rounds_completed());
    } else if (ctx.world_rank() == 8) {
      nbc::Schedule s;
      for (int r = 0; r < kRounds; ++r) {
        s.recv(&vals[r], sizeof(int), 0);
        s.barrier();
      }
      s.finalize();
      nbc::Handle h(ctx, comm, &s, tag);
      h.start();
      h.wait();
      for (int r = 0; r < kRounds; ++r) EXPECT_EQ(vals[r], 7);
    }
  });
}

TEST(Handle, RestartRunsAgain) {
  int received = 0;
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int tag = 1 << 20;
    int buf = 0;
    nbc::Schedule s;
    if (ctx.world_rank() == 0) {
      s.send(&buf, sizeof buf, 1);
    } else {
      s.recv(&buf, sizeof buf, 0);
    }
    s.finalize();
    nbc::Handle h(ctx, comm, &s, tag);
    for (int it = 0; it < 5; ++it) {
      if (ctx.world_rank() == 0) buf = 100 + it;
      h.start();
      h.wait();
      if (ctx.world_rank() == 1) {
        EXPECT_EQ(buf, 100 + it);
        ++received;
      }
    }
  });
  EXPECT_EQ(received, 5);
}

TEST(Handle, StartWhileActiveThrows) {
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int tag = 1 << 20;
    int buf = 0;
    nbc::Schedule s;
    if (ctx.world_rank() == 0) {
      s.send(&buf, sizeof buf, 1);
    } else {
      s.recv(&buf, sizeof buf, 0);
    }
    s.finalize();
    nbc::Handle h(ctx, comm, &s, tag);
    h.start();
    if (!h.done()) {
      EXPECT_THROW(h.start(), std::logic_error);
      EXPECT_THROW(h.rebind(&s), std::logic_error);
    }
    h.wait();
  });
}

TEST(Handle, RebindSwitchesSchedule) {
  int got1 = 0, got2 = 0;
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int tag = 1 << 20;
    int a = 11, b = 22;
    nbc::Schedule s1, s2;
    if (ctx.world_rank() == 0) {
      s1.send(&a, sizeof a, 1);
      s2.send(&b, sizeof b, 1);
    } else {
      s1.recv(&got1, sizeof got1, 0);
      s2.recv(&got2, sizeof got2, 0);
    }
    s1.finalize();
    s2.finalize();
    nbc::Handle h(ctx, comm, &s1, tag);
    h.start();
    h.wait();
    h.rebind(&s2);
    h.start();
    h.wait();
  });
  EXPECT_EQ(got1, 11);
  EXPECT_EQ(got2, 22);
}

TEST(Handle, TestPollsWithoutBlocking) {
  t::run_world(kIb, 9, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int tag = 1 << 20;
    std::vector<std::byte> buf(64);
    nbc::Schedule s;
    if (ctx.world_rank() == 0) {
      s.send(buf.data(), buf.size(), 8);
      s.finalize();
      nbc::Handle h(ctx, comm, &s, tag);
      h.start();
      while (!h.test()) ctx.compute(1e-6);
      EXPECT_TRUE(h.done());
    } else if (ctx.world_rank() == 8) {
      s.recv(buf.data(), buf.size(), 0);
      s.finalize();
      nbc::Handle h(ctx, comm, &s, tag);
      h.start();
      // First test at t=0 cannot see a message that needs wire latency.
      EXPECT_FALSE(h.test());
      while (!h.test()) ctx.compute(1e-6);
    }
  });
}

TEST(Handle, ConcurrentOperationsWithDistinctTags) {
  // Two outstanding operations between the same pair must not cross-match.
  int first = 0, second = 0;
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    int a = 1, b = 2;
    nbc::Schedule sa, sb;
    if (ctx.world_rank() == 0) {
      sa.send(&a, sizeof a, 1);
      sb.send(&b, sizeof b, 1);
    } else {
      // Post the "b" operation first: without tag isolation a would land
      // in it.
      sb.recv(&second, sizeof second, 0);
      sa.recv(&first, sizeof first, 0);
    }
    sa.finalize();
    sb.finalize();
    const int tag_a = ctx.alloc_nbc_tag();
    const int tag_b = ctx.alloc_nbc_tag();
    nbc::Handle ha(ctx, comm, &sa, tag_a);
    nbc::Handle hb(ctx, comm, &sb, tag_b);
    if (ctx.world_rank() == 1) {
      hb.start();
      ha.start();
      ha.wait();
      hb.wait();
    } else {
      ha.start();
      hb.start();
      ha.wait();
      hb.wait();
    }
  });
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
}
