// Figure 6: influence of the number of progress calls on execution time —
// Ibcast on whale, 32 processes, 1 KB message, 50 ms compute/iteration,
// sweeping the number of progress calls per iteration.
//
// Expected shape (paper §IV-A-d): a few progress calls improve overlap,
// but beyond some point adding more only adds progress-engine overhead
// and the execution time rises again.

#include "bench_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::harness;

int main(int argc, char** argv) {
  bench::Driver drv("fig6", argc, argv);
  harness::banner(
      "Fig 6: progress-call count vs execution time — Ibcast, whale, "
      "32 procs, 1 KB, 50 ms compute/iter (binomial/seg32k)");
  MicroScenario s;
  s.platform = net::whale();
  s.nprocs = 32;
  s.op = OpKind::Ibcast;
  s.bytes = 1024;
  s.compute_per_iter = 50e-3;
  s.iterations = drv.full() ? 30 : 10;
  s.noise_scale = 0.0;  // systematic comparison: noise off
  auto fset = scenario_functionset(s);
  const int impl = fset->find_by_name("binomial/seg32k");

  harness::Table t({"progress_calls", "loop_time[s]", "vs_pc1"});
  const std::vector<int> pcs = {0, 1, 2, 5, 10, 100, 1000, 10000};
  std::vector<RunOutcome> runs(pcs.size());
  {
    auto timer = drv.timer();
    drv.pool().run_indexed(pcs.size(), [&](std::size_t i) {
      MicroScenario si = s;
      si.progress_calls = pcs[i];
      runs[i] = run_fixed(si, impl);
    });
  }
  double base = 0.0;
  for (std::size_t i = 0; i < pcs.size(); ++i) {
    if (pcs[i] == 1) base = runs[i].loop_time;
    t.add_row({std::to_string(pcs[i]), harness::Table::num(runs[i].loop_time),
               base > 0 ? harness::Table::num(runs[i].loop_time / base, 3)
                        : "-"});
  }
  t.print();
  std::cout << "\nExpected: dips at moderate counts, rises again when the\n"
               "per-call overhead outweighs the gained overlap.\n";
  return 0;
}
