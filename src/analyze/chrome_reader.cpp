#include "analyze/chrome_reader.hpp"

#include <cctype>
#include <cstdlib>
#include <istream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

// A deliberately small recursive-descent JSON parser: no external
// dependencies are allowed in this repo, and the input is our own
// exporter's output, so we only need the core grammar (objects, arrays,
// strings with backslash escapes, numbers, true/false/null).

namespace nbctune::analyze {

namespace {

struct Value;
using Object = std::vector<std::pair<std::string, Value>>;  // keeps order
using Array = std::vector<Value>;

struct Value {
  enum class Kind { Null, Bool, Num, Str, Arr, Obj } kind = Kind::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::shared_ptr<Array> arr;
  std::shared_ptr<Object> obj;

  [[nodiscard]] const Value* get(const std::string& key) const {
    if (kind != Kind::Obj || !obj) return nullptr;
    for (const auto& [k, v] : *obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] double as_num(double fallback = 0.0) const {
    return kind == Kind::Num ? num : fallback;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("chrome trace parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::Str;
        v.str = string();
        return v;
      }
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return Value{};
      default:
        return number();
    }
  }

  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  Value boolean() {
    Value v;
    v.kind = Value::Kind::Bool;
    if (peek() == 't') {
      literal("true");
      v.b = true;
    } else {
      literal("false");
    }
    return v;
  }

  Value number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a number");
    Value v;
    v.kind = Value::Kind::Num;
    v.num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          default:
            out += e;  // \" \\ \/ and anything exotic: literal
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Arr;
    v.arr = std::make_shared<Array>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr->push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected , or ] in array");
    }
    return v;
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Obj;
    v.obj = std::make_shared<Object>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj->emplace_back(std::move(key), value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected , or } in object");
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Invert trace.cpp's chrome_tid mapping.
std::int32_t track_of_tid(long long tid) {
  return tid >= 1000000 ? static_cast<std::int32_t>(-1 - (tid - 1000000))
                        : static_cast<std::int32_t>(tid);
}

}  // namespace

std::vector<ScenarioTrace> read_chrome(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  const Value root = Parser(text).parse();
  const Value* events = root.get("traceEvents");
  if (events == nullptr || events->kind != Value::Kind::Arr) {
    throw std::runtime_error("chrome trace: no traceEvents array");
  }
  std::map<long long, ScenarioTrace> by_pid;  // ordered = export order
  for (const Value& ev : *events->arr) {
    if (ev.kind != Value::Kind::Obj) continue;
    const Value* pid = ev.get("pid");
    if (pid == nullptr) continue;
    const long long p = static_cast<long long>(pid->as_num(-1));
    ScenarioTrace& t = by_pid[p];
    const Value* ph = ev.get("ph");
    const std::string phase =
        ph != nullptr && ph->kind == Value::Kind::Str ? ph->str : "";
    const Value* name = ev.get("name");
    const std::string ename =
        name != nullptr && name->kind == Value::Kind::Str ? name->str : "";
    const Value* args = ev.get("args");
    if (phase == "M") {
      if (ename == "process_name" && args != nullptr) {
        if (const Value* n = args->get("name");
            n != nullptr && n->kind == Value::Kind::Str) {
          t.label = n->str;
        }
      }
      continue;
    }
    AEvent a;
    a.name = ename;
    if (const Value* cat = ev.get("cat");
        cat != nullptr && cat->kind == Value::Kind::Str) {
      a.cat = cat->str;
    }
    if (const Value* tid = ev.get("tid"); tid != nullptr) {
      a.track = track_of_tid(static_cast<long long>(tid->as_num(0)));
    }
    if (const Value* ts = ev.get("ts"); ts != nullptr) {
      a.ts = ts->as_num(0) * 1e-6;  // exported in microseconds
    }
    if (phase == "X") {
      if (const Value* dur = ev.get("dur"); dur != nullptr) {
        a.dur = dur->as_num(0) * 1e-6;
      } else {
        a.dur = 0.0;
      }
    }
    if (args != nullptr && args->kind == Value::Kind::Obj) {
      for (const auto& [k, v] : *args->obj) {
        const std::uint64_t u = static_cast<std::uint64_t>(v.as_num(0));
        if (k == "corr") {
          a.corr = u;
        } else if (a.akey.empty()) {
          a.akey = k;
          a.aval = u;
        } else if (a.bkey.empty()) {
          a.bkey = k;
          a.bval = u;
        }
      }
    }
    t.events.push_back(std::move(a));
  }
  std::vector<ScenarioTrace> out;
  out.reserve(by_pid.size());
  for (auto& [p, t] : by_pid) out.push_back(std::move(t));
  return out;
}

std::map<std::string, std::uint64_t> read_counters(std::istream& is) {
  std::map<std::string, std::uint64_t> out;
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "counter") {
      std::string name;
      std::uint64_t v = 0;
      if (ls >> name >> v) out[name] = v;
    } else if (kind == "hist") {
      // "hist <name> count <c> sum <s>" header lines only; per-bucket
      // lines ("hist <name> bucket <i> <n>") are skipped.
      std::string name, f1, f2;
      std::uint64_t v1 = 0, v2 = 0;
      if (ls >> name >> f1 >> v1 >> f2 >> v2 && f1 == "count" &&
          f2 == "sum") {
        out[name + ".count"] = v1;
        out[name + ".sum"] = v2;
      }
    } else if (kind == "scenarios" || kind == "trace_events") {
      std::uint64_t v = 0;
      if (ls >> v) out[kind] = v;
    }
  }
  return out;
}

}  // namespace nbctune::analyze
