file(REMOVE_RECURSE
  "libnbctune_net.a"
)
