#pragma once

// Deterministic fault injection. A FaultPlan is parsed from a compact spec
// string and attached to a scenario; the transport owns one Injector per
// World and consults it at the sim/net boundary. All randomness comes from
// the plan's own seeded stream (mixed with the scenario seed), so a fixed
// (seed, plan) pair produces byte-identical traces at any --threads count.
//
// Spec grammar (see EXPERIMENTS.md "Running under faults"):
//   spec       := component (';' component)*
//   component  := name ':' kv (',' kv)*     -- fault component
//               | kv                        -- top-level resilience scalar
//   kv         := key '=' value
//
// Components: drop, dup, degrade, stall, straggler, starve, drift.
// Scalars: seed, rto, retries, op_timeout, max_attempts, lease.
//
// Fail-stop kills use a dedicated component spelled without a colon:
//   kill=rank@t[,rank@t...]
// Each entry silences the rank's NIC permanently and stops its progress
// engine at simulated time t (see EXPERIMENTS.md "Surviving rank
// failures").  `lease` bounds the failure-detection latency.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace nbctune::fault {

struct Window {
  double t0 = 0.0;
  double t1 = 1e30;
  bool contains(double t) const { return t >= t0 && t < t1; }
};

struct NicStall {
  int node = -1;  // -1 matches every node
  double t0 = 0.0;
  double dur = 0.0;
};

struct Straggler {
  int rank = -1;
  double factor = 1.0;  // compute-time multiplier inside the window
  Window win;
};

struct Starve {
  int rank = -1;
  double cost = 0.0;  // extra seconds charged per progress pass
  Window win;
};

struct Kill {
  int rank = -1;
  double t = 0.0;  // fail-stop instant (simulated seconds)
};

struct FaultPlan {
  std::uint64_t seed = 1;

  // Message-level injections (inter-node envelopes only).
  double drop_p = 0.0;
  Window drop_win;
  int drop_max = -1;  // -1 = unlimited
  double dup_p = 0.0;
  Window dup_win;
  int dup_max = -1;

  // Link degradation: multipliers on inter-node latency / byte time.
  bool has_degrade = false;
  Window degrade_win;
  double degrade_lat = 1.0;
  double degrade_bw = 1.0;

  std::vector<NicStall> stalls;
  std::vector<Straggler> stragglers;
  std::vector<Starve> starves;

  // Fail-stop process deaths (kill=rank@t,...).
  std::vector<Kill> kills;

  // Resilience knobs consumed by mpi/nbc/adcl when the plan is attached.
  double rto = 2e-3;          // initial retransmit timeout (doubles per retry)
  int retries = 8;            // retransmits before a send is declared failed
  double op_timeout = 0.0;    // NBC cancel-on-timeout (0 = off; parse() turns
                              // it on for lossy plans unless set explicitly)
  int max_attempts = 10;      // fallback restarts before the op gives up
  int drift_window = 0;       // ADCL post-decision sample window (0 = off)
  double drift_tolerance = 0.5;
  double lease = 5e-3;        // liveness lease: a death at t becomes
                              // detectable at t + lease on every survivor

  bool lossy() const { return drop_p > 0.0 || dup_p > 0.0; }
  bool has_kills() const { return !kills.empty(); }
  bool enabled() const;

  // Throws std::invalid_argument on malformed specs. An empty spec is the
  // all-quiet plan (enabled() == false).
  static FaultPlan parse(const std::string& spec);

  // Canonical serialization: fixed component order, %.17g numerics, every
  // resilience scalar spelled out.  parse(print()) reproduces the plan
  // exactly, and print() is a fixed point: parse→print→parse→print yields
  // byte-identical strings (the fuzz test's round-trip contract).
  std::string print() const;
};

class Injector {
 public:
  Injector(const FaultPlan& plan, std::uint64_t scenario_seed);

  const FaultPlan& plan() const { return plan_; }

  // Stateful draws: each eligible message consumes exactly one uniform from
  // the plan's stream. Ineligible messages (p == 0, outside the window, or
  // budget exhausted) draw nothing, so adding a bounded component does not
  // reshuffle later draws.
  bool inject_drop(double now);
  bool inject_duplicate(double now);

  // Pure queries (no stream consumption).
  double latency_mult(double now) const;
  double byte_time_mult(double now) const;
  // Earliest time node's NIC may act: max(now, end of any covering stall).
  double nic_release(int node, double now) const;
  double compute_dilation(int rank, double now) const;
  double starvation_penalty(int rank, double now) const;

  int drops() const { return drops_; }
  int dups() const { return dups_; }

 private:
  FaultPlan plan_;
  sim::Rng rng_;
  int drops_ = 0;
  int dups_ = 0;
};

// Named plans used by bench_fault_sweep, bench_failure_sweep, tests, and
// CI.  `desc` is the one-liner printed by bench drivers' --list-plans.
struct CannedPlan {
  std::string name;
  std::string spec;
  std::string desc;
};
const std::vector<CannedPlan>& canned_plans();

}  // namespace nbctune::fault
