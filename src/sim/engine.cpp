#include "sim/engine.hpp"

#include <sstream>
#include <stdexcept>

namespace nbctune::sim {

// ---------------------------------------------------------------- Process

Process::Process(Engine& engine, int id, std::string name,
                 std::function<void(Process&)> body, std::size_t stack_bytes)
    : engine_(engine),
      id_(id),
      name_(std::move(name)),
      fiber_([this, body = std::move(body)] { body(*this); }, stack_bytes) {}

void Process::sleep(Time dt) {
  if (dt < 0) throw std::invalid_argument("Process::sleep: negative dt");
  if (dt == 0) return;
  engine_.schedule_after(dt, [this] { run_slice(); });
  fiber_.yield();
}

void Process::suspend() {
  if (wake_pending_) {
    wake_pending_ = false;
    return;
  }
  suspended_ = true;
  fiber_.yield();
  suspended_ = false;
}

void Process::wake() {
  if (fiber_.running() || finished()) return;
  if (!suspended_) {
    // Sleeping or not yet started: remember the wake so the next suspend()
    // returns immediately.
    wake_pending_ = true;
    return;
  }
  if (wake_pending_) return;  // a resume event is already queued
  wake_pending_ = true;
  engine_.schedule_after(0.0, [this] {
    if (suspended_) {
      wake_pending_ = false;
      run_slice();
    }
    // If the process is no longer suspended (e.g. finished), drop the wake.
  });
}

void Process::run_slice() { fiber_.resume(); }

// ----------------------------------------------------------------- Engine

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

std::uint64_t Engine::schedule_at(Time t, Callback cb) {
  if (t < now_) throw std::invalid_argument("schedule_at: time in the past");
  const std::uint64_t id = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(cb));
  }
  queue_.push(Event{t, id, slot});
  return id;
}

void Engine::cancel(std::uint64_t id) { cancelled_.insert(id); }

Process& Engine::add_process(std::string name,
                             std::function<void(Process&)> body,
                             std::size_t stack_bytes) {
  const int id = static_cast<int>(processes_.size());
  processes_.push_back(std::make_unique<Process>(*this, id, std::move(name),
                                                 std::move(body), stack_bytes));
  Process* p = processes_.back().get();
  start_pending_.push_back(p);
  if (running_) {
    // Started mid-run: launch via an event at the current time.
    schedule_after(0.0, [this] { launch_pending(); });
  }
  return *p;
}

bool Engine::step() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    Callback cb = std::move(slots_[ev.slot]);
    free_slots_.push_back(ev.slot);
    if (!cancelled_.empty() && cancelled_.erase(ev.seq) > 0) continue;
    now_ = ev.t;
    ++events_processed_;
    cb();
    return true;
  }
  return false;
}

void Engine::check_deadlock() const {
  std::ostringstream oss;
  bool any = false;
  for (const auto& p : processes_) {
    if (!p->finished() && p->suspended()) {
      if (!any) {
        oss << "simulated deadlock: event queue empty but processes "
               "suspended:";
        any = true;
      }
      oss << ' ' << p->name();
    }
  }
  if (any) throw DeadlockError(oss.str());
}

void Engine::launch_pending() {
  // FIFO start order (process 0 first) for reproducible startup.
  std::vector<Process*> batch;
  batch.swap(start_pending_);
  for (Process* p : batch) p->run_slice();
}

void Engine::run() {
  running_ = true;
  launch_pending();
  while (step()) {
  }
  running_ = false;
  check_deadlock();
}

void Engine::run_until(Time t) {
  running_ = true;
  launch_pending();
  while (!queue_.empty() && queue_.top().t <= t) {
    step();
  }
  if (now_ < t) now_ = t;
  running_ = false;
}

}  // namespace nbctune::sim
