#include "obs/live.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>

#include "analyze/analyze.hpp"

namespace nbctune::obs {

namespace {

std::atomic<LiveSink*> g_signal_target{nullptr};

long long ns(double seconds) {
  return static_cast<long long>(std::llround(seconds * 1e9));
}

/// Share of `part` in `total` as basis points (0 when total is empty).
long long share_bp(double part, double total) {
  if (total <= 0.0) return 0;
  return static_cast<long long>(std::llround(part / total * 1e4));
}

void append_u64(std::string& s, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  s += buf;
}

void append_i64(std::string& s, long long v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  s += buf;
}

}  // namespace

std::string LiveSink::escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + s.size() / 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::uint64_t LiveSink::rss_bytes() noexcept {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size = 0;
  unsigned long long resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return resident * static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

LiveSink::LiveSink(const std::string& path, std::string bench, int threads)
    : bench_(std::move(bench)), t0_(std::chrono::steady_clock::now()) {
  if (path == "-") {
    fd_ = 1;  // stdout; nbctune-top skips interleaved non-JSON lines
    owns_fd_ = false;
  } else {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    owns_fd_ = fd_ >= 0;
  }
  if (fd_ < 0) return;
  std::string body = "{\"type\":\"hello\",\"schema\":\"nbctune-live-v1\"";
  body += ",\"bench\":\"" + escape_json(bench_) + "\"";
  body += ",\"threads\":";
  append_i64(body, threads);
  body += "}";
  write_line(std::move(body));
}

LiveSink::~LiveSink() {
  if (g_signal_target.load(std::memory_order_acquire) == this) {
    g_signal_target.store(nullptr, std::memory_order_release);
  }
  if (owns_fd_ && fd_ >= 0) ::close(fd_);
}

long long LiveSink::now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

void LiveSink::write_line(std::string body) {
  if (fd_ < 0 || finalized_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (finalized_.load(std::memory_order_acquire)) return;
  // seq is assigned under the lock, immediately before the write, so the
  // numeric order equals the byte order of the stream.
  std::string line;
  line.reserve(body.size() + 32);
  const char* brace = body.c_str();
  // body starts with '{'; splice seq/t_ms right after it.
  line += '{';
  line += "\"seq\":";
  append_u64(line, seq_.fetch_add(1, std::memory_order_relaxed));
  line += ",\"t_ms\":";
  append_i64(line, now_ms());
  line += ',';
  line.append(brace + 1);
  line += '\n';
  // One write per line: concurrent writers to the same pipe never
  // interleave mid-record (and the SIGINT path reuses the same fd).
  const char* p = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t w = ::write(fd_, p, left);
    if (w <= 0) break;
    p += w;
    left -= static_cast<std::size_t>(w);
  }
}

void LiveSink::on_scope_start(const std::string& label) {
  started_.fetch_add(1, std::memory_order_relaxed);
  std::string body = "{\"type\":\"scenario\",\"phase\":\"started\"";
  body += ",\"label\":\"" + escape_json(label) + "\"}";
  write_line(std::move(body));
}

void LiveSink::on_scope_finish(const trace::FinishedTrace& t) {
  finished_.fetch_add(1, std::memory_order_relaxed);
  events_.fetch_add(t.events.size(), std::memory_order_relaxed);
  const auto ctr = [&](trace::Ctr c) {
    return t.counts[static_cast<std::size_t>(c)];
  };
  fibers_.fetch_add(ctr(trace::Ctr::SimFibersCreated),
                    std::memory_order_relaxed);
  dropped_.fetch_add(ctr(trace::Ctr::TraceDroppedEvents),
                     std::memory_order_relaxed);
  const std::uint64_t arena = ctr(trace::Ctr::WorldPeakArenaBytes);
  std::uint64_t prev = peak_arena_.load(std::memory_order_relaxed);
  while (arena > prev &&
         !peak_arena_.compare_exchange_weak(prev, arena,
                                            std::memory_order_relaxed)) {
  }

  // Single-scenario analysis: the same critical-path/blame/guideline
  // machinery the terminal report runs, restricted to this trace.  The
  // cost is a second analysis pass per scenario, amortized to noise at
  // sweep granularity.
  std::vector<analyze::ScenarioTrace> one;
  one.push_back(analyze::from_finished(t));
  const analyze::Report rep = analyze::analyze(one);
  if (rep.scenarios.empty()) return;
  const analyze::ScenarioReport& s = rep.scenarios.front();

  std::string body = "{\"type\":\"scenario\",\"phase\":\"finished\"";
  body += ",\"label\":\"" + escape_json(s.label) + "\"";
  body += ",\"ops\":";
  append_u64(body, s.ops_completed);
  body += ",\"ops_started\":";
  append_u64(body, s.ops_started);
  body += ",\"mean_op_ns\":";
  append_i64(body, ns(s.mean_op_elapsed));
  body += ",\"median_op_ns\":";
  append_i64(body, ns(s.op_stats.median));
  body += ",\"op_ci_lo_ns\":";
  append_i64(body, ns(s.op_stats.lo));
  body += ",\"op_ci_hi_ns\":";
  append_i64(body, ns(s.op_stats.hi));
  body += std::string(",\"min_reps_met\":") +
          (s.min_reps_met ? "true" : "false");
  const double tot = s.blame.total();
  body += ",\"blame_bp\":{\"compute\":";
  append_i64(body, share_bp(s.blame.compute, tot));
  body += ",\"progress\":";
  append_i64(body, share_bp(s.blame.progress, tot));
  body += ",\"wire\":";
  append_i64(body, share_bp(s.blame.wire, tot));
  body += ",\"late_sender\":";
  append_i64(body, share_bp(s.blame.late_sender, tot));
  body += ",\"missing_progress\":";
  append_i64(body, share_bp(s.blame.missing_progress, tot));
  body += ",\"other\":";
  append_i64(body, share_bp(s.blame.other, tot));
  body += "}";
  if (s.adcl.present) {
    body += ",\"winner\":";
    append_i64(body, s.adcl.winner);
  }
  if (s.recovery.any()) {
    const analyze::RecoverySummary& rec = s.recovery;
    body += ",\"recovery\":{\"deaths\":";
    append_u64(body, rec.deaths);
    body += ",\"epochs\":";
    append_u64(body, rec.epochs);
    body += ",\"rebuilds\":";
    append_u64(body, rec.rebuilds);
    body += ",\"aborted_ops\":";
    append_u64(body, rec.aborted_ops);
    body += ",\"detection_ns\":";
    append_i64(body, ns(rec.detection));
    body += ",\"time_to_recover_ns\":";
    append_i64(body, ns(rec.time_to_recover));
    body += "}";
  }
  if (s.dropped_events > 0) {
    body += ",\"dropped_events\":";
    append_u64(body, s.dropped_events);
  }
  int checked = 0;
  int passed = 0;
  std::string ids = "[";
  for (std::size_t g = 0; g < rep.guidelines.size(); ++g) {
    const analyze::GuidelineResult& gr = rep.guidelines[g];
    checked += gr.checked;
    passed += gr.passed;
    if (g > 0) ids += ",";
    ids += "\"" + gr.id + "=" + gr.status() + "\"";
  }
  ids += "]";
  body += ",\"guidelines\":{\"checked\":";
  append_i64(body, checked);
  body += ",\"passed\":";
  append_i64(body, passed);
  body += ",\"status\":\"";
  body += checked == 0 ? "n/a" : (passed == checked ? "pass" : "FAIL");
  body += "\",\"ids\":" + ids + "}}";
  write_line(std::move(body));
}

void LiveSink::on_batch_begin(std::size_t tasks) {
  const std::uint64_t total =
      submitted_.fetch_add(tasks, std::memory_order_relaxed) + tasks;
  std::string body = "{\"type\":\"batch\",\"tasks\":";
  append_u64(body, tasks);
  body += ",\"total_submitted\":";
  append_u64(body, total);
  body += "}";
  write_line(std::move(body));
}

void LiveSink::on_task_failed(std::size_t index, const char* what) {
  failed_.fetch_add(1, std::memory_order_relaxed);
  std::string body = "{\"type\":\"scenario\",\"phase\":\"failed\"";
  body += ",\"index\":";
  append_u64(body, index);
  body += ",\"error\":\"" + escape_json(what) + "\"}";
  write_line(std::move(body));
}

void LiveSink::sample(const harness::PoolStats& pool) {
  std::string body = "{\"type\":\"sample\",\"pool\":{\"submitted\":";
  append_u64(body, pool.tasks_submitted);
  body += ",\"completed\":";
  append_u64(body, pool.tasks_completed);
  body += ",\"steals\":";
  append_u64(body, pool.steals);
  body += ",\"queued\":";
  append_u64(body, pool.queued);
  body += ",\"inflight\":";
  append_u64(body, pool.inflight);
  body += "},\"scenarios\":{\"started\":";
  append_u64(body, started_.load(std::memory_order_relaxed));
  body += ",\"finished\":";
  append_u64(body, finished_.load(std::memory_order_relaxed));
  body += ",\"failed\":";
  append_u64(body, failed_.load(std::memory_order_relaxed));
  body += "},\"trace\":{\"events\":";
  append_u64(body, events_.load(std::memory_order_relaxed));
  body += ",\"dropped\":";
  append_u64(body, dropped_.load(std::memory_order_relaxed));
  body += "},\"exec\":{\"fibers\":";
  append_u64(body, fibers_.load(std::memory_order_relaxed));
  body += ",\"peak_arena_bytes\":";
  append_u64(body, peak_arena_.load(std::memory_order_relaxed));
  body += "},\"rss_bytes\":";
  append_u64(body, rss_bytes());
  body += "}";
  write_line(std::move(body));
}

void LiveSink::write_summary(const analyze::Report& report,
                             const std::string& report_json) {
  std::string body = "{\"type\":\"summary\",\"status\":\"ok\"";
  body += ",\"scenarios\":";
  append_u64(body, report.scenarios.size());
  int checked = 0;
  int passed = 0;
  for (const analyze::GuidelineResult& g : report.guidelines) {
    checked += g.checked;
    passed += g.passed;
  }
  body += ",\"guidelines_checked\":";
  append_i64(body, checked);
  body += ",\"guidelines_passed\":";
  append_i64(body, passed);
  body += ",\"report\":\"" + escape_json(report_json) + "\"}";
  write_line(std::move(body));
  finalized_.store(true, std::memory_order_release);
}

LiveSink::Totals LiveSink::totals() const {
  Totals t;
  t.started = started_.load(std::memory_order_relaxed);
  t.finished = finished_.load(std::memory_order_relaxed);
  t.failed = failed_.load(std::memory_order_relaxed);
  t.submitted = submitted_.load(std::memory_order_relaxed);
  t.events = events_.load(std::memory_order_relaxed);
  t.fibers = fibers_.load(std::memory_order_relaxed);
  t.dropped = dropped_.load(std::memory_order_relaxed);
  t.peak_arena = peak_arena_.load(std::memory_order_relaxed);
  return t;
}

void LiveSink::install_signal_target(LiveSink* s) noexcept {
  g_signal_target.store(s, std::memory_order_release);
}

namespace {

/// Async-signal-safe unsigned decimal into buf; returns chars written.
std::size_t sig_format_u64(char* buf, std::uint64_t v) noexcept {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

std::size_t sig_append(char* buf, std::size_t at, const char* lit) noexcept {
  std::size_t i = 0;
  while (lit[i] != '\0') buf[at + i] = lit[i], ++i;
  return at + i;
}

}  // namespace

void LiveSink::abort_from_signal() noexcept {
  LiveSink* s = g_signal_target.load(std::memory_order_acquire);
  if (s == nullptr || s->fd_ < 0) return;
  if (s->finalized_.exchange(true, std::memory_order_acq_rel)) return;
  // Everything below is async-signal-safe: atomics, a stack buffer, one
  // ::write.  No locks — a writer holding mu_ mid-record can at worst
  // leave one torn line *before* this record; the abort summary itself
  // is a single write.
  char buf[192];
  std::size_t at = sig_append(buf, 0, "{\"seq\":");
  at += sig_format_u64(buf + at,
                       s->seq_.fetch_add(1, std::memory_order_relaxed));
  at = sig_append(buf, at,
                  ",\"type\":\"summary\",\"status\":\"aborted\""
                  ",\"scenarios_finished\":");
  at += sig_format_u64(buf + at,
                       s->finished_.load(std::memory_order_relaxed));
  at = sig_append(buf, at, ",\"scenarios_submitted\":");
  at += sig_format_u64(buf + at,
                       s->submitted_.load(std::memory_order_relaxed));
  at = sig_append(buf, at, "}\n");
  const ssize_t ignored = ::write(s->fd_, buf, at);
  (void)ignored;
}

}  // namespace nbctune::obs
