#pragma once

// Shared driver for the 3-D FFT application-kernel benches (Figs 9-12).

#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fft/fft3d.hpp"
#include "mpi/world.hpp"
#include "net/machine.hpp"
#include "sim/engine.hpp"

namespace nbctune::bench {

struct FftRun {
  double total_time = 0.0;          ///< all iterations
  double post_learning_time = 0.0;  ///< iterations after the decision
  int post_learning_iters = 0;
  std::string winner;               ///< tuned winner (Adcl back-end)
  int decision_iteration = -1;
};

/// Run `iters` iterations of the kernel; per-iteration times recorded on
/// rank 0 (all ranks synchronize through the transpose anyway).
inline FftRun run_fft(const net::Platform& platform, int nprocs, int grid_n,
                      fft::Pattern pattern, fft::Backend backend, int iters,
                      const adcl::TuningOptions& tuning = {},
                      bool extended_set = false, int progress_calls = 4,
                      std::uint64_t seed = 1) {
  trace::Scope scope(std::string("fft3d ") + platform.name + " np" +
                     std::to_string(nprocs) + " n" + std::to_string(grid_n) +
                     " " + fft::pattern_name(pattern) + " " +
                     fft::backend_name(backend));
  FftRun out;
  sim::Engine engine(seed);
  net::Machine machine(platform);
  mpi::WorldOptions wopts;
  wopts.nprocs = nprocs;
  wopts.seed = seed;
  wopts.noise_scale = 0.0;   // systematic backend comparison
  mpi::World world(engine, machine, wopts);
  world.launch([&](mpi::Ctx& ctx) {
    fft::Fft3dOptions opt;
    opt.n = grid_n;
    opt.pattern = pattern;
    opt.backend = backend;
    opt.real_math = false;
    opt.progress_calls = progress_calls;
    opt.tuning = tuning;
    opt.extended_set = extended_set;
    fft::Fft3d kernel(ctx, ctx.world().comm_world(), opt);
    std::vector<double> iter_times;
    const double t0 = ctx.now();
    int decision_iter = -1;
    for (int it = 0; it < iters; ++it) {
      const double s = ctx.now();
      kernel.run_iteration();
      iter_times.push_back(ctx.now() - s);
      if (decision_iter < 0 && kernel.selection() != nullptr &&
          kernel.selection()->decided()) {
        decision_iter = it + 1;
      }
    }
    if (ctx.world_rank() == 0) {
      out.total_time = ctx.now() - t0;
      const int cut = decision_iter < 0 ? 0 : decision_iter;
      for (int it = cut; it < iters; ++it) {
        out.post_learning_time += iter_times[it];
      }
      out.post_learning_iters = iters - cut;
      out.decision_iteration = decision_iter;
      if (kernel.selection() != nullptr && kernel.selection()->decided()) {
        out.winner = kernel.selection()
                         ->function_set()
                         .function(kernel.selection()->winner())
                         .name;
      }
    }
  });
  engine.run();
  return out;
}

inline const fft::Pattern kAllPatterns[] = {
    fft::Pattern::Pipelined, fft::Pattern::Tiled, fft::Pattern::Windowed,
    fft::Pattern::WindowTiled};

}  // namespace nbctune::bench
