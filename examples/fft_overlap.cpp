// Domain example: the paper's 3-D FFT application kernel.
//
// Runs a real-math distributed 3-D FFT (32^3 grid on 8 simulated ranks)
// with every overlap pattern and back-end, verifies the numerics against
// a serial reference, and reports the simulated time of each combination
// — a miniature of the paper's Figs. 9/10.

#include <complex>
#include <cstdio>
#include <random>
#include <vector>

#include "fft/fft1d.hpp"
#include "fft/fft3d.hpp"
#include "mpi/world.hpp"
#include "net/machine.hpp"
#include "net/platform.hpp"
#include "sim/engine.hpp"

using namespace nbctune;
using fft::cplx;

namespace {

std::vector<cplx> make_input(int n) {
  std::mt19937 gen(7);
  std::uniform_real_distribution<double> d(-1, 1);
  std::vector<cplx> v(std::size_t(n) * n * n);
  for (auto& x : v) x = cplx(d(gen), d(gen));
  return v;
}

std::vector<cplx> serial_reference(std::vector<cplx> a, int n) {
  std::vector<cplx> col(n);
  for (int z = 0; z < n; ++z)   // x direction
    for (int y = 0; y < n; ++y) fft::fft(&a[(std::size_t(z) * n + y) * n], n);
  for (int z = 0; z < n; ++z)   // y direction
    for (int x = 0; x < n; ++x) {
      for (int y = 0; y < n; ++y) col[y] = a[(std::size_t(z) * n + y) * n + x];
      fft::fft(col.data(), n);
      for (int y = 0; y < n; ++y) a[(std::size_t(z) * n + y) * n + x] = col[y];
    }
  for (int y = 0; y < n; ++y)   // z direction
    for (int x = 0; x < n; ++x) {
      for (int z = 0; z < n; ++z) col[z] = a[(std::size_t(z) * n + y) * n + x];
      fft::fft(col.data(), n);
      for (int z = 0; z < n; ++z) a[(std::size_t(z) * n + y) * n + x] = col[z];
    }
  return a;
}

}  // namespace

int main() {
  const int n = 32;
  const int nprocs = 8;
  const auto input = make_input(n);
  const auto reference = serial_reference(input, n);

  std::printf("%-14s %-14s %12s %10s  %s\n", "pattern", "backend",
              "sim time [s]", "max err", "tuned winner");
  for (fft::Pattern pattern :
       {fft::Pattern::Pipelined, fft::Pattern::Tiled, fft::Pattern::Windowed,
        fft::Pattern::WindowTiled}) {
    for (fft::Backend backend : {fft::Backend::Blocking, fft::Backend::LibNBC,
                                 fft::Backend::Adcl}) {
      sim::Engine engine(1);
      net::Machine machine(net::whale());
      mpi::WorldOptions options;
      options.nprocs = nprocs;
      options.noise_scale = 0.0;
      mpi::World world(engine, machine, options);
      double max_err = 0.0;
      double sim_time = 0.0;
      std::string winner = "-";
      world.launch([&](mpi::Ctx& ctx) {
        fft::Fft3dOptions opt;
        opt.n = n;
        opt.pattern = pattern;
        opt.backend = backend;
        opt.real_math = true;
        opt.tuning.tests_per_function = 1;
        fft::Fft3d kernel(ctx, ctx.world().comm_world(), opt);
        const int me = ctx.world_rank();
        const int planes = n / nprocs;
        const std::vector<cplx> local(
            input.begin() + std::size_t(me) * planes * n * n,
            input.begin() + std::size_t(me + 1) * planes * n * n);
        // A few iterations so the ADCL back-end finishes its learning
        // phase; the input is re-set each time, so the last iteration is
        // a fresh forward transform we can verify.
        for (int it = 0; it < 4; ++it) {
          kernel.set_local_input(local);
          kernel.run_iteration();
        }
        // Verify my pencils against the serial transform.
        const int width = n / nprocs;
        for (int xl = 0; xl < width; ++xl)
          for (int y = 0; y < n; ++y)
            for (int z = 0; z < n; ++z) {
              const cplx have = kernel.pencils()[(std::size_t(xl) * n + y) * n + z];
              const cplx want =
                  reference[(std::size_t(z) * n + y) * n + me * width + xl];
              max_err = std::max(max_err, std::abs(have - want));
            }
        if (me == 0) {
          sim_time = ctx.now();
          if (kernel.selection() != nullptr && kernel.selection()->decided()) {
            winner = kernel.selection()
                         ->function_set()
                         .function(kernel.selection()->winner())
                         .name;
          }
        }
      });
      engine.run();
      std::printf("%-14s %-14s %12.6f %10.2e  %s\n",
                  fft::pattern_name(pattern), fft::backend_name(backend),
                  sim_time, max_err, winner.c_str());
    }
  }
  return 0;
}
