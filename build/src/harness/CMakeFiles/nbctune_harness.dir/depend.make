# Empty dependencies file for nbctune_harness.
# This may be replaced when dependencies are built.
