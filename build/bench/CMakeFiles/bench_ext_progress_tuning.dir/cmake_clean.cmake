file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_progress_tuning.dir/bench_ext_progress_tuning.cpp.o"
  "CMakeFiles/bench_ext_progress_tuning.dir/bench_ext_progress_tuning.cpp.o.d"
  "bench_ext_progress_tuning"
  "bench_ext_progress_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_progress_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
