// Unit tests for the discrete-event core: event ordering, determinism,
// fiber lifecycle, process sleep/suspend/wake semantics, resources, RNG.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"

namespace sim = nbctune::sim;

// ----------------------------------------------------------------- Fiber

TEST(Fiber, RunsToCompletion) {
  int steps = 0;
  sim::Fiber f([&] { steps = 42; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(steps, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> trace;
  sim::Fiber f([&] {
    trace.push_back(1);
    sim::Fiber::current()->yield();
    trace.push_back(3);
  });
  f.resume();
  trace.push_back(2);
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, CurrentTracksExecution) {
  EXPECT_EQ(sim::Fiber::current(), nullptr);
  sim::Fiber* seen = nullptr;
  sim::Fiber f([&] { seen = sim::Fiber::current(); });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(sim::Fiber::current(), nullptr);
}

TEST(Fiber, ExceptionPropagatesToResume) {
  sim::Fiber f([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, ResumeAfterFinishThrows) {
  sim::Fiber f([] {});
  f.resume();
  EXPECT_THROW(f.resume(), std::logic_error);
}

TEST(Fiber, NestedFibers) {
  std::vector<int> trace;
  sim::Fiber inner([&] { trace.push_back(2); });
  sim::Fiber outer([&] {
    trace.push_back(1);
    inner.resume();
    trace.push_back(3);
  });
  outer.resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

// ---------------------------------------------------------------- Engine

TEST(Engine, EventsFireInTimeOrder) {
  sim::Engine eng;
  std::vector<int> order;
  eng.schedule_at(2.0, [&] { order.push_back(2); });
  eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(3.0, [&] { order.push_back(3); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  sim::Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, SchedulingInThePastThrows) {
  sim::Engine eng;
  eng.schedule_at(1.0, [&] {
    EXPECT_THROW(eng.schedule_at(0.5, [] {}), std::invalid_argument);
  });
  eng.run();
}

TEST(Engine, CancelledEventsDoNotFire) {
  sim::Engine eng;
  bool fired = false;
  auto id = eng.schedule_at(1.0, [&] { fired = true; });
  eng.cancel(id);
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, EventsCanScheduleEvents) {
  sim::Engine eng;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) eng.schedule_after(1.0, chain);
  };
  eng.schedule_at(0.0, chain);
  eng.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(eng.now(), 4.0);
}

TEST(Engine, RunUntilStopsAtTime) {
  sim::Engine eng;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    eng.schedule_at(i, [&] { ++count; });
  }
  eng.run_until(5.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
}

TEST(Engine, ProcessSleepAdvancesTime) {
  sim::Engine eng;
  double t_mid = -1, t_end = -1;
  eng.add_process("p", [&](sim::Process& p) {
    p.sleep(1.5);
    t_mid = eng.now();
    p.sleep(2.5);
    t_end = eng.now();
  });
  eng.run();
  EXPECT_DOUBLE_EQ(t_mid, 1.5);
  EXPECT_DOUBLE_EQ(t_end, 4.0);
}

TEST(Engine, ProcessesInterleaveDeterministically) {
  sim::Engine eng;
  std::vector<std::string> trace;
  for (int i = 0; i < 3; ++i) {
    eng.add_process("p" + std::to_string(i), [&, i](sim::Process& p) {
      trace.push_back("a" + std::to_string(i));
      p.sleep(1.0 + i * 0.1);
      trace.push_back("b" + std::to_string(i));
    });
  }
  eng.run();
  ASSERT_EQ(trace.size(), 6u);
  // Startup in rank order, wakeups in sleep-duration order.
  EXPECT_EQ(trace[0], "a0");
  EXPECT_EQ(trace[1], "a1");
  EXPECT_EQ(trace[2], "a2");
  EXPECT_EQ(trace[3], "b0");
  EXPECT_EQ(trace[4], "b1");
  EXPECT_EQ(trace[5], "b2");
}

TEST(Engine, SuspendAndWake) {
  sim::Engine eng;
  double woken_at = -1;
  auto& p = eng.add_process("sleeper", [&](sim::Process& proc) {
    proc.suspend();
    woken_at = eng.now();
  });
  eng.schedule_at(3.0, [&] { p.wake(); });
  eng.run();
  EXPECT_DOUBLE_EQ(woken_at, 3.0);
}

TEST(Engine, WakeDuringSleepIsRemembered) {
  // A wake arriving while the process sleeps (computes) must not interrupt
  // the sleep, but the following suspend() must return immediately.
  sim::Engine eng;
  double resumed_at = -1;
  auto& p = eng.add_process("worker", [&](sim::Process& proc) {
    proc.sleep(5.0);          // wake arrives at t=2 in here
    proc.suspend();           // must not block
    resumed_at = eng.now();
  });
  eng.schedule_at(2.0, [&] { p.wake(); });
  eng.run();
  EXPECT_DOUBLE_EQ(resumed_at, 5.0);
}

TEST(Engine, CoalescedWakes) {
  sim::Engine eng;
  int wake_count = 0;
  auto& p = eng.add_process("w", [&](sim::Process& proc) {
    proc.suspend();
    ++wake_count;
    proc.suspend();
    ++wake_count;
  });
  // Two wakes at the same instant coalesce into one resume; the third
  // wake at t=2 releases the second suspend.
  eng.schedule_at(1.0, [&] {
    p.wake();
    p.wake();
  });
  eng.schedule_at(2.0, [&] { p.wake(); });
  eng.run();
  EXPECT_EQ(wake_count, 2);
}

TEST(Engine, DeadlockDetected) {
  sim::Engine eng;
  eng.add_process("stuck", [](sim::Process& p) { p.suspend(); });
  EXPECT_THROW(eng.run(), sim::Engine::DeadlockError);
}

TEST(Engine, CancelAfterFireIsANoOp) {
  sim::Engine eng;
  int fired = 0;
  auto id = eng.schedule_at(1.0, [&] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);
  eng.cancel(id);  // stale id: must not blow up or affect future events
  bool later = false;
  eng.schedule_at(2.0, [&] { later = true; });
  eng.run();
  EXPECT_TRUE(later);
}

TEST(Engine, StaleCancelDoesNotKillSlotReuser) {
  // The slot of a fired event is recycled; cancelling the fired event's
  // id afterwards must not cancel the unrelated event now in that slot.
  sim::Engine eng;
  auto first = eng.schedule_at(1.0, [] {});
  eng.run();
  int fired = 0;
  eng.schedule_at(2.0, [&] { ++fired; });  // may reuse first's slot
  eng.cancel(first);
  eng.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, CancelHeavyChurnKeepsOrder) {
  // Schedule a block, cancel every other event, interleave a second
  // block reusing the freed slots: survivors fire in (time, seq) order.
  sim::Engine eng;
  std::vector<int> order;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(eng.schedule_at(1.0 + i, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 100; i += 2) eng.cancel(ids[i]);
  for (int i = 100; i < 150; ++i) {
    eng.schedule_at(1.0 + i, [&order, i] { order.push_back(i); });
  }
  eng.run();
  std::vector<int> expect;
  for (int i = 1; i < 100; i += 2) expect.push_back(i);
  for (int i = 100; i < 150; ++i) expect.push_back(i);
  EXPECT_EQ(order, expect);
}

TEST(Engine, ZeroDelayEventsRunFifoAfterPendingHeapEvents) {
  // Heap events already due at the current instant precede zero-delay
  // events scheduled from within a callback at that instant; zero-delay
  // chains preserve FIFO order.
  sim::Engine eng;
  std::vector<std::string> trace;
  eng.schedule_at(1.0, [&] {
    trace.push_back("a");
    eng.schedule_after(0.0, [&] {
      trace.push_back("c");
      eng.schedule_after(0.0, [&] { trace.push_back("e"); });
      eng.schedule_after(0.0, [&] { trace.push_back("f"); });
    });
    eng.schedule_after(0.0, [&] { trace.push_back("d"); });
  });
  eng.schedule_at(1.0, [&] { trace.push_back("b"); });  // already in heap
  eng.schedule_at(2.0, [&] { trace.push_back("g"); });
  eng.run();
  EXPECT_EQ(trace, (std::vector<std::string>{"a", "b", "c", "d", "e", "f",
                                             "g"}));
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
}

TEST(Engine, ZeroDelayEventCanBeCancelled) {
  sim::Engine eng;
  bool fired = false;
  eng.schedule_at(1.0, [&] {
    auto id = eng.schedule_after(0.0, [&] { fired = true; });
    eng.cancel(id);
  });
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, RunUntilDoesNotRunZeroDelayPastLimit) {
  // run_until(t) must not fire events scheduled at a now_ beyond t.
  sim::Engine eng;
  eng.schedule_at(5.0, [] {});
  eng.run();  // now_ == 5
  bool fired = false;
  eng.schedule_after(0.0, [&] { fired = true; });  // at t == 5
  eng.run_until(3.0);                              // in the past: no-op
  EXPECT_FALSE(fired);
  eng.run_until(5.0);  // events at exactly t still fire
  EXPECT_TRUE(fired);
}

TEST(Engine, EventsProcessedCountsOnlyExecuted) {
  sim::Engine eng;
  auto a = eng.schedule_at(1.0, [] {});
  eng.schedule_at(2.0, [] {});
  eng.cancel(a);
  eng.run();
  EXPECT_EQ(eng.events_processed(), 1u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Engine eng(1234);
    std::vector<double> samples;
    eng.add_process("p", [&](sim::Process& p) {
      for (int i = 0; i < 100; ++i) {
        p.sleep(eng.rng().uniform(0.0, 1.0));
        samples.push_back(eng.now());
      }
    });
    eng.run();
    return samples;
  };
  EXPECT_EQ(run_once(), run_once());
}

// -------------------------------------------------------------- Resource

TEST(Resource, SerializesReservations) {
  sim::Resource r("nic");
  auto a = r.reserve(0.0, 2.0);
  auto b = r.reserve(0.0, 3.0);
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  EXPECT_DOUBLE_EQ(a.end, 2.0);
  EXPECT_DOUBLE_EQ(b.start, 2.0);  // queued behind a
  EXPECT_DOUBLE_EQ(b.end, 5.0);
}

TEST(Resource, IdleGapsRespectEarliest) {
  sim::Resource r;
  auto a = r.reserve(0.0, 1.0);
  auto b = r.reserve(10.0, 1.0);  // resource idle 1..10
  EXPECT_DOUBLE_EQ(a.end, 1.0);
  EXPECT_DOUBLE_EQ(b.start, 10.0);
  EXPECT_DOUBLE_EQ(r.busy_total(), 2.0);
  EXPECT_EQ(r.reservations(), 2u);
}

TEST(Resource, ResetClearsState) {
  sim::Resource r;
  r.reserve(0.0, 5.0);
  r.reset();
  EXPECT_DOUBLE_EQ(r.available_at(), 0.0);
  auto s = r.reserve(0.0, 1.0);
  EXPECT_DOUBLE_EQ(s.start, 0.0);
}

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  sim::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  sim::Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  sim::Rng r(42);
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMeanAndSpread) {
  sim::Rng r(42);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}
