#include "net/topology.hpp"

#include <ostream>
#include <stdexcept>

namespace nbctune::net {

const char* level_name(Level l) noexcept {
  switch (l) {
    case Level::Socket: return "socket";
    case Level::Node: return "node";
    case Level::Rack: return "rack";
    case Level::System: return "system";
  }
  return "?";
}

Topology::Topology(const Platform& p) : p_(&p) {
  if (p.nodes <= 0 || p.cores_per_node <= 0 || p.nics_per_node <= 0) {
    throw std::invalid_argument("Topology: platform must have nodes/cores/NICs");
  }
  sockets_ = p.sockets_per_node > 0 ? p.sockets_per_node : 1;
  if (p.cores_per_node % sockets_ != 0) {
    throw std::invalid_argument(
        "Topology: sockets_per_node must divide cores_per_node");
  }
  cores_per_socket_ = p.cores_per_node / sockets_;
  rack_nodes_ = p.nodes_per_rack > 0 ? p.nodes_per_rack : p.nodes;
}

Level Topology::level_between(int node_a, int core_a, int node_b,
                              int core_b) const noexcept {
  if (node_a == node_b) {
    return socket_of_core(core_a) == socket_of_core(core_b) ? Level::Socket
                                                            : Level::Node;
  }
  return rack_of(node_a) == rack_of(node_b) ? Level::Rack : Level::System;
}

const LinkParams& Topology::link(Level l) const noexcept {
  switch (l) {
    case Level::Socket: {
      const LinkParams& s = p_->socket;
      const bool declared = s.latency > 0 || s.byte_time > 0 ||
                            s.send_overhead > 0 || s.recv_overhead > 0;
      return declared ? s : p_->intra;
    }
    case Level::Node: return p_->intra;
    case Level::Rack:
    case Level::System: return p_->inter;
  }
  return p_->inter;
}

std::vector<Stripe> Topology::plan_stripes(std::size_t bytes,
                                           std::size_t min_stripe_bytes) const {
  std::vector<Stripe> out;
  if (bytes == 0) return out;
  std::size_t n = static_cast<std::size_t>(rails());
  if (min_stripe_bytes > 0) {
    const std::size_t worthwhile = bytes / min_stripe_bytes;
    if (worthwhile < n) n = worthwhile;
  }
  if (n < 1) n = 1;
  // Near-equal split: the first (bytes % n) stripes carry one extra byte,
  // so sizes differ by at most one and the sum is exact.
  const std::size_t base = bytes / n;
  const std::size_t extra = bytes % n;
  std::size_t off = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t sz = base + (i < extra ? 1 : 0);
    out.push_back(Stripe{static_cast<int>(i), off, sz});
    off += sz;
  }
  return out;
}

namespace {
void describe_link(std::ostream& os, const char* what, const LinkParams& l) {
  os << "    " << what << ": latency=" << l.latency * 1e6
     << "us byte_time=" << l.byte_time * 1e9 << "ns/B overhead(s/r)="
     << l.send_overhead * 1e6 << "/" << l.recv_overhead * 1e6
     << "us gap=" << l.msg_gap * 1e6 << "us\n";
}
}  // namespace

void describe_platform(std::ostream& os, const Platform& p) {
  const Topology topo(p);
  os << p.name << ": " << p.nodes << " nodes x " << p.cores_per_node
     << " cores (" << p.total_cores() << " ranks max)\n"
     << "    hierarchy: " << topo.sockets_per_node() << " socket(s)/node ("
     << topo.cores_per_socket() << " cores each), " << topo.nodes_per_rack()
     << " node(s)/rack (" << topo.num_racks() << " rack(s))";
  if (p.rack_extra_latency > 0) {
    os << ", +" << p.rack_extra_latency * 1e6 << "us cross-rack";
  }
  os << "\n    rails: " << topo.rails() << " NIC(s)/node, "
     << (p.cpu_driven_bulk ? "CPU-driven bulk" : "NIC-driven bulk")
     << ", eager<=" << p.eager_limit << "B\n";
  describe_link(os, "socket", topo.link(Level::Socket));
  describe_link(os, "node  ", topo.link(Level::Node));
  describe_link(os, "inter ", topo.link(Level::Rack));
  if (p.torus_x > 0) {
    os << "    torus: " << p.torus_x << "x" << p.torus_y << "x" << p.torus_z
       << ", hop_latency=" << p.hop_latency * 1e6 << "us\n";
  }
}

}  // namespace nbctune::net
