#pragma once

// Non-blocking allreduce schedules.  The paper lists All-reduce among the
// operations ADCL supports (§III-A); the classic algorithm menu:
//
//   recursive doubling   log2(P) rounds exchanging full vectors; the
//                        small-message / power-of-two champion
//   reduce+broadcast     binomial reduce to rank 0, binomial broadcast
//                        back; simple, any P
//   ring (Rabenseifner-  reduce-scatter by a P-step ring then allgather;
//   style)               bandwidth-optimal for large vectors, any P
//
// `sbuf` holds `count` elements of `dtype`; `rbuf` receives the full
// reduction on every rank.

#include <cstddef>

#include "mpi/types.hpp"
#include "nbc/schedule.hpp"

namespace nbctune::coll {

/// Recursive doubling; requires power-of-two communicator size.
nbc::Schedule build_iallreduce_recursive_doubling(int me, int n,
                                                  const void* sbuf, void* rbuf,
                                                  std::size_t count,
                                                  nbc::DType dtype,
                                                  mpi::ReduceOp op);

/// Binomial reduce to rank 0 followed by binomial broadcast; any size.
nbc::Schedule build_iallreduce_reduce_bcast(int me, int n, const void* sbuf,
                                            void* rbuf, std::size_t count,
                                            nbc::DType dtype, mpi::ReduceOp op);

/// Ring reduce-scatter + ring allgather; any size, bandwidth-optimal.
nbc::Schedule build_iallreduce_ring(int me, int n, const void* sbuf,
                                    void* rbuf, std::size_t count,
                                    nbc::DType dtype, mpi::ReduceOp op);

}  // namespace nbctune::coll
