# Empty compiler generated dependencies file for bench_ablation_progress.
# This may be replaced when dependencies are built.
