#pragma once

// Structured tracing and metrics (`nbctune::trace`).
//
// The paper's evidence is timeline-shaped — overlap of computation and
// communication under explicit progress calls, protocol crossovers, the
// tuner's selection decisions — so every layer of the stack can record
// *why* a run behaved the way it did:
//
//   * a per-scenario event buffer of spans and instants (engine events,
//     fiber switches, message lifecycle, NBC rounds, progress passes,
//     ADCL decisions), one logical track per simulated rank plus wire
//     tracks per node;
//   * a registry of monotonic counters and power-of-two histograms
//     (bytes on wire, events popped, rounds per collective, ...);
//   * two exporters: Chrome trace-event JSON (loads in ui.perfetto.dev /
//     chrome://tracing) and a flat counter dump for diffing in CI.
//
// Overhead contract: tracing is OFF unless a Session is enabled AND a
// Scope installs a Tracer on the current thread.  Every instrumentation
// helper compiles down to one thread-local load and a null-pointer branch
// (see bench_engine_micro's trace-off case; < 2 % on the event hot path).
//
// Determinism contract: a Tracer belongs to exactly one simulation (one
// Engine, single-threaded), so recording never locks.  Finished tracers
// are merged into the Session in *submission order* — ScenarioPool stages
// per-task buffers and adopts them by task index after the batch joins —
// so a traced sweep produces byte-identical exports at any thread count,
// and stdout is never touched.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace nbctune::trace {

// ----------------------------------------------------------- event model

/// Event category (the Chrome `cat` field; filterable in Perfetto).
enum class Cat : std::uint8_t {
  Engine,    ///< discrete-event engine internals
  Fiber,     ///< fiber/process lifecycle
  Msg,       ///< message lifecycle (post, match, handshake, delivery)
  Wire,      ///< NIC / memory-port serialization intervals
  Nbc,       ///< schedule rounds and operation lifetimes
  Coll,      ///< collective schedule construction
  Progress,  ///< progress-engine passes and application compute
  Adcl,      ///< selection, filtering, decisions
  Harness,   ///< scenario-level markers
};
[[nodiscard]] const char* cat_name(Cat c) noexcept;

/// Monotonic counters.  A fixed enum (not a string registry) keeps the
/// hot-path increment at one array add after the null-tracer branch.
enum class Ctr : std::uint8_t {
  EngineEventsScheduled,  ///< Engine::schedule_at calls
  EngineEventsFired,      ///< callbacks actually executed
  EngineEventsCancelled,  ///< successful Engine::cancel calls
  EngineNowFifoHits,      ///< zero-delay events that bypassed the heap
  FiberSwitches,          ///< scheduler -> fiber resumes
  MsgsEager,              ///< eager payload messages shipped
  MsgsRts,                ///< rendezvous request-to-send messages
  MsgsCts,                ///< rendezvous clear-to-send messages
  MsgsBulkChunks,         ///< CPU-driven bulk chunks pushed
  MsgsNicBulks,           ///< NIC-driven (RDMA) bulk transfers
  BytesOnWire,            ///< payload bytes serialized onto a NIC/mem port
  NbcRoundsPosted,        ///< schedule rounds posted
  NbcOpsStarted,          ///< Handle::start calls
  NbcOpsCompleted,        ///< operations that reached done
  CollSchedulesBuilt,     ///< collective schedules constructed
  ProgressPasses,         ///< progress-engine passes (any trigger)
  ProgressCallsExplicit,  ///< explicit application progress() calls
  AdclBatchesScored,      ///< per-function sample batches scored
  AdclDecisions,          ///< selection decisions finalized
  AdclSamplesSeen,        ///< samples entering statistical filtering
  AdclSamplesFiltered,    ///< samples discarded by the filter
  AdclEliminations,       ///< attribute-heuristic pruning steps
  AdclRetunes,            ///< drift detections that re-opened tuning
  AdclGuidelinePrunes,    ///< members convicted by guideline verdicts
  FaultDrops,             ///< messages dropped by the injector
  FaultDups,              ///< messages duplicated by the injector
  FaultDegradedMsgs,      ///< messages shipped through a degradation window
  FaultNicStalls,         ///< messages delayed by an injected NIC stall
  FaultStragglerBursts,   ///< compute bursts dilated on a straggler rank
  FaultStarvedPasses,     ///< progress passes taxed by starvation
  MsgsAcks,               ///< transport-level acknowledgements shipped
  MsgsRetransmits,        ///< retransmissions after an RTO expiry
  MsgsDupDeliveries,      ///< duplicate deliveries discarded by dedup
  MsgsSendFailures,       ///< sends declared failed (retries exhausted)
  NbcFallbacks,           ///< ops restarted on the fallback algorithm
  SimFibersCreated,       ///< fibers constructed (0 in machine-mode runs)
  WorldPeakArenaBytes,    ///< flat per-rank World arenas at destruction
  RailPinnedMsgs,         ///< inter-node messages on a pinned NIC rail
  RailAutoMsgs,           ///< inter-node messages on the default rail spread
  TraceDroppedEvents,     ///< events discarded by the buffer cap (see
                          ///< NBCTUNE_TRACE_MAX_EVENTS)
  MpiRankDeaths,          ///< fail-stop kills executed by the injector
  MpiShrinks,             ///< agreement rounds that shrank the communicator
  NbcRebuilds,            ///< NBC handles rebuilt on a survivor communicator
  NbcOpsAborted,          ///< started ops torn down by death or recovery
  kCount,
};
[[nodiscard]] const char* ctr_name(Ctr c) noexcept;

/// Power-of-two-bucket histograms of integer values.
enum class Hist : std::uint8_t {
  WireBytes,         ///< bytes per on-wire transfer
  RoundsPerOp,       ///< schedule rounds per completed collective
  ScheduleRounds,    ///< rounds per built schedule
  ProgressPerOp,     ///< explicit progress calls per request iteration
  // Per-hierarchy-level message-size distributions (net::Level of the
  // endpoint pair; see net/topology.hpp).
  SocketBytes,       ///< bytes per same-socket message
  NodeBytes,         ///< bytes per same-node cross-socket message
  RackBytes,         ///< bytes per same-rack inter-node message
  SystemBytes,       ///< bytes per cross-rack message
  kCount,
};
[[nodiscard]] const char* hist_name(Hist h) noexcept;

/// One recorded event.  `name` / arg keys must have static storage
/// duration (string literals at the instrumentation sites).
struct Event {
  double ts = 0.0;    ///< start, simulated seconds
  double dur = -1.0;  ///< span duration; < 0 encodes an instant event
  std::int32_t track = 0;  ///< >= 0: rank; < 0: wire track (see wire_track)
  Cat cat = Cat::Harness;
  const char* name = "";
  const char* akey = nullptr;  ///< optional first argument
  std::uint64_t aval = 0;
  const char* bkey = nullptr;  ///< optional second argument
  std::uint64_t bval = 0;
  /// Correlation id parenting events into causal chains (0 = none).
  /// Message lifecycles share one id across post instant, wire span(s) and
  /// delivery/completion instant; NBC events share the per-rank operation
  /// id; ADCL events carry the learning iteration.  Exported to Chrome
  /// JSON as args.corr — the graph edge the analyzer reconstructs.
  std::uint64_t corr = 0;
};

/// Track id of node `n`'s wire (NIC / memory-port) serialization lane.
[[nodiscard]] constexpr std::int32_t wire_track(int node) noexcept {
  return -1 - node;
}

struct HistData {
  std::array<std::uint64_t, 64> buckets{};  ///< buckets[i]: v in [2^(i-1), 2^i)
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

// ---------------------------------------------------------------- tracer

/// The event buffer and metric registry of ONE simulation.  A simulation
/// is single-threaded (fibers), so recording is plain vector appends and
/// array adds — no locks, no allocation beyond vector growth.
class Tracer {
 public:
  explicit Tracer(std::string label)
      : label_(std::move(label)), max_events_(default_max_events()) {}

  /// Event-buffer cap for new tracers: $NBCTUNE_TRACE_MAX_EVENTS, 0 (the
  /// default) = unbounded.  A mega-scale sweep can emit hundreds of
  /// millions of events; with a cap the buffer stops growing and every
  /// discarded event is tallied in Ctr::TraceDroppedEvents instead, so
  /// exports stay honest about their truncation.
  [[nodiscard]] static std::size_t default_max_events() noexcept;

  void emit(const Event& e) {
    if (max_events_ != 0 && events_.size() >= max_events_) {
      counts_[static_cast<std::size_t>(Ctr::TraceDroppedEvents)] += 1;
      return;
    }
    events_.push_back(e);
  }
  void count(Ctr c, std::uint64_t d = 1) noexcept {
    counts_[static_cast<std::size_t>(c)] += d;
  }
  void record(Hist h, std::uint64_t v) noexcept;

  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t counter(Ctr c) const noexcept {
    return counts_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const HistData& histogram(Hist h) const noexcept {
    return hists_[static_cast<std::size_t>(h)];
  }

 private:
  friend class Session;
  friend class Scope;
  std::string label_;
  std::size_t max_events_ = 0;  ///< 0 = unbounded
  std::vector<Event> events_;
  std::array<std::uint64_t, static_cast<std::size_t>(Ctr::kCount)> counts_{};
  std::array<HistData, static_cast<std::size_t>(Hist::kCount)> hists_{};
};

/// The tracer of the simulation currently running on this thread, or
/// nullptr when tracing is off (the common case).
[[nodiscard]] Tracer* current() noexcept;
/// Install `t` as the current tracer; returns the previous one.
Tracer* set_current(Tracer* t) noexcept;

// Guarded instrumentation helpers: each is a thread-local load plus a
// branch when tracing is off.
inline void count(Ctr c, std::uint64_t d = 1) noexcept {
  if (Tracer* t = current()) t->count(c, d);
}
inline void record(Hist h, std::uint64_t v) noexcept {
  if (Tracer* t = current()) t->record(h, v);
}
inline void emit(const Event& e) {
  if (Tracer* t = current()) t->emit(e);
}
inline void instant(double ts, std::int32_t track, Cat cat, const char* name,
                    const char* akey = nullptr, std::uint64_t aval = 0,
                    const char* bkey = nullptr, std::uint64_t bval = 0,
                    std::uint64_t corr = 0) {
  if (Tracer* t = current()) {
    t->emit(Event{ts, -1.0, track, cat, name, akey, aval, bkey, bval, corr});
  }
}
inline void span(double ts, double dur, std::int32_t track, Cat cat,
                 const char* name, const char* akey = nullptr,
                 std::uint64_t aval = 0, const char* bkey = nullptr,
                 std::uint64_t bval = 0, std::uint64_t corr = 0) {
  if (Tracer* t = current()) {
    t->emit(Event{ts, dur < 0.0 ? 0.0 : dur, track, cat, name, akey, aval,
                  bkey, bval, corr});
  }
}
[[nodiscard]] inline bool active() noexcept { return current() != nullptr; }

// --------------------------------------------------------------- session

/// A finished per-scenario trace, detached from its Tracer.
struct FinishedTrace {
  std::string label;
  std::vector<Event> events;
  std::array<std::uint64_t, static_cast<std::size_t>(Ctr::kCount)> counts{};
  std::array<HistData, static_cast<std::size_t>(Hist::kCount)> hists{};
};

/// Process-wide collector of finished traces.  Disabled by default; a
/// bench driver enables it once (`--trace`).  Adoption order is the
/// export order: Scopes adopt directly when no staging buffer is
/// installed (serial execution), while ScenarioPool stages per-task
/// buffers and adopts them by submission index after the batch joins.
class Session {
 public:
  /// Live observer of scenario lifecycles (src/obs wires its streaming
  /// JSONL sink here).  Callbacks fire on whatever thread runs the
  /// scenario — start from the Scope constructor, finish from the Scope
  /// destructor *before* the trace is staged/adopted, i.e. in completion
  /// order, not submission order.  Implementations must be thread-safe.
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void on_scope_start(const std::string& label) = 0;
    virtual void on_scope_finish(const FinishedTrace& t) = 0;
  };

  /// Install the process-wide lifecycle listener (nullptr to detach).
  /// Install before the sweep starts and detach after it joins; the
  /// pointer itself is read atomically on the scenario hot path.
  static void set_listener(Listener* l) noexcept;
  [[nodiscard]] static Listener* listener() noexcept;

  /// True once enable() was called (lock-free flag read).
  [[nodiscard]] static bool enabled() noexcept;
  /// Turn the session on (idempotent).  There is no disable: a session
  /// lives until process exit, like the bench run it observes.
  static void enable();
  static Session& instance();

  /// Append a finished trace (thread-safe; order = call order).
  void adopt(FinishedTrace t);

  /// Install a staging buffer for the current thread; Scopes finishing on
  /// this thread append there instead of adopting into the session.
  /// Returns the previously installed buffer (restore when done).
  static std::vector<FinishedTrace>* set_staging(
      std::vector<FinishedTrace>* s) noexcept;

  /// Route a finished trace: current thread's staging buffer if any,
  /// otherwise the global session (no-op when the session is disabled).
  static void finish(FinishedTrace t);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t total_events() const;

  /// Remove and return every adopted trace (in adoption order).  Lets
  /// tests inspect one batch in isolation; exporters below see only what
  /// has not been drained.
  [[nodiscard]] std::vector<FinishedTrace> drain();

  /// Chrome trace-event JSON: one pid per adopted scenario, one tid per
  /// rank track plus wire tracks.  Loadable in ui.perfetto.dev.
  void write_chrome(std::ostream& os) const;
  /// Flat deterministic counter/histogram dump for CI diffing.
  void write_counters(std::ostream& os) const;

 private:
  Session() = default;
  struct Impl;
  Impl& impl() const;
};

/// RAII: installs a fresh Tracer for one scenario when the session is
/// enabled; on destruction detaches it and hands the finished trace to
/// the staging buffer / session.  When the session is disabled this is a
/// no-op and tracing stays a null-pointer branch everywhere.
class Scope {
 public:
  explicit Scope(std::string label);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  /// The tracer installed by this scope (null when tracing is off).
  [[nodiscard]] Tracer* tracer() noexcept { return tracer_.get(); }

 private:
  std::unique_ptr<Tracer> tracer_;
  Tracer* prev_ = nullptr;
};

}  // namespace nbctune::trace
