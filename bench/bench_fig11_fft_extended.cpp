// Figure 11: 3-D FFT with the *modified* ADCL Ialltoall function-set
// (blocking implementations included, wait pointer conceptually NULL)
// versus the blocking MPI version, on whale, 160 and 358 processes —
// reporting both the overall execution time and the execution time
// excluding the learning phase.
//
// Expected shape (paper §IV-B-f): the larger function-set lengthens the
// learning phase, so ADCL's *total* can lose to MPI; excluding the
// learning phase, ADCL matches or beats MPI — so for long-running
// applications the extended set pays off.

#include "fft_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::bench;

int main(int argc, char** argv) {
  Driver drv("fig11", argc, argv);
  adcl::TuningOptions tuning;
  tuning.tests_per_function = drv.full() ? 3 : 2;
  // 6 functions in the extended set -> longer learning phase.
  const int iters = 6 * tuning.tests_per_function + (drv.full() ? 16 : 9);

  struct Case {
    int nprocs;
    int grid_n;  // N = 8P (eight planes per rank)
  };
  std::vector<Case> cases = {{160, 1280}};
  if (drv.full()) cases.push_back({358, 2864});  // paper scale

  // One pool task per (case, pattern, backend) run.
  struct Unit {
    Case c;
    fft::Pattern pattern;
    bool adcl;
  };
  std::vector<Unit> units;
  for (const Case& c : cases) {
    for (fft::Pattern p : kAllPatterns) {
      units.push_back({c, p, false});
      units.push_back({c, p, true});
    }
  }
  std::vector<FftRun> results(units.size());
  {
    auto timer = drv.timer();
    drv.pool().run_indexed(units.size(), [&](std::size_t i) {
      const Unit& u = units[i];
      results[i] =
          u.adcl ? run_fft(net::whale(), u.c.nprocs, u.c.grid_n, u.pattern,
                           fft::Backend::Adcl, iters, tuning,
                           /*extended_set=*/true)
                 : run_fft(net::whale(), u.c.nprocs, u.c.grid_n, u.pattern,
                           fft::Backend::Blocking, iters);
    });
  }

  std::size_t unit = 0;
  for (const Case& c : cases) {
    harness::banner(
        "Fig 11: 3-D FFT, extended ADCL function-set (incl. blocking) vs "
        "MPI — whale, " +
        std::to_string(c.nprocs) + " procs, N=" + std::to_string(c.grid_n));
    harness::Table t({"pattern", "MPI[s]", "ADCL+b[s]", "MPI_postK[s]",
                      "ADCL+b_postK[s]", "ADCL winner", "decided@"});
    for (fft::Pattern p : kAllPatterns) {
      const FftRun mpi = results[unit++];
      const FftRun ad = results[unit++];
      // Fair "excluding the learning phase" comparison: the same number of
      // trailing iterations on both sides (paper: "a similar modification
      // to the MPI version in order to measure the same number of
      // iterations in both scenarios").
      const double mpi_per_iter = mpi.total_time / iters;
      const double mpi_post = mpi_per_iter * ad.post_learning_iters;
      t.add_row({fft::pattern_name(p), harness::Table::num(mpi.total_time),
                 harness::Table::num(ad.total_time),
                 harness::Table::num(mpi_post),
                 harness::Table::num(ad.post_learning_time), ad.winner,
                 std::to_string(ad.decision_iteration)});
    }
    t.print();
    std::cout << "(postK columns: the last " << "K" << " iterations after "
              << "ADCL's decision, same count on both sides)\n";
  }
  return 0;
}
