# Empty dependencies file for bench_fft_sweep.
# This may be replaced when dependencies are built.
