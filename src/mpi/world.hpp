#pragma once

// The message-passing world: N simulated ranks on a simulated machine.
//
// World wires the simulation engine, the machine model, and per-rank state
// together.  Rank programs receive a Ctx& — the per-rank API surface — and
// run as fibers.  The central modeling decision (see DESIGN.md):
//
//   * NIC-driven activity (eager payload delivery, RDMA bulk after the
//     rendezvous handshake) advances autonomously in simulated time.
//   * CPU-driven activity (matching, CTS issuance, TCP-style bulk pushes,
//     schedule round transitions) advances ONLY when the owning rank is
//     inside a library call — exactly the single-threaded MPI progress
//     semantics whose consequences the paper studies.

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "mpi/comm.hpp"
#include "mpi/ft.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "net/machine.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace nbctune::mpi {

class World;
class Ctx;

/// Something that wants to be driven by the progress engine (the NBC
/// schedule executor registers itself here).  poke() is called on every
/// progress pass of the owning rank and may post internal operations.
class ProgressClient {
 public:
  virtual ~ProgressClient() = default;
  /// Advance; return the CPU seconds consumed by this poke.
  virtual double poke(Ctx& ctx) = 0;
};

/// Tags at or above this base form the reliable control plane (the
/// bootstrap collectives of collectives.cpp: tuner agreement, recovery
/// votes).  Fault injection never drops or duplicates them and the lossy
/// transport does not ack/track them — recovery agreement must be able to
/// run while the data plane is failing, exactly like the out-of-band
/// channels of real fault-tolerant runtimes.
inline constexpr int kReliableTagBase = 1 << 24;

/// Sub-tags per bootstrap-collective epoch (collectives.cpp uses slots
/// 0..3 of each epoch; shared here so fail-stop recovery can compute the
/// post-shrink tag floor when discarding stale control-plane traffic).
inline constexpr int kCollEpochSpan = 8;

/// World construction options.
struct WorldOptions {
  int nprocs = 2;
  std::uint64_t seed = 1;
  /// Scale factor on the platform's noise model (0 = fully deterministic).
  double noise_scale = 1.0;
  /// Rank placement onto nodes.
  enum class Placement { Block, RoundRobin } placement = Placement::Block;
  /// Fiber stack size for launch(); 0 = sim::default_fiber_stack_bytes()
  /// (NBCTUNE_FIBER_STACK env var, else 256 KiB).  Unused by
  /// launch_machine(), which creates no fibers.
  std::size_t fiber_stack_bytes = 0;
  /// Optional fault plan (must outlive the World).  Attaching a lossy plan
  /// switches inter-node messaging to ack/retransmit mode.
  const fault::FaultPlan* fault_plan = nullptr;
};

// NOTE on cost-model runs: large-scale experiments pass null buffers to
// the collective builders; null source/destination pointers skip the
// payload copies while every modeled cost is still charged.  Non-null
// buffers always move real bytes — the tuner's control plane (decision
// allreduces) depends on it.

namespace detail {

/// In-flight transport message (eager payload, RTS, CTS, or — under a
/// lossy fault plan — an acknowledgement).
struct Envelope {
  enum class Kind : std::uint8_t { Eager, Rts, Cts, Ack } kind = Kind::Eager;
  int src = 0;  ///< world rank
  int dst = 0;  ///< world rank
  int context = 0;
  int tag = 0;
  int rail = -1;  ///< pinned NIC rail (-1 = per-peer default spreading)
  std::size_t bytes = 0;         ///< payload size of the user message
  std::uint64_t match_id = 0;    ///< sender request (Rts/Cts reply routing)
  std::uint64_t peer_match_id = 0;  ///< receiver request (Cts)
  const void* send_buf = nullptr;   ///< sender buffer (rendezvous delivery)
  std::vector<std::byte> payload;   ///< copied eager payload
  std::uint64_t arrival_seq = 0;    ///< per-receiver arrival order
  /// World-unique message id; the trace correlation linking this
  /// message's post instant, wire span(s) and delivery instant.
  std::uint64_t seq = 0;
};

/// Exact-match key for the posted-receive / unexpected-message tables.
struct MatchKey {
  int context;
  int tag;
  int src;
  friend auto operator<=>(const MatchKey&, const MatchKey&) = default;
};

/// Per-rank library-side state.
struct RankState {
  sim::Process* process = nullptr;
  Ctx* ctx = nullptr;
  int node = 0;
  RequestPool pool;
  // Posted receives: exact (context,tag,src) fast path plus a slow list
  // for wildcard receives; post_seq in Request keeps MPI matching order.
  std::map<MatchKey, std::deque<Req>> exact_posted;
  std::vector<Req> wildcard_posted;
  std::map<MatchKey, std::deque<Envelope>> unexpected;
  std::vector<Envelope> inbound;            // arrived, not yet processed
  std::vector<Req> cpu_bulk_sends;          // CPU-driven bulks in progress
  std::vector<ProgressClient*> clients;
  std::size_t outstanding = 0;              // live un-observed requests
  std::uint64_t next_post_seq = 0;
  std::uint64_t next_arrival_seq = 0;
  std::uint64_t ctrl_msgs = 0, data_msgs = 0;
  /// Fail-stop kill executed: the NIC is silenced (ship/deliver discard),
  /// the progress engine is stopped, and the fiber unwinds via RankKilled.
  bool dead = false;
  /// Per-rank noise stream (seeded per scenario): jitter draws are
  /// independent of global event interleaving, so rel_sigma > 0 runs stay
  /// byte-identical across --threads counts.
  sim::Rng noise_rng{1};
  /// Duplicate-delivery suppression under lossy fault plans: (kind, src,
  /// match_id) triples already delivered to this rank.  The kind
  /// disambiguates match ids drawn from different pools (an eager/RTS id
  /// names a request of `src`, a CTS id names one of ours).
  std::set<std::tuple<std::uint8_t, int, std::uint64_t>> seen_msgs;
};

}  // namespace detail

/// Packs a request handle into the 64-bit match id carried by rendezvous
/// control messages (the owning rank travels in the envelope src/dst).
std::uint64_t pack_match(Req h) noexcept;

/// Driver for fiberless (machine-mode) worlds: ranks launched with
/// launch_machine() have no Process, so transport wakeups are dispatched
/// here instead of Process::wake().  The driver owns each rank's explicit
/// state machine and must replicate the fiber blocking protocol (see
/// exec::MachineRunner).
class MachineDriver {
 public:
  virtual ~MachineDriver() = default;
  /// A transport/scheduler event wants rank `wrank` to make progress.
  /// Called from scheduler context, exactly where Process::wake() would be.
  virtual void on_wake(int wrank) = 0;
};

/// The world: owns rank state and the transport.
class World {
 public:
  World(sim::Engine& engine, net::Machine& machine, WorldOptions options);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Launch the same program on every rank.  Call engine.run() afterwards.
  void launch(std::function<void(Ctx&)> program);

  /// Launch the world fiberless: create per-rank Ctxs but no Processes.
  /// The driver (which must outlive the World's event activity) receives
  /// on_wake() calls wherever fiber mode would wake a Process, and runs
  /// each rank as an explicit state machine via rank_ctx().  Blocking Ctx
  /// calls (charge/compute/wait/...) are invalid on machine-driven ranks.
  void launch_machine(MachineDriver& driver);

  /// Per-rank Ctx (valid after launch()/launch_machine()).
  [[nodiscard]] Ctx& rank_ctx(int wrank) { return *ctxs_.at(wrank); }

  /// Bytes in the flat per-rank arenas: the RankState vector plus every
  /// rank's request-pool slots.  Identical across execution modes.
  [[nodiscard]] std::size_t arena_bytes() const noexcept;

  [[nodiscard]] int size() const noexcept { return options_.nprocs; }
  [[nodiscard]] int node_of(int wrank) const;
  /// Core slot of `wrank` within its node (consistent with node_of for
  /// either placement); feeds Topology::level_between for socket locality.
  [[nodiscard]] int core_of(int wrank) const;
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] net::Machine& machine() noexcept { return machine_; }
  [[nodiscard]] const WorldOptions& options() const noexcept { return options_; }
  [[nodiscard]] const net::Platform& platform() const noexcept {
    return machine_.platform();
  }

  /// The communicator containing every rank.
  [[nodiscard]] Comm comm_world() const noexcept { return world_comm_; }

  /// Deterministic child-context allocation: every member of a collective
  /// dup/split asks with the same (parent, epoch, color) triple and gets
  /// the same id.
  int alloc_context(int parent_context, int epoch, int color);

  /// Jitter a cost by the platform noise model (scaled by noise_scale),
  /// drawing from `wrank`'s private noise stream.
  double jitter(int wrank, double cost);

  /// The fault injector, or nullptr when no plan is attached.
  [[nodiscard]] fault::Injector* injector() noexcept {
    return injector_.get();
  }
  /// True when a lossy plan is attached: inter-node messages are acked,
  /// deduplicated, and retransmitted on RTO expiry.
  [[nodiscard]] bool lossy() const noexcept { return lossy_; }

  /// The fail-stop recovery service, or nullptr when the attached plan
  /// has no kills (created by launch(); machine mode rejects kill plans).
  [[nodiscard]] RecoveryService* ft() noexcept { return ft_.get(); }

  /// Dense re-ranking of `survivors` into a fresh communicator (new
  /// context id = fresh tag space).  Called once per agreement round by
  /// the RecoveryService; the decision shares the result with every
  /// survivor, so membership is globally consistent by construction.
  Comm shrink(const std::vector<int>& survivors, int epoch);

  /// True once `wrank` was fail-stopped by a kill plan.
  [[nodiscard]] bool rank_dead(int wrank) const {
    return ranks_.at(static_cast<std::size_t>(wrank)).dead;
  }

  /// Total messages put on the wire (diagnostics).
  [[nodiscard]] std::uint64_t total_data_msgs() const noexcept;
  [[nodiscard]] std::uint64_t total_ctrl_msgs() const noexcept;

  /// Duplicate-suppression entries naming `src` across every rank's
  /// seen_msgs table (diagnostics; recovery reclaims a dead rank's
  /// entries, so this must drop to zero for failed ranks post-shrink).
  [[nodiscard]] std::size_t dedup_entries(int src) const noexcept;

 private:
  friend class Ctx;
  friend class RecoveryService;

  detail::RankState& rank_state(int wrank) { return ranks_.at(wrank); }

  // ---- transport ----
  /// Put an envelope on the wire; `earliest` is when the sender's CPU is
  /// done preparing it.  Returns the transmit-complete time on the sender
  /// (for eager local completion / chunk drain notification).
  sim::Time ship(detail::Envelope env, sim::Time earliest);

  void deliver(detail::Envelope env);  // arrival event body (scheduler ctx)
  void notify(int wrank);              // wake a rank blocked in the library

  /// Schedule an RDMA-style NIC-driven bulk transfer; completes both
  /// request ends via events.
  void start_nic_bulk(int src, int dst, Req sreq, std::uint64_t dst_match,
                      std::size_t bytes, const void* sbuf, sim::Time earliest);

  void complete_request(int wrank, std::uint64_t match_id,
                        const void* deliver_from);

  // ---- resilience (lossy fault plans) ----
  /// Arm (or re-arm) the RTO timer on a tracked send-side message.
  void arm_retransmit(int wrank, Req h);
  /// RTO expiry: retransmit with doubled timeout, or declare failure.
  void on_rto(int wrank, Req h);
  /// Reconstruct the tracked message of `r` for retransmission.
  detail::Envelope rebuild_envelope(int wrank, Req h, const Request& r);
  /// Ack arrival on the sender: mark acked, cancel the timer, complete
  /// eager sends.
  void handle_ack(const detail::Envelope& env);
  /// Ship a zero-byte Ack for a delivered tracked envelope.
  void send_ack(const detail::Envelope& env);

  sim::Engine& engine_;
  net::Machine& machine_;
  WorldOptions options_;
  /// Flat contiguous per-rank arena; sized once in the constructor, never
  /// resized (stable addresses).
  std::vector<detail::RankState> ranks_;
  MachineDriver* driver_ = nullptr;  // set by launch_machine()
  Comm world_comm_;
  std::shared_ptr<const CommData> world_comm_data_;
  std::map<std::tuple<int, int, int>, int> context_registry_;
  int next_context_ = 1;
  std::vector<std::unique_ptr<Ctx>> ctxs_;
  /// Message / bulk-transfer id source (trace correlation; deterministic:
  /// ships happen in simulated-event order, which is seed-stable).
  std::uint64_t next_msg_seq_ = 0;
  std::unique_ptr<fault::Injector> injector_;
  bool lossy_ = false;
  std::unique_ptr<RecoveryService> ft_;
};

/// Per-rank API surface.  A Ctx is only valid inside its own fiber.
class Ctx {
 public:
  Ctx(World& world, int wrank);

  Ctx(const Ctx&) = delete;
  Ctx& operator=(const Ctx&) = delete;

  // ---- identity & time ----
  [[nodiscard]] int world_rank() const noexcept { return wrank_; }
  [[nodiscard]] int world_size() const noexcept { return world_.size(); }
  [[nodiscard]] World& world() noexcept { return world_; }
  [[nodiscard]] sim::Time now() const noexcept { return world_.engine().now(); }

  // ---- computation ----
  /// Burn CPU for `seconds` of simulated time (plus platform noise).
  /// No library progress happens on this rank while computing.
  void compute(double seconds);

  /// One explicit pass of the progress engine (the ADCL progress call).
  void progress();

  // ---- point-to-point ----
  Req isend(const Comm& comm, const void* buf, std::size_t bytes, int dst,
            int tag);
  Req irecv(const Comm& comm, void* buf, std::size_t bytes, int src, int tag);
  bool test(Req& h, Status* status = nullptr);
  void wait(Req& h, Status* status = nullptr);
  void wait_all(std::vector<Req>& hs);
  void send(const Comm& comm, const void* buf, std::size_t bytes, int dst,
            int tag);
  Status recv(const Comm& comm, void* buf, std::size_t bytes, int src, int tag);

  // ---- internal posting interface (used by the NBC engine from inside
  //      progress passes; does not itself run a progress pass).  Returns
  //      the CPU cost the caller must account for. ----
  // `rail` pins the transfer to one NIC rail (multi-NIC striping); the
  // pinned rail is folded into the wire tag, so a send and its matching
  // receive must agree on it (see alloc_nbc_tag / nbc::Action::rail).
  Req post_isend(const Comm& comm, const void* buf, std::size_t bytes, int dst,
                 int tag, double& cpu_cost, double earliest_offset,
                 int rail = -1);
  Req post_irecv(const Comm& comm, void* buf, std::size_t bytes, int src,
                 int tag, double& cpu_cost, int rail = -1);
  /// Non-charging completion check (no progress pass).
  bool peek_complete(Req h);
  /// Stable pointer to a live request (hot-path completion polling).
  Request* request_ptr(Req h);
  /// Observe a known-complete request, freeing it.
  void observe(Req& h, Status* status);

  // ---- progress clients ----
  void register_client(ProgressClient* c);
  void unregister_client(ProgressClient* c);

  /// Tag stride between consecutive NBC operations.  Rail-pinned
  /// transfers occupy the sub-tags tag+1 .. tag+kTagStride-1 (effective
  /// tag = tag + 1 + rail), so stripes of one logical message to the same
  /// peer match pairwise even when different rails reorder arrivals.
  /// Rails must therefore stay below kTagStride - 1.
  static constexpr int kTagStride = 16;

  /// Allocate a tag for one non-blocking collective operation.  Every
  /// rank creates collectives in the same order (collective contract), so
  /// per-rank counters agree across the communicator.
  int alloc_nbc_tag() {
    const int tag =
        (1 << 20) + (nbc_tag_counter_++ % (1 << 18)) * kTagStride;
    return tag;
  }

  /// Allocate a per-rank NBC operation id for trace parenting.  Ranks
  /// start collectives in the same order (collective contract, same
  /// argument as alloc_nbc_tag), so equal ids across rank tracks denote
  /// the same logical operation instance — the analyzer's grouping key.
  std::uint64_t alloc_op_corr() noexcept { return ++op_corr_counter_; }

  // ---- bootstrap collectives (blocking; control plane for the harness
  //      and the tuner's decision synchronization) ----
  void barrier(const Comm& comm);
  void bcast(const Comm& comm, void* buf, std::size_t bytes, int root);
  double allreduce(const Comm& comm, double value, ReduceOp op);
  void allreduce(const Comm& comm, const double* in, double* out,
                 std::size_t n, ReduceOp op);
  void allgather(const Comm& comm, const void* in, void* out,
                 std::size_t bytes_each);

  // ---- communicator management (collective over the parent) ----
  Comm dup(const Comm& comm);
  Comm split(const Comm& comm, int color, int key);

  /// Sleep the fiber for a CPU cost (used by library internals).
  void charge(double seconds);

  /// One progress pass: drain inbound envelopes, push CPU-driven bulks,
  /// poke clients.  `explicit_call` adds the base progress cost.
  void progress_pass(bool explicit_call);

  // ---- machine-mode execution surface (exec::MachineRunner) ----
  // The work/cost halves of progress_pass() and compute(): they perform
  // every side effect and RNG draw but never block, returning the CPU cost
  // for the caller to charge as an engine event continuation.

  /// The work of one progress pass; returns the CPU cost to charge.
  double progress_work(bool explicit_call);

  /// The noisy duration of `seconds` of user compute (jitter, outlier and
  /// fault-dilation draws included); `seconds` must be positive.
  double compute_cost(double seconds);

  /// Block (progressing) until pred() becomes true.  The predicate is
  /// evaluated after each progress pass; the rank sleeps between passes
  /// and is woken by message events.  Used by higher layers (NBC wait).
  void wait_until(const std::function<bool()>& pred);

  /// Cancel an un-observed request without completing it (NBC timeout
  /// recovery): stops its RTO timer, unlinks posted receives and
  /// CPU-driven bulks, and releases the slot.  The handle becomes null.
  void cancel_request(Req& h);

  /// Schedule a wakeup of this rank `dt` seconds from now; returns the
  /// engine event id (cancel with cancel_event).  Lets blocked waiters
  /// observe deadlines even when no message event arrives.
  std::uint64_t schedule_wake(double dt);
  void cancel_event(std::uint64_t id);

  // ---- fail-stop recovery (kill plans; see mpi/ft.hpp) ----
  /// Enter the agreement after catching RanksFailed at loop iteration
  /// `iteration`; blocks until the round's decision is delivered, then
  /// runs the per-rank cleanup (leaked control-plane requests cancelled,
  /// dead-peer receive state reclaimed, collective counters resynced)
  /// and returns the decision.
  FtDecision ft_recover(int iteration);
  /// Enter the agreement as a standing arrival after completing the loop
  /// (termination protocol): blocks like ft_recover.  If the returned
  /// decision's all_finished is false, the caller must rejoin its loop at
  /// resume_iteration — another survivor still needs the redone work.
  FtDecision ft_finish();

 private:
  friend class World;

  detail::RankState& st() { return world_.rank_state(wrank_); }

  /// Blocking-loop helper: progress until pred() is true.
  template <typename Pred>
  void block_until(Pred&& pred);

  /// Fail-stop interruption point: throws RankKilled when this rank is
  /// dead, RanksFailed when a peer failure is detectable and not yet
  /// acknowledged (suppressed inside the recovery wait itself).
  void check_ft();
  FtDecision ft_wait(int iteration, bool finished);
  void ft_cleanup(const FtDecision& d);

  bool try_match_unexpected(Req rh, double& cpu_cost);
  void handle_envelope(detail::Envelope& env, double& cpu_cost);
  void send_cts(const detail::Envelope& rts, Req rh, double& cpu_cost);
  void push_chunks(double& cpu_cost);
  double bulk_chunk_cost(std::size_t chunk) const;

  World& world_;
  int wrank_;
  int epoch_counter_ = 0;  // tag disambiguation for bootstrap collectives
  int nbc_tag_counter_ = 0;
  std::uint64_t op_corr_counter_ = 0;
  std::map<int, int> split_epochs_;  // per-context dup/split call counts
  int ft_acked_ = 0;         // detectable failures acknowledged so far
  bool in_recovery_ = false; // the recovery wait must itself block
};

}  // namespace nbctune::mpi
