#include "coll/blocking.hpp"

#include "coll/ialltoall.hpp"
#include "coll/ibcast.hpp"
#include "nbc/handle.hpp"

namespace nbctune::coll {

void run_blocking(mpi::Ctx& ctx, const mpi::Comm& comm,
                  const nbc::Schedule& schedule, int tag) {
  nbc::Handle h(ctx, comm, &schedule, tag);
  h.start();
  h.wait();
}

void blocking_alltoall(mpi::Ctx& ctx, const mpi::Comm& comm, const void* sbuf,
                       void* rbuf, std::size_t block) {
  const int n = comm.size();
  const int me = comm.rank_of_world(ctx.world_rank());
  nbc::Schedule s;
  if (block <= 256) {
    s = build_ialltoall_bruck(me, n, sbuf, rbuf, block);
  } else if (block <= 32 * 1024) {
    s = build_ialltoall_linear(me, n, sbuf, rbuf, block);
  } else {
    s = build_ialltoall_pairwise(me, n, sbuf, rbuf, block);
  }
  run_blocking(ctx, comm, s, ctx.alloc_nbc_tag());
}

void blocking_bcast(mpi::Ctx& ctx, const mpi::Comm& comm, void* buf,
                    std::size_t bytes, int root) {
  const int n = comm.size();
  const int me = comm.rank_of_world(ctx.world_rank());
  nbc::Schedule s =
      build_ibcast(me, n, buf, bytes, root, kFanoutBinomial, 64 * 1024);
  run_blocking(ctx, comm, s, ctx.alloc_nbc_tag());
}

}  // namespace nbctune::coll
