// Trace layer semantics: counter/histogram arithmetic, guarded no-op
// helpers, per-scenario Scope lifecycle, the golden event sequence of a
// 2-rank ibcast, and byte-identical session exports at any ScenarioPool
// thread count.
//
// Session::enable() is one-way (process-wide), so tests that need the
// disabled state run before any test that enables it; tests that use the
// session drain() it first so they only see their own traces.

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "coll/ibcast.hpp"
#include "harness/scenario_pool.hpp"
#include "mpi/world.hpp"
#include "nbc/handle.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"
#include "trace/trace.hpp"

using namespace nbctune;
namespace t = nbctune::testing;

namespace {

/// Install `tr` as the current tracer for the lifetime of the object.
struct WithTracer {
  explicit WithTracer(trace::Tracer* tr) : prev(trace::set_current(tr)) {}
  ~WithTracer() { trace::set_current(prev); }
  trace::Tracer* prev;
};

bool events_equal(const trace::Event& a, const trace::Event& b) {
  auto key = [](const char* k) { return k == nullptr ? "" : std::string(k); };
  return a.ts == b.ts && a.dur == b.dur && a.track == b.track &&
         a.cat == b.cat && std::string(a.name) == b.name &&
         key(a.akey) == key(b.akey) && a.aval == b.aval &&
         key(a.bkey) == key(b.bkey) && a.bval == b.bval;
}

/// A tiny deterministic simulation: 2-rank ibcast of `bytes` via the
/// binomial tree, driven to completion by wait().
void run_small_ibcast(std::size_t bytes, std::uint64_t seed = 1) {
  std::vector<std::byte> buf(bytes);
  t::run_world(net::whale(), 2, [&](mpi::Ctx& ctx) {
    nbc::Schedule s = coll::build_ibcast(ctx.world_rank(), 2, buf.data(),
                                         bytes, /*root=*/0,
                                         coll::kFanoutBinomial,
                                         /*seg_bytes=*/0);
    nbc::Handle h(ctx, ctx.world().comm_world(), &s, 1 << 20);
    h.start();
    h.wait();
  }, /*noise_scale=*/0.0, seed);
}

}  // namespace

// -------------------------------------------------- disabled-state tests
// (must run before anything calls Session::enable())

TEST(TraceDisabled, HelpersAreNoopsWithoutTracer) {
  ASSERT_EQ(trace::current(), nullptr);
  EXPECT_FALSE(trace::active());
  // None of these may crash or allocate a tracer.
  trace::count(trace::Ctr::MsgsEager);
  trace::record(trace::Hist::WireBytes, 4096);
  trace::instant(1.0, 0, trace::Cat::Msg, "x");
  trace::span(1.0, 0.5, 0, trace::Cat::Wire, "y");
  EXPECT_EQ(trace::current(), nullptr);
}

TEST(TraceDisabled, ScopeIsInertWithoutSession) {
  ASSERT_FALSE(trace::Session::enabled());
  trace::Scope scope("inert");
  EXPECT_EQ(scope.tracer(), nullptr);
  EXPECT_FALSE(trace::active());
}

TEST(TraceDisabled, TracedRunMatchesUntracedRun) {
  // The same simulation with and without a tracer installed must end at
  // the same simulated time: recording must never perturb the model.
  std::vector<std::byte> buf(4096);
  auto run = [&] {
    return t::run_world(net::whale(), 2, [&](mpi::Ctx& ctx) {
      nbc::Schedule s = coll::build_ibcast(ctx.world_rank(), 2, buf.data(),
                                           buf.size(), 0,
                                           coll::kFanoutBinomial, 0);
      nbc::Handle h(ctx, ctx.world().comm_world(), &s, 1 << 20);
      h.start();
      h.wait();
    }).end_time;
  };
  const double untraced = run();
  trace::Tracer tr("probe");
  double traced = 0.0;
  {
    WithTracer w(&tr);
    traced = run();
  }
  EXPECT_EQ(traced, untraced);
  EXPECT_GT(tr.events().size(), 0u);
}

// ------------------------------------------------------ tracer mechanics

TEST(TraceCounters, CountsAccumulate) {
  trace::Tracer tr("c");
  tr.count(trace::Ctr::MsgsEager);
  tr.count(trace::Ctr::MsgsEager, 4);
  tr.count(trace::Ctr::BytesOnWire, 1024);
  EXPECT_EQ(tr.counter(trace::Ctr::MsgsEager), 5u);
  EXPECT_EQ(tr.counter(trace::Ctr::BytesOnWire), 1024u);
  EXPECT_EQ(tr.counter(trace::Ctr::MsgsRts), 0u);
}

TEST(TraceCounters, HistogramBucketsArePowersOfTwo) {
  trace::Tracer tr("h");
  // bucket 0: v == 0; bucket i >= 1: v in [2^(i-1), 2^i).
  tr.record(trace::Hist::WireBytes, 0);     // bucket 0
  tr.record(trace::Hist::WireBytes, 1);     // bucket 1
  tr.record(trace::Hist::WireBytes, 2);     // bucket 2
  tr.record(trace::Hist::WireBytes, 3);     // bucket 2
  tr.record(trace::Hist::WireBytes, 4);     // bucket 3
  tr.record(trace::Hist::WireBytes, 1024);  // bucket 11
  tr.record(trace::Hist::WireBytes, 1535);  // bucket 11
  const trace::HistData& d = tr.histogram(trace::Hist::WireBytes);
  EXPECT_EQ(d.count, 7u);
  EXPECT_EQ(d.sum, 0u + 1 + 2 + 3 + 4 + 1024 + 1535);
  EXPECT_EQ(d.buckets[0], 1u);
  EXPECT_EQ(d.buckets[1], 1u);
  EXPECT_EQ(d.buckets[2], 2u);
  EXPECT_EQ(d.buckets[3], 1u);
  EXPECT_EQ(d.buckets[11], 2u);
  EXPECT_EQ(tr.histogram(trace::Hist::RoundsPerOp).count, 0u);
}

TEST(TraceHelpers, RecordThroughInstalledTracer) {
  trace::Tracer tr("helpers");
  {
    WithTracer w(&tr);
    ASSERT_TRUE(trace::active());
    trace::instant(1.5, 3, trace::Cat::Msg, "m", "bytes", 64);
    trace::span(2.0, 0.25, trace::wire_track(1), trace::Cat::Wire, "w");
    trace::span(9.0, -4.0, 0, trace::Cat::Progress, "clamped");
  }
  EXPECT_FALSE(trace::active());
  ASSERT_EQ(tr.events().size(), 3u);
  const auto& e0 = tr.events()[0];
  EXPECT_LT(e0.dur, 0.0);  // instant encoding
  EXPECT_EQ(e0.track, 3);
  EXPECT_STREQ(e0.akey, "bytes");
  EXPECT_EQ(e0.aval, 64u);
  const auto& e1 = tr.events()[1];
  EXPECT_EQ(e1.dur, 0.25);
  EXPECT_EQ(e1.track, trace::wire_track(1));
  EXPECT_EQ(trace::wire_track(1), -2);
  // Negative durations passed to span() are clamped to a zero-length
  // span, not re-encoded as an instant.
  EXPECT_EQ(tr.events()[2].dur, 0.0);
}

// ------------------------------------------------------- session + scope
// (everything below runs with the session enabled)

TEST(TraceSession, ScopeAdoptsInOrder) {
  trace::Session::enable();
  ASSERT_TRUE(trace::Session::enabled());
  (void)trace::Session::instance().drain();
  {
    trace::Scope a("first");
    ASSERT_NE(a.tracer(), nullptr);
    trace::count(trace::Ctr::AdclDecisions);
    trace::instant(0.0, 0, trace::Cat::Harness, "mark");
  }
  {
    trace::Scope b("second");
    trace::count(trace::Ctr::AdclDecisions, 2);
  }
  auto traces = trace::Session::instance().drain();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].label, "first");
  EXPECT_EQ(traces[1].label, "second");
  EXPECT_EQ(traces[0].events.size(), 1u);
  constexpr auto kDecisions =
      static_cast<std::size_t>(trace::Ctr::AdclDecisions);
  EXPECT_EQ(traces[0].counts[kDecisions], 1u);
  EXPECT_EQ(traces[1].counts[kDecisions], 2u);
  EXPECT_EQ(trace::Session::instance().size(), 0u);
}

TEST(TraceGolden, TwoRankIbcastEventSequence) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  {
    trace::Scope scope("golden ibcast");
    run_small_ibcast(4096);
  }
  auto traces = trace::Session::instance().drain();
  ASSERT_EQ(traces.size(), 1u);
  const trace::FinishedTrace& tr = traces[0];

  // Counters: one 4 KB eager message from rank 0 to rank 1; a schedule
  // built and an operation started/completed on each rank.
  auto ctr = [&](trace::Ctr c) {
    return tr.counts[static_cast<std::size_t>(c)];
  };
  EXPECT_EQ(ctr(trace::Ctr::CollSchedulesBuilt), 2u);
  EXPECT_EQ(ctr(trace::Ctr::NbcOpsStarted), 2u);
  EXPECT_EQ(ctr(trace::Ctr::NbcOpsCompleted), 2u);
  EXPECT_EQ(ctr(trace::Ctr::MsgsEager), 1u);
  EXPECT_EQ(ctr(trace::Ctr::MsgsRts), 0u);
  EXPECT_EQ(ctr(trace::Ctr::BytesOnWire), 4096u);
  EXPECT_GE(ctr(trace::Ctr::NbcRoundsPosted), 2u);

  // Golden per-rank sequences of the structural (non-engine, non-
  // progress) events.  Buffer order is execution order, so this pins both
  // the instrumentation sites and the simulation's control flow.
  auto names_on = [&](std::int32_t track) {
    std::vector<std::string> out;
    for (const auto& e : tr.events) {
      if (e.track != track) continue;
      if (e.cat == trace::Cat::Progress || e.cat == trace::Cat::Engine ||
          e.cat == trace::Cat::Fiber) {
        continue;
      }
      out.push_back(e.name);
    }
    return out;
  };
  EXPECT_EQ(names_on(0),
            (std::vector<std::string>{"ibcast", "nbc.start", "nbc.round",
                                      "msg.eager", "nbc.op"}));
  EXPECT_EQ(names_on(1),
            (std::vector<std::string>{"ibcast", "nbc.start", "nbc.round",
                                      "msg.deliver", "nbc.op"}));

  // The wire lane of rank 0's node carries exactly one eager
  // serialization span of the payload size.
  int wire_spans = 0;
  for (const auto& e : tr.events) {
    if (e.track >= 0 || e.cat != trace::Cat::Wire) continue;
    ++wire_spans;
    EXPECT_STREQ(e.name, "wire.eager");
    EXPECT_GT(e.dur, 0.0);
    ASSERT_NE(e.akey, nullptr);
    EXPECT_EQ(e.aval, 4096u);
  }
  EXPECT_EQ(wire_spans, 1);

  // Causality across spans: the sender's op starts before the wire
  // serialization starts, and the receiver's op cannot finish before the
  // payload left the wire.  (The sender's own op ends at local
  // completion, which for an eager send precedes the end of the physical
  // serialization — that asynchrony is the point of the model.)
  double send_start = -1.0, recv_end = -1.0, wire_start = -1.0,
         wire_end = -1.0;
  for (const auto& e : tr.events) {
    if (std::string(e.name) == "nbc.op" && e.track == 0) {
      send_start = e.ts;
    }
    if (std::string(e.name) == "nbc.op" && e.track == 1) {
      recv_end = e.ts + e.dur;
    }
    if (std::string(e.name) == "wire.eager") {
      wire_start = e.ts;
      wire_end = e.ts + e.dur;
    }
  }
  ASSERT_GE(send_start, 0.0);
  ASSERT_GE(wire_start, 0.0);
  EXPECT_LE(send_start, wire_start);
  EXPECT_GE(recv_end, wire_end);
}

TEST(TraceDeterminism, PoolMergeIsByteIdenticalAcrossThreadCounts) {
  trace::Session::enable();
  const std::size_t kTasks = 12;
  auto sweep = [&](int threads) {
    (void)trace::Session::instance().drain();
    harness::ScenarioPool pool(threads);
    pool.run_indexed(kTasks, [&](std::size_t i) {
      trace::Scope scope("task " + std::to_string(i));
      run_small_ibcast(512 * (i + 1), /*seed=*/i + 1);
    });
    std::ostringstream chrome, counters;
    trace::Session::instance().write_chrome(chrome);
    trace::Session::instance().write_counters(counters);
    auto traces = trace::Session::instance().drain();
    return std::tuple{chrome.str(), counters.str(), std::move(traces)};
  };
  auto [chrome1, counters1, traces1] = sweep(1);
  auto [chrome2, counters2, traces2] = sweep(2);
  auto [chrome8, counters8, traces8] = sweep(8);

  // Exports are byte-identical at any worker count.
  EXPECT_EQ(chrome1, chrome2);
  EXPECT_EQ(chrome1, chrome8);
  EXPECT_EQ(counters1, counters2);
  EXPECT_EQ(counters1, counters8);

  // And the merged traces arrive in submission order with identical
  // per-scenario content.
  ASSERT_EQ(traces1.size(), kTasks);
  ASSERT_EQ(traces8.size(), kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(traces1[i].label, "task " + std::to_string(i));
    EXPECT_EQ(traces8[i].label, traces1[i].label);
    ASSERT_EQ(traces8[i].events.size(), traces1[i].events.size());
    for (std::size_t e = 0; e < traces1[i].events.size(); ++e) {
      ASSERT_TRUE(events_equal(traces1[i].events[e], traces8[i].events[e]))
          << "task " << i << " event " << e;
    }
    EXPECT_EQ(traces8[i].counts, traces1[i].counts);
  }
}

TEST(TraceExport, ChromeJsonShapeAndEscaping) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  {
    trace::Scope scope("label with \"quotes\" and \\backslash");
    trace::instant(1e-6, 0, trace::Cat::Harness, "i1", "k", 7);
    trace::span(2e-6, 3e-6, trace::wire_track(0), trace::Cat::Wire, "s1",
                "bytes", 128, "chunk", 2);
  }
  std::ostringstream os;
  trace::Session::instance().write_chrome(os);
  const std::string j = os.str();
  (void)trace::Session::instance().drain();
  // Structural spot-checks (full JSON validation happens in CI via
  // python's json.load on a real sweep).
  EXPECT_NE(j.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(j.find("label with \\\"quotes\\\" and \\\\backslash"),
            std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\",\"dur\":3.000"), std::string::npos);
  EXPECT_NE(j.find("\"args\":{\"bytes\":128,\"chunk\":2}"),
            std::string::npos);
  // Wire track 0 maps to the reserved chrome tid block.
  EXPECT_NE(j.find("\"tid\":1000000"), std::string::npos);
  EXPECT_NE(j.find("node 0 wire"), std::string::npos);
}
