// Command-line scenario runner: explore any micro-benchmark configuration
// without writing code.
//
//   scenario_cli [platform] [op] [nprocs] [bytes] [compute_ms] [progress]
//                [iterations] [policy]
//
//   platform   crill | whale | whale-tcp | bgp        (default whale)
//   op         ialltoall | ibcast                     (default ialltoall)
//   policy     brute | heuristic | factorial          (default brute)
//
// Prints the fixed-implementation table plus the tuned run, like the
// paper's verification figures.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/microbench.hpp"
#include "harness/table.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::harness;

int main(int argc, char** argv) {
  MicroScenario s;
  s.platform = net::whale();
  s.op = OpKind::Ialltoall;
  s.nprocs = 32;
  s.bytes = 128 * 1024;
  s.compute_per_iter = 20e-3;
  s.progress_calls = 5;
  s.iterations = 0;  // derived below unless given
  adcl::PolicyKind policy = adcl::PolicyKind::BruteForce;

  if (argc > 1) s.platform = net::platform_by_name(argv[1]);
  if (argc > 2) {
    if (std::strcmp(argv[2], "ibcast") == 0) {
      s.op = OpKind::Ibcast;
    } else if (std::strcmp(argv[2], "ialltoall") != 0) {
      std::fprintf(stderr, "unknown op %s\n", argv[2]);
      return 1;
    }
  }
  if (argc > 3) s.nprocs = std::atoi(argv[3]);
  if (argc > 4) s.bytes = std::strtoull(argv[4], nullptr, 10);
  if (argc > 5) s.compute_per_iter = std::atof(argv[5]) * 1e-3;
  if (argc > 6) s.progress_calls = std::atoi(argv[6]);
  if (argc > 7) s.iterations = std::atoi(argv[7]);
  if (argc > 8) {
    const std::string p = argv[8];
    if (p == "heuristic") {
      policy = adcl::PolicyKind::AttributeHeuristic;
    } else if (p == "factorial") {
      policy = adcl::PolicyKind::TwoKFactorial;
    } else if (p != "brute") {
      std::fprintf(stderr, "unknown policy %s\n", p.c_str());
      return 1;
    }
  }
  const int tests = 3;
  auto fset = scenario_functionset(s);
  if (s.iterations <= 0) {
    s.iterations = static_cast<int>(fset->size()) * tests + 6;
  }

  banner("scenario: " + s.platform.name + " " + op_name(s.op) + " np=" +
         std::to_string(s.nprocs) + " bytes=" + std::to_string(s.bytes) +
         " compute/iter=" + Table::num(s.compute_per_iter * 1e3, 1) +
         "ms pc=" + std::to_string(s.progress_calls) + " iters=" +
         std::to_string(s.iterations) + " policy=" +
         adcl::policy_name(policy));

  Table t({"implementation", "loop_time[s]", "vs_best", "note"});
  double best = 1e300;
  std::vector<RunOutcome> fixed;
  for (std::size_t f = 0; f < fset->size(); ++f) {
    fixed.push_back(run_fixed(s, static_cast<int>(f)));
    best = std::min(best, fixed.back().loop_time);
  }
  for (const auto& r : fixed) {
    t.add_row({r.impl, Table::num(r.loop_time),
               Table::num(r.loop_time / best, 2), ""});
  }
  adcl::TuningOptions opts;
  opts.policy = policy;
  opts.tests_per_function = tests;
  const auto tuned = run_adcl(s, opts);
  t.add_row({std::string("ADCL(") + adcl::policy_name(policy) + ")",
             Table::num(tuned.loop_time), Table::num(tuned.loop_time / best, 2),
             "winner=" + tuned.impl + " @it" +
                 std::to_string(tuned.decision_iteration)});
  t.print();
  return 0;
}
