// nbctune-top: a live terminal dashboard over a bench driver's
// --live-jsonl stream.
//
//   nbctune-top [options] live.jsonl     follow a stream file
//   ... --live-jsonl=- | nbctune-top -   consume a pipe on stdin
//
//   --follow            keep reading after EOF (default for a file
//                       argument; a pipe follows implicitly)
//   --once              render one frame after EOF and exit (no follow)
//   --interval-ms N     redraw period while following (default 250)
//   --no-ansi           plain text frames, no colors / screen clearing
//
// Redraws a single screen (ANSI home+clear) showing sweep progress and
// ETA, pool/trace/memory gauges from the sampler records, per-op median
// and blame aggregates, and red/green guideline tiles.  Lines that are
// not live records (a driver streaming to its own stdout interleaves
// result tables) are skipped, so piping a mixed stream works.
//
// Exits 0 when the stream ends with a summary record (or at EOF without
// --follow), 1 on I/O errors, 2 on usage errors.

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/top.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--follow|--once] [--interval-ms N] [--no-ansi]"
               " live.jsonl|-\n";
  return 2;
}

void draw(const nbctune::obs::TopState& state, bool ansi) {
  std::ostringstream frame;
  state.render(frame, ansi);
  if (ansi) std::cout << "\x1b[H\x1b[2J";
  std::cout << frame.str() << std::flush;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool follow = false;
  bool once = false;
  bool ansi = true;
  int interval_ms = 250;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--follow") == 0) {
      follow = true;
    } else if (std::strcmp(a, "--once") == 0) {
      once = true;
    } else if (std::strcmp(a, "--no-ansi") == 0) {
      ansi = false;
    } else if (std::strcmp(a, "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
      if (interval_ms <= 0) interval_ms = 250;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      return usage(argv[0]);
    } else if (a[0] == '-' && a[1] != '\0') {
      std::cerr << "unknown option: " << a << "\n";
      return usage(argv[0]);
    } else if (path.empty()) {
      path = a;
    } else {
      std::cerr << "multiple inputs given\n";
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  const bool from_stdin = path == "-";
  std::ifstream file;
  if (!from_stdin) {
    file.open(path);
    if (!file) {
      std::cerr << "cannot open live stream: " << path << "\n";
      return 1;
    }
    if (!once) follow = true;  // files default to tail -f behavior
  }
  std::istream& in = from_stdin ? std::cin : file;

  nbctune::obs::TopState state;
  auto last_draw = std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(interval_ms);
  const auto maybe_draw = [&](bool force) {
    const auto now = std::chrono::steady_clock::now();
    if (force || now - last_draw >= std::chrono::milliseconds(interval_ms)) {
      draw(state, ansi);
      last_draw = now;
    }
  };

  std::string line;
  for (;;) {
    if (std::getline(in, line)) {
      state.feed_line(line);
      if (state.done()) break;
      if (!once) maybe_draw(false);
      continue;
    }
    // EOF (or error). A pipe stays open until the writer exits, so
    // getline only fails here when the stream is really finished or we
    // are tailing a growing file.
    if (from_stdin || !follow || once) break;
    in.clear();
    maybe_draw(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  draw(state, ansi);
  if (!state.done()) {
    std::cout << (ansi ? "\x1b[2m" : "") << "(stream ended without a summary record)"
              << (ansi ? "\x1b[0m" : "") << "\n";
  }
  return 0;
}
