// Post-hoc analysis layer (src/analyze): a hand-computed golden on the
// 2-rank ibcast trace, the blame-sums-to-elapsed property, the Chrome
// trace round-trip, the ADCL decision audit, the guideline checks on
// synthetic scenarios, and byte-identical report JSON at any pool
// thread count.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "adcl/functionsets.hpp"
#include "adcl/selection.hpp"
#include "analyze/analyze.hpp"
#include "analyze/chrome_reader.hpp"
#include "coll/ibcast.hpp"
#include "harness/scenario_pool.hpp"
#include "mpi/world.hpp"
#include "nbc/handle.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"
#include "trace/trace.hpp"

using namespace nbctune;
namespace t = nbctune::testing;

namespace {

/// Run an np-rank binomial ibcast `ops` times under the current tracer.
void run_ibcast(int nprocs, std::size_t bytes, int ops = 1,
                std::uint64_t seed = 1) {
  std::vector<std::byte> buf(bytes);
  t::run_world(net::whale(), nprocs, [&](mpi::Ctx& ctx) {
    nbc::Schedule s = coll::build_ibcast(ctx.world_rank(), nprocs,
                                        buf.data(), bytes, /*root=*/0,
                                        coll::kFanoutBinomial,
                                        /*seg_bytes=*/0);
    nbc::Handle h(ctx, ctx.world().comm_world(), &s, 1 << 20);
    for (int i = 0; i < ops; ++i) {
      h.start();
      h.wait();
    }
  }, /*noise_scale=*/0.0, seed);
}

/// One traced scenario, drained out of the session and converted.
analyze::ScenarioTrace traced(const std::string& label,
                              const std::function<void()>& body) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  {
    trace::Scope scope(label);
    body();
  }
  auto traces = trace::Session::instance().drain();
  EXPECT_EQ(traces.size(), 1u);
  return analyze::from_finished(traces.at(0));
}

/// Expected aggregate blame: per op instance, the duration of the
/// last-finishing nbc.op span — recomputed here independently of the
/// analyzer's grouping code.
double expected_blame_total(const analyze::ScenarioTrace& t) {
  std::map<std::uint64_t, std::pair<double, double>> by_corr;  // end, dur
  for (const analyze::AEvent& e : t.events) {
    if (e.name != "nbc.op" || !e.is_span()) continue;
    auto [it, fresh] = by_corr.try_emplace(e.corr, e.end(), e.dur);
    if (!fresh && e.end() > it->second.first) {
      it->second = {e.end(), e.dur};
    }
  }
  double sum = 0.0;
  for (const auto& [corr, v] : by_corr) sum += v.second;
  return sum;
}

}  // namespace

// --------------------------------------------------------- label parsing

TEST(AnalyzeLabel, ParsesMicrobenchConvention) {
  const analyze::LabelKey k =
      analyze::parse_label("ibcast whale np32 4096B adcl:brute-force");
  ASSERT_TRUE(k.valid);
  EXPECT_EQ(k.op, "ibcast");
  EXPECT_EQ(k.platform, "whale");
  EXPECT_EQ(k.nprocs, 32);
  EXPECT_EQ(k.bytes, 4096u);
  EXPECT_EQ(k.what, "adcl:brute-force");
  EXPECT_EQ(k.group(), "ibcast whale np32 4096B");
  EXPECT_EQ(k.size_group(), "ibcast whale np32 adcl:brute-force");
}

TEST(AnalyzeLabel, SplitsPlanAndExecSuffixes) {
  // Suffixes stack as "<what>[+plan=NAME][+exec=MODE]" (microbench.cpp).
  const analyze::LabelKey k = analyze::parse_label(
      "ialltoall crill np8 1024B fixed:linear+plan=lossy+exec=machine");
  ASSERT_TRUE(k.valid);
  EXPECT_EQ(k.what, "fixed:linear");
  EXPECT_EQ(k.plan, "lossy");
  EXPECT_EQ(k.exec, "machine");
  EXPECT_EQ(k.group(), "ialltoall crill np8 1024B plan=lossy exec=machine");
  EXPECT_EQ(k.size_group(),
            "ialltoall crill np8 fixed:linear plan=lossy exec=machine");

  // Exec tag without a plan; the fiber default stays untagged so fiber
  // and machine runs land in distinct G2/G3 comparison groups.
  const analyze::LabelKey m = analyze::parse_label(
      "ibcast mega np1024 1024B fixed:binomial/seg32k+exec=machine");
  ASSERT_TRUE(m.valid);
  EXPECT_EQ(m.what, "fixed:binomial/seg32k");
  EXPECT_TRUE(m.plan.empty());
  EXPECT_EQ(m.exec, "machine");
  const analyze::LabelKey f = analyze::parse_label(
      "ibcast mega np1024 1024B fixed:binomial/seg32k");
  ASSERT_TRUE(f.valid);
  EXPECT_TRUE(f.exec.empty());
  EXPECT_NE(f.group(), m.group());
}

TEST(AnalyzeLabel, RejectsOtherShapes) {
  EXPECT_FALSE(analyze::parse_label("").valid);
  EXPECT_FALSE(analyze::parse_label("golden ibcast").valid);
  // FFT labels have six tokens and an n<grid> field instead of bytes.
  EXPECT_FALSE(
      analyze::parse_label("fft3d whale np8 n64 pipelined libnbc").valid);
  EXPECT_FALSE(analyze::parse_label("ibcast whale npX 4096B f").valid);
  EXPECT_FALSE(analyze::parse_label("ibcast whale np2 4096 f").valid);
}

// ------------------------------------------------- golden 2-rank ibcast

TEST(AnalyzeGolden, TwoRankIbcastCriticalPath) {
  const analyze::ScenarioTrace tr =
      traced("golden", [] { run_ibcast(2, 4096); });
  const analyze::Report r = analyze::analyze({tr});
  ASSERT_EQ(r.scenarios.size(), 1u);
  const analyze::ScenarioReport& s = r.scenarios[0];

  // One op on each rank, all completing (G1 material).
  EXPECT_EQ(s.ops_started, 2u);
  EXPECT_EQ(s.ops_completed, 2u);
  EXPECT_TRUE(s.zero_compute);

  // Both ranks allocate op correlation id 1 for their first operation,
  // so the analyzer sees exactly one op instance...
  ASSERT_TRUE(s.has_critical);
  EXPECT_EQ(s.worst.corr, 1u);
  // ...whose critical rank is the receiver: rank 1 cannot finish before
  // the 4 KB eager payload serialized over the wire and arrived.
  EXPECT_EQ(s.worst.critical_rank, 1);
  EXPECT_GT(s.worst.elapsed, 0.0);

  // The blame partition is exact: components sum to the elapsed time.
  EXPECT_NEAR(s.worst.blame.total(), s.worst.elapsed,
              1e-9 * std::max(1.0, s.worst.elapsed));
  // No compute anywhere in this program.
  EXPECT_EQ(s.worst.blame.compute, 0.0);
  // The receiver's window must contain the wire serialization of the
  // payload it waited for.
  EXPECT_GT(s.worst.blame.wire, 0.0);

  // The critical path walks back to the sender through the eager
  // message: exactly one inbound transfer on rank 1.
  ASSERT_GE(s.worst.hops.size(), 1u);
  EXPECT_EQ(s.worst.hops[0].rank, 1);
  EXPECT_EQ(s.worst.hops[0].from_rank, 0);
  EXPECT_GE(s.worst.hops[0].arrival_ts, s.worst.start);
  EXPECT_LE(s.worst.hops[0].post_ts, s.worst.hops[0].arrival_ts);

  // Overlap accounting: both ranks ran exactly one handle; with no
  // compute the overlap ratio is 0 by definition.
  ASSERT_EQ(s.ranks.size(), 2u);
  EXPECT_EQ(s.ranks[0].rank, 0);
  EXPECT_EQ(s.ranks[0].ops, 1u);
  EXPECT_EQ(s.ranks[1].ops, 1u);
  EXPECT_EQ(s.ranks[0].overlap_ratio, 0.0);
  EXPECT_EQ(s.ranks[0].compute_in_op, 0.0);
  // The receiver's slack is bounded by its op elapsed.
  EXPECT_LE(s.ranks[1].slack, s.ranks[1].op_time + 1e-12);

  // Execution-resource counters flow from the per-scenario trace: one
  // fiber per rank, and a non-zero World arena footprint.
  EXPECT_EQ(s.fibers_created, 2u);
  EXPECT_GT(s.peak_arena_bytes, 0u);

  // G1 evaluated and passing; the label is not microbench-shaped, so the
  // comparative guidelines stay n/a.
  ASSERT_EQ(r.guidelines.size(), 4u);
  EXPECT_EQ(r.guidelines[0].id, "G1");
  EXPECT_EQ(r.guidelines[0].checked, 1);
  EXPECT_EQ(r.guidelines[0].passed, 1);
  EXPECT_STREQ(r.guidelines[0].status(), "pass");
}

// ------------------------------------------------------ blame property

TEST(AnalyzeProperty, BlameComponentsSumToOpElapsed) {
  // Several shapes: eager and rendezvous payloads, growing rank counts,
  // repeated ops per handle.  For every scenario the aggregated blame
  // must equal the sum over op instances of the critical rank's elapsed
  // time, and the worst instance must partition exactly.
  struct Case {
    int nprocs;
    std::size_t bytes;
    int ops;
  };
  const Case cases[] = {
      {2, 64, 3}, {4, 4096, 2}, {8, 65536, 1}, {4, 1 << 20, 2}};
  for (const Case& c : cases) {
    const analyze::ScenarioTrace tr =
        traced("prop", [&] { run_ibcast(c.nprocs, c.bytes, c.ops); });
    const analyze::Report r = analyze::analyze({tr});
    ASSERT_EQ(r.scenarios.size(), 1u);
    const analyze::ScenarioReport& s = r.scenarios[0];
    SCOPED_TRACE("np" + std::to_string(c.nprocs) + " " +
                 std::to_string(c.bytes) + "B x" + std::to_string(c.ops));
    EXPECT_EQ(s.ops_started, s.ops_completed);
    const double expected = expected_blame_total(tr);
    EXPECT_GT(expected, 0.0);
    EXPECT_NEAR(s.blame.total(), expected, 1e-9 * std::max(1.0, expected));
    ASSERT_TRUE(s.has_critical);
    EXPECT_NEAR(s.worst.blame.total(), s.worst.elapsed,
                1e-9 * std::max(1.0, s.worst.elapsed));
  }
}

// -------------------------------------------------- chrome round-trip

TEST(AnalyzeChrome, RoundTripMatchesInProcessAnalysis) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  {
    trace::Scope a("rt one");
    run_ibcast(2, 4096);
  }
  {
    trace::Scope b("rt two");
    run_ibcast(4, 65536, 2, /*seed=*/7);
  }
  std::ostringstream chrome;
  trace::Session::instance().write_chrome(chrome);
  std::vector<analyze::ScenarioTrace> direct;
  for (const auto& f : trace::Session::instance().drain()) {
    direct.push_back(analyze::from_finished(f));
  }

  std::istringstream is(chrome.str());
  const std::vector<analyze::ScenarioTrace> parsed =
      analyze::read_chrome(is);
  ASSERT_EQ(parsed.size(), direct.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].label, direct[i].label);
    EXPECT_EQ(parsed[i].events.size(), direct[i].events.size());
  }

  // The analyses agree: same structure, op times within the 1 ns export
  // quantization of the Chrome format.
  const analyze::Report ra = analyze::analyze(direct);
  const analyze::Report rb = analyze::analyze(parsed);
  ASSERT_EQ(ra.scenarios.size(), rb.scenarios.size());
  for (std::size_t i = 0; i < ra.scenarios.size(); ++i) {
    const auto& a = ra.scenarios[i];
    const auto& b = rb.scenarios[i];
    EXPECT_EQ(a.ops_completed, b.ops_completed);
    EXPECT_NEAR(a.mean_op_elapsed, b.mean_op_elapsed, 2e-9);
    EXPECT_EQ(a.worst.critical_rank, b.worst.critical_rank);
    EXPECT_EQ(a.worst.hops.size(), b.worst.hops.size());
    EXPECT_NEAR(a.blame.total(), b.blame.total(),
                2e-9 * std::max(1.0, a.ops_completed * 1.0));
  }
}

TEST(AnalyzeChrome, CountersReaderParsesDump) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  {
    trace::Scope scope("ctr");
    run_ibcast(2, 4096);
  }
  std::ostringstream os;
  trace::Session::instance().write_counters(os);
  (void)trace::Session::instance().drain();
  std::istringstream is(os.str());
  const auto counters = analyze::read_counters(is);
  EXPECT_EQ(counters.at("scenarios"), 1u);
  EXPECT_EQ(counters.at("msg.eager"), 1u);
  EXPECT_EQ(counters.at("nbc.ops_started"), 2u);
  EXPECT_EQ(counters.at("wire.bytes_per_transfer.count"), 1u);
  EXPECT_EQ(counters.at("wire.bytes_per_transfer.sum"), 4096u);
}

// ----------------------------------------------------------- adcl audit

TEST(AnalyzeAdcl, AuditReplaysScoresAndDecision) {
  const analyze::ScenarioTrace tr = traced("ibcast whale np2 64B adcl:x", [] {
    // Synthesized learning phase: three functions scored, func 1 wins.
    trace::instant(1.0, 0, trace::Cat::Adcl, "adcl.score", "func", 0,
                   "score_ns", 3000, 8);
    trace::instant(2.0, 0, trace::Cat::Adcl, "adcl.score", "func", 1,
                   "score_ns", 1000, 16);
    trace::instant(3.0, 0, trace::Cat::Adcl, "adcl.score", "func", 2,
                   "score_ns", 2000, 24);
    trace::instant(3.0, 0, trace::Cat::Adcl, "adcl.decision", "winner", 1,
                   "iter", 24, 24);
    trace::count(trace::Ctr::AdclSamplesSeen, 24);
    trace::count(trace::Ctr::AdclSamplesFiltered, 3);
  });
  const analyze::Report r = analyze::analyze({tr});
  ASSERT_EQ(r.scenarios.size(), 1u);
  const analyze::AdclAudit& a = r.scenarios[0].adcl;
  ASSERT_TRUE(a.present);
  EXPECT_EQ(a.winner, 1);
  EXPECT_EQ(a.decision_iteration, 24);
  EXPECT_DOUBLE_EQ(a.decision_ts, 3.0);
  ASSERT_EQ(a.scores.size(), 3u);
  EXPECT_EQ(a.scores[1].func, 1);
  EXPECT_EQ(a.scores[1].iteration, 16);
  EXPECT_NEAR(a.winner_score, 1000e-9, 1e-15);
  EXPECT_NEAR(a.runner_up_score, 2000e-9, 1e-15);
  // Margin: runner-up is 2x the winner.
  EXPECT_NEAR(a.margin, 1.0, 1e-9);
  EXPECT_EQ(a.samples_seen, 24u);
  EXPECT_EQ(a.samples_filtered, 3u);
}

TEST(AnalyzeAdcl, LiveSelectionEmitsAuditableScores) {
  // A real (not synthesized) tuned run must produce a full audit: as
  // many score events as scored batches and a decision consistent with
  // SelectionState's own bookkeeping.
  auto fset = adcl::make_ibcast_functionset();
  adcl::TuningOptions opts;
  opts.tests_per_function = 2;
  const analyze::ScenarioTrace tr = traced("live adcl", [&] {
    t::run_world(net::whale(), 2, [&](mpi::Ctx& ctx) {
      adcl::SelectionState sel(fset, opts);
      int guard = 0;
      while (!sel.decided() && ++guard < 10000) {
        sel.record(ctx, ctx.world().comm_world(),
                   1e-6 * (1 + sel.current()));
      }
      EXPECT_TRUE(sel.decided());
      EXPECT_EQ(static_cast<int>(sel.measurements().size()),
                sel.iterations() / opts.tests_per_function);
    });
  });
  const analyze::Report r = analyze::analyze({tr});
  const analyze::AdclAudit& a = r.scenarios.at(0).adcl;
  ASSERT_TRUE(a.present);
  // Functions score proportionally to their index, so func 0 wins.
  EXPECT_EQ(a.winner, 0);
  EXPECT_GT(a.scores.size(), 0u);
  EXPECT_GT(a.margin, 0.0);
}

// ----------------------------------------------------------- guidelines

namespace {

/// Synthetic scenario: `ops` op instances of `dur` seconds on track 0,
/// plus optional adcl decision metadata.
analyze::ScenarioTrace synth(const std::string& label, int ops, double dur,
                             bool with_compute = false,
                             double decision_ts = -1.0) {
  analyze::ScenarioTrace t;
  t.label = label;
  double at = 0.0;
  for (int i = 0; i < ops; ++i) {
    analyze::AEvent start;
    start.ts = at;
    start.track = 0;
    start.cat = "nbc";
    start.name = "nbc.start";
    start.corr = static_cast<std::uint64_t>(i + 1);
    t.events.push_back(start);
    if (with_compute) {
      analyze::AEvent c;
      c.ts = at;
      c.dur = dur / 2;
      c.track = 0;
      c.cat = "progress";
      c.name = "compute";
      t.events.push_back(c);
    }
    analyze::AEvent op;
    op.ts = at;
    op.dur = dur;
    op.track = 0;
    op.cat = "nbc";
    op.name = "nbc.op";
    op.corr = static_cast<std::uint64_t>(i + 1);
    t.events.push_back(op);
    at += dur * 2;
  }
  if (decision_ts >= 0.0) {
    analyze::AEvent d;
    d.ts = decision_ts;
    d.track = 0;
    d.cat = "adcl";
    d.name = "adcl.decision";
    d.akey = "winner";
    d.aval = 0;
    d.bkey = "iter";
    d.bval = 4;
    t.events.push_back(d);
  }
  return t;
}

const analyze::GuidelineResult& find_g(const analyze::Report& r,
                                       const std::string& id) {
  for (const auto& g : r.guidelines) {
    if (g.id == id) return g;
  }
  ADD_FAILURE() << "guideline " << id << " missing";
  static analyze::GuidelineResult none;
  return none;
}

}  // namespace

TEST(AnalyzeGuidelines, TunedWinnerBeatsOrMatchesFixed) {
  const std::string grp = "ibcast whale np4 1024B ";
  const analyze::Report ok = analyze::analyze({
      synth(grp + "fixed:fast", 4, 100e-6),
      synth(grp + "fixed:slow", 4, 200e-6),
      synth(grp + "adcl:brute-force", 4, 100e-6, false, /*decision=*/0.0),
  });
  EXPECT_EQ(find_g(ok, "G2").checked, 1);
  EXPECT_EQ(find_g(ok, "G2").passed, 1);

  const analyze::Report bad = analyze::analyze({
      synth(grp + "fixed:fast", 4, 100e-6),
      synth(grp + "adcl:brute-force", 4, 200e-6, false, /*decision=*/0.0),
  });
  EXPECT_EQ(find_g(bad, "G2").checked, 1);
  EXPECT_EQ(find_g(bad, "G2").passed, 0);
  ASSERT_EQ(find_g(bad, "G2").violations.size(), 1u);
  EXPECT_STREQ(find_g(bad, "G2").status(), "FAIL");
}

TEST(AnalyzeGuidelines, NonBlockingVsBlockingAtZeroCompute) {
  const std::string grp = "ialltoall whale np8 4096B ";
  const analyze::Report ok = analyze::analyze({
      synth(grp + "fixed:linear", 2, 100e-6),
      synth(grp + "fixed:blocking-linear", 2, 110e-6),
  });
  EXPECT_EQ(find_g(ok, "G3").checked, 1);
  EXPECT_EQ(find_g(ok, "G3").passed, 1);

  // A non-blocking run 2x slower than its blocking twin violates G3...
  const analyze::Report bad = analyze::analyze({
      synth(grp + "fixed:linear", 2, 220e-6),
      synth(grp + "fixed:blocking-linear", 2, 110e-6),
  });
  EXPECT_EQ(find_g(bad, "G3").passed, 0);

  // ...but only at zero compute: with compute in the loop the check
  // does not apply.
  const analyze::Report na = analyze::analyze({
      synth(grp + "fixed:linear", 2, 220e-6, /*with_compute=*/true),
      synth(grp + "fixed:blocking-linear", 2, 110e-6, /*with_compute=*/true),
  });
  EXPECT_EQ(find_g(na, "G3").checked, 0);
  EXPECT_STREQ(find_g(na, "G3").status(), "n/a");
}

TEST(AnalyzeGuidelines, MonotoneInMessageSize) {
  const analyze::Report ok = analyze::analyze({
      synth("ibcast whale np4 1024B fixed:a", 2, 100e-6),
      synth("ibcast whale np4 4096B fixed:a", 2, 150e-6),
      synth("ibcast whale np4 16384B fixed:a", 2, 400e-6),
  });
  EXPECT_EQ(find_g(ok, "G4").checked, 2);
  EXPECT_EQ(find_g(ok, "G4").passed, 2);

  const analyze::Report bad = analyze::analyze({
      synth("ibcast whale np4 1024B fixed:a", 2, 100e-6),
      synth("ibcast whale np4 4096B fixed:a", 2, 50e-6),
  });
  EXPECT_EQ(find_g(bad, "G4").checked, 1);
  EXPECT_EQ(find_g(bad, "G4").passed, 0);
}

// ------------------------------------------------- report determinism

TEST(AnalyzeReport, JsonIsByteIdenticalAcrossThreadCounts) {
  trace::Session::enable();
  auto sweep = [&](int threads) {
    (void)trace::Session::instance().drain();
    harness::ScenarioPool pool(threads);
    pool.run_indexed(6, [&](std::size_t i) {
      trace::Scope scope("task " + std::to_string(i));
      run_ibcast(2 + static_cast<int>(i % 3), 512 << i, 1,
                 /*seed=*/i + 1);
    });
    std::vector<analyze::ScenarioTrace> traces;
    for (const auto& f : trace::Session::instance().drain()) {
      traces.push_back(analyze::from_finished(f));
    }
    std::ostringstream os;
    analyze::write_json(os, analyze::analyze(traces));
    return os.str();
  };
  const std::string j1 = sweep(1);
  const std::string j4 = sweep(4);
  EXPECT_EQ(j1, j4);
  EXPECT_NE(j1.find("\"schema\":\"nbctune-report-v1\""), std::string::npos);
  EXPECT_NE(j1.find("\"guidelines\":["), std::string::npos);
}

TEST(AnalyzeReport, TableWriterMentionsEverySection) {
  const analyze::ScenarioTrace tr =
      traced("table", [] { run_ibcast(2, 4096); });
  std::ostringstream os;
  analyze::write_table(os, analyze::analyze({tr}));
  const std::string s = os.str();
  EXPECT_NE(s.find("blame:"), std::string::npos);
  EXPECT_NE(s.find("worst op:"), std::string::npos);
  EXPECT_NE(s.find("guidelines"), std::string::npos);
  EXPECT_NE(s.find("[pass] G1"), std::string::npos);
}
