#pragma once

// Periodic gauge sampler: a background thread that invokes a tick
// callback at a fixed period until stopped.  The bench driver composes
// it with LiveSink::sample and ScenarioPool::stats to put a time series
// of pool/trace/process gauges into the live stream.
//
// The thread is intentionally dumb — no work queue, no drift
// compensation — because the consumers are dashboards, not measurements:
// the simulated clocks that produce the paper's numbers never see it.

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace nbctune::obs {

class Sampler {
 public:
  /// Start ticking `tick` every `period_ms` milliseconds (first tick one
  /// period after construction).  `period_ms <= 0` starts nothing.
  Sampler(std::function<void()> tick, int period_ms);

  /// Joins the thread (equivalent to stop()).
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Stop and join; emits one final tick so the stream always ends with
  /// a fresh gauge snapshot.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept { return th_.joinable(); }

 private:
  std::function<void()> tick_;
  int period_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;  ///< final tick already emitted
  std::thread th_;
};

}  // namespace nbctune::obs
