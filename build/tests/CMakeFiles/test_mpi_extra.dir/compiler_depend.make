# Empty compiler generated dependencies file for test_mpi_extra.
# This may be replaced when dependencies are built.
