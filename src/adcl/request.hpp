#pragma once

// Persistent collective requests and the timer object (paper §III-C/D).
//
// A Request is the ADCL_Request of the paper: a persistent non-blocking
// collective bound to fixed buffers.  Each iteration the application calls
// init() (start the operation), computes — calling progress() to drive the
// library — and wait()s.  During the learning phase the request executes a
// different candidate implementation per batch of iterations; after the
// decision it sticks to the winner.
//
// The timing problem of non-blocking operations (the time "inside" the
// operation is not observable) is solved by the Timer: it brackets a whole
// code section containing init/compute/wait, and its measurement is
// attributed to the implementation that executed in that section.  Without
// a timer, a request self-times from init() to the end of wait().

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "adcl/function.hpp"
#include "adcl/selection.hpp"
#include "nbc/handle.hpp"

namespace nbctune::adcl {

/// A persistent, auto-tuned collective operation.
class Request {
 public:
  /// Normally built through the ialltoall_init/ibcast_init/... factories.
  /// @param shared  join an existing selection (co-tuned requests); when
  ///                null the request owns a fresh SelectionState.
  Request(mpi::Ctx& ctx, std::shared_ptr<const FunctionSet> fset, OpArgs args,
          TuningOptions opts,
          std::shared_ptr<SelectionState> shared = nullptr);
  ~Request();

  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// Start the operation with the currently selected implementation
  /// (ADCL_Request_init of the paper's listing).
  void init();

  /// Complete the operation (ADCL_Request_wait).  Self-times and feeds the
  /// selection logic unless a Timer drives this request.
  void wait();

  /// Drive the progress engine (the ADCL progress function, §III-C).
  void progress();

  /// init() + wait(): blocking execution (ADCL_Request_start).
  void start();

  /// Fail-stop recovery: abandon any in-flight execution, rebind the
  /// request to the shrunk communicator `comm` with a fresh tag, drop the
  /// cached schedules (they address dead peers; rebuilt lazily, which
  /// also re-elects node leaders in hierarchical function sets) and
  /// re-open tuning rolled back to `resume_iteration`.  Call once per
  /// recovery epoch; co-tuned requests sharing a SelectionState must
  /// funnel through a single recover() call per state.
  void recover(const mpi::Comm& comm, int resume_iteration);

  /// Fail-stop unwind of a dying rank: abort the in-flight execution (it
  /// can neither complete nor be redone here) so the started = completed
  /// + aborted ledger stays exact, without touching the selection state.
  /// No-op when nothing is in flight.
  void abandon();

  // ---- machine-mode execution surface (exec::MachineRunner) ----
  // init()/wait()/progress() decomposed into their non-blocking pieces;
  // the fiberless driver runs the handle phases and wait loop itself.

  /// Everything init() does except starting (and, for blocking members,
  /// waiting on) the handle.  Returns the bound handle.
  nbc::Handle* init_begin();
  /// True when the implementation bound by the last init_begin() is a
  /// blocking function-set member (no completion phase).
  [[nodiscard]] bool bound_blocking() const {
    return fset_->function(bound_function_).blocking;
  }
  /// The bookkeeping wait() does after the handle completes.
  void wait_finish();
  /// The bookkeeping progress() does besides the progress pass itself.
  void note_progress() noexcept { ++progress_calls_; }

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] SelectionState& selection() noexcept { return *state_; }
  [[nodiscard]] const SelectionState& selection() const noexcept {
    return *state_;
  }
  [[nodiscard]] std::shared_ptr<SelectionState> selection_ptr() noexcept {
    return state_;
  }
  [[nodiscard]] const Function& current_function() const {
    return fset_->function(state_->current());
  }
  [[nodiscard]] const OpArgs& args() const noexcept { return args_; }
  [[nodiscard]] mpi::Ctx& ctx() noexcept { return ctx_; }

  /// The tuned number of progress calls per iteration, when the
  /// function-set carries a "progress" attribute (see
  /// make_ialltoall_progress_functionset); `fallback` otherwise.  The
  /// application reads this each iteration and drives the progress engine
  /// accordingly — the co-tuning of algorithm and progress frequency the
  /// paper proposes in §III-C.
  [[nodiscard]] int recommended_progress_calls(int fallback) const;

 private:
  friend class Timer;

  const nbc::Schedule& schedule_for(int func);
  void consult_history();

  mpi::Ctx& ctx_;
  std::shared_ptr<const FunctionSet> fset_;
  OpArgs args_;
  TuningOptions opts_;
  std::shared_ptr<SelectionState> state_;
  std::map<int, nbc::Schedule> schedules_;  // lazily built per function
  std::unique_ptr<nbc::Handle> handle_;
  int bound_function_ = -1;
  int tag_;
  bool active_ = false;
  bool timer_driven_ = false;
  double init_time_ = 0.0;
  std::uint64_t progress_calls_ = 0;  // explicit calls this iteration
};

/// Decouples measurement from the operation (paper §III-D, Fig. 1):
/// start()/stop() bracket the tuned code section; the elapsed time is
/// recorded against the implementation(s) executed inside it.  A timer
/// may cover several requests; requests sharing a SelectionState receive
/// one sample per stop (co-tuning).
class Timer {
 public:
  Timer(mpi::Ctx& ctx, std::vector<Request*> requests);
  ~Timer();

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Begin the timed section (ADCL_Timer_start).
  void start();
  /// End the timed section and feed the selection logic (ADCL_Timer_end).
  void stop();

  /// Discard a running measurement without recording it (fail-stop
  /// recovery: the bracketed section was interrupted mid-flight, so its
  /// elapsed time is meaningless).  No-op when not running.
  void abort() noexcept { running_ = false; }

  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  mpi::Ctx& ctx_;
  std::vector<Request*> requests_;
  std::vector<std::shared_ptr<SelectionState>> states_;  // deduplicated
  double t0_ = 0.0;
  bool running_ = false;
};

}  // namespace nbctune::adcl
