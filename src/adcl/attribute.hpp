#pragma once

// Attributes characterize implementations inside a function-set (paper
// §III-C): e.g. the broadcast fan-out and internal segment size.  The
// attribute-based selection heuristic and the 2^k factorial design operate
// on these instead of enumerating every function.

#include <string>
#include <vector>

namespace nbctune::adcl {

/// One characteristic of an implementation, with its admissible values.
struct Attribute {
  std::string name;
  std::vector<int> values;  ///< admissible values, ascending where ordered
};

/// The attribute dimensions of a function-set.
class AttributeSet {
 public:
  AttributeSet() = default;
  explicit AttributeSet(std::vector<Attribute> attrs)
      : attrs_(std::move(attrs)) {}

  [[nodiscard]] std::size_t size() const noexcept { return attrs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return attrs_.empty(); }
  [[nodiscard]] const Attribute& at(std::size_t i) const {
    return attrs_.at(i);
  }
  [[nodiscard]] const std::vector<Attribute>& all() const noexcept {
    return attrs_;
  }

  /// Index of an attribute by name, or -1.
  [[nodiscard]] int index_of(const std::string& name) const {
    for (std::size_t i = 0; i < attrs_.size(); ++i) {
      if (attrs_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

 private:
  std::vector<Attribute> attrs_;
};

}  // namespace nbctune::adcl
