// Unit tests for the ScenarioPool sweep runner: determinism across
// thread counts, ordered aggregation, exception propagation, edge cases,
// and the work-stealing machinery under load.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "harness/scenario_pool.hpp"
#include "sim/engine.hpp"

namespace harness = nbctune::harness;
namespace sim = nbctune::sim;

namespace {

/// A miniature scenario: a seeded simulation whose result depends on its
/// own Engine/Rng only — the determinism contract's unit of work.
double run_mini_scenario(std::uint64_t seed) {
  sim::Engine eng(seed);
  eng.add_process("p", [&](sim::Process& p) {
    for (int i = 0; i < 50; ++i) p.sleep(eng.rng().uniform(0.0, 1.0));
  });
  eng.run();
  return eng.now();
}

std::vector<double> run_sweep(int threads, std::size_t n) {
  harness::ScenarioPool pool(threads);
  std::vector<double> out(n);
  pool.run_indexed(n, [&](std::size_t i) {
    out[i] = run_mini_scenario(1000 + i);
  });
  return out;
}

}  // namespace

TEST(ScenarioPool, DeterministicAcrossThreadCounts) {
  const std::size_t n = 64;
  const auto serial = run_sweep(1, n);
  EXPECT_EQ(serial, run_sweep(2, n));
  EXPECT_EQ(serial, run_sweep(8, n));
}

TEST(ScenarioPool, EveryIndexRunsExactlyOnce) {
  const std::size_t n = 500;
  harness::ScenarioPool pool(8);
  std::vector<std::atomic<int>> hits(n);
  pool.run_indexed(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ScenarioPool, EmptyBatchIsANoOp) {
  harness::ScenarioPool pool(4);
  bool touched = false;
  pool.run_indexed(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ScenarioPool, SingleTaskRuns) {
  harness::ScenarioPool pool(4);
  int value = 0;
  pool.run_indexed(1, [&](std::size_t i) { value = static_cast<int>(i) + 7; });
  EXPECT_EQ(value, 7);
}

TEST(ScenarioPool, WorkerExceptionPropagates) {
  harness::ScenarioPool pool(4);
  EXPECT_THROW(
      pool.run_indexed(16,
                       [&](std::size_t i) {
                         if (i == 5) throw std::runtime_error("task 5 died");
                       }),
      std::runtime_error);
}

TEST(ScenarioPool, LowestIndexExceptionWinsAndOthersStillRun) {
  // Several tasks throw; the surviving exception must be the lowest
  // submission index regardless of execution order, and non-throwing
  // tasks still execute.
  for (int threads : {1, 4}) {
    harness::ScenarioPool pool(threads);
    const std::size_t n = 32;
    std::vector<std::atomic<int>> hits(n);
    try {
      pool.run_indexed(n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
        if (i == 20 || i == 3 || i == 27) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3") << "threads=" << threads;
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

namespace {

/// Records every on_task_failed callback (fired from worker threads).
struct FailureLog : harness::PoolObserver {
  void on_batch_begin(std::size_t tasks) override { batches.push_back(tasks); }
  void on_task_failed(std::size_t index, const char* what) override {
    std::lock_guard<std::mutex> lk(mu);
    failed.emplace_back(index, what);
  }
  std::mutex mu;
  std::vector<std::size_t> batches;
  std::vector<std::pair<std::size_t, std::string>> failed;
};

}  // namespace

TEST(ScenarioPool, ObserverSeesEveryFailureAndBatchStillDrains) {
  // Crash containment: a throwing scenario body must not kill the sweep.
  // Every other task still runs, every failure is reported to the
  // observer with its submission index and error string, and only then
  // does the driver-facing rethrow (lowest index) fire.
  for (int threads : {1, 4}) {
    harness::ScenarioPool pool(threads);
    FailureLog log;
    pool.set_observer(&log);
    const std::size_t n = 24;
    std::vector<std::atomic<int>> hits(n);
    try {
      pool.run_indexed(n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
        if (i == 9 || i == 2) {
          throw std::runtime_error("scenario " + std::to_string(i) + " blew up");
        }
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "scenario 2 blew up") << "threads=" << threads;
    }
    pool.set_observer(nullptr);
    // The batch drained before the rethrow: all 24 tasks ran exactly once.
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
    ASSERT_EQ(log.failed.size(), 2u) << "threads=" << threads;
    std::sort(log.failed.begin(), log.failed.end());
    EXPECT_EQ(log.failed[0].first, 2u);
    EXPECT_EQ(log.failed[0].second, "scenario 2 blew up");
    EXPECT_EQ(log.failed[1].first, 9u);
    EXPECT_EQ(log.failed[1].second, "scenario 9 blew up");
    EXPECT_EQ(log.batches, std::vector<std::size_t>{n});
  }
}

TEST(ScenarioPool, ObserverSeesNonStdExceptionFailures) {
  // A body throwing something outside std::exception still gets contained
  // and reported (with a generic description), not lost.
  harness::ScenarioPool pool(2);
  FailureLog log;
  pool.set_observer(&log);
  EXPECT_THROW(pool.run_indexed(4,
                                [&](std::size_t i) {
                                  if (i == 1) throw 42;
                                }),
               int);
  pool.set_observer(nullptr);
  ASSERT_EQ(log.failed.size(), 1u);
  EXPECT_EQ(log.failed[0].first, 1u);
  EXPECT_FALSE(log.failed[0].second.empty());
}

TEST(ScenarioPool, PoolIsReusableAcrossBatches) {
  harness::ScenarioPool pool(4);
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<int> out(37, -1);
    pool.run_indexed(out.size(), [&](std::size_t i) {
      out[i] = batch * 1000 + static_cast<int>(i);
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], batch * 1000 + static_cast<int>(i));
    }
  }
}

TEST(ScenarioPool, ReentrantDispatchRunsInline) {
  // A task that dispatches a sub-batch on its own pool must not deadlock;
  // the sub-batch runs inline on the worker.
  harness::ScenarioPool pool(2);
  std::vector<int> outer(4, 0);
  pool.run_indexed(outer.size(), [&](std::size_t i) {
    int sum = 0;
    pool.run_indexed(3, [&](std::size_t j) { sum += static_cast<int>(j) + 1; });
    outer[i] = sum;
  });
  for (int v : outer) EXPECT_EQ(v, 6);
}

TEST(ScenarioPool, MapAggregatesInSubmissionOrder) {
  harness::ScenarioPool pool(8);
  std::vector<int> items(40);
  std::iota(items.begin(), items.end(), 0);
  const auto out = pool.map<int>(
      items, [](int item, std::size_t idx) {
        return item * 2 + static_cast<int>(idx);
      });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(ScenarioPool, ResolveThreadsHonoursEnvAndRequest) {
  EXPECT_EQ(harness::ScenarioPool::resolve_threads(5), 5);
  ::setenv("NBCTUNE_THREADS", "3", 1);
  EXPECT_EQ(harness::ScenarioPool::resolve_threads(0), 3);
  EXPECT_EQ(harness::ScenarioPool::resolve_threads(2), 2);  // arg wins
  ::unsetenv("NBCTUNE_THREADS");
  EXPECT_GE(harness::ScenarioPool::resolve_threads(0), 1);
}

TEST(ScenarioPool, UnevenTasksAllComplete) {
  // Work stealing: one shard gets a block of heavy tasks; idle workers
  // must steal them rather than wait.
  harness::ScenarioPool pool(4);
  const std::size_t n = 64;
  std::vector<double> out(n, 0.0);
  pool.run_indexed(n, [&](std::size_t i) {
    // The first block (worker 0's seed) is 30x heavier than the rest.
    const int reps = i < n / 4 ? 30 : 1;
    double acc = 0;
    for (int r = 0; r < reps; ++r) acc += run_mini_scenario(i * 31 + r);
    out[i] = acc;
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_GT(out[i], 0.0) << i;
}
