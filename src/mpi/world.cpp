#include "mpi/world.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "trace/trace.hpp"

namespace nbctune::mpi {

using detail::Envelope;
using detail::MatchKey;
using detail::RankState;

namespace {
/// Bytes a control message (RTS/CTS) occupies on the wire.
constexpr std::size_t kCtrlBytes = 64;

std::uint32_t match_index(std::uint64_t m) noexcept {
  return static_cast<std::uint32_t>(m >> 32);
}
std::uint32_t match_gen(std::uint64_t m) noexcept {
  return static_cast<std::uint32_t>(m);
}
}  // namespace

std::uint64_t pack_match(Req h) noexcept {
  return (static_cast<std::uint64_t>(h.index) << 32) | h.generation;
}

// ------------------------------------------------------------------ World

World::World(sim::Engine& engine, net::Machine& machine, WorldOptions options)
    : engine_(engine), machine_(machine), options_(options) {
  if (options_.nprocs < 1) throw std::invalid_argument("World: nprocs < 1");
  const auto& p = machine_.platform();
  if (options_.placement == WorldOptions::Placement::Block &&
      options_.nprocs > p.total_cores()) {
    throw std::invalid_argument("World: more ranks than cores on " + p.name);
  }
  // One flat contiguous arena for all per-rank library state; sized once,
  // never resized, so RankState addresses stay stable for the lifetime of
  // the world.
  ranks_ = std::vector<RankState>(static_cast<std::size_t>(options_.nprocs));
  for (int r = 0; r < options_.nprocs; ++r) {
    ranks_[r].node = node_of(r);
    // Per-rank noise stream: seeded from (scenario seed, rank) only, so
    // jitter draws never depend on global event interleaving.
    ranks_[r].noise_rng.reseed(
        options_.seed ^
        (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(r + 1)));
  }
  if (options_.fault_plan != nullptr && options_.fault_plan->enabled()) {
    injector_ =
        std::make_unique<fault::Injector>(*options_.fault_plan, options_.seed);
    lossy_ = options_.fault_plan->lossy();
  }
  auto data = std::make_shared<CommData>();
  data->context = 0;
  data->members.resize(options_.nprocs);
  for (int r = 0; r < options_.nprocs; ++r) data->members[r] = r;
  world_comm_data_ = data;
  world_comm_ = Comm(this, world_comm_data_);
}

World::~World() {
  // Report the arena footprint while the scenario's tracer is still
  // installed (the World dies before the enclosing trace::Scope).
  trace::count(trace::Ctr::WorldPeakArenaBytes, arena_bytes());
}

std::size_t World::arena_bytes() const noexcept {
  std::size_t bytes = ranks_.capacity() * sizeof(RankState);
  for (const RankState& rs : ranks_) bytes += rs.pool.capacity_bytes();
  return bytes;
}

int World::node_of(int wrank) const {
  const auto& p = machine_.platform();
  if (options_.placement == WorldOptions::Placement::RoundRobin) {
    return wrank % p.nodes;
  }
  return wrank / p.cores_per_node;
}

int World::core_of(int wrank) const {
  const auto& p = machine_.platform();
  if (options_.placement == WorldOptions::Placement::RoundRobin) {
    return (wrank / p.nodes) % p.cores_per_node;
  }
  return wrank % p.cores_per_node;
}

void World::launch(std::function<void(Ctx&)> program) {
  if (options_.fault_plan != nullptr && options_.fault_plan->has_kills() &&
      ft_ == nullptr) {
    ft_ = std::make_unique<RecoveryService>(*this, *options_.fault_plan);
    ft_->start();
  }
  for (int r = 0; r < options_.nprocs; ++r) {
    ctxs_.push_back(std::make_unique<Ctx>(*this, r));
    Ctx* ctx = ctxs_.back().get();
    RankState& rs = ranks_[r];
    rs.ctx = ctx;
    sim::Process& p = engine_.add_process(
        "rank" + std::to_string(r),
        [ctx, program](sim::Process&) {
          // A killed rank unwinds its whole program via RankKilled: the
          // fiber simply finishes (the modeled process is gone).
          try {
            program(*ctx);
          } catch (const RankKilled&) {
          }
        },
        options_.fiber_stack_bytes);
    rs.process = &p;
  }
}

void World::launch_machine(MachineDriver& driver) {
  if (options_.fault_plan != nullptr && options_.fault_plan->has_kills()) {
    throw std::invalid_argument(
        "World: kill plans require fiber mode (machine-mode ranks cannot "
        "unwind through fail-stop recovery)");
  }
  driver_ = &driver;
  for (int r = 0; r < options_.nprocs; ++r) {
    ctxs_.push_back(std::make_unique<Ctx>(*this, r));
    ranks_[r].ctx = ctxs_.back().get();
    // No Process: the driver advances this rank's state machine in place.
  }
}

Comm World::shrink(const std::vector<int>& survivors, int epoch) {
  auto data = std::make_shared<CommData>();
  // Negative epoch keys keep shrink contexts disjoint from every dup/split
  // allocation (their per-comm epochs count up from zero).
  data->context = alloc_context(0, -epoch, -1);
  data->members = survivors;
  return Comm(this, std::move(data));
}

int World::alloc_context(int parent_context, int epoch, int color) {
  auto key = std::make_tuple(parent_context, epoch, color);
  auto [it, inserted] = context_registry_.try_emplace(key, next_context_);
  if (inserted) ++next_context_;
  return it->second;
}

double World::jitter(int wrank, double cost) {
  const double sigma =
      machine_.platform().noise.rel_sigma * options_.noise_scale;
  if (sigma <= 0.0 || cost <= 0.0) return cost;
  const double f = 1.0 + sigma * ranks_[wrank].noise_rng.normal();
  return cost * std::max(0.0, f);
}

std::uint64_t World::total_data_msgs() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : ranks_) n += r.data_msgs;
  return n;
}
std::uint64_t World::total_ctrl_msgs() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : ranks_) n += r.ctrl_msgs;
  return n;
}

std::size_t World::dedup_entries(int src) const noexcept {
  std::size_t n = 0;
  for (const auto& r : ranks_) {
    for (const auto& key : r.seen_msgs) {
      if (std::get<1>(key) == src) ++n;
    }
  }
  return n;
}

void World::notify(int wrank) {
  RankState& rs = ranks_[wrank];
  if (rs.dead) return;  // fail-stopped: nothing left to wake
  if (rs.process != nullptr) {
    rs.process->wake();
  } else {
    driver_->on_wake(wrank);
  }
}

sim::Time World::ship(Envelope env, sim::Time earliest) {
  // A fail-stopped sender's NIC is silenced: in-flight transport
  // continuations (chunk pushes, acks, retransmits) die here.
  if (ft_ != nullptr && ranks_[env.src].dead) return earliest;
  RankState& src = ranks_[env.src];
  const int src_node = src.node;
  const int dst_node = ranks_[env.dst].node;
  const auto& p = machine_.platform();
  env.seq = ++next_msg_seq_;
  const std::size_t wire_bytes =
      env.kind == Envelope::Kind::Eager ? env.bytes : kCtrlBytes;
  const char* wire_what;
  if (env.kind == Envelope::Kind::Eager) {
    ++src.data_msgs;
    wire_what = "wire.eager";
    trace::count(trace::Ctr::MsgsEager);
  } else {
    ++src.ctrl_msgs;
    switch (env.kind) {
      case Envelope::Kind::Rts:
        wire_what = "wire.rts";
        trace::count(trace::Ctr::MsgsRts);
        break;
      case Envelope::Kind::Cts:
        wire_what = "wire.cts";
        trace::count(trace::Ctr::MsgsCts);
        break;
      default:
        wire_what = "wire.ack";
        trace::count(trace::Ctr::MsgsAcks);
        break;
    }
  }
  if (trace::active()) {
    trace::instant(earliest, env.src, trace::Cat::Msg,
                   env.kind == Envelope::Kind::Eager ? "msg.eager"
                   : env.kind == Envelope::Kind::Rts ? "msg.rts"
                   : env.kind == Envelope::Kind::Cts ? "msg.cts"
                                                     : "msg.ack",
                   "dst", static_cast<std::uint64_t>(env.dst), "bytes",
                   env.bytes, env.seq);
    // Hierarchy accounting: message-size distribution per endpoint-pair
    // level, and (inter-node only) whether the NIC rail was pinned by the
    // schedule or chosen by the default per-peer spread.
    switch (machine_.topology().level_between(src_node, core_of(env.src),
                                              dst_node, core_of(env.dst))) {
      case net::Level::Socket:
        trace::record(trace::Hist::SocketBytes, wire_bytes);
        break;
      case net::Level::Node:
        trace::record(trace::Hist::NodeBytes, wire_bytes);
        break;
      case net::Level::Rack:
        trace::record(trace::Hist::RackBytes, wire_bytes);
        break;
      case net::Level::System:
        trace::record(trace::Hist::SystemBytes, wire_bytes);
        break;
    }
    if (src_node != dst_node) {
      trace::count(env.rail >= 0 ? trace::Ctr::RailPinnedMsgs
                                 : trace::Ctr::RailAutoMsgs);
    }
  }

  // Fault injection applies to inter-node messaging only: intra-node
  // (shared-memory) traffic and bulk data streams are modeled reliable.
  fault::Injector* inj = injector_.get();
  bool dropped = false;
  bool duped = false;
  double lat_mult = 1.0;
  double bt_mult = 1.0;
  sim::Time tx_earliest = earliest;
  if (inj != nullptr && src_node != dst_node) {
    lat_mult = inj->latency_mult(earliest);
    bt_mult = inj->byte_time_mult(earliest);
    if (lat_mult != 1.0 || bt_mult != 1.0) {
      trace::count(trace::Ctr::FaultDegradedMsgs);
    }
    const double release = inj->nic_release(src_node, earliest);
    if (release > tx_earliest) {
      tx_earliest = release;
      trace::count(trace::Ctr::FaultNicStalls);
      if (trace::active()) {
        trace::instant(earliest, env.src, trace::Cat::Msg, "fault.stall",
                       "node", static_cast<std::uint64_t>(src_node), nullptr,
                       0, env.seq);
      }
    }
    // The control plane (tag >= kReliableTagBase) rides a reliable
    // channel: degraded/stalled like everything else, but never lost.
    if (env.tag < kReliableTagBase) {
      dropped = inj->inject_drop(tx_earliest);
      if (!dropped) duped = inj->inject_duplicate(tx_earliest);
    }
  }

  // Only payload-bearing messages count towards receive-side congestion;
  // tiny RTS/CTS control messages do not meaningfully load a receiver.
  const bool data = env.kind == Envelope::Kind::Eager && !dropped;
  if (data) machine_.add_inflight(dst_node);

  sim::Time local_done;
  sim::Time arrival;
  if (src_node == dst_node) {
    // Shared memory: serialize on the node's memory port; flooding the
    // port from many concurrent flows thrashes it (congestion factor).
    const double factor = machine_.congestion_factor(dst_node, /*intra=*/true);
    auto slot = machine_.reserve_mem(
        src_node, earliest,
        static_cast<double>(wire_bytes) * p.mem_byte_time * factor +
            p.intra.msg_gap,
        wire_what, wire_bytes, env.seq);
    local_done = slot.end;
    arrival = slot.end + p.intra.latency;
  } else {
    // A rail-pinned transfer uses the same HCA index on both endpoints;
    // otherwise the machine spreads by peer node.
    const int nics = p.nics_per_node;
    const int nic =
        env.rail >= 0 ? env.rail % nics : machine_.nic_for(src_node, dst_node);
    const int rnic =
        env.rail >= 0 ? env.rail % nics : machine_.nic_for(dst_node, src_node);
    const double tx_time =
        static_cast<double>(wire_bytes) * p.inter.byte_time * bt_mult +
        p.inter.msg_gap;
    auto tx = machine_.reserve_tx(src_node, nic, tx_earliest, tx_time,
                                  wire_what, wire_bytes, env.seq);
    local_done = tx.end;
    if (dropped) {
      // The sender's NIC transmitted; the packet died in the network.
      trace::count(trace::Ctr::FaultDrops);
      if (trace::active()) {
        trace::instant(tx.end, env.src, trace::Cat::Msg, "fault.drop", "dst",
                       static_cast<std::uint64_t>(env.dst), "bytes",
                       env.bytes, env.seq);
      }
      return local_done;
    }
    const double lat = machine_.latency(src_node, dst_node) * lat_mult;
    // Receive side pays a per-message gap too (NIC message-rate limit)
    // and slows down under incast (congestion factor).
    const double factor = machine_.congestion_factor(dst_node, /*intra=*/false);
    const double rx_time =
        (static_cast<double>(wire_bytes) * p.inter.byte_time * bt_mult +
         p.inter.msg_gap) *
        factor;
    auto rx = machine_.reserve_rx(dst_node, rnic, tx.start + lat, rx_time,
                                  wire_what, wire_bytes, env.seq);
    arrival = rx.end;
    if (duped) {
      // The network delivers a second copy right behind the first; the
      // receive-side dedup table discards it on arrival.
      trace::count(trace::Ctr::FaultDups);
      if (trace::active()) {
        trace::instant(rx.end, env.dst, trace::Cat::Msg, "fault.dup", "src",
                       static_cast<std::uint64_t>(env.src), "bytes",
                       env.bytes, env.seq);
      }
      auto rx2 = machine_.reserve_rx(dst_node, rnic, rx.end, rx_time,
                                     "wire.dup", wire_bytes, env.seq);
      auto boxed2 = std::make_shared<Envelope>(env);
      engine_.schedule_at(rx2.end,
                          [this, boxed2] { deliver(std::move(*boxed2)); });
    }
  }
  auto boxed = std::make_shared<Envelope>(std::move(env));
  engine_.schedule_at(arrival, [this, boxed, data, dst_node] {
    if (data) machine_.remove_inflight(dst_node);
    deliver(std::move(*boxed));
  });
  return local_done;
}

void World::deliver(Envelope env) {
  const int dst_rank = env.dst;
  RankState& dst = ranks_[dst_rank];
  // Arrivals at a fail-stopped rank vanish (no ack, no dedup tracking).
  if (ft_ != nullptr && dst.dead) return;
  if (lossy_) {
    if (env.kind == Envelope::Kind::Ack) {
      handle_ack(env);
      return;
    }
    // Tracked (acked) messages: inter-node data-plane envelopes carrying
    // a match id (the reliable control plane is neither acked nor deduped).
    if (env.match_id != 0 && ranks_[env.src].node != dst.node &&
        env.tag < kReliableTagBase) {
      const auto key = std::make_tuple(static_cast<std::uint8_t>(env.kind),
                                       env.src, env.match_id);
      if (!dst.seen_msgs.insert(key).second) {
        // Duplicate (injected, or a retransmit whose original made it
        // through): discard, but re-ack — the first ack may be the one
        // the network ate.
        trace::count(trace::Ctr::MsgsDupDeliveries);
        if (trace::active()) {
          trace::instant(engine_.now(), dst_rank, trace::Cat::Msg,
                         "msg.dup_drop", "src",
                         static_cast<std::uint64_t>(env.src), nullptr, 0,
                         env.seq);
        }
        send_ack(env);
        return;
      }
      send_ack(env);
    }
  }
  env.arrival_seq = dst.next_arrival_seq++;
  if (trace::active()) {
    trace::instant(engine_.now(), dst_rank, trace::Cat::Msg, "msg.deliver",
                   "src", static_cast<std::uint64_t>(env.src), "bytes",
                   env.bytes, env.seq);
  }
  dst.inbound.push_back(std::move(env));
  notify(dst_rank);
}

void World::start_nic_bulk(int src, int dst, Req sreq, std::uint64_t dst_match,
                           std::size_t bytes, const void* sbuf,
                           sim::Time earliest) {
  const auto& p = machine_.platform();
  RankState& srs = ranks_[src];
  const int src_node = srs.node;
  const int dst_node = ranks_[dst].node;
  ++srs.data_msgs;
  const std::uint64_t seq = ++next_msg_seq_;
  trace::count(trace::Ctr::MsgsNicBulks);
  if (trace::active()) {
    trace::instant(earliest, src, trace::Cat::Msg, "msg.bulk_nic", "dst",
                   static_cast<std::uint64_t>(dst), "bytes", bytes, seq);
  }
  machine_.add_inflight(dst_node);
  sim::Time send_done, recv_done;
  if (src_node == dst_node) {
    // Should not happen: intra-node rendezvous uses the CPU-copy path.
    const double factor = machine_.congestion_factor(dst_node, /*intra=*/true);
    auto slot = machine_.reserve_mem(
        src_node, earliest, static_cast<double>(bytes) * p.mem_byte_time * factor,
        "wire.bulk", bytes, seq);
    send_done = slot.end;
    recv_done = slot.end + p.intra.latency;
  } else {
    const int rail = srs.pool.live(sreq) ? srs.pool.get(sreq).rail : -1;
    const int nics = p.nics_per_node;
    const int nic =
        rail >= 0 ? rail % nics : machine_.nic_for(src_node, dst_node);
    const int rnic =
        rail >= 0 ? rail % nics : machine_.nic_for(dst_node, src_node);
    double lat_mult = 1.0;
    double bt_mult = 1.0;
    if (injector_ != nullptr) {
      lat_mult = injector_->latency_mult(earliest);
      bt_mult = injector_->byte_time_mult(earliest);
      if (lat_mult != 1.0 || bt_mult != 1.0) {
        trace::count(trace::Ctr::FaultDegradedMsgs);
      }
    }
    auto tx = machine_.reserve_tx(
        src_node, nic, earliest,
        static_cast<double>(bytes) * p.inter.byte_time * bt_mult +
            p.inter.msg_gap,
        "wire.bulk", bytes, seq);
    const double lat = machine_.latency(src_node, dst_node) * lat_mult;
    const double factor = machine_.congestion_factor(dst_node, /*intra=*/false);
    auto rx = machine_.reserve_rx(
        dst_node, rnic, tx.start + lat,
        (static_cast<double>(bytes) * p.inter.byte_time * bt_mult +
         p.inter.msg_gap) *
            factor,
        "wire.bulk", bytes, seq);
    send_done = tx.end;
    recv_done = rx.end;
  }
  // Both ends complete when the data has landed: delivering first and
  // completing the sender in the same event guarantees the sender cannot
  // reuse (or free) its buffer before the delivery copy reads it.  The
  // sender is charged one extra wire latency versus true local completion
  // at `send_done` — negligible against the bulk transfer itself.
  (void)send_done;
  // seq is narrowed to fit the InlineFn capture budget; corr ids stay
  // unique within any realistic scenario (< 2^32 messages).
  engine_.schedule_at(recv_done, [this, src, sreq, dst, dst_match, sbuf,
                                  dst_node,
                                  seq32 = static_cast<std::uint32_t>(seq)] {
    machine_.remove_inflight(dst_node);
    if (trace::active()) {
      trace::instant(engine_.now(), dst, trace::Cat::Msg, "msg.complete",
                     "src", static_cast<std::uint64_t>(src), nullptr, 0,
                     seq32);
    }
    complete_request(dst, dst_match, sbuf);
    RankState& rs = ranks_[src];
    if (!rs.pool.live(sreq)) return;
    Request& r = rs.pool.get(sreq);
    r.complete = true;
    r.state = ReqState::Complete;
    notify(src);
  });
}

void World::complete_request(int wrank, std::uint64_t match_id,
                             const void* deliver_from) {
  RankState& rs = ranks_[wrank];
  Request& r = rs.pool.at(match_index(match_id));
  if (r.generation != match_gen(match_id)) return;  // cancelled/stale
  if (r.timer_id != 0) {
    engine_.cancel(r.timer_id);
    r.timer_id = 0;
  }
  if (deliver_from != nullptr && r.recv_buf != nullptr) {
    std::memcpy(r.recv_buf, deliver_from, r.bytes);
  }
  r.complete = true;
  r.state = ReqState::Complete;
  notify(wrank);
}

// ------------------------------------------------- resilience (lossy plans)

void World::arm_retransmit(int wrank, Req h) {
  Request& r = ranks_[wrank].pool.get(h);
  r.timer_id =
      engine_.schedule_after(r.rto, [this, wrank, h] { on_rto(wrank, h); });
}

void World::on_rto(int wrank, Req h) {
  RankState& rs = ranks_[wrank];
  if (rs.dead) return;  // fail-stopped: its timers die with it
  if (!rs.pool.live(h)) return;
  Request& r = rs.pool.get(h);
  r.timer_id = 0;
  if (r.acked || r.complete || r.rexmit == RexmitKind::None) return;
  // Never retransmit to a fail-stopped peer: a dead destination must not
  // be resurrected by the reliability layer.  Fail the request now; the
  // recovery path (not the send-failure path) will clean it up.
  if (ft_ != nullptr && ranks_[r.peer].dead) {
    r.failed = true;
    r.rexmit = RexmitKind::None;
    trace::count(trace::Ctr::MsgsSendFailures);
    if (trace::active()) {
      trace::instant(engine_.now(), wrank, trace::Cat::Msg,
                     "msg.send_failure", "peer",
                     static_cast<std::uint64_t>(r.peer), "tag",
                     static_cast<std::uint64_t>(r.tag), pack_match(h));
    }
    notify(wrank);
    return;
  }
  if (r.retries_left <= 0) {
    r.failed = true;
    r.rexmit = RexmitKind::None;
    trace::count(trace::Ctr::MsgsSendFailures);
    if (trace::active()) {
      trace::instant(engine_.now(), wrank, trace::Cat::Msg,
                     "msg.send_failure", "peer",
                     static_cast<std::uint64_t>(r.peer), "tag",
                     static_cast<std::uint64_t>(r.tag), pack_match(h));
    }
    notify(wrank);
    return;
  }
  --r.retries_left;
  Envelope env = rebuild_envelope(wrank, h, r);
  trace::count(trace::Ctr::MsgsRetransmits);
  const sim::Time t = engine_.now();
  ship(std::move(env), t);
  if (trace::active()) {
    // next_msg_seq_ holds the seq ship() just assigned: the retransmit
    // instant correlates with the new wire message.
    trace::instant(t, wrank, trace::Cat::Msg, "msg.retransmit", "peer",
                   static_cast<std::uint64_t>(r.peer), "left",
                   static_cast<std::uint64_t>(r.retries_left), next_msg_seq_);
  }
  r.rto *= 2.0;  // exponential backoff
  arm_retransmit(wrank, h);
}

Envelope World::rebuild_envelope(int wrank, Req h, const Request& r) {
  Envelope env;
  env.src = wrank;
  env.dst = r.peer;
  env.context = r.context;
  env.tag = r.tag;  // already rail-sub-tagged at post time
  env.rail = r.rail;
  env.bytes = r.bytes;
  switch (r.rexmit) {
    case RexmitKind::Eager:
      env.kind = Envelope::Kind::Eager;
      env.match_id = pack_match(h);
      if (r.send_buf != nullptr && r.bytes > 0) {
        env.payload.resize(r.bytes);
        std::memcpy(env.payload.data(), r.send_buf, r.bytes);
      }
      break;
    case RexmitKind::Rts:
      env.kind = Envelope::Kind::Rts;
      env.match_id = pack_match(h);
      env.send_buf = r.send_buf;
      break;
    case RexmitKind::Cts:
      env.kind = Envelope::Kind::Cts;
      env.match_id = r.match_id;  // the sender-side request (from the RTS)
      env.peer_match_id = pack_match(h);
      break;
    case RexmitKind::None:
      break;
  }
  return env;
}

void World::handle_ack(const Envelope& env) {
  RankState& rs = ranks_[env.dst];
  const Req h{match_index(env.match_id), match_gen(env.match_id)};
  if (!rs.pool.live(h)) return;
  Request& r = rs.pool.get(h);
  if (r.acked) return;
  r.acked = true;
  r.rexmit = RexmitKind::None;
  if (r.timer_id != 0) {
    engine_.cancel(r.timer_id);
    r.timer_id = 0;
  }
  // Eager sends complete on acknowledgement (the lossy-mode replacement
  // for the local NIC-done completion); rendezvous state machines keep
  // advancing through their own CTS/bulk events.
  if (r.state == ReqState::EagerInFlight) {
    r.complete = true;
    r.state = ReqState::Complete;
  }
  notify(env.dst);
}

void World::send_ack(const Envelope& env) {
  Envelope ack;
  ack.kind = Envelope::Kind::Ack;
  ack.src = env.dst;
  ack.dst = env.src;
  ack.context = env.context;
  ack.tag = env.tag;
  // Route the ack to the request that armed the retransmit timer: the
  // sender request for eager/RTS, our (receiver) request for CTS.
  ack.match_id = env.kind == Envelope::Kind::Cts ? env.peer_match_id
                                                 : env.match_id;
  ship(std::move(ack), engine_.now());
}

// -------------------------------------------------------------------- Ctx

Ctx::Ctx(World& world, int wrank) : world_(world), wrank_(wrank) {}

namespace {
[[noreturn]] void throw_machine_block(int wrank) {
  throw std::logic_error(
      "mpi: machine-mode rank " + std::to_string(wrank) +
      " entered a blocking Ctx call; fiberless ranks must be driven through "
      "the non-blocking execution surface (progress_work/compute_cost)");
}
}  // namespace

void Ctx::charge(double seconds) {
  if (seconds <= 0.0) return;
  sim::Process* p = st().process;
  if (p == nullptr) throw_machine_block(wrank_);
  p->sleep(world_.jitter(wrank_, seconds));
}

double Ctx::compute_cost(double seconds) {
  double t = world_.jitter(wrank_, seconds);
  const auto& noise = world_.platform().noise;
  const double scale = world_.options().noise_scale;
  if (noise.outlier_prob * scale > 0.0 &&
      st().noise_rng.uniform() < noise.outlier_prob * scale) {
    t *= noise.outlier_factor;
  }
  if (fault::Injector* inj = world_.injector()) {
    const double dilation = inj->compute_dilation(wrank_, now());
    if (dilation != 1.0) {
      t *= dilation;
      trace::count(trace::Ctr::FaultStragglerBursts);
      if (trace::active()) {
        trace::instant(now(), wrank_, trace::Cat::Progress, "fault.straggler",
                       "factor_x1000",
                       static_cast<std::uint64_t>(dilation * 1000.0));
      }
    }
  }
  return t;
}

void Ctx::compute(double seconds) {
  if (seconds < 0.0) throw std::invalid_argument("compute: negative time");
  if (seconds == 0.0) return;
  sim::Process* p = st().process;
  if (p == nullptr) throw_machine_block(wrank_);
  if (world_.ft_ != nullptr) check_ft();
  const double t = compute_cost(seconds);
  const sim::Time t0 = now();
  p->sleep(t);
  if (trace::active()) {
    trace::span(t0, now() - t0, wrank_, trace::Cat::Progress, "compute");
  }
}

void Ctx::progress() { progress_pass(true); }

void Ctx::register_client(ProgressClient* c) { st().clients.push_back(c); }

void Ctx::unregister_client(ProgressClient* c) {
  auto& v = st().clients;
  v.erase(std::remove(v.begin(), v.end(), c), v.end());
}

double Ctx::bulk_chunk_cost(std::size_t chunk) const {
  const auto& p = world_.platform();
  return static_cast<double>(chunk) * p.copy_byte_time + p.ctrl_overhead;
}

// ---- posting ----

Req Ctx::post_isend(const Comm& comm, const void* buf, std::size_t bytes,
                    int dst, int tag, double& cpu_cost, double earliest_offset,
                    int rail) {
  if (dst < 0 || dst >= comm.size()) {
    throw std::invalid_argument("post_isend: bad destination rank");
  }
  // A pinned rail is folded into the wire tag (sub-tags reserved by
  // alloc_nbc_tag's stride): stripes of one logical message travel on
  // different rails, whose serialization can reorder arrivals, yet each
  // still matches exactly its own posted receive.
  if (rail >= 0) tag += 1 + rail % (kTagStride - 1);
  const int dst_w = comm.world_rank(dst);
  const auto& p = world_.platform();
  RankState& rs = st();

  Req h = rs.pool.allocate();
  Request& r = rs.pool.get(h);
  r.kind = ReqKind::Send;
  r.peer = dst_w;
  r.context = comm.context();
  r.tag = tag;
  r.rail = rail;
  r.bytes = bytes;
  r.send_buf = buf;
  ++rs.outstanding;

  const bool eager = bytes <= p.eager_limit;
  const bool same_node = rs.node == world_.ranks_[dst_w].node;

  Envelope env;
  env.src = wrank_;
  env.dst = dst_w;
  env.context = comm.context();
  env.tag = tag;
  env.rail = rail;
  env.bytes = bytes;

  if (eager) {
    // Eager: CPU prepares (overhead + bounce-buffer copy), NIC does the rest.
    const double my_prep =
        (same_node ? p.intra.send_overhead : p.inter.send_overhead) +
        static_cast<double>(bytes) * p.copy_byte_time;
    env.kind = Envelope::Kind::Eager;
    if (buf != nullptr && bytes > 0) {
      env.payload.resize(bytes);
      std::memcpy(env.payload.data(), buf, bytes);
    }
    const bool tracked =
        world_.lossy() && !same_node && tag < kReliableTagBase;
    if (tracked) env.match_id = pack_match(h);
    const sim::Time start = now() + earliest_offset + my_prep;
    const sim::Time local_done = world_.ship(std::move(env), start);
    cpu_cost += my_prep;
    if (same_node) {
      // Payload copied out of the user buffer already: locally complete.
      r.complete = true;
      r.state = ReqState::Complete;
    } else if (tracked) {
      // Lossy mode: completion comes from the peer's acknowledgement, and
      // an RTO timer retransmits until it does (or retries run out).
      (void)local_done;
      r.state = ReqState::EagerInFlight;
      const fault::FaultPlan& plan = world_.injector()->plan();
      r.rexmit = RexmitKind::Eager;
      r.retries_left = plan.retries;
      r.rto = plan.rto;
      world_.arm_retransmit(wrank_, h);
    } else {
      r.state = ReqState::EagerInFlight;
      const int self = wrank_;
      world_.engine().schedule_at(local_done, [w = &world_, self, h] {
        RankState& s = w->ranks_[self];
        if (!s.pool.live(h)) return;
        Request& rr = s.pool.get(h);
        rr.complete = true;
        rr.state = ReqState::Complete;
        w->notify(self);
      });
    }
  } else {
    // Rendezvous: emit RTS; everything else happens in progress passes.
    const double my_prep =
        (same_node ? p.intra.send_overhead : p.inter.send_overhead) +
        p.ctrl_overhead;
    env.kind = Envelope::Kind::Rts;
    env.match_id = pack_match(h);
    env.send_buf = buf;
    world_.ship(std::move(env), now() + earliest_offset + my_prep);
    cpu_cost += my_prep;
    r.state = ReqState::RtsSent;
    if (world_.lossy() && !same_node && tag < kReliableTagBase) {
      const fault::FaultPlan& plan = world_.injector()->plan();
      r.rexmit = RexmitKind::Rts;
      r.retries_left = plan.retries;
      r.rto = plan.rto;
      world_.arm_retransmit(wrank_, h);
    }
  }
  return h;
}

Req Ctx::post_irecv(const Comm& comm, void* buf, std::size_t bytes, int src,
                    int tag, double& cpu_cost, int rail) {
  RankState& rs = st();
  // Mirror post_isend's rail sub-tagging: the matching send carries the
  // same pinned rail (builder contract, nbc::Action::rail).
  if (rail >= 0 && tag != kAnyTag) tag += 1 + rail % (kTagStride - 1);
  const int src_w =
      src == kAnySource ? kAnySource
                        : (src >= 0 && src < comm.size()
                               ? comm.world_rank(src)
                               : throw std::invalid_argument(
                                     "post_irecv: bad source rank"));
  Req h = rs.pool.allocate();
  Request& r = rs.pool.get(h);
  r.kind = ReqKind::Recv;
  r.peer = src_w;
  r.context = comm.context();
  r.tag = tag;
  r.rail = rail;
  r.bytes = bytes;
  r.recv_buf = buf;
  r.post_seq = rs.next_post_seq++;
  r.state = ReqState::Posted;
  ++rs.outstanding;
  cpu_cost += world_.platform().per_req_poll_cost;

  if (try_match_unexpected(h, cpu_cost)) return h;

  if (src_w == kAnySource || tag == kAnyTag) {
    rs.wildcard_posted.push_back(h);
  } else {
    rs.exact_posted[MatchKey{comm.context(), tag, src_w}].push_back(h);
  }
  return h;
}

bool Ctx::try_match_unexpected(Req rh, double& cpu_cost) {
  RankState& rs = st();
  Request& r = rs.pool.get(rh);
  Envelope env;
  if (r.peer != kAnySource && r.tag != kAnyTag) {
    auto it = rs.unexpected.find(MatchKey{r.context, r.tag, r.peer});
    if (it == rs.unexpected.end() || it->second.empty()) return false;
    env = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) rs.unexpected.erase(it);
  } else {
    // Wildcard: earliest arrival among all matching queues.
    std::map<MatchKey, std::deque<Envelope>>::iterator best =
        rs.unexpected.end();
    for (auto it = rs.unexpected.begin(); it != rs.unexpected.end(); ++it) {
      const MatchKey& k = it->first;
      if (k.context != r.context) continue;
      if (r.tag != kAnyTag && k.tag != r.tag) continue;
      if (r.peer != kAnySource && k.src != r.peer) continue;
      if (it->second.empty()) continue;
      if (best == rs.unexpected.end() ||
          it->second.front().arrival_seq < best->second.front().arrival_seq) {
        best = it;
      }
    }
    if (best == rs.unexpected.end()) return false;
    env = std::move(best->second.front());
    best->second.pop_front();
    if (best->second.empty()) rs.unexpected.erase(best);
  }

  if (env.bytes > r.bytes) {
    throw std::length_error("recv buffer smaller than incoming message");
  }
  if (env.kind == Envelope::Kind::Eager) {
    const auto& p = world_.platform();
    cpu_cost += (rs.node == world_.ranks_[env.src].node
                     ? p.intra.recv_overhead
                     : p.inter.recv_overhead) +
                static_cast<double>(env.bytes) * p.copy_byte_time;
    if (r.recv_buf != nullptr && !env.payload.empty()) {
      std::memcpy(r.recv_buf, env.payload.data(), env.payload.size());
    }
    r.peer = env.src;
    r.status = Status{env.src, env.tag, env.bytes};
    r.complete = true;
    r.state = ReqState::Complete;
  } else {
    assert(env.kind == Envelope::Kind::Rts);
    send_cts(env, rh, cpu_cost);
  }
  return true;
}

void Ctx::send_cts(const Envelope& rts, Req rh, double& cpu_cost) {
  RankState& rs = st();
  Request& r = rs.pool.get(rh);
  const auto& p = world_.platform();
  cpu_cost += p.ctrl_overhead +
              (rs.node == world_.ranks_[rts.src].node ? p.intra.recv_overhead
                                                      : p.inter.recv_overhead);
  r.peer = rts.src;
  r.bytes = rts.bytes;  // actual message size (<= posted buffer size)
  r.status = Status{rts.src, rts.tag, rts.bytes};
  r.state = ReqState::WaitBulk;

  Envelope cts;
  cts.kind = Envelope::Kind::Cts;
  cts.src = wrank_;
  cts.dst = rts.src;
  cts.context = rts.context;
  cts.tag = rts.tag;
  cts.bytes = rts.bytes;
  cts.match_id = rts.match_id;        // sender request
  cts.peer_match_id = pack_match(rh); // this (receiver) request
  world_.ship(std::move(cts), now() + cpu_cost);
  if (world_.lossy() && rs.node != world_.ranks_[rts.src].node &&
      rts.tag < kReliableTagBase) {
    // Track the CTS for retransmission; stash the sender's match id (the
    // receive side does not otherwise use the field) so the control
    // message can be rebuilt on RTO expiry.
    const fault::FaultPlan& plan = world_.injector()->plan();
    r.match_id = rts.match_id;
    r.rexmit = RexmitKind::Cts;
    r.retries_left = plan.retries;
    r.rto = plan.rto;
    world_.arm_retransmit(wrank_, rh);
  }
}

void Ctx::handle_envelope(Envelope& env, double& cpu_cost) {
  RankState& rs = st();
  if (env.kind == Envelope::Kind::Cts) {
    // Route to the sending request.
    Request& r = rs.pool.at(match_index(env.match_id));
    if (r.generation != match_gen(env.match_id)) return;
    // Under a lossy plan a CTS can land after the bulk already started
    // (retransmit raced the ack); ignore anything but the first.
    if (r.state != ReqState::RtsSent) return;
    // The CTS proves the RTS arrived: stop retransmitting it.
    if (r.timer_id != 0) {
      world_.engine().cancel(r.timer_id);
      r.timer_id = 0;
    }
    r.rexmit = RexmitKind::None;
    r.acked = true;
    r.peer_match_id = env.peer_match_id;
    const auto& p = world_.platform();
    cpu_cost += p.ctrl_overhead;
    const bool same_node = rs.node == world_.ranks_[env.src].node;
    const bool cpu_driven = p.cpu_driven_bulk || same_node;
    if (cpu_driven) {
      // Bulk pushed by this CPU in chunks from subsequent progress passes.
      r.state = ReqState::BulkCpu;
      r.xfer_seq = ++world_.next_msg_seq_;
      Req h{match_index(env.match_id), match_gen(env.match_id)};
      rs.cpu_bulk_sends.push_back(h);
    } else {
      r.state = ReqState::BulkNic;
      Req h{match_index(env.match_id), match_gen(env.match_id)};
      world_.start_nic_bulk(wrank_, env.src, h, env.peer_match_id, r.bytes,
                            r.send_buf, now() + cpu_cost);
    }
    return;
  }

  // Eager data or RTS: match against posted receives.
  Req matched{};
  bool have = false;
  auto exact_it = rs.exact_posted.find(MatchKey{env.context, env.tag, env.src});
  std::uint64_t exact_seq = UINT64_MAX;
  if (exact_it != rs.exact_posted.end() && !exact_it->second.empty()) {
    exact_seq = rs.pool.get(exact_it->second.front()).post_seq;
  }
  std::size_t wild_pos = SIZE_MAX;
  std::uint64_t wild_seq = UINT64_MAX;
  for (std::size_t i = 0; i < rs.wildcard_posted.size(); ++i) {
    Request& r = rs.pool.get(rs.wildcard_posted[i]);
    if (r.context != env.context) continue;
    if (r.tag != kAnyTag && r.tag != env.tag) continue;
    if (r.peer != kAnySource && r.peer != env.src) continue;
    wild_pos = i;
    wild_seq = r.post_seq;
    break;  // wildcard_posted is in posting order
  }
  if (exact_seq != UINT64_MAX && exact_seq <= wild_seq) {
    matched = exact_it->second.front();
    exact_it->second.pop_front();
    if (exact_it->second.empty()) rs.exact_posted.erase(exact_it);
    have = true;
  } else if (wild_pos != SIZE_MAX) {
    matched = rs.wildcard_posted[wild_pos];
    rs.wildcard_posted.erase(rs.wildcard_posted.begin() +
                             static_cast<std::ptrdiff_t>(wild_pos));
    have = true;
  }

  if (!have) {
    rs.unexpected[MatchKey{env.context, env.tag, env.src}].push_back(
        std::move(env));
    return;
  }

  Request& r = rs.pool.get(matched);
  if (env.bytes > r.bytes) {
    throw std::length_error(
        "recv buffer smaller than incoming message (dst=" +
        std::to_string(wrank_) + " src=" + std::to_string(env.src) +
        " tag=" + std::to_string(env.tag) + " ctx=" +
        std::to_string(env.context) + " kind=" +
        std::to_string(int(env.kind)) + " env.bytes=" +
        std::to_string(env.bytes) + " posted.bytes=" +
        std::to_string(r.bytes) + ")");
  }
  if (env.kind == Envelope::Kind::Eager) {
    const auto& p = world_.platform();
    cpu_cost += (rs.node == world_.ranks_[env.src].node
                     ? p.intra.recv_overhead
                     : p.inter.recv_overhead) +
                static_cast<double>(env.bytes) * p.copy_byte_time;
    if (r.recv_buf != nullptr && !env.payload.empty()) {
      std::memcpy(r.recv_buf, env.payload.data(), env.payload.size());
    }
    r.peer = env.src;
    r.status = Status{env.src, env.tag, env.bytes};
    r.complete = true;
    r.state = ReqState::Complete;
  } else {
    send_cts(env, matched, cpu_cost);
  }
}

void Ctx::push_chunks(double& cpu_cost) {
  RankState& rs = st();
  if (rs.cpu_bulk_sends.empty()) return;
  const auto& p = world_.platform();
  auto& v = rs.cpu_bulk_sends;
  for (std::size_t i = 0; i < v.size();) {
    if (!rs.pool.live(v[i])) {
      v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    Request& r = rs.pool.get(v[i]);
    if (r.state != ReqState::BulkCpu || r.chunk_in_flight) {
      ++i;
      continue;
    }
    const std::size_t chunk = std::min(p.bulk_chunk, r.bytes - r.cursor);
    cpu_cost += bulk_chunk_cost(chunk);
    const int dst = r.peer;
    const int dst_node = world_.ranks_[dst].node;
    const bool same_node = rs.node == dst_node;
    world_.machine().add_inflight(dst_node);
    sim::Time drain_end, arrival;
    trace::count(trace::Ctr::MsgsBulkChunks);
    if (same_node) {
      const double factor =
          world_.machine().congestion_factor(dst_node, /*intra=*/true);
      auto slot = world_.machine().reserve_mem(
          rs.node, now() + cpu_cost,
          static_cast<double>(chunk) * p.mem_byte_time * factor, "wire.chunk",
          chunk, r.xfer_seq);
      drain_end = slot.end;
      arrival = slot.end + p.intra.latency;
    } else {
      const int nics = p.nics_per_node;
      const int nic = r.rail >= 0 ? r.rail % nics
                                  : world_.machine().nic_for(rs.node, dst_node);
      const int rnic = r.rail >= 0
                           ? r.rail % nics
                           : world_.machine().nic_for(dst_node, rs.node);
      double lat_mult = 1.0;
      double bt_mult = 1.0;
      if (fault::Injector* inj = world_.injector()) {
        lat_mult = inj->latency_mult(now() + cpu_cost);
        bt_mult = inj->byte_time_mult(now() + cpu_cost);
        if (lat_mult != 1.0 || bt_mult != 1.0) {
          trace::count(trace::Ctr::FaultDegradedMsgs);
        }
      }
      auto tx = world_.machine().reserve_tx(
          rs.node, nic, now() + cpu_cost,
          static_cast<double>(chunk) * p.inter.byte_time * bt_mult +
              p.inter.msg_gap,
          "wire.chunk", chunk, r.xfer_seq);
      const double factor =
          world_.machine().congestion_factor(dst_node, /*intra=*/false);
      auto rx = world_.machine().reserve_rx(
          dst_node, rnic,
          tx.start + world_.machine().latency(rs.node, dst_node) * lat_mult,
          (static_cast<double>(chunk) * p.inter.byte_time * bt_mult +
           p.inter.msg_gap) *
              factor,
          "wire.chunk", chunk, r.xfer_seq);
      drain_end = tx.end;
      arrival = rx.end;
    }
    world_.engine().schedule_at(arrival, [w = &world_, dst_node] {
      w->machine().remove_inflight(dst_node);
    });
    ++rs.data_msgs;
    r.cursor += chunk;
    r.chunk_in_flight = true;
    const bool last = r.cursor == r.bytes;
    const Req h = v[i];
    const int self = wrank_;
    world_.engine().schedule_at(drain_end, [w = &world_, self, h] {
      RankState& s = w->ranks_[self];
      if (!s.pool.live(h)) return;
      s.pool.get(h).chunk_in_flight = false;
      w->notify(self);  // wake to push the next chunk if blocked in wait
    });
    if (last) {
      const std::uint64_t dst_match = r.peer_match_id;
      const void* sbuf = r.send_buf;
      const std::uint64_t xfer = r.xfer_seq;
      world_.engine().schedule_at(arrival, [w = &world_, self, h, dst,
                                            dst_match, sbuf, xfer] {
        if (trace::active()) {
          trace::instant(w->engine_.now(), dst, trace::Cat::Msg,
                         "msg.complete", "src",
                         static_cast<std::uint64_t>(self), nullptr, 0, xfer);
        }
        // Receiver gets the data...
        w->complete_request(dst, dst_match, sbuf);
        // ...and the sender completes (socket drained / copy done).
        RankState& s = w->ranks_[self];
        if (!s.pool.live(h)) return;
        Request& rr = s.pool.get(h);
        rr.complete = true;
        rr.state = ReqState::Complete;
        w->notify(self);
      });
      v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
}

double Ctx::progress_work(bool explicit_call) {
  RankState& rs = st();
  const auto& p = world_.platform();
  trace::count(trace::Ctr::ProgressPasses);
  if (explicit_call) trace::count(trace::Ctr::ProgressCallsExplicit);
  double cost = explicit_call ? p.progress_cost : 0.0;
  cost += p.per_req_poll_cost * static_cast<double>(rs.outstanding);
  if (fault::Injector* inj = world_.injector()) {
    const double penalty = inj->starvation_penalty(wrank_, now());
    if (penalty > 0.0) {
      cost += penalty;
      trace::count(trace::Ctr::FaultStarvedPasses);
    }
  }
  if (!rs.inbound.empty()) {
    std::vector<Envelope> batch;
    batch.swap(rs.inbound);
    for (auto& env : batch) handle_envelope(env, cost);
  }
  push_chunks(cost);
  // Clients may post operations and advance schedules.
  for (std::size_t i = 0; i < rs.clients.size(); ++i) {
    cost += rs.clients[i]->poke(*this);
  }
  return cost;
}

void Ctx::progress_pass(bool explicit_call) {
  const sim::Time t0 = now();
  const double cost = progress_work(explicit_call);
  charge(cost);
  if (cost > 0.0 && trace::active()) {
    trace::span(t0, now() - t0, wrank_, trace::Cat::Progress,
                explicit_call ? "progress.call" : "progress.pass");
  }
}

// ---- public point-to-point ----

Req Ctx::isend(const Comm& comm, const void* buf, std::size_t bytes, int dst,
               int tag) {
  if (world_.ft_ != nullptr) check_ft();
  progress_pass(false);
  double cost = 0.0;
  Req h = post_isend(comm, buf, bytes, dst, tag, cost, 0.0);
  charge(cost);
  return h;
}

Req Ctx::irecv(const Comm& comm, void* buf, std::size_t bytes, int src,
               int tag) {
  if (world_.ft_ != nullptr) check_ft();
  progress_pass(false);
  double cost = 0.0;
  Req h = post_irecv(comm, buf, bytes, src, tag, cost);
  charge(cost);
  return h;
}

bool Ctx::peek_complete(Req h) {
  if (h.null()) return true;
  return st().pool.get(h).complete;
}

Request* Ctx::request_ptr(Req h) { return st().pool.ptr(h); }

void Ctx::observe(Req& h, Status* status) {
  if (h.null()) return;
  RankState& rs = st();
  Request& r = rs.pool.get(h);
  assert(r.complete);
  if (status != nullptr) *status = r.status;
  --rs.outstanding;
  rs.pool.release(h);
  h = Req{};
}

template <typename Pred>
void Ctx::block_until(Pred&& pred) {
  if (st().process == nullptr) throw_machine_block(wrank_);
  check_ft();
  progress_pass(false);
  while (!pred()) {
    st().process->suspend();
    check_ft();
    progress_pass(false);
  }
}

void Ctx::check_ft() {
  if (st().dead) throw RankKilled{};
  RecoveryService* ft = world_.ft_.get();
  if (ft != nullptr && !in_recovery_ && ft->detectable() > ft_acked_) {
    throw RanksFailed();
  }
}

void Ctx::wait_until(const std::function<bool()>& pred) {
  block_until([&] { return pred(); });
}

namespace {
[[noreturn]] void throw_send_failed(int wrank) {
  throw std::runtime_error("mpi: send failed after retries exhausted (rank " +
                           std::to_string(wrank) + ")");
}
}  // namespace

bool Ctx::test(Req& h, Status* status) {
  if (h.null()) return true;
  if (world_.ft_ != nullptr) check_ft();
  progress_pass(false);
  Request& r = st().pool.get(h);
  if (r.failed) {
    cancel_request(h);
    throw_send_failed(wrank_);
  }
  if (!r.complete) return false;
  observe(h, status);
  return true;
}

void Ctx::wait(Req& h, Status* status) {
  if (h.null()) return;
  block_until([&] {
    const Request& r = st().pool.get(h);
    return r.complete || r.failed;
  });
  if (st().pool.get(h).failed) {
    cancel_request(h);
    throw_send_failed(wrank_);
  }
  observe(h, status);
}

void Ctx::wait_all(std::vector<Req>& hs) {
  block_until([&] {
    for (const Req& h : hs) {
      if (h.null()) continue;
      const Request& r = st().pool.get(h);
      if (!r.complete && !r.failed) return false;
    }
    return true;
  });
  bool any_failed = false;
  for (Req& h : hs) {
    if (!h.null() && st().pool.get(h).failed) {
      cancel_request(h);
      any_failed = true;
    }
  }
  if (any_failed) {
    for (Req& h : hs) {
      if (!h.null() && st().pool.get(h).complete) observe(h, nullptr);
    }
    throw_send_failed(wrank_);
  }
  for (Req& h : hs) observe(h, nullptr);
}

void Ctx::cancel_request(Req& h) {
  if (h.null()) return;
  RankState& rs = st();
  if (!rs.pool.live(h)) {
    h = Req{};
    return;
  }
  Request& r = rs.pool.get(h);
  if (r.timer_id != 0) {
    world_.engine().cancel(r.timer_id);
    r.timer_id = 0;
  }
  const auto is_h = [&](const Req& q) {
    return q.index == h.index && q.generation == h.generation;
  };
  if (r.kind == ReqKind::Recv && r.state == ReqState::Posted) {
    if (r.peer != kAnySource && r.tag != kAnyTag) {
      auto it = rs.exact_posted.find(MatchKey{r.context, r.tag, r.peer});
      if (it != rs.exact_posted.end()) {
        auto& dq = it->second;
        for (auto qi = dq.begin(); qi != dq.end(); ++qi) {
          if (is_h(*qi)) {
            dq.erase(qi);
            break;
          }
        }
        if (dq.empty()) rs.exact_posted.erase(it);
      }
    } else {
      auto& v = rs.wildcard_posted;
      v.erase(std::remove_if(v.begin(), v.end(), is_h), v.end());
    }
  }
  auto& bulks = rs.cpu_bulk_sends;
  bulks.erase(std::remove_if(bulks.begin(), bulks.end(), is_h), bulks.end());
  // Any in-flight transport event for this request (NIC bulk completion,
  // chunk drain, RTO) is generation-checked and becomes a no-op.
  --rs.outstanding;
  rs.pool.release(h);
  h = Req{};
}

// ---- fail-stop recovery ----

FtDecision Ctx::ft_recover(int iteration) { return ft_wait(iteration, false); }

FtDecision Ctx::ft_finish() {
  return ft_wait(RecoveryService::kFinishedIteration, true);
}

FtDecision Ctx::ft_wait(int iteration, bool finished) {
  RecoveryService* ft = world_.ft_.get();
  if (ft == nullptr) {
    throw std::logic_error("mpi: ft_recover/ft_finish without a kill plan");
  }
  // A dead rank unwinds here instead of arriving (only the self-death
  // check: the caller arrives precisely BECAUSE a failure is detectable,
  // so the peer-failure check must not re-throw).
  if (st().dead) throw RankKilled{};
  const int target = ft->arrive(wrank_, iteration, finished);
  // The wait itself must block through further detections: the agreement
  // round folds them in (completion waits for every dead rank to become
  // detectable), so suppress RanksFailed until the decision lands.
  in_recovery_ = true;
  try {
    block_until([&] { return ft->epoch() >= target; });
  } catch (...) {
    in_recovery_ = false;  // RankKilled mid-wait: unwind as usual
    throw;
  }
  in_recovery_ = false;
  FtDecision d = ft->decision();
  ft_cleanup(d);
  return d;
}

void Ctx::ft_cleanup(const FtDecision& d) {
  RankState& rs = st();
  // Cancel leaked control-plane requests: a bootstrap collective
  // interrupted mid-round leaves posted receives and un-observed sends
  // behind, and the new epoch never matches their tags again.  Data-plane
  // requests stay — the NBC layer aborts its own handles.
  std::vector<Req> leaked;
  rs.pool.for_each_live([&](Req h) {
    if (rs.pool.get(h).tag >= kReliableTagBase) leaked.push_back(h);
  });
  for (Req h : leaked) cancel_request(h);

  // Purge stale receive-side state: anything from a dead peer, plus
  // control-plane traffic from before the shrink.  New-epoch control
  // messages from faster survivors carry tags at or above the resynced
  // floor and must survive this purge.
  const int floor_tag =
      kReliableTagBase + ((d.epoch << 16) % (1 << 20)) * kCollEpochSpan;
  const auto stale = [&](const Envelope& e) {
    if (world_.ranks_[static_cast<std::size_t>(e.src)].dead) return true;
    return e.tag >= kReliableTagBase && e.tag < floor_tag;
  };
  for (auto it = rs.unexpected.begin(); it != rs.unexpected.end();) {
    auto& dq = it->second;
    for (auto qi = dq.begin(); qi != dq.end();) {
      qi = stale(*qi) ? dq.erase(qi) : std::next(qi);
    }
    it = dq.empty() ? rs.unexpected.erase(it) : std::next(it);
  }
  auto& inb = rs.inbound;
  inb.erase(std::remove_if(inb.begin(), inb.end(), stale), inb.end());
  // Dedup entries keyed by a dead sender can never match again: reclaim.
  for (auto it = rs.seen_msgs.begin(); it != rs.seen_msgs.end();) {
    const bool dead =
        world_.ranks_[static_cast<std::size_t>(std::get<1>(*it))].dead;
    it = dead ? rs.seen_msgs.erase(it) : std::next(it);
  }

  // Resync the collective/tag counters: every survivor enters the new
  // epoch with identical counters no matter where it was interrupted.
  epoch_counter_ = d.epoch << 16;
  nbc_tag_counter_ = d.epoch << 12;
  op_corr_counter_ = static_cast<std::uint64_t>(d.epoch) << 32;

  // Acknowledge every failure folded into this decision; later deaths
  // re-raise RanksFailed at the next interruption point.
  ft_acked_ = world_.ft_->decision_detectable();
}

std::uint64_t Ctx::schedule_wake(double dt) {
  const int self = wrank_;
  return world_.engine().schedule_after(
      dt, [w = &world_, self] { w->notify(self); });
}

void Ctx::cancel_event(std::uint64_t id) { world_.engine().cancel(id); }

void Ctx::send(const Comm& comm, const void* buf, std::size_t bytes, int dst,
               int tag) {
  Req h = isend(comm, buf, bytes, dst, tag);
  wait(h);
}

Status Ctx::recv(const Comm& comm, void* buf, std::size_t bytes, int src,
                 int tag) {
  Req h = irecv(comm, buf, bytes, src, tag);
  Status status;
  wait(h, &status);
  return status;
}

}  // namespace nbctune::mpi
