file(REMOVE_RECURSE
  "CMakeFiles/test_adcl_selection.dir/test_adcl_selection.cpp.o"
  "CMakeFiles/test_adcl_selection.dir/test_adcl_selection.cpp.o.d"
  "test_adcl_selection"
  "test_adcl_selection.pdb"
  "test_adcl_selection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adcl_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
