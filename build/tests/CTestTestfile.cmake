# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_pt2pt[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_nbc[1]_include.cmake")
include("/root/repo/build/tests/test_coll[1]_include.cmake")
include("/root/repo/build/tests/test_adcl_selection[1]_include.cmake")
include("/root/repo/build/tests/test_adcl_request[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_coll_ext[1]_include.cmake")
include("/root/repo/build/tests/test_adcl_ext[1]_include.cmake")
include("/root/repo/build/tests/test_infra[1]_include.cmake")
include("/root/repo/build/tests/test_fft_inverse[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_extra[1]_include.cmake")
