#pragma once

// Public entry points of the auto-tuning library, mirroring the paper's
// high-level API (Fig. 1):
//
//   ADCL_Ialltoall_init  ->  adcl::ialltoall_init
//   ADCL_Ibcast_init     ->  adcl::ibcast_init
//   ADCL_Request_init    ->  Request::init
//   ADCL_Request_wait    ->  Request::wait
//   ADCL_Request_start   ->  Request::start        (blocking execution)
//   ADCL progress fn     ->  Request::progress
//   ADCL_Timer_create    ->  adcl::Timer
//   ADCL_Timer_start/end ->  Timer::start / Timer::stop
//
// See DESIGN.md for how the pieces map to the paper's sections.

#include <memory>

#include "adcl/attribute.hpp"
#include "adcl/filtering.hpp"
#include "adcl/function.hpp"
#include "adcl/functionsets.hpp"
#include "adcl/history.hpp"
#include "adcl/request.hpp"
#include "adcl/selection.hpp"

namespace nbctune::adcl {

/// Create a persistent auto-tuned non-blocking all-to-all.  sbuf/rbuf hold
/// comm.size() blocks of `block` bytes each.  Pass `shared` to co-tune
/// with existing requests of the same function-set; `include_blocking`
/// adds blocking implementations to the set (paper §IV-B).
std::unique_ptr<Request> ialltoall_init(
    mpi::Ctx& ctx, const mpi::Comm& comm, const void* sbuf, void* rbuf,
    std::size_t block, const TuningOptions& opts = {},
    std::shared_ptr<SelectionState> shared = nullptr,
    bool include_blocking = false);

/// Persistent auto-tuned non-blocking broadcast of `bytes` from `root`.
std::unique_ptr<Request> ibcast_init(
    mpi::Ctx& ctx, const mpi::Comm& comm, void* buf, std::size_t bytes,
    int root, const TuningOptions& opts = {},
    std::shared_ptr<SelectionState> shared = nullptr);

/// Persistent auto-tuned non-blocking allgather (`block` bytes per rank).
std::unique_ptr<Request> iallgather_init(
    mpi::Ctx& ctx, const mpi::Comm& comm, const void* sbuf, void* rbuf,
    std::size_t block, const TuningOptions& opts = {},
    std::shared_ptr<SelectionState> shared = nullptr);

/// Persistent auto-tuned non-blocking reduce of `count` elements.
std::unique_ptr<Request> ireduce_init(
    mpi::Ctx& ctx, const mpi::Comm& comm, const void* sbuf, void* rbuf,
    std::size_t count, nbc::DType dtype, mpi::ReduceOp op, int root,
    const TuningOptions& opts = {},
    std::shared_ptr<SelectionState> shared = nullptr);

/// Persistent auto-tuned non-blocking allreduce of `count` elements.
std::unique_ptr<Request> iallreduce_init(
    mpi::Ctx& ctx, const mpi::Comm& comm, const void* sbuf, void* rbuf,
    std::size_t count, nbc::DType dtype, mpi::ReduceOp op,
    const TuningOptions& opts = {},
    std::shared_ptr<SelectionState> shared = nullptr);

/// Persistent auto-tuned Cartesian halo exchange on `topo` (which must
/// match the communicator size).  sbuf/rbuf hold 2*ndims blocks of
/// `block` bytes, ordered (dim0,low), (dim0,high), (dim1,low), ...
std::unique_ptr<Request> ineighbor_init(
    mpi::Ctx& ctx, const mpi::Comm& comm, coll::CartTopo topo,
    const void* sbuf, void* rbuf, std::size_t block,
    const TuningOptions& opts = {},
    std::shared_ptr<SelectionState> shared = nullptr);

/// Low-level entry (paper §III-A): tune a user-supplied function-set.
std::unique_ptr<Request> request_create(
    mpi::Ctx& ctx, std::shared_ptr<const FunctionSet> fset, OpArgs args,
    const TuningOptions& opts = {},
    std::shared_ptr<SelectionState> shared = nullptr);

}  // namespace nbctune::adcl
