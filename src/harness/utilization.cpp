#include "harness/utilization.hpp"

#include <algorithm>
#include <iomanip>

#include "harness/table.hpp"

namespace nbctune::harness {

UtilizationReport utilization_report(mpi::World& world, double elapsed) {
  UtilizationReport report;
  report.elapsed = elapsed;
  report.data_messages = world.total_data_msgs();
  report.ctrl_messages = world.total_ctrl_msgs();
  net::Machine& machine = world.machine();
  const auto& p = machine.platform();
  auto add = [&](const sim::Resource& r) {
    if (r.reservations() == 0) return;
    ResourceUsage u;
    u.name = r.name();
    u.busy_seconds = r.busy_total();
    u.busy_fraction = elapsed > 0 ? r.busy_total() / elapsed : 0.0;
    u.reservations = r.reservations();
    report.resources.push_back(std::move(u));
  };
  for (int node = 0; node < p.nodes; ++node) {
    for (int nic = 0; nic < p.nics_per_node; ++nic) {
      add(machine.nic_tx(node, nic));
      add(machine.nic_rx(node, nic));
    }
    add(machine.mem(node));
  }
  std::stable_sort(report.resources.begin(), report.resources.end(),
                   [](const ResourceUsage& a, const ResourceUsage& b) {
                     return a.busy_fraction > b.busy_fraction;
                   });
  return report;
}

void print_utilization(const UtilizationReport& report, int top_n,
                       std::ostream& os) {
  os << "utilization over " << Table::num(report.elapsed) << " s ("
     << report.data_messages << " data msgs, " << report.ctrl_messages
     << " ctrl msgs):\n";
  Table t({"resource", "busy[s]", "busy%", "reservations"});
  int shown = 0;
  for (const ResourceUsage& u : report.resources) {
    if (shown++ >= top_n) break;
    t.add_row({u.name, Table::num(u.busy_seconds),
               Table::num(100.0 * u.busy_fraction, 1),
               std::to_string(u.reservations)});
  }
  t.print(os);
}

}  // namespace nbctune::harness
