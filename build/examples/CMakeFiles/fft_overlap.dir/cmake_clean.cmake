file(REMOVE_RECURSE
  "CMakeFiles/fft_overlap.dir/fft_overlap.cpp.o"
  "CMakeFiles/fft_overlap.dir/fft_overlap.cpp.o.d"
  "fft_overlap"
  "fft_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
