file(REMOVE_RECURSE
  "CMakeFiles/nbctune_fft.dir/fft1d.cpp.o"
  "CMakeFiles/nbctune_fft.dir/fft1d.cpp.o.d"
  "CMakeFiles/nbctune_fft.dir/fft3d.cpp.o"
  "CMakeFiles/nbctune_fft.dir/fft3d.cpp.o.d"
  "libnbctune_fft.a"
  "libnbctune_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbctune_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
