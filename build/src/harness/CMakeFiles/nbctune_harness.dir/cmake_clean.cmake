file(REMOVE_RECURSE
  "CMakeFiles/nbctune_harness.dir/microbench.cpp.o"
  "CMakeFiles/nbctune_harness.dir/microbench.cpp.o.d"
  "CMakeFiles/nbctune_harness.dir/table.cpp.o"
  "CMakeFiles/nbctune_harness.dir/table.cpp.o.d"
  "CMakeFiles/nbctune_harness.dir/utilization.cpp.o"
  "CMakeFiles/nbctune_harness.dir/utilization.cpp.o.d"
  "libnbctune_harness.a"
  "libnbctune_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbctune_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
