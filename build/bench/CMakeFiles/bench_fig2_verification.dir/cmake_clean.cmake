file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_verification.dir/bench_fig2_verification.cpp.o"
  "CMakeFiles/bench_fig2_verification.dir/bench_fig2_verification.cpp.o.d"
  "bench_fig2_verification"
  "bench_fig2_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
