file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_nprocs.dir/bench_fig5_nprocs.cpp.o"
  "CMakeFiles/bench_fig5_nprocs.dir/bench_fig5_nprocs.cpp.o.d"
  "bench_fig5_nprocs"
  "bench_fig5_nprocs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_nprocs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
