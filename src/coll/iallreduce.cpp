#include "coll/iallreduce.hpp"

#include <algorithm>
#include <stdexcept>

#include "coll/iallgather.hpp"  // is_pow2

namespace nbctune::coll {

namespace {
std::byte* off(std::byte* base, std::size_t elems, std::size_t esz) {
  return base == nullptr ? nullptr : base + elems * esz;
}
}  // namespace

nbc::Schedule build_iallreduce_recursive_doubling(int me, int n,
                                                  const void* sbuf, void* rbuf,
                                                  std::size_t count,
                                                  nbc::DType dtype,
                                                  mpi::ReduceOp op) {
  if (!is_pow2(n)) {
    throw std::invalid_argument(
        "recursive doubling allreduce requires a power-of-two size");
  }
  nbc::Schedule s;
  const std::size_t esz = nbc::dtype_size(dtype);
  const std::size_t bytes = count * esz;
  const bool real = sbuf != nullptr || rbuf != nullptr;
  auto* acc = static_cast<std::byte*>(rbuf);
  std::byte* tmp = real ? s.scratch(bytes) : nullptr;

  // Round for mask m: fold the previous exchange, then swap full vectors
  // with peer me^m.  The fold-before-send ordering makes each send carry
  // the partial reduction of the subcube handled so far.  The initial
  // copy shares the first exchange round: local actions execute when the
  // round is posted, before its sends go out, so the first send already
  // carries the copied vector — log2(n) exchange rounds plus the final
  // fold, matching LibNBC's round count (copy + log2(n) exchanges).
  s.copy(sbuf, acc, bytes);
  bool pending_fold = false;
  for (int mask = 1; mask < n; mask <<= 1) {
    if (pending_fold) s.op(tmp, acc, count, dtype, op);
    const int peer = me ^ mask;
    s.recv(tmp, bytes, peer);
    s.send(acc, bytes, peer);
    s.barrier();
    pending_fold = true;
  }
  if (pending_fold) s.op(tmp, acc, count, dtype, op);
  s.finalize();
  nbc::trace_built(s, "iallreduce.recursive_doubling", me);
  return s;
}

nbc::Schedule build_iallreduce_reduce_bcast(int me, int n, const void* sbuf,
                                            void* rbuf, std::size_t count,
                                            nbc::DType dtype,
                                            mpi::ReduceOp op) {
  nbc::Schedule s;
  const std::size_t esz = nbc::dtype_size(dtype);
  const std::size_t bytes = count * esz;
  const bool real = sbuf != nullptr || rbuf != nullptr;
  auto* acc = static_cast<std::byte*>(rbuf);  // everyone reduces in place

  s.copy(sbuf, acc, bytes);
  // --- binomial reduce towards rank 0 ---
  std::byte* in = nullptr;
  for (int mask = 1; mask < n; mask <<= 1) {
    if (me & mask) {
      s.barrier();
      s.send(acc, bytes, me - mask);
      break;
    }
    if (me + mask < n) {
      if (in == nullptr && real) in = s.scratch(bytes);
      s.recv(in, bytes, me + mask);
      s.barrier();
      s.op(in, acc, count, dtype, op);
    }
  }
  s.barrier();
  // --- binomial broadcast of the result from rank 0 ---
  int mask = 1;
  while (mask < n) {
    if (me & mask) {
      s.recv(acc, bytes, me - mask);
      s.barrier();
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if ((me & (mask - 1)) == 0 && (me | mask) < n && !(me & mask)) {
      s.send(acc, bytes, me | mask);
      s.barrier();
    }
    mask >>= 1;
  }
  s.finalize();
  nbc::trace_built(s, "iallreduce.reduce_bcast", me);
  return s;
}

nbc::Schedule build_iallreduce_ring(int me, int n, const void* sbuf,
                                    void* rbuf, std::size_t count,
                                    nbc::DType dtype, mpi::ReduceOp op) {
  nbc::Schedule s;
  const std::size_t esz = nbc::dtype_size(dtype);
  const bool real = sbuf != nullptr || rbuf != nullptr;
  auto* acc = static_cast<std::byte*>(rbuf);
  const std::size_t q = n > 0 ? (count + n - 1) / n : count;  // chunk elems
  auto chunk_off = [&](int c) { return std::min<std::size_t>(c * q, count); };
  auto chunk_len = [&](int c) {
    return std::min<std::size_t>(q, count - chunk_off(c));
  };
  std::byte* tmp = real && q > 0 ? s.scratch(q * esz) : nullptr;
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;

  s.copy(sbuf, acc, count * esz);
  s.barrier();
  if (n == 1) {
    s.finalize();
    nbc::trace_built(s, "iallreduce.ring", me);
    return s;
  }
  // --- reduce-scatter: after step s every rank has folded one more
  //     neighbour contribution into chunk (me - s - 1); after n-1 steps
  //     rank me owns the fully reduced chunk (me + 1) mod n. ---
  for (int step = 0; step < n - 1; ++step) {
    const int send_c = (me - step + n) % n;
    const int recv_c = (me - step - 1 + n) % n;
    if (step > 0) {
      // Fold the chunk received in the previous step; it is also the
      // chunk forwarded below, so the order op -> send matters.
      const int prev_c = (me - step + n) % n;
      s.op(tmp, off(acc, chunk_off(prev_c), esz), chunk_len(prev_c), dtype,
           op);
    }
    s.recv(tmp, chunk_len(recv_c) * esz, left);
    s.send(off(acc, chunk_off(send_c), esz), chunk_len(send_c) * esz, right);
    s.barrier();
  }
  // --- allgather: circulate the reduced chunks. ---
  for (int step = 0; step < n - 1; ++step) {
    const int send_c = (me + 1 - step + n) % n;
    const int recv_c = (me - step + n) % n;
    if (step == 0) {
      // Final fold of the reduce-scatter, producing my owned chunk.
      s.op(tmp, off(acc, chunk_off(send_c), esz), chunk_len(send_c), dtype,
           op);
    }
    s.recv(off(acc, chunk_off(recv_c), esz), chunk_len(recv_c) * esz, left);
    s.send(off(acc, chunk_off(send_c), esz), chunk_len(send_c) * esz, right);
    s.barrier();
  }
  s.finalize();
  nbc::trace_built(s, "iallreduce.ring", me);
  return s;
}

}  // namespace nbctune::coll
