file(REMOVE_RECURSE
  "CMakeFiles/allreduce_overlap.dir/allreduce_overlap.cpp.o"
  "CMakeFiles/allreduce_overlap.dir/allreduce_overlap.cpp.o.d"
  "allreduce_overlap"
  "allreduce_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allreduce_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
