#include "adcl/history.hpp"

#include <fstream>
#include <stdexcept>

namespace nbctune::adcl {

void HistoryStore::put(const std::string& key, const std::string& winner) {
  entries_[key] = winner;
}

std::optional<std::string> HistoryStore::get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void HistoryStore::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("HistoryStore: cannot write " + path);
  for (const auto& [k, v] : entries_) out << k << '\t' << v << '\n';
}

void HistoryStore::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("HistoryStore: cannot read " + path);
  std::string line;
  while (std::getline(in, line)) {
    const auto tab = line.find('\t');
    if (tab == std::string::npos) continue;
    entries_[line.substr(0, tab)] = line.substr(tab + 1);
  }
}

std::string history_key(const std::string& platform, const std::string& fset,
                        int nprocs, std::size_t bytes,
                        const std::string& extra) {
  std::string key =
      platform + "/" + fset + "/np" + std::to_string(nprocs) + "/b" +
      std::to_string(bytes);
  if (!extra.empty()) key += "/" + extra;
  return key;
}

}  // namespace nbctune::adcl
