#include "fft/fft1d.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace nbctune::fft {

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

double fft_flops(std::size_t n) noexcept {
  if (n < 2) return 0.0;
  return 5.0 * static_cast<double>(n) * std::log2(static_cast<double>(n));
}

void fft_pow2(cplx* a, std::size_t n, bool inverse) {
  if (!is_pow2(n)) throw std::invalid_argument("fft_pow2: n not a power of 2");
  if (n <= 1) return;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  // Danielson-Lanczos butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) a[i] *= inv;
  }
}

namespace {

/// Bluestein chirp-z: expresses a length-n DFT as a cyclic convolution of
/// length m = next_pow2(2n - 1), evaluated with radix-2 FFTs.
void fft_bluestein(cplx* a, std::size_t n, bool inverse) {
  const double sign = inverse ? 1.0 : -1.0;
  const std::size_t m = next_pow2(2 * n - 1);
  std::vector<cplx> u(m), v(m), chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // exp(sign * i * pi * k^2 / n); k^2 mod 2n keeps the angle exact.
    const std::size_t k2 = (k * k) % (2 * n);
    const double ang =
        sign * std::numbers::pi * static_cast<double>(k2) /
        static_cast<double>(n);
    chirp[k] = cplx(std::cos(ang), std::sin(ang));
  }
  for (std::size_t k = 0; k < n; ++k) u[k] = a[k] * chirp[k];
  v[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    v[k] = v[m - k] = std::conj(chirp[k]);
  }
  fft_pow2(u.data(), m, false);
  fft_pow2(v.data(), m, false);
  for (std::size_t i = 0; i < m; ++i) u[i] *= v[i];
  fft_pow2(u.data(), m, true);
  for (std::size_t k = 0; k < n; ++k) a[k] = u[k] * chirp[k];
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) a[k] *= inv;
  }
}

}  // namespace

void fft(cplx* data, std::size_t n, bool inverse) {
  if (n <= 1) return;
  if (is_pow2(n)) {
    fft_pow2(data, n, inverse);
  } else {
    fft_bluestein(data, n, inverse);
  }
}

std::vector<cplx> dft_reference(const cplx* data, std::size_t n,
                                bool inverse) {
  std::vector<cplx> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc(0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * std::numbers::pi *
                         static_cast<double>(j * k % n) /
                         static_cast<double>(n);
      acc += data[j] * cplx(std::cos(ang), std::sin(ang));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

}  // namespace nbctune::fft
