file(REMOVE_RECURSE
  "CMakeFiles/nbctune_coll.dir/blocking.cpp.o"
  "CMakeFiles/nbctune_coll.dir/blocking.cpp.o.d"
  "CMakeFiles/nbctune_coll.dir/iallgather.cpp.o"
  "CMakeFiles/nbctune_coll.dir/iallgather.cpp.o.d"
  "CMakeFiles/nbctune_coll.dir/iallreduce.cpp.o"
  "CMakeFiles/nbctune_coll.dir/iallreduce.cpp.o.d"
  "CMakeFiles/nbctune_coll.dir/ialltoall.cpp.o"
  "CMakeFiles/nbctune_coll.dir/ialltoall.cpp.o.d"
  "CMakeFiles/nbctune_coll.dir/ibcast.cpp.o"
  "CMakeFiles/nbctune_coll.dir/ibcast.cpp.o.d"
  "CMakeFiles/nbctune_coll.dir/ineighbor.cpp.o"
  "CMakeFiles/nbctune_coll.dir/ineighbor.cpp.o.d"
  "CMakeFiles/nbctune_coll.dir/ireduce.cpp.o"
  "CMakeFiles/nbctune_coll.dir/ireduce.cpp.o.d"
  "libnbctune_coll.a"
  "libnbctune_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbctune_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
