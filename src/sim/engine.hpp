#pragma once

// Discrete-event simulation engine.
//
// The engine owns a clock (seconds, double precision), a priority queue of
// events, and a set of processes.  Each process is a fiber (see fiber.hpp)
// running an arbitrary program; processes advance the clock by sleeping and
// interact through events.  Event ordering is fully deterministic: ties in
// time are broken by insertion sequence number.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/inline_fn.hpp"
#include "sim/random.hpp"

namespace nbctune::sim {

/// Simulated time in seconds.
using Time = double;

class Engine;

/// One simulated process: a program running on its own fiber, owned by the
/// engine.  All methods except wake() must be called from inside the
/// process's own fiber; wake() is called from scheduler context (events).
class Process {
 public:
  Process(Engine& engine, int id, std::string name,
          std::function<void(Process&)> body, std::size_t stack_bytes);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Engine-wide process index (0-based, dense).
  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Engine& engine() noexcept { return engine_; }
  [[nodiscard]] bool finished() const noexcept { return fiber_.finished(); }

  /// Advance this process's time by dt; other events run meanwhile.
  /// A sleeping process cannot be interrupted (models a busy CPU).
  void sleep(Time dt);

  /// Block until some event calls wake().  Returns immediately if a wake
  /// arrived since the last suspend (no lost wakeups when used in a
  /// check-condition-then-suspend loop).
  void suspend();

  /// Wake a suspended process: schedules its resumption at the current
  /// time.  No-op if the process is running, sleeping, or already woken.
  /// Safe to call multiple times; wakes coalesce.
  void wake();

  /// True if currently blocked in suspend().
  [[nodiscard]] bool suspended() const noexcept { return suspended_; }

 private:
  friend class Engine;
  void run_slice();  // resume the fiber (scheduler side)

  Engine& engine_;
  int id_;
  std::string name_;
  Fiber fiber_;
  bool suspended_ = false;
  bool wake_pending_ = false;
};

/// The simulation engine / scheduler.
class Engine {
 public:
  /// Event callbacks are small-buffer callables (see inline_fn.hpp):
  /// scheduling never allocates, which matters at tens of millions of
  /// events per experiment.
  using Callback = InlineFn;

  explicit Engine(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }

  /// Schedule cb at absolute time t (>= now).  Returns an id for cancel().
  /// Events at exactly the current time bypass the heap entirely (the
  /// wake()/zero-delay fast path) and run FIFO after any heap events that
  /// were already pending for this instant.
  std::uint64_t schedule_at(Time t, Callback cb);

  /// Schedule cb dt seconds from now.
  std::uint64_t schedule_after(Time dt, Callback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  /// Cancel a scheduled event in O(1).  Cancelling an already-fired or
  /// unknown id is a no-op.  The slot is reclaimed immediately; the stale
  /// heap entry is skipped when it surfaces.
  void cancel(std::uint64_t id);

  /// Create a process; its body starts running when run() is called.
  /// Returns the process (owned by the engine, stable address).
  /// @param stack_bytes fiber stack size; 0 = default_fiber_stack_bytes()
  Process& add_process(std::string name, std::function<void(Process&)> body,
                       std::size_t stack_bytes = 0);

  [[nodiscard]] std::size_t process_count() const noexcept {
    return processes_.size();
  }
  [[nodiscard]] Process& process(int id) { return *processes_.at(id); }

  /// Run until the event queue is empty.  Throws DeadlockError if the
  /// queue drains while processes are still suspended.
  void run();

  /// Run until the clock reaches t (events at exactly t still fire).
  void run_until(Time t);

  /// Thrown by run() when all events are exhausted but suspended
  /// processes remain: a genuine simulated deadlock.
  struct DeadlockError : std::runtime_error {
    explicit DeadlockError(const std::string& what)
        : std::runtime_error(what) {}
  };

 private:
  // The heap holds small plain entries; callbacks live in a slab indexed
  // by slot so heap sifts move 24 bytes instead of the whole callable.
  // Each slot carries a generation counter, bumped on every release: an
  // event id encodes (slot, generation), so cancel() is pointer-free O(1)
  // arithmetic and a popped heap entry whose generation no longer matches
  // its slot is simply stale (cancelled or superseded).  The slab never
  // shrinks; freed slots are recycled LIFO for cache warmth.
  struct Event {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  /// Entry of the now-FIFO: events scheduled at exactly the current time.
  struct NowEvent {
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static constexpr std::uint64_t make_id(std::uint32_t slot,
                                         std::uint32_t gen) noexcept {
    return (static_cast<std::uint64_t>(slot) << 32) | gen;
  }

  std::uint32_t acquire_slot(Callback cb);
  void release_slot(std::uint32_t slot) noexcept;

  bool step(Time limit);  // pop and run one event with t <= limit
  void check_deadlock() const;
  void launch_pending();  // start processes added since the last call

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::vector<Callback> slots_;
  std::vector<std::uint32_t> slot_gen_;
  std::vector<std::uint32_t> free_slots_;
  // Fast path for schedule_after(0)-style wakeups: a FIFO of events at
  // t == now_, drained after the heap's events for this instant (which
  // necessarily carry smaller sequence numbers) and before the clock
  // advances.  Skips two O(log n) heap sifts per wakeup.
  std::vector<NowEvent> now_fifo_;
  std::size_t now_head_ = 0;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Process*> start_pending_;
  Rng rng_;
  bool running_ = false;
};

}  // namespace nbctune::sim
