// Live telemetry subsystem (src/obs): JSONL stream schema and seq
// monotonicity, terminal-summary byte-identity across pool thread
// counts, sampler/pool gauge arithmetic, the collapsed-stack and
// speedscope exporters on the 2-rank ibcast fixture, the trace event
// cap, and the async-signal-safe abort record.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/json_min.hpp"
#include "coll/ibcast.hpp"
#include "harness/microbench.hpp"
#include "harness/scenario_pool.hpp"
#include "mpi/world.hpp"
#include "nbc/handle.hpp"
#include "net/platform.hpp"
#include "obs/live.hpp"
#include "obs/profile.hpp"
#include "obs/sampler.hpp"
#include "obs/top.hpp"
#include "testing_util.hpp"
#include "trace/trace.hpp"

using namespace nbctune;
namespace t = nbctune::testing;
namespace jm = nbctune::analyze::jsonmin;

namespace {

/// Run an np-rank binomial ibcast `ops` times under the current tracer.
void run_ibcast(int nprocs, std::size_t bytes, int ops = 1,
                std::uint64_t seed = 1) {
  std::vector<std::byte> buf(bytes);
  t::run_world(net::whale(), nprocs, [&](mpi::Ctx& ctx) {
    nbc::Schedule s = coll::build_ibcast(ctx.world_rank(), nprocs,
                                        buf.data(), bytes, /*root=*/0,
                                        coll::kFanoutBinomial,
                                        /*seg_bytes=*/0);
    nbc::Handle h(ctx, ctx.world().comm_world(), &s, 1 << 20);
    for (int i = 0; i < ops; ++i) {
      h.start();
      h.wait();
    }
  }, /*noise_scale=*/0.0, seed);
}

struct Case {
  std::string label;
  int nprocs;
  std::size_t bytes;
  int ops;
};

std::vector<Case> sweep_cases() {
  return {{"ibcast whale np2 1024B fixed:binomial", 2, 1024, 3},
          {"ibcast whale np4 1024B fixed:binomial", 4, 1024, 3},
          {"ibcast whale np4 4096B fixed:binomial", 4, 4096, 3},
          {"ibcast whale np8 1024B fixed:binomial", 8, 1024, 2}};
}

/// Run the fixture sweep on a fresh pool, optionally streaming through
/// `sink`, and return the report JSON of the drained session (the bytes
/// --report=json would print).
std::string run_sweep(int threads, obs::LiveSink* sink) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  if (sink != nullptr) trace::Session::set_listener(sink);
  analyze::Report report;
  {
    harness::ScenarioPool pool(threads);
    if (sink != nullptr) pool.set_observer(sink);
    const std::vector<Case> cs = sweep_cases();
    pool.run_indexed(cs.size(), [&](std::size_t i) {
      trace::Scope scope(cs[i].label);
      run_ibcast(cs[i].nprocs, cs[i].bytes, cs[i].ops, /*seed=*/i + 1);
    });
  }
  trace::Session::set_listener(nullptr);
  std::vector<analyze::ScenarioTrace> traces;
  for (const trace::FinishedTrace& f : trace::Session::instance().drain()) {
    traces.push_back(analyze::from_finished(f));
  }
  report = analyze::analyze(traces);
  std::ostringstream json;
  analyze::write_json(json, report);
  if (sink != nullptr) sink->write_summary(report, json.str());
  return json.str();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::vector<std::string> lines;
  std::string l;
  while (std::getline(is, l)) lines.push_back(l);
  return lines;
}

/// One analyzed 2-rank ibcast fixture trace (the test_analyze golden
/// scenario), for the profile exporters.
analyze::Report fixture_report(int ops = 4) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  {
    trace::Scope scope("ibcast whale np2 1024B fixed:binomial");
    run_ibcast(2, 1024, ops);
  }
  std::vector<analyze::ScenarioTrace> traces;
  for (const trace::FinishedTrace& f : trace::Session::instance().drain()) {
    traces.push_back(analyze::from_finished(f));
  }
  return analyze::analyze(traces);
}

}  // namespace

// ------------------------------------------------------- stream schema

TEST(ObsLive, JsonlSchemaAndSeqMonotonicity) {
  const std::string path = ::testing::TempDir() + "obs_stream.jsonl";
  {
    obs::LiveSink sink(path, "test-sweep", 2);
    ASSERT_TRUE(sink.ok());
    run_sweep(2, &sink);
  }
  const std::vector<std::string> lines = read_lines(path);
  // hello + batch + 4 started + 4 finished + summary.
  ASSERT_EQ(lines.size(), 11u);
  long long prev_seq = -1;
  std::size_t scenarios_finished = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    jm::Value v;
    ASSERT_NO_THROW(v = jm::parse(lines[i])) << "line " << i;
    const jm::Value* seq = v.get("seq");
    ASSERT_NE(seq, nullptr);
    const long long s = static_cast<long long>(seq->as_num());
    EXPECT_GT(s, prev_seq) << "line " << i;
    prev_seq = s;
    const jm::Value* type = v.get("type");
    ASSERT_NE(type, nullptr);
    if (i == 0) {
      EXPECT_EQ(type->str, "hello");
      ASSERT_NE(v.get("schema"), nullptr);
      EXPECT_EQ(v.get("schema")->str, "nbctune-live-v1");
    }
    if (type->str == "scenario" && v.get("phase")->str == "finished") {
      ++scenarios_finished;
      for (const char* key : {"label", "ops", "mean_op_ns", "median_op_ns",
                              "blame_bp", "guidelines"}) {
        EXPECT_NE(v.get(key), nullptr) << key;
      }
      // Blame shares are basis points of a full partition.
      const jm::Value* blame = v.get("blame_bp");
      long long sum = 0;
      for (const char* k : {"compute", "progress", "wire", "late_sender",
                            "missing_progress", "other"}) {
        ASSERT_NE(blame->get(k), nullptr) << k;
        sum += static_cast<long long>(blame->get(k)->as_num());
      }
      EXPECT_NEAR(static_cast<double>(sum), 1e4, 3.0);
    }
    if (i + 1 == lines.size()) {
      EXPECT_EQ(type->str, "summary");
      EXPECT_EQ(v.get("status")->str, "ok");
      ASSERT_NE(v.get("report"), nullptr);
    }
  }
  EXPECT_EQ(scenarios_finished, sweep_cases().size());
}

TEST(ObsLive, SummaryByteIdenticalAcrossThreadCounts) {
  const std::string p1 = ::testing::TempDir() + "obs_t1.jsonl";
  const std::string p4 = ::testing::TempDir() + "obs_t4.jsonl";
  std::string direct1;
  std::string direct4;
  std::string embedded1;
  std::string embedded4;
  {
    obs::LiveSink sink(p1, "test-sweep", 1);
    direct1 = run_sweep(1, &sink);
  }
  {
    obs::LiveSink sink(p4, "test-sweep", 4);
    direct4 = run_sweep(4, &sink);
  }
  EXPECT_EQ(direct1, direct4);  // the analysis itself is order-stable
  const auto extract = [](const std::string& path) {
    std::string report;
    for (const std::string& line : read_lines(path)) {
      const jm::Value v = jm::parse(line);
      if (v.get("type")->str != "summary") continue;
      report = v.get("report")->str;  // jsonmin unescapes the embedding
    }
    return report;
  };
  embedded1 = extract(p1);
  embedded4 = extract(p4);
  // The embedded summary round-trips to the exact --report=json bytes.
  EXPECT_EQ(embedded1, direct1);
  EXPECT_EQ(embedded4, direct4);
  EXPECT_EQ(embedded1, embedded4);
}

TEST(ObsLive, FailedScenarioRecordKeepsSweepStreaming) {
  // Crash containment end to end: a throwing scenario body produces a
  // phase=failed record with the task index and error string, the rest
  // of the batch still streams its finished records, and only after the
  // drain does the pool rethrow to the driver.
  const std::string path = ::testing::TempDir() + "obs_failed.jsonl";
  {
    obs::LiveSink sink(path, "test-sweep", 2);
    ASSERT_TRUE(sink.ok());
    trace::Session::enable();
    (void)trace::Session::instance().drain();
    trace::Session::set_listener(&sink);
    harness::ScenarioPool pool(2);
    pool.set_observer(&sink);
    const std::vector<Case> cs = sweep_cases();
    EXPECT_THROW(
        pool.run_indexed(cs.size(),
                         [&](std::size_t i) {
                           if (i == 2) {
                             throw std::runtime_error("injected scenario bug");
                           }
                           trace::Scope scope(cs[i].label);
                           run_ibcast(cs[i].nprocs, cs[i].bytes, cs[i].ops,
                                      /*seed=*/i + 1);
                         }),
        std::runtime_error);
    trace::Session::set_listener(nullptr);
    (void)trace::Session::instance().drain();
    EXPECT_EQ(sink.totals().failed, 1u);
    EXPECT_EQ(sink.totals().finished, cs.size() - 1);
  }
  std::size_t failed_records = 0;
  std::size_t finished_records = 0;
  for (const std::string& line : read_lines(path)) {
    const jm::Value v = jm::parse(line);
    if (v.get("type")->str != "scenario") continue;
    const std::string phase = v.get("phase")->str;
    if (phase == "failed") {
      ++failed_records;
      ASSERT_NE(v.get("index"), nullptr);
      EXPECT_EQ(static_cast<long long>(v.get("index")->as_num()), 2);
      ASSERT_NE(v.get("error"), nullptr);
      EXPECT_EQ(v.get("error")->str, "injected scenario bug");
    } else if (phase == "finished") {
      ++finished_records;
    }
  }
  EXPECT_EQ(failed_records, 1u);
  EXPECT_EQ(finished_records, sweep_cases().size() - 1);
}

TEST(ObsLive, FinishedRecordCarriesRecoveryBlockUnderAKillPlan) {
  // A kill-plan scenario's finished record surfaces the RecoverySummary
  // so a watcher sees deaths and time-to-recover while the sweep runs.
  const std::string path = ::testing::TempDir() + "obs_recovery.jsonl";
  {
    obs::LiveSink sink(path, "test-sweep", 1);
    ASSERT_TRUE(sink.ok());
    trace::Session::enable();
    (void)trace::Session::instance().drain();
    trace::Session::set_listener(&sink);
    harness::MicroScenario s;
    s.platform = net::whale();
    s.nprocs = 16;
    s.op = harness::OpKind::Ialltoall;
    s.bytes = 64 * 1024;
    s.compute_per_iter = 2e-3;
    s.progress_calls = 3;
    s.iterations = 40;
    s.noise_scale = 0.0;
    s.seed = 42;
    s.fault_plan = "seed=31;kill=5@0.004;lease=2e-3";
    s.fault_plan_name = "kill1";
    adcl::TuningOptions opts;
    opts.policy = adcl::PolicyKind::BruteForce;
    opts.tests_per_function = 2;
    (void)harness::run_adcl(s, opts);
    trace::Session::set_listener(nullptr);
    (void)trace::Session::instance().drain();
  }
  bool saw_recovery = false;
  for (const std::string& line : read_lines(path)) {
    const jm::Value v = jm::parse(line);
    if (v.get("type")->str != "scenario" ||
        v.get("phase")->str != "finished") {
      continue;
    }
    const jm::Value* rec = v.get("recovery");
    ASSERT_NE(rec, nullptr);
    saw_recovery = true;
    EXPECT_EQ(static_cast<long long>(rec->get("deaths")->as_num()), 1);
    EXPECT_EQ(static_cast<long long>(rec->get("epochs")->as_num()), 1);
    EXPECT_GT(rec->get("rebuilds")->as_num(), 0.0);
    EXPECT_GT(rec->get("aborted_ops")->as_num(), 0.0);
    // Detection latency is the lease (2 ms) by construction.
    EXPECT_EQ(static_cast<long long>(rec->get("detection_ns")->as_num()),
              2000000);
    EXPECT_GT(rec->get("time_to_recover_ns")->as_num(), 2e6);
  }
  EXPECT_TRUE(saw_recovery);
}

TEST(ObsLive, EscapeRoundTripsThroughJsonMin) {
  const std::string nasty = "line1\nline2\t\"quoted\\path\"\r{json:1}";
  const std::string wrapped =
      "{\"s\":\"" + obs::LiveSink::escape_json(nasty) + "\"}";
  const jm::Value v = jm::parse(wrapped);
  ASSERT_NE(v.get("s"), nullptr);
  EXPECT_EQ(v.get("s")->str, nasty);
}

// ---------------------------------------------------- gauge arithmetic

TEST(ObsSampler, PoolAndSinkGaugeArithmetic) {
  const std::string path = ::testing::TempDir() + "obs_gauges.jsonl";
  obs::LiveSink sink(path, "test-sweep", 2);
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  trace::Session::set_listener(&sink);
  harness::ScenarioPool pool(2);
  pool.set_observer(&sink);
  const std::vector<Case> cs = sweep_cases();
  pool.run_indexed(cs.size(), [&](std::size_t i) {
    trace::Scope scope(cs[i].label);
    run_ibcast(cs[i].nprocs, cs[i].bytes, cs[i].ops, /*seed=*/i + 1);
  });
  trace::Session::set_listener(nullptr);

  const harness::PoolStats st = pool.stats();
  EXPECT_EQ(st.tasks_submitted, cs.size());
  EXPECT_EQ(st.tasks_completed, cs.size());
  EXPECT_EQ(st.inflight, 0u);
  EXPECT_EQ(st.queued, 0u);

  const obs::LiveSink::Totals tot = sink.totals();
  EXPECT_EQ(tot.submitted, cs.size());
  EXPECT_EQ(tot.started, cs.size());
  EXPECT_EQ(tot.finished, cs.size());
  EXPECT_EQ(tot.dropped, 0u);
  // Cross-check event/fiber totals against the drained traces.
  std::uint64_t events = 0;
  std::uint64_t fibers = 0;
  std::uint64_t arena_max = 0;
  for (const trace::FinishedTrace& f : trace::Session::instance().drain()) {
    events += f.events.size();
    fibers +=
        f.counts[static_cast<std::size_t>(trace::Ctr::SimFibersCreated)];
    arena_max = std::max(
        arena_max,
        f.counts[static_cast<std::size_t>(trace::Ctr::WorldPeakArenaBytes)]);
  }
  EXPECT_EQ(tot.events, events);
  EXPECT_EQ(tot.fibers, fibers);
  EXPECT_EQ(tot.peak_arena, arena_max);
  EXPECT_GT(tot.events, 0u);
  EXPECT_GT(tot.fibers, 0u);

  // A sample record carries the same numbers.
  sink.sample(st);
  const std::vector<std::string> lines = read_lines(path);
  const jm::Value v = jm::parse(lines.back());
  ASSERT_EQ(v.get("type")->str, "sample");
  EXPECT_EQ(v.get("pool")->get("submitted")->as_num(),
            static_cast<double>(cs.size()));
  EXPECT_EQ(v.get("trace")->get("events")->as_num(),
            static_cast<double>(events));
  EXPECT_EQ(v.get("exec")->get("fibers")->as_num(),
            static_cast<double>(fibers));
  EXPECT_GT(v.get("rss_bytes")->as_num(), 0.0);
}

TEST(ObsSampler, TicksPeriodicallyAndOnceOnStop) {
  std::atomic<int> ticks{0};
  {
    obs::Sampler s([&] { ticks.fetch_add(1); }, 5);
    ASSERT_TRUE(s.running());
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    s.stop();
    const int after_stop = ticks.load();
    EXPECT_GE(after_stop, 2);  // several periods plus the final tick
    s.stop();  // idempotent: no second final tick
    EXPECT_EQ(ticks.load(), after_stop);
  }
  const int final_count = ticks.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ticks.load(), final_count);  // thread really stopped
}

TEST(ObsSampler, ZeroPeriodStartsNothing) {
  std::atomic<int> ticks{0};
  obs::Sampler s([&] { ticks.fetch_add(1); }, 0);
  EXPECT_FALSE(s.running());
  s.stop();
  EXPECT_EQ(ticks.load(), 0);
}

// --------------------------------------------------- profile exporters

TEST(ObsProfile, CollapsedStacksMatchBlamePartition) {
  const analyze::Report report = fixture_report();
  ASSERT_EQ(report.scenarios.size(), 1u);
  const analyze::ScenarioReport& s = report.scenarios.front();
  ASSERT_FALSE(s.op_criticals.empty());

  std::ostringstream os;
  obs::write_collapsed(os, report);
  std::istringstream is(os.str());
  std::string line;
  long long folded_total = 0;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    // `frame;frame;frame;phase weight` — the weight is the last token,
    // frames are space-free.
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string stack = line.substr(0, sp);
    EXPECT_EQ(stack.find(' '), std::string::npos) << line;
    // rank;op;phase under the scenario frame.
    EXPECT_NE(stack.find(";rank:"), std::string::npos) << line;
    EXPECT_NE(stack.find(";op:"), std::string::npos) << line;
    const long long w = std::atoll(line.c_str() + sp + 1);
    EXPECT_GT(w, 0) << line;
    folded_total += w;
  }
  EXPECT_GT(lines, 0u);
  // Total folded weight == the llround'ed blame partition sum.
  long long expect_total = 0;
  for (const analyze::OpCritical& oc : s.op_criticals) {
    for (double c : {oc.blame.compute, oc.blame.progress, oc.blame.wire,
                     oc.blame.late_sender, oc.blame.missing_progress,
                     oc.blame.other}) {
      const long long w = static_cast<long long>(std::llround(c * 1e9));
      if (w > 0) expect_total += w;
    }
  }
  EXPECT_EQ(folded_total, expect_total);
  EXPECT_EQ(obs::profile_total_weight_ns(report), expect_total);
}

TEST(ObsProfile, SpeedscopeWeightsSumToBlamePartition) {
  const analyze::Report report = fixture_report();
  std::ostringstream os;
  obs::write_speedscope(os, report);
  const jm::Value v = jm::parse(os.str());
  ASSERT_NE(v.get("shared"), nullptr);
  ASSERT_NE(v.get("profiles"), nullptr);
  const jm::Value* profiles = v.get("profiles");
  ASSERT_EQ(profiles->arr->size(), 1u);
  const jm::Value& prof = profiles->arr->front();
  EXPECT_EQ(prof.get("type")->str, "sampled");
  EXPECT_EQ(prof.get("unit")->str, "nanoseconds");
  EXPECT_EQ(prof.get("name")->str, "ibcast whale np2 1024B fixed:binomial");
  const jm::Value* samples = prof.get("samples");
  const jm::Value* weights = prof.get("weights");
  ASSERT_EQ(samples->arr->size(), weights->arr->size());
  const std::size_t frames = v.get("shared")->get("frames")->arr->size();
  long long total = 0;
  for (std::size_t i = 0; i < weights->arr->size(); ++i) {
    total += static_cast<long long>((*weights->arr)[i].as_num());
    // Every stack is [rank, op, phase] into the shared frame table.
    ASSERT_EQ((*samples->arr)[i].arr->size(), 3u);
    for (const jm::Value& f : *(*samples->arr)[i].arr) {
      EXPECT_LT(f.as_num(), static_cast<double>(frames));
    }
  }
  EXPECT_EQ(total, obs::profile_total_weight_ns(report));
  EXPECT_EQ(static_cast<long long>(prof.get("endValue")->as_num()), total);
}

TEST(ObsProfile, OtlpSpansWhenBuiltIn) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  {
    trace::Scope scope("ibcast whale np2 1024B fixed:binomial");
    run_ibcast(2, 1024, 2);
  }
  std::vector<analyze::ScenarioTrace> traces;
  for (const trace::FinishedTrace& f : trace::Session::instance().drain()) {
    traces.push_back(analyze::from_finished(f));
  }
  std::ostringstream os;
  obs::write_otlp(os, traces);
  if (!obs::otlp_enabled()) {
    EXPECT_TRUE(os.str().empty());
    return;
  }
  const jm::Value v = jm::parse(os.str());
  const jm::Value* rs = v.get("resourceSpans");
  ASSERT_NE(rs, nullptr);
  const jm::Value* scopes = rs->arr->front().get("scopeSpans");
  ASSERT_EQ(scopes->arr->size(), traces.size());
  std::size_t expected_spans = 0;
  for (const analyze::AEvent& e : traces.front().events) {
    if (e.is_span()) ++expected_spans;
  }
  const jm::Value* spans = scopes->arr->front().get("spans");
  EXPECT_EQ(spans->arr->size(), expected_spans);
  const jm::Value& first = spans->arr->front();
  EXPECT_EQ(first.get("traceId")->str.size(), 32u);
  EXPECT_EQ(first.get("spanId")->str.size(), 16u);
  ASSERT_NE(first.get("attributes"), nullptr);
}

// -------------------------------------------------------- event bounds

TEST(ObsTrace, EventCapDropsAndCounts) {
  ::setenv("NBCTUNE_TRACE_MAX_EVENTS", "50", 1);
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  {
    trace::Scope scope("ibcast whale np4 4096B fixed:binomial");
    run_ibcast(4, 4096, 4);
  }
  ::unsetenv("NBCTUNE_TRACE_MAX_EVENTS");
  auto finished = trace::Session::instance().drain();
  ASSERT_EQ(finished.size(), 1u);
  const trace::FinishedTrace& f = finished.front();
  EXPECT_EQ(f.events.size(), 50u);
  const std::uint64_t dropped =
      f.counts[static_cast<std::size_t>(trace::Ctr::TraceDroppedEvents)];
  EXPECT_GT(dropped, 0u);

  // The analyzer reports the truncation.
  std::vector<analyze::ScenarioTrace> traces;
  traces.push_back(analyze::from_finished(f));
  EXPECT_EQ(traces.front().counters.at("trace.dropped_events"), dropped);
  const analyze::Report report = analyze::analyze(traces);
  EXPECT_EQ(report.scenarios.front().dropped_events, dropped);
  EXPECT_TRUE(report.scenarios.front().truncated());
  std::ostringstream json;
  analyze::write_json(json, report);
  EXPECT_NE(json.str().find("\"trace\":{\"dropped_events\":"),
            std::string::npos);
  EXPECT_NE(json.str().find("\"truncated\":true"), std::string::npos);
  std::ostringstream table;
  analyze::write_table(table, report);
  EXPECT_NE(table.str().find("TRUNCATED"), std::string::npos);
}

TEST(ObsTrace, UncappedTraceStaysUnflagged) {
  const analyze::Report report = fixture_report(1);
  EXPECT_FALSE(report.scenarios.front().truncated());
  std::ostringstream json;
  analyze::write_json(json, report);
  EXPECT_EQ(json.str().find("dropped_events"), std::string::npos);
}

// ------------------------------------------------------------ abort

TEST(ObsLive, AbortFromSignalFinalizesStream) {
  const std::string path = ::testing::TempDir() + "obs_abort.jsonl";
  obs::LiveSink sink(path, "test-sweep", 1);
  ASSERT_TRUE(sink.ok());
  sink.on_scope_start("ibcast whale np2 1024B fixed:binomial");
  obs::LiveSink::install_signal_target(&sink);
  obs::LiveSink::abort_from_signal();   // what the SIGINT handler runs
  obs::LiveSink::abort_from_signal();   // second delivery: no-op
  sink.on_scope_start("ignored");       // post-finalize writes dropped
  obs::LiveSink::install_signal_target(nullptr);
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);  // hello, started, aborted summary
  const jm::Value v = jm::parse(lines.back());
  EXPECT_EQ(v.get("type")->str, "summary");
  EXPECT_EQ(v.get("status")->str, "aborted");
  ASSERT_NE(v.get("scenarios_finished"), nullptr);
}

// ----------------------------------------------------------- nbctune-top

TEST(ObsTop, FeedsStreamAndSkipsForeignLines) {
  obs::TopState top;
  EXPECT_FALSE(top.feed_line(""));
  EXPECT_FALSE(top.feed_line("== some bench table =="));
  EXPECT_FALSE(top.feed_line("{not json at all"));
  EXPECT_TRUE(top.feed_line(
      R"({"seq":0,"t_ms":0,"type":"hello","schema":"nbctune-live-v1","bench":"fig3","threads":2})"));
  EXPECT_TRUE(top.feed_line(
      R"({"seq":1,"t_ms":1,"type":"batch","tasks":4,"total_submitted":4})"));
  EXPECT_TRUE(top.feed_line(
      R"({"seq":2,"t_ms":2,"type":"scenario","phase":"started","label":"ibcast whale np2 1024B fixed:binomial"})"));
  EXPECT_TRUE(top.feed_line(
      R"({"seq":3,"t_ms":500,"type":"scenario","phase":"finished","label":"ibcast whale np2 1024B fixed:binomial","ops":3,"ops_started":3,"mean_op_ns":1000,"median_op_ns":900,"op_ci_lo_ns":800,"op_ci_hi_ns":1100,"min_reps_met":false,"blame_bp":{"compute":5000,"progress":1000,"wire":2000,"late_sender":1500,"missing_progress":0,"other":500},"guidelines":{"checked":1,"passed":1,"status":"pass","ids":["G1=pass","G2=n/a"]}})"));
  EXPECT_TRUE(top.feed_line(
      R"({"seq":4,"t_ms":600,"type":"sample","pool":{"submitted":4,"completed":1,"steals":0,"queued":2,"inflight":1},"scenarios":{"started":2,"finished":1},"trace":{"events":100,"dropped":0},"exec":{"fibers":4,"peak_arena_bytes":4096},"rss_bytes":1048576})"));

  EXPECT_EQ(top.bench(), "fig3");
  EXPECT_EQ(top.submitted(), 4u);
  EXPECT_EQ(top.started(), 1u);
  EXPECT_EQ(top.finished(), 1u);
  EXPECT_FALSE(top.done());
  EXPECT_EQ(top.eta_ms(), 1800);  // 600 ms elapsed / 1 finished * 3 left
  ASSERT_EQ(top.ops().count("ibcast"), 1u);
  EXPECT_EQ(top.ops().at("ibcast").scenarios, 1u);
  EXPECT_EQ(top.ops().at("ibcast").median_sum_ns, 900);
  EXPECT_EQ(top.guidelines().at("G1"), "pass");
  EXPECT_EQ(top.guidelines().at("G2"), "n/a");
  EXPECT_EQ(top.gauges().pool_queued, 2u);
  EXPECT_EQ(top.gauges().rss_bytes, 1048576u);

  // FAIL is sticky over a later pass.
  EXPECT_TRUE(top.feed_line(
      R"({"seq":5,"t_ms":700,"type":"scenario","phase":"finished","label":"ibcast whale np4 1024B fixed:binomial","ops":1,"median_op_ns":1,"blame_bp":{"compute":10000,"progress":0,"wire":0,"late_sender":0,"missing_progress":0,"other":0},"guidelines":{"checked":1,"passed":0,"status":"FAIL","ids":["G1=FAIL"]}})"));
  EXPECT_TRUE(top.feed_line(
      R"({"seq":6,"t_ms":800,"type":"scenario","phase":"finished","label":"ibcast whale np8 1024B fixed:binomial","ops":1,"median_op_ns":1,"blame_bp":{"compute":10000,"progress":0,"wire":0,"late_sender":0,"missing_progress":0,"other":0},"guidelines":{"checked":1,"passed":1,"status":"pass","ids":["G1=pass"]}})"));
  EXPECT_EQ(top.guidelines().at("G1"), "FAIL");

  EXPECT_TRUE(top.feed_line(
      R"({"seq":7,"t_ms":900,"type":"summary","status":"ok","scenarios":4,"report":"{}"})"));
  EXPECT_TRUE(top.done());
  EXPECT_EQ(top.status(), "ok");
  EXPECT_EQ(top.eta_ms(), -1);

  std::ostringstream plain;
  top.render(plain, /*ansi=*/false);
  EXPECT_NE(plain.str().find("nbctune-top"), std::string::npos);
  EXPECT_NE(plain.str().find("fig3"), std::string::npos);
  EXPECT_NE(plain.str().find("[G1:FAIL]"), std::string::npos);
  EXPECT_EQ(plain.str().find("\x1b["), std::string::npos);
  std::ostringstream ansi;
  top.render(ansi, /*ansi=*/true);
  EXPECT_NE(ansi.str().find("\x1b["), std::string::npos);
}

TEST(ObsTop, AggregatesFailuresAndRecovery) {
  obs::TopState top;
  EXPECT_TRUE(top.feed_line(
      R"({"seq":0,"t_ms":0,"type":"hello","schema":"nbctune-live-v1","bench":"failure_sweep","threads":2})"));
  EXPECT_TRUE(top.feed_line(
      R"({"seq":1,"t_ms":1,"type":"scenario","phase":"failed","index":3,"error":"scenario 3 blew up"})"));
  EXPECT_TRUE(top.feed_line(
      R"({"seq":2,"t_ms":2,"type":"scenario","phase":"finished","label":"ialltoall whale np16 65536B adcl:brute-force+plan=kill1","ops":600,"median_op_ns":1000,"blame_bp":{"compute":10000,"progress":0,"wire":0,"late_sender":0,"missing_progress":0,"other":0},"recovery":{"deaths":1,"epochs":1,"rebuilds":15,"aborted_ops":16,"detection_ns":2000000,"time_to_recover_ns":2676572}})"));
  EXPECT_TRUE(top.feed_line(
      R"({"seq":3,"t_ms":3,"type":"scenario","phase":"finished","label":"ialltoall whale np16 65536B adcl:brute-force+plan=cascade","ops":576,"median_op_ns":1000,"blame_bp":{"compute":10000,"progress":0,"wire":0,"late_sender":0,"missing_progress":0,"other":0},"recovery":{"deaths":2,"epochs":2,"rebuilds":30,"aborted_ops":17,"detection_ns":2000000,"time_to_recover_ns":2355454}})"));

  EXPECT_EQ(top.failed(), 1u);
  ASSERT_EQ(top.failures().size(), 1u);
  EXPECT_EQ(top.failures()[0], "task 3: scenario 3 blew up");
  EXPECT_EQ(top.recovery().scenarios, 2u);
  EXPECT_EQ(top.recovery().deaths, 3u);
  EXPECT_EQ(top.recovery().epochs, 3u);
  EXPECT_EQ(top.recovery().rebuilds, 45u);
  EXPECT_EQ(top.recovery().aborted_ops, 33u);
  EXPECT_EQ(top.recovery().detection_sum_ns, 4000000);
  EXPECT_EQ(top.recovery().ttr_sum_ns, 5032026);

  std::ostringstream plain;
  top.render(plain, /*ansi=*/false);
  EXPECT_NE(plain.str().find("CRASHED"), std::string::npos);
  EXPECT_NE(plain.str().find("task 3: scenario 3 blew up"), std::string::npos);
  EXPECT_NE(plain.str().find("recovery"), std::string::npos);
  EXPECT_NE(plain.str().find("deaths 3"), std::string::npos);
}

TEST(ObsTop, CountsOutOfOrderSeq) {
  obs::TopState top;
  EXPECT_TRUE(top.feed_line(R"({"seq":5,"t_ms":0,"type":"hello"})"));
  EXPECT_TRUE(top.feed_line(R"({"seq":3,"t_ms":0,"type":"batch","tasks":1})"));
  EXPECT_EQ(top.seq_errors(), 1u);
}
