#include "mpi/ft.hpp"

#include <algorithm>
#include <utility>

#include "mpi/world.hpp"
#include "trace/trace.hpp"

namespace nbctune::mpi {

RecoveryService::RecoveryService(World& world, const fault::FaultPlan& plan)
    : world_(world),
      lease_(plan.lease),
      kills_(plan.kills),
      detectable_dead_(static_cast<std::size_t>(world.size()), 0),
      arrivals_(static_cast<std::size_t>(world.size())) {}

void RecoveryService::start() {
  for (const fault::Kill& k : kills_) {
    if (k.rank < 0 || k.rank >= world_.size()) continue;
    world_.engine_.schedule_at(k.t, [this, r = k.rank] { on_kill(r); });
  }
}

void RecoveryService::on_kill(int wrank) {
  detail::RankState& rs = world_.ranks_[static_cast<std::size_t>(wrank)];
  if (rs.dead) return;  // duplicate kill entries coalesce
  rs.dead = true;
  trace::count(trace::Ctr::MpiRankDeaths);
  if (trace::active()) {
    trace::instant(world_.engine_.now(), wrank, trace::Cat::Msg,
                   "mpi.rank_death", "node",
                   static_cast<std::uint64_t>(rs.node));
  }
  // Wake the dying fiber so it unwinds promptly (RankKilled at its next
  // blocking check); wake() is a no-op for already-finished processes.
  if (rs.process != nullptr) rs.process->wake();
  world_.engine_.schedule_after(lease_, [this, wrank] { on_detect(wrank); });
}

void RecoveryService::on_detect(int wrank) {
  detectable_dead_[static_cast<std::size_t>(wrank)] = 1;
  ++detectable_;
  if (trace::active()) {
    trace::instant(world_.engine_.now(), wrank, trace::Cat::Msg,
                   "mpi.ft.detect", "lease_ns",
                   static_cast<std::uint64_t>(lease_ * 1e9));
  }
  // Every survivor blocked in the library re-evaluates its interruption
  // check; running/sleeping ranks check at their next blocking call.
  for (int r = 0; r < world_.size(); ++r) {
    detail::RankState& rs = world_.ranks_[static_cast<std::size_t>(r)];
    if (!rs.dead && rs.process != nullptr) rs.process->wake();
  }
  maybe_complete();
}

int RecoveryService::arrive(int wrank, int iteration, bool finished) {
  Arrival& a = arrivals_[static_cast<std::size_t>(wrank)];
  a.arrived = true;
  a.finished = finished;
  a.iteration = iteration;
  const int target = epoch_ + 1;
  maybe_complete();
  return target;
}

void RecoveryService::maybe_complete() {
  if (decision_pending_) return;
  std::vector<int> survivors;
  for (int r = 0; r < world_.size(); ++r) {
    const std::size_t i = static_cast<std::size_t>(r);
    if (world_.ranks_[i].dead) {
      // An undetectable death still blocks completion (its lease event
      // re-runs this check), so a decision can never race detection.
      if (!detectable_dead_[i]) return;
      continue;
    }
    if (!arrivals_[i].arrived) return;
    survivors.push_back(r);
  }
  if (survivors.empty()) return;  // nobody left to deliver to

  FtDecision d;
  d.epoch = epoch_ + 1;
  for (int r = 0; r < world_.size(); ++r) {
    if (detectable_dead_[static_cast<std::size_t>(r)]) d.failed.push_back(r);
  }
  d.all_finished = true;
  d.resume_iteration = kFinishedIteration;
  for (int r : survivors) {
    const Arrival& a = arrivals_[static_cast<std::size_t>(r)];
    if (!a.finished) {
      d.all_finished = false;
      d.resume_iteration = std::min(d.resume_iteration, a.iteration);
    }
  }
  if (d.all_finished) d.resume_iteration = 0;
  d.comm = world_.shrink(survivors, d.epoch);
  pending_ = std::move(d);
  pending_detectable_ = detectable_;
  decision_pending_ = true;
  // Modeled agreement cost: a binomial broadcast of the decision over
  // the survivors on the reliable plane.
  int hops = 0;
  for (std::size_t n = 1; n < survivors.size(); n <<= 1) ++hops;
  const double delta =
      static_cast<double>(hops) * world_.platform().inter.latency;
  world_.engine_.schedule_after(delta, [this] { deliver(); });
}

void RecoveryService::deliver() {
  epoch_ = pending_.epoch;
  decision_ = pending_;
  decision_detectable_ = pending_detectable_;
  decision_pending_ = false;
  for (Arrival& a : arrivals_) a = Arrival{};
  const Comm& c = decision_.comm;
  // The failed set is cumulative across epochs; membership only shrank
  // when this round added deaths (the termination agreement after a
  // recovery reuses the same failed set and is not a shrink).
  if (decision_.failed.size() > delivered_failed_) {
    delivered_failed_ = decision_.failed.size();
    trace::count(trace::Ctr::MpiShrinks);
  }
  if (trace::active()) {
    trace::instant(world_.engine_.now(), c.world_rank(0), trace::Cat::Msg,
                   "mpi.ft.agree", "epoch",
                   static_cast<std::uint64_t>(decision_.epoch), "failed",
                   static_cast<std::uint64_t>(decision_.failed.size()));
  }
  for (int i = 0; i < c.size(); ++i) {
    detail::RankState& rs =
        world_.ranks_[static_cast<std::size_t>(c.world_rank(i))];
    if (rs.process != nullptr) rs.process->wake();
  }
}

}  // namespace nbctune::mpi
