// Infrastructure units introduced for the hot paths: the small-buffer
// event callable (InlineFn), the chunked request pool, and the engine's
// slot-recycling event slab.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mpi/request.hpp"
#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"

using namespace nbctune;

// --------------------------------------------------------------- InlineFn

TEST(InlineFn, InvokesCapturedState) {
  int hits = 0;
  sim::InlineFn f([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, DefaultIsEmpty) {
  sim::InlineFn f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFn, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  sim::InlineFn a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  sim::InlineFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(counter.use_count(), 2);   // exactly one live copy
  b();
  EXPECT_EQ(*counter, 1);
}

TEST(InlineFn, DestructorReleasesCapture) {
  auto token = std::make_shared<int>(7);
  {
    sim::InlineFn f([token] {});
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFn, MoveAssignReplacesAndReleases) {
  auto a_tok = std::make_shared<int>(1);
  auto b_tok = std::make_shared<int>(2);
  sim::InlineFn a([a_tok] {});
  sim::InlineFn b([b_tok] {});
  a = std::move(b);
  EXPECT_EQ(a_tok.use_count(), 1);  // old capture destroyed
  EXPECT_EQ(b_tok.use_count(), 2);  // moved capture alive in a
}

TEST(InlineFn, NearCapacityCapture) {
  struct Big {
    std::uint64_t words[6];  // 48 bytes: exactly at the limit
  };
  Big big{{1, 2, 3, 4, 5, 6}};
  std::uint64_t sum = 0;
  // Capture by value (48 bytes) plus nothing else would overflow with the
  // sum pointer, so capture a packed struct of pointer + data.
  struct Cap {
    std::uint64_t words[5];
    std::uint64_t* out;
  } cap{{big.words[0], big.words[1], big.words[2], big.words[3],
         big.words[4]},
        &sum};
  sim::InlineFn f([cap] {
    for (auto w : cap.words) *cap.out += w;
  });
  f();
  EXPECT_EQ(sum, 15u);
}

// ------------------------------------------------------------ RequestPool

TEST(RequestPool, AllocateReleaseReuse) {
  mpi::RequestPool pool;
  mpi::Req a = pool.allocate();
  mpi::Req b = pool.allocate();
  EXPECT_NE(a.index, b.index);
  EXPECT_TRUE(pool.live(a));
  EXPECT_EQ(pool.live_count(), 2u);
  pool.release(a);
  EXPECT_FALSE(pool.live(a));
  EXPECT_EQ(pool.live_count(), 1u);
  mpi::Req c = pool.allocate();  // slot reuse
  EXPECT_EQ(c.index, a.index);
  EXPECT_NE(c.generation, a.generation);
  EXPECT_THROW(pool.get(a), std::out_of_range);  // stale handle detected
  EXPECT_NO_THROW(pool.get(c));
}

TEST(RequestPool, PointersStableAcrossGrowth) {
  mpi::RequestPool pool;
  mpi::Req first = pool.allocate();
  mpi::Request* p = pool.ptr(first);
  p->tag = 4242;
  // Grow past several chunks.
  std::vector<mpi::Req> keep;
  for (int i = 0; i < 5000; ++i) keep.push_back(pool.allocate());
  EXPECT_EQ(pool.ptr(first), p);
  EXPECT_EQ(p->tag, 4242);
  EXPECT_EQ(pool.live_count(), 5001u);
}

TEST(RequestPool, NullHandleRejected) {
  mpi::RequestPool pool;
  EXPECT_THROW(pool.get(mpi::Req{}), std::out_of_range);
  EXPECT_FALSE(pool.live(mpi::Req{}));
  EXPECT_THROW(pool.get(mpi::Req{12345, 99}), std::out_of_range);
}

// ------------------------------------------------------------ Event slab

TEST(EngineSlab, SlotsRecycleWithoutLeaks) {
  // Schedule and run many more events than ever coexist: the slab must
  // recycle slots (observable indirectly: captured shared_ptrs die).
  auto token = std::make_shared<int>(0);
  sim::Engine eng;
  for (int wave = 0; wave < 100; ++wave) {
    eng.schedule_at(wave, [token] { ++*token; });
  }
  EXPECT_EQ(token.use_count(), 101);
  eng.run();
  EXPECT_EQ(*token, 100);
  EXPECT_EQ(token.use_count(), 1);  // all callbacks destroyed after firing
}

TEST(EngineSlab, CancelledEventReleasesCapture) {
  auto token = std::make_shared<int>(0);
  sim::Engine eng;
  auto id = eng.schedule_at(1.0, [token] { ++*token; });
  eng.cancel(id);
  eng.schedule_at(2.0, [] {});
  eng.run();
  EXPECT_EQ(*token, 0);
  EXPECT_EQ(token.use_count(), 1);
}
