#include "coll/ineighbor.hpp"

#include <stdexcept>

namespace nbctune::coll {

std::vector<int> cart_coords(const CartTopo& topo, int rank) {
  std::vector<int> coords(topo.dims.size());
  for (int d = topo.ndims() - 1; d >= 0; --d) {
    coords[d] = rank % topo.dims[d];
    rank /= topo.dims[d];
  }
  return coords;
}

int cart_rank(const CartTopo& topo, const std::vector<int>& coords) {
  if (static_cast<int>(coords.size()) != topo.ndims()) {
    throw std::invalid_argument("cart_rank: wrong dimensionality");
  }
  int rank = 0;
  for (int d = 0; d < topo.ndims(); ++d) {
    if (coords[d] < 0 || coords[d] >= topo.dims[d]) {
      throw std::invalid_argument("cart_rank: coordinate out of range");
    }
    rank = rank * topo.dims[d] + coords[d];
  }
  return rank;
}

int cart_neighbor(const CartTopo& topo, int rank, int dim, int disp) {
  if (dim < 0 || dim >= topo.ndims()) {
    throw std::invalid_argument("cart_neighbor: bad dimension");
  }
  std::vector<int> coords = cart_coords(topo, rank);
  int c = coords[dim] + disp;
  if (topo.periodic) {
    c = (c % topo.dims[dim] + topo.dims[dim]) % topo.dims[dim];
  } else if (c < 0 || c >= topo.dims[dim]) {
    return -1;
  }
  coords[dim] = c;
  return cart_rank(topo, coords);
}

namespace {

const std::byte* blk(const void* base, std::size_t block, int i) {
  if (base == nullptr) return nullptr;
  return static_cast<const std::byte*>(base) + std::size_t(i) * block;
}
std::byte* blk(void* base, std::size_t block, int i) {
  if (base == nullptr) return nullptr;
  return static_cast<std::byte*>(base) + std::size_t(i) * block;
}

struct Dir {
  int neighbor;  // communicator rank, or -1
  int slot;      // block index in sbuf/rbuf
};

Dir dir_of(const CartTopo& topo, int me, int dim, int disp) {
  return Dir{cart_neighbor(topo, me, dim, disp),
             2 * dim + (disp > 0 ? 1 : 0)};
}

}  // namespace

namespace {
// Per-dimension posting convention: both receives first (low slot, high
// slot), then both sends (high face, low face).  The asymmetric send
// order matters when a periodic dimension has size 2 and both faces
// connect to the SAME peer: tag-order matching then pairs my high-face
// message with the peer's low-slot receive, which is the correct halo.
void post_dim(nbc::Schedule& s, const CartTopo& topo, int me, int dim,
              const void* sbuf, void* rbuf, std::size_t block) {
  const Dir lo = dir_of(topo, me, dim, -1);
  const Dir hi = dir_of(topo, me, dim, +1);
  if (lo.neighbor >= 0) s.recv(blk(rbuf, block, lo.slot), block, lo.neighbor);
  if (hi.neighbor >= 0) s.recv(blk(rbuf, block, hi.slot), block, hi.neighbor);
  if (hi.neighbor >= 0) s.send(blk(sbuf, block, hi.slot), block, hi.neighbor);
  if (lo.neighbor >= 0) s.send(blk(sbuf, block, lo.slot), block, lo.neighbor);
}
}  // namespace

nbc::Schedule build_ineighbor_all_at_once(const CartTopo& topo, int me,
                                          const void* sbuf, void* rbuf,
                                          std::size_t block) {
  nbc::Schedule s;
  for (int dim = 0; dim < topo.ndims(); ++dim) {
    post_dim(s, topo, me, dim, sbuf, rbuf, block);
  }
  s.finalize();
  nbc::trace_built(s, "ineighbor.all_at_once", me);
  return s;
}

nbc::Schedule build_ineighbor_dimension_ordered(const CartTopo& topo, int me,
                                                const void* sbuf, void* rbuf,
                                                std::size_t block) {
  nbc::Schedule s;
  for (int dim = 0; dim < topo.ndims(); ++dim) {
    post_dim(s, topo, me, dim, sbuf, rbuf, block);
    s.barrier();  // finish this dimension before starting the next
  }
  s.finalize();
  nbc::trace_built(s, "ineighbor.dimension_ordered", me);
  return s;
}

nbc::Schedule build_ineighbor_even_odd(const CartTopo& topo, int me,
                                       const void* sbuf, void* rbuf,
                                       std::size_t block) {
  nbc::Schedule s;
  const std::vector<int> coords = cart_coords(topo, me);
  for (int dim = 0; dim < topo.ndims(); ++dim) {
    if (topo.dims[dim] == 1) {
      // Degenerate periodic dimension: both neighbours are myself, the
      // even/odd pairing is meaningless — use the plain convention.
      post_dim(s, topo, me, dim, sbuf, rbuf, block);
      s.barrier();
      continue;
    }
    const bool even = coords[dim] % 2 == 0;
    // Two paired phases per dimension: evens exchange with their high
    // neighbour first, then with their low neighbour.
    for (int phase = 0; phase < 2; ++phase) {
      const int disp = (phase == 0) == even ? +1 : -1;
      const Dir d = dir_of(topo, me, dim, disp);
      if (d.neighbor >= 0) {
        s.recv(blk(rbuf, block, d.slot), block, d.neighbor);
        s.send(blk(sbuf, block, d.slot), block, d.neighbor);
      }
      s.barrier();
    }
  }
  s.finalize();
  nbc::trace_built(s, "ineighbor.even_odd", me);
  return s;
}

}  // namespace nbctune::coll
