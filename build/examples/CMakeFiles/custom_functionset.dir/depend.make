# Empty dependencies file for custom_functionset.
# This may be replaced when dependencies are built.
