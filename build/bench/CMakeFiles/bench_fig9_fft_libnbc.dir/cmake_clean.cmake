file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_fft_libnbc.dir/bench_fig9_fft_libnbc.cpp.o"
  "CMakeFiles/bench_fig9_fft_libnbc.dir/bench_fig9_fft_libnbc.cpp.o.d"
  "bench_fig9_fft_libnbc"
  "bench_fig9_fft_libnbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_fft_libnbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
