#pragma once

// Offline ingestion: reconstruct analyzer-IR scenario traces from the
// Chrome trace-event JSON written by trace::Session::write_chrome, and
// parse the flat counter dump written by write_counters.  This is what
// lets tools/nbctune-analyze replay a bench run without re-simulating.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"

namespace nbctune::analyze {

/// Parse an exported Chrome trace: one ScenarioTrace per pid, labelled
/// from the process_name metadata, ordered by pid (= export order).
/// Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<ScenarioTrace> read_chrome(std::istream& is);

/// Parse a flat counter dump ("counter <name> <value>" lines) into a
/// name -> value map; histogram lines are folded in as
/// "<name>.count" / "<name>.sum".  Unknown lines are ignored.
[[nodiscard]] std::map<std::string, std::uint64_t> read_counters(
    std::istream& is);

}  // namespace nbctune::analyze
