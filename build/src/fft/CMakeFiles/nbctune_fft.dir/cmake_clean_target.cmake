file(REMOVE_RECURSE
  "libnbctune_fft.a"
)
