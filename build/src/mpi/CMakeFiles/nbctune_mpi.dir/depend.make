# Empty dependencies file for nbctune_mpi.
# This may be replaced when dependencies are built.
