// Figure 5: influence of the process count — Ialltoall on whale with 1 KB
// messages, 1 ms compute/iteration (10 s over 10000 iterations) and 100
// progress calls, for 32 vs 128 processes.
//
// Expected shape (paper §IV-A-c): the flood algorithms (linear, pairwise)
// and the dissemination algorithm trade places as the process count
// changes; at 128 processes dissemination's aggregated (now rendezvous-
// sized) messages lose to the flood algorithms.  NOTE (EXPERIMENTS.md):
// at 32 processes all three implementations land within a few percent in
// our model; the paper's clearer margin at 32 does not fully reproduce.

#include "bench_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::harness;

int main(int argc, char** argv) {
  bench::Driver drv("fig5", argc, argv);
  for (int nprocs : {32, 128}) {
    MicroScenario s;
    s.platform = net::whale();
    s.nprocs = nprocs;
    s.op = OpKind::Ialltoall;
    s.bytes = 1024;
    s.compute_per_iter = 1e-3;
    s.progress_calls = 100;
    s.iterations = drv.full() ? 40 : 12;
    s.noise_scale = 0.0;  // systematic comparison: noise off
    bench::print_fixed_comparison(
        "Fig 5: process-count influence — whale, 1 KB, " +
            std::to_string(nprocs) + " procs",
        s, drv.pool());
  }
  return 0;
}
