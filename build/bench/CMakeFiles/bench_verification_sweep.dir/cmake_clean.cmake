file(REMOVE_RECURSE
  "CMakeFiles/bench_verification_sweep.dir/bench_verification_sweep.cpp.o"
  "CMakeFiles/bench_verification_sweep.dir/bench_verification_sweep.cpp.o.d"
  "bench_verification_sweep"
  "bench_verification_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verification_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
