file(REMOVE_RECURSE
  "CMakeFiles/test_nbc.dir/test_nbc.cpp.o"
  "CMakeFiles/test_nbc.dir/test_nbc.cpp.o.d"
  "test_nbc"
  "test_nbc.pdb"
  "test_nbc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
