# Empty compiler generated dependencies file for allreduce_overlap.
# This may be replaced when dependencies are built.
