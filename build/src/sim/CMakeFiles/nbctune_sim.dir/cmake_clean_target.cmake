file(REMOVE_RECURSE
  "libnbctune_sim.a"
)
