file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_fft_extended.dir/bench_fig11_fft_extended.cpp.o"
  "CMakeFiles/bench_fig11_fft_extended.dir/bench_fig11_fft_extended.cpp.o.d"
  "bench_fig11_fft_extended"
  "bench_fig11_fft_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_fft_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
