#pragma once

// A Machine instantiates a Platform: it owns the contended resources
// (per-NIC transmit/receive engines, per-node memory ports) and answers
// topology queries (latency between nodes, NIC selection).

#include <vector>

#include "net/platform.hpp"
#include "net/topology.hpp"
#include "sim/resource.hpp"

namespace nbctune::net {

/// Instantiated cluster: platform parameters plus live resource state.
class Machine {
 public:
  explicit Machine(Platform platform);

  [[nodiscard]] const Platform& platform() const noexcept { return platform_; }
  [[nodiscard]] int nodes() const noexcept { return platform_.nodes; }
  /// The socket/node/rack hierarchy and rail/striping planner.
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }

  /// Transmit-side engine of NIC `nic` on `node` (FIFO serialization of
  /// outgoing transfers).
  sim::Resource& nic_tx(int node, int nic);
  /// Receive-side engine (incast serialization).
  sim::Resource& nic_rx(int node, int nic);
  /// Node memory port, contended by shared-memory copies.
  sim::Resource& mem(int node);

  // Traced reservations: identical to reserve() on the raw resource, but
  // emit a wire-track span (and, for the injecting side, byte counters)
  // when tracing is active.  `what` must be a string literal; `corr`
  // parents the span under its message's causal chain (0 = unlinked).
  sim::Resource::Slot reserve_tx(int node, int nic, double earliest,
                                 double seconds, const char* what,
                                 std::uint64_t bytes, std::uint64_t corr = 0);
  sim::Resource::Slot reserve_rx(int node, int nic, double earliest,
                                 double seconds, const char* what,
                                 std::uint64_t bytes, std::uint64_t corr = 0);
  sim::Resource::Slot reserve_mem(int node, double earliest, double seconds,
                                  const char* what, std::uint64_t bytes,
                                  std::uint64_t corr = 0);

  /// Which NIC a message from `node` to remote `peer_node` uses; stripes
  /// across HCAs by peer so multi-rail platforms (crill) spread load while
  /// preserving per-peer ordering.
  [[nodiscard]] int nic_for(int node, int peer_node) const noexcept;

  /// One-way header latency between two nodes, including per-hop torus
  /// latency on torus platforms and the cross-rack premium on racked
  /// platforms.  `node_a == node_b` gives the intra-node (shared-memory)
  /// latency.
  [[nodiscard]] double latency(int node_a, int node_b) const noexcept;

  /// Hop count between nodes on the torus (0 when not a torus or same node).
  [[nodiscard]] int torus_hops(int node_a, int node_b) const noexcept;

  // ---- congestion model ----
  /// Count a data message in flight towards `node` (call at injection;
  /// pair with remove_inflight at arrival).
  void add_inflight(int node) { ++inflight_.at(node); }
  void remove_inflight(int node) { --inflight_.at(node); }
  [[nodiscard]] int inflight(int node) const { return inflight_.at(node); }

  /// Service-time multiplier for a message arriving at `node` right now:
  /// 1 + coef * max(0, inflight - free), with the inter-node (incast) or
  /// intra-node (memory thrashing) knobs.
  [[nodiscard]] double congestion_factor(int node, bool intra) const {
    const double coef =
        intra ? platform_.mem_congest_coef : platform_.congest_coef;
    const int free = intra ? platform_.mem_congest_free
                           : platform_.congest_free;
    const double cap =
        intra ? platform_.mem_congest_cap : platform_.congest_cap;
    const int over = inflight_.at(node) - free;
    const double f = over > 0 ? 1.0 + coef * over : 1.0;
    return f < cap ? f : cap;
  }

  /// Reset all resource bookings (between experiment repetitions).
  void reset();

 private:
  Platform platform_;
  Topology topology_{platform_};
  std::vector<int> inflight_;
  // [node][nic]
  std::vector<std::vector<sim::Resource>> tx_;
  std::vector<std::vector<sim::Resource>> rx_;
  std::vector<sim::Resource> mem_;
};

}  // namespace nbctune::net
