file(REMOVE_RECURSE
  "libnbctune_mpi.a"
)
