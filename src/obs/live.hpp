#pragma once

// Live sweep telemetry (`nbctune::obs`): a streaming JSONL sink that a
// bench driver attaches to the trace session and the scenario pool.
//
// Motivation: a paper-scale sweep (hundreds of scenarios, minutes of
// wall clock) was previously a black box until the terminal report.  The
// LiveSink emits one JSON object per line as each scenario starts and
// finishes — in *completion* order, from whatever worker thread ran it —
// so `nbctune-top` (or plain `tail -f | jq`) can watch progress, per-op
// medians, blame shares and guideline verdicts while the sweep runs.
//
// Determinism contract: the live records are intentionally outside the
// byte-determinism envelope (they carry wall-clock timestamps and
// completion order).  The *terminal summary record* is not: it embeds
// the exact `analyze::write_json` bytes — the same bytes `--report=json`
// prints — as an escaped JSON string, so
// `nbctune-analyze --extract-report live.jsonl` round-trips a stream
// produced at any `--threads` back to the byte-identical report.
//
// Stream schema (nbctune-live-v1), one object per line, `seq` strictly
// monotonic over the whole stream:
//
//   {"type":"hello","seq":0,"schema":"nbctune-live-v1",...}
//   {"type":"batch","seq":n,"t_ms":..,"tasks":..,"total_submitted":..}
//   {"type":"scenario","phase":"started","seq":n,"t_ms":..,"label":".."}
//   {"type":"scenario","phase":"finished","seq":n,...per-op stats...}
//   {"type":"scenario","phase":"failed","seq":n,"index":..,"error":".."}
//   {"type":"sample","seq":n,...pool/trace/exec/rss gauges...}
//   {"type":"summary","seq":n,"status":"ok"|"aborted",...}
//
// Abort path: LiveSink::abort_from_signal is async-signal-safe (atomics,
// a stack buffer and one ::write) so a SIGINT handler can finalize the
// stream with an `aborted` summary record before the process dies.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "harness/scenario_pool.hpp"
#include "trace/trace.hpp"

namespace nbctune::analyze {
struct Report;
}

namespace nbctune::obs {

class LiveSink final : public trace::Session::Listener,
                       public harness::PoolObserver {
 public:
  /// Open the stream: `path` is a file (created/truncated) or "-" for
  /// stdout.  Writes the hello record on success; check ok() after.
  LiveSink(const std::string& path, std::string bench, int threads);
  ~LiveSink() override;

  LiveSink(const LiveSink&) = delete;
  LiveSink& operator=(const LiveSink&) = delete;

  /// False when the output file could not be opened (nothing will be
  /// written; all callbacks become no-ops).
  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }

  // trace::Session::Listener — completion-order scenario lifecycle.
  void on_scope_start(const std::string& label) override;
  void on_scope_finish(const trace::FinishedTrace& t) override;

  // harness::PoolObserver — batch submissions (progress denominators).
  void on_batch_begin(std::size_t tasks) override;

  // harness::PoolObserver — a scenario body threw (crash containment):
  // the sweep keeps draining, and the stream records which task failed
  // and why so a watcher sees the crash before the driver's exit code.
  void on_task_failed(std::size_t index, const char* what) override;

  /// Emit a periodic gauge record (called by obs::Sampler): pool
  /// activity, cumulative trace/exec totals observed by this sink, and
  /// the process RSS.
  void sample(const harness::PoolStats& pool);

  /// Emit the terminal summary record (status "ok"): scenario count plus
  /// the full report JSON — byte-identical to --report=json output —
  /// embedded as an escaped string.  Finalizes the stream; later
  /// callbacks are dropped.
  void write_summary(const analyze::Report& report,
                     const std::string& report_json);

  /// Cumulative totals accumulated from finished scopes (tests assert
  /// the gauge arithmetic against these).
  struct Totals {
    std::uint64_t started = 0;
    std::uint64_t finished = 0;
    std::uint64_t failed = 0;      ///< scenario bodies that threw
    std::uint64_t submitted = 0;   ///< sum of batch sizes observed
    std::uint64_t events = 0;      ///< trace events across finished scopes
    std::uint64_t fibers = 0;      ///< sim.fibers_created summed
    std::uint64_t dropped = 0;     ///< trace.dropped_events summed
    std::uint64_t peak_arena = 0;  ///< max world.peak_arena_bytes
  };
  [[nodiscard]] Totals totals() const;

  /// Escape a string for embedding as a JSON string body: `"` `\`
  /// newline, tab and CR.  write_json output contains no other control
  /// characters, so the round trip through jsonmin is byte-exact.
  [[nodiscard]] static std::string escape_json(const std::string& s);

  /// Resident set size of this process in bytes (0 where unsupported).
  [[nodiscard]] static std::uint64_t rss_bytes() noexcept;

  /// Register `s` (or nullptr) as the target of abort_from_signal.
  static void install_signal_target(LiveSink* s) noexcept;

  /// Async-signal-safe: write a minimal `aborted` summary record to the
  /// registered sink and finalize it.  Safe to call with no target.
  static void abort_from_signal() noexcept;

 private:
  /// Append '\n' and write the line with a single ::write under the
  /// stream mutex (assigns the record's seq at write time, so seq order
  /// equals byte order in the file).
  void write_line(std::string body);
  [[nodiscard]] long long now_ms() const;

  int fd_ = -1;
  bool owns_fd_ = false;
  std::string bench_;
  std::mutex mu_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<bool> finalized_{false};
  std::chrono::steady_clock::time_point t0_;
  std::atomic<std::uint64_t> started_{0};
  std::atomic<std::uint64_t> finished_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> fibers_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> peak_arena_{0};
};

}  // namespace nbctune::obs
