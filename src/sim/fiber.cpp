#include "sim/fiber.hpp"

#include <cassert>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>

#ifdef NBCTUNE_FIBER_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

#include "trace/trace.hpp"

namespace nbctune::sim {

namespace {
// The fiber being entered or currently running.  Single-threaded by design.
thread_local Fiber* g_current = nullptr;

constexpr std::size_t kFallbackStackBytes = 256 * 1024;
constexpr std::size_t kMinStackBytes = 16 * 1024;

std::unique_ptr<char[]> allocate_stack(std::size_t stack_bytes) {
  try {
    return std::unique_ptr<char[]>(new char[stack_bytes]);
  } catch (const std::bad_alloc&) {
    throw std::runtime_error(
        "fiber: cannot allocate a " + std::to_string(stack_bytes) +
        "-byte stack (out of memory); lower NBCTUNE_FIBER_STACK, shrink the "
        "world, or run the scenario with --exec=machine, which creates no "
        "fibers");
  }
}
}  // namespace

std::size_t default_fiber_stack_bytes() {
  // Read the environment on every call so tests can vary it per world.
  if (const char* env = std::getenv("NBCTUNE_FIBER_STACK")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      const auto bytes = static_cast<std::size_t>(v);
      return bytes < kMinStackBytes ? kMinStackBytes : bytes;
    }
  }
  return kFallbackStackBytes;
}

Fiber::Fiber(Fn fn, std::size_t stack_bytes) : fn_(std::move(fn)) {
  if (!fn_) throw std::invalid_argument("Fiber requires a callable");
  if (stack_bytes == 0) stack_bytes = default_fiber_stack_bytes();
  stack_ = allocate_stack(stack_bytes);
  trace::count(trace::Ctr::SimFibersCreated);
  if (getcontext(&ctx_) != 0) throw std::runtime_error("getcontext failed");
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = &return_ctx_;
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
#ifdef NBCTUNE_FIBER_ASAN
  stack_bytes_ = stack_bytes;
#endif
}

Fiber::~Fiber() {
  // Destroying a suspended-but-unfinished fiber leaks whatever is on its
  // stack (no unwinding).  The simulator only destroys fibers after their
  // programs complete; assert in debug builds to catch misuse.
  assert(finished_ || !started_);
}

Fiber* Fiber::current() noexcept { return g_current; }

void Fiber::trampoline() {
  Fiber* self = g_current;
#ifdef NBCTUNE_FIBER_ASAN
  // First entry: no shadow to restore; record the scheduler's stack so
  // yield() can announce switches back to it.
  __sanitizer_finish_switch_fiber(nullptr, &self->sched_stack_bottom_,
                                  &self->sched_stack_size_);
#endif
  try {
    self->fn_();
  } catch (...) {
    self->pending_exception_ = std::current_exception();
  }
  self->finished_ = true;
#ifdef NBCTUNE_FIBER_ASAN
  // Final departure from this stack: null fake-stack frees the shadow.
  __sanitizer_start_switch_fiber(nullptr, self->sched_stack_bottom_,
                                 self->sched_stack_size_);
#endif
  // uc_link returns to return_ctx_ (inside resume()).
}

void Fiber::resume() {
  if (finished_) throw std::logic_error("resume() on finished fiber");
  if (running_) throw std::logic_error("resume() on running fiber");
  trace::count(trace::Ctr::FiberSwitches);
  Fiber* prev = g_current;
  g_current = this;
  running_ = true;
  started_ = true;
#ifdef NBCTUNE_FIBER_ASAN
  __sanitizer_start_switch_fiber(&sched_fake_stack_, stack_.get(),
                                 stack_bytes_);
#endif
  swapcontext(&return_ctx_, &ctx_);
#ifdef NBCTUNE_FIBER_ASAN
  __sanitizer_finish_switch_fiber(sched_fake_stack_, nullptr, nullptr);
#endif
  running_ = false;
  g_current = prev;
  if (pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
}

void Fiber::yield() {
  if (g_current != this || !running_)
    throw std::logic_error("yield() must be called on the running fiber");
#ifdef NBCTUNE_FIBER_ASAN
  __sanitizer_start_switch_fiber(&fiber_fake_stack_, sched_stack_bottom_,
                                 sched_stack_size_);
#endif
  swapcontext(&ctx_, &return_ctx_);
#ifdef NBCTUNE_FIBER_ASAN
  __sanitizer_finish_switch_fiber(fiber_fake_stack_, &sched_stack_bottom_,
                                  &sched_stack_size_);
#endif
}

}  // namespace nbctune::sim
