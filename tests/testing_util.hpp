#pragma once

// Shared helpers for tests: spin up a world, run a program on every rank,
// and return per-rank results.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

#include "mpi/world.hpp"
#include "net/machine.hpp"
#include "net/platform.hpp"
#include "sim/engine.hpp"

namespace nbctune::testing {

struct RunResult {
  double end_time = 0.0;                 // simulated completion time
  std::vector<double> rank_end_times;    // per-rank program end
};

/// Run `program` on `nprocs` ranks of `platform`; noise disabled by
/// default so cost assertions are exact.
inline RunResult run_world(const net::Platform& platform, int nprocs,
                           const std::function<void(mpi::Ctx&)>& program,
                           double noise_scale = 0.0,
                           std::uint64_t seed = 1) {
  sim::Engine engine(seed);
  net::Machine machine(platform);
  mpi::WorldOptions opts;
  opts.nprocs = nprocs;
  opts.noise_scale = noise_scale;
  opts.seed = seed;
  mpi::World world(engine, machine, opts);
  RunResult result;
  result.rank_end_times.resize(nprocs, 0.0);
  world.launch([&](mpi::Ctx& ctx) {
    program(ctx);
    result.rank_end_times[ctx.world_rank()] = ctx.now();
  });
  engine.run();
  result.end_time = engine.now();
  return result;
}

/// Deterministic per-(rank, index) payload byte for data-integrity checks.
inline std::byte pattern_byte(int rank, std::size_t i) {
  return static_cast<std::byte>((rank * 131 + i * 7 + 13) & 0xff);
}

inline std::vector<std::byte> make_pattern(int rank, std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = pattern_byte(rank, i);
  return v;
}

}  // namespace nbctune::testing
