#include "analyze/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string_view>
#include <unordered_map>

#include "net/platform.hpp"
#include "trace/trace.hpp"

namespace nbctune::analyze {

ScenarioTrace from_finished(const trace::FinishedTrace& t) {
  ScenarioTrace out;
  out.label = t.label;
  out.events.reserve(t.events.size());
  for (const trace::Event& e : t.events) {
    AEvent a;
    a.ts = e.ts;
    a.dur = e.dur;
    a.track = e.track;
    a.cat = trace::cat_name(e.cat);
    a.name = e.name;
    if (e.akey != nullptr) a.akey = e.akey;
    a.aval = e.aval;
    if (e.bkey != nullptr) a.bkey = e.bkey;
    a.bval = e.bval;
    a.corr = e.corr;
    out.events.push_back(std::move(a));
  }
  for (std::size_t c = 0; c < t.counts.size(); ++c) {
    if (t.counts[c] != 0) {
      out.counters[trace::ctr_name(static_cast<trace::Ctr>(c))] = t.counts[c];
    }
  }
  return out;
}

// ------------------------------------------------------ label convention

LabelKey parse_label(const std::string& label) {
  LabelKey k;
  std::vector<std::string> tok;
  std::size_t pos = 0;
  while (pos < label.size()) {
    const std::size_t sp = label.find(' ', pos);
    const std::size_t end = sp == std::string::npos ? label.size() : sp;
    if (end > pos) tok.push_back(label.substr(pos, end - pos));
    pos = end + 1;
  }
  if (tok.size() != 5) return k;
  const std::string& np = tok[2];
  const std::string& by = tok[3];
  if (np.size() < 3 || np.compare(0, 2, "np") != 0) return k;
  if (by.size() < 2 || by.back() != 'B') return k;
  for (std::size_t i = 2; i < np.size(); ++i) {
    if (np[i] < '0' || np[i] > '9') return k;
  }
  for (std::size_t i = 0; i + 1 < by.size(); ++i) {
    if (by[i] < '0' || by[i] > '9') return k;
  }
  k.valid = true;
  k.op = tok[0];
  k.platform = tok[1];
  k.nprocs = std::atoi(np.c_str() + 2);
  k.bytes = std::strtoull(by.substr(0, by.size() - 1).c_str(), nullptr, 10);
  k.what = tok[4];
  // Suffixes append in order "<what>[+plan=NAME][+exec=MODE][+topo=TAG]",
  // so strip from the outside in or an inner tag would swallow the rest.
  const std::size_t topo = k.what.find("+topo=");
  if (topo != std::string::npos) {
    k.topo = k.what.substr(topo + 6);
    k.what.resize(topo);
  }
  const std::size_t exec = k.what.find("+exec=");
  if (exec != std::string::npos) {
    k.exec = k.what.substr(exec + 6);
    k.what.resize(exec);
  }
  const std::size_t plan = k.what.find("+plan=");
  if (plan != std::string::npos) {
    k.plan = k.what.substr(plan + 6);
    k.what.resize(plan);
  }
  return k;
}

std::string LabelKey::group() const {
  std::string g = op + " " + platform + " np" + std::to_string(nprocs) +
                  " " + std::to_string(bytes) + "B";
  if (!plan.empty()) g += " plan=" + plan;
  if (!exec.empty()) g += " exec=" + exec;
  if (!topo.empty()) g += " topo=" + topo;
  return g;
}

std::string LabelKey::size_group() const {
  std::string g =
      op + " " + platform + " np" + std::to_string(nprocs) + " " + what;
  if (!plan.empty()) g += " plan=" + plan;
  if (!exec.empty()) g += " exec=" + exec;
  if (!topo.empty()) g += " topo=" + topo;
  return g;
}

std::string LabelKey::rank_group() const {
  std::string g =
      op + " " + platform + " " + std::to_string(bytes) + "B " + what;
  if (!plan.empty()) g += " plan=" + plan;
  if (!exec.empty()) g += " exec=" + exec;
  if (!topo.empty()) g += " topo=" + topo;
  return g;
}

// ------------------------------------------------------ order statistics

SampleStats order_stats(std::vector<double> samples) {
  SampleStats st;
  st.n = samples.size();
  if (samples.empty()) return st;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  st.median = n % 2 == 1 ? samples[n / 2]
                         : (samples[n / 2 - 1] + samples[n / 2]) / 2.0;
  // ~95% nonparametric CI on the median: the order-statistic ranks
  // floor(mid - z/2*sqrt(n)) and ceil(mid + z/2*sqrt(n)) with z = 1.96
  // (normal approximation of Binomial(n, 1/2)), clamped to the sample.
  // sqrt/floor/ceil are IEEE-exact, so the chosen ranks — and therefore
  // the emitted bounds — are identical across compilers.
  const double mid = static_cast<double>(n - 1) / 2.0;
  const double delta = 0.98 * std::sqrt(static_cast<double>(n));
  const auto lo_i =
      static_cast<std::size_t>(std::max(0.0, std::floor(mid - delta)));
  const auto hi_i = static_cast<std::size_t>(
      std::min(static_cast<double>(n - 1), std::ceil(mid + delta)));
  st.lo = samples[lo_i];
  st.hi = samples[hi_i];
  return st;
}

// ----------------------------------------------------- scenario indexing

namespace {

/// A half-open interval [a, b) tagged with a blame category priority.
struct Interval {
  double a = 0.0;
  double b = 0.0;
};

/// One wire transfer reconstructed from its correlation id.
struct MsgInfo {
  double post_ts = -1.0;
  int post_track = -1;
  double arrival_ts = -1.0;  ///< msg.deliver / msg.complete on the receiver
  int arrival_track = -1;
  std::vector<Interval> wire;  ///< serialization spans on wire lanes
};

/// Per-rank sorted event digests used for window queries.
struct RankIndex {
  std::vector<Interval> compute;        ///< compute spans, sorted by start
  std::vector<Interval> progress;       ///< progress.call/pass spans
  std::vector<double> activity_starts;  ///< progress starts + round posts
  std::vector<std::uint64_t> inbound;   ///< corr ids, sorted by arrival
};

struct OpSpan {
  int rank = -1;
  double ts = 0.0;
  double dur = 0.0;
};

/// Everything the per-op analyses need, built in one pass over events.
struct Index {
  std::unordered_map<std::uint64_t, MsgInfo> msgs;
  std::map<int, RankIndex> ranks;
  std::map<std::uint64_t, std::vector<OpSpan>> ops;  ///< nbc.op by corr
  std::uint64_t ops_started = 0;
  bool any_compute = false;
};

bool is_post_name(const std::string& n) {
  return n == "msg.eager" || n == "msg.rts" || n == "msg.cts" ||
         n == "msg.bulk_nic";
}

Index build_index(const ScenarioTrace& t) {
  Index ix;
  for (const AEvent& e : t.events) {
    if (e.track < 0) {
      if (e.is_span() && e.corr != 0) {
        ix.msgs[e.corr].wire.push_back({e.ts, e.ts + e.dur});
      }
      continue;
    }
    if (e.cat == "progress") {
      if (e.name == "compute" && e.is_span()) {
        ix.ranks[e.track].compute.push_back({e.ts, e.ts + e.dur});
        ix.any_compute = true;
      } else if (e.is_span()) {
        ix.ranks[e.track].progress.push_back({e.ts, e.ts + e.dur});
        ix.ranks[e.track].activity_starts.push_back(e.ts);
      }
    } else if (e.cat == "nbc") {
      if (e.name == "nbc.op" && e.is_span()) {
        ix.ops[e.corr].push_back({e.track, e.ts, e.dur});
      } else if (e.name == "nbc.start") {
        ++ix.ops_started;
      } else if (e.name == "nbc.round") {
        ix.ranks[e.track].activity_starts.push_back(e.ts);
      }
    } else if (e.cat == "msg") {
      if (e.corr == 0) continue;
      MsgInfo& m = ix.msgs[e.corr];
      if (is_post_name(e.name)) {
        m.post_ts = e.ts;
        m.post_track = e.track;
      } else if (e.name == "msg.deliver" || e.name == "msg.complete") {
        // msg.complete (payload landed) supersedes the control-path
        // deliver of the same transfer if both ever appear.
        m.arrival_ts = e.ts;
        m.arrival_track = e.track;
      }
    }
  }
  for (auto& [rank, ri] : ix.ranks) {
    auto by_start = [](const Interval& x, const Interval& y) {
      return x.a < y.a;
    };
    std::sort(ri.compute.begin(), ri.compute.end(), by_start);
    std::sort(ri.progress.begin(), ri.progress.end(), by_start);
    std::sort(ri.activity_starts.begin(), ri.activity_starts.end());
  }
  // Inbound lists need the msgs map complete first; sort by (arrival,
  // corr) so the order is deterministic regardless of map iteration.
  for (const auto& [corr, m] : ix.msgs) {
    if (m.arrival_track >= 0) {
      ix.ranks[m.arrival_track].inbound.push_back(corr);
    }
  }
  for (auto& [rank, ri] : ix.ranks) {
    std::sort(ri.inbound.begin(), ri.inbound.end(),
              [&](std::uint64_t x, std::uint64_t y) {
                const double ax = ix.msgs[x].arrival_ts;
                const double ay = ix.msgs[y].arrival_ts;
                return ax != ay ? ax < ay : x < y;
              });
  }
  return ix;
}

// ----------------------------------------------------------- interval math

/// Clip `iv` to [lo, hi]; returns an empty interval when disjoint.
Interval clip(Interval iv, double lo, double hi) {
  iv.a = std::max(iv.a, lo);
  iv.b = std::min(iv.b, hi);
  if (iv.b < iv.a) iv.b = iv.a;
  return iv;
}

/// Total length of the union of `ivs` clipped to [lo, hi].
double union_length(std::vector<Interval> ivs, double lo, double hi) {
  double sum = 0.0;
  for (auto& iv : ivs) iv = clip(iv, lo, hi);
  std::sort(ivs.begin(), ivs.end(),
            [](const Interval& x, const Interval& y) { return x.a < y.a; });
  double cur_a = 0.0, cur_b = -1.0;
  for (const Interval& iv : ivs) {
    if (iv.b <= iv.a) continue;
    if (cur_b < cur_a) {
      cur_a = iv.a;
      cur_b = iv.b;
    } else if (iv.a <= cur_b) {
      cur_b = std::max(cur_b, iv.b);
    } else {
      sum += cur_b - cur_a;
      cur_a = iv.a;
      cur_b = iv.b;
    }
  }
  if (cur_b > cur_a) sum += cur_b - cur_a;
  return sum;
}

/// Collect the members of `sorted` (by start) overlapping [lo, hi].
void collect_overlapping(const std::vector<Interval>& sorted, double lo,
                         double hi, std::vector<Interval>& out) {
  for (const Interval& iv : sorted) {
    if (iv.a >= hi) break;
    if (iv.b > lo) out.push_back(clip(iv, lo, hi));
  }
}

// ------------------------------------------------------------ blame sweep

enum BlameCat : int {
  kCompute = 0,
  kProgress,
  kWire,
  kLateSender,
  kMissingProgress,
  kCatCount
};

/// Partition [lo, hi] by priority: each elementary segment goes to the
/// highest-priority (lowest enum) category covering it; uncovered time is
/// "other".  The six sums telescope to hi - lo.
Blame sweep(const std::vector<Interval> (&cats)[kCatCount], double lo,
            double hi) {
  Blame blame;
  std::vector<double> cuts{lo, hi};
  for (const auto& ivs : cats) {
    for (const Interval& iv : ivs) {
      if (iv.b <= iv.a) continue;
      cuts.push_back(std::clamp(iv.a, lo, hi));
      cuts.push_back(std::clamp(iv.b, lo, hi));
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  double* sums[kCatCount] = {&blame.compute, &blame.progress, &blame.wire,
                             &blame.late_sender, &blame.missing_progress};
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double a = cuts[i], b = cuts[i + 1];
    const double mid = a + (b - a) / 2.0;
    int winner = -1;
    for (int c = 0; c < kCatCount && winner < 0; ++c) {
      for (const Interval& iv : cats[c]) {
        if (iv.a <= mid && mid < iv.b) {
          winner = c;
          break;
        }
      }
    }
    if (winner >= 0) {
      *sums[winner] += b - a;
    } else {
      blame.other += b - a;
    }
  }
  return blame;
}

/// First progress activity (pass start or round post) on the rank at or
/// after `t`; falls back to `fallback` when the rank never progresses
/// again inside the window.
double next_activity(const RankIndex& ri, double t, double fallback) {
  auto it = std::lower_bound(ri.activity_starts.begin(),
                             ri.activity_starts.end(), t);
  if (it == ri.activity_starts.end()) return fallback;
  return std::min(*it, fallback);
}

/// Blame partition + critical-path walk of one op instance.
OpCritical analyze_op(const Index& ix, std::uint64_t corr,
                      const std::vector<OpSpan>& spans, int max_hops) {
  OpCritical oc;
  oc.corr = corr;
  const OpSpan* crit = &spans.front();
  for (const OpSpan& s : spans) {
    if (s.ts + s.dur > crit->ts + crit->dur) crit = &s;
  }
  oc.critical_rank = crit->rank;
  oc.start = crit->ts;
  oc.elapsed = crit->dur;
  const double lo = crit->ts, hi = crit->ts + crit->dur;

  auto rit = ix.ranks.find(crit->rank);
  static const RankIndex kNone;
  const RankIndex& ri = rit != ix.ranks.end() ? rit->second : kNone;

  std::vector<Interval> cats[kCatCount];
  collect_overlapping(ri.compute, lo, hi, cats[kCompute]);
  collect_overlapping(ri.progress, lo, hi, cats[kProgress]);
  // Inbound transfers landing in the window drive the remaining three
  // categories: their wire serialization, the wait before the sender
  // posted, and the post-arrival gap until this rank progressed again.
  for (std::size_t id : ri.inbound) {
    const MsgInfo& m = ix.msgs.at(id);
    if (m.arrival_ts < lo || m.arrival_ts > hi) continue;
    for (const Interval& w : m.wire) {
      const Interval c = clip(w, lo, hi);
      if (c.b > c.a) cats[kWire].push_back(c);
    }
    if (m.post_ts > lo) {
      cats[kLateSender].push_back({lo, std::min(m.post_ts, hi)});
    }
    const double seen = next_activity(ri, m.arrival_ts, hi);
    if (seen > m.arrival_ts) {
      cats[kMissingProgress].push_back({m.arrival_ts, seen});
    }
  }
  oc.blame = sweep(cats, lo, hi);

  // Backwards walk: who was everybody waiting for?
  int cur_rank = crit->rank;
  double cur_t = hi;
  for (int hop = 0; hop < max_hops; ++hop) {
    auto rit2 = ix.ranks.find(cur_rank);
    if (rit2 == ix.ranks.end()) break;
    const RankIndex& cri = rit2->second;
    const MsgInfo* found = nullptr;
    std::uint64_t found_corr = 0;
    for (auto it = cri.inbound.rbegin(); it != cri.inbound.rend(); ++it) {
      const MsgInfo& m = ix.msgs.at(*it);
      if (m.arrival_ts <= cur_t && m.arrival_ts >= lo) {
        found = &m;
        found_corr = *it;
        break;
      }
    }
    if (found == nullptr || found->post_track < 0) break;
    oc.hops.push_back({cur_rank, found->post_track, found_corr,
                       found->post_ts, found->arrival_ts});
    if (found->post_ts <= lo || found->post_ts >= cur_t) break;
    cur_rank = found->post_track;
    cur_t = found->post_ts;
  }
  return oc;
}

// --------------------------------------------------------------- overlap

std::vector<RankOverlap> analyze_overlap(const Index& ix) {
  std::vector<RankOverlap> out;
  // Per-rank op windows.
  std::map<int, std::vector<Interval>> windows;
  for (const auto& [corr, spans] : ix.ops) {
    for (const OpSpan& s : spans) {
      windows[s.rank].push_back({s.ts, s.ts + s.dur});
    }
  }
  for (auto& [rank, wins] : windows) {
    std::sort(wins.begin(), wins.end(),
              [](const Interval& x, const Interval& y) { return x.a < y.a; });
    RankOverlap ro;
    ro.rank = rank;
    ro.ops = wins.size();
    auto rit = ix.ranks.find(rank);
    static const RankIndex kNone;
    const RankIndex& ri = rit != ix.ranks.end() ? rit->second : kNone;
    // Wire intervals correlated with this rank's traffic (sent or
    // received), fetched once and clipped per window below.
    std::vector<Interval> rank_wire;
    for (const auto& [corr, m] : ix.msgs) {
      if (m.post_track == rank || m.arrival_track == rank) {
        rank_wire.insert(rank_wire.end(), m.wire.begin(), m.wire.end());
      }
    }
    double ratio_sum = 0.0;
    std::uint64_t ratio_n = 0;
    for (const Interval& w : wins) {
      const double e = w.b - w.a;
      std::vector<Interval> comp;
      collect_overlapping(ri.compute, w.a, w.b, comp);
      const double c = union_length(comp, w.a, w.b);
      const double wi = union_length(rank_wire, w.a, w.b);
      ro.op_time += e;
      ro.compute_in_op += c;
      ro.wire_in_op += wi;
      ro.slack += std::max(0.0, e - std::max(c, wi));
      const double m = std::min(c, wi);
      if (m > 0.0 && e > 0.0) {
        ratio_sum += std::clamp((c + wi - e) / m, 0.0, 1.0);
        ++ratio_n;
      }
    }
    ro.overlap_ratio = ratio_n > 0 ? ratio_sum / static_cast<double>(ratio_n)
                                   : 0.0;
    out.push_back(ro);
  }
  return out;
}

// ------------------------------------------------------------ adcl audit

AdclAudit analyze_adcl(const ScenarioTrace& t) {
  AdclAudit a;
  // Every rank emits the (identical, rank-agreed) adcl events; audit the
  // lowest participating track only.
  int track = -1;
  for (const AEvent& e : t.events) {
    if (e.cat == "adcl" && e.track >= 0 &&
        (track < 0 || e.track < track)) {
      track = e.track;
    }
  }
  if (track < 0) return a;
  a.present = true;
  for (const AEvent& e : t.events) {
    if (e.cat != "adcl" || e.track != track) continue;
    if (e.name == "adcl.score") {
      AdclScore s;
      s.func = static_cast<int>(e.arg("func"));
      s.score = static_cast<double>(e.arg("score_ns")) * 1e-9;
      s.iteration = static_cast<int>(e.corr);
      a.scores.push_back(s);
    } else if (e.name == "adcl.decision") {
      // Later decisions (drift re-tunes) supersede earlier ones.
      a.winner = static_cast<int>(e.arg("winner"));
      a.decision_iteration = static_cast<int>(e.arg("iter"));
      a.decision_ts = e.ts;
    } else if (e.name == "adcl.retune") {
      ++a.retunes;
    } else if (e.name == "adcl.eliminate") {
      AdclElimination el;
      el.attr = static_cast<int>(e.arg("attr"));
      el.value = static_cast<int>(e.arg("value"));
      el.iteration = static_cast<int>(e.corr);
      a.eliminations.push_back(std::move(el));
    } else if (e.name == "adcl.prune") {
      AdclPrune p;
      p.func = static_cast<int>(e.arg("func"));
      p.bound = static_cast<double>(e.arg("bound_ns")) * 1e-9;
      p.iteration = static_cast<int>(e.corr);
      a.prunes.push_back(p);
    } else if (e.name == "adcl.eliminate.func") {
      // Emitted right after its adcl.eliminate; attach to the newest
      // record (several eliminations may share one iteration when
      // exhausted phases cascade).
      if (!a.eliminations.empty()) {
        a.eliminations.back().pruned.push_back(
            static_cast<int>(e.arg("func")));
        a.eliminations.back().kept = static_cast<int>(e.arg("kept"));
      }
    }
  }
  // Last score per function (later refinements override earlier ones).
  std::map<int, double> best;
  for (const AdclScore& s : a.scores) best[s.func] = s.score;
  if (a.winner >= 0) {
    auto it = best.find(a.winner);
    if (it != best.end()) a.winner_score = it->second;
    double runner = 0.0;
    bool have = false;
    for (const auto& [f, sc] : best) {
      if (f == a.winner) continue;
      if (!have || sc < runner) {
        runner = sc;
        have = true;
      }
    }
    if (have) {
      a.runner_up_score = runner;
      if (a.winner_score > 0.0) {
        a.margin = (runner - a.winner_score) / a.winner_score;
      }
    }
  }
  auto ctr = [&](const char* name) -> std::uint64_t {
    auto it = t.counters.find(name);
    return it == t.counters.end() ? 0 : it->second;
  };
  a.samples_seen = ctr("adcl.samples_seen");
  a.samples_filtered = ctr("adcl.samples_filtered");
  return a;
}

// ----------------------------------------------------------- fault audit

/// Count injection/recovery events.  Injections (fault.*) are emitted
/// once globally per incident; recovery events (msg.*, nbc.fallback) are
/// per-rank, so the sums count incidents and rank-actions respectively.
FaultSummary analyze_faults(const ScenarioTrace& t) {
  FaultSummary f;
  for (const AEvent& e : t.events) {
    if (e.name == "fault.drop") {
      ++f.drops;
    } else if (e.name == "fault.dup") {
      ++f.dups;
    } else if (e.name == "msg.dup_drop") {
      ++f.dup_deliveries;
    } else if (e.name == "msg.retransmit") {
      ++f.retransmits;
    } else if (e.name == "msg.send_failure") {
      ++f.send_failures;
    } else if (e.name == "nbc.fallback") {
      ++f.fallbacks;
    } else if (e.name == "fault.straggler") {
      ++f.stragglers;
    }
  }
  return f;
}

// -------------------------------------------------------- recovery audit

/// Replay the fail-stop recovery timeline.  Events arrive in simulated
/// time order (one engine per scenario), so a single forward pass pairs
/// each death with its lease-detection, opens a shrink epoch at every
/// agreement that removed ranks (the "failed" argument is cumulative, so
/// growth marks a membership change), and closes it at the epoch's last
/// per-rank handle rebuild.
RecoverySummary analyze_recovery(const ScenarioTrace& t) {
  RecoverySummary r;
  std::map<int, double> death_ts;  // world rank -> death time
  double det_sum = 0.0;
  std::uint64_t det_n = 0;
  struct Epoch {
    double first_death = -1.0;
    double first_detect = -1.0;
    double agree = -1.0;
    double last_rebuild = -1.0;
  };
  std::vector<Epoch> epochs;
  double pend_first_death = -1.0;
  double pend_first_detect = -1.0;
  std::uint64_t prev_failed = 0;
  for (const AEvent& e : t.events) {
    if (e.name == "mpi.rank_death") {
      ++r.deaths;
      death_ts[e.track] = e.ts;
      if (pend_first_death < 0.0) pend_first_death = e.ts;
    } else if (e.name == "mpi.ft.detect") {
      const auto it = death_ts.find(e.track);
      if (it != death_ts.end()) {
        det_sum += e.ts - it->second;
        ++det_n;
      }
      if (pend_first_detect < 0.0) pend_first_detect = e.ts;
    } else if (e.name == "mpi.ft.agree") {
      const std::uint64_t failed = e.arg("failed");
      if (failed > prev_failed) {
        prev_failed = failed;
        epochs.push_back({pend_first_death, pend_first_detect, e.ts, -1.0});
        pend_first_death = pend_first_detect = -1.0;
      }
    } else if (e.name == "nbc.rebuild") {
      ++r.rebuilds;
      if (!epochs.empty()) epochs.back().last_rebuild = e.ts;
    } else if (e.name == "nbc.abort") {
      ++r.aborted_ops;
    }
  }
  r.epochs = epochs.size();
  r.detection = det_n > 0 ? det_sum / static_cast<double>(det_n) : 0.0;
  double agree_sum = 0.0, reb_sum = 0.0, ttr_sum = 0.0;
  std::uint64_t agree_n = 0, reb_n = 0, ttr_n = 0;
  for (const Epoch& ep : epochs) {
    if (ep.first_detect >= 0.0) {
      agree_sum += ep.agree - ep.first_detect;
      ++agree_n;
    }
    if (ep.last_rebuild >= 0.0) {
      reb_sum += ep.last_rebuild - ep.agree;
      ++reb_n;
      if (ep.first_death >= 0.0) {
        ttr_sum += ep.last_rebuild - ep.first_death;
        ++ttr_n;
      }
    }
  }
  r.agreement = agree_n > 0 ? agree_sum / static_cast<double>(agree_n) : 0.0;
  r.rebuild = reb_n > 0 ? reb_sum / static_cast<double>(reb_n) : 0.0;
  r.time_to_recover =
      ttr_n > 0 ? ttr_sum / static_cast<double>(ttr_n) : 0.0;
  return r;
}

// ------------------------------------------------------------ guidelines

void fmt_ns(std::string& s, double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(std::llround(seconds * 1e9)));
  s += buf;
  s += "ns";
}

std::vector<GuidelineResult> check_guidelines(
    const std::vector<ScenarioReport>& scenarios, const Options& opts) {
  std::vector<GuidelineResult> out;

  // G1: every started operation completes (conservation; catches lost
  // wakeups and dangling handles).  Universal: applies to every traced
  // scenario of every driver.
  {
    GuidelineResult g;
    g.id = "G1";
    g.description =
        "every started non-blocking operation completes or is aborted by "
        "fail-stop recovery";
    for (const ScenarioReport& s : scenarios) {
      ++g.checked;
      // Conservation under fail-stop: an execution abandoned at a shrink
      // (and the dying rank's own in-flight op) is accounted as aborted;
      // aborted is 0 on kill-free runs, where this degenerates to the
      // classic started == completed.
      if (s.ops_started == s.ops_completed + s.ops_aborted) {
        ++g.passed;
      } else {
        g.violations.push_back(
            s.label + ": started " + std::to_string(s.ops_started) +
            " != completed " + std::to_string(s.ops_completed) +
            " + aborted " + std::to_string(s.ops_aborted));
      }
    }
    out.push_back(std::move(g));
  }

  // Index microbench-labelled scenarios for the comparative guidelines.
  struct Cell {
    const ScenarioReport* s = nullptr;
    LabelKey key;
  };
  std::map<std::string, std::vector<Cell>> groups;       // G2/G3
  std::map<std::string, std::vector<Cell>> size_groups;  // G4/G5
  std::map<std::string, std::vector<Cell>> rank_groups;  // G6
  for (const ScenarioReport& s : scenarios) {
    LabelKey k = parse_label(s.label);
    if (!k.valid || s.ops_completed == 0) continue;
    groups[k.group()].push_back({&s, k});
    size_groups[k.size_group()].push_back({&s, k});
    rank_groups[k.rank_group()].push_back({&s, k});
  }

  // G2: the tuned winner is no slower than the best fixed candidate
  // (post-decision iterations, tolerance epsilon).
  {
    GuidelineResult g;
    g.id = "G2";
    g.description = "tuned winner <= best fixed candidate (post-decision)";
    for (const auto& [key, cells] : groups) {
      double best_fixed = 0.0;
      std::string best_label;
      for (const Cell& c : cells) {
        if (c.key.what.rfind("fixed:", 0) != 0) continue;
        if (best_label.empty() || c.s->mean_op_elapsed < best_fixed) {
          best_fixed = c.s->mean_op_elapsed;
          best_label = c.s->label;
        }
      }
      if (best_label.empty()) continue;
      for (const Cell& c : cells) {
        if (c.key.what.rfind("adcl:", 0) != 0) continue;
        ++g.checked;
        const double tuned = c.s->post_decision_op_elapsed;
        if (tuned <= best_fixed * (1.0 + opts.epsilon)) {
          ++g.passed;
        } else {
          std::string v = c.s->label + ": tuned ";
          fmt_ns(v, tuned);
          v += " > best fixed ";
          fmt_ns(v, best_fixed);
          v += " (" + best_label + ")";
          g.violations.push_back(std::move(v));
        }
      }
    }
    out.push_back(std::move(g));
  }

  // G3: at zero compute a non-blocking implementation is no slower than
  // its blocking twin (no overlap to win, none to lose).
  {
    GuidelineResult g;
    g.id = "G3";
    g.description =
        "non-blocking <= blocking twin at zero compute (tolerance epsilon)";
    for (const auto& [key, cells] : groups) {
      for (const Cell& blocking : cells) {
        constexpr std::string_view kPrefix = "fixed:blocking-";
        if (blocking.key.what.rfind(kPrefix.data(), 0) != 0) continue;
        const std::string twin =
            "fixed:" + blocking.key.what.substr(kPrefix.size());
        for (const Cell& c : cells) {
          if (c.key.what != twin) continue;
          if (!c.s->zero_compute || !blocking.s->zero_compute) continue;
          ++g.checked;
          if (c.s->mean_op_elapsed <=
              blocking.s->mean_op_elapsed * (1.0 + opts.epsilon)) {
            ++g.passed;
          } else {
            std::string v = c.s->label + ": non-blocking ";
            fmt_ns(v, c.s->mean_op_elapsed);
            v += " > blocking ";
            fmt_ns(v, blocking.s->mean_op_elapsed);
            g.violations.push_back(std::move(v));
          }
        }
      }
    }
    out.push_back(std::move(g));
  }

  // G4: op time is monotone in message size for a fixed implementation
  // (allowing a small dip for protocol switches measured under noise).
  {
    GuidelineResult g;
    g.id = "G4";
    g.description = "op time monotone non-decreasing in message size";
    for (const auto& [key, cells] : size_groups) {
      if (cells.size() < 2) continue;
      std::vector<Cell> sorted = cells;
      std::sort(sorted.begin(), sorted.end(),
                [](const Cell& x, const Cell& y) {
                  return x.key.bytes < y.key.bytes;
                });
      for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        if (sorted[i].key.bytes == sorted[i + 1].key.bytes) continue;
        ++g.checked;
        const double small = sorted[i].s->mean_op_elapsed;
        const double big = sorted[i + 1].s->mean_op_elapsed;
        if (big >= small * (1.0 - opts.monotonicity_tolerance)) {
          ++g.passed;
        } else {
          std::string v = sorted[i + 1].s->label + ": ";
          fmt_ns(v, big);
          v += " at " + std::to_string(sorted[i + 1].key.bytes) +
               "B < " ;
          fmt_ns(v, small);
          v += " at " + std::to_string(sorted[i].key.bytes) + "B";
          g.violations.push_back(std::move(v));
        }
      }
    }
    out.push_back(std::move(g));
  }

  // G5: pattern-split mock-up (Hunold).  Splitting an operation into two
  // half-size instances is a valid alternative implementation, so the
  // full-size op may not cost more than twice the half-size op (plus
  // epsilon).  Checked for exact size doublings within a size group.
  {
    GuidelineResult g;
    g.id = "G5";
    g.description =
        "doubling the message size at most doubles op time (split mock-up)";
    for (const auto& [key, cells] : size_groups) {
      if (cells.size() < 2) continue;
      std::vector<Cell> sorted = cells;
      std::sort(sorted.begin(), sorted.end(),
                [](const Cell& x, const Cell& y) {
                  return x.key.bytes < y.key.bytes;
                });
      for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        if (sorted[i + 1].key.bytes != 2 * sorted[i].key.bytes) continue;
        ++g.checked;
        const double half = sorted[i].s->mean_op_elapsed;
        const double full = sorted[i + 1].s->mean_op_elapsed;
        if (full <= 2.0 * half * (1.0 + opts.epsilon)) {
          ++g.passed;
        } else {
          std::string v = sorted[i + 1].s->label + ": ";
          fmt_ns(v, full);
          v += " > 2x ";
          fmt_ns(v, half);
          v += " at " + std::to_string(sorted[i].key.bytes) + "B";
          g.violations.push_back(std::move(v));
        }
      }
    }
    out.push_back(std::move(g));
  }

  // G6: op time is monotone non-decreasing in the process count for a
  // fixed implementation and message size (more participants never make
  // a collective faster; a small dip is tolerated for topology effects
  // measured under noise).
  {
    GuidelineResult g;
    g.id = "G6";
    g.description = "op time monotone non-decreasing in process count";
    for (const auto& [key, cells] : rank_groups) {
      if (cells.size() < 2) continue;
      std::vector<Cell> sorted = cells;
      std::sort(sorted.begin(), sorted.end(),
                [](const Cell& x, const Cell& y) {
                  return x.key.nprocs < y.key.nprocs;
                });
      for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        if (sorted[i].key.nprocs == sorted[i + 1].key.nprocs) continue;
        ++g.checked;
        const double small = sorted[i].s->mean_op_elapsed;
        const double big = sorted[i + 1].s->mean_op_elapsed;
        if (big >= small * (1.0 - opts.monotonicity_tolerance)) {
          ++g.passed;
        } else {
          std::string v = sorted[i + 1].s->label + ": ";
          fmt_ns(v, big);
          v += " at np" + std::to_string(sorted[i + 1].key.nprocs) + " < ";
          fmt_ns(v, small);
          v += " at np" + std::to_string(sorted[i].key.nprocs);
          g.violations.push_back(std::move(v));
        }
      }
    }
    out.push_back(std::move(g));
  }

  // G7: on multi-node runs a hierarchy-aware two-level implementation is
  // no slower than its flat counterpart (tolerance epsilon) — topology
  // awareness must earn back its extra intra-node hop.  Single-node runs
  // are skipped: the two-level shape degenerates to the flat one there.
  {
    GuidelineResult g;
    g.id = "G7";
    g.description =
        "two-level variant <= flat counterpart on multi-node runs";
    for (const auto& [key, cells] : groups) {
      for (const Cell& two : cells) {
        constexpr std::string_view kPrefix = "fixed:2lvl-";
        if (two.key.what.rfind(kPrefix.data(), 0) != 0) continue;
        bool multi_node = false;
        try {
          const net::Platform p = net::platform_by_name(two.key.platform);
          multi_node = two.key.nprocs > p.cores_per_node;
        } catch (const std::exception&) {
          continue;  // unknown platform: no node geometry to reason about
        }
        if (!multi_node) continue;
        // Flat twin: same name without the 2lvl- prefix, exactly or as a
        // segmented family ("binomial/seg32k" twins "2lvl-binomial"); the
        // fastest family member is the reference.
        const std::string flat =
            "fixed:" + two.key.what.substr(kPrefix.size());
        const ScenarioReport* best = nullptr;
        for (const Cell& c : cells) {
          if (c.key.what != flat && c.key.what.rfind(flat + "/", 0) != 0) {
            continue;
          }
          if (best == nullptr ||
              c.s->mean_op_elapsed < best->mean_op_elapsed) {
            best = c.s;
          }
        }
        if (best == nullptr) continue;
        ++g.checked;
        if (two.s->mean_op_elapsed <=
            best->mean_op_elapsed * (1.0 + opts.epsilon)) {
          ++g.passed;
        } else {
          std::string v = two.s->label + ": two-level ";
          fmt_ns(v, two.s->mean_op_elapsed);
          v += " > flat ";
          fmt_ns(v, best->mean_op_elapsed);
          v += " (" + best->label + ")";
          g.violations.push_back(std::move(v));
        }
      }
    }
    out.push_back(std::move(g));
  }

  return out;
}

}  // namespace

// ---------------------------------------------------------------- driver

Report analyze(const std::vector<ScenarioTrace>& traces,
               const Options& opts) {
  Report report;
  report.scenarios.reserve(traces.size());
  for (const ScenarioTrace& t : traces) {
    ScenarioReport sr;
    sr.label = t.label;
    const Index ix = build_index(t);
    sr.ops_started = ix.ops_started;
    sr.zero_compute = !ix.any_compute;

    double op_sum = 0.0;
    std::uint64_t op_n = 0;
    for (const auto& [corr, spans] : ix.ops) {
      for (const OpSpan& s : spans) {
        op_sum += s.dur;
        ++op_n;
      }
    }
    sr.ops_completed = op_n;
    sr.mean_op_elapsed = op_n > 0 ? op_sum / static_cast<double>(op_n) : 0.0;

    double worst_elapsed = -1.0;
    // One repetition sample per op instance: the critical rank's elapsed
    // time and blame partition ("MPI Benchmarking Revisited": statistics
    // are computed over repetitions, never pooled measurements).
    std::vector<double> elapsed_samples;
    std::vector<double> blame_samples[6];
    for (const auto& [corr, spans] : ix.ops) {
      OpCritical oc = analyze_op(ix, corr, spans, opts.max_hops);
      sr.blame.compute += oc.blame.compute;
      sr.blame.progress += oc.blame.progress;
      sr.blame.wire += oc.blame.wire;
      sr.blame.late_sender += oc.blame.late_sender;
      sr.blame.missing_progress += oc.blame.missing_progress;
      sr.blame.other += oc.blame.other;
      elapsed_samples.push_back(oc.elapsed);
      blame_samples[0].push_back(oc.blame.compute);
      blame_samples[1].push_back(oc.blame.progress);
      blame_samples[2].push_back(oc.blame.wire);
      blame_samples[3].push_back(oc.blame.late_sender);
      blame_samples[4].push_back(oc.blame.missing_progress);
      blame_samples[5].push_back(oc.blame.other);
      if (oc.elapsed > worst_elapsed) {
        worst_elapsed = oc.elapsed;
        sr.worst = oc;
        sr.has_critical = true;
      }
      sr.op_criticals.push_back(std::move(oc));
    }
    sr.op_stats = order_stats(std::move(elapsed_samples));
    sr.blame_stats.compute = order_stats(std::move(blame_samples[0]));
    sr.blame_stats.progress = order_stats(std::move(blame_samples[1]));
    sr.blame_stats.wire = order_stats(std::move(blame_samples[2]));
    sr.blame_stats.late_sender = order_stats(std::move(blame_samples[3]));
    sr.blame_stats.missing_progress =
        order_stats(std::move(blame_samples[4]));
    sr.blame_stats.other = order_stats(std::move(blame_samples[5]));
    sr.min_reps_met =
        sr.op_stats.n >= static_cast<std::uint64_t>(std::max(opts.min_reps, 0));

    sr.ranks = analyze_overlap(ix);
    sr.adcl = analyze_adcl(t);
    sr.faults = analyze_faults(t);
    sr.recovery = analyze_recovery(t);
    sr.ops_aborted = sr.recovery.aborted_ops;
    {
      auto ctr = [&](const char* name) -> std::uint64_t {
        auto it = t.counters.find(name);
        return it == t.counters.end() ? 0 : it->second;
      };
      sr.fibers_created = ctr("sim.fibers_created");
      sr.peak_arena_bytes = ctr("world.peak_arena_bytes");
      sr.dropped_events = ctr("trace.dropped_events");
    }

    // Post-decision performance: ops starting after the decision event.
    sr.post_decision_op_elapsed = sr.mean_op_elapsed;
    if (sr.adcl.present && sr.adcl.winner >= 0) {
      double sum = 0.0;
      std::uint64_t n = 0;
      for (const auto& [corr, spans] : ix.ops) {
        for (const OpSpan& s : spans) {
          if (s.ts > sr.adcl.decision_ts) {
            sum += s.dur;
            ++n;
          }
        }
      }
      if (n > 0) sr.post_decision_op_elapsed = sum / static_cast<double>(n);
    }
    report.scenarios.push_back(std::move(sr));
  }
  report.guidelines = check_guidelines(report.scenarios, opts);
  return report;
}

}  // namespace nbctune::analyze
