#pragma once

// ScenarioPool: a work-stealing thread pool for embarrassingly parallel
// simulation sweeps.
//
// The paper's headline numbers are sweeps — hundreds of verification runs
// and FFT tests — and every scenario owns a fully independent sim::Engine
// (its own clock, event queue and Rng).  The pool shards those scenarios
// across cores under a strict determinism contract:
//
//   * one Engine / Rng per task, no shared mutable state between tasks;
//   * results are aggregated by submission index, never by completion
//     order — so a sweep produces byte-identical tables at 1 thread and
//     at N threads;
//   * an exception thrown by a task is re-thrown to the caller; when
//     several tasks throw, the one with the lowest submission index wins
//     (again independent of thread count).
//
// Scheduling: each worker owns a deque of task indices, seeded with a
// contiguous block of the batch.  Workers pop their own deque from the
// front and steal from the back of the busiest victim when empty, so an
// uneven sweep (one huge scenario amid many small ones) still finishes
// in max(task) rather than sum(block).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace nbctune::harness {

/// Live snapshot of a pool's activity gauges (the obs sampler polls
/// this; see src/obs).  submitted/completed/steals are cumulative over
/// the pool's lifetime; queued and inflight describe the current batch.
struct PoolStats {
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t steals = 0;        ///< tasks taken from a victim's deque
  std::size_t queued = 0;          ///< indices still sitting in shard deques
  std::size_t inflight = 0;        ///< submitted - completed (running batch)
};

/// Observer of pool batch lifecycles.  on_batch_begin fires on the
/// submitting thread before any task runs; implementations must be
/// thread-safe (tasks of a batch may already be executing while it runs).
class PoolObserver {
 public:
  virtual ~PoolObserver() = default;
  virtual void on_batch_begin(std::size_t tasks) = 0;
  /// A task body threw (crash containment): the batch keeps draining and
  /// the pool rethrows the lowest-index error only after it has.  Fires
  /// on the worker that ran the task — implementations must be
  /// thread-safe.  `what` is the exception message ("unknown error" for
  /// non-std exceptions).
  virtual void on_task_failed(std::size_t index, const char* what) {
    (void)index;
    (void)what;
  }
};

class ScenarioPool {
 public:
  /// threads <= 0 resolves via NBCTUNE_THREADS, then the hardware
  /// concurrency.  threads == 1 runs every batch inline on the caller.
  explicit ScenarioPool(int threads = 0);
  ~ScenarioPool();

  ScenarioPool(const ScenarioPool&) = delete;
  ScenarioPool& operator=(const ScenarioPool&) = delete;

  /// Worker count this pool executes with (>= 1).
  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Resolve a requested thread count: positive values pass through,
  /// otherwise $NBCTUNE_THREADS, otherwise std::thread::hardware_concurrency.
  static int resolve_threads(int requested) noexcept;

  /// Run fn(0) .. fn(n-1), blocking until all have finished.  Tasks must
  /// be independent; every index runs exactly once.  If any task throws,
  /// the remaining tasks still run and the exception from the lowest
  /// index is re-thrown here.  Re-entrant calls (a task dispatching a
  /// sub-batch on its own pool) execute inline on the calling thread —
  /// same contract, no deadlock.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Map items through `make` (item, index) -> R, returning results in
  /// submission order.
  template <typename R, typename Item, typename F>
  std::vector<R> map(const std::vector<Item>& items, F&& make) {
    std::vector<R> out(items.size());
    run_indexed(items.size(),
                [&](std::size_t i) { out[i] = make(items[i], i); });
    return out;
  }

  /// Run a batch of nullary callables, returning their results in
  /// submission order.
  template <typename R>
  std::vector<R> run_all(const std::vector<std::function<R()>>& tasks) {
    std::vector<R> out(tasks.size());
    run_indexed(tasks.size(), [&](std::size_t i) { out[i] = tasks[i](); });
    return out;
  }

  /// Install a batch-lifecycle observer (nullptr to detach); read
  /// atomically at batch submission.
  void set_observer(PoolObserver* o) noexcept {
    observer_.store(o, std::memory_order_release);
  }

  /// Snapshot the activity gauges.  Cheap (three atomic loads) except for
  /// the queue-depth scan, which briefly locks each shard — intended for
  /// sampling rates, not hot loops.
  [[nodiscard]] PoolStats stats() const;

 private:
  struct Impl;
  Impl* impl_;  // pimpl: keeps <thread>/<mutex> out of this header
  int threads_;
  std::atomic<bool> busy_{false};  // batch in flight (run_indexed re-entrancy)
  std::atomic<PoolObserver*> observer_{nullptr};
  // Cumulative gauges; maintained by both the pooled and inline paths.
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace nbctune::harness
