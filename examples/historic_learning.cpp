// Historic learning example (paper §IV-B / §V): the winner of a tuning
// run is recorded under a platform/operation/size key; a later execution
// with the same key skips the learning phase entirely.  The store also
// round-trips through a file, carrying decisions across program runs.

#include <cstdio>
#include <vector>

#include "adcl/adcl.hpp"
#include "mpi/world.hpp"
#include "net/machine.hpp"
#include "net/platform.hpp"
#include "sim/engine.hpp"

using namespace nbctune;

namespace {

struct Outcome {
  std::string winner;
  int decision_iteration = -1;
  double total = 0.0;
};

Outcome run_job(adcl::HistoryStore* history, std::uint64_t seed) {
  sim::Engine engine(seed);
  net::Machine machine(net::whale());
  mpi::WorldOptions options;
  options.nprocs = 64;
  mpi::World world(engine, machine, options);
  Outcome out;
  world.launch([&](mpi::Ctx& ctx) {
    const auto comm = ctx.world().comm_world();
    adcl::TuningOptions opts;
    opts.tests_per_function = 4;
    opts.history = history;
    auto req = adcl::ialltoall_init(ctx, comm, nullptr, nullptr, 32 * 1024,
                                    opts);
    for (int it = 0; it < 16; ++it) {
      req->init();
      ctx.compute(5e-3);
      req->progress();
      req->wait();
    }
    if (ctx.world_rank() == 0) {
      out.winner = req->current_function().name;
      out.decision_iteration = req->selection().decision_iteration();
      out.total = ctx.now();
    }
  });
  engine.run();
  return out;
}

}  // namespace

int main() {
  adcl::HistoryStore history;

  std::printf("first run (cold cache):\n");
  const Outcome first = run_job(&history, 1);
  std::printf("  winner %s, decided at iteration %d, total %.4f s\n",
              first.winner.c_str(), first.decision_iteration, first.total);

  // Persist across "executions" through a file, as a real deployment would.
  const char* path = "nbctune_history_example.txt";
  history.save(path);
  adcl::HistoryStore reloaded;
  reloaded.load(path);
  std::printf("history file %s holds %zu entr%s\n", path, reloaded.size(),
              reloaded.size() == 1 ? "y" : "ies");

  std::printf("second run (warm cache):\n");
  const Outcome second = run_job(&reloaded, 2);
  std::printf("  winner %s, decided at iteration %d, total %.4f s\n",
              second.winner.c_str(), second.decision_iteration, second.total);

  std::printf("\nlearning phase skipped: %s; time saved: %.4f s (%.1f%%)\n",
              second.decision_iteration == 0 ? "yes" : "no",
              first.total - second.total,
              100.0 * (first.total - second.total) / first.total);
  std::remove(path);
  return 0;
}
