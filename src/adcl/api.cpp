#include "adcl/adcl.hpp"

namespace nbctune::adcl {

namespace {
std::shared_ptr<const FunctionSet> fset_of(
    const std::shared_ptr<SelectionState>& shared,
    std::shared_ptr<const FunctionSet> fresh) {
  return shared ? shared->fset_ptr() : std::move(fresh);
}
}  // namespace

std::unique_ptr<Request> request_create(mpi::Ctx& ctx,
                                        std::shared_ptr<const FunctionSet> fset,
                                        OpArgs args, const TuningOptions& opts,
                                        std::shared_ptr<SelectionState> shared) {
  return std::make_unique<Request>(ctx, std::move(fset), std::move(args), opts,
                                   std::move(shared));
}

std::unique_ptr<Request> ialltoall_init(mpi::Ctx& ctx, const mpi::Comm& comm,
                                        const void* sbuf, void* rbuf,
                                        std::size_t block,
                                        const TuningOptions& opts,
                                        std::shared_ptr<SelectionState> shared,
                                        bool include_blocking) {
  OpArgs args;
  args.comm = comm;
  args.sbuf = sbuf;
  args.rbuf = rbuf;
  args.bytes = block;
  auto fset = fset_of(shared, make_ialltoall_functionset(include_blocking));
  return std::make_unique<Request>(ctx, std::move(fset), std::move(args), opts,
                                   std::move(shared));
}

std::unique_ptr<Request> ibcast_init(mpi::Ctx& ctx, const mpi::Comm& comm,
                                     void* buf, std::size_t bytes, int root,
                                     const TuningOptions& opts,
                                     std::shared_ptr<SelectionState> shared) {
  OpArgs args;
  args.comm = comm;
  args.rbuf = buf;
  args.bytes = bytes;
  args.root = root;
  auto fset = fset_of(shared, make_ibcast_functionset());
  return std::make_unique<Request>(ctx, std::move(fset), std::move(args), opts,
                                   std::move(shared));
}

std::unique_ptr<Request> iallgather_init(mpi::Ctx& ctx, const mpi::Comm& comm,
                                         const void* sbuf, void* rbuf,
                                         std::size_t block,
                                         const TuningOptions& opts,
                                         std::shared_ptr<SelectionState> shared) {
  OpArgs args;
  args.comm = comm;
  args.sbuf = sbuf;
  args.rbuf = rbuf;
  args.bytes = block;
  auto fset = fset_of(shared, make_iallgather_functionset());
  return std::make_unique<Request>(ctx, std::move(fset), std::move(args), opts,
                                   std::move(shared));
}

std::unique_ptr<Request> iallreduce_init(mpi::Ctx& ctx, const mpi::Comm& comm,
                                         const void* sbuf, void* rbuf,
                                         std::size_t count, nbc::DType dtype,
                                         mpi::ReduceOp op,
                                         const TuningOptions& opts,
                                         std::shared_ptr<SelectionState> shared) {
  OpArgs args;
  args.comm = comm;
  args.sbuf = sbuf;
  args.rbuf = rbuf;
  args.count = count;
  args.dtype = dtype;
  args.op = op;
  auto fset = fset_of(shared, make_iallreduce_functionset());
  return std::make_unique<Request>(ctx, std::move(fset), std::move(args), opts,
                                   std::move(shared));
}

std::unique_ptr<Request> ineighbor_init(mpi::Ctx& ctx, const mpi::Comm& comm,
                                        coll::CartTopo topo, const void* sbuf,
                                        void* rbuf, std::size_t block,
                                        const TuningOptions& opts,
                                        std::shared_ptr<SelectionState> shared) {
  OpArgs args;
  args.comm = comm;
  args.sbuf = sbuf;
  args.rbuf = rbuf;
  args.bytes = block;
  auto fset = fset_of(shared, make_ineighbor_functionset(std::move(topo)));
  return std::make_unique<Request>(ctx, std::move(fset), std::move(args), opts,
                                   std::move(shared));
}

std::unique_ptr<Request> ireduce_init(mpi::Ctx& ctx, const mpi::Comm& comm,
                                      const void* sbuf, void* rbuf,
                                      std::size_t count, nbc::DType dtype,
                                      mpi::ReduceOp op, int root,
                                      const TuningOptions& opts,
                                      std::shared_ptr<SelectionState> shared) {
  OpArgs args;
  args.comm = comm;
  args.sbuf = sbuf;
  args.rbuf = rbuf;
  args.count = count;
  args.dtype = dtype;
  args.op = op;
  args.root = root;
  auto fset = fset_of(shared, make_ireduce_functionset());
  return std::make_unique<Request>(ctx, std::move(fset), std::move(args), opts,
                                   std::move(shared));
}

}  // namespace nbctune::adcl
