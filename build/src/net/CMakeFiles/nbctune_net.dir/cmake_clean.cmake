file(REMOVE_RECURSE
  "CMakeFiles/nbctune_net.dir/machine.cpp.o"
  "CMakeFiles/nbctune_net.dir/machine.cpp.o.d"
  "CMakeFiles/nbctune_net.dir/platform.cpp.o"
  "CMakeFiles/nbctune_net.dir/platform.cpp.o.d"
  "libnbctune_net.a"
  "libnbctune_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbctune_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
