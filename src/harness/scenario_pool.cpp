#include "harness/scenario_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "trace/trace.hpp"

namespace nbctune::harness {

namespace {
constexpr std::size_t kNoError = std::numeric_limits<std::size_t>::max();

std::string describe_error(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}
}  // namespace

struct ScenarioPool::Impl {
  // One deque of task indices per worker, individually locked.  At sweep
  // granularity (every task simulates a full scenario, milliseconds to
  // seconds of host time) the per-pop mutex is noise; what matters is
  // that idle workers can drain a loaded victim.
  struct Shard {
    std::mutex mu;
    std::deque<std::size_t> q;
  };

  Impl(int threads, std::atomic<std::uint64_t>* completed,
       std::atomic<std::uint64_t>* steals,
       std::atomic<PoolObserver*>* observer)
      : shards(static_cast<std::size_t>(threads)),
        completed_ctr(completed),
        steals_ctr(steals),
        observer_ptr(observer) {
    workers.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back([this, w] { worker_main(w); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lk(mu);
      shutdown = true;
    }
    work_cv.notify_all();
    for (std::thread& t : workers) t.join();
  }

  void worker_main(int me) {
    std::uint64_t seen_batch = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu);
        work_cv.wait(lk,
                     [&] { return shutdown || batch_id != seen_batch; });
        if (shutdown) return;
        seen_batch = batch_id;
      }
      drain(me);
    }
  }

  /// Run tasks until neither my shard nor any victim has work.
  void drain(int me) {
    std::size_t idx;
    while (pop_task(me, &idx)) {
      run_task(idx);
    }
  }

  bool pop_task(int me, std::size_t* idx) {
    {
      Shard& own = shards[static_cast<std::size_t>(me)];
      std::lock_guard<std::mutex> lk(own.mu);
      if (!own.q.empty()) {
        *idx = own.q.front();
        own.q.pop_front();
        return true;
      }
    }
    // Steal from the back of the fullest victim: grabs the work farthest
    // from the owner's hot end and keeps contiguous blocks contiguous.
    for (;;) {
      int victim = -1;
      std::size_t victim_size = 0;
      for (std::size_t s = 0; s < shards.size(); ++s) {
        if (static_cast<int>(s) == me) continue;
        std::lock_guard<std::mutex> lk(shards[s].mu);
        if (shards[s].q.size() > victim_size) {
          victim = static_cast<int>(s);
          victim_size = shards[s].q.size();
        }
      }
      if (victim < 0) return false;
      Shard& v = shards[static_cast<std::size_t>(victim)];
      std::lock_guard<std::mutex> lk(v.mu);
      if (v.q.empty()) continue;  // raced: somebody drained it, rescan
      *idx = v.q.back();
      v.q.pop_back();
      steals_ctr->fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }

  /// Task indices still parked in shard deques (observability gauge).
  std::size_t queued() {
    std::size_t n = 0;
    for (Shard& s : shards) {
      std::lock_guard<std::mutex> lk(s.mu);
      n += s.q.size();
    }
    return n;
  }

  void run_task(std::size_t idx) {
    // Route traces finished inside this task into its submission-order
    // slot; the batch adopts slots by index afterwards, so a traced sweep
    // exports byte-identically at any thread count.
    std::vector<trace::FinishedTrace>* prev_staging = nullptr;
    const bool tracing = staged != nullptr;
    if (tracing) prev_staging = trace::Session::set_staging(&(*staged)[idx]);
    try {
      (*fn)(idx);
    } catch (...) {
      const std::exception_ptr ep = std::current_exception();
      if (PoolObserver* o =
              observer_ptr->load(std::memory_order_acquire)) {
        o->on_task_failed(idx, describe_error(ep).c_str());
      }
      std::lock_guard<std::mutex> lk(mu);
      if (idx < error_index) {
        error_index = idx;
        error = ep;
      }
    }
    if (tracing) trace::Session::set_staging(prev_staging);
    completed_ctr->fetch_add(1, std::memory_order_relaxed);
    if (unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(mu);
      done_cv.notify_all();
    }
  }

  void run_batch(std::size_t n, const std::function<void(std::size_t)>& f) {
    std::vector<std::vector<trace::FinishedTrace>> staging;
    const bool tracing = trace::Session::enabled();
    {
      std::lock_guard<std::mutex> lk(mu);
      fn = &f;
      if (tracing) {
        staging.resize(n);
        staged = &staging;
      }
      error = nullptr;
      error_index = kNoError;
      unfinished.store(n, std::memory_order_relaxed);
      // Seed each worker with a contiguous block of indices; remainders
      // spread one extra task over the first workers.
      const std::size_t w = shards.size();
      const std::size_t base = n / w;
      const std::size_t extra = n % w;
      std::size_t next = 0;
      for (std::size_t s = 0; s < w; ++s) {
        std::lock_guard<std::mutex> slk(shards[s].mu);
        const std::size_t take = base + (s < extra ? 1 : 0);
        for (std::size_t i = 0; i < take; ++i) shards[s].q.push_back(next++);
      }
      ++batch_id;
    }
    work_cv.notify_all();
    std::unique_lock<std::mutex> lk(mu);
    done_cv.wait(lk, [&] {
      return unfinished.load(std::memory_order_acquire) == 0;
    });
    fn = nullptr;
    staged = nullptr;
    if (tracing) {
      // Submission-order merge: slot i holds everything task i produced.
      for (auto& slot : staging) {
        for (auto& t : slot) trace::Session::instance().adopt(std::move(t));
      }
    }
    if (error != nullptr) std::rethrow_exception(error);
  }

  std::vector<Shard> shards;
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t>* completed_ctr;
  std::atomic<std::uint64_t>* steals_ctr;
  std::atomic<PoolObserver*>* observer_ptr;
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  const std::function<void(std::size_t)>* fn = nullptr;
  // Per-task trace staging slots of the active batch (null when the trace
  // session is disabled); written under `mu` before the batch starts.
  std::vector<std::vector<trace::FinishedTrace>>* staged = nullptr;
  std::atomic<std::size_t> unfinished{0};
  std::uint64_t batch_id = 0;
  bool shutdown = false;
  std::exception_ptr error;
  std::size_t error_index = kNoError;
};

int ScenarioPool::resolve_threads(int requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("NBCTUNE_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ScenarioPool::ScenarioPool(int threads)
    : impl_(nullptr), threads_(resolve_threads(threads)) {
  if (threads_ > 1) {
    impl_ = new Impl(threads_, &completed_, &steals_, &observer_);
  }
}

ScenarioPool::~ScenarioPool() { delete impl_; }

PoolStats ScenarioPool::stats() const {
  PoolStats s;
  s.tasks_submitted = submitted_.load(std::memory_order_relaxed);
  s.tasks_completed = completed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.queued = impl_ != nullptr ? impl_->queued() : 0;
  s.inflight = s.tasks_submitted >= s.tasks_completed
                   ? static_cast<std::size_t>(s.tasks_submitted -
                                              s.tasks_completed)
                   : 0;
  return s;
}

void ScenarioPool::run_indexed(std::size_t n,
                               const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  submitted_.fetch_add(n, std::memory_order_relaxed);
  if (PoolObserver* o = observer_.load(std::memory_order_acquire)) {
    o->on_batch_begin(n);
  }
  const bool pooled =
      impl_ != nullptr && n > 1 && !busy_.exchange(true, std::memory_order_acquire);
  if (!pooled) {
    // Inline execution: same contract as the pooled path (every task
    // runs; the lowest-index exception propagates afterwards).
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        const std::exception_ptr ep = std::current_exception();
        if (PoolObserver* o = observer_.load(std::memory_order_acquire)) {
          o->on_task_failed(i, describe_error(ep).c_str());
        }
        if (error == nullptr) error = ep;
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (error != nullptr) std::rethrow_exception(error);
    return;
  }
  try {
    impl_->run_batch(n, fn);
  } catch (...) {
    busy_.store(false, std::memory_order_release);
    throw;
  }
  busy_.store(false, std::memory_order_release);
}

}  // namespace nbctune::harness
