#pragma once

// LibNBC-style collective schedules.
//
// A schedule is the per-process recipe of one collective operation: a list
// of rounds, each round a list of actions (send, receive, local copy,
// reduction op).  A "barrier" separates rounds: every action of round k
// must complete locally before round k+1 starts — exactly LibNBC's design
// (Hoefler et al., SC'07), which the paper builds its function-sets on.
//
// Schedules are built once against fixed buffers (persistent-operation
// semantics) and can be executed many times by an nbc::Handle.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mpi/types.hpp"
#include "trace/trace.hpp"

namespace nbctune::nbc {

/// Element type of reduction actions.
enum class DType : std::uint8_t { F64, I32 };

[[nodiscard]] constexpr std::size_t dtype_size(DType t) noexcept {
  return t == DType::F64 ? sizeof(double) : sizeof(int);
}

/// One schedule action.  Buffers are captured as raw pointers: the caller
/// guarantees they outlive the schedule (persistent-request contract).
struct Action {
  enum class Kind : std::uint8_t { Send, Recv, Copy, Op } kind;
  // Send: src = buffer, peer = destination (communicator rank)
  // Recv: dst = buffer, peer = source (communicator rank)
  // Copy: src -> dst, bytes
  // Op:   fold src into dst, count elements of dtype
  const void* src = nullptr;
  void* dst = nullptr;
  std::size_t bytes = 0;  ///< bytes (Send/Recv/Copy) or element count (Op)
  int peer = -1;
  DType dtype = DType::F64;
  mpi::ReduceOp op = mpi::ReduceOp::Sum;
  /// NIC rail this transfer is pinned to (-1 = transport's default
  /// per-peer spreading).  A pinned rail also sub-tags the message, so a
  /// Send's matching Recv must carry the same rail — that is what lets a
  /// striped transfer's same-peer same-tag segments match pairwise even
  /// when different rails reorder their arrivals (topology.hpp).
  int rail = -1;
};

/// A complete schedule: rounds of actions plus owned scratch memory.
class Schedule {
 public:
  Schedule() { rounds_.emplace_back(); }

  // ---- builder interface ----
  void send(const void* buf, std::size_t bytes, int peer) {
    rounds_.back().push_back(
        Action{Action::Kind::Send, buf, nullptr, bytes, peer, {}, {}});
  }
  void recv(void* buf, std::size_t bytes, int peer) {
    rounds_.back().push_back(
        Action{Action::Kind::Recv, nullptr, buf, bytes, peer, {}, {}});
  }
  /// Rail-pinned transfers (multi-NIC striping; see Action::rail).  The
  /// sender and its matching receiver must agree on `rail`.
  void send_rail(const void* buf, std::size_t bytes, int peer, int rail) {
    rounds_.back().push_back(
        Action{Action::Kind::Send, buf, nullptr, bytes, peer, {}, {}, rail});
  }
  void recv_rail(void* buf, std::size_t bytes, int peer, int rail) {
    rounds_.back().push_back(
        Action{Action::Kind::Recv, nullptr, buf, bytes, peer, {}, {}, rail});
  }
  void copy(const void* src, void* dst, std::size_t bytes) {
    rounds_.back().push_back(
        Action{Action::Kind::Copy, src, dst, bytes, -1, {}, {}});
  }
  void op(const void* src, void* dst, std::size_t count, DType dtype,
          mpi::ReduceOp o) {
    rounds_.back().push_back(
        Action{Action::Kind::Op, src, dst, count, -1, dtype, o});
  }
  /// End the current round (local barrier).  Empty rounds are elided.
  void barrier() {
    if (!rounds_.back().empty()) rounds_.emplace_back();
  }

  /// Allocate schedule-owned scratch memory (stable address).
  std::byte* scratch(std::size_t bytes) {
    scratch_.push_back(std::make_unique<std::byte[]>(bytes));
    return scratch_.back().get();
  }

  /// Drop a trailing empty round left by the builder.
  void finalize() {
    if (rounds_.size() > 1 && rounds_.back().empty()) rounds_.pop_back();
  }

  // ---- execution interface ----
  [[nodiscard]] std::size_t num_rounds() const noexcept {
    return rounds_.size();
  }
  [[nodiscard]] const std::vector<Action>& round(std::size_t i) const {
    return rounds_.at(i);
  }

  /// Diagnostics: total messages / bytes this process sends.
  [[nodiscard]] std::size_t total_sends() const noexcept {
    std::size_t n = 0;
    for (const auto& r : rounds_)
      for (const auto& a : r) n += a.kind == Action::Kind::Send;
    return n;
  }
  [[nodiscard]] std::size_t total_send_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& r : rounds_)
      for (const auto& a : r)
        if (a.kind == Action::Kind::Send) n += a.bytes;
    return n;
  }

 private:
  std::vector<std::vector<Action>> rounds_;
  std::vector<std::unique_ptr<std::byte[]>> scratch_;
};

/// Record construction of a finalized schedule.  Every collective builder
/// calls this just before returning; `what` names the algorithm (string
/// literal) and `me` is the building rank's track.  Construction happens
/// outside simulated time, so the instant lands at t = 0.
inline void trace_built(const Schedule& s, const char* what, int me) {
  trace::count(trace::Ctr::CollSchedulesBuilt);
  trace::record(trace::Hist::ScheduleRounds, s.num_rounds());
  if (trace::active()) {
    trace::instant(0.0, me, trace::Cat::Coll, what, "rounds", s.num_rounds(),
                   "sends", s.total_sends());
  }
}

}  // namespace nbctune::nbc
