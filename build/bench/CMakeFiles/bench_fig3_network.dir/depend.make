# Empty dependencies file for bench_fig3_network.
# This may be replaced when dependencies are built.
