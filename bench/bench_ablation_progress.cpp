// Ablation: the CPU-driven progress model is what creates the paper's
// phenomena.  We compare the normal model against an idealized
// "asynchronous progress" configuration (zero-cost progress invoked at
// very fine granularity, approximating a dedicated progress thread):
// under ideal progression, the sensitivity of the execution time to the
// application's progress-call count disappears and the rendezvous
// algorithms overlap fully — confirming the modeling decision in
// DESIGN.md and the paper's premise that single-threaded MPI progression
// is the crux of tuning non-blocking collectives.

#include "bench_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::harness;

int main(int argc, char** argv) {
  bench::Driver drv("progress-ablation", argc, argv);
  harness::banner(
      "Ablation: CPU-driven progress vs idealized async progression — "
      "Ialltoall pairwise, whale, 32 procs, 128 KB");
  MicroScenario s;
  s.platform = net::whale();
  s.nprocs = 32;
  s.op = OpKind::Ialltoall;
  s.bytes = 128 * 1024;
  s.compute_per_iter = 50e-3;
  s.iterations = drv.full() ? 20 : 8;
  s.noise_scale = 0.0;  // systematic comparison: noise off

  // Idealized async progress: a platform variant whose progress engine is
  // free, driven at very fine granularity.
  net::Platform ideal = net::whale();
  ideal.name = "whale+async";
  ideal.progress_cost = 0.0;
  ideal.per_req_poll_cost = 0.0;

  harness::Table t({"progress_calls", "pairwise normal[s]",
                    "pairwise async[s]", "linear normal[s]",
                    "linear async[s]"});
  // Four independent runs per progress-call count; the whole 3x4 grid is
  // one pool batch.
  const std::vector<int> pcs = {1, 5, 100};
  struct Unit {
    bool ideal;
    int pc;
    int fn;  // 2 = pairwise, 0 = linear
  };
  std::vector<Unit> units;
  for (int pc : pcs) {
    units.push_back({false, pc, 2});
    units.push_back({false, pc, 0});
    units.push_back({true, 2000, 2});  // effectively continuous progression
    units.push_back({true, 2000, 0});
  }
  std::vector<double> times(units.size());
  {
    auto timer = drv.timer();
    drv.pool().run_indexed(units.size(), [&](std::size_t i) {
      MicroScenario si = s;
      si.platform = units[i].ideal ? ideal : net::whale();
      si.progress_calls = units[i].pc;
      times[i] = run_fixed(si, units[i].fn).loop_time;
    });
  }
  for (std::size_t p = 0; p < pcs.size(); ++p) {
    const double pw_n = times[p * 4 + 0];
    const double lin_n = times[p * 4 + 1];
    const double pw_a = times[p * 4 + 2];
    const double lin_a = times[p * 4 + 3];
    t.add_row({std::to_string(pcs[p]), harness::Table::num(pw_n),
               harness::Table::num(pw_a), harness::Table::num(lin_n),
               harness::Table::num(lin_a)});
  }
  t.print();
  std::cout << "\nExpected: the async columns are flat (no dependence on "
               "the\napplication's progress-call count) and near the "
               "compute floor of "
            << harness::Table::num(s.iterations * s.compute_per_iter)
            << " s;\nthe normal columns improve with more progress calls.\n";
  return 0;
}
