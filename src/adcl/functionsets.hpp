#pragma once

// The built-in function-sets (paper §III-E):
//
//   Ialltoall  attribute "algorithm": linear, dissemination (Bruck),
//              pairwise exchange — 3 functions; optionally extended with
//              blocking counterparts (attribute "blocking"), reproducing
//              the modified function-set of §IV-B
//   Ibcast     attributes "fanout" (0 = linear, 1 = chain, 2..5 = k-ary,
//              99 = binomial) x "segsize" (32/64/128 KB) — the paper's
//              7 x 3 = 21 functions
//   Iallgather attribute "algorithm": linear, ring, recursive doubling
//   Ireduce    attributes "algorithm" (binomial, chain) x "segsize"
//
// All are factories so applications can also assemble their own sets via
// the low-level FunctionSet interface.

#include <memory>
#include <vector>

#include "adcl/function.hpp"
#include "coll/ineighbor.hpp"

namespace nbctune::adcl {

/// Algorithm attribute values of the Ialltoall set.
inline constexpr int kA2aLinear = 0;
inline constexpr int kA2aBruck = 1;
inline constexpr int kA2aPairwise = 2;

/// Fan-out attribute value denoting the binomial tree.
inline constexpr int kBcastBinomialAttr = 99;

std::shared_ptr<FunctionSet> make_ialltoall_functionset(
    bool include_blocking = false);

/// `include_two_level` extends the paper's 21-member set with an extra
/// "hier" attribute and the hierarchy-aware "2lvl-binomial" member
/// (binomial over node leaders + intra-node fan-out; coll/hierarchical).
std::shared_ptr<FunctionSet> make_ibcast_functionset(
    bool include_two_level = false);

std::shared_ptr<FunctionSet> make_iallgather_functionset();

std::shared_ptr<FunctionSet> make_ireduce_functionset();

/// Allreduce: recursive doubling (ring fallback off powers of two),
/// binomial reduce+broadcast, ring reduce-scatter+allgather.
/// `include_two_level` adds "2lvl-reduce-bcast" (intra-node reduce to the
/// node leader, leader-level reduce+broadcast, intra-node result fan-out).
std::shared_ptr<FunctionSet> make_iallreduce_functionset(
    bool include_two_level = false);

/// Scatter across the root's NIC rails (multi-rail platforms; attribute
/// "mapping"): "linear" uses the transport's default per-peer spread,
/// "fan-rail0" pins every transfer to rail 0 (the single-HCA choke),
/// "rail" round-robins whole blocks across `nrails`, "striped" splits
/// each block into per-rail stripes (Topology::plan_stripes).
std::shared_ptr<FunctionSet> make_iscatter_functionset(int nrails);

/// Cartesian neighborhood (halo) exchange on `topo` — ADCL's original
/// operation family (paper §III-A).  The topology must match the
/// communicator the request is bound to.
std::shared_ptr<FunctionSet> make_ineighbor_functionset(coll::CartTopo topo);

/// Ialltoall set crossed with a "progress" attribute: every algorithm is
/// offered at each candidate progress-call count, so the tuner optimizes
/// the number of progress calls together with the algorithm — the
/// opportunity the paper points out in §III-C.  Applications read the
/// tuned count through Request::recommended_progress_calls().
std::shared_ptr<FunctionSet> make_ialltoall_progress_functionset(
    std::vector<int> progress_counts, bool include_blocking = false);

}  // namespace nbctune::adcl
