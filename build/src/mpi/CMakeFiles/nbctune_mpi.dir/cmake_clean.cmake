file(REMOVE_RECURSE
  "CMakeFiles/nbctune_mpi.dir/collectives.cpp.o"
  "CMakeFiles/nbctune_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/nbctune_mpi.dir/world.cpp.o"
  "CMakeFiles/nbctune_mpi.dir/world.cpp.o.d"
  "libnbctune_mpi.a"
  "libnbctune_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbctune_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
