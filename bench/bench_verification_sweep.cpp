// §IV-A summary statistic: across a sweep of verification runs, in what
// fraction of the test cases does ADCL make the "correct" decision
// (within 5% of the best fixed implementation)?
//
// Paper: 90% correct for the brute-force search, 92% for the attribute
// heuristic, over 324 verification runs.  The suboptimal cases trace to
// measurement outliers, which is why the sweep runs with the noise model
// enabled.

#include "bench_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::harness;

int main(int argc, char** argv) {
  bench::Driver drv("verification-sweep", argc, argv);
  harness::banner("Verification-run sweep: fraction of correct decisions");
  int total = 0, bf_ok = 0, heur_ok = 0;
  harness::Table t({"op", "platform", "nprocs", "bytes", "pc", "best_fixed",
                    "brute-force", "heuristic"});

  struct P {
    net::Platform platform;
    std::vector<int> nprocs;
  };
  const std::vector<P> platforms = {
      {net::whale(), {32, drv.full() ? 128 : 64}},
      {net::crill(), {32, drv.full() ? 128 : 96}},
  };
  const std::vector<std::size_t> a2a_sizes = {1024, 128 * 1024};
  const std::vector<std::size_t> bcast_sizes = {1024,
                                                drv.full() ? 2u * 1024 * 1024
                                                           : 256u * 1024};
  const std::vector<int> pcs = drv.full() ? std::vector<int>{1, 5, 100}
                                          : std::vector<int>{5, 100};
  const int tests = 3;

  // Enumerate the sweep's scenarios up front, in the same nested-loop
  // order as before; every scenario (with its own seed, Engine and Rng)
  // then runs as one pool task.  Rows are emitted in submission order, so
  // the table is byte-identical at any --threads value.
  std::vector<MicroScenario> scenarios;
  for (const P& p : platforms) {
    for (int np : p.nprocs) {
      for (OpKind op : {OpKind::Ialltoall, OpKind::Ibcast}) {
        const auto& sizes = op == OpKind::Ialltoall ? a2a_sizes : bcast_sizes;
        for (std::size_t bytes : sizes) {
          for (int pc : pcs) {
            MicroScenario s;
            s.platform = p.platform;
            s.nprocs = np;
            s.op = op;
            s.bytes = bytes;
            s.compute_per_iter =
                op == OpKind::Ialltoall ? 10e-3 : 5e-3;
            s.progress_calls = pc;
            s.noise_scale = 1.0;  // exercise the statistical filtering
            const int nfun =
                static_cast<int>(scenario_functionset(s)->size());
            s.iterations = nfun * tests + 4;
            s.seed = std::hash<std::string>{}(p.platform.name) ^ np ^
                     (bytes << 4) ^ (pc << 16);
            scenarios.push_back(s);
          }
        }
      }
    }
  }

  std::vector<VerificationRun> runs(scenarios.size());
  {
    auto timer = drv.timer();
    drv.pool().run_indexed(scenarios.size(), [&](std::size_t i) {
      runs[i] = run_verification(scenarios[i], tests);
    });
  }

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const MicroScenario& s = scenarios[i];
    const VerificationRun& v = runs[i];
    ++total;
    bf_ok += v.bruteforce_correct;
    heur_ok += v.heuristic_correct;
    t.add_row({op_name(s.op), s.platform.name, std::to_string(s.nprocs),
               std::to_string(s.bytes), std::to_string(s.progress_calls),
               v.fixed[v.best_fixed].impl,
               v.adcl_bruteforce.impl +
                   std::string(v.bruteforce_correct ? " [ok]" : " [MISS]"),
               v.adcl_heuristic.impl +
                   std::string(v.heuristic_correct ? " [ok]" : " [MISS]")});
  }
  t.print();
  std::cout << "\nCorrect decisions over " << total << " verification runs:"
            << "\n  brute-force search : " << bf_ok << "/" << total << " = "
            << harness::Table::num(100.0 * bf_ok / total, 1) << "%"
            << "\n  attribute heuristic: " << heur_ok << "/" << total << " = "
            << harness::Table::num(100.0 * heur_ok / total, 1) << "%"
            << "\n(paper: 90% / 92% over 324 runs)\n";
  return 0;
}
