#include "adcl/request.hpp"

#include <algorithm>
#include <stdexcept>

#include "adcl/history.hpp"
#include "trace/trace.hpp"

namespace nbctune::adcl {

Request::Request(mpi::Ctx& ctx, std::shared_ptr<const FunctionSet> fset,
                 OpArgs args, TuningOptions opts,
                 std::shared_ptr<SelectionState> shared)
    : ctx_(ctx),
      fset_(std::move(fset)),
      args_(std::move(args)),
      opts_(opts),
      state_(std::move(shared)),
      tag_(ctx.alloc_nbc_tag()) {
  if (!args_.comm.valid()) throw std::invalid_argument("Request: bad comm");
  if (!state_) {
    state_ = std::make_shared<SelectionState>(fset_, opts_);
    consult_history();
  } else if (&state_->function_set() != fset_.get()) {
    throw std::invalid_argument(
        "Request: shared selection belongs to a different function-set");
  }
}

Request::~Request() = default;

void Request::consult_history() {
  if (opts_.history == nullptr) return;
  const std::string key = history_key(
      ctx_.world().platform().name, fset_->name(), args_.comm.size(),
      args_.bytes != 0 ? args_.bytes : args_.count, opts_.history_extra);
  state_->set_history_key(key);
  if (auto winner = opts_.history->get(key)) {
    const int idx = fset_->find_by_name(*winner);
    if (idx >= 0) state_->force_winner(idx);
  }
}

const nbc::Schedule& Request::schedule_for(int func) {
  auto it = schedules_.find(func);
  if (it == schedules_.end()) {
    it = schedules_
             .emplace(func, fset_->function(func).build(ctx_, args_))
             .first;
  }
  return it->second;
}

nbc::Handle* Request::init_begin() {
  if (active_) throw std::logic_error("Request::init while active");
  const int func = state_->current();
  const nbc::Schedule& sched = schedule_for(func);
  if (!handle_) {
    handle_ = std::make_unique<nbc::Handle>(ctx_, args_.comm, &sched, tag_);
    bound_function_ = func;
  } else if (bound_function_ != func) {
    handle_->rebind(&sched);
    bound_function_ = func;
  }
  if (opts_.op_timeout > 0.0) {
    // Under lossy fault plans: cancel-on-timeout with function 0 as the
    // designated fallback implementation.  Re-armed every init since a
    // rebind may have swapped the schedule out from under the handle.
    handle_->set_recovery(
        {opts_.op_timeout, &schedule_for(0), opts_.max_attempts});
  }
  active_ = true;
  init_time_ = ctx_.now();
  return handle_.get();
}

void Request::init() {
  init_begin();
  handle_->start();
  if (bound_blocking()) {
    // Blocking member of the function-set: no completion phase (the wait
    // function pointer is conceptually NULL, paper §IV-B).
    handle_->wait();
  }
}

void Request::wait_finish() {
  active_ = false;
  trace::record(trace::Hist::ProgressPerOp, progress_calls_);
  progress_calls_ = 0;
  if (!timer_driven_) {
    state_->record(ctx_, args_.comm, ctx_.now() - init_time_);
  }
}

void Request::wait() {
  if (!active_) throw std::logic_error("Request::wait without init");
  handle_->wait();
  wait_finish();
}

void Request::progress() {
  note_progress();
  ctx_.progress();
}

int Request::recommended_progress_calls(int fallback) const {
  const int attr = fset_->attributes().index_of("progress");
  if (attr < 0) return fallback;
  return fset_->function(state_->current()).attrs.at(attr);
}

void Request::start() {
  init();
  wait();
}

void Request::abandon() {
  if (handle_) handle_->abort();
  active_ = false;
  progress_calls_ = 0;
}

void Request::recover(const mpi::Comm& comm, int resume_iteration) {
  // Abandon the in-flight execution: it can never complete against the
  // pre-shrink membership.
  if (handle_) handle_->abort();
  active_ = false;
  progress_calls_ = 0;
  args_.comm = comm;
  // Cached schedules address dead peers; dropping them forces a rebuild
  // against the survivor communicator at the next init (hierarchical
  // builders re-elect node leaders from the new membership).  The bound
  // schedule pointer in the handle dangles until then, so force a rebind.
  schedules_.clear();
  bound_function_ = -1;
  tag_ = ctx_.alloc_nbc_tag();
  if (handle_) handle_->rebind_comm(comm, tag_);
  if (opts_.history != nullptr) {
    // The group size changed: decisions record under the new key.
    state_->set_history_key(history_key(
        ctx_.world().platform().name, fset_->name(), args_.comm.size(),
        args_.bytes != 0 ? args_.bytes : args_.count, opts_.history_extra));
  }
  state_->reset_for_shrink(ctx_, resume_iteration);
  trace::count(trace::Ctr::NbcRebuilds);
  if (trace::active()) {
    trace::instant(ctx_.now(), ctx_.world_rank(), trace::Cat::Nbc,
                   "nbc.rebuild", "size",
                   static_cast<std::uint64_t>(comm.size()), "tag",
                   static_cast<std::uint64_t>(tag_));
  }
}

// ------------------------------------------------------------------ Timer

Timer::Timer(mpi::Ctx& ctx, std::vector<Request*> requests)
    : ctx_(ctx), requests_(std::move(requests)) {
  if (requests_.empty()) throw std::invalid_argument("Timer: no requests");
  for (Request* r : requests_) {
    if (r == nullptr) throw std::invalid_argument("Timer: null request");
    r->timer_driven_ = true;
    auto s = r->selection_ptr();
    if (std::find(states_.begin(), states_.end(), s) == states_.end()) {
      states_.push_back(std::move(s));
    }
  }
}

Timer::~Timer() {
  for (Request* r : requests_) r->timer_driven_ = false;
}

void Timer::start() {
  if (running_) throw std::logic_error("Timer already running");
  running_ = true;
  t0_ = ctx_.now();
}

void Timer::stop() {
  if (!running_) throw std::logic_error("Timer not running");
  running_ = false;
  const double dt = ctx_.now() - t0_;
  for (const auto& s : states_) {
    s->record(ctx_, requests_.front()->args().comm, dt);
  }
}

}  // namespace nbctune::adcl
