// Extended tuning-layer features: allreduce and neighborhood requests,
// the co-tuned progress-call attribute (paper §III-C), the 2^k factorial
// policy end-to-end through a Request, and placement options.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "adcl/adcl.hpp"
#include "mpi/world.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"

using namespace nbctune;
namespace t = nbctune::testing;

namespace {
const net::Platform kIb = net::whale();
}

TEST(AllreduceRequest, TunesAndStaysCorrect) {
  const int n = 8;
  const std::size_t count = 500;
  int bad = 0;
  std::string winner;
  t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int me = ctx.world_rank();
    std::vector<double> in(count), out(count);
    adcl::TuningOptions opts;
    opts.tests_per_function = 2;
    auto req = adcl::iallreduce_init(ctx, comm, in.data(), out.data(), count,
                                     nbc::DType::F64, mpi::ReduceOp::Sum,
                                     opts);
    for (int it = 0; it < 9; ++it) {  // 3 algorithms x 2 tests + extra
      for (std::size_t i = 0; i < count; ++i) in[i] = me + it + i * 0.5;
      req->init();
      ctx.compute(1e-3);
      req->progress();
      req->wait();
      for (std::size_t i = 0; i < count; ++i) {
        const double expect =
            n * (n - 1) / 2.0 + n * (it + i * 0.5);
        if (out[i] != expect) ++bad;
      }
    }
    if (me == 0 && req->selection().decided()) {
      winner = req->current_function().name;
    }
  });
  EXPECT_EQ(bad, 0);
  EXPECT_FALSE(winner.empty());
}

TEST(NeighborRequest, TunesHaloExchange) {
  coll::CartTopo topo{{4, 4}, true};
  const std::size_t block = 2048;
  std::string winner;
  int bad = 0;
  t::run_world(kIb, topo.size(), [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int me = ctx.world_rank();
    const int slots = 2 * topo.ndims();
    std::vector<std::byte> sbuf(slots * block), rbuf(slots * block);
    for (int sl = 0; sl < slots; ++sl)
      for (std::size_t i = 0; i < block; ++i)
        sbuf[sl * block + i] = t::pattern_byte(me * 8 + sl, i);
    adcl::TuningOptions opts;
    opts.tests_per_function = 2;
    auto req = adcl::ineighbor_init(ctx, comm, topo, sbuf.data(), rbuf.data(),
                                    block, opts);
    for (int it = 0; it < 8; ++it) {
      req->init();
      ctx.compute(5e-4);
      req->progress();
      req->wait();
    }
    // Spot-check the final iteration's low-x halo.
    const int nbr = coll::cart_neighbor(topo, me, 0, -1);
    for (std::size_t i = 0; i < block; ++i) {
      if (rbuf[i] != t::pattern_byte(nbr * 8 + 1, i)) ++bad;
    }
    if (me == 0 && req->selection().decided()) {
      winner = req->current_function().name;
    }
  });
  EXPECT_EQ(bad, 0);
  EXPECT_FALSE(winner.empty());
}

TEST(NeighborRequest, TopologyMismatchThrows) {
  t::run_world(kIb, 4, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    coll::CartTopo wrong{{3, 3}, true};  // 9 != 4
    auto req = adcl::ineighbor_init(ctx, comm, wrong, nullptr, nullptr, 64);
    EXPECT_THROW(req->init(), std::invalid_argument);
  });
}

TEST(ProgressTuning, FunctionSetShape) {
  auto fs = adcl::make_ialltoall_progress_functionset({1, 5, 100});
  EXPECT_EQ(fs->size(), 9u);  // 3 algorithms x 3 counts
  EXPECT_EQ(fs->attributes().index_of("progress"), 1);
  EXPECT_GE(fs->find_by_name("pairwise/pc5"), 0);
  auto fsb = adcl::make_ialltoall_progress_functionset({1, 5}, true);
  EXPECT_EQ(fsb->size(), 12u);  // 6 functions x 2 counts
  EXPECT_THROW(adcl::make_ialltoall_progress_functionset({}),
               std::invalid_argument);
}

TEST(ProgressTuning, RecommendationFollowsSelection) {
  // The application reads the tuned progress count each iteration; during
  // learning it varies with the candidate, afterwards it is the winner's.
  std::set<int> seen;
  int final_pc = -1;
  bool decided = false;
  t::run_world(kIb, 8, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    adcl::OpArgs args;
    args.comm = comm;
    args.bytes = 64 * 1024;
    adcl::TuningOptions opts;
    opts.tests_per_function = 1;
    auto req = adcl::request_create(
        ctx, adcl::make_ialltoall_progress_functionset({1, 8}), args, opts);
    for (int it = 0; it < 8; ++it) {  // 6 combos x 1 test + extra
      const int pc = req->recommended_progress_calls(3);
      if (ctx.world_rank() == 0) seen.insert(pc);
      req->init();
      for (int p = 0; p < pc; ++p) {
        ctx.compute(2e-3 / pc);
        req->progress();
      }
      req->wait();
    }
    if (ctx.world_rank() == 0) {
      decided = req->selection().decided();
      final_pc = req->recommended_progress_calls(3);
    }
  });
  EXPECT_TRUE(decided);
  // Both candidate counts were exercised during learning...
  EXPECT_TRUE(seen.count(1) == 1 && seen.count(8) == 1) << seen.size();
  // ... and the recommendation settled on one of them.
  EXPECT_TRUE(final_pc == 1 || final_pc == 8);
}

TEST(ProgressTuning, FallbackWithoutAttribute) {
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    auto req = adcl::ialltoall_init(ctx, comm, nullptr, nullptr, 64);
    EXPECT_EQ(req->recommended_progress_calls(7), 7);
  });
}

TEST(TwoKFactorial, EndToEndThroughRequest) {
  // The 2^k policy drives a real tuned Ibcast: corners of the
  // fanout x segsize space first, then refinement; decision lands on a
  // valid function and data keeps flowing.
  std::string winner;
  int iterations = 0;
  t::run_world(kIb, 16, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    std::vector<std::byte> buf(256 * 1024);
    adcl::TuningOptions opts;
    opts.policy = adcl::PolicyKind::TwoKFactorial;
    opts.tests_per_function = 1;
    auto req = adcl::ibcast_init(ctx, comm, buf.data(), buf.size(), 0, opts);
    for (int it = 0; it < 24; ++it) {
      req->init();
      ctx.compute(1e-3);
      req->progress();
      req->wait();
      if (req->selection().decided() && iterations == 0 &&
          ctx.world_rank() == 0) {
        iterations = it + 1;
      }
    }
    if (ctx.world_rank() == 0 && req->selection().decided()) {
      winner = req->current_function().name;
    }
  });
  EXPECT_FALSE(winner.empty());
  // Far fewer measurements than the 21-function brute force.
  EXPECT_LT(iterations, 21);
  EXPECT_GT(iterations, 0);
}

TEST(Placement, RoundRobinSpreadsRanks) {
  sim::Engine engine(1);
  net::Machine machine(net::whale());
  mpi::WorldOptions opts;
  opts.nprocs = 16;
  opts.placement = mpi::WorldOptions::Placement::RoundRobin;
  mpi::World world(engine, machine, opts);
  // Block placement puts ranks 0..7 on node 0; round robin spreads them.
  EXPECT_EQ(world.node_of(0), 0);
  EXPECT_EQ(world.node_of(1), 1);
  EXPECT_EQ(world.node_of(15), 15);
}

TEST(Placement, AffectsCommunicationCost) {
  auto run = [](mpi::WorldOptions::Placement placement) {
    sim::Engine engine(1);
    net::Machine machine(net::whale());
    mpi::WorldOptions opts;
    opts.nprocs = 8;
    opts.noise_scale = 0;
    opts.placement = placement;
    mpi::World world(engine, machine, opts);
    double elapsed = 0;
    world.launch([&](mpi::Ctx& ctx) {
      auto comm = ctx.world().comm_world();
      std::vector<std::byte> buf(1024);
      if (ctx.world_rank() == 0) {
        const double t0 = ctx.now();
        ctx.send(comm, buf.data(), buf.size(), 1, 0);
        ctx.recv(comm, buf.data(), buf.size(), 1, 0);
        elapsed = ctx.now() - t0;
      } else if (ctx.world_rank() == 1) {
        ctx.recv(comm, buf.data(), buf.size(), 0, 0);
        ctx.send(comm, buf.data(), buf.size(), 0, 0);
      }
    });
    engine.run();
    return elapsed;
  };
  // Ranks 0 and 1 share a node under block placement (cheap shared
  // memory) but sit on different nodes under round robin (network).
  EXPECT_LT(run(mpi::WorldOptions::Placement::Block),
            run(mpi::WorldOptions::Placement::RoundRobin));
}
