#include "analyze/regress.hpp"

#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "analyze/json_min.hpp"

namespace nbctune::analyze {

namespace {

using jsonmin::Value;

constexpr const char* kSchemaPrefix = "nbctune-report-";

constexpr const char* kBlameCats[] = {"compute",     "progress",
                                      "wire",        "late_sender",
                                      "missing_progress", "other"};

double num_at(const Value& obj, const char* key, double fallback = 0.0) {
  const Value* v = obj.get(key);
  return v != nullptr ? v->as_num(fallback) : fallback;
}

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string fmt_us(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  return buf;
}

ScenarioDigest digest_scenario(const Value& s) {
  ScenarioDigest d;
  if (const Value* label = s.get("label");
      label != nullptr && label->kind == Value::Kind::Str) {
    d.label = label->str;
  }
  d.ops = static_cast<std::uint64_t>(num_at(s, "ops_completed"));
  d.mean_op = num_at(s, "mean_op_ns") * 1e-9;
  if (const Value* blame = s.get("blame_ns");
      blame != nullptr && blame->kind == Value::Kind::Obj) {
    const double total = num_at(*blame, "total");
    for (const char* cat : kBlameCats) {
      d.blame_share[cat] = total > 0.0 ? num_at(*blame, cat) / total : 0.0;
    }
  }
  if (const Value* ranks = s.get("ranks");
      ranks != nullptr && ranks->kind == Value::Kind::Arr &&
      !ranks->arr->empty()) {
    double sum = 0.0;
    for (const Value& r : *ranks->arr) sum += num_at(r, "overlap_bp") * 1e-4;
    d.mean_overlap = sum / static_cast<double>(ranks->arr->size());
  }
  if (const Value* stats = s.get("stats");
      stats != nullptr && stats->kind == Value::Kind::Obj) {
    if (const Value* met = stats->get("min_reps_met");
        met != nullptr && met->kind == Value::Kind::Bool) {
      d.min_reps_met = met->b;
    }
    if (const Value* op = stats->get("op");
        op != nullptr && op->kind == Value::Kind::Obj) {
      d.stat_n = static_cast<std::uint64_t>(num_at(*op, "n"));
      d.median_op = num_at(*op, "median_ns") * 1e-9;
      d.ci_lo = num_at(*op, "lo_ns") * 1e-9;
      d.ci_hi = num_at(*op, "hi_ns") * 1e-9;
    }
  }
  if (const Value* adcl = s.get("adcl");
      adcl != nullptr && adcl->kind == Value::Kind::Obj) {
    d.has_adcl = true;
    d.adcl_winner = static_cast<int>(num_at(*adcl, "winner", -1));
    if (const Value* el = adcl->get("eliminations");
        el != nullptr && el->kind == Value::Kind::Arr) {
      d.adcl_eliminations = el->arr->size();
    }
    if (const Value* pr = adcl->get("prunes");
        pr != nullptr && pr->kind == Value::Kind::Arr) {
      d.adcl_prunes = pr->arr->size();
    }
  }
  return d;
}

}  // namespace

ReportDigest read_report_json(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const Value root = jsonmin::parse(buf.str());
  ReportDigest d;
  const Value* schema = root.get("schema");
  if (schema == nullptr || schema->kind != Value::Kind::Str ||
      schema->str.rfind(kSchemaPrefix, 0) != 0) {
    throw std::runtime_error("not an nbctune report (missing/foreign schema)");
  }
  d.schema = schema->str;
  if (const Value* scenarios = root.get("scenarios");
      scenarios != nullptr && scenarios->kind == Value::Kind::Arr) {
    for (const Value& s : *scenarios->arr) {
      if (s.kind == Value::Kind::Obj) d.scenarios.push_back(digest_scenario(s));
    }
  }
  if (const Value* guidelines = root.get("guidelines");
      guidelines != nullptr && guidelines->kind == Value::Kind::Arr) {
    for (const Value& g : *guidelines->arr) {
      if (g.kind != Value::Kind::Obj) continue;
      GuidelineDigest gd;
      if (const Value* id = g.get("id");
          id != nullptr && id->kind == Value::Kind::Str) {
        gd.id = id->str;
      }
      gd.checked = static_cast<std::uint64_t>(num_at(g, "checked"));
      gd.passed = static_cast<std::uint64_t>(num_at(g, "passed"));
      if (const Value* v = g.get("violations");
          v != nullptr && v->kind == Value::Kind::Arr) {
        gd.violations = v->arr->size();
      }
      d.guidelines.push_back(std::move(gd));
    }
  }
  return d;
}

bool RegressTolerances::set(const std::string& key, const std::string& value) {
  double parsed = 0.0;
  try {
    std::size_t used = 0;
    parsed = std::stod(value, &used);
    if (used != value.size()) return false;
  } catch (const std::exception&) {
    return false;
  }
  if (key == "blame_share") {
    blame_share = parsed;
  } else if (key == "op_rel") {
    op_rel = parsed;
  } else if (key == "overlap") {
    overlap = parsed;
  } else if (key == "ci_separation") {
    ci_separation = parsed != 0.0;
  } else {
    return false;
  }
  return true;
}

void read_tolerances(std::istream& is, RegressTolerances& tol) {
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string key, value;
    if (!(ls >> key)) continue;  // blank / comment-only line
    if (!(ls >> value) || !tol.set(key, value)) {
      throw std::runtime_error("tolerance config line " +
                               std::to_string(lineno) + ": bad entry '" +
                               line + "'");
    }
  }
}

namespace {

const ScenarioDigest* find_scenario(const ReportDigest& r,
                                    const std::string& label) {
  for (const ScenarioDigest& s : r.scenarios) {
    if (s.label == label) return &s;
  }
  return nullptr;
}

const GuidelineDigest* find_guideline(const ReportDigest& r,
                                      const std::string& id) {
  for (const GuidelineDigest& g : r.guidelines) {
    if (g.id == id) return &g;
  }
  return nullptr;
}

void compare_scenario(const ScenarioDigest& o, const ScenarioDigest& n,
                      const RegressTolerances& tol, RegressResult& res) {
  auto flag = [&](const std::string& what) {
    res.violations.push_back({o.label, what});
  };
  for (const auto& [cat, old_share] : o.blame_share) {
    const auto it = n.blame_share.find(cat);
    const double new_share = it != n.blame_share.end() ? it->second : 0.0;
    const double drift = std::fabs(new_share - old_share);
    if (drift > tol.blame_share) {
      flag("blame share '" + cat + "' drifted " + fmt(old_share) + " -> " +
           fmt(new_share) + " (|d|=" + fmt(drift) +
           " > blame_share=" + fmt(tol.blame_share) + ")");
    }
  }
  if (std::fabs(n.mean_overlap - o.mean_overlap) > tol.overlap) {
    flag("mean overlap drifted " + fmt(o.mean_overlap) + " -> " +
         fmt(n.mean_overlap) + " (> overlap=" + fmt(tol.overlap) + ")");
  }
  if (o.mean_op > 0.0) {
    const double rel = std::fabs(n.mean_op - o.mean_op) / o.mean_op;
    if (rel > tol.op_rel) {
      // A relative drift of the mean is only conclusive when the median
      // CIs are disjoint (or CI gating is off / stats are unavailable):
      // overlapping CIs mean the two runs are statistically compatible.
      const bool have_ci =
          tol.ci_separation && o.stat_n > 0 && n.stat_n > 0;
      const bool disjoint = n.ci_lo > o.ci_hi || n.ci_hi < o.ci_lo;
      if (!have_ci || disjoint) {
        flag("mean op time drifted " + fmt_us(o.mean_op) + " -> " +
             fmt_us(n.mean_op) + " (rel=" + fmt(rel) +
             " > op_rel=" + fmt(tol.op_rel) +
             (have_ci ? ", CIs disjoint)" : ", no CI to arbitrate)"));
      }
    }
  }
  if (o.has_adcl != n.has_adcl) {
    flag(std::string("adcl audit ") + (o.has_adcl ? "vanished" : "appeared"));
  } else if (o.has_adcl && o.adcl_winner != n.adcl_winner) {
    flag("adcl winner flipped: func " + std::to_string(o.adcl_winner) +
         " -> func " + std::to_string(n.adcl_winner));
  }
}

}  // namespace

RegressResult regress(const ReportDigest& old_r, const ReportDigest& new_r,
                      const RegressTolerances& tol) {
  RegressResult res;
  for (const ScenarioDigest& o : old_r.scenarios) {
    const ScenarioDigest* n = find_scenario(new_r, o.label);
    if (n == nullptr) {
      res.violations.push_back({o.label, "scenario missing from new report"});
      continue;
    }
    ++res.scenarios_compared;
    compare_scenario(o, *n, tol, res);
  }
  for (const ScenarioDigest& n : new_r.scenarios) {
    if (find_scenario(old_r, n.label) == nullptr) {
      res.violations.push_back({n.label, "scenario absent from old report"});
    }
  }
  for (const GuidelineDigest& og : old_r.guidelines) {
    const GuidelineDigest* ng = find_guideline(new_r, og.id);
    if (ng == nullptr) {
      res.violations.push_back(
          {"", "guideline " + og.id + " vanished from new report"});
      continue;
    }
    ++res.guidelines_compared;
    if (!og.failing() && ng->failing()) {
      res.violations.push_back(
          {"", "guideline " + og.id + " regressed: " +
                   std::to_string(ng->violations) + " new violation(s)"});
    }
    if (og.checked > 0 && ng->checked == 0) {
      res.violations.push_back(
          {"", "guideline " + og.id + " lost all checked pairs (" +
                   std::to_string(og.checked) + " -> 0)"});
    }
  }
  return res;
}

void write_regress(std::ostream& os, const RegressResult& r,
                   const RegressTolerances& tol) {
  os << "== regression gate ==\n";
  os << "  tolerances: blame_share " << fmt(tol.blame_share) << ", op_rel "
     << fmt(tol.op_rel) << ", overlap " << fmt(tol.overlap)
     << ", ci_separation " << (tol.ci_separation ? "on" : "off") << "\n";
  os << "  compared: " << r.scenarios_compared << " scenario(s), "
     << r.guidelines_compared << " guideline(s)\n";
  if (r.ok()) {
    os << "  OK: no drift beyond tolerance\n";
    return;
  }
  os << "  REGRESSION: " << r.violations.size() << " violation(s)\n";
  for (const RegressViolation& v : r.violations) {
    os << "    ";
    if (!v.scenario.empty()) os << "[" << v.scenario << "] ";
    os << v.what << "\n";
  }
}

}  // namespace nbctune::analyze
