// Unit tests for platform presets and the machine topology model.

#include <gtest/gtest.h>

#include "net/machine.hpp"
#include "net/platform.hpp"

namespace net = nbctune::net;

TEST(Platform, PresetsAreSane) {
  for (const auto* name : {"crill", "whale", "whale-tcp", "bgp"}) {
    net::Platform p = net::platform_by_name(name);
    EXPECT_GT(p.nodes, 0) << name;
    EXPECT_GT(p.cores_per_node, 0) << name;
    EXPECT_GT(p.nics_per_node, 0) << name;
    EXPECT_GT(p.inter.latency, 0.0) << name;
    EXPECT_GT(p.inter.byte_time, 0.0) << name;
    EXPECT_GT(p.intra.byte_time, 0.0) << name;
    EXPECT_GT(p.eager_limit, 0u) << name;
    EXPECT_GT(p.copy_byte_time, 0.0) << name;
    EXPECT_GT(p.flops_per_sec, 0.0) << name;
    // Intra-node must be faster than the network in both latency and bw.
    EXPECT_LT(p.intra.latency, p.inter.latency) << name;
    EXPECT_LT(p.intra.byte_time, p.inter.byte_time) << name;
  }
}

TEST(Platform, UnknownNameThrows) {
  EXPECT_THROW(net::platform_by_name("quantum9000"), std::invalid_argument);
}

TEST(Platform, PaperScales) {
  EXPECT_EQ(net::crill().total_cores(), 768);   // 16 x 48
  EXPECT_EQ(net::whale().total_cores(), 512);   // 64 x 8
  EXPECT_EQ(net::bluegene_p().total_cores(), 1024);
  EXPECT_EQ(net::crill().nics_per_node, 2);
  EXPECT_EQ(net::whale().nics_per_node, 1);
}

TEST(Platform, TcpIsCpuDriven) {
  EXPECT_FALSE(net::whale().cpu_driven_bulk);
  EXPECT_TRUE(net::whale_tcp().cpu_driven_bulk);
  // GigE: orders of magnitude slower per byte, much higher latency.
  EXPECT_GT(net::whale_tcp().inter.byte_time, 5 * net::whale().inter.byte_time);
  EXPECT_GT(net::whale_tcp().inter.latency, 5 * net::whale().inter.latency);
}

TEST(Machine, TorusHops) {
  net::Machine m(net::bluegene_p());
  // 8 x 8 x 4 torus.
  EXPECT_EQ(m.torus_hops(0, 0), 0);
  EXPECT_EQ(m.torus_hops(0, 1), 1);     // +1 in x
  EXPECT_EQ(m.torus_hops(0, 7), 1);     // wraparound in x
  EXPECT_EQ(m.torus_hops(0, 8), 1);     // +1 in y
  EXPECT_EQ(m.torus_hops(0, 64), 1);    // +1 in z
  EXPECT_EQ(m.torus_hops(0, 4 + 8 * 4 + 64 * 2), 4 + 4 + 2);  // farthest
}

TEST(Machine, NonTorusHasNoHops) {
  net::Machine m(net::whale());
  EXPECT_EQ(m.torus_hops(0, 63), 0);
  EXPECT_DOUBLE_EQ(m.latency(0, 1), net::whale().inter.latency);
  EXPECT_DOUBLE_EQ(m.latency(3, 3), net::whale().intra.latency);
}

TEST(Machine, TorusLatencyGrowsWithDistance) {
  net::Machine m(net::bluegene_p());
  EXPECT_LT(m.latency(0, 1), m.latency(0, 4));
  EXPECT_DOUBLE_EQ(m.latency(0, 1),
                   net::bluegene_p().inter.latency +
                       net::bluegene_p().hop_latency);
}

TEST(Machine, NicStripingSpreadsPeers) {
  net::Machine m(net::crill());  // 2 HCAs
  EXPECT_NE(m.nic_for(0, 1), m.nic_for(0, 2));
  EXPECT_EQ(m.nic_for(0, 1), m.nic_for(0, 3));  // consistent per peer
}

TEST(Machine, ResourcesAreDistinct) {
  net::Machine m(net::crill());
  m.nic_tx(0, 0).reserve(0.0, 1.0);
  EXPECT_DOUBLE_EQ(m.nic_tx(0, 1).available_at(), 0.0);
  EXPECT_DOUBLE_EQ(m.nic_tx(1, 0).available_at(), 0.0);
  EXPECT_DOUBLE_EQ(m.nic_rx(0, 0).available_at(), 0.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.nic_tx(0, 0).available_at(), 0.0);
}
