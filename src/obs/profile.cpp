#include "obs/profile.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>

namespace nbctune::obs {

namespace {

long long ns(double seconds) {
  return static_cast<long long>(std::llround(seconds * 1e9));
}

constexpr const char* kPhases[6] = {"compute",     "progress",
                                    "wire",        "late_sender",
                                    "missing_progress", "other"};

/// The six blame components of `oc` in kPhases order.
void components(const analyze::OpCritical& oc, double out[6]) {
  out[0] = oc.blame.compute;
  out[1] = oc.blame.progress;
  out[2] = oc.blame.wire;
  out[3] = oc.blame.late_sender;
  out[4] = oc.blame.missing_progress;
  out[5] = oc.blame.other;
}

std::string sanitize_frame(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == ' ' || c == ';') c = '_';
  }
  return out;
}

void put_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

void write_collapsed(std::ostream& os, const analyze::Report& report) {
  for (const analyze::ScenarioReport& s : report.scenarios) {
    const std::string label = sanitize_frame(s.label);
    for (const analyze::OpCritical& oc : s.op_criticals) {
      double comp[6];
      components(oc, comp);
      for (int p = 0; p < 6; ++p) {
        const long long w = ns(comp[p]);
        if (w <= 0) continue;
        os << label << ";rank:" << oc.critical_rank << ";op:" << oc.corr
           << ";" << kPhases[p] << " " << w << "\n";
      }
    }
  }
}

void write_speedscope(std::ostream& os, const analyze::Report& report) {
  // Shared frame table (deduplicated); stacks are
  // [rank frame, op frame, phase frame].
  std::vector<std::string> frames;
  std::map<std::string, std::size_t> frame_ix;
  const auto frame = [&](const std::string& name) -> std::size_t {
    auto it = frame_ix.find(name);
    if (it != frame_ix.end()) return it->second;
    const std::size_t ix = frames.size();
    frames.push_back(name);
    frame_ix.emplace(name, ix);
    return ix;
  };

  struct Profile {
    const std::string* name;
    std::vector<std::size_t> stacks[3];  // column-major: rank/op/phase
    std::vector<long long> weights;
    long long total = 0;
  };
  std::vector<Profile> profiles;
  profiles.reserve(report.scenarios.size());
  for (const analyze::ScenarioReport& s : report.scenarios) {
    Profile prof;
    prof.name = &s.label;
    for (const analyze::OpCritical& oc : s.op_criticals) {
      double comp[6];
      components(oc, comp);
      const std::size_t rank_f =
          frame("rank " + std::to_string(oc.critical_rank));
      const std::size_t op_f = frame("op " + std::to_string(oc.corr));
      for (int p = 0; p < 6; ++p) {
        const long long w = ns(comp[p]);
        if (w <= 0) continue;
        prof.stacks[0].push_back(rank_f);
        prof.stacks[1].push_back(op_f);
        prof.stacks[2].push_back(frame(kPhases[p]));
        prof.weights.push_back(w);
        prof.total += w;
      }
    }
    profiles.push_back(std::move(prof));
  }

  os << "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\"";
  os << ",\"shared\":{\"frames\":[";
  for (std::size_t f = 0; f < frames.size(); ++f) {
    os << (f == 0 ? "" : ",") << "{\"name\":\"";
    put_escaped(os, frames[f]);
    os << "\"}";
  }
  os << "]},\"profiles\":[";
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const Profile& prof = profiles[p];
    os << (p == 0 ? "" : ",") << "\n{\"type\":\"sampled\",\"name\":\"";
    put_escaped(os, *prof.name);
    os << "\",\"unit\":\"nanoseconds\",\"startValue\":0,\"endValue\":"
       << prof.total << ",\"samples\":[";
    for (std::size_t i = 0; i < prof.weights.size(); ++i) {
      os << (i == 0 ? "" : ",") << "[" << prof.stacks[0][i] << ","
         << prof.stacks[1][i] << "," << prof.stacks[2][i] << "]";
    }
    os << "],\"weights\":[";
    for (std::size_t i = 0; i < prof.weights.size(); ++i) {
      os << (i == 0 ? "" : ",") << prof.weights[i];
    }
    os << "]}";
  }
  os << "\n],\"exporter\":\"nbctune-analyze\",\"activeProfileIndex\":0}\n";
}

long long profile_total_weight_ns(const analyze::Report& report) {
  long long total = 0;
  for (const analyze::ScenarioReport& s : report.scenarios) {
    for (const analyze::OpCritical& oc : s.op_criticals) {
      double comp[6];
      components(oc, comp);
      for (int p = 0; p < 6; ++p) {
        const long long w = ns(comp[p]);
        if (w > 0) total += w;
      }
    }
  }
  return total;
}

bool otlp_enabled() noexcept {
#ifdef NBCTUNE_OTLP_ENABLED
  return true;
#else
  return false;
#endif
}

#ifdef NBCTUNE_OTLP_ENABLED

namespace {

/// Deterministic hex id: `v` in `digits` lowercase hex chars (OTLP wants
/// 32-digit trace ids and 16-digit span ids; all-zero is invalid, so
/// callers pass 1-based values).
std::string hex_id(std::uint64_t v, int digits) {
  std::string out(static_cast<std::size_t>(digits), '0');
  for (int i = digits - 1; i >= 0 && v != 0; --i, v >>= 4) {
    out[static_cast<std::size_t>(i)] = "0123456789abcdef"[v & 0xF];
  }
  return out;
}

std::string track_name(std::int32_t track) {
  if (track >= 0) return "rank " + std::to_string(track);
  return "node " + std::to_string(-1 - track) + " wire";
}

}  // namespace

void write_otlp(std::ostream& os,
                const std::vector<analyze::ScenarioTrace>& traces) {
  os << "{\"resourceSpans\":[{\"resource\":{\"attributes\":[{\"key\":"
        "\"service.name\",\"value\":{\"stringValue\":\"nbctune\"}}]}"
     << ",\"scopeSpans\":[";
  std::uint64_t span_id = 0;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    const analyze::ScenarioTrace& tr = traces[t];
    const std::string trace_id = hex_id(t + 1, 32);
    os << (t == 0 ? "" : ",") << "\n{\"scope\":{\"name\":\"";
    put_escaped(os, tr.label);
    os << "\"},\"spans\":[";
    bool first = true;
    for (const analyze::AEvent& e : tr.events) {
      if (!e.is_span()) continue;
      os << (first ? "" : ",") << "\n{\"traceId\":\"" << trace_id
         << "\",\"spanId\":\"" << hex_id(++span_id, 16) << "\",\"name\":\"";
      put_escaped(os, e.name);
      os << "\",\"kind\":1,\"startTimeUnixNano\":\"" << ns(e.ts)
         << "\",\"endTimeUnixNano\":\"" << ns(e.end())
         << "\",\"attributes\":[{\"key\":\"track\",\"value\":{\"stringValue\""
            ":\"" << track_name(e.track)
         << "\"}},{\"key\":\"cat\",\"value\":{\"stringValue\":\"";
      put_escaped(os, e.cat);
      os << "\"}}";
      if (e.corr != 0) {
        os << ",{\"key\":\"corr\",\"value\":{\"intValue\":\"" << e.corr
           << "\"}}";
      }
      os << "]}";
      first = false;
    }
    os << "\n]}";
  }
  os << "\n]}]}\n";
}

#else  // !NBCTUNE_OTLP_ENABLED

void write_otlp(std::ostream&, const std::vector<analyze::ScenarioTrace>&) {}

#endif

}  // namespace nbctune::obs
