#pragma once

// Non-blocking broadcast schedules.
//
// The paper's Ibcast function-set is parameterized by two attributes:
//   fan-out: 0 = linear (flat; root sends to everyone),
//            1 = chain, 2..5 = k-ary tree, kFanoutBinomial = binomial tree
//   segment size: the payload is pipelined through the tree in segments
//                 (32/64/128 KB in the paper's default set).
//
// All shapes are produced by one builder over virtual ranks rooted at 0.

#include <cstddef>
#include <vector>

#include "nbc/schedule.hpp"

namespace nbctune::coll {

/// Fan-out value denoting the binomial tree ("value of N" in the paper).
inline constexpr int kFanoutBinomial = -1;
/// Fan-out value denoting the flat/linear broadcast.
inline constexpr int kFanoutLinear = 0;

/// Children (virtual ranks) of virtual rank v in an n-process tree with
/// the given fan-out; exposed for testing.
std::vector<int> bcast_children(int v, int n, int fanout);
/// Parent (virtual rank) of v, or -1 for the root.
int bcast_parent(int v, int n, int fanout);

/// Build the broadcast schedule for communicator rank `me` of `n`.
/// `buf` holds `bytes` on every rank; root's data ends up everywhere.
/// `seg_bytes` == 0 disables segmentation (single segment).
nbc::Schedule build_ibcast(int me, int n, void* buf, std::size_t bytes,
                           int root, int fanout, std::size_t seg_bytes);

}  // namespace nbctune::coll
