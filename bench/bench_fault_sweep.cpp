// Fault sweep: the fig3 Ialltoall scenario under every canned fault plan
// (fault/fault.hpp) on whale over InfiniBand and over Gigabit Ethernet,
// plus two focused demos: ADCL drift re-tuning under a degrading link and
// the attribute-heuristic pruning audit.
//
// The sweep answers the robustness question the fault layer exists for:
// does the tuner still land on a sensible implementation — and does every
// started operation still complete (guideline G1) — when the transport
// has to retransmit around drops, fall back on timeouts, and re-tune
// around drift?  Run with --report / --trace-counters to get the
// analyzer's fault attribution; CI diffs both against committed goldens.

#include <memory>

#include "adcl/guidelines.hpp"
#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::harness;

int main(int argc, char** argv) {
  bench::Driver drv("fault_sweep", argc, argv);
  // Recoverable message-level plans only: the fail-stop kill plans have
  // their own driver (bench_failure_sweep) with recovery-focused goldens.
  std::vector<fault::CannedPlan> plans;
  for (const fault::CannedPlan& p : fault::canned_plans()) {
    if (!fault::FaultPlan::parse(p.spec).has_kills()) plans.push_back(p);
  }

  for (const auto& platform : {net::whale(), net::whale_tcp()}) {
    MicroScenario base;
    base.platform = platform;
    base.nprocs = 32;
    base.op = OpKind::Ialltoall;
    base.bytes = 128 * 1024;
    base.compute_per_iter = 10e-3;
    base.progress_calls = 5;
    base.iterations = drv.full() ? 24 : 10;
    base.noise_scale = 0.0;  // faults are the only perturbation
    base.seed = 42;

    harness::banner("Fault sweep: tuned Ialltoall under canned plans on " +
                    platform.name);
    std::cout << "platform=" << platform.name << " nprocs=" << base.nprocs
              << " bytes=" << base.bytes
              << " compute/iter=" << base.compute_per_iter
              << "s iterations=" << base.iterations << "\n\n";

    adcl::TuningOptions opts;
    opts.policy = adcl::PolicyKind::BruteForce;
    opts.tests_per_function = 2;

    std::vector<RunOutcome> runs(plans.size());
    drv.pool().run_indexed(plans.size(), [&](std::size_t i) {
      MicroScenario s = base;
      s.fault_plan = plans[i].spec;
      s.fault_plan_name = plans[i].name;
      runs[i] = run_adcl(s, opts);
    });

    harness::Table t({"plan", "winner", "loop_time[s]", "decision_iter"});
    for (std::size_t i = 0; i < plans.size(); ++i) {
      t.add_row({plans[i].name, runs[i].impl,
                 harness::Table::num(runs[i].loop_time),
                 std::to_string(runs[i].decision_iteration)});
    }
    t.print();
  }

  // Drift demo: short iterations decide before the canned degrade window
  // opens at t=0.05s; the 8x latency/bandwidth degradation afterwards
  // pushes post-decision samples past the drift tolerance and tuning
  // re-opens (adcl.retunes counter goes nonzero).
  {
    harness::banner(
        "Drift re-tune: Ialltoall on a link degrading after the decision");
    MicroScenario s;
    s.platform = net::whale();
    // Two nodes: the degradation hits the wire, so np must span nodes
    // (np8 on whale's 8-core nodes would stay intra-node and never drift).
    s.nprocs = 16;
    s.op = OpKind::Ialltoall;
    s.bytes = 64 * 1024;
    s.compute_per_iter = 2e-3;
    s.progress_calls = 3;
    s.iterations = 40;
    s.noise_scale = 0.0;
    s.seed = 42;
    const fault::CannedPlan* degrade = nullptr;
    for (const auto& p : plans) {
      if (p.name == "degrade") degrade = &p;
    }
    s.fault_plan = degrade->spec;
    s.fault_plan_name = degrade->name;
    adcl::TuningOptions opts;
    opts.policy = adcl::PolicyKind::BruteForce;
    opts.tests_per_function = 2;
    const RunOutcome r = run_adcl(s, opts);
    std::cout << "winner=" << r.impl << " loop_time="
              << harness::Table::num(r.loop_time)
              << "s final_decision_iter=" << r.decision_iteration << "\n";
  }

  // Pruning audit demo: the attribute-heuristic policy on the 21-function
  // ibcast set records which attribute sweep eliminated which functions
  // (adcl.eliminations counter + report "eliminations" array).
  {
    harness::banner(
        "Attribute-heuristic pruning audit: Ibcast, fault-free");
    MicroScenario s;
    s.platform = net::whale();
    s.nprocs = 8;
    s.op = OpKind::Ibcast;
    s.bytes = 64 * 1024;
    s.compute_per_iter = 2e-3;
    s.progress_calls = 3;
    s.iterations = 40;
    s.noise_scale = 0.0;
    s.seed = 42;
    adcl::TuningOptions opts;
    opts.policy = adcl::PolicyKind::AttributeHeuristic;
    opts.tests_per_function = 2;
    const RunOutcome r = run_adcl(s, opts);
    std::cout << "winner=" << r.impl << " loop_time="
              << harness::Table::num(r.loop_time)
              << "s decision_iter=" << r.decision_iteration << "\n";
  }

  // Guideline-pruning demo: a mock-up bound derived from two fixed runs
  // of the pairwise Ialltoall (guideline G5's split shape: the 64 KiB op
  // should cost at most 2x the 32 KiB op) convicts the linear and
  // dissemination members during tuning — both overshoot the bound on
  // TCP — so the guideline-pruned policy eliminates them after one
  // measurement each (adcl.guideline_prunes counter + report "prunes"
  // array) and pairwise wins.  The two fixed runs also give the analyzer
  // a same-label size pair, putting G5 itself under test in the golden.
  {
    harness::banner(
        "Guideline pruning: Ialltoall members convicted by a mock-up bound");
    MicroScenario base;
    base.platform = net::whale_tcp();
    base.nprocs = 16;
    base.op = OpKind::Ialltoall;
    base.compute_per_iter = 0.0;
    base.progress_calls = 3;
    base.iterations = 12;
    base.noise_scale = 0.0;
    base.seed = 42;

    MicroScenario half = base;
    half.bytes = 32 * 1024;
    const RunOutcome r_half = run_fixed(half, 2);  // pairwise
    MicroScenario full = base;
    full.bytes = 64 * 1024;
    const RunOutcome r_full = run_fixed(full, 2);

    const double bound =
        2.0 * r_half.loop_time / static_cast<double>(base.iterations);
    auto book = std::make_shared<adcl::GuidelineBook>();
    book->add_mockup("split:pairwise@32768Bx2", bound);

    adcl::TuningOptions opts;
    opts.policy = adcl::PolicyKind::GuidelinePruned;
    opts.tests_per_function = 2;
    opts.guidelines = book;
    const RunOutcome r = run_adcl(full, opts);
    std::cout << "pairwise@32KiB=" << harness::Table::num(r_half.loop_time)
              << "s pairwise@64KiB=" << harness::Table::num(r_full.loop_time)
              << "s mockup_bound/iter=" << harness::Table::num(bound)
              << "s\nwinner=" << r.impl
              << " loop_time=" << harness::Table::num(r.loop_time)
              << "s decision_iter=" << r.decision_iteration << "\n";
  }
  return 0;
}
