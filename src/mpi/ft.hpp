#pragma once

// ULFM-style fail-stop recovery (`nbctune::mpi`).
//
// A FaultPlan's kill list turns ranks off at fixed simulated times: the
// Injector silences the rank's NIC permanently (World::ship drops its
// envelopes, retransmit timers go dead) and its fiber unwinds via
// RankKilled at the next library call.  Survivors recover through three
// phases, all riding the never-injected reliable control plane:
//
//   1. detection — a deterministic liveness-lease model: a death at time
//      t becomes *detectable* on every survivor at t + lease (the lease
//      period bounds detection latency exactly, like a heartbeat detector
//      whose period is the lease).  Every blocking Ctx call is an
//      interruption point: once a detectable failure is unacknowledged,
//      the call throws RanksFailed (ULFM's error-at-wait semantics).
//   2. agreement — survivors funnel into the World-level RecoveryService
//      (the moral equivalent of MPIX_COMM_AGREE; the service is
//      centralized because one simulation is single-threaded, and its
//      decision latency is modeled as a binomial broadcast over the
//      survivors).  A round completes when every rank either arrived
//      (interrupted mid-loop, or standing at the end of its loop) or is
//      detectably dead.  The decision fixes the globally consistent
//      failed set, the iteration survivors roll back to (min over the
//      interrupted arrivals — ranks ahead of the failure redo work so the
//      tuner's per-rank sample counts realign), and whether every
//      survivor had already finished.
//   3. shrink + rebuild — World::shrink densely re-ranks survivors into
//      a fresh communicator (new context id = fresh tag space).  NBC
//      handles abort and rebuild their schedules against it (node
//      leaders re-elected from the survivor membership), and ADCL
//      re-opens tuning (a shrink is a group-size change; stale winners
//      are not replayed).
//
// Determinism: kills, leases, agreement completion and delivery are all
// engine events at plan-derived times; no wall clock, no extra RNG
// draws.  Traces and reports stay byte-identical at any --threads.

#include <limits>
#include <stdexcept>
#include <vector>

#include "fault/fault.hpp"
#include "mpi/comm.hpp"

namespace nbctune::mpi {

class World;

/// Thrown inside a killed rank's fiber to unwind it (caught by the
/// World::launch wrapper — it must never escape to the engine).
/// Deliberately not derived from std::exception: scenario-level error
/// containment must not mistake a modeled death for a harness bug.
struct RankKilled {};

/// Thrown from blocking Ctx calls on survivors once a failure is
/// detectable and unacknowledged (ULFM MPI_ERR_PROC_FAILED analogue).
/// The harness catches it and funnels into Ctx::ft_recover.
class RanksFailed : public std::runtime_error {
 public:
  RanksFailed() : std::runtime_error("mpi: peer rank failure detected") {}
};

/// Globally consistent outcome of one agreement round.
struct FtDecision {
  int epoch = 0;               ///< recovery round, 1-based
  std::vector<int> failed;     ///< detectably dead world ranks (cumulative)
  bool all_finished = false;   ///< every survivor had completed its loop
  int resume_iteration = 0;    ///< iteration survivors roll back to
  Comm comm;                   ///< shrunk survivor communicator
};

/// Per-World failure detector + agreement service.  Created by
/// World::launch when the attached plan has kills; all methods run
/// either on a rank fiber (arrive) or in scheduler context (events).
class RecoveryService {
 public:
  static constexpr int kFinishedIteration = std::numeric_limits<int>::max();

  RecoveryService(World& world, const fault::FaultPlan& plan);

  /// Schedule the plan's kill events (call once, before engine.run()).
  /// Kills naming ranks outside the world are ignored.
  void start();

  /// Detectable-failure count (survivors compare against their
  /// acknowledged count to decide whether to throw RanksFailed).
  [[nodiscard]] int detectable() const noexcept { return detectable_; }

  /// Epochs decided so far.
  [[nodiscard]] int epoch() const noexcept { return epoch_; }

  /// The most recent decision (valid once epoch() > 0).
  [[nodiscard]] const FtDecision& decision() const noexcept {
    return decision_;
  }

  /// Detectable count snapshotted when the current decision was computed
  /// (survivors acknowledge up to here in their post-decision cleanup).
  [[nodiscard]] int decision_detectable() const noexcept {
    return decision_detectable_;
  }

  /// Rank `wrank` arrives at the agreement: interrupted at `iteration`
  /// (finished == false) or standing at the end of its loop
  /// (iteration == kFinishedIteration, finished == true).  Returns the
  /// epoch the caller must block for (epoch() >= returned value).
  int arrive(int wrank, int iteration, bool finished);

 private:
  void on_kill(int wrank);    // scheduled at each Kill::t
  void on_detect(int wrank);  // scheduled at Kill::t + lease
  void maybe_complete();      // agreement completion check
  void deliver();             // decision delivery (modeled bcast latency)

  struct Arrival {
    bool arrived = false;
    bool finished = false;
    int iteration = 0;
  };

  World& world_;
  double lease_;
  std::vector<fault::Kill> kills_;
  std::vector<char> detectable_dead_;  // per world rank
  std::vector<Arrival> arrivals_;      // per world rank; reset per round
  int detectable_ = 0;
  int epoch_ = 0;
  bool decision_pending_ = false;
  FtDecision decision_;       // last delivered
  FtDecision pending_;        // computed, awaiting modeled delivery
  int decision_detectable_ = 0;
  int pending_detectable_ = 0;
  /// Failed-set size at the last delivered decision: the failed set is
  /// cumulative, so membership shrank only when it grew past this.
  std::size_t delivered_failed_ = 0;
};

}  // namespace nbctune::mpi
