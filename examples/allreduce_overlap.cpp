// Domain example: overlapping global reductions in an iterative solver.
//
// Conjugate-gradient-style solvers need one or two global dot products
// per iteration; on large machines the allreduce latency throttles them
// (the motivation of Kandalla et al., ref [17] of the paper).  This
// example pipelines a tuned non-blocking allreduce of the *previous*
// iteration's dot product under the current iteration's local compute,
// and compares against the blocking formulation.

#include <cstdio>
#include <numeric>
#include <vector>

#include "adcl/adcl.hpp"
#include "mpi/world.hpp"
#include "net/machine.hpp"
#include "net/platform.hpp"
#include "sim/engine.hpp"

using namespace nbctune;

namespace {

struct Result {
  double time = 0.0;
  double checksum = 0.0;
  std::string winner;
};

Result run(bool overlap, int nprocs, int iters) {
  sim::Engine engine(9);
  net::Machine machine(net::bluegene_p());
  mpi::WorldOptions options;
  options.nprocs = nprocs;
  options.noise_scale = 0;
  mpi::World world(engine, machine, options);
  Result res;
  world.launch([&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const std::size_t count = 65536;  // local vector chunk (512 KB)
    std::vector<double> partial(count), reduced(count);
    adcl::TuningOptions opts;
    opts.tests_per_function = 3;
    auto allreduce = adcl::iallreduce_init(ctx, comm, partial.data(),
                                           reduced.data(), count,
                                           nbc::DType::F64,
                                           mpi::ReduceOp::Sum, opts);
    const double compute_per_iter = 8e-3;
    double checksum = 0.0;
    bool outstanding = false;
    for (int it = 0; it < iters; ++it) {
      // Local work of this iteration (axpy/spmv stand-in).
      for (std::size_t i = 0; i < count; ++i) {
        partial[i] = (ctx.world_rank() + 1) * 1e-3 + it + i * 1e-6;
      }
      if (overlap) {
        if (outstanding) {
          // Drain last iteration's reduction mid-compute.  Generous
          // progress-call count: multi-round algorithms (ring,
          // recursive doubling) advance one round per call (Fig. 7).
          for (int p = 0; p < 32; ++p) {
            ctx.compute(compute_per_iter / 32);
            allreduce->progress();
          }
          allreduce->wait();
          checksum += reduced[0];
        } else {
          ctx.compute(compute_per_iter);
        }
        allreduce->init();
        outstanding = true;
      } else {
        ctx.compute(compute_per_iter);
        allreduce->init();
        allreduce->wait();  // blocking formulation
        checksum += reduced[0];
      }
    }
    if (outstanding) {
      allreduce->wait();
      checksum += reduced[0];
    }
    if (ctx.world_rank() == 0) {
      res.time = ctx.now();
      res.checksum = checksum;
      if (allreduce->selection().decided()) {
        res.winner = allreduce->current_function().name;
      }
    }
  });
  engine.run();
  return res;
}

}  // namespace

int main() {
  const int nprocs = 64;
  const int iters = 40;
  const Result blocking = run(false, nprocs, iters);
  const Result pipelined = run(true, nprocs, iters);
  std::printf("solver loop on BlueGene/P model, %d ranks, %d iterations\n",
              nprocs, iters);
  std::printf("  blocking allreduce : %.4f s (winner %s)\n", blocking.time,
              blocking.winner.c_str());
  std::printf("  pipelined allreduce: %.4f s (winner %s)\n", pipelined.time,
              pipelined.winner.c_str());
  std::printf("  speedup            : %.2fx\n",
              blocking.time / pipelined.time);
  // The pipelined version reduces iteration i-1's vector during iteration
  // i, so both runs reduce every vector; checksums differ only by which
  // iterations were folded, so just report them.
  std::printf("  checksums          : %.3f vs %.3f\n", blocking.checksum,
              pipelined.checksum);
  return 0;
}
