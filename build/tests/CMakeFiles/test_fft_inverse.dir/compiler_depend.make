# Empty compiler generated dependencies file for test_fft_inverse.
# This may be replaced when dependencies are built.
