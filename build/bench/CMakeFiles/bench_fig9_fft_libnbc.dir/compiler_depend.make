# Empty compiler generated dependencies file for bench_fig9_fft_libnbc.
# This may be replaced when dependencies are built.
