#pragma once

// Post-run utilization reporting: how busy each simulated NIC and memory
// port was during an experiment.  Useful for diagnosing *why* an
// algorithm lost (e.g. a linear all-to-all saturating one node's receive
// engine while the rest of the fabric idles).

#include <iostream>
#include <string>
#include <vector>

#include "mpi/world.hpp"
#include "net/machine.hpp"

namespace nbctune::harness {

struct ResourceUsage {
  std::string name;        ///< e.g. "tx:3:0", "mem:1"
  double busy_seconds = 0;
  double busy_fraction = 0;  ///< busy / elapsed
  std::uint64_t reservations = 0;
};

struct UtilizationReport {
  double elapsed = 0;
  std::vector<ResourceUsage> resources;  ///< sorted by busy_fraction, desc
  std::uint64_t data_messages = 0;
  std::uint64_t ctrl_messages = 0;

  /// The busiest resource (empty name if none were used).
  [[nodiscard]] const ResourceUsage* hottest() const {
    return resources.empty() ? nullptr : &resources.front();
  }
};

/// Snapshot machine resource usage over `elapsed` simulated seconds.
UtilizationReport utilization_report(mpi::World& world, double elapsed);

/// Render the top `top_n` resources as an aligned table.
void print_utilization(const UtilizationReport& report, int top_n = 8,
                       std::ostream& os = std::cout);

}  // namespace nbctune::harness
