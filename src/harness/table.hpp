#pragma once

// Minimal aligned-table / CSV printer used by the benchmark binaries to
// emit the rows and series of the paper's figures.

#include <iostream>
#include <string>
#include <vector>

namespace nbctune::harness {

/// Column-aligned text table with an optional CSV dump.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 4);

  void print(std::ostream& os = std::cout) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a figure banner: which paper artifact a bench section reproduces.
void banner(const std::string& title, std::ostream& os = std::cout);

}  // namespace nbctune::harness
