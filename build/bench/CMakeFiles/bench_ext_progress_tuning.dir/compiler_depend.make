# Empty compiler generated dependencies file for bench_ext_progress_tuning.
# This may be replaced when dependencies are built.
