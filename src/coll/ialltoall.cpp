#include "coll/ialltoall.hpp"

#include <vector>

namespace nbctune::coll {

namespace {
// Null-propagating block addressing: cost-model runs pass null buffers.
const std::byte* blk(const void* base, std::size_t block, int i) {
  if (base == nullptr) return nullptr;
  return static_cast<const std::byte*>(base) + std::size_t(i) * block;
}
std::byte* blk(void* base, std::size_t block, int i) {
  if (base == nullptr) return nullptr;
  return static_cast<std::byte*>(base) + std::size_t(i) * block;
}
}  // namespace

nbc::Schedule build_ialltoall_linear(int me, int n, const void* sbuf,
                                     void* rbuf, std::size_t block) {
  nbc::Schedule s;
  s.copy(blk(sbuf, block, me), blk(rbuf, block, me), block);
  // Stagger peers (me+1, me+2, ...) so everyone does not dogpile rank 0.
  for (int off = 1; off < n; ++off) {
    const int to = (me + off) % n;
    const int from = (me - off + n) % n;
    s.recv(blk(rbuf, block, from), block, from);
    s.send(blk(sbuf, block, to), block, to);
  }
  s.finalize();
  nbc::trace_built(s, "ialltoall.linear", me);
  return s;
}

nbc::Schedule build_ialltoall_pairwise(int me, int n, const void* sbuf,
                                       void* rbuf, std::size_t block) {
  nbc::Schedule s;
  s.copy(blk(sbuf, block, me), blk(rbuf, block, me), block);
  s.barrier();
  for (int r = 1; r < n; ++r) {
    const int to = (me + r) % n;
    const int from = (me - r + n) % n;
    s.recv(blk(rbuf, block, from), block, from);
    s.send(blk(sbuf, block, to), block, to);
    s.barrier();
  }
  s.finalize();
  nbc::trace_built(s, "ialltoall.pairwise", me);
  return s;
}

nbc::Schedule build_ialltoall_bruck(int me, int n, const void* sbuf,
                                    void* rbuf, std::size_t block) {
  nbc::Schedule s;
  // Cost-model runs (null buffers) skip scratch allocation entirely; the
  // null pointers propagate through the copy/send actions, which charge
  // modeled time but move no bytes.
  const bool real = sbuf != nullptr || rbuf != nullptr;
  // Working array tmp[i] = block currently "destined i hops ahead of me";
  // initial rotation tmp[i] = sbuf[(me + i) mod n].
  std::byte* tmp = real ? s.scratch(std::size_t(n) * block) : nullptr;
  for (int i = 0; i < n; ++i) {
    s.copy(blk(sbuf, block, (me + i) % n),
           tmp == nullptr ? nullptr : tmp + std::size_t(i) * block, block);
  }
  // Steps: in step k (delta = 2^k) every block whose index has bit k set
  // moves delta ranks forward, packed into one message.
  std::vector<int> moved;
  for (int delta = 1; delta < n; delta <<= 1) {
    moved.clear();
    for (int i = 0; i < n; ++i) {
      if (i & delta) moved.push_back(i);
    }
    if (moved.empty()) continue;
    const int to = (me + delta) % n;
    const int from = (me - delta + n) % n;
    std::byte* pack = real ? s.scratch(moved.size() * block) : nullptr;
    std::byte* unpack = real ? s.scratch(moved.size() * block) : nullptr;
    for (std::size_t j = 0; j < moved.size(); ++j) {
      s.copy(tmp == nullptr ? nullptr : tmp + std::size_t(moved[j]) * block,
             pack == nullptr ? nullptr : pack + j * block, block);
    }
    s.send(pack, moved.size() * block, to);
    s.recv(unpack, moved.size() * block, from);
    s.barrier();
    for (std::size_t j = 0; j < moved.size(); ++j) {
      s.copy(unpack == nullptr ? nullptr : unpack + j * block,
             tmp == nullptr ? nullptr : tmp + std::size_t(moved[j]) * block,
             block);
    }
  }
  // Final inverse rotation: tmp[i] now holds the block sent by rank
  // (me - i + n) mod n.
  for (int i = 0; i < n; ++i) {
    s.copy(tmp == nullptr ? nullptr : tmp + std::size_t(i) * block,
           blk(rbuf, block, (me - i + n) % n), block);
  }
  s.finalize();
  nbc::trace_built(s, "ialltoall.bruck", me);
  return s;
}

}  // namespace nbctune::coll
