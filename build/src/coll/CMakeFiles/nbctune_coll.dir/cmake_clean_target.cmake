file(REMOVE_RECURSE
  "libnbctune_coll.a"
)
