#include "obs/sampler.hpp"

#include <chrono>
#include <utility>

namespace nbctune::obs {

Sampler::Sampler(std::function<void()> tick, int period_ms)
    : tick_(std::move(tick)), period_ms_(period_ms) {
  if (period_ms_ <= 0 || !tick_) return;
  th_ = std::thread([this] {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      if (cv_.wait_for(lk, std::chrono::milliseconds(period_ms_),
                       [this] { return stop_; })) {
        return;
      }
      lk.unlock();
      tick_();
      lk.lock();
    }
  });
}

Sampler::~Sampler() { stop(); }

void Sampler::stop() {
  if (th_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    th_.join();
  }
  if (!stopped_ && tick_ && period_ms_ > 0) {
    stopped_ = true;
    tick_();  // final snapshot: the stream never ends on a stale gauge
  }
}

}  // namespace nbctune::obs
