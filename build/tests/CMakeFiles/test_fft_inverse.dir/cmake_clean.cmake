file(REMOVE_RECURSE
  "CMakeFiles/test_fft_inverse.dir/test_fft_inverse.cpp.o"
  "CMakeFiles/test_fft_inverse.dir/test_fft_inverse.cpp.o.d"
  "test_fft_inverse"
  "test_fft_inverse.pdb"
  "test_fft_inverse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft_inverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
