# Empty compiler generated dependencies file for test_nbc.
# This may be replaced when dependencies are built.
