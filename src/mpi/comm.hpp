#pragma once

// Communicators: ordered groups of world ranks with an isolated tag space
// (context id), in the spirit of MPI communicators.

#include <memory>
#include <vector>

namespace nbctune::mpi {

class World;

/// Immutable communicator data shared by all member handles.
struct CommData {
  int context = 0;
  std::vector<int> members;  ///< world rank of each communicator rank
  int split_epoch = 0;       ///< per-comm counter for deterministic child ids
};

/// Lightweight communicator handle (copyable; references world-owned data).
class Comm {
 public:
  Comm() = default;
  Comm(World* world, std::shared_ptr<const CommData> data)
      : world_(world), data_(std::move(data)) {}

  [[nodiscard]] bool valid() const noexcept { return data_ != nullptr; }
  [[nodiscard]] int size() const { return static_cast<int>(data_->members.size()); }
  [[nodiscard]] int context() const { return data_->context; }

  /// World rank of communicator rank r.
  [[nodiscard]] int world_rank(int r) const { return data_->members.at(r); }

  /// Communicator rank of a world rank, or -1 if not a member.
  [[nodiscard]] int rank_of_world(int wrank) const {
    for (std::size_t i = 0; i < data_->members.size(); ++i) {
      if (data_->members[i] == wrank) return static_cast<int>(i);
    }
    return -1;
  }

  [[nodiscard]] World* world() const noexcept { return world_; }
  [[nodiscard]] const CommData& data() const { return *data_; }

 private:
  World* world_ = nullptr;
  std::shared_ptr<const CommData> data_;
};

}  // namespace nbctune::mpi
