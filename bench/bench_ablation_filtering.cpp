// Ablation: statistical filtering of measurement samples.  The paper
// attributes ADCL's suboptimal decisions to outliers "due to external
// influences from the Operating System"; this bench measures decision
// accuracy with the filter on vs off under amplified noise.

#include "bench_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::harness;

namespace {
// A scenario whose implementations are CLOSE (a few percent apart, like
// the paper's Fig. 5 whale/1KB case): this is where one OS-noise outlier
// in an unfiltered mean flips the decision.
// OS noise of the kind the paper blames for suboptimal decisions: rare
// but violent (a preemption or daemon wakeup stretches one compute slice
// by an order of magnitude).  Rare means some measurement batches are
// hit and others escape — exactly the regime where an unfiltered mean
// flips decisions and a robust filter does not.
MicroScenario close_race_scenario(double outlier_prob) {
  MicroScenario s;
  s.platform = net::whale();
  s.platform.noise.rel_sigma = 0.01;
  s.platform.noise.outlier_prob = outlier_prob;
  s.platform.noise.outlier_factor = 40.0;
  s.nprocs = 32;
  s.op = OpKind::Ialltoall;
  s.bytes = 1024;
  s.compute_per_iter = 1e-3;
  s.progress_calls = 4;  // coarse compute slices: outliers hit hard
  const int tests = 5;
  s.iterations = 3 * tests + 2;
  return s;
}

int run_sweep(harness::ScenarioPool& pool, adcl::FilterKind filter,
              double outlier_prob, int reps, int* correct,
              const std::vector<double>& fixed_times, double best) {
  *correct = 0;
  MicroScenario base = close_race_scenario(outlier_prob);
  auto fset = scenario_functionset(base);
  // Each repetition has its own seed and engine: one pool task per rep.
  std::vector<RunOutcome> outs(static_cast<std::size_t>(reps));
  pool.run_indexed(outs.size(), [&](std::size_t rep) {
    MicroScenario s = base;
    s.noise_scale = 1.0;
    s.seed = 1000 + rep;
    adcl::TuningOptions opts;
    opts.policy = adcl::PolicyKind::BruteForce;
    opts.tests_per_function = 5;
    opts.filter = filter;
    outs[rep] = run_adcl(s, opts);
  });
  for (const auto& out : outs) {
    // Correct = the chosen implementation is within 2% of the true best
    // (tight: the point is distinguishing close competitors).
    const int chosen = fset->find_by_name(out.impl);
    if (chosen >= 0 && fixed_times[chosen] <= best * 1.02) ++(*correct);
  }
  return reps;
}
}  // namespace

int main(int argc, char** argv) {
  bench::Driver drv("filtering-ablation", argc, argv);
  harness::banner(
      "Ablation: decision accuracy with statistical filtering on/off "
      "under amplified OS noise");
  const int reps = drv.full() ? 40 : 15;
  ScenarioPool& pool = drv.pool();
  // Ground truth once: a noise-free fixed sweep of the scenario.
  MicroScenario clean = close_race_scenario(0.0);
  clean.noise_scale = 0.0;
  std::vector<double> fixed_times(3);
  pool.run_indexed(fixed_times.size(), [&](std::size_t f) {
    fixed_times[f] = run_fixed(clean, static_cast<int>(f)).loop_time;
  });
  double best = 1e300;
  for (double ft : fixed_times) best = std::min(best, ft);
  harness::Table t({"outlier_prob", "filter", "correct", "rate"});
  auto timer = drv.timer();
  for (double prob : {0.0002, 0.001, 0.004}) {
    for (auto [filter, name] :
         {std::pair{adcl::FilterKind::None, "none"},
          std::pair{adcl::FilterKind::Iqr, "IQR"},
          std::pair{adcl::FilterKind::TrimmedMean, "trimmed-mean"}}) {
      int correct = 0;
      const int total =
          run_sweep(pool, filter, prob, reps, &correct, fixed_times, best);
      t.add_row({harness::Table::num(prob, 4), name,
                 std::to_string(correct) + "/" + std::to_string(total),
                 harness::Table::num(100.0 * correct / total, 0) + "%"});
    }
  }
  t.print();
  std::cout << "\nExpected: accuracy degrades with noise much faster "
               "without filtering.\n";
  return 0;
}
