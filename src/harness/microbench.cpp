#include "harness/microbench.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "exec/machine_runner.hpp"
#include "fault/fault.hpp"
#include "mpi/world.hpp"
#include "net/machine.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace nbctune::harness {

const char* op_name(OpKind k) noexcept {
  switch (k) {
    case OpKind::Ialltoall: return "ialltoall";
    case OpKind::Ibcast: return "ibcast";
    case OpKind::Iallreduce: return "iallreduce";
    case OpKind::Iscatter: return "iscatter";
  }
  return "?";
}

const char* exec_name(ExecMode m) noexcept {
  return m == ExecMode::Fiber ? "fiber" : "machine";
}

std::shared_ptr<const adcl::FunctionSet> scenario_functionset(
    const MicroScenario& s) {
  switch (s.op) {
    case OpKind::Ialltoall:
      return adcl::make_ialltoall_functionset(s.include_blocking);
    case OpKind::Ibcast:
      return adcl::make_ibcast_functionset(s.include_hierarchical);
    case OpKind::Iallreduce:
      return adcl::make_iallreduce_functionset(s.include_hierarchical);
    case OpKind::Iscatter:
      return adcl::make_iscatter_functionset(s.platform.nics_per_node);
  }
  throw std::invalid_argument("scenario_functionset: bad OpKind");
}

namespace {

/// Trace-scope label identifying one scenario run.  The fault plan rides
/// in the last token ("+plan=<name>") so labels stay five space-free
/// tokens — the analyzer's parse_label contract.
std::string scenario_label(const MicroScenario& s, const std::string& what) {
  std::string label = std::string(op_name(s.op)) + " " + s.platform.name +
                      " np" + std::to_string(s.nprocs) + " " +
                      std::to_string(s.bytes) + "B " + what;
  if (!s.fault_plan.empty()) {
    label += "+plan=" +
             (s.fault_plan_name.empty() ? std::string("spec")
                                        : s.fault_plan_name);
  }
  // Mode tag rides in the last token too; fiber (the default) stays
  // untagged so existing labels are unchanged.
  if (s.exec == ExecMode::Machine) label += "+exec=machine";
  // Topology tag is the outermost suffix (stripped first by the analyzer's
  // parse_label) so hierarchy experiments form their own label groups.
  if (!s.topo_tag.empty()) label += "+topo=" + s.topo_tag;
  return label;
}

/// Per-operation request arguments; sizes (and pins into `args`) the
/// payload buffers when the scenario moves real bytes.  Shared by the
/// fiber and machine paths so both bind identical requests.
adcl::OpArgs scenario_args(const MicroScenario& s, mpi::Ctx& ctx,
                           std::vector<std::byte>& sbuf,
                           std::vector<std::byte>& rbuf) {
  auto comm = ctx.world().comm_world();
  const int n = comm.size();
  adcl::OpArgs args;
  args.comm = comm;
  switch (s.op) {
    case OpKind::Ialltoall:
      args.bytes = s.bytes;
      if (s.payload) {
        sbuf.resize(std::size_t(n) * s.bytes);
        rbuf.resize(std::size_t(n) * s.bytes);
        args.sbuf = sbuf.data();
        args.rbuf = rbuf.data();
      }
      break;
    case OpKind::Ibcast:
      args.bytes = s.bytes;  // root stays 0
      if (s.payload) {
        rbuf.resize(s.bytes);
        args.rbuf = rbuf.data();
      }
      break;
    case OpKind::Iallreduce:
      // s.bytes is the vector size; reduce in doubles (the sim's currency).
      args.count = s.bytes / sizeof(double);
      args.dtype = nbc::DType::F64;
      args.op = mpi::ReduceOp::Sum;
      if (s.payload) {
        sbuf.resize(args.count * sizeof(double));
        rbuf.resize(args.count * sizeof(double));
        args.sbuf = sbuf.data();
        args.rbuf = rbuf.data();
      }
      break;
    case OpKind::Iscatter:
      args.bytes = s.bytes;  // per-destination block; root stays 0
      if (s.payload) {
        rbuf.resize(s.bytes);
        args.rbuf = rbuf.data();
        if (ctx.world_rank() == comm.world_rank(0)) {
          sbuf.resize(std::size_t(n) * s.bytes);
          args.sbuf = sbuf.data();
        }
      }
      break;
  }
  return args;
}

/// Executes the loop on every rank; returns the filled outcome (rank 0's
/// view, which all ranks agree on).
RunOutcome run_loop(const MicroScenario& s,
                    const adcl::TuningOptions& tuning_in, int pinned,
                    const std::string& label) {
  // One trace scope per simulated scenario: a no-op unless the process
  // enabled the trace session (bench --trace).
  trace::Scope scope(label);
  RunOutcome out;
  sim::Engine engine(s.seed);
  net::Machine machine(s.platform);
  // The plan must outlive the World (the injector holds a reference).
  const fault::FaultPlan plan = fault::FaultPlan::parse(s.fault_plan);
  adcl::TuningOptions tuning = tuning_in;
  if (plan.enabled()) {
    tuning.op_timeout = plan.op_timeout;
    tuning.max_attempts = plan.max_attempts;
    tuning.drift_window = plan.drift_window;
    tuning.drift_tolerance = plan.drift_tolerance;
  }
  mpi::WorldOptions wopts;
  wopts.nprocs = s.nprocs;
  wopts.seed = s.seed;
  wopts.noise_scale = s.noise_scale;
  wopts.fiber_stack_bytes = s.fiber_stack_bytes;
  if (plan.enabled()) wopts.fault_plan = &plan;
  mpi::World world(engine, machine, wopts);

  // One function-set shared by every rank (immutable once built).
  auto fset = scenario_functionset(s);

  world.launch([&](mpi::Ctx& ctx) {
    // Buffers: allocated only when payload moves; sized per operation.
    std::vector<std::byte> sbuf, rbuf;
    std::unique_ptr<adcl::Request> req = adcl::request_create(
        ctx, fset, scenario_args(s, ctx, sbuf, rbuf), tuning);
    if (pinned >= 0) req->selection().force_winner(pinned);

    adcl::Timer timer(ctx, {req.get()});
    const double t0 = ctx.now();
    double decision_t = std::numeric_limits<double>::quiet_NaN();
    int post_iters = 0;
    // The communicator the loop currently runs on; shrunk on recovery.
    // Its lowest member writes the outcome (rank 0 unless rank 0 died).
    mpi::Comm cur = ctx.world().comm_world();
    // Fail-stop recovery wraps the iteration loop (ULFM-style): a peer
    // death interrupts the body with RanksFailed; survivors agree on the
    // failed set, shrink, rebuild the request, re-open tuning, and redo
    // from the globally agreed iteration.  Ranks that finish the loop
    // stand at the termination agreement in case a slower survivor's
    // failure forces redone work.
    int it = 0;
    try {
      for (;;) {
        if (it >= s.iterations) {
          if (ctx.world().ft() == nullptr) break;
          const mpi::FtDecision d = ctx.ft_finish();
          cur = d.comm;
          if (d.all_finished) break;
          req->recover(d.comm, d.resume_iteration);
          if (pinned >= 0) req->selection().force_winner(pinned);
          it = d.resume_iteration;
          continue;
        }
        try {
          const bool decided_before = req->selection().decided();
          timer.start();
          req->init();
          const int pc = std::max(1, s.progress_calls);
          for (int p = 0; p < pc; ++p) {
            ctx.compute(s.compute_per_iter / pc);
            if (s.progress_calls > 0) req->progress();
          }
          req->wait();
          timer.stop();
          if (decided_before) ++post_iters;
          ++it;
        } catch (const mpi::RanksFailed&) {
          timer.abort();
          const mpi::FtDecision d = ctx.ft_recover(it);
          cur = d.comm;
          req->recover(d.comm, d.resume_iteration);
          if (pinned >= 0) req->selection().force_winner(pinned);
          it = d.resume_iteration;
        }
      }
    } catch (const mpi::RankKilled&) {
      // This rank is the one fail-stopped: its in-flight op can neither
      // complete nor be redone by it, so abort the handle to keep the
      // started = completed + aborted ledger exact, then unwind.
      req->abandon();
      throw;
    }
    const double t_end = ctx.now();
    if (req->selection().decided()) {
      decision_t = req->selection().decision_time();
    }
    if (ctx.world_rank() == cur.world_rank(0)) {
      out.loop_time = t_end - t0;
      out.impl = req->selection().decided() ? req->current_function().name
                                            : "<undecided>";
      out.decision_iteration = req->selection().decision_iteration();
      out.decision_time = decision_t;
      out.post_decision_iterations = post_iters;
      out.post_decision_time =
          std::isnan(decision_t) ? 0.0 : t_end - std::max(decision_t, t0);
    }
  });
  engine.run();
  return out;
}

/// The same loop, fiberless: per-rank state machines driven by the engine
/// (exec::MachineRunner).  Pinned implementations only; the runner throws
/// on plans that need blocking recovery control flow.
RunOutcome run_loop_machine(const MicroScenario& s, int pinned,
                            const std::string& label) {
  trace::Scope scope(label);
  RunOutcome out;
  sim::Engine engine(s.seed);
  net::Machine machine(s.platform);
  const fault::FaultPlan plan = fault::FaultPlan::parse(s.fault_plan);
  if (plan.has_kills()) {
    throw std::invalid_argument(
        "machine mode: fail-stop recovery (kill plans) unwinds through "
        "blocking control flow and needs fibers; run with --exec=fiber");
  }
  if (plan.op_timeout > 0 || plan.drift_window > 0) {
    throw std::invalid_argument(
        "machine mode: op-timeout recovery and drift re-tuning are blocking "
        "control flows that need fibers; strip the plan's op_timeout/drift "
        "knobs (e.g. \"...;op_timeout=0\") or run with --exec=fiber");
  }
  adcl::TuningOptions tuning;
  if (plan.enabled()) {
    tuning.op_timeout = plan.op_timeout;
    tuning.max_attempts = plan.max_attempts;
    tuning.drift_window = plan.drift_window;
    tuning.drift_tolerance = plan.drift_tolerance;
  }
  mpi::WorldOptions wopts;
  wopts.nprocs = s.nprocs;
  wopts.seed = s.seed;
  wopts.noise_scale = s.noise_scale;
  if (plan.enabled()) wopts.fault_plan = &plan;
  mpi::World world(engine, machine, wopts);

  // One function-set shared by every rank.  Fiber mode builds one per rank
  // (each rank's program is self-contained); sharing changes nothing — the
  // set is immutable — and at 100k+ ranks per-rank copies would dominate
  // the memory budget the flat arenas exist to bound.
  auto fset = scenario_functionset(s);

  exec::MachineSpec spec;
  spec.compute_per_iter = s.compute_per_iter;
  spec.iterations = s.iterations;
  spec.progress_calls = s.progress_calls;
  spec.make_request = [&](mpi::Ctx& ctx, std::vector<std::byte>& sbuf,
                          std::vector<std::byte>& rbuf) {
    auto req = adcl::request_create(
        ctx, fset, scenario_args(s, ctx, sbuf, rbuf), tuning);
    req->selection().force_winner(pinned);
    return req;
  };

  exec::MachineRunner runner(world, std::move(spec));
  runner.start();
  engine.run();
  runner.check_finished();

  const exec::Outcome& o = runner.outcome();
  out.impl = o.impl;
  out.loop_time = o.loop_time;
  out.decision_iteration = o.decision_iteration;
  out.decision_time = o.decision_time;
  out.post_decision_time = o.post_decision_time;
  out.post_decision_iterations = o.post_decision_iterations;
  return out;
}

}  // namespace

RunOutcome run_fixed(const MicroScenario& s, int func_idx) {
  auto fset = scenario_functionset(s);
  if (func_idx < 0 || func_idx >= static_cast<int>(fset->size())) {
    throw std::invalid_argument("run_fixed: bad function index");
  }
  const std::string label =
      scenario_label(s, "fixed:" + fset->function(func_idx).name);
  adcl::TuningOptions tuning;  // irrelevant: selection is forced
  RunOutcome out = s.exec == ExecMode::Machine
                       ? run_loop_machine(s, func_idx, label)
                       : run_loop(s, tuning, func_idx, label);
  out.impl = fset->function(func_idx).name;
  out.post_decision_time = out.loop_time;
  out.post_decision_iterations = s.iterations;
  return out;
}

RunOutcome run_adcl(const MicroScenario& s, adcl::TuningOptions opts) {
  if (s.exec == ExecMode::Machine) {
    throw std::invalid_argument(
        "run_adcl: run-time selection blocks on the decision allreduce and "
        "needs fibers; machine mode supports pinned (run_fixed) runs only");
  }
  return run_loop(
      s, opts, -1,
      scenario_label(s, std::string("adcl:") + adcl::policy_name(opts.policy)));
}

VerificationRun run_verification(const MicroScenario& s,
                                 int tests_per_function, ScenarioPool* pool) {
  VerificationRun v;
  auto fset = scenario_functionset(s);
  adcl::TuningOptions bf;
  bf.policy = adcl::PolicyKind::BruteForce;
  bf.tests_per_function = tests_per_function;
  adcl::TuningOptions heur = bf;
  heur.policy = adcl::PolicyKind::AttributeHeuristic;

  // Component runs: one task per fixed implementation, plus the two ADCL
  // policies.  Each owns its Engine, so they are independent; results
  // land by index and the aggregation below is order-insensitive.
  const std::size_t nfun = fset->size();
  v.fixed.resize(nfun);
  auto unit = [&](std::size_t i) {
    if (i < nfun) {
      v.fixed[i] = run_fixed(s, static_cast<int>(i));
    } else if (i == nfun) {
      v.adcl_bruteforce = run_adcl(s, bf);
    } else {
      v.adcl_heuristic = run_adcl(s, heur);
    }
  };
  if (pool != nullptr) {
    pool->run_indexed(nfun + 2, unit);
  } else {
    for (std::size_t i = 0; i < nfun + 2; ++i) unit(i);
  }

  double best = std::numeric_limits<double>::infinity();
  for (std::size_t f = 0; f < nfun; ++f) {
    if (v.fixed[f].loop_time < best) {
      best = v.fixed[f].loop_time;
      v.best_fixed = static_cast<int>(f);
    }
  }

  // "Correct" (paper §IV-A): the chosen implementation's fixed-run time is
  // within 5% of the best fixed implementation.
  auto correct = [&](const RunOutcome& o) {
    for (const RunOutcome& f : v.fixed) {
      if (f.impl == o.impl) return f.loop_time <= best * (1 + kCorrectTolerance);
    }
    return false;
  };
  v.bruteforce_correct = correct(v.adcl_bruteforce);
  v.heuristic_correct = correct(v.adcl_heuristic);
  return v;
}

}  // namespace nbctune::harness
