#include "coll/iallgather.hpp"

#include <stdexcept>

namespace nbctune::coll {

namespace {
// Null-propagating block addressing: cost-model runs pass null buffers.
std::byte* blk(void* base, std::size_t block, int i) {
  if (base == nullptr) return nullptr;
  return static_cast<std::byte*>(base) + std::size_t(i) * block;
}
}  // namespace

nbc::Schedule build_iallgather_linear(int me, int n, const void* sbuf,
                                      void* rbuf, std::size_t block) {
  nbc::Schedule s;
  s.copy(sbuf, blk(rbuf, block, me), block);
  for (int off = 1; off < n; ++off) {
    const int to = (me + off) % n;
    const int from = (me - off + n) % n;
    s.recv(blk(rbuf, block, from), block, from);
    s.send(sbuf, block, to);
  }
  s.finalize();
  nbc::trace_built(s, "iallgather.linear", me);
  return s;
}

nbc::Schedule build_iallgather_ring(int me, int n, const void* sbuf,
                                    void* rbuf, std::size_t block) {
  nbc::Schedule s;
  s.copy(sbuf, blk(rbuf, block, me), block);
  s.barrier();
  const int to = (me + 1) % n;
  const int from = (me - 1 + n) % n;
  for (int step = 0; step < n - 1; ++step) {
    const int send_block = (me - step + n) % n;
    const int recv_block = (me - step - 1 + n) % n;
    s.recv(blk(rbuf, block, recv_block), block, from);
    s.send(blk(rbuf, block, send_block), block, to);
    s.barrier();
  }
  s.finalize();
  nbc::trace_built(s, "iallgather.ring", me);
  return s;
}

nbc::Schedule build_iallgather_recursive_doubling(int me, int n,
                                                  const void* sbuf, void* rbuf,
                                                  std::size_t block) {
  if (!is_pow2(n)) {
    throw std::invalid_argument(
        "recursive doubling allgather requires a power-of-two size");
  }
  nbc::Schedule s;
  s.copy(sbuf, blk(rbuf, block, me), block);
  s.barrier();
  // After step k this rank owns the 2^(k+1) blocks of its aligned group.
  for (int mask = 1; mask < n; mask <<= 1) {
    const int peer = me ^ mask;
    const int my_base = me & ~(mask - 1);      // start of my owned run
    const int peer_base = peer & ~(mask - 1);  // start of the run I get
    s.recv(blk(rbuf, block, peer_base), std::size_t(mask) * block, peer);
    s.send(blk(rbuf, block, my_base), std::size_t(mask) * block, peer);
    s.barrier();
  }
  s.finalize();
  nbc::trace_built(s, "iallgather.recursive_doubling", me);
  return s;
}

}  // namespace nbctune::coll
