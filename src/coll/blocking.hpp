#pragma once

// Blocking execution of collective schedules, and the fixed blocking
// MPI_Alltoall-style comparator used by the paper's application study
// (Figs. 10-12): a production-MPI-like decision rule selecting bruck for
// tiny, linear for medium, pairwise for large payloads.

#include <cstddef>

#include "mpi/world.hpp"
#include "nbc/schedule.hpp"

namespace nbctune::coll {

/// Run a schedule to completion (start + wait); the blocking counterpart
/// of handing the schedule to an nbc::Handle.
void run_blocking(mpi::Ctx& ctx, const mpi::Comm& comm,
                  const nbc::Schedule& schedule, int tag);

/// Blocking all-to-all with a fixed size-based algorithm choice, standing
/// in for MPI_Alltoall of a tuned production MPI.
void blocking_alltoall(mpi::Ctx& ctx, const mpi::Comm& comm, const void* sbuf,
                       void* rbuf, std::size_t block);

/// Blocking broadcast comparator (binomial, 64 KB segments).
void blocking_bcast(mpi::Ctx& ctx, const mpi::Comm& comm, void* buf,
                    std::size_t bytes, int root);

}  // namespace nbctune::coll
