# Empty dependencies file for nbctune_sim.
# This may be replaced when dependencies are built.
