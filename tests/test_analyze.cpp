// Post-hoc analysis layer (src/analyze): a hand-computed golden on the
// 2-rank ibcast trace, the blame-sums-to-elapsed property, the Chrome
// trace round-trip, the ADCL decision audit, the guideline checks on
// synthetic scenarios, and byte-identical report JSON at any pool
// thread count.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "adcl/functionsets.hpp"
#include "adcl/selection.hpp"
#include "analyze/analyze.hpp"
#include "analyze/chrome_reader.hpp"
#include "analyze/regress.hpp"
#include "coll/ibcast.hpp"
#include "harness/scenario_pool.hpp"
#include "mpi/world.hpp"
#include "nbc/handle.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"
#include "trace/trace.hpp"

using namespace nbctune;
namespace t = nbctune::testing;

namespace {

/// Run an np-rank binomial ibcast `ops` times under the current tracer.
void run_ibcast(int nprocs, std::size_t bytes, int ops = 1,
                std::uint64_t seed = 1) {
  std::vector<std::byte> buf(bytes);
  t::run_world(net::whale(), nprocs, [&](mpi::Ctx& ctx) {
    nbc::Schedule s = coll::build_ibcast(ctx.world_rank(), nprocs,
                                        buf.data(), bytes, /*root=*/0,
                                        coll::kFanoutBinomial,
                                        /*seg_bytes=*/0);
    nbc::Handle h(ctx, ctx.world().comm_world(), &s, 1 << 20);
    for (int i = 0; i < ops; ++i) {
      h.start();
      h.wait();
    }
  }, /*noise_scale=*/0.0, seed);
}

/// One traced scenario, drained out of the session and converted.
analyze::ScenarioTrace traced(const std::string& label,
                              const std::function<void()>& body) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  {
    trace::Scope scope(label);
    body();
  }
  auto traces = trace::Session::instance().drain();
  EXPECT_EQ(traces.size(), 1u);
  return analyze::from_finished(traces.at(0));
}

/// Expected aggregate blame: per op instance, the duration of the
/// last-finishing nbc.op span — recomputed here independently of the
/// analyzer's grouping code.
double expected_blame_total(const analyze::ScenarioTrace& t) {
  std::map<std::uint64_t, std::pair<double, double>> by_corr;  // end, dur
  for (const analyze::AEvent& e : t.events) {
    if (e.name != "nbc.op" || !e.is_span()) continue;
    auto [it, fresh] = by_corr.try_emplace(e.corr, e.end(), e.dur);
    if (!fresh && e.end() > it->second.first) {
      it->second = {e.end(), e.dur};
    }
  }
  double sum = 0.0;
  for (const auto& [corr, v] : by_corr) sum += v.second;
  return sum;
}

}  // namespace

// --------------------------------------------------------- label parsing

TEST(AnalyzeLabel, ParsesMicrobenchConvention) {
  const analyze::LabelKey k =
      analyze::parse_label("ibcast whale np32 4096B adcl:brute-force");
  ASSERT_TRUE(k.valid);
  EXPECT_EQ(k.op, "ibcast");
  EXPECT_EQ(k.platform, "whale");
  EXPECT_EQ(k.nprocs, 32);
  EXPECT_EQ(k.bytes, 4096u);
  EXPECT_EQ(k.what, "adcl:brute-force");
  EXPECT_EQ(k.group(), "ibcast whale np32 4096B");
  EXPECT_EQ(k.size_group(), "ibcast whale np32 adcl:brute-force");
  EXPECT_EQ(k.rank_group(), "ibcast whale 4096B adcl:brute-force");
}

TEST(AnalyzeLabel, SplitsPlanAndExecSuffixes) {
  // Suffixes stack as "<what>[+plan=NAME][+exec=MODE]" (microbench.cpp).
  const analyze::LabelKey k = analyze::parse_label(
      "ialltoall crill np8 1024B fixed:linear+plan=lossy+exec=machine");
  ASSERT_TRUE(k.valid);
  EXPECT_EQ(k.what, "fixed:linear");
  EXPECT_EQ(k.plan, "lossy");
  EXPECT_EQ(k.exec, "machine");
  EXPECT_EQ(k.group(), "ialltoall crill np8 1024B plan=lossy exec=machine");
  EXPECT_EQ(k.size_group(),
            "ialltoall crill np8 fixed:linear plan=lossy exec=machine");

  // Exec tag without a plan; the fiber default stays untagged so fiber
  // and machine runs land in distinct G2/G3 comparison groups.
  const analyze::LabelKey m = analyze::parse_label(
      "ibcast mega np1024 1024B fixed:binomial/seg32k+exec=machine");
  ASSERT_TRUE(m.valid);
  EXPECT_EQ(m.what, "fixed:binomial/seg32k");
  EXPECT_TRUE(m.plan.empty());
  EXPECT_EQ(m.exec, "machine");
  const analyze::LabelKey f = analyze::parse_label(
      "ibcast mega np1024 1024B fixed:binomial/seg32k");
  ASSERT_TRUE(f.valid);
  EXPECT_TRUE(f.exec.empty());
  EXPECT_NE(f.group(), m.group());
}

TEST(AnalyzeLabel, SplitsTopoSuffix) {
  // The topology tag is the outermost suffix ("+topo=<tag>" appended
  // last) and must be stripped before the plan/exec tags.
  const analyze::LabelKey k = analyze::parse_label(
      "iscatter crill np96 65536B fixed:striped+plan=lossy+topo=rails2");
  ASSERT_TRUE(k.valid);
  EXPECT_EQ(k.what, "fixed:striped");
  EXPECT_EQ(k.plan, "lossy");
  EXPECT_EQ(k.topo, "rails2");
  EXPECT_EQ(k.group(), "iscatter crill np96 65536B plan=lossy topo=rails2");
  EXPECT_EQ(k.size_group(),
            "iscatter crill np96 fixed:striped plan=lossy topo=rails2");
  EXPECT_EQ(k.rank_group(),
            "iscatter crill 65536B fixed:striped plan=lossy topo=rails2");

  // A tagged and an untagged run of the same scenario land in different
  // guideline groups: topology variants never compare against each other.
  const analyze::LabelKey u = analyze::parse_label(
      "iscatter crill np96 65536B fixed:striped+plan=lossy");
  ASSERT_TRUE(u.valid);
  EXPECT_TRUE(u.topo.empty());
  EXPECT_NE(u.group(), k.group());

  // Stacked with the exec tag: exec still parses, topo strips first.
  const analyze::LabelKey m = analyze::parse_label(
      "ibcast whale np32 4096B fixed:2lvl-binomial+exec=machine+topo=hier");
  ASSERT_TRUE(m.valid);
  EXPECT_EQ(m.what, "fixed:2lvl-binomial");
  EXPECT_EQ(m.exec, "machine");
  EXPECT_EQ(m.topo, "hier");
}

TEST(AnalyzeLabel, RejectsOtherShapes) {
  EXPECT_FALSE(analyze::parse_label("").valid);
  EXPECT_FALSE(analyze::parse_label("golden ibcast").valid);
  // FFT labels have six tokens and an n<grid> field instead of bytes.
  EXPECT_FALSE(
      analyze::parse_label("fft3d whale np8 n64 pipelined libnbc").valid);
  EXPECT_FALSE(analyze::parse_label("ibcast whale npX 4096B f").valid);
  EXPECT_FALSE(analyze::parse_label("ibcast whale np2 4096 f").valid);
}

// ------------------------------------------------- golden 2-rank ibcast

TEST(AnalyzeGolden, TwoRankIbcastCriticalPath) {
  const analyze::ScenarioTrace tr =
      traced("golden", [] { run_ibcast(2, 4096); });
  const analyze::Report r = analyze::analyze({tr});
  ASSERT_EQ(r.scenarios.size(), 1u);
  const analyze::ScenarioReport& s = r.scenarios[0];

  // One op on each rank, all completing (G1 material).
  EXPECT_EQ(s.ops_started, 2u);
  EXPECT_EQ(s.ops_completed, 2u);
  EXPECT_TRUE(s.zero_compute);

  // Both ranks allocate op correlation id 1 for their first operation,
  // so the analyzer sees exactly one op instance...
  ASSERT_TRUE(s.has_critical);
  EXPECT_EQ(s.worst.corr, 1u);
  // ...whose critical rank is the receiver: rank 1 cannot finish before
  // the 4 KB eager payload serialized over the wire and arrived.
  EXPECT_EQ(s.worst.critical_rank, 1);
  EXPECT_GT(s.worst.elapsed, 0.0);

  // The blame partition is exact: components sum to the elapsed time.
  EXPECT_NEAR(s.worst.blame.total(), s.worst.elapsed,
              1e-9 * std::max(1.0, s.worst.elapsed));
  // No compute anywhere in this program.
  EXPECT_EQ(s.worst.blame.compute, 0.0);
  // The receiver's window must contain the wire serialization of the
  // payload it waited for.
  EXPECT_GT(s.worst.blame.wire, 0.0);

  // The critical path walks back to the sender through the eager
  // message: exactly one inbound transfer on rank 1.
  ASSERT_GE(s.worst.hops.size(), 1u);
  EXPECT_EQ(s.worst.hops[0].rank, 1);
  EXPECT_EQ(s.worst.hops[0].from_rank, 0);
  EXPECT_GE(s.worst.hops[0].arrival_ts, s.worst.start);
  EXPECT_LE(s.worst.hops[0].post_ts, s.worst.hops[0].arrival_ts);

  // Overlap accounting: both ranks ran exactly one handle; with no
  // compute the overlap ratio is 0 by definition.
  ASSERT_EQ(s.ranks.size(), 2u);
  EXPECT_EQ(s.ranks[0].rank, 0);
  EXPECT_EQ(s.ranks[0].ops, 1u);
  EXPECT_EQ(s.ranks[1].ops, 1u);
  EXPECT_EQ(s.ranks[0].overlap_ratio, 0.0);
  EXPECT_EQ(s.ranks[0].compute_in_op, 0.0);
  // The receiver's slack is bounded by its op elapsed.
  EXPECT_LE(s.ranks[1].slack, s.ranks[1].op_time + 1e-12);

  // Execution-resource counters flow from the per-scenario trace: one
  // fiber per rank, and a non-zero World arena footprint.
  EXPECT_EQ(s.fibers_created, 2u);
  EXPECT_GT(s.peak_arena_bytes, 0u);

  // G1 evaluated and passing; the label is not microbench-shaped, so the
  // comparative guidelines stay n/a.
  ASSERT_EQ(r.guidelines.size(), 7u);
  EXPECT_EQ(r.guidelines[0].id, "G1");
  EXPECT_EQ(r.guidelines[0].checked, 1);
  EXPECT_EQ(r.guidelines[0].passed, 1);
  EXPECT_STREQ(r.guidelines[0].status(), "pass");
}

// ------------------------------------------------------ blame property

TEST(AnalyzeProperty, BlameComponentsSumToOpElapsed) {
  // Several shapes: eager and rendezvous payloads, growing rank counts,
  // repeated ops per handle.  For every scenario the aggregated blame
  // must equal the sum over op instances of the critical rank's elapsed
  // time, and the worst instance must partition exactly.
  struct Case {
    int nprocs;
    std::size_t bytes;
    int ops;
  };
  const Case cases[] = {
      {2, 64, 3}, {4, 4096, 2}, {8, 65536, 1}, {4, 1 << 20, 2}};
  for (const Case& c : cases) {
    const analyze::ScenarioTrace tr =
        traced("prop", [&] { run_ibcast(c.nprocs, c.bytes, c.ops); });
    const analyze::Report r = analyze::analyze({tr});
    ASSERT_EQ(r.scenarios.size(), 1u);
    const analyze::ScenarioReport& s = r.scenarios[0];
    SCOPED_TRACE("np" + std::to_string(c.nprocs) + " " +
                 std::to_string(c.bytes) + "B x" + std::to_string(c.ops));
    EXPECT_EQ(s.ops_started, s.ops_completed);
    const double expected = expected_blame_total(tr);
    EXPECT_GT(expected, 0.0);
    EXPECT_NEAR(s.blame.total(), expected, 1e-9 * std::max(1.0, expected));
    ASSERT_TRUE(s.has_critical);
    EXPECT_NEAR(s.worst.blame.total(), s.worst.elapsed,
                1e-9 * std::max(1.0, s.worst.elapsed));
  }
}

// -------------------------------------------------- chrome round-trip

TEST(AnalyzeChrome, RoundTripMatchesInProcessAnalysis) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  {
    trace::Scope a("rt one");
    run_ibcast(2, 4096);
  }
  {
    trace::Scope b("rt two");
    run_ibcast(4, 65536, 2, /*seed=*/7);
  }
  std::ostringstream chrome;
  trace::Session::instance().write_chrome(chrome);
  std::vector<analyze::ScenarioTrace> direct;
  for (const auto& f : trace::Session::instance().drain()) {
    direct.push_back(analyze::from_finished(f));
  }

  std::istringstream is(chrome.str());
  const std::vector<analyze::ScenarioTrace> parsed =
      analyze::read_chrome(is);
  ASSERT_EQ(parsed.size(), direct.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].label, direct[i].label);
    EXPECT_EQ(parsed[i].events.size(), direct[i].events.size());
  }

  // The analyses agree: same structure, op times within the 1 ns export
  // quantization of the Chrome format.
  const analyze::Report ra = analyze::analyze(direct);
  const analyze::Report rb = analyze::analyze(parsed);
  ASSERT_EQ(ra.scenarios.size(), rb.scenarios.size());
  for (std::size_t i = 0; i < ra.scenarios.size(); ++i) {
    const auto& a = ra.scenarios[i];
    const auto& b = rb.scenarios[i];
    EXPECT_EQ(a.ops_completed, b.ops_completed);
    EXPECT_NEAR(a.mean_op_elapsed, b.mean_op_elapsed, 2e-9);
    EXPECT_EQ(a.worst.critical_rank, b.worst.critical_rank);
    EXPECT_EQ(a.worst.hops.size(), b.worst.hops.size());
    EXPECT_NEAR(a.blame.total(), b.blame.total(),
                2e-9 * std::max(1.0, a.ops_completed * 1.0));
  }
}

TEST(AnalyzeChrome, CountersReaderParsesDump) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  {
    trace::Scope scope("ctr");
    run_ibcast(2, 4096);
  }
  std::ostringstream os;
  trace::Session::instance().write_counters(os);
  (void)trace::Session::instance().drain();
  std::istringstream is(os.str());
  const auto counters = analyze::read_counters(is);
  EXPECT_EQ(counters.at("scenarios"), 1u);
  EXPECT_EQ(counters.at("msg.eager"), 1u);
  EXPECT_EQ(counters.at("nbc.ops_started"), 2u);
  EXPECT_EQ(counters.at("wire.bytes_per_transfer.count"), 1u);
  EXPECT_EQ(counters.at("wire.bytes_per_transfer.sum"), 4096u);
}

// ----------------------------------------------------------- adcl audit

TEST(AnalyzeAdcl, AuditReplaysScoresAndDecision) {
  const analyze::ScenarioTrace tr = traced("ibcast whale np2 64B adcl:x", [] {
    // Synthesized learning phase: three functions scored, func 1 wins.
    trace::instant(1.0, 0, trace::Cat::Adcl, "adcl.score", "func", 0,
                   "score_ns", 3000, 8);
    trace::instant(2.0, 0, trace::Cat::Adcl, "adcl.score", "func", 1,
                   "score_ns", 1000, 16);
    trace::instant(3.0, 0, trace::Cat::Adcl, "adcl.score", "func", 2,
                   "score_ns", 2000, 24);
    trace::instant(3.0, 0, trace::Cat::Adcl, "adcl.decision", "winner", 1,
                   "iter", 24, 24);
    trace::count(trace::Ctr::AdclSamplesSeen, 24);
    trace::count(trace::Ctr::AdclSamplesFiltered, 3);
  });
  const analyze::Report r = analyze::analyze({tr});
  ASSERT_EQ(r.scenarios.size(), 1u);
  const analyze::AdclAudit& a = r.scenarios[0].adcl;
  ASSERT_TRUE(a.present);
  EXPECT_EQ(a.winner, 1);
  EXPECT_EQ(a.decision_iteration, 24);
  EXPECT_DOUBLE_EQ(a.decision_ts, 3.0);
  ASSERT_EQ(a.scores.size(), 3u);
  EXPECT_EQ(a.scores[1].func, 1);
  EXPECT_EQ(a.scores[1].iteration, 16);
  EXPECT_NEAR(a.winner_score, 1000e-9, 1e-15);
  EXPECT_NEAR(a.runner_up_score, 2000e-9, 1e-15);
  // Margin: runner-up is 2x the winner.
  EXPECT_NEAR(a.margin, 1.0, 1e-9);
  EXPECT_EQ(a.samples_seen, 24u);
  EXPECT_EQ(a.samples_filtered, 3u);
}

TEST(AnalyzeAdcl, LiveSelectionEmitsAuditableScores) {
  // A real (not synthesized) tuned run must produce a full audit: as
  // many score events as scored batches and a decision consistent with
  // SelectionState's own bookkeeping.
  auto fset = adcl::make_ibcast_functionset();
  adcl::TuningOptions opts;
  opts.tests_per_function = 2;
  const analyze::ScenarioTrace tr = traced("live adcl", [&] {
    t::run_world(net::whale(), 2, [&](mpi::Ctx& ctx) {
      adcl::SelectionState sel(fset, opts);
      int guard = 0;
      while (!sel.decided() && ++guard < 10000) {
        sel.record(ctx, ctx.world().comm_world(),
                   1e-6 * (1 + sel.current()));
      }
      EXPECT_TRUE(sel.decided());
      EXPECT_EQ(static_cast<int>(sel.measurements().size()),
                sel.iterations() / opts.tests_per_function);
    });
  });
  const analyze::Report r = analyze::analyze({tr});
  const analyze::AdclAudit& a = r.scenarios.at(0).adcl;
  ASSERT_TRUE(a.present);
  // Functions score proportionally to their index, so func 0 wins.
  EXPECT_EQ(a.winner, 0);
  EXPECT_GT(a.scores.size(), 0u);
  EXPECT_GT(a.margin, 0.0);
}

// ----------------------------------------------------------- guidelines

namespace {

/// Synthetic scenario: `ops` op instances of `dur` seconds on track 0,
/// plus optional adcl decision metadata.
analyze::ScenarioTrace synth(const std::string& label, int ops, double dur,
                             bool with_compute = false,
                             double decision_ts = -1.0) {
  analyze::ScenarioTrace t;
  t.label = label;
  double at = 0.0;
  for (int i = 0; i < ops; ++i) {
    analyze::AEvent start;
    start.ts = at;
    start.track = 0;
    start.cat = "nbc";
    start.name = "nbc.start";
    start.corr = static_cast<std::uint64_t>(i + 1);
    t.events.push_back(start);
    if (with_compute) {
      analyze::AEvent c;
      c.ts = at;
      c.dur = dur / 2;
      c.track = 0;
      c.cat = "progress";
      c.name = "compute";
      t.events.push_back(c);
    }
    analyze::AEvent op;
    op.ts = at;
    op.dur = dur;
    op.track = 0;
    op.cat = "nbc";
    op.name = "nbc.op";
    op.corr = static_cast<std::uint64_t>(i + 1);
    t.events.push_back(op);
    at += dur * 2;
  }
  if (decision_ts >= 0.0) {
    analyze::AEvent d;
    d.ts = decision_ts;
    d.track = 0;
    d.cat = "adcl";
    d.name = "adcl.decision";
    d.akey = "winner";
    d.aval = 0;
    d.bkey = "iter";
    d.bval = 4;
    t.events.push_back(d);
  }
  return t;
}

const analyze::GuidelineResult& find_g(const analyze::Report& r,
                                       const std::string& id) {
  for (const auto& g : r.guidelines) {
    if (g.id == id) return g;
  }
  ADD_FAILURE() << "guideline " << id << " missing";
  static analyze::GuidelineResult none;
  return none;
}

}  // namespace

TEST(AnalyzeGuidelines, TunedWinnerBeatsOrMatchesFixed) {
  const std::string grp = "ibcast whale np4 1024B ";
  const analyze::Report ok = analyze::analyze({
      synth(grp + "fixed:fast", 4, 100e-6),
      synth(grp + "fixed:slow", 4, 200e-6),
      synth(grp + "adcl:brute-force", 4, 100e-6, false, /*decision=*/0.0),
  });
  EXPECT_EQ(find_g(ok, "G2").checked, 1);
  EXPECT_EQ(find_g(ok, "G2").passed, 1);

  const analyze::Report bad = analyze::analyze({
      synth(grp + "fixed:fast", 4, 100e-6),
      synth(grp + "adcl:brute-force", 4, 200e-6, false, /*decision=*/0.0),
  });
  EXPECT_EQ(find_g(bad, "G2").checked, 1);
  EXPECT_EQ(find_g(bad, "G2").passed, 0);
  ASSERT_EQ(find_g(bad, "G2").violations.size(), 1u);
  EXPECT_STREQ(find_g(bad, "G2").status(), "FAIL");
}

TEST(AnalyzeGuidelines, NonBlockingVsBlockingAtZeroCompute) {
  const std::string grp = "ialltoall whale np8 4096B ";
  const analyze::Report ok = analyze::analyze({
      synth(grp + "fixed:linear", 2, 100e-6),
      synth(grp + "fixed:blocking-linear", 2, 110e-6),
  });
  EXPECT_EQ(find_g(ok, "G3").checked, 1);
  EXPECT_EQ(find_g(ok, "G3").passed, 1);

  // A non-blocking run 2x slower than its blocking twin violates G3...
  const analyze::Report bad = analyze::analyze({
      synth(grp + "fixed:linear", 2, 220e-6),
      synth(grp + "fixed:blocking-linear", 2, 110e-6),
  });
  EXPECT_EQ(find_g(bad, "G3").passed, 0);

  // ...but only at zero compute: with compute in the loop the check
  // does not apply.
  const analyze::Report na = analyze::analyze({
      synth(grp + "fixed:linear", 2, 220e-6, /*with_compute=*/true),
      synth(grp + "fixed:blocking-linear", 2, 110e-6, /*with_compute=*/true),
  });
  EXPECT_EQ(find_g(na, "G3").checked, 0);
  EXPECT_STREQ(find_g(na, "G3").status(), "n/a");
}

TEST(AnalyzeGuidelines, MonotoneInMessageSize) {
  const analyze::Report ok = analyze::analyze({
      synth("ibcast whale np4 1024B fixed:a", 2, 100e-6),
      synth("ibcast whale np4 4096B fixed:a", 2, 150e-6),
      synth("ibcast whale np4 16384B fixed:a", 2, 400e-6),
  });
  EXPECT_EQ(find_g(ok, "G4").checked, 2);
  EXPECT_EQ(find_g(ok, "G4").passed, 2);

  const analyze::Report bad = analyze::analyze({
      synth("ibcast whale np4 1024B fixed:a", 2, 100e-6),
      synth("ibcast whale np4 4096B fixed:a", 2, 50e-6),
  });
  EXPECT_EQ(find_g(bad, "G4").checked, 1);
  EXPECT_EQ(find_g(bad, "G4").passed, 0);
}

TEST(AnalyzeGuidelines, SplitMockupBoundsDoubledSize) {
  // G5: the full-size op may cost at most 2x the half-size op (+epsilon),
  // because running the op twice at half size is a valid mock-up.
  const analyze::Report ok = analyze::analyze({
      synth("ibcast whale np4 1024B fixed:a", 2, 100e-6),
      synth("ibcast whale np4 2048B fixed:a", 2, 190e-6),
  });
  EXPECT_EQ(find_g(ok, "G5").checked, 1);
  EXPECT_EQ(find_g(ok, "G5").passed, 1);

  // 2.6x the half-size time exceeds 2x(1 + 0.25): a split would win.
  const analyze::Report bad = analyze::analyze({
      synth("ibcast whale np4 1024B fixed:a", 2, 100e-6),
      synth("ibcast whale np4 2048B fixed:a", 2, 260e-6),
  });
  EXPECT_EQ(find_g(bad, "G5").checked, 1);
  EXPECT_EQ(find_g(bad, "G5").passed, 0);
  ASSERT_EQ(find_g(bad, "G5").violations.size(), 1u);

  // Non-doubling adjacent sizes (1 KiB -> 4 KiB) are not split pairs.
  const analyze::Report na = analyze::analyze({
      synth("ibcast whale np4 1024B fixed:a", 2, 100e-6),
      synth("ibcast whale np4 4096B fixed:a", 2, 900e-6),
  });
  EXPECT_EQ(find_g(na, "G5").checked, 0);
}

TEST(AnalyzeGuidelines, MonotoneInProcessCount) {
  // G6: growing np at fixed size/impl may not make the collective faster
  // (beyond the monotonicity tolerance).
  const analyze::Report ok = analyze::analyze({
      synth("ibcast whale np4 1024B fixed:a", 2, 100e-6),
      synth("ibcast whale np8 1024B fixed:a", 2, 140e-6),
      synth("ibcast whale np16 1024B fixed:a", 2, 200e-6),
  });
  EXPECT_EQ(find_g(ok, "G6").checked, 2);
  EXPECT_EQ(find_g(ok, "G6").passed, 2);

  const analyze::Report bad = analyze::analyze({
      synth("ibcast whale np4 1024B fixed:a", 2, 100e-6),
      synth("ibcast whale np8 1024B fixed:a", 2, 50e-6),
  });
  EXPECT_EQ(find_g(bad, "G6").checked, 1);
  EXPECT_EQ(find_g(bad, "G6").passed, 0);

  // Different sizes land in different rank groups: nothing to compare.
  const analyze::Report na = analyze::analyze({
      synth("ibcast whale np4 1024B fixed:a", 2, 100e-6),
      synth("ibcast whale np8 2048B fixed:a", 2, 50e-6),
  });
  EXPECT_EQ(find_g(na, "G6").checked, 0);
}

TEST(AnalyzeGuidelines, TwoLevelBeatsOrMatchesFlatOnMultiNode) {
  // G7: on a multi-node run (whale has 8 cores/node, so np32 spans 4
  // nodes) the two-level variant must stay within epsilon of the fastest
  // flat member of its family.
  const std::string grp = "ibcast whale np32 65536B ";
  const analyze::Report ok = analyze::analyze({
      synth(grp + "fixed:binomial/seg32k", 2, 110e-6),
      synth(grp + "fixed:binomial/seg64k", 2, 100e-6),
      synth(grp + "fixed:2lvl-binomial", 2, 90e-6),
  });
  EXPECT_EQ(find_g(ok, "G7").checked, 1);
  EXPECT_EQ(find_g(ok, "G7").passed, 1);

  // 2x the flat time exceeds epsilon: hierarchy awareness did not pay.
  const analyze::Report bad = analyze::analyze({
      synth(grp + "fixed:binomial/seg32k", 2, 100e-6),
      synth(grp + "fixed:2lvl-binomial", 2, 200e-6),
  });
  EXPECT_EQ(find_g(bad, "G7").checked, 1);
  EXPECT_EQ(find_g(bad, "G7").passed, 0);
  ASSERT_EQ(find_g(bad, "G7").violations.size(), 1u);
  EXPECT_STREQ(find_g(bad, "G7").status(), "FAIL");

  // Exact-name twin (unsegmented families like iallreduce).
  const std::string agrp = "iallreduce whale np32 65536B ";
  const analyze::Report exact = analyze::analyze({
      synth(agrp + "fixed:reduce-bcast", 2, 100e-6),
      synth(agrp + "fixed:2lvl-reduce-bcast", 2, 100e-6),
  });
  EXPECT_EQ(find_g(exact, "G7").checked, 1);
  EXPECT_EQ(find_g(exact, "G7").passed, 1);

  // Single-node runs are skipped: np4 fits inside one whale node, where
  // the two-level shape degenerates to the flat one.
  const analyze::Report single = analyze::analyze({
      synth("ibcast whale np4 65536B fixed:binomial/seg32k", 2, 100e-6),
      synth("ibcast whale np4 65536B fixed:2lvl-binomial", 2, 400e-6),
  });
  EXPECT_EQ(find_g(single, "G7").checked, 0);
  EXPECT_STREQ(find_g(single, "G7").status(), "n/a");

  // Unknown platforms carry no node geometry: nothing to check.
  const analyze::Report unknown = analyze::analyze({
      synth("ibcast lab9 np32 65536B fixed:binomial/seg32k", 2, 100e-6),
      synth("ibcast lab9 np32 65536B fixed:2lvl-binomial", 2, 400e-6),
  });
  EXPECT_EQ(find_g(unknown, "G7").checked, 0);
}

TEST(AnalyzeAdcl, PruneEventsLandInAudit) {
  const analyze::ScenarioTrace tr = traced("ialltoall whale np2 64B adcl:g",
                                           [] {
    trace::instant(1.0, 0, trace::Cat::Adcl, "adcl.prune", "func", 0,
                   "bound_ns", 45000, 2);
    trace::instant(2.0, 0, trace::Cat::Adcl, "adcl.prune", "func", 1,
                   "bound_ns", 45000, 4);
    trace::instant(3.0, 0, trace::Cat::Adcl, "adcl.decision", "winner", 2,
                   "iter", 6, 6);
  });
  const analyze::Report r = analyze::analyze({tr});
  const analyze::AdclAudit& a = r.scenarios.at(0).adcl;
  ASSERT_TRUE(a.present);
  ASSERT_EQ(a.prunes.size(), 2u);
  EXPECT_EQ(a.prunes[0].func, 0);
  EXPECT_NEAR(a.prunes[0].bound, 45000e-9, 1e-15);
  EXPECT_EQ(a.prunes[0].iteration, 2);
  EXPECT_EQ(a.prunes[1].func, 1);
  EXPECT_EQ(a.prunes[1].iteration, 4);

  // The prunes ride the JSON report as a conditional array.
  std::ostringstream os;
  analyze::write_json(os, r);
  EXPECT_NE(os.str().find("\"prunes\":[{\"func\":0,\"bound_ns\":45000"),
            std::string::npos);
}

// --------------------------------------------------------- sample stats

TEST(AnalyzeStats, OrderStatsMedianAndCi) {
  // n = 9, samples 1..9 ms (shuffled): median is the 5th order statistic;
  // the ~95% CI ranks are (n-1)/2 +- 0.98*sqrt(9) = 4 +- 2.94, i.e.
  // floor(1.06) = 1 and ceil(6.94) = 7 -> bounds v[1] and v[7].
  std::vector<double> v;
  for (int i = 9; i >= 1; --i) v.push_back(i * 1e-3);
  const analyze::SampleStats st = analyze::order_stats(v);
  EXPECT_EQ(st.n, 9u);
  EXPECT_DOUBLE_EQ(st.median, 5e-3);
  EXPECT_DOUBLE_EQ(st.lo, 2e-3);
  EXPECT_DOUBLE_EQ(st.hi, 8e-3);

  // Even n: the median interpolates the two central order statistics.
  const analyze::SampleStats ev =
      analyze::order_stats({4e-3, 1e-3, 3e-3, 2e-3});
  EXPECT_EQ(ev.n, 4u);
  EXPECT_DOUBLE_EQ(ev.median, 2.5e-3);
  // Ranks 1.5 +- 1.96 clamp to the full sample.
  EXPECT_DOUBLE_EQ(ev.lo, 1e-3);
  EXPECT_DOUBLE_EQ(ev.hi, 4e-3);

  // Degenerate sizes.
  const analyze::SampleStats one = analyze::order_stats({7e-3});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.median, 7e-3);
  EXPECT_DOUBLE_EQ(one.lo, 7e-3);
  EXPECT_DOUBLE_EQ(one.hi, 7e-3);
  EXPECT_EQ(analyze::order_stats({}).n, 0u);
}

TEST(AnalyzeStats, MinRepsGateFlagsThinSamples) {
  // 3 ops with default min_reps = 5: flagged as not-a-measurement.
  const analyze::Report thin =
      analyze::analyze({synth("thin", 3, 100e-6)});
  EXPECT_EQ(thin.scenarios.at(0).op_stats.n, 3u);
  EXPECT_FALSE(thin.scenarios.at(0).min_reps_met);

  const analyze::Report fat = analyze::analyze({synth("fat", 6, 100e-6)});
  EXPECT_EQ(fat.scenarios.at(0).op_stats.n, 6u);
  EXPECT_TRUE(fat.scenarios.at(0).min_reps_met);

  // The knob is honoured.
  analyze::Options opts;
  opts.min_reps = 2;
  const analyze::Report low =
      analyze::analyze({synth("thin", 3, 100e-6)}, opts);
  EXPECT_TRUE(low.scenarios.at(0).min_reps_met);

  // The table writer surfaces the flag.
  std::ostringstream os;
  analyze::write_table(os, thin);
  EXPECT_NE(os.str().find("[below min-reps: not a measurement]"),
            std::string::npos);
}

// ----------------------------------------------------- regression gate

namespace {

/// Round-trip a Report through the JSON writer into a regress digest.
analyze::ReportDigest digest_of(const analyze::Report& r) {
  std::ostringstream os;
  analyze::write_json(os, r);
  std::istringstream is(os.str());
  return analyze::read_report_json(is);
}

}  // namespace

TEST(AnalyzeRegress, SelfDiffIsClean) {
  const analyze::Report r = analyze::analyze({
      synth("ibcast whale np4 1024B fixed:a", 6, 100e-6),
      synth("ibcast whale np4 2048B fixed:a", 6, 190e-6),
  });
  const analyze::ReportDigest d = digest_of(r);
  EXPECT_EQ(d.schema, "nbctune-report-v2");
  ASSERT_EQ(d.scenarios.size(), 2u);
  EXPECT_EQ(d.scenarios[0].stat_n, 6u);

  const analyze::RegressResult res =
      analyze::regress(d, d, analyze::RegressTolerances{});
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.scenarios_compared, 2u);
  EXPECT_EQ(res.guidelines_compared, 7u);
}

TEST(AnalyzeRegress, InjectedDriftFails) {
  const analyze::Report old_r =
      analyze::analyze({synth("ibcast whale np4 1024B fixed:a", 6, 100e-6)});
  // 3x the op time: relative drift 2.0 >> op_rel, and the degenerate CIs
  // ([100,100] vs [300,300] us) are disjoint, so the CI arbitration does
  // not save it.
  const analyze::Report new_r =
      analyze::analyze({synth("ibcast whale np4 1024B fixed:a", 6, 300e-6)});
  const analyze::RegressResult res = analyze::regress(
      digest_of(old_r), digest_of(new_r), analyze::RegressTolerances{});
  ASSERT_FALSE(res.ok());
  bool saw_op_drift = false;
  for (const auto& v : res.violations) {
    if (v.what.find("mean op time drifted") != std::string::npos) {
      saw_op_drift = true;
    }
  }
  EXPECT_TRUE(saw_op_drift);

  std::ostringstream os;
  analyze::write_regress(os, res, analyze::RegressTolerances{});
  EXPECT_NE(os.str().find("REGRESSION:"), std::string::npos);
}

TEST(AnalyzeRegress, CiOverlapForgivesSubstantialDrift) {
  // With CI arbitration off, a 40% drift fails outright...
  analyze::ReportDigest o;
  o.schema = "nbctune-report-v2";
  analyze::ScenarioDigest s;
  s.label = "x";
  s.mean_op = 100e-6;
  s.stat_n = 9;
  s.ci_lo = 80e-6;
  s.ci_hi = 160e-6;
  o.scenarios.push_back(s);
  analyze::ReportDigest n = o;
  n.scenarios[0].mean_op = 140e-6;
  n.scenarios[0].ci_lo = 90e-6;
  n.scenarios[0].ci_hi = 200e-6;

  analyze::RegressTolerances strict;
  strict.ci_separation = false;
  EXPECT_FALSE(analyze::regress(o, n, strict).ok());

  // ...but with overlapping ~95% CIs the runs are compatible: forgiven.
  analyze::RegressTolerances lenient;
  lenient.ci_separation = true;
  EXPECT_TRUE(analyze::regress(o, n, lenient).ok());

  // Disjoint CIs at the same relative drift: a real regression.
  n.scenarios[0].ci_lo = 170e-6;
  n.scenarios[0].ci_hi = 210e-6;
  EXPECT_FALSE(analyze::regress(o, n, lenient).ok());
}

TEST(AnalyzeRegress, StructuralChangesAlwaysFlagged) {
  const analyze::Report base =
      analyze::analyze({synth("ibcast whale np4 1024B fixed:a", 6, 100e-6)});
  const analyze::ReportDigest d = digest_of(base);

  // A scenario vanishing from the new report is a violation.
  analyze::ReportDigest gone = d;
  gone.scenarios.clear();
  EXPECT_FALSE(analyze::regress(d, gone, analyze::RegressTolerances{}).ok());

  // So is a winner flip.
  analyze::ReportDigest o = d, n = d;
  o.scenarios[0].has_adcl = true;
  o.scenarios[0].adcl_winner = 0;
  n.scenarios[0].has_adcl = true;
  n.scenarios[0].adcl_winner = 2;
  const analyze::RegressResult flip =
      analyze::regress(o, n, analyze::RegressTolerances{});
  ASSERT_FALSE(flip.ok());
  EXPECT_NE(flip.violations[0].what.find("winner flipped"),
            std::string::npos);

  // And a guideline regressing from pass to fail.
  analyze::ReportDigest gbad = d;
  for (auto& g : gbad.guidelines) {
    if (g.id == "G1") g.violations = 1;
  }
  EXPECT_FALSE(analyze::regress(d, gbad, analyze::RegressTolerances{}).ok());
}

TEST(AnalyzeRegress, ToleranceParsing) {
  analyze::RegressTolerances tol;
  EXPECT_TRUE(tol.set("blame_share", "0.2"));
  EXPECT_DOUBLE_EQ(tol.blame_share, 0.2);
  EXPECT_TRUE(tol.set("ci_separation", "0"));
  EXPECT_FALSE(tol.ci_separation);
  EXPECT_FALSE(tol.set("bogus_key", "1"));
  EXPECT_FALSE(tol.set("op_rel", "fast"));

  std::istringstream cfg(
      "# comment\n\nblame_share 0.15  # trailing comment\nop_rel 0.5\n");
  analyze::read_tolerances(cfg, tol);
  EXPECT_DOUBLE_EQ(tol.blame_share, 0.15);
  EXPECT_DOUBLE_EQ(tol.op_rel, 0.5);

  std::istringstream bad("no_such_knob 1\n");
  EXPECT_THROW(analyze::read_tolerances(bad, tol), std::runtime_error);
}

TEST(AnalyzeRegress, RejectsForeignJson) {
  std::istringstream not_a_report("{\"traceEvents\":[]}");
  EXPECT_THROW(analyze::read_report_json(not_a_report), std::runtime_error);
}

// ------------------------------------------------- report determinism

TEST(AnalyzeReport, JsonIsByteIdenticalAcrossThreadCounts) {
  trace::Session::enable();
  auto sweep = [&](int threads) {
    (void)trace::Session::instance().drain();
    harness::ScenarioPool pool(threads);
    pool.run_indexed(6, [&](std::size_t i) {
      trace::Scope scope("task " + std::to_string(i));
      run_ibcast(2 + static_cast<int>(i % 3), 512 << i, 1,
                 /*seed=*/i + 1);
    });
    std::vector<analyze::ScenarioTrace> traces;
    for (const auto& f : trace::Session::instance().drain()) {
      traces.push_back(analyze::from_finished(f));
    }
    std::ostringstream os;
    analyze::write_json(os, analyze::analyze(traces));
    return os.str();
  };
  const std::string j1 = sweep(1);
  const std::string j4 = sweep(4);
  EXPECT_EQ(j1, j4);
  EXPECT_NE(j1.find("\"schema\":\"nbctune-report-v2\""), std::string::npos);
  EXPECT_NE(j1.find("\"stats\":{\"min_reps_met\":"), std::string::npos);
  EXPECT_NE(j1.find("\"guidelines\":["), std::string::npos);
}

TEST(AnalyzeReport, TableWriterMentionsEverySection) {
  const analyze::ScenarioTrace tr =
      traced("table", [] { run_ibcast(2, 4096); });
  std::ostringstream os;
  analyze::write_table(os, analyze::analyze({tr}));
  const std::string s = os.str();
  EXPECT_NE(s.find("blame:"), std::string::npos);
  EXPECT_NE(s.find("worst op:"), std::string::npos);
  EXPECT_NE(s.find("guidelines"), std::string::npos);
  EXPECT_NE(s.find("[pass] G1"), std::string::npos);
}
