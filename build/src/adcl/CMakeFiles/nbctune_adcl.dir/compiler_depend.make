# Empty compiler generated dependencies file for nbctune_adcl.
# This may be replaced when dependencies are built.
