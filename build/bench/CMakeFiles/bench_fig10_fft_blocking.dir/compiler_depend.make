# Empty compiler generated dependencies file for bench_fig10_fft_blocking.
# This may be replaced when dependencies are built.
