#pragma once

// Deterministic random number generation for the simulator.
//
// A thin wrapper over a SplitMix64/xoshiro-style generator.  The engine owns
// one Rng; because event execution order is deterministic, every simulation
// with the same seed reproduces bit-identically.

#include <cstdint>

namespace nbctune::sim {

/// Small, fast, deterministic PRNG (xoshiro256** core, SplitMix64 seeding).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) (n > 0).
  std::uint64_t uniform_below(std::uint64_t n) noexcept {
    return next_u64() % n;
  }

  /// Standard normal via Box-Muller (one value per call; cached pair).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double sigma) noexcept {
    return mean + sigma * normal();
  }

 private:
  std::uint64_t s_[4]{};
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace nbctune::sim
