#pragma once

// Runtime selection logic (paper §III-A): during the first iterations the
// library cycles through candidate implementations, measuring each a fixed
// number of times; a policy then picks the winner used for the rest of the
// run.  Three policies are provided, mirroring ADCL:
//
//   BruteForce          measure every function; guaranteed to find the best
//   AttributeHeuristic  optimize one attribute at a time, pruning functions
//                       with non-optimal values ([13]; assumes attributes
//                       are not correlated)
//   TwoKFactorial       2^k factorial screening over attribute extremes,
//                       then coordinate refinement (handles correlated
//                       attributes; [4])
//   GuidelinePruned     brute force over the survivors of guideline
//                       verdicts (guidelines.hpp): members convicted by a
//                       prior analysis pass are skipped outright, and any
//                       candidate scoring above a measured mock-up bound
//                       is dropped mid-search (Hunold: guideline verdicts
//                       as tuning signals)
//
// Policies are deterministic state machines over (function, score) pairs;
// scores are robust-filtered, rank-agreed execution times.

#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adcl/filtering.hpp"
#include "adcl/function.hpp"
#include "adcl/guidelines.hpp"

namespace nbctune::adcl {

class HistoryStore;

enum class PolicyKind {
  BruteForce,
  AttributeHeuristic,
  TwoKFactorial,
  GuidelinePruned,
};

[[nodiscard]] const char* policy_name(PolicyKind k) noexcept;

/// Knobs of the tuning process.
struct TuningOptions {
  PolicyKind policy = PolicyKind::BruteForce;
  /// Measurements per candidate implementation before scoring it.
  int tests_per_function = 8;
  FilterKind filter = FilterKind::Iqr;
  double trim_frac = 0.25;
  /// Optional historic-learning store: reuse past winners, record new ones.
  HistoryStore* history = nullptr;
  /// Extra key component for history lookups (e.g. progress-call count).
  std::string history_extra;
  /// NBC cancel-on-timeout recovery (0 = off); wired into nbc::Handle by
  /// adcl::Request under lossy fault plans.
  double op_timeout = 0.0;
  int max_attempts = 10;
  /// Drift detection: number of post-decision samples per check window
  /// (0 = off).  When the agreed window score exceeds the decision-time
  /// baseline by more than `drift_tolerance` (relative), tuning re-opens.
  int drift_window = 0;
  double drift_tolerance = 0.5;
  /// Guideline verdicts for PolicyKind::GuidelinePruned (ignored by the
  /// other policies).  Shared so drift re-tunes re-apply the same
  /// verdicts: a convicted member stays pruned across policy resets.
  std::shared_ptr<const GuidelineBook> guidelines;
};

/// A selection policy: a deterministic walk over functions to measure.
class Policy {
 public:
  /// One pruning step of an eliminating policy.  Attribute-heuristic
  /// sweeps set `attr`/`value`/`kept` (an attribute was fixed and every
  /// candidate with a different value removed); guideline prunes leave
  /// `attr` at -1 and set `guideline` (and `bound` for mock-up verdicts)
  /// instead.  Either way the record is the audit counterpart of the
  /// brute-force score history.
  struct Elimination {
    int attr = -1;      ///< attribute index whose sweep closed (-1: guideline)
    int value = 0;      ///< value the attribute was fixed at
    int kept = -1;      ///< best function of the closing phase
    int iteration = 0;  ///< tuning iteration (stamped by SelectionState)
    std::vector<int> pruned;  ///< functions removed from the candidate set
    std::string guideline;    ///< convicting verdict (guideline prunes only)
    double bound = 0.0;  ///< violated mock-up bound, seconds (0: pre-marked)
  };

  virtual ~Policy() = default;
  /// First function to measure; -1 if the decision is immediate.
  virtual int first() = 0;
  /// Batch for `func` finished with robust `score`; returns the next
  /// function to measure or -1 when ready to decide.
  virtual int next(int func, double score) = 0;
  /// The winning function (valid after next() returned -1).
  [[nodiscard]] virtual int winner() const = 0;
  /// Pruning steps taken so far (empty for non-eliminating policies).
  [[nodiscard]] virtual const std::vector<Elimination>& eliminations() const;
};

/// `book` feeds PolicyKind::GuidelinePruned (nullptr or empty degrades it
/// to plain brute force); the other kinds ignore it.
std::unique_ptr<Policy> make_policy(PolicyKind kind, const FunctionSet& fset,
                                    const GuidelineBook* book);

std::unique_ptr<Policy> make_policy(PolicyKind kind, const FunctionSet& fset);

/// Estimated main effect of each attribute from a 2^k factorial run
/// (positive = raising the attribute from lo to hi increases time).
/// Only meaningful for TwoKFactorial policies; exposed for reporting.
std::vector<double> factorial_main_effects(const Policy& policy);

/// The tuning state of one operation: tracks per-function samples, drives
/// the policy, and synchronizes decisions across ranks.  Shareable by
/// several Requests of the same operation (co-tuned, e.g. the window
/// slots of the FFT kernel).
class SelectionState {
 public:
  SelectionState(std::shared_ptr<const FunctionSet> fset, TuningOptions opts);

  /// The function to execute in the current iteration.
  [[nodiscard]] int current() const noexcept { return current_; }
  [[nodiscard]] bool decided() const noexcept { return decided_; }
  [[nodiscard]] int winner() const noexcept { return winner_; }

  /// Record one measured iteration.  When the batch for the current
  /// function completes, agrees on the score across `comm` (allreduce max)
  /// and advances the policy; may finalize the decision.
  void record(mpi::Ctx& ctx, const mpi::Comm& comm, double sample);

  /// Historic learning / testing: skip the learning phase entirely.
  void force_winner(int func);

  /// Fail-stop recovery: a communicator shrink is a group-size change, so
  /// the decision (and every agreed score) is stale.  Re-opens tuning
  /// with a fresh policy — like a drift re-tune — and rolls the iteration
  /// counter back to `resume_iteration`, the globally agreed iteration
  /// survivors redo from, so per-rank sample counts realign.
  void reset_for_shrink(mpi::Ctx& ctx, int resume_iteration);

  // ---- introspection ----
  [[nodiscard]] const FunctionSet& function_set() const noexcept {
    return *fset_;
  }
  [[nodiscard]] std::shared_ptr<const FunctionSet> fset_ptr() const noexcept {
    return fset_;
  }
  [[nodiscard]] const TuningOptions& options() const noexcept { return opts_; }
  [[nodiscard]] int iterations() const noexcept { return iterations_; }
  /// Iteration at which the decision fell (-1 while undecided).
  [[nodiscard]] int decision_iteration() const noexcept {
    return decision_iteration_;
  }
  /// Simulated time at which the decision fell (NaN while undecided).
  [[nodiscard]] double decision_time() const noexcept {
    return decision_time_;
  }
  /// Agreed scores of all measured functions.
  [[nodiscard]] const std::map<int, double>& scores() const noexcept {
    return scores_;
  }
  /// One agreed (rank-synchronized) batch score, in policy order.
  struct Measurement {
    int func = -1;        ///< function-set index scored
    double score = 0.0;   ///< robust, allreduce-max agreed seconds
    int iteration = 0;    ///< tuning iteration at which the batch closed
  };
  /// Chronological log of every agreed score — the audit trail a
  /// decision-analysis pass replays (same data as the adcl.score trace
  /// events, without requiring tracing to be on).
  [[nodiscard]] const std::vector<Measurement>& measurements()
      const noexcept {
    return measurements_;
  }
  /// Key under which the decision is recorded in the history store.
  void set_history_key(std::string key) { history_key_ = std::move(key); }

  /// Pruning audit of eliminating policies, iteration-stamped (empty for
  /// brute force / factorial); survives drift-triggered policy resets.
  [[nodiscard]] const std::vector<Policy::Elimination>& eliminations()
      const noexcept {
    return eliminations_;
  }
  /// Times drift detection re-opened tuning, and at which iterations.
  [[nodiscard]] int retunes() const noexcept { return retunes_; }
  [[nodiscard]] const std::vector<int>& retune_iterations() const noexcept {
    return retune_iterations_;
  }

 private:
  void finalize(mpi::Ctx& ctx);
  /// Post-decision sample monitoring; may re-open tuning (drift).
  void maybe_drift(mpi::Ctx& ctx, const mpi::Comm& comm, double sample);
  /// Copy eliminations the policy produced since the last call into
  /// `eliminations_`, stamped with the current iteration.  Covers prunes
  /// from Policy::first() (pre-tuning verdicts) as well as from next().
  void adopt_policy_eliminations();
  /// Emit trace events + counters for adopted eliminations not yet
  /// traced.  Deferred separately from adoption because the constructor
  /// (where first() may already prune) has no Ctx to trace against.
  void emit_elimination_events(mpi::Ctx& ctx);

  std::shared_ptr<const FunctionSet> fset_;
  TuningOptions opts_;
  std::unique_ptr<Policy> policy_;
  int current_ = 0;
  bool decided_ = false;
  int winner_ = -1;
  int iterations_ = 0;
  int decision_iteration_ = -1;
  double decision_time_ = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> batch_;
  std::map<int, double> scores_;
  std::vector<Measurement> measurements_;
  std::string history_key_;
  std::vector<Policy::Elimination> eliminations_;
  std::size_t policy_elims_seen_ = 0;  ///< adopted from the current policy
  std::size_t traced_elims_ = 0;       ///< emitted as trace events
  int retunes_ = 0;
  std::vector<int> retune_iterations_;
  double baseline_score_ = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> drift_batch_;
};

}  // namespace nbctune::adcl
