# Empty dependencies file for bench_fig4_msgsize.
# This may be replaced when dependencies are built.
