file(REMOVE_RECURSE
  "CMakeFiles/progress_tuning.dir/progress_tuning.cpp.o"
  "CMakeFiles/progress_tuning.dir/progress_tuning.cpp.o.d"
  "progress_tuning"
  "progress_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progress_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
