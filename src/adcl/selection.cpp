#include "adcl/selection.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

#include "adcl/history.hpp"
#include "trace/trace.hpp"

namespace nbctune::adcl {

const char* policy_name(PolicyKind k) noexcept {
  switch (k) {
    case PolicyKind::BruteForce:
      return "brute-force";
    case PolicyKind::AttributeHeuristic:
      return "attribute-heuristic";
    case PolicyKind::TwoKFactorial:
      return "2k-factorial";
    case PolicyKind::GuidelinePruned:
      return "guideline-pruned";
  }
  return "?";
}

const std::vector<Policy::Elimination>& Policy::eliminations() const {
  static const std::vector<Elimination> empty;
  return empty;
}

namespace {

int argmin(const std::map<int, double>& scores,
           const std::vector<int>& among) {
  int best = -1;
  double best_score = std::numeric_limits<double>::infinity();
  for (int f : among) {
    auto it = scores.find(f);
    if (it != scores.end() && it->second < best_score) {
      best = f;
      best_score = it->second;
    }
  }
  return best;
}

// -------------------------------------------------------------- BruteForce

class BruteForcePolicy final : public Policy {
 public:
  explicit BruteForcePolicy(const FunctionSet& fset) : fset_(fset) {}

  int first() override { return fset_.size() > 1 ? 0 : finish(0); }

  int next(int func, double score) override {
    scores_[func] = score;
    const int nxt = func + 1;
    if (nxt < static_cast<int>(fset_.size())) return nxt;
    return finish(-1);
  }

  [[nodiscard]] int winner() const override { return winner_; }

 private:
  int finish(int immediate) {
    if (immediate == 0 && fset_.size() <= 1) {
      winner_ = fset_.size() == 1 ? 0 : -1;
      return -1;
    }
    std::vector<int> all(fset_.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
    winner_ = argmin(scores_, all);
    return -1;
  }

  const FunctionSet& fset_;
  std::map<int, double> scores_;
  int winner_ = -1;
};

// ----------------------------------------------------- AttributeHeuristic

// Optimize one attribute at a time (paper §III-A, [13]): determine the
// best value of attribute a with the other attributes held at the current
// base, fix it, prune all functions with a different value, move on.
class AttributeHeuristicPolicy final : public Policy {
 public:
  explicit AttributeHeuristicPolicy(const FunctionSet& fset) : fset_(fset) {
    for (std::size_t i = 0; i < fset_.size(); ++i) {
      candidates_.push_back(static_cast<int>(i));
    }
  }

  int first() override {
    if (fset_.size() <= 1) {
      winner_ = fset_.size() == 1 ? 0 : -1;
      return -1;
    }
    if (fset_.attributes().empty()) {
      // No attribute description: degenerate to brute force.
      brute_ = std::make_unique<BruteForcePolicy>(fset_);
      return brute_->first();
    }
    base_ = fset_.function(0).attrs;
    begin_phase(0);
    return advance();
  }

  int next(int func, double score) override {
    if (brute_) {
      const int r = brute_->next(func, score);
      if (r < 0) winner_ = brute_->winner();
      return r;
    }
    scores_[func] = score;
    ++phase_pos_;
    return advance();
  }

  [[nodiscard]] int winner() const override { return winner_; }

  [[nodiscard]] const std::vector<Elimination>& eliminations()
      const override {
    return eliminations_;
  }

 private:
  // Functions matching `base_` except value v at attribute `a`.
  int variant(std::size_t a, int v) const {
    std::vector<int> attrs = base_;
    attrs[a] = v;
    const int idx = fset_.find_by_attrs(attrs);
    if (idx < 0) return -1;
    if (std::find(candidates_.begin(), candidates_.end(), idx) ==
        candidates_.end()) {
      return -1;
    }
    return idx;
  }

  void begin_phase(std::size_t a) {
    attr_ = a;
    phase_list_.clear();
    phase_pos_ = 0;
    for (int v : fset_.attributes().at(a).values) {
      const int idx = variant(a, v);
      if (idx >= 0) phase_list_.push_back(idx);
    }
  }

  int advance() {
    for (;;) {
      // Measure the next unmeasured function of this phase.
      while (phase_pos_ < phase_list_.size()) {
        const int f = phase_list_[phase_pos_];
        if (!scores_.contains(f)) return f;
        ++phase_pos_;  // score known from an earlier phase: reuse it
      }
      // Phase complete: fix the attribute at its best value and prune.
      const int best = argmin(scores_, phase_list_);
      if (best >= 0) {
        base_ = fset_.function(best).attrs;
        const int v = base_[attr_];
        Elimination elim;
        elim.attr = static_cast<int>(attr_);
        elim.value = v;
        elim.kept = best;
        std::erase_if(candidates_, [&](int c) {
          if (fset_.function(c).attrs[attr_] != v) {
            elim.pruned.push_back(c);
            return true;
          }
          return false;
        });
        if (!elim.pruned.empty()) eliminations_.push_back(std::move(elim));
      }
      if (attr_ + 1 >= fset_.attributes().size()) {
        winner_ = argmin(scores_, candidates_);
        if (winner_ < 0) winner_ = best;
        return -1;
      }
      begin_phase(attr_ + 1);
    }
  }

  const FunctionSet& fset_;
  std::unique_ptr<BruteForcePolicy> brute_;
  std::vector<int> candidates_;
  std::vector<int> base_;
  std::size_t attr_ = 0;
  std::vector<int> phase_list_;
  std::size_t phase_pos_ = 0;
  std::map<int, double> scores_;
  int winner_ = -1;
  std::vector<Elimination> eliminations_;
};

// --------------------------------------------------------- TwoKFactorial

// 2^k factorial screening (paper §III-A, [4]): measure the extreme-value
// corners of the attribute space, estimate per-attribute main effects,
// take the best corner, then refine interior values one attribute at a
// time.  Unlike the heuristic, every corner combination is observed, so
// correlated attributes are handled.
class TwoKFactorialPolicy final : public Policy {
 public:
  explicit TwoKFactorialPolicy(const FunctionSet& fset) : fset_(fset) {}

  int first() override {
    if (fset_.size() <= 1) {
      winner_ = fset_.size() == 1 ? 0 : -1;
      return -1;
    }
    if (fset_.attributes().empty()) {
      brute_ = std::make_unique<BruteForcePolicy>(fset_);
      return brute_->first();
    }
    build_corners();
    return advance();
  }

  int next(int func, double score) override {
    if (brute_) {
      const int r = brute_->next(func, score);
      if (r < 0) winner_ = brute_->winner();
      return r;
    }
    scores_[func] = score;
    ++pos_;
    return advance();
  }

  [[nodiscard]] int winner() const override { return winner_; }

  /// Main effect per attribute: mean(hi corners) - mean(lo corners).
  [[nodiscard]] std::vector<double> main_effects() const {
    const auto& attrs = fset_.attributes();
    std::vector<double> effects(attrs.size(), 0.0);
    for (std::size_t a = 0; a < attrs.size(); ++a) {
      const int lo = attrs.at(a).values.front();
      const int hi = attrs.at(a).values.back();
      if (lo == hi) continue;
      double lo_sum = 0, hi_sum = 0;
      int lo_n = 0, hi_n = 0;
      for (int f : corners_) {
        auto it = scores_.find(f);
        if (it == scores_.end()) continue;
        const int v = fset_.function(f).attrs[a];
        if (v == lo) {
          lo_sum += it->second;
          ++lo_n;
        } else if (v == hi) {
          hi_sum += it->second;
          ++hi_n;
        }
      }
      if (lo_n > 0 && hi_n > 0) effects[a] = hi_sum / hi_n - lo_sum / lo_n;
    }
    return effects;
  }

 private:
  void build_corners() {
    const auto& attrs = fset_.attributes();
    std::vector<std::vector<int>> levels;
    for (const auto& a : attrs.all()) {
      std::vector<int> l{a.values.front()};
      if (a.values.back() != a.values.front()) l.push_back(a.values.back());
      levels.push_back(std::move(l));
    }
    std::vector<int> combo(attrs.size());
    std::set<int> seen;
    enumerate(levels, 0, combo, seen);
    list_ = corners_;
    pos_ = 0;
    refining_ = false;
  }

  void enumerate(const std::vector<std::vector<int>>& levels, std::size_t a,
                 std::vector<int>& combo, std::set<int>& seen) {
    if (a == levels.size()) {
      const int idx = fset_.find_by_attrs(combo);
      if (idx >= 0 && seen.insert(idx).second) corners_.push_back(idx);
      return;
    }
    for (int v : levels[a]) {
      combo[a] = v;
      enumerate(levels, a + 1, combo, seen);
    }
  }

  void begin_refine(std::size_t a) {
    attr_ = a;
    list_.clear();
    pos_ = 0;
    const auto& values = fset_.attributes().at(a).values;
    for (int v : values) {
      std::vector<int> attrs = base_;
      attrs[a] = v;
      const int idx = fset_.find_by_attrs(attrs);
      if (idx >= 0) list_.push_back(idx);
    }
  }

  int advance() {
    for (;;) {
      while (pos_ < list_.size()) {
        const int f = list_[pos_];
        if (!scores_.contains(f)) return f;
        ++pos_;
      }
      if (!refining_) {
        const int best = argmin(scores_, corners_);
        base_ = best >= 0 ? fset_.function(best).attrs
                          : fset_.function(0).attrs;
        refining_ = true;
        begin_refine(0);
        continue;
      }
      const int best = argmin(scores_, list_);
      if (best >= 0) base_ = fset_.function(best).attrs;
      if (attr_ + 1 >= fset_.attributes().size()) {
        std::vector<int> measured;
        for (const auto& [f, s] : scores_) measured.push_back(f);
        winner_ = argmin(scores_, measured);
        return -1;
      }
      begin_refine(attr_ + 1);
    }
  }

  const FunctionSet& fset_;
  std::unique_ptr<BruteForcePolicy> brute_;
  std::vector<int> corners_;
  std::vector<int> list_;
  std::size_t pos_ = 0;
  bool refining_ = false;
  std::size_t attr_ = 0;
  std::vector<int> base_;
  std::map<int, double> scores_;
  int winner_ = -1;
};

// -------------------------------------------------------- GuidelinePruned

// Brute force over the survivors of guideline verdicts (Hunold: mock-up
// checks convict implementations before they are ever timed).  Members a
// prior analysis pass marked dominated are pruned in first(); members
// whose agreed score exceeds a measured mock-up bound are pruned in
// next().  At least one candidate always survives, and every prune
// leaves an audit Elimination naming the convicting guideline.
class GuidelinePrunedPolicy final : public Policy {
 public:
  GuidelinePrunedPolicy(const FunctionSet& fset, const GuidelineBook* book)
      : fset_(fset), book_(book) {
    for (std::size_t i = 0; i < fset_.size(); ++i) {
      candidates_.push_back(static_cast<int>(i));
    }
  }

  int first() override {
    if (book_ != nullptr) {
      for (int c : std::vector<int>(candidates_)) {
        if (candidates_.size() <= 1) break;
        const DominatedMark* m =
            book_->find_dominated(fset_.function(c).name);
        if (m == nullptr) continue;
        Elimination e;
        e.guideline = m->guideline;
        e.pruned.push_back(c);
        eliminations_.push_back(std::move(e));
        std::erase(candidates_, c);
      }
    }
    if (candidates_.size() == 1) {
      winner_ = candidates_.front();
      return -1;
    }
    return next_unmeasured();
  }

  int next(int func, double score) override {
    scores_[func] = score;
    if (book_ != nullptr && candidates_.size() > 1) {
      if (const MockupBound* b = book_->violated_by(score)) {
        Elimination e;
        e.guideline = b->guideline;
        e.bound = b->bound;
        e.pruned.push_back(func);
        eliminations_.push_back(std::move(e));
        std::erase(candidates_, func);
      }
    }
    const int nxt = next_unmeasured();
    if (nxt >= 0) return nxt;
    winner_ = argmin(scores_, candidates_);
    if (winner_ < 0) winner_ = candidates_.front();
    return -1;
  }

  [[nodiscard]] int winner() const override { return winner_; }

  [[nodiscard]] const std::vector<Elimination>& eliminations()
      const override {
    return eliminations_;
  }

 private:
  int next_unmeasured() const {
    for (int c : candidates_) {
      if (!scores_.contains(c)) return c;
    }
    return -1;
  }

  const FunctionSet& fset_;
  const GuidelineBook* book_;
  std::vector<int> candidates_;
  std::map<int, double> scores_;
  int winner_ = -1;
  std::vector<Elimination> eliminations_;
};

}  // namespace

std::unique_ptr<Policy> make_policy(PolicyKind kind, const FunctionSet& fset,
                                    const GuidelineBook* book) {
  switch (kind) {
    case PolicyKind::BruteForce:
      return std::make_unique<BruteForcePolicy>(fset);
    case PolicyKind::AttributeHeuristic:
      return std::make_unique<AttributeHeuristicPolicy>(fset);
    case PolicyKind::TwoKFactorial:
      return std::make_unique<TwoKFactorialPolicy>(fset);
    case PolicyKind::GuidelinePruned:
      return std::make_unique<GuidelinePrunedPolicy>(
          fset, book != nullptr && !book->empty() ? book : nullptr);
  }
  throw std::invalid_argument("unknown policy");
}

std::unique_ptr<Policy> make_policy(PolicyKind kind, const FunctionSet& fset) {
  return make_policy(kind, fset, nullptr);
}

std::vector<double> factorial_main_effects(const Policy& policy) {
  const auto* p = dynamic_cast<const TwoKFactorialPolicy*>(&policy);
  if (p == nullptr) return {};
  return p->main_effects();
}

// --------------------------------------------------------- SelectionState

SelectionState::SelectionState(std::shared_ptr<const FunctionSet> fset,
                               TuningOptions opts)
    : fset_(std::move(fset)), opts_(opts) {
  if (!fset_ || fset_->size() == 0) {
    throw std::invalid_argument("SelectionState: empty function set");
  }
  if (opts_.tests_per_function < 1) {
    throw std::invalid_argument("SelectionState: tests_per_function < 1");
  }
  policy_ = make_policy(opts_.policy, *fset_, opts_.guidelines.get());
  const int f = policy_->first();
  // first() may already prune (pre-marked guideline verdicts); adopt the
  // audit records now, trace them at the first record() call (no Ctx yet).
  adopt_policy_eliminations();
  if (f < 0) {
    decided_ = true;
    winner_ = policy_->winner() < 0 ? 0 : policy_->winner();
    current_ = winner_;
    decision_iteration_ = 0;
  } else {
    current_ = f;
  }
}

void SelectionState::force_winner(int func) {
  if (func < 0 || func >= static_cast<int>(fset_->size())) {
    throw std::invalid_argument("force_winner: bad function index");
  }
  decided_ = true;
  winner_ = func;
  current_ = func;
  decision_iteration_ = iterations_;
  // A pinned run bypasses the policy entirely: drop any constructor-time
  // prunes so they never reach the trace (pinned goldens stay identical
  // with or without a guideline book).
  eliminations_.clear();
  traced_elims_ = 0;
}

void SelectionState::adopt_policy_eliminations() {
  const auto& elims = policy_->eliminations();
  for (std::size_t i = policy_elims_seen_; i < elims.size(); ++i) {
    Policy::Elimination e = elims[i];
    e.iteration = iterations_;
    eliminations_.push_back(std::move(e));
  }
  policy_elims_seen_ = elims.size();
}

void SelectionState::emit_elimination_events(mpi::Ctx& ctx) {
  for (; traced_elims_ < eliminations_.size(); ++traced_elims_) {
    const Policy::Elimination& e = eliminations_[traced_elims_];
    const auto iter = static_cast<std::uint64_t>(e.iteration);
    if (e.attr >= 0) {
      trace::count(trace::Ctr::AdclEliminations);
      if (trace::active()) {
        trace::instant(ctx.now(), ctx.world_rank(), trace::Cat::Adcl,
                       "adcl.eliminate", "attr",
                       static_cast<std::uint64_t>(e.attr), "value",
                       static_cast<std::uint64_t>(e.value), iter);
        for (int f : e.pruned) {
          trace::instant(ctx.now(), ctx.world_rank(), trace::Cat::Adcl,
                         "adcl.eliminate.func", "func",
                         static_cast<std::uint64_t>(f), "kept",
                         static_cast<std::uint64_t>(e.kept), iter);
        }
      }
    } else {
      // Guideline prune: one convicted function per record; bound_ns 0
      // means a pre-marked (analyzer-verdict) conviction.
      trace::count(trace::Ctr::AdclGuidelinePrunes);
      if (trace::active()) {
        for (int f : e.pruned) {
          trace::instant(ctx.now(), ctx.world_rank(), trace::Cat::Adcl,
                         "adcl.prune", "func", static_cast<std::uint64_t>(f),
                         "bound_ns",
                         static_cast<std::uint64_t>(
                             std::llround(e.bound * 1e9)),
                         iter);
        }
      }
    }
  }
}

void SelectionState::record(mpi::Ctx& ctx, const mpi::Comm& comm,
                            double sample) {
  ++iterations_;
  emit_elimination_events(ctx);
  if (decided_) {
    maybe_drift(ctx, comm, sample);
    return;
  }
  batch_.push_back(sample);
  if (static_cast<int>(batch_.size()) < opts_.tests_per_function) return;
  // Batch complete: agree on this function's score across the ranks (the
  // operation is only as fast as its slowest participant) and advance.
  const double local = robust_score(batch_, opts_.filter, opts_.trim_frac);
  const double agreed = ctx.allreduce(comm, local, mpi::ReduceOp::Max);
  batch_.clear();
  scores_[current_] = agreed;
  measurements_.push_back({current_, agreed, iterations_});
  trace::count(trace::Ctr::AdclBatchesScored);
  if (trace::active()) {
    // score_ns: integral nanoseconds so exported traces audit bit-exactly
    // across platforms; corr carries the tuning iteration, linking scores
    // to the adcl.decision event of the same selection run.
    trace::instant(ctx.now(), ctx.world_rank(), trace::Cat::Adcl, "adcl.score",
                   "func", static_cast<std::uint64_t>(current_), "score_ns",
                   static_cast<std::uint64_t>(std::llround(agreed * 1e9)),
                   static_cast<std::uint64_t>(iterations_));
  }
  const int nxt = policy_->next(current_, agreed);
  adopt_policy_eliminations();
  emit_elimination_events(ctx);
  if (nxt < 0) {
    finalize(ctx);
  } else {
    current_ = nxt;
  }
}

void SelectionState::maybe_drift(mpi::Ctx& ctx, const mpi::Comm& comm,
                                 double sample) {
  if (opts_.drift_window <= 0) return;
  drift_batch_.push_back(sample);
  if (static_cast<int>(drift_batch_.size()) < opts_.drift_window) return;
  const double local =
      robust_score(drift_batch_, opts_.filter, opts_.trim_frac);
  const double agreed = ctx.allreduce(comm, local, mpi::ReduceOp::Max);
  drift_batch_.clear();
  if (std::isnan(baseline_score_)) {
    // No decision-time score on record (e.g. forced winner from history):
    // adopt the first post-decision window as the baseline.
    baseline_score_ = agreed;
    return;
  }
  if (agreed <= baseline_score_ * (1.0 + opts_.drift_tolerance)) return;
  // The operation has drifted away from its decision-time performance
  // (paper §V: network conditions change; the chosen implementation is no
  // longer best).  Re-open tuning with a fresh policy.  The check score is
  // rank-agreed, so every rank re-opens at the same iteration.
  ++retunes_;
  retune_iterations_.push_back(iterations_);
  trace::count(trace::Ctr::AdclRetunes);
  if (trace::active()) {
    trace::instant(ctx.now(), ctx.world_rank(), trace::Cat::Adcl,
                   "adcl.retune", "observed_ns",
                   static_cast<std::uint64_t>(std::llround(agreed * 1e9)),
                   "baseline_ns",
                   static_cast<std::uint64_t>(
                       std::llround(baseline_score_ * 1e9)),
                   static_cast<std::uint64_t>(iterations_));
  }
  decided_ = false;
  winner_ = -1;
  decision_iteration_ = -1;
  decision_time_ = std::numeric_limits<double>::quiet_NaN();
  baseline_score_ = std::numeric_limits<double>::quiet_NaN();
  scores_.clear();
  batch_.clear();
  policy_ = make_policy(opts_.policy, *fset_, opts_.guidelines.get());
  policy_elims_seen_ = 0;
  const int f = policy_->first();
  // A fresh guideline-pruned policy re-applies pre-marked verdicts:
  // convicted members stay out across drift re-tunes (audited again at
  // the current iteration).
  adopt_policy_eliminations();
  emit_elimination_events(ctx);
  if (f < 0) {
    finalize(ctx);
  } else {
    current_ = f;
  }
}

void SelectionState::reset_for_shrink(mpi::Ctx& ctx, int resume_iteration) {
  // Same reset as a drift re-tune, plus the iteration rollback: ranks
  // interrupted ahead of the failure had recorded samples the others
  // never saw, and redoing from the agreed iteration realigns them.
  ++retunes_;
  retune_iterations_.push_back(resume_iteration);
  trace::count(trace::Ctr::AdclRetunes);
  if (trace::active()) {
    trace::instant(ctx.now(), ctx.world_rank(), trace::Cat::Adcl,
                   "adcl.retune", "shrink", 1, "iter",
                   static_cast<std::uint64_t>(resume_iteration),
                   static_cast<std::uint64_t>(resume_iteration));
  }
  decided_ = false;
  winner_ = -1;
  iterations_ = resume_iteration;
  decision_iteration_ = -1;
  decision_time_ = std::numeric_limits<double>::quiet_NaN();
  baseline_score_ = std::numeric_limits<double>::quiet_NaN();
  scores_.clear();
  batch_.clear();
  drift_batch_.clear();
  policy_ = make_policy(opts_.policy, *fset_, opts_.guidelines.get());
  policy_elims_seen_ = 0;
  const int f = policy_->first();
  adopt_policy_eliminations();
  emit_elimination_events(ctx);
  if (f < 0) {
    finalize(ctx);
  } else {
    current_ = f;
  }
}

void SelectionState::finalize(mpi::Ctx& ctx) {
  decided_ = true;
  winner_ = policy_->winner();
  if (winner_ < 0) winner_ = 0;
  current_ = winner_;
  decision_iteration_ = iterations_;
  decision_time_ = ctx.now();
  // Drift baseline: the winner's decision-time score.  NaN (no measured
  // score, e.g. single-function sets) makes the first post-decision
  // window adopt itself as the baseline.
  baseline_score_ = scores_.contains(winner_)
                        ? scores_.at(winner_)
                        : std::numeric_limits<double>::quiet_NaN();
  drift_batch_.clear();
  trace::count(trace::Ctr::AdclDecisions);
  if (trace::active()) {
    trace::instant(ctx.now(), ctx.world_rank(), trace::Cat::Adcl,
                   "adcl.decision", "winner",
                   static_cast<std::uint64_t>(winner_), "iter",
                   static_cast<std::uint64_t>(decision_iteration_),
                   static_cast<std::uint64_t>(decision_iteration_));
  }
  if (opts_.history != nullptr && !history_key_.empty()) {
    opts_.history->put(history_key_, fset_->function(winner_).name);
  }
}

}  // namespace nbctune::adcl
