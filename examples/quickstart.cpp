// Quickstart: auto-tune a non-blocking all-to-all in ~60 lines.
//
// Spins up a simulated 32-process job on the "whale" InfiniBand cluster,
// creates a persistent tuned Ialltoall (ADCL_Ialltoall_init in the
// paper's API), runs the canonical init / compute+progress / wait loop,
// and prints which implementation the run-time selection picked.

#include <cstdio>
#include <vector>

#include "adcl/adcl.hpp"
#include "mpi/world.hpp"
#include "net/machine.hpp"
#include "net/platform.hpp"
#include "sim/engine.hpp"

using namespace nbctune;

int main() {
  sim::Engine engine(/*seed=*/42);
  net::Machine machine(net::whale());
  mpi::WorldOptions options;
  options.nprocs = 32;
  mpi::World world(engine, machine, options);

  world.launch([](mpi::Ctx& ctx) {
    const auto comm = ctx.world().comm_world();
    const int n = comm.size();
    const std::size_t block = 64 * 1024;  // bytes exchanged per process pair
    std::vector<std::byte> sendbuf(n * block), recvbuf(n * block);

    // Persistent tuned operation: the library will try each candidate
    // implementation for a few iterations, then stick with the winner.
    adcl::TuningOptions opts;
    opts.tests_per_function = 5;  // 3 algorithms x 5 -> decided at 15
    auto request = adcl::ialltoall_init(ctx, comm, sendbuf.data(),
                                        recvbuf.data(), block, opts);

    for (int iteration = 0; iteration < 20; ++iteration) {
      request->init();              // start the collective
      for (int p = 0; p < 5; ++p) {
        ctx.compute(10e-3 / 5);     // application work...
        request->progress();        // ...driving the progress engine
      }
      request->wait();              // complete the collective
    }

    if (ctx.world_rank() == 0) {
      const auto& selection = request->selection();
      std::printf("tuning finished after iteration %d\n",
                  selection.decision_iteration());
      std::printf("selected implementation: %s\n",
                  request->current_function().name.c_str());
      for (const auto& [fn, score] : selection.scores()) {
        std::printf("  measured %-14s -> %.6f s/iter\n",
                    selection.function_set().function(fn).name.c_str(),
                    score);
      }
      std::printf("total simulated time: %.3f s\n", ctx.now());
    }
  });

  engine.run();
  return 0;
}
