// FFT library: serial transforms against the O(n^2) reference, algebraic
// properties, and the distributed 3-D kernel (all patterns x back-ends)
// against a serial 3-D reference.

#include <gtest/gtest.h>

#include <complex>
#include <random>
#include <vector>

#include "fft/fft1d.hpp"
#include "fft/fft3d.hpp"
#include "mpi/world.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"

using namespace nbctune;
using fft::cplx;
namespace t = nbctune::testing;

namespace {

std::vector<cplx> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(d(gen), d(gen));
  return v;
}

double max_err(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

/// Serial 3-D FFT of A[z][y][x] (n^3), dimension-wise.
std::vector<cplx> fft3d_serial(std::vector<cplx> a, int n) {
  // x direction
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      fft::fft(a.data() + (std::size_t(z) * n + y) * n, n);
  // y direction
  std::vector<cplx> col(n);
  for (int z = 0; z < n; ++z)
    for (int x = 0; x < n; ++x) {
      for (int y = 0; y < n; ++y) col[y] = a[(std::size_t(z) * n + y) * n + x];
      fft::fft(col.data(), n);
      for (int y = 0; y < n; ++y) a[(std::size_t(z) * n + y) * n + x] = col[y];
    }
  // z direction
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) {
      for (int z = 0; z < n; ++z) col[z] = a[(std::size_t(z) * n + y) * n + x];
      fft::fft(col.data(), n);
      for (int z = 0; z < n; ++z) a[(std::size_t(z) * n + y) * n + x] = col[z];
    }
  return a;
}

}  // namespace

// --------------------------------------------------------------- serial

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(PowersAndOdd, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 3, 5, 6,
                                           7, 12, 15, 100, 243));

TEST_P(FftSizes, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  auto sig = random_signal(n, unsigned(n));
  auto expect = fft::dft_reference(sig.data(), n);
  fft::fft(sig.data(), n);
  EXPECT_LT(max_err(sig, expect), 1e-9 * double(n)) << "n=" << n;
}

TEST_P(FftSizes, InverseRoundTrips) {
  const std::size_t n = GetParam();
  auto sig = random_signal(n, unsigned(n) + 17);
  auto orig = sig;
  fft::fft(sig.data(), n, false);
  fft::fft(sig.data(), n, true);
  EXPECT_LT(max_err(sig, orig), 1e-10 * double(n + 1));
}

TEST(Fft1d, Pow2RejectsOddSizes) {
  std::vector<cplx> v(6);
  EXPECT_THROW(fft::fft_pow2(v.data(), 6), std::invalid_argument);
}

TEST(Fft1d, Linearity) {
  const std::size_t n = 32;
  auto a = random_signal(n, 1), b = random_signal(n, 2);
  std::vector<cplx> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  fft::fft(a.data(), n);
  fft::fft(b.data(), n);
  fft::fft(sum.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(sum[i] - (2.0 * a[i] + 3.0 * b[i])), 1e-10);
  }
}

TEST(Fft1d, ParsevalHolds) {
  const std::size_t n = 128;
  auto sig = random_signal(n, 5);
  double time_energy = 0;
  for (const auto& x : sig) time_energy += std::norm(x);
  fft::fft(sig.data(), n);
  double freq_energy = 0;
  for (const auto& x : sig) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / double(n), time_energy, 1e-9 * time_energy);
}

TEST(Fft1d, ImpulseGivesFlatSpectrum) {
  std::vector<cplx> v(16, cplx(0));
  v[0] = cplx(1);
  fft::fft(v.data(), 16);
  for (const auto& x : v) EXPECT_LT(std::abs(x - cplx(1)), 1e-12);
}

TEST(Fft1d, NextPow2) {
  EXPECT_EQ(fft::next_pow2(1), 1u);
  EXPECT_EQ(fft::next_pow2(2), 2u);
  EXPECT_EQ(fft::next_pow2(3), 4u);
  EXPECT_EQ(fft::next_pow2(1023), 1024u);
  EXPECT_EQ(fft::next_pow2(1025), 2048u);
}

// ---------------------------------------------------------- distributed

class Fft3dCorrectness
    : public ::testing::TestWithParam<std::tuple<fft::Pattern, fft::Backend, int>> {
};

static std::string fft3d_name(
    const ::testing::TestParamInfo<std::tuple<fft::Pattern, fft::Backend, int>>&
        info) {
  std::string s = fft::pattern_name(std::get<0>(info.param));
  for (auto& c : s)
    if (c == '-') c = '_';
  std::string b = fft::backend_name(std::get<1>(info.param));
  for (auto& c : b)
    if (c == '(' || c == ')') c = '_';
  return s + "_" + b + "_p" + std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Fft3dCorrectness,
    ::testing::Combine(::testing::Values(fft::Pattern::Pipelined,
                                         fft::Pattern::Tiled,
                                         fft::Pattern::Windowed,
                                         fft::Pattern::WindowTiled),
                       ::testing::Values(fft::Backend::Blocking,
                                         fft::Backend::LibNBC,
                                         fft::Backend::Adcl),
                       ::testing::Values(2, 4)),
    fft3d_name);

TEST_P(Fft3dCorrectness, MatchesSerialReference) {
  const auto [pattern, backend, nprocs] = GetParam();
  const int n = 8;
  // Global input and its serial transform.
  auto global = random_signal(std::size_t(n) * n * n, 99);
  auto expect = fft3d_serial(global, n);

  const int planes = n / nprocs;
  const int width = n / nprocs;
  std::vector<std::vector<cplx>> got(nprocs);
  t::run_world(net::whale(), nprocs,
               [&, pattern = pattern, backend = backend](mpi::Ctx& ctx) {
                 fft::Fft3dOptions opt;
                 opt.n = n;
                 opt.pattern = pattern;
                 opt.backend = backend;
                 opt.real_math = true;
                 opt.tuning.tests_per_function = 1;
                 fft::Fft3d kernel(ctx, ctx.world().comm_world(), opt);
                 const int me = ctx.world_rank();
                 std::vector<cplx> local(std::size_t(planes) * n * n);
                 std::copy(global.begin() + std::size_t(me) * planes * n * n,
                           global.begin() +
                               std::size_t(me + 1) * planes * n * n,
                           local.begin());
                 kernel.set_local_input(std::move(local));
                 kernel.run_iteration();
                 got[me] = kernel.pencils();
               });
  for (int r = 0; r < nprocs; ++r) {
    for (int xl = 0; xl < width; ++xl) {
      const int x = r * width + xl;
      for (int y = 0; y < n; ++y) {
        for (int z = 0; z < n; ++z) {
          const cplx have = got[r][(std::size_t(xl) * n + y) * n + z];
          const cplx want = expect[(std::size_t(z) * n + y) * n + x];
          ASSERT_LT(std::abs(have - want), 1e-9)
              << "rank " << r << " x=" << x << " y=" << y << " z=" << z;
        }
      }
    }
  }
}

TEST(Fft3d, RepeatedIterationsKeepTuning) {
  // ADCL back-end across many iterations: the co-tuned selection decides
  // and subsequent iterations use the winner.
  std::string winner;
  int iters = 0;
  t::run_world(net::whale(), 4, [&](mpi::Ctx& ctx) {
    fft::Fft3dOptions opt;
    opt.n = 16;
    opt.pattern = fft::Pattern::WindowTiled;
    opt.backend = fft::Backend::Adcl;
    opt.tuning.tests_per_function = 2;
    fft::Fft3d kernel(ctx, ctx.world().comm_world(), opt);
    for (int it = 0; it < 8; ++it) kernel.run_iteration();
    if (ctx.world_rank() == 0 && kernel.selection()->decided()) {
      winner =
          kernel.selection()->function_set().function(kernel.selection()->winner()).name;
      iters = kernel.selection()->iterations();
    }
  });
  EXPECT_FALSE(winner.empty());
  EXPECT_EQ(iters, 8);
}

TEST(Fft3d, GeometryAndValidation) {
  t::run_world(net::whale(), 4, [&](mpi::Ctx& ctx) {
    fft::Fft3dOptions opt;
    opt.n = 16;
    opt.pattern = fft::Pattern::WindowTiled;  // window 3, tile 10
    opt.backend = fft::Backend::LibNBC;
    fft::Fft3d k(ctx, ctx.world().comm_world(), opt);
    EXPECT_EQ(k.planes_per_rank(), 4);
    EXPECT_EQ(k.pencil_width(), 4);
    // tile=10 capped at 4 planes, then reduced to divide evenly.
    EXPECT_EQ(k.tile_planes(), 4);
    EXPECT_EQ(k.num_tiles(), 1);
    EXPECT_EQ(k.window(), 1);  // capped at tiles
    EXPECT_EQ(k.block_bytes(), std::size_t(4) * 16 * 4 * sizeof(cplx));
    // N not divisible by P:
    fft::Fft3dOptions bad = opt;
    bad.n = 18;
    EXPECT_THROW(fft::Fft3d(ctx, ctx.world().comm_world(), bad),
                 std::invalid_argument);
    // set_local_input misuse:
    EXPECT_THROW(k.set_local_input({}), std::logic_error);
    fft::Fft3dOptions real = opt;
    real.real_math = true;
    fft::Fft3d kr(ctx, ctx.world().comm_world(), real);
    EXPECT_THROW(kr.set_local_input(std::vector<cplx>(3)),
                 std::invalid_argument);
  });
}

TEST(Fft3d, PatternParamsMatchPaper) {
  EXPECT_EQ(fft::pattern_params(fft::Pattern::Pipelined),
            (std::pair<int, int>{2, 1}));
  EXPECT_EQ(fft::pattern_params(fft::Pattern::Tiled),
            (std::pair<int, int>{2, 10}));
  EXPECT_EQ(fft::pattern_params(fft::Pattern::Windowed),
            (std::pair<int, int>{3, 1}));
  EXPECT_EQ(fft::pattern_params(fft::Pattern::WindowTiled),
            (std::pair<int, int>{3, 10}));
}

TEST(Fft3d, CostModelModeMovesNoData) {
  // In cost-model mode (real_math = false) the kernel must run without
  // allocating grid buffers and still exchange the right message sizes.
  std::uint64_t msgs = 0;
  sim::Engine engine(1);
  net::Machine machine(net::whale());
  mpi::WorldOptions wopts;
  wopts.nprocs = 4;
  wopts.noise_scale = 0;
  mpi::World world(engine, machine, wopts);
  world.launch([&](mpi::Ctx& ctx) {
    fft::Fft3dOptions opt;
    opt.n = 64;
    opt.pattern = fft::Pattern::Pipelined;
    opt.backend = fft::Backend::LibNBC;
    fft::Fft3d k(ctx, ctx.world().comm_world(), opt);
    k.run_iteration();
  });
  engine.run();
  msgs = world.total_data_msgs();
  // 16 tiles (64/4 planes, tile 1) x 4 ranks x 3 peers (linear alltoall).
  EXPECT_EQ(msgs, 16u * 4u * 3u);
}
