# Empty compiler generated dependencies file for nbctune_fft.
# This may be replaced when dependencies are built.
