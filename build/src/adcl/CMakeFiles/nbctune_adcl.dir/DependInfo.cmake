
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adcl/api.cpp" "src/adcl/CMakeFiles/nbctune_adcl.dir/api.cpp.o" "gcc" "src/adcl/CMakeFiles/nbctune_adcl.dir/api.cpp.o.d"
  "/root/repo/src/adcl/filtering.cpp" "src/adcl/CMakeFiles/nbctune_adcl.dir/filtering.cpp.o" "gcc" "src/adcl/CMakeFiles/nbctune_adcl.dir/filtering.cpp.o.d"
  "/root/repo/src/adcl/functionsets.cpp" "src/adcl/CMakeFiles/nbctune_adcl.dir/functionsets.cpp.o" "gcc" "src/adcl/CMakeFiles/nbctune_adcl.dir/functionsets.cpp.o.d"
  "/root/repo/src/adcl/history.cpp" "src/adcl/CMakeFiles/nbctune_adcl.dir/history.cpp.o" "gcc" "src/adcl/CMakeFiles/nbctune_adcl.dir/history.cpp.o.d"
  "/root/repo/src/adcl/request.cpp" "src/adcl/CMakeFiles/nbctune_adcl.dir/request.cpp.o" "gcc" "src/adcl/CMakeFiles/nbctune_adcl.dir/request.cpp.o.d"
  "/root/repo/src/adcl/selection.cpp" "src/adcl/CMakeFiles/nbctune_adcl.dir/selection.cpp.o" "gcc" "src/adcl/CMakeFiles/nbctune_adcl.dir/selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coll/CMakeFiles/nbctune_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/nbc/CMakeFiles/nbctune_nbc.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/nbctune_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nbctune_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nbctune_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
