# Empty dependencies file for bench_fig11_fft_extended.
# This may be replaced when dependencies are built.
