#include "coll/ibcast.hpp"

#include <algorithm>
#include <stdexcept>

namespace nbctune::coll {

std::vector<int> bcast_children(int v, int n, int fanout) {
  std::vector<int> kids;
  if (fanout == kFanoutLinear) {
    if (v == 0) {
      for (int i = 1; i < n; ++i) kids.push_back(i);
    }
  } else if (fanout == kFanoutBinomial) {
    // Binomial: v's children are v | (1 << j) for bits above v's highest
    // set bit (v == 0 owns every power of two).
    for (int mask = 1; mask < n; mask <<= 1) {
      if (v & mask) break;  // bits below the lowest set bit only
      const int child = v | mask;
      if (child < n && child != v) kids.push_back(child);
    }
  } else if (fanout >= 1) {
    // k-ary tree (fanout 1 degenerates to a chain).
    for (int j = 1; j <= fanout; ++j) {
      const long long child = 1LL * v * fanout + j;
      if (child < n) kids.push_back(static_cast<int>(child));
    }
  } else {
    throw std::invalid_argument("bcast_children: bad fanout");
  }
  return kids;
}

int bcast_parent(int v, int n, int fanout) {
  if (v == 0) return -1;
  if (fanout == kFanoutLinear) return 0;
  if (fanout == kFanoutBinomial) {
    // Clear the lowest set bit.
    return v & (v - 1) ? (v & ~(v & -v)) : 0;
  }
  if (fanout >= 1) return (v - 1) / fanout;
  (void)n;
  throw std::invalid_argument("bcast_parent: bad fanout");
}

nbc::Schedule build_ibcast(int me, int n, void* buf, std::size_t bytes,
                           int root, int fanout, std::size_t seg_bytes) {
  if (root < 0 || root >= n) throw std::invalid_argument("ibcast: bad root");
  nbc::Schedule s;
  if (n == 1 || bytes == 0) {
    s.finalize();
    nbc::trace_built(s, "ibcast", me);
    return s;
  }
  const int v = (me - root + n) % n;
  const int vparent = bcast_parent(v, n, fanout);
  const int parent = vparent < 0 ? -1 : (vparent + root) % n;
  std::vector<int> children;
  for (int c : bcast_children(v, n, fanout)) {
    children.push_back((c + root) % n);
  }

  const std::size_t seg = seg_bytes == 0 ? bytes : std::min(seg_bytes, bytes);
  const std::size_t nseg = (bytes + seg - 1) / seg;
  auto* base = static_cast<std::byte*>(buf);

  auto seg_ptr = [&](std::size_t i) -> std::byte* {
    return base == nullptr ? nullptr : base + i * seg;
  };
  auto seg_len = [&](std::size_t i) {
    return std::min(seg, bytes - i * seg);
  };

  if (parent < 0) {
    // Root: one round per segment, pushing to all children.
    for (std::size_t i = 0; i < nseg; ++i) {
      for (int c : children) s.send(seg_ptr(i), seg_len(i), c);
      s.barrier();
    }
  } else if (children.empty()) {
    // Leaf: receive all segments; pipeline by one outstanding segment.
    for (std::size_t i = 0; i < nseg; ++i) {
      s.recv(seg_ptr(i), seg_len(i), parent);
      s.barrier();
    }
  } else {
    // Interior node: forward segment i while receiving segment i+1.
    s.recv(seg_ptr(0), seg_len(0), parent);
    s.barrier();
    for (std::size_t i = 1; i < nseg; ++i) {
      for (int c : children) s.send(seg_ptr(i - 1), seg_len(i - 1), c);
      s.recv(seg_ptr(i), seg_len(i), parent);
      s.barrier();
    }
    for (int c : children) s.send(seg_ptr(nseg - 1), seg_len(nseg - 1), c);
    s.barrier();
  }
  s.finalize();
  nbc::trace_built(s, "ibcast", me);
  return s;
}

}  // namespace nbctune::coll
