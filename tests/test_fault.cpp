// Fault-injection subsystem and the resilience machinery it drives: the
// plan parser, injector determinism, drop -> retransmit -> complete on the
// transport, duplicate-delivery idempotence, timeout -> fallback in the NBC
// layer, ADCL drift re-tuning, guideline G1 under every canned plan, and
// byte-determinism across pool thread counts (with faults and with noise).

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "adcl/functionsets.hpp"
#include "adcl/selection.hpp"
#include "analyze/analyze.hpp"
#include "analyze/chrome_reader.hpp"
#include "fault/fault.hpp"
#include "harness/microbench.hpp"
#include "harness/scenario_pool.hpp"
#include "mpi/world.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"
#include "trace/trace.hpp"

using namespace nbctune;
namespace t = nbctune::testing;

// ------------------------------------------------------------ plan parser

TEST(FaultPlan, EmptySpecIsQuiet) {
  const fault::FaultPlan p = fault::FaultPlan::parse("");
  EXPECT_FALSE(p.enabled());
  EXPECT_FALSE(p.lossy());
  EXPECT_EQ(p.op_timeout, 0.0);
}

TEST(FaultPlan, ParsesEveryComponentKind) {
  const fault::FaultPlan p = fault::FaultPlan::parse(
      "seed=9;drop:p=0.25,t0=0.1,t1=0.2,max=5;dup:p=0.5;"
      "degrade:t0=1,t1=2,lat=4,bw=8;stall:node=3,t0=0.5,dur=0.1;"
      "straggler:rank=2,factor=3,t0=0,t1=9;starve:rank=1,cost=1e-4;"
      "drift:window=4,tol=0.25;rto=5e-3;retries=7;op_timeout=2;"
      "max_attempts=3");
  EXPECT_EQ(p.seed, 9u);
  EXPECT_DOUBLE_EQ(p.drop_p, 0.25);
  EXPECT_DOUBLE_EQ(p.drop_win.t0, 0.1);
  EXPECT_DOUBLE_EQ(p.drop_win.t1, 0.2);
  EXPECT_EQ(p.drop_max, 5);
  EXPECT_DOUBLE_EQ(p.dup_p, 0.5);
  EXPECT_TRUE(p.has_degrade);
  EXPECT_DOUBLE_EQ(p.degrade_lat, 4.0);
  EXPECT_DOUBLE_EQ(p.degrade_bw, 8.0);
  ASSERT_EQ(p.stalls.size(), 1u);
  EXPECT_EQ(p.stalls[0].node, 3);
  ASSERT_EQ(p.stragglers.size(), 1u);
  EXPECT_EQ(p.stragglers[0].rank, 2);
  ASSERT_EQ(p.starves.size(), 1u);
  EXPECT_DOUBLE_EQ(p.starves[0].cost, 1e-4);
  EXPECT_EQ(p.drift_window, 4);
  EXPECT_DOUBLE_EQ(p.drift_tolerance, 0.25);
  EXPECT_DOUBLE_EQ(p.rto, 5e-3);
  EXPECT_EQ(p.retries, 7);
  EXPECT_DOUBLE_EQ(p.op_timeout, 2.0);
  EXPECT_EQ(p.max_attempts, 3);
  EXPECT_TRUE(p.lossy());
  EXPECT_TRUE(p.enabled());
}

TEST(FaultPlan, LossyPlansDefaultToArmedOpTimeout) {
  EXPECT_DOUBLE_EQ(fault::FaultPlan::parse("drop:p=0.1").op_timeout, 1.0);
  // An explicit value (even one matching the default) is preserved.
  EXPECT_DOUBLE_EQ(
      fault::FaultPlan::parse("drop:p=0.1;op_timeout=7").op_timeout, 7.0);
  // Quiet plans leave NBC recovery off.
  EXPECT_DOUBLE_EQ(fault::FaultPlan::parse("straggler:rank=0,factor=2")
                       .op_timeout,
                   0.0);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::FaultPlan::parse("bogus:p=1"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("drop:probability=1"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("drop:p=2"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("drop:p"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("rto=abc"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("wat=1"), std::invalid_argument);
}

TEST(FaultPlan, CannedPlansParseAndEnable) {
  const auto& plans = fault::canned_plans();
  ASSERT_GE(plans.size(), 6u);
  EXPECT_EQ(plans[0].name, "none");
  for (const auto& cp : plans) {
    const fault::FaultPlan p = fault::FaultPlan::parse(cp.spec);
    EXPECT_EQ(p.enabled(), cp.name != "none") << cp.name;
  }
}

TEST(FaultInjector, DeterministicAndBudgeted) {
  const fault::FaultPlan p = fault::FaultPlan::parse("seed=3;drop:p=1,max=3");
  fault::Injector a(p, /*scenario_seed=*/42), b(p, /*scenario_seed=*/42);
  int drops_a = 0;
  for (int i = 0; i < 10; ++i) {
    const bool d = a.inject_drop(0.0);
    EXPECT_EQ(d, b.inject_drop(0.0));
    drops_a += d ? 1 : 0;
  }
  EXPECT_EQ(drops_a, 3);  // budget exhausted, later draws are free
  EXPECT_EQ(a.drops(), 3);
}

// ----------------------------------------------- transport under injection

namespace {

const net::Platform kIb = net::whale();

/// 2-rank world with RoundRobin placement (whale packs 8 ranks per node,
/// so Block placement would make every message intra-node and invisible
/// to the injector) and the given plan attached.
void run_faulty(int nprocs, const fault::FaultPlan& plan,
                const std::function<void(mpi::Ctx&)>& program) {
  sim::Engine engine(1);
  net::Machine machine(kIb);
  mpi::WorldOptions opts;
  opts.nprocs = nprocs;
  opts.noise_scale = 0.0;
  opts.seed = 1;
  opts.placement = mpi::WorldOptions::Placement::RoundRobin;
  opts.fault_plan = &plan;
  mpi::World world(engine, machine, opts);
  world.launch(program);
  engine.run();
}

/// Runs `body` inside a fresh trace scope and returns the counter dump.
std::map<std::string, std::uint64_t> counters_of(
    const std::function<void()>& body) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  {
    trace::Scope scope("fault test");
    body();
  }
  std::ostringstream os;
  trace::Session::instance().write_counters(os);
  (void)trace::Session::instance().drain();
  std::istringstream is(os.str());
  return analyze::read_counters(is);
}

}  // namespace

TEST(FaultTransport, DropIsHealedByRetransmit) {
  // The first (and only, max=1) eligible message is dropped; the sender's
  // RTO fires, the retransmission is delivered, and the payload survives.
  const fault::FaultPlan plan =
      fault::FaultPlan::parse("seed=5;drop:p=1,max=1;rto=1e-3;retries=4");
  const std::size_t n = 1024;
  std::vector<std::byte> got(n);
  const auto ctrs = counters_of([&] {
    run_faulty(2, plan, [&](mpi::Ctx& ctx) {
      auto comm = ctx.world().comm_world();
      if (ctx.world_rank() == 0) {
        auto data = t::make_pattern(0, n);
        ctx.send(comm, data.data(), n, 1, 7);
      } else {
        ctx.recv(comm, got.data(), n, 0, 7);
      }
    });
  });
  EXPECT_EQ(got, t::make_pattern(0, n));
  EXPECT_EQ(ctrs.at("fault.drops"), 1u);
  EXPECT_GE(ctrs.at("msg.retransmits"), 1u);
  EXPECT_GE(ctrs.at("msg.acks"), 1u);
  EXPECT_EQ(ctrs.at("msg.send_failures"), 0u);
}

TEST(FaultTransport, DuplicateDeliveryIsIdempotent) {
  // Every eligible message is duplicated (budget 2); receiver-side dedup
  // discards the copies and both payloads arrive intact, exactly once.
  const fault::FaultPlan plan =
      fault::FaultPlan::parse("seed=5;dup:p=1,max=2;rto=1e-3;retries=6");
  const std::size_t n = 512;
  std::vector<std::byte> first(n), second(n);
  const auto ctrs = counters_of([&] {
    run_faulty(2, plan, [&](mpi::Ctx& ctx) {
      auto comm = ctx.world().comm_world();
      if (ctx.world_rank() == 0) {
        auto d0 = t::make_pattern(0, n);
        auto d1 = t::make_pattern(1, n);
        ctx.send(comm, d0.data(), n, 1, 3);
        ctx.send(comm, d1.data(), n, 1, 3);
      } else {
        ctx.recv(comm, first.data(), n, 0, 3);
        ctx.recv(comm, second.data(), n, 0, 3);
      }
    });
  });
  EXPECT_EQ(first, t::make_pattern(0, n));
  EXPECT_EQ(second, t::make_pattern(1, n));
  EXPECT_GE(ctrs.at("fault.dups"), 1u);
  EXPECT_GE(ctrs.at("msg.dup_deliveries"), 1u);
  EXPECT_EQ(ctrs.at("msg.send_failures"), 0u);
}

TEST(FaultTransport, RetriesExhaustedDeclaresSendFailed) {
  // Unlimited total loss with no retries: the blocking send must throw
  // rather than hang (deterministic failure detection).
  const fault::FaultPlan plan =
      fault::FaultPlan::parse("seed=5;drop:p=1;rto=1e-3;retries=0");
  EXPECT_THROW(
      run_faulty(2, plan,
                 [&](mpi::Ctx& ctx) {
                   auto comm = ctx.world().comm_world();
                   std::vector<std::byte> buf(256);
                   if (ctx.world_rank() == 0) {
                     ctx.send(comm, buf.data(), buf.size(), 1, 7);
                   } else {
                     ctx.recv(comm, buf.data(), buf.size(), 0, 7);
                   }
                 }),
      std::runtime_error);
}

// --------------------------------------------- canned plans, end to end

namespace {

/// The drift-demo scenario shape from bench_fault_sweep: two whale nodes,
/// short iterations so the tuner decides before the canned degrade window
/// opens at t=0.05s.
harness::MicroScenario sweep_scenario() {
  harness::MicroScenario s;
  s.platform = net::whale();
  s.nprocs = 16;
  s.op = harness::OpKind::Ialltoall;
  s.bytes = 64 * 1024;
  s.compute_per_iter = 2e-3;
  s.progress_calls = 3;
  s.iterations = 40;
  s.noise_scale = 0.0;
  s.seed = 42;
  return s;
}

adcl::TuningOptions sweep_tuning() {
  adcl::TuningOptions opts;
  opts.policy = adcl::PolicyKind::BruteForce;
  opts.tests_per_function = 2;
  return opts;
}

struct PlanRun {
  analyze::ScenarioReport report;
  std::map<std::string, std::uint64_t> counters;
};

PlanRun run_canned(const fault::CannedPlan& cp) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  harness::MicroScenario s = sweep_scenario();
  s.fault_plan = cp.spec;
  s.fault_plan_name = cp.name;
  (void)harness::run_adcl(s, sweep_tuning());
  std::ostringstream os;
  trace::Session::instance().write_counters(os);
  auto finished = trace::Session::instance().drain();
  EXPECT_EQ(finished.size(), 1u) << cp.name;
  const analyze::Report r =
      analyze::analyze({analyze::from_finished(finished.at(0))});
  EXPECT_EQ(r.scenarios.size(), 1u) << cp.name;
  std::istringstream is(os.str());
  return {r.scenarios.at(0), analyze::read_counters(is)};
}

}  // namespace

TEST(FaultCannedPlans, EveryStartedOpCompletesAndPathsAreExercised) {
  // G1 under every recoverable (message-level) canned plan, with the
  // plan-specific recovery path demonstrably taken (ISSUE acceptance:
  // retransmit, timeout-fallback, and ADCL drift re-tuning each asserted
  // via trace evidence).  The fail-stop kill plans abort the dying rank's
  // in-flight ops by design (started == completed + aborted); test_ft
  // asserts that generalized ledger for every kill plan.
  for (const fault::CannedPlan& cp : fault::canned_plans()) {
    if (fault::FaultPlan::parse(cp.spec).has_kills()) continue;
    SCOPED_TRACE(cp.name);
    const PlanRun pr = run_canned(cp);
    const analyze::ScenarioReport& s = pr.report;
    // G1: every started operation completed, faults notwithstanding.
    EXPECT_GT(s.ops_started, 0u);
    EXPECT_EQ(s.ops_started, s.ops_completed);

    if (cp.name == "none") {
      EXPECT_FALSE(s.faults.any());
    } else if (cp.name == "drops") {
      EXPECT_GT(s.faults.drops, 0);
      EXPECT_GT(s.faults.retransmits, 0);  // healed by retransmission...
      EXPECT_EQ(s.faults.fallbacks, 0);    // ...never by failover
      EXPECT_EQ(s.faults.send_failures, 0);
    } else if (cp.name == "blackout") {
      EXPECT_GT(s.faults.send_failures, 0);  // retries=0: drops fail fast
      EXPECT_GT(s.faults.fallbacks, 0);      // timeout -> fallback restart
    } else if (cp.name == "degrade") {
      EXPECT_GT(pr.counters.at("fault.degraded_msgs"), 0u);
      EXPECT_GE(s.adcl.retunes, 1);  // drift re-opened tuning
    } else if (cp.name == "straggler") {
      EXPECT_GT(s.faults.stragglers, 0);
      EXPECT_GT(pr.counters.at("fault.straggler_bursts"), 0u);
      EXPECT_GT(pr.counters.at("fault.starved_passes"), 0u);
    } else if (cp.name == "mixed") {
      EXPECT_GT(s.faults.drops, 0);
      EXPECT_GT(s.faults.retransmits, 0);
      EXPECT_GT(s.faults.stragglers, 0);
      EXPECT_GT(pr.counters.at("fault.nic_stalls"), 0u);
    }
  }
}

TEST(FaultCannedPlans, LabelCarriesPlanAndAnalyzerSplitsIt) {
  harness::MicroScenario s = sweep_scenario();
  s.fault_plan = fault::canned_plans().at(1).spec;
  s.fault_plan_name = fault::canned_plans().at(1).name;
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  (void)harness::run_adcl(s, sweep_tuning());
  auto finished = trace::Session::instance().drain();
  ASSERT_EQ(finished.size(), 1u);
  const analyze::LabelKey k = analyze::parse_label(finished.at(0).label);
  ASSERT_TRUE(k.valid);
  EXPECT_EQ(k.plan, "drops");
  EXPECT_EQ(k.what, "adcl:brute-force");
  // Faulted and fault-free runs of the same shape land in different
  // comparison groups: guidelines never compare across plans.
  EXPECT_NE(k.group(), analyze::parse_label(
                           "ialltoall whale np16 65536B adcl:brute-force")
                           .group());
}

// --------------------------------------------------- ADCL drift re-tuning

TEST(FaultDrift, SlowdownReopensTuningAndRedecides) {
  auto fset = adcl::make_ibcast_functionset();
  adcl::TuningOptions opts;
  opts.policy = adcl::PolicyKind::BruteForce;
  opts.tests_per_function = 2;
  opts.drift_window = 3;
  opts.drift_tolerance = 0.5;
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    adcl::SelectionState sel(fset, opts);
    // Learning: function 0 is fastest and wins.
    int guard = 0;
    while (!sel.decided() && ++guard < 10000) {
      sel.record(ctx, comm, 1e-6 * (1 + sel.current()));
    }
    ASSERT_TRUE(sel.decided());
    const int first_winner = sel.current();
    EXPECT_EQ(sel.retunes(), 0);
    // Post-decision samples blow past baseline * (1 + tol): after one
    // full drift window the selection re-opens.
    for (int i = 0; i < opts.drift_window && sel.decided(); ++i) {
      sel.record(ctx, comm, 1e-4);
    }
    EXPECT_FALSE(sel.decided());
    EXPECT_EQ(sel.retunes(), 1);
    // Re-learning converges again.
    guard = 0;
    while (!sel.decided() && ++guard < 10000) {
      sel.record(ctx, comm, 1e-6 * (1 + sel.current()));
    }
    EXPECT_TRUE(sel.decided());
    EXPECT_EQ(sel.current(), first_winner);
    EXPECT_EQ(sel.retunes(), 1);
  });
}

TEST(FaultDrift, SteadySamplesNeverRetune) {
  auto fset = adcl::make_ibcast_functionset();
  adcl::TuningOptions opts;
  opts.policy = adcl::PolicyKind::BruteForce;
  opts.tests_per_function = 2;
  opts.drift_window = 3;
  opts.drift_tolerance = 0.5;
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    adcl::SelectionState sel(fset, opts);
    int guard = 0;
    while (!sel.decided() && ++guard < 10000) {
      sel.record(ctx, comm, 1e-6 * (1 + sel.current()));
    }
    ASSERT_TRUE(sel.decided());
    for (int i = 0; i < 20; ++i) sel.record(ctx, comm, 1e-6);
    EXPECT_TRUE(sel.decided());
    EXPECT_EQ(sel.retunes(), 0);
  });
}

// ------------------------------------------------------------ determinism

TEST(FaultDeterminism, PlansReproduceAcrossPoolThreadCounts) {
  // Fixed (seed, plan) must give bit-identical outcomes no matter how
  // many worker threads execute the sweep.
  const auto& plans = fault::canned_plans();
  auto sweep = [&](int threads) {
    std::vector<harness::RunOutcome> runs(plans.size());
    harness::ScenarioPool pool(threads);
    pool.run_indexed(plans.size(), [&](std::size_t i) {
      harness::MicroScenario s = sweep_scenario();
      s.iterations = 16;  // shorter: this test cares about bits, not drift
      s.fault_plan = plans[i].spec;
      s.fault_plan_name = plans[i].name;
      runs[i] = harness::run_adcl(s, sweep_tuning());
    });
    return runs;
  };
  const auto r1 = sweep(1);
  const auto r4 = sweep(4);
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    SCOPED_TRACE(plans[i].name);
    EXPECT_EQ(r1[i].impl, r4[i].impl);
    EXPECT_EQ(r1[i].loop_time, r4[i].loop_time);  // exact, not approximate
    EXPECT_EQ(r1[i].decision_iteration, r4[i].decision_iteration);
  }
}

TEST(FaultDeterminism, NoiseReproducesAcrossPoolThreadCounts) {
  // Per-rank per-scenario seeded noise streams: rel_sigma > 0 runs are
  // bit-identical at any --threads count (previously the jitter drew from
  // a shared stream and depended on scheduling).
  auto sweep = [&](int threads) {
    std::vector<double> times(4);
    harness::ScenarioPool pool(threads);
    pool.run_indexed(times.size(), [&](std::size_t i) {
      harness::MicroScenario s = sweep_scenario();
      s.iterations = 8;
      s.noise_scale = 1.0;
      s.seed = 100 + i;
      times[i] = harness::run_adcl(s, sweep_tuning()).loop_time;
    });
    return times;
  };
  const auto t1 = sweep(1);
  const auto t4 = sweep(4);
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i], t4[i]) << "scenario " << i;
  }
}
