#pragma once

// Guideline verdicts fed back into the tuner (Hunold: performance
// guidelines are actionable tuning signals, not just post-hoc checks).
// A GuidelineBook collects two kinds of verdict:
//
//   * mock-up bounds: a named alternative implementation of the same
//     operation was measured (e.g. the pattern-split mock-up "run the
//     op twice at half the size", or Ibcast via Iscatter + Iallgather),
//     so no candidate may score worse than that bound (plus a noise
//     tolerance) and still be worth keeping;
//   * dominated marks: a prior analysis pass (nbctune-analyze guideline
//     checks over an earlier report) already convicted a member by name,
//     so the next tuning round skips it outright.
//
// The book is consumed by PolicyKind::GuidelinePruned (selection.hpp):
// pre-marked members are pruned before the first measurement, bound
// violators between batches, and every prune leaves an iteration-stamped
// audit record (Policy::Elimination with the guideline name) plus an
// "adcl.prune" trace event.

#include <string>
#include <vector>

namespace nbctune::adcl {

/// One measured mock-up bound, in score units (seconds per iteration).
struct MockupBound {
  std::string guideline;  ///< verdict name, e.g. "split:pairwise@32768Bx2"
  double bound = 0.0;     ///< the mock-up's measured time
  double epsilon = 0.25;  ///< tolerated relative excess over the bound
  /// A score above this limit convicts the candidate.
  [[nodiscard]] double limit() const noexcept {
    return bound * (1.0 + epsilon);
  }
};

/// A function-set member convicted by name before tuning starts.
struct DominatedMark {
  std::string function;   ///< FunctionSet member name
  std::string guideline;  ///< verdict that convicted it
};

/// The verdicts one tuning run consumes.  Immutable while tuning (shared
/// by reference from TuningOptions); populate fully before the run.
class GuidelineBook {
 public:
  void add_mockup(std::string guideline, double bound_seconds,
                  double epsilon = 0.25) {
    mockups_.push_back({std::move(guideline), bound_seconds, epsilon});
  }
  void mark_dominated(std::string function, std::string guideline) {
    dominated_.push_back({std::move(function), std::move(guideline)});
  }

  [[nodiscard]] const std::vector<MockupBound>& mockups() const noexcept {
    return mockups_;
  }
  [[nodiscard]] const std::vector<DominatedMark>& dominated() const noexcept {
    return dominated_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return mockups_.empty() && dominated_.empty();
  }

  /// The mark convicting `function`, or nullptr.
  [[nodiscard]] const DominatedMark* find_dominated(
      const std::string& function) const noexcept;

  /// The tightest mock-up bound `score` violates, or nullptr.
  [[nodiscard]] const MockupBound* violated_by(double score) const noexcept;

 private:
  std::vector<MockupBound> mockups_;
  std::vector<DominatedMark> dominated_;
};

}  // namespace nbctune::adcl
