#pragma once

// FIFO time-reservation resources.
//
// Network interfaces and memory ports are modeled as serial servers: a
// transfer reserves the resource for a duration; concurrent requests are
// serialized in reservation order.  This captures NIC/memory contention
// (the reason flooding algorithms like a linear all-to-all degrade) without
// the cost of simulating preemption.

#include <algorithm>
#include <string>

#include "sim/engine.hpp"

namespace nbctune::sim {

/// A serial FIFO resource identified for tracing by name.
///
/// reserve(earliest, duration) books the next available slot that starts at
/// or after `earliest` and returns the slot's [start, end) interval.
class Resource {
 public:
  explicit Resource(std::string name = {}) : name_(std::move(name)) {}

  struct Slot {
    Time start;
    Time end;
  };

  /// Book the resource for `duration` seconds, no earlier than `earliest`.
  Slot reserve(Time earliest, Time duration) {
    const Time start = std::max(earliest, available_at_);
    const Time end = start + duration;
    available_at_ = end;
    busy_total_ += duration;
    ++reservations_;
    return {start, end};
  }

  /// Time at which the resource next becomes free.
  [[nodiscard]] Time available_at() const noexcept { return available_at_; }

  /// Cumulative busy time (for utilization reporting).
  [[nodiscard]] Time busy_total() const noexcept { return busy_total_; }
  [[nodiscard]] std::uint64_t reservations() const noexcept {
    return reservations_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Reset booking state (e.g. between benchmark repetitions).
  void reset() noexcept {
    available_at_ = 0.0;
    busy_total_ = 0.0;
    reservations_ = 0;
  }

 private:
  std::string name_;
  Time available_at_ = 0.0;
  Time busy_total_ = 0.0;
  std::uint64_t reservations_ = 0;
};

}  // namespace nbctune::sim
