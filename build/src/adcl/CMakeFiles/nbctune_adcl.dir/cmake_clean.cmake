file(REMOVE_RECURSE
  "CMakeFiles/nbctune_adcl.dir/api.cpp.o"
  "CMakeFiles/nbctune_adcl.dir/api.cpp.o.d"
  "CMakeFiles/nbctune_adcl.dir/filtering.cpp.o"
  "CMakeFiles/nbctune_adcl.dir/filtering.cpp.o.d"
  "CMakeFiles/nbctune_adcl.dir/functionsets.cpp.o"
  "CMakeFiles/nbctune_adcl.dir/functionsets.cpp.o.d"
  "CMakeFiles/nbctune_adcl.dir/history.cpp.o"
  "CMakeFiles/nbctune_adcl.dir/history.cpp.o.d"
  "CMakeFiles/nbctune_adcl.dir/request.cpp.o"
  "CMakeFiles/nbctune_adcl.dir/request.cpp.o.d"
  "CMakeFiles/nbctune_adcl.dir/selection.cpp.o"
  "CMakeFiles/nbctune_adcl.dir/selection.cpp.o.d"
  "libnbctune_adcl.a"
  "libnbctune_adcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbctune_adcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
