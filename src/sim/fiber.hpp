#pragma once

// Cooperative user-space fibers built on POSIX ucontext.
//
// The simulation runs every simulated rank as one fiber.  Exactly one fiber
// executes at any time; the scheduler (the "main" context) resumes a fiber,
// and the fiber returns control by yielding.  This gives deterministic,
// single-threaded execution with cheap context switches, which matters on
// the single-core hosts this simulator targets.

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>

#include <ucontext.h>

// AddressSanitizer must be told about stack switches, or unwinding on a
// fiber stack (e.g. an exception thrown by a simulated rank) is reported
// as stack-use-after-scope.  The annotations below are no-ops otherwise.
#ifdef __SANITIZE_ADDRESS__
#define NBCTUNE_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NBCTUNE_FIBER_ASAN 1
#endif
#endif

namespace nbctune::sim {

/// Stack size used when a caller does not pick one: the NBCTUNE_FIBER_STACK
/// environment variable (bytes, clamped to >= 16 KiB), else 256 KiB.  The
/// default is generous for the schedule builders and FFT kernels that run on
/// fiber stacks; pure-collective mega-scale runs should prefer machine mode,
/// which creates no fibers at all.
[[nodiscard]] std::size_t default_fiber_stack_bytes();

/// A single cooperatively scheduled fiber.
///
/// Lifecycle: construct with the function to run, call resume() to enter it,
/// the function calls yield() to suspend back into resume()'s caller.  Once
/// the function returns, finished() is true and resume() must not be called
/// again.  Exceptions escaping the fiber function are captured and rethrown
/// from resume().
class Fiber {
 public:
  using Fn = std::function<void()>;

  /// @param fn          body executed on the fiber's own stack
  /// @param stack_bytes stack size; 0 means default_fiber_stack_bytes().
  ///                    Throws std::runtime_error (not std::bad_alloc) with
  ///                    an actionable message when the stack cannot be
  ///                    allocated.
  explicit Fiber(Fn fn, std::size_t stack_bytes = 0);

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

  /// Switch from the scheduler into the fiber.  Returns when the fiber
  /// yields or its function returns.  Rethrows any exception that escaped
  /// the fiber body.
  void resume();

  /// Switch from inside the fiber back to the scheduler.  Must only be
  /// called on the currently running fiber.
  void yield();

  /// True once the fiber function has returned.
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// True while execution is inside this fiber (between resume and yield).
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// The fiber currently executing, or nullptr when in the scheduler.
  static Fiber* current() noexcept;

 private:
  static void trampoline();

  Fn fn_;
  std::unique_ptr<char[]> stack_;
  ucontext_t ctx_{};      // the fiber's own context
  ucontext_t return_ctx_{};  // where to go back on yield/finish
  bool started_ = false;
  bool finished_ = false;
  bool running_ = false;
  std::exception_ptr pending_exception_;
#ifdef NBCTUNE_FIBER_ASAN
  std::size_t stack_bytes_ = 0;
  void* sched_fake_stack_ = nullptr;  // scheduler's shadow while in the fiber
  void* fiber_fake_stack_ = nullptr;  // fiber's shadow while suspended
  const void* sched_stack_bottom_ = nullptr;
  std::size_t sched_stack_size_ = 0;
#endif
};

}  // namespace nbctune::sim
