file(REMOVE_RECURSE
  "CMakeFiles/test_adcl_request.dir/test_adcl_request.cpp.o"
  "CMakeFiles/test_adcl_request.dir/test_adcl_request.cpp.o.d"
  "test_adcl_request"
  "test_adcl_request.pdb"
  "test_adcl_request[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adcl_request.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
