# Empty compiler generated dependencies file for fft_overlap.
# This may be replaced when dependencies are built.
