file(REMOVE_RECURSE
  "CMakeFiles/custom_functionset.dir/custom_functionset.cpp.o"
  "CMakeFiles/custom_functionset.dir/custom_functionset.cpp.o.d"
  "custom_functionset"
  "custom_functionset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_functionset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
