file(REMOVE_RECURSE
  "CMakeFiles/nbctune_sim.dir/engine.cpp.o"
  "CMakeFiles/nbctune_sim.dir/engine.cpp.o.d"
  "CMakeFiles/nbctune_sim.dir/fiber.cpp.o"
  "CMakeFiles/nbctune_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/nbctune_sim.dir/random.cpp.o"
  "CMakeFiles/nbctune_sim.dir/random.cpp.o.d"
  "libnbctune_sim.a"
  "libnbctune_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbctune_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
