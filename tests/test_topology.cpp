// Topology subsystem semantics: deterministic rail round-robin, stripe
// planning invariants, leader election (including stability across
// ScenarioPool thread counts), two-level vs flat payload-total
// equivalence, data integrity of the two-level collectives, and the
// multi-rail speedup the striped/rail mappings exist for.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "coll/hierarchical.hpp"
#include "coll/iallreduce.hpp"
#include "coll/ibcast.hpp"
#include "harness/microbench.hpp"
#include "harness/scenario_pool.hpp"
#include "mpi/world.hpp"
#include "nbc/handle.hpp"
#include "net/platform.hpp"
#include "net/topology.hpp"
#include "testing_util.hpp"

using namespace nbctune;
namespace t = nbctune::testing;

// ------------------------------------------------------------ rails

TEST(TopologyRails, RoundRobinIsAPureFunctionOfTheSequence) {
  const net::Topology crill(net::crill());
  ASSERT_EQ(crill.rails(), 2);
  for (int seq = 0; seq < 16; ++seq) {
    EXPECT_EQ(crill.rail_for(seq), seq % 2);
    // Same seq -> same rail, every time (thread-count independence rests
    // on the caller owning the sequence counter, not on call order).
    EXPECT_EQ(crill.rail_for(seq), crill.rail_for(seq));
  }
  // Negative sequences still land on a valid rail.
  EXPECT_EQ(crill.rail_for(-1), 1);
  EXPECT_EQ(crill.rail_for(-2), 0);
}

TEST(TopologyRails, SingleNicPlatformsAlwaysUseRailZero) {
  const net::Topology whale(net::whale());
  ASSERT_EQ(whale.rails(), 1);
  for (int seq = -3; seq < 9; ++seq) EXPECT_EQ(whale.rail_for(seq), 0);
}

// ---------------------------------------------------------- striping

namespace {

void check_stripe_plan(const net::Topology& topo, std::size_t bytes,
                       std::size_t min_stripe) {
  const auto stripes = topo.plan_stripes(bytes, min_stripe);
  if (bytes == 0) return;  // empty message: plan contents are moot
  ASSERT_FALSE(stripes.empty());
  ASSERT_LE(stripes.size(), static_cast<std::size_t>(topo.rails()));
  std::size_t total = 0;
  std::size_t expect_offset = 0;
  std::vector<bool> rail_used(static_cast<std::size_t>(topo.rails()), false);
  for (const net::Stripe& st : stripes) {
    EXPECT_EQ(st.offset, expect_offset);  // contiguous, ascending
    EXPECT_GT(st.bytes, 0u);
    ASSERT_GE(st.rail, 0);
    ASSERT_LT(st.rail, topo.rails());
    EXPECT_FALSE(rail_used[static_cast<std::size_t>(st.rail)])
        << "rail " << st.rail << " used twice";
    rail_used[static_cast<std::size_t>(st.rail)] = true;
    expect_offset += st.bytes;
    total += st.bytes;
  }
  EXPECT_EQ(total, bytes) << "stripes must tile the message exactly";
}

}  // namespace

TEST(TopologyStripes, PlansTileTheMessageExactly) {
  const net::Topology crill(net::crill());
  for (std::size_t bytes : {std::size_t{1}, std::size_t{4095},
                            std::size_t{4096}, std::size_t{8191},
                            std::size_t{8192}, std::size_t{8193},
                            std::size_t{65536}, std::size_t{1048576},
                            std::size_t{1048577}}) {
    check_stripe_plan(crill, bytes, 4096);
  }
}

TEST(TopologyStripes, SmallMessagesStayUnsplit) {
  const net::Topology crill(net::crill());
  // Below 2 * min_stripe_bytes a split would leave a stripe under the
  // floor, so the whole message rides one rail.
  for (std::size_t bytes : {std::size_t{1}, std::size_t{4096},
                            std::size_t{8191}}) {
    EXPECT_EQ(crill.plan_stripes(bytes, 4096).size(), 1u) << bytes;
  }
  EXPECT_EQ(crill.plan_stripes(8192, 4096).size(), 2u);
}

TEST(TopologyStripes, SingleRailPlatformNeverSplits) {
  const net::Topology whale(net::whale());
  for (std::size_t bytes : {std::size_t{4096}, std::size_t{1048576}}) {
    const auto stripes = whale.plan_stripes(bytes);
    ASSERT_EQ(stripes.size(), 1u);
    EXPECT_EQ(stripes[0].rail, 0);
    EXPECT_EQ(stripes[0].bytes, bytes);
  }
}

// ---------------------------------------------------- leader election

TEST(NodeLeaders, LowestRankLeadsExceptOnTheRootsNode) {
  // 12 ranks on 3 nodes of 4.
  std::vector<int> node_of(12);
  for (int r = 0; r < 12; ++r) node_of[static_cast<std::size_t>(r)] = r / 4;
  const auto leader_of = coll::node_leaders(node_of, /*root=*/6);
  for (int r = 0; r < 12; ++r) {
    const int expect = r / 4 == 1 ? 6 : (r / 4) * 4;  // root's node: root
    EXPECT_EQ(leader_of[static_cast<std::size_t>(r)], expect) << "rank " << r;
  }
  // Every leader leads itself.
  for (int r = 0; r < 12; ++r) {
    const int l = leader_of[static_cast<std::size_t>(r)];
    EXPECT_EQ(leader_of[static_cast<std::size_t>(l)], l);
  }
}

TEST(NodeLeaders, StableAcrossPoolThreadCounts) {
  // Leader election is a pure function, so electing concurrently on a
  // worker pool must agree with the serial answer for every root — this
  // is what lets two-level schedules be built on any thread of a sweep.
  std::vector<int> node_of(96);
  for (int r = 0; r < 96; ++r) node_of[static_cast<std::size_t>(r)] = r / 48;
  std::vector<std::vector<int>> serial(96);
  for (int root = 0; root < 96; ++root) {
    serial[static_cast<std::size_t>(root)] = coll::node_leaders(node_of, root);
  }
  for (int threads : {1, 3}) {
    harness::ScenarioPool pool(threads);
    std::vector<std::vector<int>> pooled(96);
    pool.run_indexed(96, [&](std::size_t root) {
      pooled[root] = coll::node_leaders(node_of, static_cast<int>(root));
    });
    EXPECT_EQ(pooled, serial) << "threads=" << threads;
  }
}

// ------------------------------------- two-level vs flat payload totals

TEST(TwoLevelShape, BcastPayloadTotalMatchesFlat) {
  const int n = 12;
  const std::size_t bytes = 4096;
  std::vector<int> node_of(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) node_of[static_cast<std::size_t>(r)] = r / 4;
  std::vector<std::byte> buf(bytes);
  for (int root : {0, 5, 11}) {
    std::size_t two_sends = 0, two_bytes = 0, flat_bytes = 0;
    for (int me = 0; me < n; ++me) {
      auto two = coll::build_ibcast_two_level(me, n, buf.data(), bytes, root,
                                              node_of);
      two_sends += two.total_sends();
      two_bytes += two.total_send_bytes();
      auto flat = coll::build_ibcast(me, n, buf.data(), bytes, root,
                                     coll::kFanoutBinomial, /*seg_bytes=*/0);
      flat_bytes += flat.total_send_bytes();
    }
    // Exactly n-1 payload sends of the full message, like any flat tree:
    // the hierarchy moves crossings, it does not add traffic (G7's basis).
    EXPECT_EQ(two_sends, static_cast<std::size_t>(n - 1)) << "root " << root;
    EXPECT_EQ(two_bytes, static_cast<std::size_t>(n - 1) * bytes);
    EXPECT_EQ(two_bytes, flat_bytes);
  }
}

TEST(TwoLevelShape, AllreducePayloadTotalMatchesFlatReduceBcast) {
  const int n = 12;
  const std::size_t count = 512;
  const std::size_t bytes = count * sizeof(double);
  std::vector<int> node_of(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) node_of[static_cast<std::size_t>(r)] = r / 4;
  std::vector<double> in(count), out(count);
  std::size_t two_sends = 0, two_bytes = 0, flat_bytes = 0;
  for (int me = 0; me < n; ++me) {
    auto two = coll::build_iallreduce_two_level(me, n, in.data(), out.data(),
                                                count, nbc::DType::F64,
                                                mpi::ReduceOp::Sum, node_of);
    two_sends += two.total_sends();
    two_bytes += two.total_send_bytes();
    auto flat = coll::build_iallreduce_reduce_bcast(me, n, in.data(),
                                                    out.data(), count,
                                                    nbc::DType::F64,
                                                    mpi::ReduceOp::Sum);
    flat_bytes += flat.total_send_bytes();
  }
  // Reduce up + broadcast down, both full-vector: 2(n-1) messages.
  EXPECT_EQ(two_sends, 2u * static_cast<std::size_t>(n - 1));
  EXPECT_EQ(two_bytes, 2u * static_cast<std::size_t>(n - 1) * bytes);
  EXPECT_EQ(two_bytes, flat_bytes);
}

// ------------------------------------------------------ data integrity

namespace {

std::vector<int> world_node_of(mpi::Ctx& ctx, int n) {
  std::vector<int> node_of(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    node_of[static_cast<std::size_t>(r)] = ctx.world().node_of(r);
  }
  return node_of;
}

}  // namespace

TEST(TwoLevelCorrectness, BcastDeliversRootData) {
  const int n = 12;  // whale: 8 cores/node -> one full node + one partial
  const std::size_t bytes = 3000;
  const int root = 5;
  std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(n));
  t::run_world(net::whale(), n, [&](mpi::Ctx& ctx) {
    const int me = ctx.world_rank();
    auto& buf = bufs[static_cast<std::size_t>(me)];
    buf = me == root ? t::make_pattern(root, bytes)
                     : std::vector<std::byte>(bytes);
    nbc::Schedule s = coll::build_ibcast_two_level(
        me, n, buf.data(), bytes, root, world_node_of(ctx, n));
    nbc::Handle h(ctx, ctx.world().comm_world(), &s, 1 << 20);
    h.start();
    h.wait();
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)], t::make_pattern(root, bytes))
        << "rank " << r;
  }
}

TEST(TwoLevelCorrectness, AllreduceSumsAcrossNodes) {
  const int n = 12;
  const std::size_t count = 300;
  std::vector<std::vector<double>> outs(
      static_cast<std::size_t>(n), std::vector<double>(count));
  t::run_world(net::whale(), n, [&](mpi::Ctx& ctx) {
    const int me = ctx.world_rank();
    std::vector<double> in(count);
    for (std::size_t i = 0; i < count; ++i) {
      in[i] = me + static_cast<double>(i) * 0.5;
    }
    nbc::Schedule s = coll::build_iallreduce_two_level(
        me, n, in.data(), outs[static_cast<std::size_t>(me)].data(), count,
        nbc::DType::F64, mpi::ReduceOp::Sum, world_node_of(ctx, n));
    nbc::Handle h(ctx, ctx.world().comm_world(), &s, 1 << 20);
    h.start();
    h.wait();
  });
  for (std::size_t i = 0; i < count; ++i) {
    const double expect = n * (n - 1) / 2.0 + n * (static_cast<double>(i) * 0.5);
    for (int r = 0; r < n; ++r) {
      EXPECT_NEAR(outs[static_cast<std::size_t>(r)][i], expect, 1e-9)
          << "rank " << r << " element " << i;
    }
  }
}

// ------------------------------------------------- multi-rail speedup

TEST(MultiRail, StripedAndRailBeatSingleRailFanAtLargeSizes) {
  // The acceptance shape of the hierarchy sweep, shrunk to test budget:
  // on the dual-HCA crill preset the root's 1 MiB blocks serialize on one
  // NIC under the fan mapping, while rail round-robin and striping use
  // both (function-set order: linear, fan-rail0, rail, striped).
  harness::MicroScenario s;
  s.platform = net::crill();
  s.op = harness::OpKind::Iscatter;
  s.nprocs = 96;
  s.bytes = 1 << 20;
  s.compute_per_iter = 2e-3;
  s.progress_calls = 5;
  s.iterations = 3;
  s.noise_scale = 0.0;
  const double fan = harness::run_fixed(s, 1).loop_time;
  const double rail = harness::run_fixed(s, 2).loop_time;
  const double striped = harness::run_fixed(s, 3).loop_time;
  EXPECT_LT(rail, fan * 0.75) << "round-robin must relieve the rail-0 choke";
  EXPECT_LT(striped, fan * 0.75) << "striping must relieve the rail-0 choke";
}
