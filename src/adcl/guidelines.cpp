#include "adcl/guidelines.hpp"

namespace nbctune::adcl {

const DominatedMark* GuidelineBook::find_dominated(
    const std::string& function) const noexcept {
  for (const DominatedMark& m : dominated_) {
    if (m.function == function) return &m;
  }
  return nullptr;
}

const MockupBound* GuidelineBook::violated_by(double score) const noexcept {
  const MockupBound* tightest = nullptr;
  for (const MockupBound& m : mockups_) {
    if (score > m.limit() &&
        (tightest == nullptr || m.limit() < tightest->limit())) {
      tightest = &m;
    }
  }
  return tightest;
}

}  // namespace nbctune::adcl
