#pragma once

// Regression gating over report JSONs (--regress mode).
//
// The byte-diff gates that guarded the report goldens through PR5 were
// exact but brittle: any intentional change anywhere in a report forced a
// golden regeneration, and an unintentional drift of 1 ns failed CI with
// no indication of whether it mattered.  This module replaces them with a
// semantic diff: two reports (an old golden and a freshly generated one)
// are reduced to per-scenario digests — blame shares, overlap, median op
// time with its nonparametric CI, ADCL winner, guideline verdicts — and
// compared under explicit tolerances.  A drift beyond tolerance is a
// regression; formatting churn and sub-tolerance jitter are not.
//
// Tolerances come from `RegressTolerances`, settable via key=value pairs
// (CLI `--tolerance`) or a config file of `key value` lines
// (`--tolerance-config`, see bench/golden/regress_tolerances.txt):
//
//   blame_share   max absolute drift of any blame share (fraction, 0..1)
//   op_rel        max relative drift of the mean op time unless the
//                 median CIs overlap (see ci_separation)
//   overlap       max absolute drift of the mean overlap ratio
//   ci_separation 1 = an op-time drift only fails when the two ~95%
//                 CIs are disjoint (rel drift alone is not enough);
//                 0 = fail on relative drift alone
//
// Structural changes are always violations regardless of tolerance: a
// scenario missing from / added to the new report, an ADCL winner flip,
// a guideline that regressed from pass to fail, vanished entirely, or
// lost all checked pairs.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace nbctune::analyze {

/// One scenario reduced to the quantities the gate compares.
struct ScenarioDigest {
  std::string label;
  std::map<std::string, double> blame_share;  ///< category -> share of total
  double mean_overlap = 0.0;          ///< mean overlap ratio across ops
  std::uint64_t ops = 0;
  double mean_op = 0.0;               ///< mean op elapsed, seconds
  // Median statistics (schema v2; n == 0 when absent, e.g. v1 reports).
  std::uint64_t stat_n = 0;
  double median_op = 0.0;             ///< seconds
  double ci_lo = 0.0;                 ///< seconds
  double ci_hi = 0.0;                 ///< seconds
  bool min_reps_met = false;
  bool has_adcl = false;
  int adcl_winner = -1;
  std::uint64_t adcl_eliminations = 0;
  std::uint64_t adcl_prunes = 0;
};

/// One guideline verdict from the report's "guidelines" array.
struct GuidelineDigest {
  std::string id;
  std::uint64_t checked = 0;
  std::uint64_t passed = 0;      ///< pairs that passed, not a bool
  std::uint64_t violations = 0;
  [[nodiscard]] bool failing() const { return violations > 0; }
};

/// A whole report, digested.
struct ReportDigest {
  std::string schema;
  std::vector<ScenarioDigest> scenarios;
  std::vector<GuidelineDigest> guidelines;
};

/// Parse a report JSON (schema "nbctune-report-v1" or -v2) into a digest.
/// Throws std::runtime_error on malformed input or wrong schema family.
[[nodiscard]] ReportDigest read_report_json(std::istream& is);

struct RegressTolerances {
  double blame_share = 0.10;
  double op_rel = 0.25;
  double overlap = 0.10;
  bool ci_separation = true;

  /// Apply one "key=value"-style setting; returns false on unknown key
  /// or unparsable value.
  bool set(const std::string& key, const std::string& value);
};

/// Read `key value` lines (blank lines and #-comments skipped) into
/// `tol`. Throws std::runtime_error on an unknown key or bad value.
void read_tolerances(std::istream& is, RegressTolerances& tol);

struct RegressViolation {
  std::string scenario;  ///< empty for report-level (guideline) findings
  std::string what;
};

struct RegressResult {
  std::vector<RegressViolation> violations;
  std::uint64_t scenarios_compared = 0;
  std::uint64_t guidelines_compared = 0;
  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Compare `nu` against the baseline `old`.
[[nodiscard]] RegressResult regress(const ReportDigest& old_r,
                                    const ReportDigest& new_r,
                                    const RegressTolerances& tol);

/// Human-readable summary of a regress run (one line per violation).
void write_regress(std::ostream& os, const RegressResult& r,
                   const RegressTolerances& tol);

}  // namespace nbctune::analyze
