// Fail-stop rank failures: the kill=rank@t plan grammar (plus a seeded
// round-trip fuzzer), ULFM-style lease detection, the agreement round and
// communicator shrink, harness-level shrink-and-retune recovery under
// every canned kill plan, the no-resurrection rule for traffic addressed
// to dead ranks under combined kill+drops plans, machine-mode rejection,
// and byte-determinism of killed sweeps across pool thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/chrome_reader.hpp"
#include "fault/fault.hpp"
#include "harness/microbench.hpp"
#include "harness/scenario_pool.hpp"
#include "mpi/ft.hpp"
#include "mpi/world.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"
#include "trace/trace.hpp"

using namespace nbctune;
namespace t = nbctune::testing;

// ------------------------------------------------------------ kill grammar

TEST(FtPlan, KillGrammarParses) {
  const fault::FaultPlan p =
      fault::FaultPlan::parse("seed=3;kill=5@0.004,1@0.012;lease=2e-3");
  ASSERT_EQ(p.kills.size(), 2u);
  EXPECT_EQ(p.kills[0].rank, 5);
  EXPECT_DOUBLE_EQ(p.kills[0].t, 0.004);
  EXPECT_EQ(p.kills[1].rank, 1);
  EXPECT_DOUBLE_EQ(p.kills[1].t, 0.012);
  EXPECT_DOUBLE_EQ(p.lease, 2e-3);
  EXPECT_TRUE(p.has_kills());
  EXPECT_TRUE(p.enabled());
  // Pure kill plans are not lossy: no ack/retransmit machinery, and no
  // implicit op_timeout arming.
  EXPECT_FALSE(p.lossy());
  EXPECT_DOUBLE_EQ(p.op_timeout, 0.0);
}

TEST(FtPlan, KillGrammarRejectsMalformed) {
  EXPECT_THROW(fault::FaultPlan::parse("kill="), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("kill=5"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("kill=@1"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("kill=5@"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("kill=5@x"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("kill=-1@2"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("kill=1@-2"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("lease=0"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("lease=-1"), std::invalid_argument);
}

TEST(FtPlan, CannedKillPlansParse) {
  int kill_plans = 0;
  for (const fault::CannedPlan& cp : fault::canned_plans()) {
    const fault::FaultPlan p = fault::FaultPlan::parse(cp.spec);
    EXPECT_FALSE(cp.desc.empty()) << cp.name;
    if (p.has_kills()) ++kill_plans;
  }
  EXPECT_GE(kill_plans, 4);  // kill1, killleader, cascade, killdrops
}

TEST(FtPlan, PrintRoundTripsKills) {
  const std::string spec =
      "seed=43;drop:p=0.15,max=30;rto=1e-3;retries=12;op_timeout=30;"
      "kill=2@0.004,7@1.25;lease=2e-3";
  const fault::FaultPlan p1 = fault::FaultPlan::parse(spec);
  const std::string printed = p1.print();
  const fault::FaultPlan p2 = fault::FaultPlan::parse(printed);
  // print() is a fixed point: parse(print(p)) prints identically.
  EXPECT_EQ(printed, p2.print());
  ASSERT_EQ(p2.kills.size(), 2u);
  EXPECT_EQ(p2.kills[0].rank, 2);
  EXPECT_EQ(p2.kills[1].rank, 7);
  EXPECT_DOUBLE_EQ(p2.lease, p1.lease);
}

// ------------------------------------------------- grammar round-trip fuzz

namespace {

/// Tiny deterministic generator (split-mix style) — the fuzzer must be
/// seed-stable so a failure reproduces from the printed seed alone.
struct FuzzRng {
  std::uint64_t s;
  std::uint64_t next() {
    s += 0x9E3779B97F4A7C15ULL;
    std::uint64_t x = s;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }
  int range(int n) { return static_cast<int>(next() % static_cast<unsigned>(n)); }
  double prob() { return static_cast<double>(next() % 1000) / 1000.0; }
  double small_time() { return static_cast<double>(next() % 10000) * 1e-5; }
};

/// Build a random *valid* plan spec from the component vocabulary.
std::string random_valid_spec(FuzzRng& rng) {
  std::string spec = "seed=" + std::to_string(rng.range(1000));
  if (rng.range(2)) {
    spec += ";drop:p=" + std::to_string(rng.prob()) +
            ",max=" + std::to_string(rng.range(50));
  }
  if (rng.range(2)) spec += ";dup:p=" + std::to_string(rng.prob());
  if (rng.range(2)) {
    spec += ";straggler:rank=" + std::to_string(rng.range(8)) +
            ",factor=" + std::to_string(1 + rng.range(7));
  }
  if (rng.range(2)) {
    spec += ";drift:window=" + std::to_string(1 + rng.range(8)) +
            ",tol=" + std::to_string(rng.prob());
  }
  if (rng.range(2)) {
    const int nkills = 1 + rng.range(3);
    spec += ";kill=";
    for (int k = 0; k < nkills; ++k) {
      if (k != 0) spec += ',';
      spec += std::to_string(rng.range(16)) + "@" +
              std::to_string(rng.small_time());
    }
    spec += ";lease=" + std::to_string(1e-4 + rng.prob() * 1e-2);
  }
  if (rng.range(2)) spec += ";rto=" + std::to_string(1e-4 + rng.prob() * 1e-2);
  if (rng.range(2)) spec += ";retries=" + std::to_string(rng.range(20));
  return spec;
}

/// Mutate a valid spec into a near-valid one that must be rejected.
std::string random_invalid_spec(FuzzRng& rng) {
  switch (rng.range(8)) {
    case 0: return "kill=" + std::to_string(rng.range(16));   // missing @t
    case 1: return "kill=@" + std::to_string(rng.small_time());
    case 2: return "kill=" + std::to_string(rng.range(16)) + "@oops";
    case 3: return "kill=-" + std::to_string(1 + rng.range(4)) + "@0.1";
    case 4: return "lease=" + std::to_string(-rng.prob());
    case 5: return "drop:p=" + std::to_string(1.5 + rng.prob());
    case 6: return "gremlin:p=" + std::to_string(rng.prob());
    case 7: return "drop:p";
  }
  return "wat=1";
}

}  // namespace

TEST(FtPlanFuzz, ValidSpecsRoundTripAndInvalidSpecsThrow) {
  FuzzRng rng{20260807};
  for (int i = 0; i < 500; ++i) {
    const std::string spec = random_valid_spec(rng);
    SCOPED_TRACE("seed-index " + std::to_string(i) + ": " + spec);
    fault::FaultPlan p;
    ASSERT_NO_THROW(p = fault::FaultPlan::parse(spec));
    // Round trip at print level: print() is a fixed point of parse.
    const std::string printed = p.print();
    fault::FaultPlan p2;
    ASSERT_NO_THROW(p2 = fault::FaultPlan::parse(printed));
    EXPECT_EQ(printed, p2.print());
    EXPECT_EQ(p.kills.size(), p2.kills.size());
    EXPECT_EQ(p.enabled(), p2.enabled());
    EXPECT_EQ(p.lossy(), p2.lossy());
  }
  for (int i = 0; i < 500; ++i) {
    const std::string spec = random_invalid_spec(rng);
    SCOPED_TRACE("seed-index " + std::to_string(i) + ": " + spec);
    EXPECT_THROW(fault::FaultPlan::parse(spec), std::invalid_argument);
  }
}

// ------------------------------------------------ detection and agreement

namespace {

const net::Platform kIb = net::whale();

/// World runner with a fault plan attached (RoundRobin placement so
/// inter-node machinery — drops, acks — sees the traffic).
void run_ft(int nprocs, const fault::FaultPlan& plan,
            const std::function<void(mpi::Ctx&)>& program) {
  sim::Engine engine(1);
  net::Machine machine(kIb);
  mpi::WorldOptions opts;
  opts.nprocs = nprocs;
  opts.noise_scale = 0.0;
  opts.seed = 1;
  opts.placement = mpi::WorldOptions::Placement::RoundRobin;
  opts.fault_plan = &plan;
  mpi::World world(engine, machine, opts);
  world.launch(program);
  engine.run();
}

/// Same, but hands the test the World for post-run inspection.
void run_ft_world(int nprocs, const fault::FaultPlan& plan,
                  const std::function<void(mpi::Ctx&)>& program,
                  const std::function<void(mpi::World&)>& after) {
  sim::Engine engine(1);
  net::Machine machine(kIb);
  mpi::WorldOptions opts;
  opts.nprocs = nprocs;
  opts.noise_scale = 0.0;
  opts.seed = 1;
  opts.placement = mpi::WorldOptions::Placement::RoundRobin;
  opts.fault_plan = &plan;
  mpi::World world(engine, machine, opts);
  world.launch(program);
  engine.run();
  after(world);
}

}  // namespace

TEST(FtRecovery, ShrinkDenselyReranksSurvivors) {
  const fault::FaultPlan plan =
      fault::FaultPlan::parse("kill=2@0.001;lease=1e-3");
  int recovered = 0;
  run_ft(4, plan, [&](mpi::Ctx& ctx) {
    try {
      for (;;) ctx.compute(2e-4);
    } catch (const mpi::RanksFailed&) {
      const mpi::FtDecision d = ctx.ft_recover(/*iteration=*/7);
      EXPECT_EQ(d.epoch, 1);
      ASSERT_EQ(d.failed.size(), 1u);
      EXPECT_EQ(d.failed[0], 2);
      // Dense re-ranking: survivors {0,1,3} become new ranks {0,1,2}.
      ASSERT_EQ(d.comm.size(), 3);
      EXPECT_EQ(d.comm.world_rank(0), 0);
      EXPECT_EQ(d.comm.world_rank(1), 1);
      EXPECT_EQ(d.comm.world_rank(2), 3);
      // Everyone was interrupted at iteration 7, so the redo point is 7.
      EXPECT_EQ(d.resume_iteration, 7);
      EXPECT_FALSE(d.all_finished);
      ++recovered;
      // Survivors can talk on the shrunk communicator right away.
      const double sum = ctx.allreduce(
          d.comm, static_cast<double>(d.comm.rank_of_world(ctx.world_rank())),
          mpi::ReduceOp::Sum);
      EXPECT_DOUBLE_EQ(sum, 0 + 1 + 2);
      const mpi::FtDecision f = ctx.ft_finish();
      EXPECT_TRUE(f.all_finished);
    }
  });
  EXPECT_EQ(recovered, 3);
}

TEST(FtRecovery, DetectionLatencyIsBoundedByLease) {
  const double lease = 3e-3;
  const fault::FaultPlan plan = fault::FaultPlan::parse(
      "kill=1@0.002;lease=" + std::to_string(lease));
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  {
    trace::Scope scope("ft detect");
    run_ft(3, plan, [&](mpi::Ctx& ctx) {
      try {
        for (;;) ctx.compute(2e-4);
      } catch (const mpi::RanksFailed&) {
        (void)ctx.ft_recover(0);
        (void)ctx.ft_finish();
      }
    });
  }
  auto finished = trace::Session::instance().drain();
  ASSERT_EQ(finished.size(), 1u);
  const analyze::ScenarioTrace st = analyze::from_finished(finished.at(0));
  double death_ts = -1.0, detect_ts = -1.0, agree_ts = -1.0;
  for (const analyze::AEvent& e : st.events) {
    if (e.name == "mpi.rank_death") death_ts = e.ts;
    if (e.name == "mpi.ft.detect") detect_ts = e.ts;
    if (e.name == "mpi.ft.agree" && agree_ts < 0.0) agree_ts = e.ts;
  }
  ASSERT_GE(death_ts, 0.0);
  ASSERT_GE(detect_ts, 0.0);
  ASSERT_GE(agree_ts, 0.0);
  EXPECT_DOUBLE_EQ(death_ts, 0.002);
  // The failure detector is a lease: detection happens exactly one lease
  // period after the death, never sooner.
  EXPECT_NEAR(detect_ts - death_ts, lease, 1e-12);
  EXPECT_GE(agree_ts, detect_ts);
}

TEST(FtRecovery, FinishedRanksStandAtTerminationAgreement) {
  // Rank 0 finishes its (empty) work immediately and stands at ft_finish;
  // the other survivor recovers from the death and then finishes too.
  const fault::FaultPlan plan =
      fault::FaultPlan::parse("kill=2@0.002;lease=1e-3");
  std::vector<int> resumed(3, -2);
  run_ft(3, plan, [&](mpi::Ctx& ctx) {
    const int me = ctx.world_rank();
    if (me == 0) {
      // Finished before the death: must redo nothing, but must wait for
      // the agreement (the other survivor was interrupted mid-loop).
      mpi::FtDecision d = ctx.ft_finish();
      while (!d.all_finished) {
        resumed[0] = d.resume_iteration;
        d = ctx.ft_finish();
      }
    } else {
      try {
        for (;;) ctx.compute(2e-4);
      } catch (const mpi::RanksFailed&) {
        const mpi::FtDecision d = ctx.ft_recover(4);
        resumed[me] = d.resume_iteration;
        const mpi::FtDecision f = ctx.ft_finish();
        EXPECT_TRUE(f.all_finished);
      }
    }
  });
  // The agreed redo point is the minimum over interrupted survivors: 4.
  EXPECT_EQ(resumed[0], 4);
  EXPECT_EQ(resumed[1], 4);
}

TEST(FtRecovery, MachineModeRejectsKillPlans) {
  harness::MicroScenario s;
  s.platform = kIb;
  s.nprocs = 4;
  s.op = harness::OpKind::Ibcast;
  s.bytes = 1024;
  s.iterations = 2;
  s.noise_scale = 0.0;
  s.fault_plan = "kill=1@0.001;lease=1e-3";
  s.fault_plan_name = "kill";
  s.exec = harness::ExecMode::Machine;
  EXPECT_THROW((void)harness::run_fixed(s, 0), std::invalid_argument);
}

// --------------------------------------- no resurrection of dead traffic

TEST(FtRecovery, RetransmitNeverResurrectsTrafficToADeadRank) {
  // Rank 0's only message to rank 1 is dropped; rank 1 dies before the
  // RTO fires.  The retransmit path must declare the send failed instead
  // of re-shipping to the corpse, and recovery must reclaim rank 1's
  // dedup state.
  const fault::FaultPlan plan = fault::FaultPlan::parse(
      "seed=5;drop:p=1,max=1;rto=2e-3;retries=12;op_timeout=30;"
      "kill=1@0.0005;lease=1e-3");
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  std::map<std::string, std::uint64_t> ctrs;
  {
    trace::Scope scope("ft no-resurrection");
    run_ft_world(
        2, plan,
        [&](mpi::Ctx& ctx) {
          auto comm = ctx.world().comm_world();
          std::vector<std::byte> buf(4096);
          if (ctx.world_rank() == 0) {
            try {
              ctx.send(comm, buf.data(), buf.size(), 1, 7);
              FAIL() << "send to a dying rank completed";
            } catch (const mpi::RanksFailed&) {
              const mpi::FtDecision d = ctx.ft_recover(0);
              ASSERT_EQ(d.failed.size(), 1u);
              EXPECT_EQ(d.failed[0], 1);
              EXPECT_EQ(d.comm.size(), 1);
              (void)ctx.ft_finish();
            }
          } else {
            ctx.recv(comm, buf.data(), buf.size(), 0, 7);
          }
        },
        [&](mpi::World& w) {
          // Dedup entries naming the dead rank were reclaimed by ft_cleanup.
          EXPECT_EQ(w.dedup_entries(1), 0u);
        });
  }
  std::ostringstream os;
  trace::Session::instance().write_counters(os);
  std::istringstream is(os.str());
  ctrs = analyze::read_counters(is);
  (void)trace::Session::instance().drain();
  EXPECT_EQ(ctrs.at("fault.drops"), 1u);
  // The RTO fired against a detected-dead peer: no retransmission went
  // back on the wire, the send failed immediately.
  EXPECT_EQ(ctrs.count("msg.retransmits") ? ctrs.at("msg.retransmits") : 0u,
            0u);
  EXPECT_GE(ctrs.at("msg.send_failures"), 1u);
  EXPECT_EQ(ctrs.at("mpi.rank_deaths"), 1u);
}

// ------------------------------------------- canned kill plans end to end

namespace {

/// The fig-3-shaped sweep scenario the canned kill plans are tuned for.
harness::MicroScenario kill_scenario() {
  harness::MicroScenario s;
  s.platform = net::whale();
  s.nprocs = 16;
  s.op = harness::OpKind::Ialltoall;
  s.bytes = 64 * 1024;
  s.compute_per_iter = 2e-3;
  s.progress_calls = 3;
  s.iterations = 40;
  s.noise_scale = 0.0;
  s.seed = 42;
  return s;
}

adcl::TuningOptions kill_tuning() {
  adcl::TuningOptions opts;
  opts.policy = adcl::PolicyKind::BruteForce;
  opts.tests_per_function = 2;
  return opts;
}

struct KillRun {
  harness::RunOutcome outcome;
  analyze::ScenarioReport report;
  std::map<std::string, std::uint64_t> counters;
};

KillRun run_kill_plan(const fault::CannedPlan& cp) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  harness::MicroScenario s = kill_scenario();
  s.fault_plan = cp.spec;
  s.fault_plan_name = cp.name;
  KillRun kr;
  kr.outcome = harness::run_adcl(s, kill_tuning());
  std::ostringstream os;
  trace::Session::instance().write_counters(os);
  auto finished = trace::Session::instance().drain();
  EXPECT_EQ(finished.size(), 1u) << cp.name;
  const analyze::Report r =
      analyze::analyze({analyze::from_finished(finished.at(0))});
  EXPECT_EQ(r.scenarios.size(), 1u) << cp.name;
  kr.report = r.scenarios.at(0);
  std::istringstream is(os.str());
  kr.counters = analyze::read_counters(is);
  return kr;
}

std::uint64_t ctr(const std::map<std::string, std::uint64_t>& m,
                  const std::string& k) {
  const auto it = m.find(k);
  return it == m.end() ? 0u : it->second;
}

}  // namespace

TEST(FtCannedPlans, SurvivorsCompleteUnderEveryKillPlan) {
  for (const fault::CannedPlan& cp : fault::canned_plans()) {
    const fault::FaultPlan plan = fault::FaultPlan::parse(cp.spec);
    if (!plan.has_kills()) continue;
    SCOPED_TRACE(cp.name);
    const KillRun kr = run_kill_plan(cp);

    // The sweep ran to completion on the survivors and produced a winner.
    EXPECT_GT(kr.outcome.loop_time, 0.0);
    EXPECT_FALSE(kr.outcome.impl.empty());
    EXPECT_NE(kr.outcome.impl, "<undecided>");

    // Every planned death happened, was agreed on, and re-opened tuning.
    EXPECT_EQ(ctr(kr.counters, "mpi.rank_deaths"), plan.kills.size());
    EXPECT_EQ(ctr(kr.counters, "mpi.shrinks"), plan.kills.size());
    EXPECT_GT(ctr(kr.counters, "nbc.rebuilds"), 0u);
    EXPECT_GE(kr.report.adcl.retunes, static_cast<int>(plan.kills.size()));

    // G1 under fail-stop: started = completed + aborted, exactly.
    const std::uint64_t started = ctr(kr.counters, "nbc.ops_started");
    const std::uint64_t completed = ctr(kr.counters, "nbc.ops_completed");
    const std::uint64_t aborted = ctr(kr.counters, "nbc.ops_aborted");
    EXPECT_GT(started, 0u);
    EXPECT_EQ(started, completed + aborted);

    // The analyzer surfaces the recovery timeline in the report.
    const analyze::RecoverySummary& rec = kr.report.recovery;
    EXPECT_TRUE(rec.any());
    EXPECT_EQ(rec.deaths, plan.kills.size());
    EXPECT_EQ(rec.epochs, plan.kills.size());
    EXPECT_GT(rec.rebuilds, 0u);
    EXPECT_EQ(rec.aborted_ops, aborted);
    EXPECT_EQ(kr.report.ops_aborted, aborted);
    // Detection latency is the lease period by construction.
    EXPECT_NEAR(rec.detection, plan.lease, 1e-12);
    EXPECT_GT(rec.agreement, 0.0);
    EXPECT_GT(rec.time_to_recover, plan.lease);
  }
}

TEST(FtCannedPlans, CascadeShrinksTwiceAcrossEpochs) {
  const fault::CannedPlan* cascade = nullptr;
  for (const auto& p : fault::canned_plans()) {
    if (p.name == "cascade") cascade = &p;
  }
  ASSERT_NE(cascade, nullptr);
  const KillRun kr = run_kill_plan(*cascade);
  EXPECT_EQ(ctr(kr.counters, "mpi.rank_deaths"), 2u);
  EXPECT_EQ(ctr(kr.counters, "mpi.shrinks"), 2u);
}

TEST(FtCannedPlans, KilldropsLayersDeathOnMessageLoss) {
  const fault::CannedPlan* kd = nullptr;
  for (const auto& p : fault::canned_plans()) {
    if (p.name == "killdrops") kd = &p;
  }
  ASSERT_NE(kd, nullptr);
  const KillRun kr = run_kill_plan(*kd);
  EXPECT_GT(kr.report.faults.drops, 0u);
  EXPECT_EQ(ctr(kr.counters, "mpi.rank_deaths"), 1u);
  EXPECT_EQ(ctr(kr.counters, "mpi.shrinks"), 1u);
  const std::uint64_t started = ctr(kr.counters, "nbc.ops_started");
  EXPECT_EQ(started, ctr(kr.counters, "nbc.ops_completed") +
                         ctr(kr.counters, "nbc.ops_aborted"));
}

// ------------------------------------------------------------ determinism

TEST(FtDeterminism, KilledSweepsReproduceAcrossPoolThreadCounts) {
  std::vector<const fault::CannedPlan*> kill_plans;
  for (const auto& p : fault::canned_plans()) {
    if (fault::FaultPlan::parse(p.spec).has_kills()) kill_plans.push_back(&p);
  }
  ASSERT_GE(kill_plans.size(), 4u);
  auto sweep = [&](int threads) {
    std::vector<harness::RunOutcome> runs(kill_plans.size());
    harness::ScenarioPool pool(threads);
    pool.run_indexed(kill_plans.size(), [&](std::size_t i) {
      harness::MicroScenario s = kill_scenario();
      s.fault_plan = kill_plans[i]->spec;
      s.fault_plan_name = kill_plans[i]->name;
      runs[i] = harness::run_adcl(s, kill_tuning());
    });
    return runs;
  };
  const auto r1 = sweep(1);
  const auto r4 = sweep(4);
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    SCOPED_TRACE(kill_plans[i]->name);
    EXPECT_EQ(r1[i].impl, r4[i].impl);
    EXPECT_EQ(r1[i].loop_time, r4[i].loop_time);  // exact, not approximate
    EXPECT_EQ(r1[i].decision_iteration, r4[i].decision_iteration);
  }
}
