file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_extra.dir/test_mpi_extra.cpp.o"
  "CMakeFiles/test_mpi_extra.dir/test_mpi_extra.cpp.o.d"
  "test_mpi_extra"
  "test_mpi_extra.pdb"
  "test_mpi_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
