// Mega-scale execution sweep: ranks-vs-wall-clock/peak-memory trajectory
// of the fiberless (machine-mode) execution path on the synthetic `mega`
// platform (4096 nodes x 32 cores = 131072 ranks).
//
// Fiber mode allocates a ucontext stack per rank (256 KiB default), so a
// 100k-rank world needs ~32 GB of stacks before a single message moves.
// Machine mode runs each rank as a flat state machine inside the World's
// contiguous arenas; this sweep demonstrates bounded memory up to the
// full 131072 ranks and writes the trajectory to BENCH_scale.json.
//
// Points run in ascending rank order, machine mode first: the process RSS
// high-water mark (VmHWM) is monotonic, so each machine point's reading
// is its own peak.  The trailing small-scale fiber points are for
// wall-clock comparison; their memory is reported as the World arena plus
// the fiber stacks they allocate (their VmHWM is masked by the larger
// machine runs).
//
//   bench_scale_sweep [--full] [--out FILE] [--max-ranks N]
//
// --full doubles iterations; --max-ranks caps the sweep (CI smoke boxes
// the runtime with --max-ranks 131072 and a tiny iteration budget).

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/machine_runner.hpp"
#include "net/platform.hpp"
#include "sim/fiber.hpp"

using namespace nbctune;

namespace {

/// VmHWM from /proc/self/status in KiB (0 if unavailable).
std::size_t rss_high_water_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream is(line.substr(6));
      std::size_t kb = 0;
      is >> kb;
      return kb;
    }
  }
  return 0;
}

enum class Op { Ibcast, Iallreduce };

struct Point {
  Op op;
  harness::ExecMode exec;
  int nprocs;
  std::string impl;
  double loop_time = 0.0;   // simulated seconds
  double wall_s = 0.0;      // host seconds for the whole point
  std::size_t arena_bytes = 0;
  std::size_t fiber_stack_bytes = 0;  // fiber mode: nprocs * stack
  std::size_t rss_hwm_kb = 0;
};

struct Shape {
  int iterations;
  double compute_per_iter = 100e-6;
  int progress_calls = 2;
  std::size_t bcast_bytes = 1024;
  std::size_t allreduce_count = 256;  // doubles
};

/// One machine-mode point, driven through exec::MachineRunner directly so
/// the sweep can read the World arena footprint (iallreduce has no
/// MicroScenario op kind; both ops take the same path here).
Point run_machine_point(Op op, int nprocs, const Shape& shape) {
  Point pt{op, harness::ExecMode::Machine, nprocs, "", 0, 0, 0, 0, 0};
  const auto t_wall0 = std::chrono::steady_clock::now();

  sim::Engine engine(/*seed=*/7);
  net::Machine machine(net::mega());
  mpi::WorldOptions wopts;
  wopts.nprocs = nprocs;
  wopts.seed = 7;
  wopts.noise_scale = 0.0;
  mpi::World world(engine, machine, wopts);

  auto fset = op == Op::Ibcast ? adcl::make_ibcast_functionset()
                               : adcl::make_iallreduce_functionset();
  // Bcast: binomial tree (the 32k segment size is moot at 1 KiB payloads).
  const int pinned = fset->find_by_name(op == Op::Ibcast
                                            ? "binomial/seg32k"
                                            : "recursive-doubling");
  if (pinned < 0) throw std::runtime_error("scale: pinned impl not found");
  pt.impl = fset->function(pinned).name;

  exec::MachineSpec spec;
  spec.compute_per_iter = shape.compute_per_iter;
  spec.iterations = shape.iterations;
  spec.progress_calls = shape.progress_calls;
  spec.make_request = [&](mpi::Ctx& ctx, std::vector<std::byte>&,
                          std::vector<std::byte>&) {
    adcl::OpArgs args;
    args.comm = ctx.world().comm_world();
    if (op == Op::Ibcast) {
      args.bytes = shape.bcast_bytes;  // root 0, no payload buffers
    } else {
      args.count = shape.allreduce_count;
      args.dtype = nbc::DType::F64;
    }
    auto req = adcl::request_create(ctx, fset, std::move(args), {});
    req->selection().force_winner(pinned);
    return req;
  };

  exec::MachineRunner runner(world, std::move(spec));
  runner.start();
  engine.run();
  runner.check_finished();

  pt.loop_time = runner.outcome().loop_time;
  pt.arena_bytes = world.arena_bytes() + runner.arena_bytes();
  pt.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t_wall0)
                  .count();
  pt.rss_hwm_kb = rss_high_water_kb();
  return pt;
}

/// A small-scale fiber-mode comparison point through the harness.
Point run_fiber_point(Op op, int nprocs, const Shape& shape) {
  Point pt{op, harness::ExecMode::Fiber, nprocs, "", 0, 0, 0, 0, 0};
  const auto t_wall0 = std::chrono::steady_clock::now();
  harness::MicroScenario s;
  s.platform = net::mega();
  s.nprocs = nprocs;
  s.op = harness::OpKind::Ibcast;  // fiber comparison: bcast only
  s.bytes = shape.bcast_bytes;
  s.compute_per_iter = shape.compute_per_iter;
  s.iterations = shape.iterations;
  s.progress_calls = shape.progress_calls;
  s.seed = 7;
  s.noise_scale = 0.0;
  auto fset = harness::scenario_functionset(s);
  const int pinned = fset->find_by_name("binomial/seg32k");
  const harness::RunOutcome out = harness::run_fixed(s, pinned);
  pt.impl = out.impl;
  pt.loop_time = out.loop_time;
  pt.fiber_stack_bytes =
      static_cast<std::size_t>(nprocs) * sim::default_fiber_stack_bytes();
  pt.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t_wall0)
                  .count();
  pt.rss_hwm_kb = rss_high_water_kb();
  return pt;
}

const char* op_str(Op op) {
  return op == Op::Ibcast ? "ibcast" : "iallreduce";
}

void write_json(std::ostream& os, const std::vector<Point>& points,
                const Shape& shape) {
  os << "{\n";
  os << "  \"bench\": \"scale_sweep\",\n";
  os << "  \"platform\": \"mega\",\n";
  os << "  \"iterations\": " << shape.iterations << ",\n";
  os << "  \"compute_per_iter_s\": " << shape.compute_per_iter << ",\n";
  os << "  \"progress_calls\": " << shape.progress_calls << ",\n";
  os << "  \"rss_note\": \"rss_hwm_kb is the process VmHWM (monotonic); "
        "machine points run first in ascending rank order, so each reading "
        "is that point's own peak\",\n";
  os << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    os << "    {\"op\": \"" << op_str(p.op) << "\", \"exec\": \""
       << harness::exec_name(p.exec) << "\", \"nprocs\": " << p.nprocs
       << ", \"impl\": \"" << p.impl << "\", \"loop_time_s\": " << p.loop_time
       << ", \"wall_s\": " << p.wall_s << ", \"arena_bytes\": " << p.arena_bytes
       << ", \"fiber_stack_bytes\": " << p.fiber_stack_bytes
       << ", \"rss_hwm_kb\": " << p.rss_hwm_kb << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Driver drv("scale", argc, argv);
  std::string out_path = "BENCH_scale.json";
  int max_ranks = 131072;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--max-ranks") == 0 && i + 1 < argc) {
      max_ranks = std::atoi(argv[++i]);
    }
  }

  Shape shape;
  shape.iterations = drv.full() ? 4 : 2;

  std::vector<Point> points;
  const auto timer = drv.timer();

  // Machine mode, ascending (see the VmHWM note above).  Iallreduce is
  // capped at 32768: recursive doubling needs a power-of-two world and the
  // fold work per rank makes it the costlier op.
  for (int n : {1024, 4096, 16384, 32768, 65536, 131072}) {
    if (n > max_ranks) break;
    points.push_back(run_machine_point(Op::Ibcast, n, shape));
    std::cerr << "[scale] ibcast machine np" << n << ": wall "
              << points.back().wall_s << " s, rss "
              << points.back().rss_hwm_kb << " KiB\n";
    if (n <= 32768) {
      points.push_back(run_machine_point(Op::Iallreduce, n, shape));
      std::cerr << "[scale] iallreduce machine np" << n << ": wall "
                << points.back().wall_s << " s, rss "
                << points.back().rss_hwm_kb << " KiB\n";
    }
  }

  // Fiber comparison at small scale (stacks: nprocs x 256 KiB).
  for (int n : {256, 1024}) {
    if (n > max_ranks) break;
    points.push_back(run_fiber_point(Op::Ibcast, n, shape));
    std::cerr << "[scale] ibcast fiber np" << n << ": wall "
              << points.back().wall_s << " s\n";
  }

  harness::banner("Mega-scale sweep (machine mode, platform=mega)");
  harness::Table t({"op", "exec", "nprocs", "impl", "loop_time[s]", "wall[s]",
                    "arena[MB]", "rss_hwm[MB]"});
  for (const Point& p : points) {
    t.add_row({op_str(p.op), harness::exec_name(p.exec),
               std::to_string(p.nprocs), p.impl,
               harness::Table::num(p.loop_time),
               harness::Table::num(p.wall_s, 2),
               harness::Table::num(
                   static_cast<double>(p.arena_bytes + p.fiber_stack_bytes) /
                       (1024.0 * 1024.0),
                   1),
               harness::Table::num(static_cast<double>(p.rss_hwm_kb) / 1024.0,
                                   1)});
  }
  t.print();

  std::ofstream os(out_path);
  write_json(os, points, shape);
  std::cerr << "[scale] " << points.size() << " point(s) -> " << out_path
            << "\n";
  return 0;
}
