// Point-to-point semantics of the message-passing layer: matching, order,
// eager vs rendezvous protocols, progress-dependent completion, overlap.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mpi/world.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"

using namespace nbctune;
using testing_util_alias = void;
namespace t = nbctune::testing;

namespace {
const net::Platform kIb = net::whale();
const net::Platform kTcp = net::whale_tcp();
}  // namespace

TEST(Pt2Pt, EagerMessageDeliversPayload) {
  const std::size_t n = 1024;  // below eager limit
  std::vector<std::byte> got(n);
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    if (ctx.world_rank() == 0) {
      auto data = t::make_pattern(0, n);
      ctx.send(comm, data.data(), n, 1, 7);
    } else {
      ctx.recv(comm, got.data(), n, 0, 7);
    }
  });
  EXPECT_EQ(got, t::make_pattern(0, n));
}

TEST(Pt2Pt, RendezvousMessageDeliversPayload) {
  const std::size_t n = 256 * 1024;  // far above eager limit
  std::vector<std::byte> got(n);
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    if (ctx.world_rank() == 0) {
      auto data = t::make_pattern(0, n);
      ctx.send(comm, data.data(), n, 1, 7);
    } else {
      ctx.recv(comm, got.data(), n, 0, 7);
    }
  });
  EXPECT_EQ(got, t::make_pattern(0, n));
}

TEST(Pt2Pt, RendezvousOverTcpDeliversPayload) {
  const std::size_t n = 300 * 1024;  // several CPU-pushed chunks
  std::vector<std::byte> got(n);
  t::run_world(kTcp, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    if (ctx.world_rank() == 0) {
      auto data = t::make_pattern(0, n);
      ctx.send(comm, data.data(), n, 1, 7);
    } else {
      ctx.recv(comm, got.data(), n, 0, 7);
    }
  });
  EXPECT_EQ(got, t::make_pattern(0, n));
}

TEST(Pt2Pt, IntraNodeRendezvous) {
  // whale has 8 cores per node: ranks 0 and 1 share a node.
  const std::size_t n = 256 * 1024;
  std::vector<std::byte> got(n);
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    ASSERT_EQ(ctx.world().node_of(0), ctx.world().node_of(1));
    if (ctx.world_rank() == 0) {
      auto data = t::make_pattern(0, n);
      ctx.send(comm, data.data(), n, 1, 7);
    } else {
      ctx.recv(comm, got.data(), n, 0, 7);
    }
  });
  EXPECT_EQ(got, t::make_pattern(0, n));
}

TEST(Pt2Pt, ZeroByteMessages) {
  int delivered = 0;
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    if (ctx.world_rank() == 0) {
      ctx.send(comm, nullptr, 0, 1, 3);
    } else {
      ctx.recv(comm, nullptr, 0, 0, 3);
      ++delivered;
    }
  });
  EXPECT_EQ(delivered, 1);
}

TEST(Pt2Pt, SelfSend) {
  std::vector<std::byte> got(64);
  t::run_world(kIb, 1, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    auto data = t::make_pattern(0, 64);
    mpi::Req s = ctx.isend(comm, data.data(), 64, 0, 1);
    mpi::Req r = ctx.irecv(comm, got.data(), 64, 0, 1);
    ctx.wait(r);
    ctx.wait(s);
  });
  EXPECT_EQ(got, t::make_pattern(0, 64));
}

TEST(Pt2Pt, NonOvertakingSameTag) {
  // Two eager messages with the same (src, tag) must match in send order.
  std::vector<int> first(1), second(1);
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    if (ctx.world_rank() == 0) {
      int a = 111, b = 222;
      ctx.send(comm, &a, sizeof a, 1, 5);
      ctx.send(comm, &b, sizeof b, 1, 5);
    } else {
      ctx.recv(comm, first.data(), sizeof(int), 0, 5);
      ctx.recv(comm, second.data(), sizeof(int), 0, 5);
    }
  });
  EXPECT_EQ(first[0], 111);
  EXPECT_EQ(second[0], 222);
}

TEST(Pt2Pt, TagSelectsMessage) {
  int got9 = 0, got4 = 0;
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    if (ctx.world_rank() == 0) {
      int a = 40, b = 90;
      ctx.send(comm, &a, sizeof a, 1, 4);
      ctx.send(comm, &b, sizeof b, 1, 9);
    } else {
      // Receive tag 9 first even though tag 4 was sent first.
      ctx.recv(comm, &got9, sizeof got9, 0, 9);
      ctx.recv(comm, &got4, sizeof got4, 0, 4);
    }
  });
  EXPECT_EQ(got9, 90);
  EXPECT_EQ(got4, 40);
}

TEST(Pt2Pt, AnySourceReceives) {
  std::vector<int> got(2, -1);
  t::run_world(kIb, 3, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    if (ctx.world_rank() != 0) {
      int v = ctx.world_rank() * 10;
      ctx.send(comm, &v, sizeof v, 0, 1);
    } else {
      mpi::Status st0 = ctx.recv(comm, &got[0], sizeof(int), mpi::kAnySource, 1);
      mpi::Status st1 = ctx.recv(comm, &got[1], sizeof(int), mpi::kAnySource, 1);
      EXPECT_NE(st0.source, st1.source);
    }
  });
  EXPECT_EQ(got[0] + got[1], 30);
}

TEST(Pt2Pt, UnexpectedEagerBufferedUntilRecv) {
  int got = 0;
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    if (ctx.world_rank() == 0) {
      int v = 77;
      ctx.send(comm, &v, sizeof v, 1, 2);
    } else {
      ctx.compute(1.0);  // message arrives long before the recv posts
      ctx.recv(comm, &got, sizeof got, 0, 2);
    }
  });
  EXPECT_EQ(got, 77);
}

TEST(Pt2Pt, WaitAllCompletesEverything) {
  const int kMsgs = 16;
  std::vector<int> got(kMsgs, 0);
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    std::vector<mpi::Req> reqs;
    if (ctx.world_rank() == 0) {
      std::vector<int> vals(kMsgs);
      for (int i = 0; i < kMsgs; ++i) {
        vals[i] = i * i;
        reqs.push_back(ctx.isend(comm, &vals[i], sizeof(int), 1, i));
      }
      ctx.wait_all(reqs);
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        reqs.push_back(ctx.irecv(comm, &got[i], sizeof(int), 0, i));
      }
      ctx.wait_all(reqs);
    }
  });
  for (int i = 0; i < kMsgs; ++i) EXPECT_EQ(got[i], i * i);
}

TEST(Pt2Pt, StaleHandleThrows) {
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    if (ctx.world_rank() == 0) {
      int v = 5;
      mpi::Req h = ctx.isend(comm, &v, sizeof v, 1, 0);
      ctx.wait(h);               // h is nulled by wait
      EXPECT_TRUE(h.null());
      mpi::Req fake{999, 3};     // never allocated
      EXPECT_THROW(ctx.wait(fake), std::out_of_range);
    } else {
      int v = 0;
      ctx.recv(comm, &v, sizeof v, 0, 0);
    }
  });
}

TEST(Pt2Pt, RecvBufferTooSmallThrows) {
  EXPECT_THROW(
      t::run_world(kIb, 2,
                   [&](mpi::Ctx& ctx) {
                     auto comm = ctx.world().comm_world();
                     if (ctx.world_rank() == 0) {
                       std::vector<std::byte> big(512);
                       ctx.send(comm, big.data(), big.size(), 1, 0);
                     } else {
                       std::vector<std::byte> small(16);
                       ctx.recv(comm, small.data(), small.size(), 0, 0);
                     }
                   }),
      std::length_error);
}

// --------------------------------------------------- timing / semantics

TEST(Pt2Pt, PingPongCostMatchesModel) {
  // One eager round trip, exact (noise off): each direction costs
  // send prep (o_s + copy) + wire (L + bytes*G) + match (o_r + copy).
  const std::size_t n = 1024;
  const auto& p = kIb;
  double elapsed = 0.0;
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    std::vector<std::byte> buf(n);
    // Ranks 0 and 1 share a node on whale; use ranks 0 and 8 instead.
    (void)comm;
    if (ctx.world_rank() == 0) {
      const double t0 = ctx.now();
      ctx.send(comm, buf.data(), n, 1, 0);
      ctx.recv(comm, buf.data(), n, 1, 0);
      elapsed = ctx.now() - t0;
    } else if (ctx.world_rank() == 1) {
      ctx.recv(comm, buf.data(), n, 0, 0);
      ctx.send(comm, buf.data(), n, 0, 0);
    }
  });
  // Intra-node path (same node): one direction is roughly
  // o_s + copy + mem-port + latency + o_r + copy.
  const double copy = n * p.copy_byte_time;
  const double mem = n * p.mem_byte_time;
  const double one_way = p.intra.send_overhead + copy + mem +
                         p.intra.latency + p.intra.recv_overhead + copy;
  EXPECT_GT(elapsed, 2 * one_way * 0.5);
  EXPECT_LT(elapsed, 2 * one_way * 3.0 + 1e-5);
}

TEST(Pt2Pt, RendezvousNeedsReceiverProgress) {
  // The receiver computes for 50 ms without entering the library: the CTS
  // cannot be issued, so the transfer only happens afterwards (almost no
  // overlap).  With progress calls during compute, the transfer overlaps.
  const std::size_t n = 4 * 1024 * 1024;
  const double compute = 0.05;
  auto run = [&](int progress_calls) {
    double recv_done = 0.0;
    t::run_world(kIb, 9, [&](mpi::Ctx& ctx) {
      // Rank 0 (node 0) and rank 8 (node 1): inter-node path.
      auto comm = ctx.world().comm_world();
      std::vector<std::byte> buf(n);
      if (ctx.world_rank() == 0) {
        mpi::Req s = ctx.isend(comm, buf.data(), n, 8, 0);
        for (int i = 0; i < std::max(1, progress_calls); ++i) {
          ctx.compute(compute / std::max(1, progress_calls));
          if (progress_calls > 0) ctx.progress();
        }
        ctx.wait(s);
      } else if (ctx.world_rank() == 8) {
        mpi::Req r = ctx.irecv(comm, buf.data(), n, 0, 0);
        for (int i = 0; i < std::max(1, progress_calls); ++i) {
          ctx.compute(compute / std::max(1, progress_calls));
          if (progress_calls > 0) ctx.progress();
        }
        ctx.wait(r);
        recv_done = ctx.now();
      }
    });
    return recv_done;
  };
  const double no_progress = run(0);
  const double with_progress = run(10);
  const double wire = n * kIb.inter.byte_time;  // ~3 ms
  // Without progress: compute then transfer, serialized.
  EXPECT_GT(no_progress, compute + 0.8 * wire);
  // With progress: transfer overlaps compute almost fully.
  EXPECT_LT(with_progress, compute + 0.5 * wire);
  EXPECT_LT(with_progress, no_progress);
}

TEST(Pt2Pt, EagerProceedsWithoutReceiverProgress) {
  // Eager payloads are NIC-driven: even if the receiver computes, the
  // data is buffered and the post-compute recv is nearly instant.
  const std::size_t n = 2048;
  double recv_cost = 0.0;
  t::run_world(kIb, 9, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    std::vector<std::byte> buf(n);
    if (ctx.world_rank() == 0) {
      ctx.send(comm, buf.data(), n, 8, 0);
    } else if (ctx.world_rank() == 8) {
      ctx.compute(0.01);
      const double t0 = ctx.now();
      ctx.recv(comm, buf.data(), n, 0, 0);
      recv_cost = ctx.now() - t0;
    }
  });
  EXPECT_LT(recv_cost, 50e-6);  // just matching + copy, no wire wait
}

TEST(Pt2Pt, BlockingRendezvousDeadlockDetected) {
  // Classic head-to-head blocking send of rendezvous-sized messages:
  // neither side can post its receive, the simulator reports deadlock.
  const std::size_t n = 1024 * 1024;
  EXPECT_THROW(
      t::run_world(kIb, 2,
                   [&](mpi::Ctx& ctx) {
                     auto comm = ctx.world().comm_world();
                     std::vector<std::byte> buf(n);
                     const int peer = 1 - ctx.world_rank();
                     ctx.send(comm, buf.data(), n, peer, 0);
                     ctx.recv(comm, buf.data(), n, peer, 0);
                   }),
      sim::Engine::DeadlockError);
}

TEST(Pt2Pt, TcpBulkNeedsSenderProgress) {
  // On the TCP platform bulk data is pushed by the sender's CPU: a sender
  // that computes without progressing transfers nothing meanwhile.
  const std::size_t n = 1024 * 1024;
  const double compute = 0.1;
  auto run = [&](int progress_calls) {
    double done = 0.0;
    t::run_world(kTcp, 9, [&](mpi::Ctx& ctx) {
      auto comm = ctx.world().comm_world();
      std::vector<std::byte> buf(n);
      if (ctx.world_rank() == 0) {
        mpi::Req s = ctx.isend(comm, buf.data(), n, 8, 0);
        const int steps = std::max(1, progress_calls);
        for (int i = 0; i < steps; ++i) {
          ctx.compute(compute / steps);
          if (progress_calls > 0) ctx.progress();
        }
        ctx.wait(s);
        done = ctx.now();
      } else if (ctx.world_rank() == 8) {
        mpi::Req r = ctx.irecv(comm, buf.data(), n, 0, 0);
        ctx.wait(r);
      }
    });
    return done;
  };
  const double wire = n * kTcp.inter.byte_time;  // ~9 ms
  const double no_progress = run(0);
  const double many = run(40);
  EXPECT_GT(no_progress, compute + 0.8 * wire);
  EXPECT_LT(many, compute + 0.6 * wire);
}

TEST(Pt2Pt, DeterministicWithNoise) {
  auto run = [&] {
    std::vector<double> times;
    t::run_world(
        kIb, 4,
        [&](mpi::Ctx& ctx) {
          auto comm = ctx.world().comm_world();
          std::vector<std::byte> buf(4096);
          for (int it = 0; it < 20; ++it) {
            ctx.compute(1e-4);
            const int peer = ctx.world_rank() ^ 1;
            mpi::Req r = ctx.irecv(comm, buf.data(), 64, peer, it);
            ctx.send(comm, buf.data(), 64, peer, it);
            ctx.wait(r);
            times.push_back(ctx.now());
          }
        },
        /*noise=*/1.0, /*seed=*/99);
    return times;
  };
  EXPECT_EQ(run(), run());
}
