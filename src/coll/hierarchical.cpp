#include "coll/hierarchical.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "coll/ibcast.hpp"

namespace nbctune::coll {

namespace {

void check_args(int n, int root, const std::vector<int>& node_of,
                const char* what) {
  if (root < 0 || root >= n) {
    throw std::invalid_argument(std::string(what) + ": bad root");
  }
  if (node_of.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument(std::string(what) +
                                ": node_of size != comm size");
  }
}

/// Distinct leader ranks in ascending order, rotated so `root_leader`
/// (which must be a leader) sits at virtual rank 0.
std::vector<int> leader_list(const std::vector<int>& leader_of,
                             int root_leader) {
  std::vector<int> leaders(leader_of);
  std::sort(leaders.begin(), leaders.end());
  leaders.erase(std::unique(leaders.begin(), leaders.end()), leaders.end());
  const auto it = std::find(leaders.begin(), leaders.end(), root_leader);
  std::rotate(leaders.begin(), it, leaders.end());
  return leaders;
}

/// Node-local virtual order: the leader at virtual rank 0, the remaining
/// members ascending.  Identical on every member, so the intra-node trees
/// agree without communication.
std::vector<int> local_list(const std::vector<int>& leader_of, int leader) {
  std::vector<int> local{leader};
  for (std::size_t r = 0; r < leader_of.size(); ++r) {
    const int rank = static_cast<int>(r);
    if (rank != leader && leader_of[r] == leader) local.push_back(rank);
  }
  return local;
}

int virtual_rank(const std::vector<int>& ranks, int me) {
  return static_cast<int>(std::find(ranks.begin(), ranks.end(), me) -
                          ranks.begin());
}

/// Binomial reduce of `acc` towards virtual rank 0 of `ranks` (the
/// reduce half of the flat reduce_bcast, over an arbitrary rank list).
/// Safe to call back-to-back with other phases: every send is preceded
/// by a barrier and every fold runs at round-post time.
void binomial_reduce(nbc::Schedule& s, const std::vector<int>& ranks, int v,
                     std::byte* acc, std::size_t bytes, std::size_t count,
                     nbc::DType dtype, mpi::ReduceOp op, bool real) {
  const int vcount = static_cast<int>(ranks.size());
  std::byte* in = nullptr;
  for (int mask = 1; mask < vcount; mask <<= 1) {
    if (v & mask) {
      s.barrier();
      s.send(acc, bytes, ranks[static_cast<std::size_t>(v - mask)]);
      break;
    }
    if (v + mask < vcount) {
      if (in == nullptr && real) in = s.scratch(bytes);
      s.recv(in, bytes, ranks[static_cast<std::size_t>(v + mask)]);
      s.barrier();
      s.op(in, acc, count, dtype, op);
    }
  }
}

/// Binomial broadcast of `acc` from virtual rank 0 of `ranks` (the bcast
/// half of the flat reduce_bcast).
void binomial_bcast(nbc::Schedule& s, const std::vector<int>& ranks, int v,
                    std::byte* acc, std::size_t bytes) {
  const int vcount = static_cast<int>(ranks.size());
  int mask = 1;
  while (mask < vcount) {
    if (v & mask) {
      s.recv(acc, bytes, ranks[static_cast<std::size_t>(v - mask)]);
      s.barrier();
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if ((v & (mask - 1)) == 0 && (v | mask) < vcount && !(v & mask)) {
      s.send(acc, bytes, ranks[static_cast<std::size_t>(v | mask)]);
      s.barrier();
    }
    mask >>= 1;
  }
}

}  // namespace

std::vector<int> node_leaders(const std::vector<int>& node_of, int root) {
  std::vector<int> leader_of(node_of.size(), -1);
  // First (= lowest) rank seen on each node leads it; the root's node is
  // re-pointed at the root so its data needs no extra intra-node hop.
  std::vector<std::pair<int, int>> first;  // (node, rank)
  for (std::size_t r = 0; r < node_of.size(); ++r) {
    const int node = node_of[r];
    auto it = std::find_if(first.begin(), first.end(),
                           [node](const auto& p) { return p.first == node; });
    if (it == first.end()) first.emplace_back(node, static_cast<int>(r));
  }
  for (auto& [node, rank] : first) {
    if (node == node_of[static_cast<std::size_t>(root)]) rank = root;
  }
  for (std::size_t r = 0; r < node_of.size(); ++r) {
    const int node = node_of[r];
    leader_of[r] = std::find_if(first.begin(), first.end(),
                                [node](const auto& p) {
                                  return p.first == node;
                                })->second;
  }
  return leader_of;
}

nbc::Schedule build_ibcast_two_level(int me, int n, void* buf,
                                     std::size_t bytes, int root,
                                     const std::vector<int>& node_of) {
  check_args(n, root, node_of, "ibcast two-level");
  nbc::Schedule s;
  if (n == 1 || bytes == 0) {
    s.finalize();
    nbc::trace_built(s, "ibcast.two_level", me);
    return s;
  }
  const std::vector<int> leader_of = node_leaders(node_of, root);
  const int my_leader = leader_of[static_cast<std::size_t>(me)];
  const std::vector<int> local = local_list(leader_of, my_leader);
  const int lv = virtual_rank(local, me);
  const int lcount = static_cast<int>(local.size());

  if (me == my_leader) {
    // Inter-node phase: binomial over the leader list, root at v = 0.
    const std::vector<int> leaders = leader_list(leader_of, root);
    const int vcount = static_cast<int>(leaders.size());
    const int v = virtual_rank(leaders, me);
    const int vparent = bcast_parent(v, vcount, kFanoutBinomial);
    if (vparent >= 0) {
      s.recv(buf, bytes, leaders[static_cast<std::size_t>(vparent)]);
      s.barrier();
    }
    for (int c : bcast_children(v, vcount, kFanoutBinomial)) {
      s.send(buf, bytes, leaders[static_cast<std::size_t>(c)]);
    }
  } else {
    // Non-leader: binomial tree inside the node, rooted at the leader.
    const int lparent = bcast_parent(lv, lcount, kFanoutBinomial);
    s.recv(buf, bytes, local[static_cast<std::size_t>(lparent)]);
    s.barrier();
  }
  // Intra-node fan-out (leaders start it concurrently with their
  // inter-node children sends — the long poles go first on the wire).
  for (int c : bcast_children(lv, lcount, kFanoutBinomial)) {
    s.send(buf, bytes, local[static_cast<std::size_t>(c)]);
  }
  s.finalize();
  nbc::trace_built(s, "ibcast.two_level", me);
  return s;
}

nbc::Schedule build_iallreduce_two_level(int me, int n, const void* sbuf,
                                         void* rbuf, std::size_t count,
                                         nbc::DType dtype, mpi::ReduceOp op,
                                         const std::vector<int>& node_of) {
  check_args(n, /*root=*/0, node_of, "iallreduce two-level");
  nbc::Schedule s;
  const std::size_t esz = nbc::dtype_size(dtype);
  const std::size_t bytes = count * esz;
  const bool real = sbuf != nullptr || rbuf != nullptr;
  auto* acc = static_cast<std::byte*>(rbuf);

  s.copy(sbuf, acc, bytes);
  if (n == 1 || bytes == 0) {
    s.finalize();
    nbc::trace_built(s, "iallreduce.two_level", me);
    return s;
  }
  // Rank 0's node leader is rank 0 itself (the lowest rank of its node),
  // so the leader phase reduces towards v = 0 = comm rank 0.
  const std::vector<int> leader_of = node_leaders(node_of, /*root=*/0);
  const int my_leader = leader_of[static_cast<std::size_t>(me)];
  const std::vector<int> local = local_list(leader_of, my_leader);
  const int lv = virtual_rank(local, me);

  // Intra-node binomial reduce to the leader.
  binomial_reduce(s, local, lv, acc, bytes, count, dtype, op, real);

  if (me == my_leader) {
    // Inter-node phase over virtual leader ranks: binomial reduce to
    // v = 0, binomial broadcast back (the flat reduce_bcast shape).
    const std::vector<int> leaders =
        leader_list(leader_of, leader_of[0]);
    const int v = virtual_rank(leaders, me);
    binomial_reduce(s, leaders, v, acc, bytes, count, dtype, op, real);
    s.barrier();
    binomial_bcast(s, leaders, v, acc, bytes);
  }

  // Intra-node result broadcast from the leader.
  s.barrier();
  binomial_bcast(s, local, lv, acc, bytes);
  s.finalize();
  nbc::trace_built(s, "iallreduce.two_level", me);
  return s;
}

}  // namespace nbctune::coll
