# Empty compiler generated dependencies file for nbctune_coll.
# This may be replaced when dependencies are built.
