file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_progress_algo.dir/bench_fig7_progress_algo.cpp.o"
  "CMakeFiles/bench_fig7_progress_algo.dir/bench_fig7_progress_algo.cpp.o.d"
  "bench_fig7_progress_algo"
  "bench_fig7_progress_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_progress_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
