// Engine micro-benchmarks (google-benchmark): wall-clock costs of the
// simulator primitives.  Not a paper figure — these bound how large a
// simulated experiment the harness can run per second of host time.

#include <benchmark/benchmark.h>

#include <vector>

#include "adcl/functionsets.hpp"
#include "adcl/selection.hpp"
#include "coll/ialltoall.hpp"
#include "harness/microbench.hpp"
#include "harness/scenario_pool.hpp"
#include "mpi/world.hpp"
#include "nbc/handle.hpp"
#include "net/machine.hpp"
#include "net/platform.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "trace/trace.hpp"

using namespace nbctune;

// Tracing-overhead contract (trace.hpp): with no Tracer installed, every
// instrumentation hook is a thread-local load plus a not-taken branch.
// Arg(0) runs the engine hot path with tracing off (the default in every
// run without --trace); Arg(1) installs a live Tracer on this thread.
// Compare items/s: the off case must stay within ~2 % of pre-trace
// builds, the on case bounds the cost of a fully recorded run.
static void BM_EventChurnTraced(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  const int n = 65536;
  trace::Tracer tracer("bench_engine_micro");
  trace::Tracer* prev = nullptr;
  if (traced) prev = trace::set_current(&tracer);
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < n; ++i) {
      eng.schedule_at(static_cast<double>(i), [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  if (traced) trace::set_current(prev);
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(traced ? "events/s (tracing on)" : "events/s (tracing off)");
}
BENCHMARK(BM_EventChurnTraced)->Arg(0)->Arg(1);

static void BM_EventScheduleAndRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < n; ++i) {
      eng.schedule_at(static_cast<double>(i), [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventScheduleAndRun)->Arg(1024)->Arg(65536);

// The request-timeout pattern of the MPI layer: nearly every scheduled
// event is cancelled before it fires.  Exercises the generation-tagged
// O(1) cancel and the stale-entry skip on pop (the old unordered_set
// cancellation list paid a hash insert + probe per event here).
static void BM_EventCancelHeavy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (auto _ : state) {
    sim::Engine eng;
    ids.clear();
    for (int i = 0; i < n; ++i) {
      ids.push_back(eng.schedule_at(1.0 + i, [] {}));
    }
    // Cancel 90%: every id not divisible by 10.
    for (int i = 0; i < n; ++i) {
      if (i % 10 != 0) eng.cancel(ids[static_cast<std::size_t>(i)]);
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("scheduled events/s (90% cancelled)");
}
BENCHMARK(BM_EventCancelHeavy)->Arg(1024)->Arg(65536);

// Steady-state schedule/cancel/reschedule churn on a small live set:
// slots must recycle from the free list without slab growth.
static void BM_SlotReuseChurn(benchmark::State& state) {
  const int churn = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    std::uint64_t pending = eng.schedule_at(0.5, [] {});
    for (int i = 0; i < churn; ++i) {
      eng.cancel(pending);
      pending = eng.schedule_at(0.5 + i * 1e-6, [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * churn);
  state.SetLabel("schedule+cancel pairs/s");
}
BENCHMARK(BM_SlotReuseChurn)->Arg(100000);

// The wake()/schedule_after(0) fast path: zero-delay chains go through
// the now-FIFO instead of two O(log n) heap sifts per event.
static void BM_ZeroDelayChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    // A deep heap of far-future events makes sift cost visible if the
    // fast path regresses to heap pushes.
    for (int i = 0; i < 1024; ++i) {
      auto id = eng.schedule_at(1e6 + i, [] {});
      benchmark::DoNotOptimize(id);
    }
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < n) eng.schedule_after(0.0, [&] { chain(); });
    };
    eng.schedule_at(0.0, [&] { chain(); });
    eng.run_until(0.0);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("zero-delay events/s");
}
BENCHMARK(BM_ZeroDelayChain)->Arg(100000);

// ScenarioPool throughput on simulation-shaped tasks (one Engine per
// task), across worker counts.
static void BM_ScenarioPoolThroughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::size_t tasks = 256;
  harness::ScenarioPool pool(threads);
  for (auto _ : state) {
    std::vector<double> out(tasks);
    pool.run_indexed(tasks, [&](std::size_t i) {
      sim::Engine eng(i + 1);
      eng.add_process("p", [&](sim::Process& p) {
        for (int s = 0; s < 200; ++s) p.sleep(eng.rng().uniform(0.0, 1.0));
      });
      eng.run();
      out[i] = eng.now();
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
  state.SetLabel("scenario tasks/s");
}
BENCHMARK(BM_ScenarioPoolThroughput)->Arg(1)->Arg(2)->Arg(8);

static void BM_FiberSwitch(benchmark::State& state) {
  bool stop = false;
  sim::Fiber f([&] {
    while (!stop) sim::Fiber::current()->yield();
  });
  for (auto _ : state) {
    f.resume();  // one switch in, one out
  }
  stop = true;
  f.resume();
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_FiberSwitch);

static void BM_ProcessSleepWake(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    eng.add_process("p", [&](sim::Process& p) {
      for (int i = 0; i < n; ++i) p.sleep(1e-6);
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ProcessSleepWake)->Arg(10000);

static void BM_PingPong(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    net::Machine machine(net::whale());
    mpi::WorldOptions o;
    o.nprocs = 9;
    o.noise_scale = 0;
    mpi::World world(eng, machine, o);
    world.launch([&](mpi::Ctx& ctx) {
      auto comm = ctx.world().comm_world();
      std::vector<std::byte> buf(64);
      if (ctx.world_rank() == 0) {
        for (int i = 0; i < rounds; ++i) {
          ctx.send(comm, buf.data(), 64, 8, 0);
          ctx.recv(comm, buf.data(), 64, 8, 0);
        }
      } else if (ctx.world_rank() == 8) {
        for (int i = 0; i < rounds; ++i) {
          ctx.recv(comm, buf.data(), 64, 0, 0);
          ctx.send(comm, buf.data(), 64, 0, 0);
        }
      }
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
  state.SetLabel("messages/s");
}
BENCHMARK(BM_PingPong)->Arg(1000);

static void BM_AlltoallSchedule(benchmark::State& state) {
  const int np = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    net::Machine machine(net::crill());
    mpi::WorldOptions o;
    o.nprocs = np;
    o.noise_scale = 0;
    mpi::World world(eng, machine, o);
    world.launch([&](mpi::Ctx& ctx) {
      const int me = ctx.world_rank();
      nbc::Schedule s = coll::build_ialltoall_linear(me, np, nullptr, nullptr,
                                                     1024);
      nbc::Handle h(ctx, ctx.world().comm_world(), &s, 1 << 20);
      h.start();
      h.wait();
    });
    eng.run();
    benchmark::DoNotOptimize(world.total_data_msgs());
  }
  state.SetItemsProcessed(state.iterations() * np * (np - 1));
  state.SetLabel("messages simulated/s");
}
BENCHMARK(BM_AlltoallSchedule)->Arg(32)->Arg(128);

// Execution-mode cost: the same pinned micro-benchmark loop under fiber
// execution (ucontext switch per blocking point) vs machine execution
// (state-machine step per engine event, zero fibers).  Outputs are
// byte-identical (test_exec); this measures the host-side cost delta and
// bounds how much of a sweep's wall-clock the context switches are.
static void BM_ExecModeLoop(benchmark::State& state) {
  const auto mode = static_cast<harness::ExecMode>(state.range(0));
  harness::MicroScenario s;
  s.platform = net::crill();
  s.nprocs = 64;
  s.op = harness::OpKind::Ibcast;
  s.bytes = 4096;
  s.compute_per_iter = 100e-6;
  s.iterations = 4;
  s.progress_calls = 2;
  s.noise_scale = 0.0;
  s.exec = mode;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_fixed(s, 0).loop_time);
  }
  state.SetItemsProcessed(state.iterations() * s.nprocs * s.iterations);
  state.SetLabel(std::string("rank-iterations/s (") +
                 harness::exec_name(mode) + " mode)");
}
BENCHMARK(BM_ExecModeLoop)
    ->Arg(static_cast<int>(harness::ExecMode::Fiber))
    ->Arg(static_cast<int>(harness::ExecMode::Machine));

static void BM_SelectionPolicy(benchmark::State& state) {
  const auto kind = static_cast<adcl::PolicyKind>(state.range(0));
  auto fset = adcl::make_ibcast_functionset();  // 21 functions
  for (auto _ : state) {
    auto policy = adcl::make_policy(kind, *fset);
    int f = policy->first();
    double score = 1.0;
    while (f >= 0) {
      score = 1.0 + 0.01 * f;
      f = policy->next(f, score);
    }
    benchmark::DoNotOptimize(policy->winner());
  }
}
BENCHMARK(BM_SelectionPolicy)
    ->Arg(static_cast<int>(adcl::PolicyKind::BruteForce))
    ->Arg(static_cast<int>(adcl::PolicyKind::AttributeHeuristic))
    ->Arg(static_cast<int>(adcl::PolicyKind::TwoKFactorial));

BENCHMARK_MAIN();
