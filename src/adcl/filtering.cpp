#include "adcl/filtering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "trace/trace.hpp"

namespace nbctune::adcl {

double quantile(std::vector<double> s, double q) {
  if (s.empty()) throw std::invalid_argument("quantile of empty set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile q out of range");
  std::sort(s.begin(), s.end());
  const double pos = q * static_cast<double>(s.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

std::vector<double> filtered_samples(const std::vector<double>& samples,
                                     FilterKind kind, double trim_frac) {
  if (samples.empty()) return {};
  switch (kind) {
    case FilterKind::None:
      return samples;
    case FilterKind::Iqr: {
      if (samples.size() < 4) return samples;  // quartiles meaningless
      const double q1 = quantile(samples, 0.25);
      const double q3 = quantile(samples, 0.75);
      const double iqr = q3 - q1;
      const double lo = q1 - 1.5 * iqr;
      const double hi = q3 + 1.5 * iqr;
      std::vector<double> keep;
      keep.reserve(samples.size());
      for (double x : samples) {
        if (x >= lo && x <= hi) keep.push_back(x);
      }
      return keep.empty() ? samples : keep;
    }
    case FilterKind::TrimmedMean: {
      std::vector<double> s = samples;
      std::sort(s.begin(), s.end());
      const auto cut = static_cast<std::size_t>(
          std::floor(trim_frac * static_cast<double>(s.size())));
      if (2 * cut >= s.size()) return s;  // would trim everything
      return {s.begin() + static_cast<std::ptrdiff_t>(cut),
              s.end() - static_cast<std::ptrdiff_t>(cut)};
    }
  }
  return samples;
}

double robust_score(const std::vector<double>& samples, FilterKind kind,
                    double trim_frac) {
  if (samples.empty()) return std::numeric_limits<double>::infinity();
  const std::vector<double> kept = filtered_samples(samples, kind, trim_frac);
  trace::count(trace::Ctr::AdclSamplesSeen, samples.size());
  trace::count(trace::Ctr::AdclSamplesFiltered, samples.size() - kept.size());
  return std::accumulate(kept.begin(), kept.end(), 0.0) /
         static_cast<double>(kept.size());
}

}  // namespace nbctune::adcl
