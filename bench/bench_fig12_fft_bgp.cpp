// Figure 12: 3-D FFT with the modified (blocking-extended) ADCL
// function-set vs the blocking MPI version on the IBM BlueGene/P.
//
// The paper ran 1024 processes; the default here is 256 simulated
// processes to keep the simulation tractable on a laptop (the linear
// all-to-all alone is P^2 messages per transpose) — run with --full for
// the paper-scale 1024.  Expected shape as Fig. 11: blocking MPI can win
// overall because of the longer learning phase; after the decision, ADCL
// matches or beats it.

#include "fft_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::bench;

int main(int argc, char** argv) {
  Driver drv("fig12", argc, argv);
  adcl::TuningOptions tuning;
  tuning.tests_per_function = 2;
  const int iters = 6 * tuning.tests_per_function + 9;
  const int nprocs = drv.full() ? 1024 : 128;
  const int grid_n = 8 * nprocs;  // eight planes per rank

  harness::banner(
      "Fig 12: 3-D FFT, extended ADCL function-set vs MPI — BlueGene/P, " +
      std::to_string(nprocs) + " procs, N=" + std::to_string(grid_n) +
      (drv.full() ? "" : "  [scaled down from the paper's 1024 procs to"
                         " keep the P^2-message transposes tractable]"));
  harness::Table t({"pattern", "MPI[s]", "ADCL+b[s]", "MPI_postK[s]",
                    "ADCL+b_postK[s]", "ADCL winner", "decided@"});
  // One pool task per (pattern, backend) run.
  struct Unit {
    fft::Pattern pattern;
    bool adcl;
  };
  std::vector<Unit> units;
  for (fft::Pattern p : kAllPatterns) {
    units.push_back({p, false});
    units.push_back({p, true});
  }
  std::vector<FftRun> results(units.size());
  {
    auto timer = drv.timer();
    drv.pool().run_indexed(units.size(), [&](std::size_t i) {
      const Unit& u = units[i];
      results[i] = u.adcl ? run_fft(net::bluegene_p(), nprocs, grid_n,
                                    u.pattern, fft::Backend::Adcl, iters,
                                    tuning, /*extended_set=*/true)
                          : run_fft(net::bluegene_p(), nprocs, grid_n,
                                    u.pattern, fft::Backend::Blocking, iters);
    });
  }
  std::size_t unit = 0;
  for (fft::Pattern p : kAllPatterns) {
    const FftRun mpi = results[unit++];
    const FftRun ad = results[unit++];
    const double mpi_post = mpi.total_time / iters * ad.post_learning_iters;
    t.add_row({fft::pattern_name(p), harness::Table::num(mpi.total_time),
               harness::Table::num(ad.total_time),
               harness::Table::num(mpi_post),
               harness::Table::num(ad.post_learning_time), ad.winner,
               std::to_string(ad.decision_iteration)});
  }
  t.print();
  return 0;
}
