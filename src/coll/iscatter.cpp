#include "coll/iscatter.hpp"

#include <stdexcept>

namespace nbctune::coll {

namespace {

const std::byte* block(const void* base, int i, std::size_t bytes) {
  return base == nullptr
             ? nullptr
             : static_cast<const std::byte*>(base) + std::size_t(i) * bytes;
}

void check_args(int n, int root) {
  if (root < 0 || root >= n) throw std::invalid_argument("iscatter: bad root");
}

/// Common shape: one round of root-side sends (rail chosen per (dst,
/// stripe) by `rail_of`), plus the root's local copy of its own block.
template <typename RailOf>
nbc::Schedule build(int me, int n, const void* sbuf, void* rbuf,
                    std::size_t bytes, int root,
                    const std::vector<net::Stripe>& stripes, RailOf rail_of,
                    const char* what) {
  check_args(n, root);
  nbc::Schedule s;
  if (bytes > 0 && n > 1) {
    if (me == root) {
      for (int d = 0; d < n; ++d) {
        if (d == root) continue;
        const std::byte* b = block(sbuf, d, bytes);
        for (const net::Stripe& st : stripes) {
          const int rail = rail_of(d, st);
          if (rail < 0) {
            s.send(b == nullptr ? nullptr : b + st.offset, st.bytes, d);
          } else {
            s.send_rail(b == nullptr ? nullptr : b + st.offset, st.bytes, d,
                        rail);
          }
        }
      }
    } else {
      auto* r = static_cast<std::byte*>(rbuf);
      for (const net::Stripe& st : stripes) {
        const int rail = rail_of(me, st);
        if (rail < 0) {
          s.recv(r == nullptr ? nullptr : r + st.offset, st.bytes, root);
        } else {
          s.recv_rail(r == nullptr ? nullptr : r + st.offset, st.bytes, root,
                      rail);
        }
      }
    }
  }
  if (me == root && bytes > 0) {
    s.copy(block(sbuf, root, bytes), rbuf, bytes);
  }
  s.finalize();
  nbc::trace_built(s, what, me);
  return s;
}

/// A degenerate one-stripe plan covering the whole block.
std::vector<net::Stripe> whole_block(std::size_t bytes) {
  return {net::Stripe{0, 0, bytes}};
}

}  // namespace

nbc::Schedule build_iscatter_linear(int me, int n, const void* sbuf,
                                    void* rbuf, std::size_t bytes, int root) {
  return build(me, n, sbuf, rbuf, bytes, root, whole_block(bytes),
               [](int, const net::Stripe&) { return -1; }, "iscatter.linear");
}

nbc::Schedule build_iscatter_fan(int me, int n, const void* sbuf, void* rbuf,
                                 std::size_t bytes, int root, int rail) {
  if (rail < 0) throw std::invalid_argument("iscatter fan: bad rail");
  return build(me, n, sbuf, rbuf, bytes, root, whole_block(bytes),
               [rail](int, const net::Stripe&) { return rail; },
               "iscatter.fan");
}

nbc::Schedule build_iscatter_rail(int me, int n, const void* sbuf, void* rbuf,
                                  std::size_t bytes, int root, int nrails) {
  if (nrails <= 0) throw std::invalid_argument("iscatter rail: bad nrails");
  return build(me, n, sbuf, rbuf, bytes, root, whole_block(bytes),
               [nrails](int d, const net::Stripe&) { return d % nrails; },
               "iscatter.rail");
}

nbc::Schedule build_iscatter_striped(int me, int n, const void* sbuf,
                                     void* rbuf, std::size_t bytes, int root,
                                     const std::vector<net::Stripe>& stripes) {
  if (stripes.empty() && bytes > 0) {
    throw std::invalid_argument("iscatter striped: empty stripe plan");
  }
  std::size_t covered = 0;
  for (const net::Stripe& st : stripes) covered += st.bytes;
  if (covered != bytes) {
    throw std::invalid_argument("iscatter striped: stripes do not tile block");
  }
  return build(me, n, sbuf, rbuf, bytes, root, stripes,
               [](int, const net::Stripe& st) { return st.rail; },
               "iscatter.striped");
}

}  // namespace nbctune::coll
