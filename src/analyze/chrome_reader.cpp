#include "analyze/chrome_reader.hpp"

#include "analyze/json_min.hpp"

#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace nbctune::analyze {

namespace {

using jsonmin::Value;

/// Invert trace.cpp's chrome_tid mapping.
std::int32_t track_of_tid(long long tid) {
  return tid >= 1000000 ? static_cast<std::int32_t>(-1 - (tid - 1000000))
                        : static_cast<std::int32_t>(tid);
}

}  // namespace

std::vector<ScenarioTrace> read_chrome(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  const Value root = jsonmin::parse(text);
  const Value* events = root.get("traceEvents");
  if (events == nullptr || events->kind != Value::Kind::Arr) {
    throw std::runtime_error("chrome trace: no traceEvents array");
  }
  std::map<long long, ScenarioTrace> by_pid;  // ordered = export order
  for (const Value& ev : *events->arr) {
    if (ev.kind != Value::Kind::Obj) continue;
    const Value* pid = ev.get("pid");
    if (pid == nullptr) continue;
    const long long p = static_cast<long long>(pid->as_num(-1));
    ScenarioTrace& t = by_pid[p];
    const Value* ph = ev.get("ph");
    const std::string phase =
        ph != nullptr && ph->kind == Value::Kind::Str ? ph->str : "";
    const Value* name = ev.get("name");
    const std::string ename =
        name != nullptr && name->kind == Value::Kind::Str ? name->str : "";
    const Value* args = ev.get("args");
    if (phase == "M") {
      if (ename == "process_name" && args != nullptr) {
        if (const Value* n = args->get("name");
            n != nullptr && n->kind == Value::Kind::Str) {
          t.label = n->str;
        }
      }
      continue;
    }
    AEvent a;
    a.name = ename;
    if (const Value* cat = ev.get("cat");
        cat != nullptr && cat->kind == Value::Kind::Str) {
      a.cat = cat->str;
    }
    if (const Value* tid = ev.get("tid"); tid != nullptr) {
      a.track = track_of_tid(static_cast<long long>(tid->as_num(0)));
    }
    if (const Value* ts = ev.get("ts"); ts != nullptr) {
      a.ts = ts->as_num(0) * 1e-6;  // exported in microseconds
    }
    if (phase == "X") {
      if (const Value* dur = ev.get("dur"); dur != nullptr) {
        a.dur = dur->as_num(0) * 1e-6;
      } else {
        a.dur = 0.0;
      }
    }
    if (args != nullptr && args->kind == Value::Kind::Obj) {
      for (const auto& [k, v] : *args->obj) {
        const std::uint64_t u = static_cast<std::uint64_t>(v.as_num(0));
        if (k == "corr") {
          a.corr = u;
        } else if (a.akey.empty()) {
          a.akey = k;
          a.aval = u;
        } else if (a.bkey.empty()) {
          a.bkey = k;
          a.bval = u;
        }
      }
    }
    t.events.push_back(std::move(a));
  }
  std::vector<ScenarioTrace> out;
  out.reserve(by_pid.size());
  for (auto& [p, t] : by_pid) out.push_back(std::move(t));
  return out;
}

std::map<std::string, std::uint64_t> read_counters(std::istream& is) {
  std::map<std::string, std::uint64_t> out;
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "counter") {
      std::string name;
      std::uint64_t v = 0;
      if (ls >> name >> v) out[name] = v;
    } else if (kind == "hist") {
      // "hist <name> count <c> sum <s>" header lines only; per-bucket
      // lines ("hist <name> bucket <i> <n>") are skipped.
      std::string name, f1, f2;
      std::uint64_t v1 = 0, v2 = 0;
      if (ls >> name >> f1 >> v1 >> f2 >> v2 && f1 == "count" &&
          f2 == "sum") {
        out[name + ".count"] = v1;
        out[name + ".sum"] = v2;
      }
    } else if (kind == "scenarios" || kind == "trace_events") {
      std::uint64_t v = 0;
      if (ls >> v) out[kind] = v;
    }
  }
  return out;
}

}  // namespace nbctune::analyze
