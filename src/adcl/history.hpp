#pragma once

// Historic learning (paper §IV-B / §V): transfer winner decisions across
// executions so later runs skip the learning phase.  Keys combine the
// platform fingerprint, operation, process count and message size; the
// store round-trips to a simple text file.

#include <map>
#include <optional>
#include <string>

namespace nbctune::adcl {

/// Persistent winner cache.  In-process it is a plain map; save()/load()
/// serialize to disk for cross-run reuse.
class HistoryStore {
 public:
  /// Record a winner; later puts for the same key overwrite (the newest
  /// run knows best).
  void put(const std::string& key, const std::string& winner_name);

  /// Look up a winner name.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }

  /// Serialize to / from a text file ("key<TAB>winner" lines).
  void save(const std::string& path) const;
  /// Merge entries from a file into the store; missing file is an error.
  void load(const std::string& path);

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

/// Canonical history key for a tuned operation.
std::string history_key(const std::string& platform, const std::string& fset,
                        int nprocs, std::size_t bytes,
                        const std::string& extra = {});

}  // namespace nbctune::adcl
