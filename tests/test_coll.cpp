// Property tests for the collective algorithm library: every algorithm,
// across rank counts (including non-powers-of-two), message sizes spanning
// the eager/rendezvous boundary, and roots, must deliver bit-identical
// payloads to the trivial reference.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <tuple>
#include <vector>

#include "coll/blocking.hpp"
#include "coll/iallgather.hpp"
#include "coll/ialltoall.hpp"
#include "coll/ibcast.hpp"
#include "coll/ireduce.hpp"
#include "mpi/world.hpp"
#include "nbc/handle.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"

using namespace nbctune;
namespace t = nbctune::testing;

namespace {
const net::Platform kIb = net::whale();

// Payload byte for the block sent from rank s to rank d.
std::byte a2a_byte(int s, int d, std::size_t i) {
  return static_cast<std::byte>((s * 37 + d * 101 + int(i) * 3 + 5) & 0xff);
}
}  // namespace

// ------------------------------------------------------------- Ialltoall

enum class A2A { Linear, Pairwise, Bruck };

class AlltoallCorrectness
    : public ::testing::TestWithParam<std::tuple<A2A, int, std::size_t>> {};

static std::string a2a_name(
    const ::testing::TestParamInfo<std::tuple<A2A, int, std::size_t>>& info) {
  static const char* names[] = {"linear", "pairwise", "bruck"};
  return std::string(names[int(std::get<0>(info.param))]) + "_n" +
         std::to_string(std::get<1>(info.param)) + "_b" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlltoallCorrectness,
    ::testing::Combine(::testing::Values(A2A::Linear, A2A::Pairwise,
                                         A2A::Bruck),
                       ::testing::Values(2, 3, 4, 5, 7, 8, 12, 16, 17),
                       ::testing::Values(std::size_t{1}, std::size_t{64},
                                         std::size_t{1024},
                                         std::size_t{20000})),
    a2a_name);

TEST_P(AlltoallCorrectness, DeliversAllBlocks) {
  const auto [algo, n, block] = GetParam();
  std::vector<std::vector<std::byte>> results(n);
  t::run_world(kIb, n, [&, n = n, block = block, algo = algo](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int me = ctx.world_rank();
    std::vector<std::byte> sbuf(std::size_t(n) * block);
    std::vector<std::byte> rbuf(std::size_t(n) * block,
                                std::byte{0xee});
    for (int d = 0; d < n; ++d)
      for (std::size_t i = 0; i < block; ++i)
        sbuf[std::size_t(d) * block + i] = a2a_byte(me, d, i);
    nbc::Schedule s;
    switch (algo) {
      case A2A::Linear:
        s = coll::build_ialltoall_linear(me, n, sbuf.data(), rbuf.data(),
                                         block);
        break;
      case A2A::Pairwise:
        s = coll::build_ialltoall_pairwise(me, n, sbuf.data(), rbuf.data(),
                                           block);
        break;
      case A2A::Bruck:
        s = coll::build_ialltoall_bruck(me, n, sbuf.data(), rbuf.data(),
                                        block);
        break;
    }
    nbc::Handle h(ctx, comm, &s, ctx.alloc_nbc_tag());
    h.start();
    h.wait();
    results[me] = rbuf;
  });
  for (int d = 0; d < n; ++d) {
    for (int src = 0; src < n; ++src) {
      for (std::size_t i = 0; i < block; ++i) {
        ASSERT_EQ(results[d][std::size_t(src) * block + i],
                  a2a_byte(src, d, i))
            << "dst=" << d << " src=" << src << " i=" << i;
      }
    }
  }
}

TEST(Alltoall, RestartedScheduleStaysCorrect) {
  // Persistent semantics: the same schedule re-executed with fresh data.
  const int n = 5;
  const std::size_t block = 512;
  std::vector<int> failures(n, 0);
  t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int me = ctx.world_rank();
    std::vector<std::byte> sbuf(n * block), rbuf(n * block);
    nbc::Schedule s =
        coll::build_ialltoall_bruck(me, n, sbuf.data(), rbuf.data(), block);
    nbc::Handle h(ctx, comm, &s, ctx.alloc_nbc_tag());
    for (int it = 0; it < 3; ++it) {
      for (int d = 0; d < n; ++d)
        for (std::size_t i = 0; i < block; ++i)
          sbuf[d * block + i] = a2a_byte(me + it, d, i);
      h.start();
      h.wait();
      for (int src = 0; src < n; ++src)
        for (std::size_t i = 0; i < block; ++i)
          if (rbuf[src * block + i] != a2a_byte(src + it, me, i))
            ++failures[me];
    }
  });
  for (int r = 0; r < n; ++r) EXPECT_EQ(failures[r], 0);
}

TEST(Alltoall, BlockingComparatorCorrect) {
  for (std::size_t block : {std::size_t{128}, std::size_t{4096},
                            std::size_t{64 * 1024}}) {
    const int n = 6;
    std::vector<std::vector<std::byte>> results(n);
    t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
      auto comm = ctx.world().comm_world();
      const int me = ctx.world_rank();
      std::vector<std::byte> sbuf(n * block), rbuf(n * block);
      for (int d = 0; d < n; ++d)
        for (std::size_t i = 0; i < block; ++i)
          sbuf[d * block + i] = a2a_byte(me, d, i);
      coll::blocking_alltoall(ctx, comm, sbuf.data(), rbuf.data(), block);
      results[me] = rbuf;
    });
    for (int d = 0; d < n; ++d)
      for (int src = 0; src < n; ++src)
        for (std::size_t i = 0; i < block; ++i)
          ASSERT_EQ(results[d][src * block + i], a2a_byte(src, d, i));
  }
}

// --------------------------------------------------------------- Ibcast

class BcastCorrectness
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

static std::string bcast_name(
    const ::testing::TestParamInfo<std::tuple<int, int, std::size_t>>& info) {
  const int f = std::get<0>(info.param);
  std::string fs = f == coll::kFanoutBinomial ? "binomial"
                   : f == 0                   ? "linear"
                                              : "k" + std::to_string(f);
  return fs + "_n" + std::to_string(std::get<1>(info.param)) + "_seg" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BcastCorrectness,
    ::testing::Combine(
        ::testing::Values(coll::kFanoutLinear, 1, 2, 3, 5,
                          coll::kFanoutBinomial),
        ::testing::Values(1, 2, 5, 8, 16, 23),
        ::testing::Values(std::size_t{0}, std::size_t{1000},
                          std::size_t{32768})),
    bcast_name);

TEST_P(BcastCorrectness, EveryoneGetsRootData) {
  const auto [fanout, n, seg] = GetParam();
  const std::size_t bytes = 100 * 1000;  // multiple segments at seg=1000
  const int root = n > 2 ? 2 : 0;
  std::vector<std::vector<std::byte>> results(n);
  t::run_world(kIb, n,
               [&, fanout = fanout, n = n, seg = seg](mpi::Ctx& ctx) {
                 auto comm = ctx.world().comm_world();
                 const int me = ctx.world_rank();
                 std::vector<std::byte> buf =
                     me == root ? t::make_pattern(root, bytes)
                                : std::vector<std::byte>(bytes);
                 nbc::Schedule s = coll::build_ibcast(
                     me, n, buf.data(), bytes, root, fanout, seg);
                 nbc::Handle h(ctx, comm, &s, ctx.alloc_nbc_tag());
                 h.start();
                 h.wait();
                 results[me] = buf;
               });
  const auto expect = t::make_pattern(root, bytes);
  for (int r = 0; r < n; ++r) EXPECT_EQ(results[r], expect) << "rank " << r;
}

TEST(Bcast, TreeShapesAreConsistent) {
  // parent/children must agree across every fanout and rank count.
  for (int fanout : {coll::kFanoutLinear, 1, 2, 3, 4, 5,
                     coll::kFanoutBinomial}) {
    for (int n : {1, 2, 3, 7, 8, 16, 33}) {
      std::vector<int> seen(n, 0);
      for (int v = 0; v < n; ++v) {
        for (int c : coll::bcast_children(v, n, fanout)) {
          ASSERT_LT(c, n);
          ASSERT_GT(c, 0);
          EXPECT_EQ(coll::bcast_parent(c, n, fanout), v)
              << "fanout=" << fanout << " n=" << n << " child=" << c;
          ++seen[c];
        }
      }
      // Every non-root is someone's child exactly once.
      for (int v = 1; v < n; ++v) EXPECT_EQ(seen[v], 1) << "fanout=" << fanout;
      EXPECT_EQ(coll::bcast_parent(0, n, fanout), -1);
    }
  }
}

TEST(Bcast, SegmentationControlsRoundCount) {
  // A chain broadcast of k segments has ~k+1 rounds on interior nodes.
  const std::size_t bytes = 8 * 1024;
  int buf_storage[2048];
  auto s1 = coll::build_ibcast(1, 4, buf_storage, bytes, 0, 1, 0);
  auto s4 = coll::build_ibcast(1, 4, buf_storage, bytes, 0, 1, 2048);
  EXPECT_EQ(s1.num_rounds(), 2u);   // recv, send
  EXPECT_EQ(s4.num_rounds(), 5u);   // 4 segments pipelined
  EXPECT_EQ(s4.total_send_bytes(), bytes);
}

// ------------------------------------------------------------ Iallgather

enum class AG { Linear, Ring, RecDbl };

class AllgatherCorrectness
    : public ::testing::TestWithParam<std::tuple<AG, int>> {};

static std::string ag_name(
    const ::testing::TestParamInfo<std::tuple<AG, int>>& info) {
  static const char* names[] = {"linear", "ring", "recdbl"};
  return std::string(names[int(std::get<0>(info.param))]) + "_n" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllgatherCorrectness,
                         ::testing::Combine(::testing::Values(AG::Linear,
                                                              AG::Ring,
                                                              AG::RecDbl),
                                            ::testing::Values(2, 3, 4, 7, 8,
                                                              16)),
                         ag_name);

TEST_P(AllgatherCorrectness, CollectsEveryBlock) {
  const auto [algo, n] = GetParam();
  if (algo == AG::RecDbl && !coll::is_pow2(n)) GTEST_SKIP();
  const std::size_t block = 600;
  std::vector<std::vector<std::byte>> results(n);
  t::run_world(kIb, n, [&, algo = algo, n = n](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int me = ctx.world_rank();
    auto mine = t::make_pattern(me, block);
    std::vector<std::byte> rbuf(std::size_t(n) * block);
    nbc::Schedule s;
    switch (algo) {
      case AG::Linear:
        s = coll::build_iallgather_linear(me, n, mine.data(), rbuf.data(),
                                          block);
        break;
      case AG::Ring:
        s = coll::build_iallgather_ring(me, n, mine.data(), rbuf.data(),
                                        block);
        break;
      case AG::RecDbl:
        s = coll::build_iallgather_recursive_doubling(
            me, n, mine.data(), rbuf.data(), block);
        break;
    }
    nbc::Handle h(ctx, comm, &s, ctx.alloc_nbc_tag());
    h.start();
    h.wait();
    results[me] = rbuf;
  });
  for (int r = 0; r < n; ++r) {
    for (int src = 0; src < n; ++src) {
      const auto expect = t::make_pattern(src, block);
      ASSERT_TRUE(std::memcmp(results[r].data() + std::size_t(src) * block,
                              expect.data(), block) == 0)
          << "rank " << r << " block " << src;
    }
  }
}

TEST(Allgather, RecursiveDoublingRejectsNonPow2) {
  int x;
  EXPECT_THROW(
      coll::build_iallgather_recursive_doubling(0, 6, &x, &x, sizeof x),
      std::invalid_argument);
}

// --------------------------------------------------------------- Ireduce

class ReduceCorrectness : public ::testing::TestWithParam<std::tuple<int, int>> {
};

INSTANTIATE_TEST_SUITE_P(Sweep, ReduceCorrectness,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8, 16),
                                            ::testing::Values(0, 1, 2)),
                         [](const ::testing::TestParamInfo<std::tuple<int, int>>&
                                info) {
                           return "n" + std::to_string(std::get<0>(info.param)) +
                                  "_root" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST_P(ReduceCorrectness, BinomialSumsDoubles) {
  const auto [n, root_sel] = GetParam();
  const int root = root_sel % n;
  const std::size_t count = 1000;
  std::vector<double> result(count, -1);
  t::run_world(kIb, n, [&, n = n](mpi::Ctx& ctx) {
    const int me = ctx.world_rank();
    std::vector<double> in(count);
    for (std::size_t i = 0; i < count; ++i) in[i] = me + i * 0.5;
    std::vector<double> out(me == root ? count : 0);
    nbc::Schedule s = coll::build_ireduce_binomial(
        me, n, in.data(), me == root ? out.data() : nullptr, count,
        nbc::DType::F64, mpi::ReduceOp::Sum, root);
    nbc::Handle h(ctx, ctx.world().comm_world(), &s, ctx.alloc_nbc_tag());
    h.start();
    h.wait();
    if (me == root) result = out;
  });
  for (std::size_t i = 0; i < count; ++i) {
    const double expect = n * (n - 1) / 2.0 + n * (i * 0.5);
    EXPECT_DOUBLE_EQ(result[i], expect) << i;
  }
}

TEST_P(ReduceCorrectness, ChainSegmentedMax) {
  const auto [n, root_sel] = GetParam();
  const int root = root_sel % n;
  const std::size_t count = 777;
  std::vector<int> result(count, -1);
  t::run_world(kIb, n, [&, n = n](mpi::Ctx& ctx) {
    const int me = ctx.world_rank();
    std::vector<int> in(count);
    for (std::size_t i = 0; i < count; ++i)
      in[i] = int((me * 131 + i * 17) % 1000);
    std::vector<int> out(me == root ? count : 0);
    nbc::Schedule s = coll::build_ireduce_chain(
        me, n, in.data(), me == root ? out.data() : nullptr, count,
        nbc::DType::I32, mpi::ReduceOp::Max, root, /*seg_elems=*/100);
    nbc::Handle h(ctx, ctx.world().comm_world(), &s, ctx.alloc_nbc_tag());
    h.start();
    h.wait();
    if (me == root) result = out;
  });
  for (std::size_t i = 0; i < count; ++i) {
    int expect = 0;
    for (int r = 0; r < n; ++r)
      expect = std::max(expect, int((r * 131 + i * 17) % 1000));
    EXPECT_EQ(result[i], expect) << i;
  }
}

// --------------------------------------------------- volume diagnostics

TEST(AlgorithmShape, DataVolumesMatchTheory) {
  // The tradeoff the paper's Fig. 4 rests on: bruck sends fewer messages
  // but more bytes; linear/pairwise send n-1 messages of exactly one block.
  const int n = 16;
  const std::size_t block = 1000;
  std::vector<std::byte> sb(n * block), rb(n * block);
  auto lin = coll::build_ialltoall_linear(3, n, sb.data(), rb.data(), block);
  auto pw = coll::build_ialltoall_pairwise(3, n, sb.data(), rb.data(), block);
  auto br = coll::build_ialltoall_bruck(3, n, sb.data(), rb.data(), block);
  EXPECT_EQ(lin.total_sends(), std::size_t(n - 1));
  EXPECT_EQ(pw.total_sends(), std::size_t(n - 1));
  EXPECT_EQ(br.total_sends(), 4u);  // log2(16)
  EXPECT_EQ(lin.total_send_bytes(), std::size_t(n - 1) * block);
  EXPECT_EQ(pw.total_send_bytes(), std::size_t(n - 1) * block);
  EXPECT_EQ(br.total_send_bytes(), std::size_t(n / 2) * block * 4);
  // Round counts drive progress sensitivity (Fig. 7).
  EXPECT_EQ(lin.num_rounds(), 1u);
  EXPECT_EQ(pw.num_rounds(), std::size_t(n));      // copy + n-1 exchanges
  EXPECT_EQ(br.num_rounds(), 5u);                  // rotate+4 steps
}
