// Figure 4: influence of the communication volume — Ialltoall on crill
// with 256 processes, 10 ms compute/iteration, 5 progress calls, for 1 KB
// and 128 KB messages per process pair.
//
// Expected shape (paper §IV-A-b): the dissemination algorithm is the best
// choice at 1 KB (few messages win when per-message costs dominate) and
// the worst at 128 KB (its log2(P)/2-fold data volume loses when bytes
// dominate); linear and pairwise behave the other way around.

#include "bench_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::harness;

int main(int argc, char** argv) {
  bench::Driver drv("fig4", argc, argv);
  for (std::size_t bytes : {std::size_t{1024}, std::size_t{128 * 1024}}) {
    MicroScenario s;
    s.platform = net::crill();
    s.nprocs = 256;
    s.op = OpKind::Ialltoall;
    s.bytes = bytes;
    s.compute_per_iter = 10e-3;  // 10 s over 1000 iterations
    s.progress_calls = 5;
    s.iterations = drv.full() ? 16 : 6;
    s.noise_scale = 0.0;  // systematic comparison: noise off
    bench::print_fixed_comparison(
        "Fig 4: message-size influence — crill, 256 procs, " +
            std::to_string(bytes / 1024) + " KB per pair",
        s, drv.pool());
  }
  return 0;
}
