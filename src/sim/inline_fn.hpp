#pragma once

// Small-buffer move-only callable: std::function replacement for event
// callbacks.  The simulator schedules tens of millions of events whose
// captures run to ~40 bytes; std::function heap-allocates beyond 16 bytes,
// which dominates the event loop.  InlineFn stores up to kInlineBytes in
// place and rejects larger callables at compile time, so scheduling never
// allocates.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace nbctune::sim {

class InlineFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineFn>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): callable sink
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "event callback capture exceeds InlineFn buffer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event callback must be nothrow movable");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    relocate_ = [](void* dst, void* src) {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    };
    destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void operator()() { invoke_(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  void reset() noexcept {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  void move_from(InlineFn& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    if (relocate_ != nullptr) relocate_(buf_, other.buf_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes]{};
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

}  // namespace nbctune::sim
