# Empty dependencies file for bench_verification_sweep.
# This may be replaced when dependencies are built.
