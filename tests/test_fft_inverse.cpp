// Inverse distributed 3-D FFT: forward followed by inverse must
// reproduce the input (round-trip identity) for every pattern and
// back-end, and the spectrum seen between the two must match the serial
// reference.

#include <gtest/gtest.h>

#include <complex>
#include <random>
#include <vector>

#include "fft/fft1d.hpp"
#include "fft/fft3d.hpp"
#include "mpi/world.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"

using namespace nbctune;
using fft::cplx;
namespace t = nbctune::testing;

namespace {

std::vector<cplx> random_grid(int n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<cplx> v(std::size_t(n) * n * n);
  for (auto& x : v) x = cplx(d(gen), d(gen));
  return v;
}

}  // namespace

class Fft3dRoundTrip
    : public ::testing::TestWithParam<std::tuple<fft::Pattern, fft::Backend>> {
};

static std::string rt_name(
    const ::testing::TestParamInfo<std::tuple<fft::Pattern, fft::Backend>>&
        info) {
  std::string s = fft::pattern_name(std::get<0>(info.param));
  for (auto& c : s)
    if (c == '-') c = '_';
  std::string b = fft::backend_name(std::get<1>(info.param));
  for (auto& c : b)
    if (c == '(' || c == ')') c = '_';
  return s + "_" + b;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Fft3dRoundTrip,
    ::testing::Combine(::testing::Values(fft::Pattern::Pipelined,
                                         fft::Pattern::Tiled,
                                         fft::Pattern::Windowed,
                                         fft::Pattern::WindowTiled),
                       ::testing::Values(fft::Backend::Blocking,
                                         fft::Backend::LibNBC,
                                         fft::Backend::Adcl)),
    rt_name);

TEST_P(Fft3dRoundTrip, ForwardInverseIsIdentity) {
  const auto [pattern, backend] = GetParam();
  const int n = 8;
  const int nprocs = 4;
  const int planes = n / nprocs;
  const auto global = random_grid(n, 123);
  std::vector<double> errs(nprocs, 0.0);
  t::run_world(net::whale(), nprocs,
               [&, pattern = pattern, backend = backend](mpi::Ctx& ctx) {
                 fft::Fft3dOptions opt;
                 opt.n = n;
                 opt.pattern = pattern;
                 opt.backend = backend;
                 opt.real_math = true;
                 opt.tuning.tests_per_function = 1;
                 fft::Fft3d k(ctx, ctx.world().comm_world(), opt);
                 const int me = ctx.world_rank();
                 std::vector<cplx> local(
                     global.begin() + std::size_t(me) * planes * n * n,
                     global.begin() + std::size_t(me + 1) * planes * n * n);
                 const auto original = local;
                 k.set_local_input(std::move(local));
                 k.run_iteration();
                 k.run_inverse_iteration();
                 double err = 0;
                 for (std::size_t i = 0; i < original.size(); ++i) {
                   err = std::max(err, std::abs(k.planes()[i] - original[i]));
                 }
                 errs[me] = err;
               });
  for (int r = 0; r < nprocs; ++r) EXPECT_LT(errs[r], 1e-10) << "rank " << r;
}

TEST(Fft3dRoundTrip, RepeatedRoundTripsStayStable) {
  const int n = 8;
  const int nprocs = 2;
  const auto global = random_grid(n, 5);
  double err = 0;
  t::run_world(net::whale(), nprocs, [&](mpi::Ctx& ctx) {
    fft::Fft3dOptions opt;
    opt.n = n;
    opt.pattern = fft::Pattern::Pipelined;
    opt.backend = fft::Backend::LibNBC;
    opt.real_math = true;
    fft::Fft3d k(ctx, ctx.world().comm_world(), opt);
    const int me = ctx.world_rank();
    const int planes = n / nprocs;
    std::vector<cplx> local(global.begin() + std::size_t(me) * planes * n * n,
                            global.begin() +
                                std::size_t(me + 1) * planes * n * n);
    const auto original = local;
    k.set_local_input(std::move(local));
    for (int round = 0; round < 3; ++round) {
      k.run_iteration();
      k.run_inverse_iteration();
    }
    if (me == 0) {
      for (std::size_t i = 0; i < original.size(); ++i) {
        err = std::max(err, std::abs(k.planes()[i] - original[i]));
      }
    }
  });
  EXPECT_LT(err, 1e-9);
}

TEST(Fft3dRoundTrip, CostModelInverseRuns) {
  // Cost-model mode: the inverse moves the mirrored message volume.
  sim::Engine engine(1);
  net::Machine machine(net::whale());
  mpi::WorldOptions wopts;
  wopts.nprocs = 4;
  wopts.noise_scale = 0;
  mpi::World world(engine, machine, wopts);
  world.launch([&](mpi::Ctx& ctx) {
    fft::Fft3dOptions opt;
    opt.n = 32;
    opt.pattern = fft::Pattern::Pipelined;
    opt.backend = fft::Backend::LibNBC;
    fft::Fft3d k(ctx, ctx.world().comm_world(), opt);
    k.run_iteration();
    k.run_inverse_iteration();
  });
  engine.run();
  // Forward and inverse each move tiles x P x (P-1) messages.
  EXPECT_EQ(world.total_data_msgs(), 2u * 8u * 4u * 3u);
}
