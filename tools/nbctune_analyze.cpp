// nbctune-analyze: offline trace analysis.
//
//   nbctune-analyze [options] trace.json [trace2.json ...]
//
//   --counters FILE     fold a flat counter dump into the report
//   --report=table      human-readable output (default)
//   --report=json       machine-readable output (integers only; see
//                       docs/ARCHITECTURE.md for the schema)
//   --out FILE          write the report there instead of stdout
//   --epsilon X         guideline tolerance (default 0.25)
//
// Reads the Chrome trace-event JSON exported by any bench driver's
// --trace flag, reconstructs the per-scenario event streams, and runs
// the full analysis pass: critical paths with blame breakdowns, overlap
// and slack accounting, the ADCL decision audit and the performance
// guidelines (G1-G4).  Multiple trace files are concatenated into one
// scenario list, so a combined report over several drivers is a single
// invocation.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/chrome_reader.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--counters FILE] [--report=json|table] [--out FILE]"
               " [--epsilon X] trace.json...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nbctune;
  std::vector<std::string> inputs;
  std::string counters_path;
  std::string out_path;
  bool json = false;
  analyze::Options opts;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--counters") == 0 && i + 1 < argc) {
      counters_path = argv[++i];
    } else if (std::strcmp(a, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(a, "--epsilon") == 0 && i + 1 < argc) {
      opts.epsilon = std::atof(argv[++i]);
    } else if (std::strcmp(a, "--report=json") == 0) {
      json = true;
    } else if (std::strcmp(a, "--report=table") == 0 ||
               std::strcmp(a, "--report") == 0) {
      json = false;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      return usage(argv[0]);
    } else if (a[0] == '-') {
      std::cerr << "unknown option: " << a << "\n";
      return usage(argv[0]);
    } else {
      inputs.push_back(a);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  std::vector<analyze::ScenarioTrace> traces;
  for (const std::string& path : inputs) {
    std::ifstream is(path);
    if (!is) {
      std::cerr << "cannot open trace file: " << path << "\n";
      return 1;
    }
    try {
      std::vector<analyze::ScenarioTrace> batch = analyze::read_chrome(is);
      for (auto& t : batch) traces.push_back(std::move(t));
    } catch (const std::exception& e) {
      std::cerr << path << ": " << e.what() << "\n";
      return 1;
    }
  }

  analyze::Report report = analyze::analyze(traces, opts);
  if (!counters_path.empty()) {
    std::ifstream is(counters_path);
    if (!is) {
      std::cerr << "cannot open counters file: " << counters_path << "\n";
      return 1;
    }
    report.session_counters = analyze::read_counters(is);
  }

  std::ostringstream body;
  if (json) {
    analyze::write_json(body, report);
  } else {
    analyze::write_table(body, report);
  }
  if (out_path.empty()) {
    std::cout << body.str();
  } else {
    std::ofstream os(out_path);
    if (!os) {
      std::cerr << "cannot write report: " << out_path << "\n";
      return 1;
    }
    os << body.str();
    std::cerr << "report: " << traces.size() << " scenario(s) -> " << out_path
              << "\n";
  }

  // Exit non-zero when a guideline fails, so CI can gate on it.
  for (const auto& g : report.guidelines) {
    if (g.checked > 0 && g.passed != g.checked) return 3;
  }
  return 0;
}
