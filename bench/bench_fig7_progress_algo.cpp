// Figure 7: the number of progress calls changes the optimal algorithm —
// Ialltoall on crill, 32 processes (a single fat node: pure shared
// memory), 128 KB per pair, 100 ms compute/iteration.
//
// Expected shape (paper §IV-A-d): with a single progress call the
// pairwise algorithm wins (its ordered exchanges are cheapest to finish
// inside the blocking wait), while with more progress calls the linear
// algorithm wins (one round, overlappable as soon as the CPU pushes its
// copies from the progress calls).

#include "bench_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::harness;

int main(int argc, char** argv) {
  bench::Driver drv("fig7", argc, argv);
  harness::banner(
      "Fig 7: progress-call count changes the optimal Ialltoall algorithm "
      "— crill, 32 procs (one node), 128 KB, 100 ms compute/iter");
  MicroScenario s;
  s.platform = net::crill();
  s.nprocs = 32;
  s.op = OpKind::Ialltoall;
  s.bytes = 128 * 1024;
  s.compute_per_iter = 100e-3;
  s.iterations = drv.full() ? 20 : 8;
  s.noise_scale = 0.0;  // systematic comparison: noise off
  auto fset = scenario_functionset(s);

  harness::Table t(
      {"progress_calls", "linear[s]", "dissemination[s]", "pairwise[s]",
       "winner"});
  // The whole (progress_calls x implementation) grid runs as one batch.
  const std::vector<int> pcs = {1, 2, 5, 10, 100};
  const std::size_t nfun = fset->size();
  std::vector<RunOutcome> grid(pcs.size() * nfun);
  {
    auto timer = drv.timer();
    drv.pool().run_indexed(grid.size(), [&](std::size_t i) {
      MicroScenario si = s;
      si.progress_calls = pcs[i / nfun];
      grid[i] = run_fixed(si, static_cast<int>(i % nfun));
    });
  }
  for (std::size_t p = 0; p < pcs.size(); ++p) {
    double best = 1e300;
    std::string winner;
    std::vector<std::string> row{std::to_string(pcs[p])};
    for (std::size_t f = 0; f < nfun; ++f) {
      const auto& out = grid[p * nfun + f];
      row.push_back(harness::Table::num(out.loop_time));
      if (out.loop_time < best) {
        best = out.loop_time;
        winner = out.impl;
      }
    }
    row.push_back(winner);
    t.add_row(std::move(row));
  }
  t.print();
  std::cout << "\nExpected: pairwise wins at 1 progress call, linear at "
               ">= 5 calls.\n";
  return 0;
}
