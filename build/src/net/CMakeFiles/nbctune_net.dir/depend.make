# Empty dependencies file for nbctune_net.
# This may be replaced when dependencies are built.
