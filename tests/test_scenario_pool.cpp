// Unit tests for the ScenarioPool sweep runner: determinism across
// thread counts, ordered aggregation, exception propagation, edge cases,
// and the work-stealing machinery under load.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/scenario_pool.hpp"
#include "sim/engine.hpp"

namespace harness = nbctune::harness;
namespace sim = nbctune::sim;

namespace {

/// A miniature scenario: a seeded simulation whose result depends on its
/// own Engine/Rng only — the determinism contract's unit of work.
double run_mini_scenario(std::uint64_t seed) {
  sim::Engine eng(seed);
  eng.add_process("p", [&](sim::Process& p) {
    for (int i = 0; i < 50; ++i) p.sleep(eng.rng().uniform(0.0, 1.0));
  });
  eng.run();
  return eng.now();
}

std::vector<double> run_sweep(int threads, std::size_t n) {
  harness::ScenarioPool pool(threads);
  std::vector<double> out(n);
  pool.run_indexed(n, [&](std::size_t i) {
    out[i] = run_mini_scenario(1000 + i);
  });
  return out;
}

}  // namespace

TEST(ScenarioPool, DeterministicAcrossThreadCounts) {
  const std::size_t n = 64;
  const auto serial = run_sweep(1, n);
  EXPECT_EQ(serial, run_sweep(2, n));
  EXPECT_EQ(serial, run_sweep(8, n));
}

TEST(ScenarioPool, EveryIndexRunsExactlyOnce) {
  const std::size_t n = 500;
  harness::ScenarioPool pool(8);
  std::vector<std::atomic<int>> hits(n);
  pool.run_indexed(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ScenarioPool, EmptyBatchIsANoOp) {
  harness::ScenarioPool pool(4);
  bool touched = false;
  pool.run_indexed(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ScenarioPool, SingleTaskRuns) {
  harness::ScenarioPool pool(4);
  int value = 0;
  pool.run_indexed(1, [&](std::size_t i) { value = static_cast<int>(i) + 7; });
  EXPECT_EQ(value, 7);
}

TEST(ScenarioPool, WorkerExceptionPropagates) {
  harness::ScenarioPool pool(4);
  EXPECT_THROW(
      pool.run_indexed(16,
                       [&](std::size_t i) {
                         if (i == 5) throw std::runtime_error("task 5 died");
                       }),
      std::runtime_error);
}

TEST(ScenarioPool, LowestIndexExceptionWinsAndOthersStillRun) {
  // Several tasks throw; the surviving exception must be the lowest
  // submission index regardless of execution order, and non-throwing
  // tasks still execute.
  for (int threads : {1, 4}) {
    harness::ScenarioPool pool(threads);
    const std::size_t n = 32;
    std::vector<std::atomic<int>> hits(n);
    try {
      pool.run_indexed(n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
        if (i == 20 || i == 3 || i == 27) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3") << "threads=" << threads;
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ScenarioPool, PoolIsReusableAcrossBatches) {
  harness::ScenarioPool pool(4);
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<int> out(37, -1);
    pool.run_indexed(out.size(), [&](std::size_t i) {
      out[i] = batch * 1000 + static_cast<int>(i);
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], batch * 1000 + static_cast<int>(i));
    }
  }
}

TEST(ScenarioPool, ReentrantDispatchRunsInline) {
  // A task that dispatches a sub-batch on its own pool must not deadlock;
  // the sub-batch runs inline on the worker.
  harness::ScenarioPool pool(2);
  std::vector<int> outer(4, 0);
  pool.run_indexed(outer.size(), [&](std::size_t i) {
    int sum = 0;
    pool.run_indexed(3, [&](std::size_t j) { sum += static_cast<int>(j) + 1; });
    outer[i] = sum;
  });
  for (int v : outer) EXPECT_EQ(v, 6);
}

TEST(ScenarioPool, MapAggregatesInSubmissionOrder) {
  harness::ScenarioPool pool(8);
  std::vector<int> items(40);
  std::iota(items.begin(), items.end(), 0);
  const auto out = pool.map<int>(
      items, [](int item, std::size_t idx) {
        return item * 2 + static_cast<int>(idx);
      });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(ScenarioPool, ResolveThreadsHonoursEnvAndRequest) {
  EXPECT_EQ(harness::ScenarioPool::resolve_threads(5), 5);
  ::setenv("NBCTUNE_THREADS", "3", 1);
  EXPECT_EQ(harness::ScenarioPool::resolve_threads(0), 3);
  EXPECT_EQ(harness::ScenarioPool::resolve_threads(2), 2);  // arg wins
  ::unsetenv("NBCTUNE_THREADS");
  EXPECT_GE(harness::ScenarioPool::resolve_threads(0), 1);
}

TEST(ScenarioPool, UnevenTasksAllComplete) {
  // Work stealing: one shard gets a block of heavy tasks; idle workers
  // must steal them rather than wait.
  harness::ScenarioPool pool(4);
  const std::size_t n = 64;
  std::vector<double> out(n, 0.0);
  pool.run_indexed(n, [&](std::size_t i) {
    // The first block (worker 0's seed) is 30x heavier than the rest.
    const int reps = i < n / 4 ? 30 : 1;
    double acc = 0;
    for (int r = 0; r < reps; ++r) acc += run_mini_scenario(i * 31 + r);
    out[i] = acc;
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_GT(out[i], 0.0) << i;
}
