// Bootstrap (blocking, control-plane) collectives and communicator
// management: barrier, bcast, allreduce, allgather, dup, split.

#include <gtest/gtest.h>

#include <vector>

#include "mpi/world.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"

using namespace nbctune;
namespace t = nbctune::testing;

namespace {
const net::Platform kIb = net::whale();
}

class BootstrapCollectives : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, BootstrapCollectives,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 33));

TEST_P(BootstrapCollectives, BarrierHoldsEveryoneBack) {
  const int n = GetParam();
  std::vector<double> after(n);
  t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    // Rank r computes r milliseconds; after the barrier everyone's clock
    // must be at least the slowest rank's compute time.
    ctx.compute(1e-3 * (ctx.world_rank() + 1));
    ctx.barrier(comm);
    after[ctx.world_rank()] = ctx.now();
  });
  for (int r = 0; r < n; ++r) EXPECT_GE(after[r], 1e-3 * n);
}

TEST_P(BootstrapCollectives, BcastFromEveryRoot) {
  const int n = GetParam();
  for (int root = 0; root < n; root += (n > 4 ? 3 : 1)) {
    std::vector<int> got(n, -1);
    t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
      auto comm = ctx.world().comm_world();
      int value = ctx.world_rank() == root ? 4242 + root : -1;
      ctx.bcast(comm, &value, sizeof value, root);
      got[ctx.world_rank()] = value;
    });
    for (int r = 0; r < n; ++r) EXPECT_EQ(got[r], 4242 + root) << r;
  }
}

TEST_P(BootstrapCollectives, AllreduceSumMaxMin) {
  const int n = GetParam();
  std::vector<double> sums(n), maxs(n), mins(n);
  t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const double v = ctx.world_rank() + 1.0;
    sums[ctx.world_rank()] = ctx.allreduce(comm, v, mpi::ReduceOp::Sum);
    maxs[ctx.world_rank()] = ctx.allreduce(comm, v, mpi::ReduceOp::Max);
    mins[ctx.world_rank()] = ctx.allreduce(comm, v, mpi::ReduceOp::Min);
  });
  const double expect_sum = n * (n + 1) / 2.0;
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(sums[r], expect_sum);
    EXPECT_DOUBLE_EQ(maxs[r], n);
    EXPECT_DOUBLE_EQ(mins[r], 1.0);
  }
}

TEST_P(BootstrapCollectives, AllreduceVector) {
  const int n = GetParam();
  std::vector<std::vector<double>> out(n);
  t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    std::vector<double> in{1.0 * ctx.world_rank(), -1.0 * ctx.world_rank(),
                           1.0};
    std::vector<double> res(3);
    ctx.allreduce(comm, in.data(), res.data(), 3, mpi::ReduceOp::Sum);
    out[ctx.world_rank()] = res;
  });
  const double s = n * (n - 1) / 2.0;
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(out[r][0], s);
    EXPECT_DOUBLE_EQ(out[r][1], -s);
    EXPECT_DOUBLE_EQ(out[r][2], n);
  }
}

TEST_P(BootstrapCollectives, AllgatherCollectsInRankOrder) {
  const int n = GetParam();
  std::vector<std::vector<int>> out(n);
  t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    const int mine = 100 + ctx.world_rank();
    std::vector<int> all(n);
    ctx.allgather(comm, &mine, all.data(), sizeof(int));
    out[ctx.world_rank()] = all;
  });
  for (int r = 0; r < n; ++r) {
    for (int i = 0; i < n; ++i) EXPECT_EQ(out[r][i], 100 + i);
  }
}

TEST(CommManagement, DupIsolatesTagSpace) {
  // A message sent on the dup'ed communicator must not match a receive
  // posted on the world communicator with the same tag.
  int got_world = -1, got_dup = -1;
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto world = ctx.world().comm_world();
    auto dup = ctx.dup(world);
    ASSERT_NE(dup.context(), world.context());
    if (ctx.world_rank() == 0) {
      int a = 1, b = 2;
      ctx.send(dup, &a, sizeof a, 1, 9);
      ctx.send(world, &b, sizeof b, 1, 9);
    } else {
      // Post the world receive first; the dup message must not land in it.
      ctx.recv(world, &got_world, sizeof(int), 0, 9);
      ctx.recv(dup, &got_dup, sizeof(int), 0, 9);
    }
  });
  EXPECT_EQ(got_world, 2);
  EXPECT_EQ(got_dup, 1);
}

TEST(CommManagement, SplitByParity) {
  const int n = 8;
  std::vector<int> sizes(n), ranks(n);
  std::vector<double> sums(n);
  t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
    auto world = ctx.world().comm_world();
    const int color = ctx.world_rank() % 2;
    auto sub = ctx.split(world, color, ctx.world_rank());
    sizes[ctx.world_rank()] = sub.size();
    ranks[ctx.world_rank()] = sub.rank_of_world(ctx.world_rank());
    // A reduction inside the sub-communicator only sees members.
    sums[ctx.world_rank()] =
        ctx.allreduce(sub, ctx.world_rank(), mpi::ReduceOp::Sum);
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(sizes[r], 4);
    EXPECT_EQ(ranks[r], r / 2);
    EXPECT_DOUBLE_EQ(sums[r], r % 2 == 0 ? 0 + 2 + 4 + 6 : 1 + 3 + 5 + 7);
  }
}

TEST(CommManagement, SplitKeyReordersRanks) {
  const int n = 4;
  std::vector<int> ranks(n);
  t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
    auto world = ctx.world().comm_world();
    // Reverse order: world rank 3 becomes sub rank 0.
    auto sub = ctx.split(world, 0, n - ctx.world_rank());
    ranks[ctx.world_rank()] = sub.rank_of_world(ctx.world_rank());
  });
  for (int r = 0; r < n; ++r) EXPECT_EQ(ranks[r], n - 1 - r);
}

TEST(CommManagement, CollectivesOnSubCommunicator) {
  const int n = 6;
  std::vector<int> got(n, -1);
  t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
    auto world = ctx.world().comm_world();
    auto sub = ctx.split(world, ctx.world_rank() < 3 ? 0 : 1, 0);
    int v = sub.rank_of_world(ctx.world_rank()) == 0 ? ctx.world_rank() : -1;
    ctx.bcast(sub, &v, sizeof v, 0);
    got[ctx.world_rank()] = v;
  });
  for (int r = 0; r < 3; ++r) EXPECT_EQ(got[r], 0);
  for (int r = 3; r < 6; ++r) EXPECT_EQ(got[r], 3);
}
