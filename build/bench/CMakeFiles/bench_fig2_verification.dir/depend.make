# Empty dependencies file for bench_fig2_verification.
# This may be replaced when dependencies are built.
