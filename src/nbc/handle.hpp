#pragma once

// The schedule executor: LibNBC's NBC_Handle equivalent.
//
// A Handle binds a Schedule to a communicator and a tag, registers itself
// with the rank's progress engine, and advances the schedule one round at
// a time from progress passes.  This is the key fidelity point: a
// multi-round schedule needs multiple progress-engine invocations to move
// forward, so algorithms with more rounds need more progress calls to
// overlap — the phenomenon of the paper's Figs. 6 and 7.

#include <cstddef>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/world.hpp"
#include "nbc/schedule.hpp"

namespace nbctune::nbc {

/// Executes one Schedule; restartable (persistent-operation semantics).
class Handle : public mpi::ProgressClient {
 public:
  /// Cancel-on-timeout recovery (armed under lossy fault plans): when the
  /// operation has not completed `op_timeout` simulated seconds into a
  /// wait() — or a transport send was declared failed — every rank agrees
  /// (collectively) to cancel what is in flight and restart the operation
  /// on the fallback schedule with a fresh tag.
  struct Recovery {
    double op_timeout = 0.0;           ///< 0 = recovery off
    const Schedule* fallback = nullptr;
    int max_attempts = 10;             ///< restarts before wait() throws
  };
  /// @param ctx       the owning rank's context
  /// @param comm      communicator the schedule's peers refer to
  /// @param schedule  recipe to execute; must outlive the handle
  /// @param tag       tag for every message of this operation; concurrent
  ///                  operations on the same communicator need distinct tags
  Handle(mpi::Ctx& ctx, mpi::Comm comm, const Schedule* schedule, int tag);
  ~Handle() override;

  Handle(const Handle&) = delete;
  Handle& operator=(const Handle&) = delete;

  /// Begin (or restart) execution: posts round 0.  The previous execution
  /// must have completed.
  void start();

  // ---- machine-mode execution surface (exec::MachineRunner) ----
  // start() decomposed into its non-blocking pieces so a fiberless driver
  // can charge each returned cost as an engine event continuation:
  //   cost = start_begin(); if (!done()) { charge(cost);
  //   charge(start_cascade()); start_finish(); }

  /// Reset state, emit the start instant and post round 0.  Returns the
  /// posting cost (0 for an empty schedule, which completes here).
  double start_begin();
  /// Cascade through rounds that completed synchronously; returns the
  /// extra posting cost.
  double start_cascade();
  /// Emit the completion span if the cascade finished the operation.
  void start_finish();

  /// True once every round has completed.
  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// One progress pass on this rank; cheap completion check afterwards.
  bool test();

  /// Block (progressing) until the operation completes.  With recovery
  /// armed this is a deadline loop: timeout/failure triggers a collective
  /// agreement and a fallback restart (see Recovery).
  void wait();

  /// Arm (or disarm, with op_timeout <= 0) timeout recovery.  The
  /// fallback schedule must outlive the handle.
  void set_recovery(const Recovery& r) { recovery_ = r; }

  /// Fallback restarts taken by this handle (across all executions).
  [[nodiscard]] int fallbacks_taken() const noexcept { return fallbacks_; }

  /// ProgressClient: advance at most one round per pass (LibNBC fidelity).
  double poke(mpi::Ctx& ctx) override;

  /// Swap the schedule (the tuner switches implementations between
  /// executions).  Only valid while inactive.
  void rebind(const Schedule* schedule);

  /// Fail-stop recovery: cancel everything in flight and deactivate
  /// without completing — the execution is abandoned, not finished
  /// (counted as nbc.ops_aborted; the started/completed invariant becomes
  /// started == completed + aborted).  No-op while inactive.
  void abort();

  /// Bind to a (shrunk) communicator with a fresh tag; peers in the
  /// schedule then refer to the new membership.  Only valid while
  /// inactive.
  void rebind_comm(mpi::Comm comm, int tag);

  [[nodiscard]] std::size_t rounds_completed() const noexcept {
    return round_;
  }

 private:
  double post_round(std::size_t r);  // returns CPU cost of posting
  void trace_completion();           // emit the op-lifetime span
  void recover();                    // cancel + restart on the fallback
  [[nodiscard]] bool any_pending_failed() const;

  mpi::Ctx& ctx_;
  mpi::Comm comm_;
  const Schedule* schedule_;
  int tag_;
  std::size_t round_ = 0;
  double start_time_ = 0.0;  // simulated start, for the op-lifetime span
  std::uint64_t op_corr_ = 0;  // trace parent of this execution's events
  std::vector<mpi::Req> pending_;
  // Cached stable pointers to the pending requests: the per-pass
  // completion poll is the hottest loop in the simulator.
  std::vector<mpi::Request*> pending_ptrs_;
  bool active_ = false;
  bool done_ = true;  // nothing started yet counts as complete
  Recovery recovery_;
  int fallbacks_ = 0;
  // One nbc.op completion span per logical operation, even when a rank
  // that already finished restarts for a peer's recovery (G1's 1:1
  // start/completion accounting depends on it).
  bool completion_emitted_ = false;
};

}  // namespace nbctune::nbc
