
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/blocking.cpp" "src/coll/CMakeFiles/nbctune_coll.dir/blocking.cpp.o" "gcc" "src/coll/CMakeFiles/nbctune_coll.dir/blocking.cpp.o.d"
  "/root/repo/src/coll/iallgather.cpp" "src/coll/CMakeFiles/nbctune_coll.dir/iallgather.cpp.o" "gcc" "src/coll/CMakeFiles/nbctune_coll.dir/iallgather.cpp.o.d"
  "/root/repo/src/coll/iallreduce.cpp" "src/coll/CMakeFiles/nbctune_coll.dir/iallreduce.cpp.o" "gcc" "src/coll/CMakeFiles/nbctune_coll.dir/iallreduce.cpp.o.d"
  "/root/repo/src/coll/ialltoall.cpp" "src/coll/CMakeFiles/nbctune_coll.dir/ialltoall.cpp.o" "gcc" "src/coll/CMakeFiles/nbctune_coll.dir/ialltoall.cpp.o.d"
  "/root/repo/src/coll/ibcast.cpp" "src/coll/CMakeFiles/nbctune_coll.dir/ibcast.cpp.o" "gcc" "src/coll/CMakeFiles/nbctune_coll.dir/ibcast.cpp.o.d"
  "/root/repo/src/coll/ineighbor.cpp" "src/coll/CMakeFiles/nbctune_coll.dir/ineighbor.cpp.o" "gcc" "src/coll/CMakeFiles/nbctune_coll.dir/ineighbor.cpp.o.d"
  "/root/repo/src/coll/ireduce.cpp" "src/coll/CMakeFiles/nbctune_coll.dir/ireduce.cpp.o" "gcc" "src/coll/CMakeFiles/nbctune_coll.dir/ireduce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nbc/CMakeFiles/nbctune_nbc.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/nbctune_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nbctune_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nbctune_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
