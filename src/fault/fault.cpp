#include "fault/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace nbctune::fault {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    std::string tok = s.substr(start, end - start);
    // Trim surrounding whitespace.
    std::size_t a = tok.find_first_not_of(" \t");
    std::size_t b = tok.find_last_not_of(" \t");
    if (a != std::string::npos) out.push_back(tok.substr(a, b - a + 1));
    start = end + 1;
  }
  return out;
}

struct Kv {
  std::string key;
  std::string val;
};

std::vector<Kv> parse_kvs(const std::string& what, const std::string& body) {
  std::vector<Kv> kvs;
  for (const std::string& pair : split(body, ',')) {
    std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("fault plan: bad key=value in '" + what +
                                  "': '" + pair + "'");
    }
    kvs.push_back({pair.substr(0, eq), pair.substr(eq + 1)});
  }
  return kvs;
}

double to_num(const std::string& what, const std::string& v) {
  char* end = nullptr;
  double x = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw std::invalid_argument("fault plan: bad number for '" + what +
                                "': '" + v + "'");
  }
  return x;
}

int to_int(const std::string& what, const std::string& v) {
  return static_cast<int>(to_num(what, v));
}

[[noreturn]] void unknown_key(const std::string& comp, const std::string& key) {
  throw std::invalid_argument("fault plan: unknown key '" + key + "' in '" +
                              comp + "'");
}

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a + 0x9E3779B97F4A7C15ULL * (b + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x | 1;  // sim::Rng wants a nonzero seed
}

}  // namespace

bool FaultPlan::enabled() const {
  return lossy() || has_degrade || !stalls.empty() || !stragglers.empty() ||
         !starves.empty() || drift_window > 0 || has_kills();
}

namespace {

// kill=rank@t[,rank@t...] — spelled without a colon, so it is dispatched
// before the generic kv path (entries after the first contain no '=').
void parse_kills(FaultPlan& p, const std::string& body) {
  const auto entries = split(body, ',');
  if (entries.empty()) {
    throw std::invalid_argument("fault plan: empty kill list");
  }
  for (const std::string& entry : entries) {
    const std::size_t at = entry.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= entry.size()) {
      throw std::invalid_argument(
          "fault plan: kill entry must be rank@t, got '" + entry + "'");
    }
    Kill k;
    k.rank = to_int("kill", entry.substr(0, at));
    k.t = to_num("kill", entry.substr(at + 1));
    if (k.rank < 0) {
      throw std::invalid_argument("fault plan: kill rank must be >= 0");
    }
    if (k.t < 0.0) {
      throw std::invalid_argument("fault plan: kill time must be >= 0");
    }
    p.kills.push_back(k);
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan p;
  bool op_timeout_set = false;
  for (const std::string& comp : split(spec, ';')) {
    if (comp.rfind("kill=", 0) == 0) {
      parse_kills(p, comp.substr(5));
      continue;
    }
    const std::size_t colon = comp.find(':');
    const std::size_t eq = comp.find('=');
    if (colon != std::string::npos &&
        (eq == std::string::npos || colon < eq)) {
      const std::string name = comp.substr(0, colon);
      const auto kvs = parse_kvs(name, comp.substr(colon + 1));
      if (name == "drop" || name == "dup") {
        double prob = 0.0;
        Window win;
        int max = -1;
        for (const Kv& kv : kvs) {
          if (kv.key == "p") prob = to_num(name, kv.val);
          else if (kv.key == "t0") win.t0 = to_num(name, kv.val);
          else if (kv.key == "t1") win.t1 = to_num(name, kv.val);
          else if (kv.key == "max") max = to_int(name, kv.val);
          else unknown_key(name, kv.key);
        }
        if (prob < 0.0 || prob > 1.0) {
          throw std::invalid_argument("fault plan: " + name +
                                      " p must be in [0,1]");
        }
        if (name == "drop") {
          p.drop_p = prob;
          p.drop_win = win;
          p.drop_max = max;
        } else {
          p.dup_p = prob;
          p.dup_win = win;
          p.dup_max = max;
        }
      } else if (name == "degrade") {
        p.has_degrade = true;
        for (const Kv& kv : kvs) {
          if (kv.key == "t0") p.degrade_win.t0 = to_num(name, kv.val);
          else if (kv.key == "t1") p.degrade_win.t1 = to_num(name, kv.val);
          else if (kv.key == "lat") p.degrade_lat = to_num(name, kv.val);
          else if (kv.key == "bw") p.degrade_bw = to_num(name, kv.val);
          else unknown_key(name, kv.key);
        }
      } else if (name == "stall") {
        NicStall s;
        for (const Kv& kv : kvs) {
          if (kv.key == "node") s.node = to_int(name, kv.val);
          else if (kv.key == "t0") s.t0 = to_num(name, kv.val);
          else if (kv.key == "dur") s.dur = to_num(name, kv.val);
          else unknown_key(name, kv.key);
        }
        p.stalls.push_back(s);
      } else if (name == "straggler") {
        Straggler s;
        for (const Kv& kv : kvs) {
          if (kv.key == "rank") s.rank = to_int(name, kv.val);
          else if (kv.key == "factor") s.factor = to_num(name, kv.val);
          else if (kv.key == "t0") s.win.t0 = to_num(name, kv.val);
          else if (kv.key == "t1") s.win.t1 = to_num(name, kv.val);
          else unknown_key(name, kv.key);
        }
        p.stragglers.push_back(s);
      } else if (name == "starve") {
        Starve s;
        for (const Kv& kv : kvs) {
          if (kv.key == "rank") s.rank = to_int(name, kv.val);
          else if (kv.key == "cost") s.cost = to_num(name, kv.val);
          else if (kv.key == "t0") s.win.t0 = to_num(name, kv.val);
          else if (kv.key == "t1") s.win.t1 = to_num(name, kv.val);
          else unknown_key(name, kv.key);
        }
        p.starves.push_back(s);
      } else if (name == "drift") {
        for (const Kv& kv : kvs) {
          if (kv.key == "window") p.drift_window = to_int(name, kv.val);
          else if (kv.key == "tol") p.drift_tolerance = to_num(name, kv.val);
          else unknown_key(name, kv.key);
        }
      } else {
        throw std::invalid_argument("fault plan: unknown component '" + name +
                                    "'");
      }
    } else {
      // Top-level resilience scalar.
      const auto kvs = parse_kvs("plan", comp);
      for (const Kv& kv : kvs) {
        if (kv.key == "seed") {
          p.seed = static_cast<std::uint64_t>(to_num("seed", kv.val));
        } else if (kv.key == "rto") {
          p.rto = to_num("rto", kv.val);
        } else if (kv.key == "retries") {
          p.retries = to_int("retries", kv.val);
        } else if (kv.key == "op_timeout") {
          p.op_timeout = to_num("op_timeout", kv.val);
          op_timeout_set = true;
        } else if (kv.key == "max_attempts") {
          p.max_attempts = to_int("max_attempts", kv.val);
        } else if (kv.key == "lease") {
          p.lease = to_num("lease", kv.val);
          if (p.lease <= 0.0) {
            throw std::invalid_argument("fault plan: lease must be > 0");
          }
        } else {
          unknown_key("plan", kv.key);
        }
      }
    }
  }
  // Lossy plans default to an armed op-timeout so dropped messages can
  // never wedge a collective; quiet plans leave recovery off.
  if (p.lossy() && !op_timeout_set) p.op_timeout = 1.0;
  return p;
}

namespace {

std::string num(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

void put_window(std::string& out, const Window& w) {
  out += ",t0=" + num(w.t0) + ",t1=" + num(w.t1);
}

}  // namespace

std::string FaultPlan::print() const {
  std::string out = "seed=" + std::to_string(seed);
  if (drop_p > 0.0) {
    out += ";drop:p=" + num(drop_p);
    put_window(out, drop_win);
    out += ",max=" + std::to_string(drop_max);
  }
  if (dup_p > 0.0) {
    out += ";dup:p=" + num(dup_p);
    put_window(out, dup_win);
    out += ",max=" + std::to_string(dup_max);
  }
  if (has_degrade) {
    out += ";degrade:lat=" + num(degrade_lat) + ",bw=" + num(degrade_bw);
    put_window(out, degrade_win);
  }
  for (const NicStall& s : stalls) {
    out += ";stall:node=" + std::to_string(s.node) + ",t0=" + num(s.t0) +
           ",dur=" + num(s.dur);
  }
  for (const Straggler& s : stragglers) {
    out += ";straggler:rank=" + std::to_string(s.rank) +
           ",factor=" + num(s.factor);
    put_window(out, s.win);
  }
  for (const Starve& s : starves) {
    out += ";starve:rank=" + std::to_string(s.rank) + ",cost=" + num(s.cost);
    put_window(out, s.win);
  }
  if (drift_window > 0) {
    out += ";drift:window=" + std::to_string(drift_window) +
           ",tol=" + num(drift_tolerance);
  }
  if (!kills.empty()) {
    out += ";kill=";
    for (std::size_t i = 0; i < kills.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(kills[i].rank) + "@" + num(kills[i].t);
    }
  }
  out += ";rto=" + num(rto);
  out += ";retries=" + std::to_string(retries);
  out += ";op_timeout=" + num(op_timeout);
  out += ";max_attempts=" + std::to_string(max_attempts);
  out += ";lease=" + num(lease);
  return out;
}

Injector::Injector(const FaultPlan& plan, std::uint64_t scenario_seed)
    : plan_(plan), rng_(mix(plan.seed, scenario_seed)) {}

bool Injector::inject_drop(double now) {
  if (plan_.drop_p <= 0.0 || !plan_.drop_win.contains(now)) return false;
  if (plan_.drop_max >= 0 && drops_ >= plan_.drop_max) return false;
  if (rng_.uniform() >= plan_.drop_p) return false;
  ++drops_;
  return true;
}

bool Injector::inject_duplicate(double now) {
  if (plan_.dup_p <= 0.0 || !plan_.dup_win.contains(now)) return false;
  if (plan_.dup_max >= 0 && dups_ >= plan_.dup_max) return false;
  if (rng_.uniform() >= plan_.dup_p) return false;
  ++dups_;
  return true;
}

double Injector::latency_mult(double now) const {
  return (plan_.has_degrade && plan_.degrade_win.contains(now))
             ? plan_.degrade_lat
             : 1.0;
}

double Injector::byte_time_mult(double now) const {
  return (plan_.has_degrade && plan_.degrade_win.contains(now))
             ? plan_.degrade_bw
             : 1.0;
}

double Injector::nic_release(int node, double now) const {
  double release = now;
  for (const NicStall& s : plan_.stalls) {
    if (s.node >= 0 && s.node != node) continue;
    if (now >= s.t0 && now < s.t0 + s.dur && s.t0 + s.dur > release) {
      release = s.t0 + s.dur;
    }
  }
  return release;
}

double Injector::compute_dilation(int rank, double now) const {
  double mult = 1.0;
  for (const Straggler& s : plan_.stragglers) {
    if (s.rank == rank && s.win.contains(now)) mult *= s.factor;
  }
  return mult;
}

double Injector::starvation_penalty(int rank, double now) const {
  double cost = 0.0;
  for (const Starve& s : plan_.starves) {
    if (s.rank == rank && s.win.contains(now)) cost += s.cost;
  }
  return cost;
}

const std::vector<CannedPlan>& canned_plans() {
  // Tuned against the fig3-style np32 scenarios: each plan demonstrably
  // exercises its recovery path (asserted via trace counters in test_fault).
  static const std::vector<CannedPlan> plans = {
      {"none", "", "all-quiet baseline (no injection, no recovery armed)"},
      // Random drops with generous retries: every drop is healed by
      // retransmission, no op ever fails over.  The op timeout is far
      // above the slowest op of the grid (whale-tcp, ~4 s), so recovery
      // never fires on mere slowness.
      {"drops", "seed=7;drop:p=0.25,max=40;rto=1e-3;retries=12;op_timeout=30",
       "random message loss healed entirely by ack/retransmit"},
      // Total loss during the first 20 ms with no retries: every message
      // shipped in the window dies, its RTO declares the send failed, and
      // the NBC handle cancels and restarts on the fallback algorithm.
      // rto/op_timeout sit above the slowest fault-free op so congested
      // acks never fail spuriously and the fallback attempt can finish.
      {"blackout", "seed=11;drop:p=1,t1=0.02;rto=5;retries=0;op_timeout=10",
       "total early loss forcing NBC fallback restarts"},
      // Mid-run link degradation: post-decision samples blow past the
      // recorded baseline and ADCL re-opens tuning.
      {"degrade", "seed=13;degrade:t0=0.05,t1=1e9,lat=8,bw=8;"
                  "drift:window=3,tol=0.5",
       "mid-run link degradation triggering ADCL drift re-tuning"},
      // One slow rank: compute dilation plus progress starvation.
      {"straggler", "seed=17;straggler:rank=2,factor=4;"
                    "starve:rank=2,cost=2e-4",
       "one rank slowed by compute dilation + progress starvation"},
      // Everything at once (drops healed by retransmit + degradation with
      // drift re-tuning + a straggler + a NIC stall burst).
      {"mixed", "seed=23;drop:p=0.1,max=30;rto=1e-3;retries=16;op_timeout=60;"
                "degrade:t0=0.08,t1=1e9,lat=6,bw=6;"
                "straggler:rank=1,factor=3;stall:node=0,t0=0.01,dur=0.005;"
                "drift:window=3,tol=0.5",
       "drops + degradation + straggler + NIC stall, all recoveries at once"},
      // --- Fail-stop kill plans (ULFM-style shrink-and-retune path). ---
      // Kill times land inside the fig-3 microbench loop; detection fires
      // one lease period later, all survivors agree on the failed set,
      // shrink, rebuild their handles and re-open tuning.
      {"kill1", "seed=31;kill=5@0.004;lease=2e-3",
       "single non-leader death mid-sweep: detect, shrink, retune"},
      {"killleader", "seed=37;kill=0@0.004;lease=2e-3",
       "rank-0 (node-leader) death: leader re-election after shrink"},
      // Two deaths spaced further apart than the lease, so the second
      // death interrupts the already-shrunk communicator (two epochs).
      {"cascade", "seed=41;kill=3@0.003,1@0.012;lease=2e-3",
       "cascading deaths across two recovery epochs"},
      // Kill layered on message loss: the lease is far shorter than the
      // retry budget, so shrink wins before retransmits exhaust and no
      // retransmit may resurrect traffic addressed to the dead rank.
      {"killdrops", "seed=43;drop:p=0.15,max=30;rto=1e-3;retries=12;"
                    "op_timeout=30;kill=2@0.004;lease=2e-3",
       "death under random drops: shrink preempts the retransmit path"},
  };
  return plans;
}

}  // namespace nbctune::fault
