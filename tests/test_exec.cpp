// Fiberless (machine-mode) execution: equivalence with fiber mode,
// determinism, gating, and the fiber-stack satellite knobs.
//
// The contract under test (exec/machine_runner.hpp): wherever both modes
// can run, machine mode produces byte-identical outcomes, trace event
// streams and counters — the only counters allowed to differ are the
// fiber-existence ones (fiber.switches, sim.fibers_created).

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/microbench.hpp"
#include "harness/scenario_pool.hpp"
#include "sim/fiber.hpp"
#include "trace/trace.hpp"

namespace nbctune {
namespace {

harness::MicroScenario base_scenario() {
  harness::MicroScenario s;
  s.platform = net::crill();
  s.nprocs = 8;
  s.op = harness::OpKind::Ialltoall;
  s.bytes = 1024;
  s.compute_per_iter = 200e-6;
  s.iterations = 4;
  s.progress_calls = 3;
  s.seed = 7;
  s.noise_scale = 0.0;
  s.payload = true;
  return s;
}

struct TracedRun {
  harness::RunOutcome outcome;
  trace::FinishedTrace trace;
};

TracedRun traced_fixed(harness::MicroScenario s, harness::ExecMode mode,
                       int func_idx) {
  trace::Session::enable();
  (void)trace::Session::instance().drain();
  s.exec = mode;
  TracedRun r;
  r.outcome = harness::run_fixed(s, func_idx);
  auto finished = trace::Session::instance().drain();
  EXPECT_EQ(finished.size(), 1u);
  if (!finished.empty()) r.trace = std::move(finished.front());
  return r;
}

/// Counters allowed to differ between modes: fiber existence itself.
bool mode_dependent(trace::Ctr c) {
  return c == trace::Ctr::FiberSwitches || c == trace::Ctr::SimFibersCreated;
}

void expect_equivalent(const harness::MicroScenario& s, int func_idx) {
  const TracedRun fiber = traced_fixed(s, harness::ExecMode::Fiber, func_idx);
  const TracedRun mach = traced_fixed(s, harness::ExecMode::Machine, func_idx);

  // Outcomes: exact, not approximate — the same floating-point operations
  // must have happened in the same order.
  EXPECT_EQ(fiber.outcome.impl, mach.outcome.impl);
  EXPECT_EQ(fiber.outcome.loop_time, mach.outcome.loop_time);
  EXPECT_EQ(fiber.outcome.decision_iteration, mach.outcome.decision_iteration);
  EXPECT_EQ(fiber.outcome.post_decision_time, mach.outcome.post_decision_time);
  EXPECT_EQ(fiber.outcome.post_decision_iterations,
            mach.outcome.post_decision_iterations);

  // Labels differ only by the mode tag on the last token.
  EXPECT_EQ(fiber.trace.label + "+exec=machine", mach.trace.label);

  // Event streams: identical field for field.
  ASSERT_EQ(fiber.trace.events.size(), mach.trace.events.size());
  for (std::size_t i = 0; i < fiber.trace.events.size(); ++i) {
    const trace::Event& a = fiber.trace.events[i];
    const trace::Event& b = mach.trace.events[i];
    SCOPED_TRACE("event " + std::to_string(i) + " (" + a.name + " vs " +
                 b.name + ")");
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.dur, b.dur);
    EXPECT_EQ(a.track, b.track);
    EXPECT_EQ(a.cat, b.cat);
    EXPECT_STREQ(a.name, b.name);
    EXPECT_EQ(a.aval, b.aval);
    EXPECT_EQ(a.bval, b.bval);
    EXPECT_EQ(a.corr, b.corr);
  }

  // Counters: identical except the fiber-existence set.
  for (std::size_t c = 0; c < static_cast<std::size_t>(trace::Ctr::kCount);
       ++c) {
    const auto ctr = static_cast<trace::Ctr>(c);
    if (mode_dependent(ctr)) continue;
    EXPECT_EQ(fiber.trace.counts[c], mach.trace.counts[c])
        << trace::ctr_name(ctr);
  }
  // Machine mode creates no fibers; fiber mode creates one per rank.
  const auto fibers = static_cast<std::size_t>(trace::Ctr::SimFibersCreated);
  EXPECT_EQ(mach.trace.counts[fibers], 0u);
  EXPECT_EQ(fiber.trace.counts[fibers], static_cast<std::size_t>(s.nprocs));
  // The flat World arenas are identical across modes by construction.
  const auto arena = static_cast<std::size_t>(trace::Ctr::WorldPeakArenaBytes);
  EXPECT_GT(fiber.trace.counts[arena], 0u);
  EXPECT_EQ(fiber.trace.counts[arena], mach.trace.counts[arena]);

  // Histograms too (rounds per op, progress per op, wire bytes).
  for (std::size_t h = 0; h < static_cast<std::size_t>(trace::Hist::kCount);
       ++h) {
    EXPECT_EQ(fiber.trace.hists[h].count, mach.trace.hists[h].count);
    EXPECT_EQ(fiber.trace.hists[h].sum, mach.trace.hists[h].sum);
  }
}

// ------------------------------------------------ fiber/machine equivalence

TEST(ExecEquivalence, EagerAlltoall) {
  expect_equivalent(base_scenario(), /*func_idx=*/0);
}

TEST(ExecEquivalence, EverySecondImplementation) {
  harness::MicroScenario s = base_scenario();
  const auto fset = harness::scenario_functionset(s);
  for (std::size_t f = 0; f < fset->size(); f += 2) {
    SCOPED_TRACE(fset->function(f).name);
    expect_equivalent(s, static_cast<int>(f));
  }
}

TEST(ExecEquivalence, RendezvousAlltoall) {
  harness::MicroScenario s = base_scenario();
  s.nprocs = 6;
  s.bytes = 64 * 1024;  // > crill eager limit: RTS/CTS handshake path
  expect_equivalent(s, 0);
}

TEST(ExecEquivalence, CpuDrivenBulkOnTcp) {
  harness::MicroScenario s = base_scenario();
  s.platform = net::whale_tcp();
  s.nprocs = 4;
  s.bytes = 64 * 1024;  // CPU pushes bulk chunks from the progress engine
  s.iterations = 3;
  expect_equivalent(s, 0);
}

TEST(ExecEquivalence, WithPlatformNoise) {
  harness::MicroScenario s = base_scenario();
  s.noise_scale = 1.0;  // jitter + outlier draws from per-rank streams
  expect_equivalent(s, 1 % 4);
}

TEST(ExecEquivalence, IbcastShapes) {
  harness::MicroScenario s = base_scenario();
  s.op = harness::OpKind::Ibcast;
  s.nprocs = 12;
  for (std::size_t bytes : {std::size_t{512}, std::size_t{256 * 1024}}) {
    s.bytes = bytes;
    SCOPED_TRACE(bytes);
    expect_equivalent(s, 0);
  }
}

TEST(ExecEquivalence, BlockingFunctionSetMember) {
  harness::MicroScenario s = base_scenario();
  s.include_blocking = true;
  const auto fset = harness::scenario_functionset(s);
  int blocking_idx = -1;
  for (std::size_t f = 0; f < fset->size(); ++f) {
    if (fset->function(f).blocking) blocking_idx = static_cast<int>(f);
  }
  ASSERT_GE(blocking_idx, 0);
  expect_equivalent(s, blocking_idx);
}

TEST(ExecEquivalence, FaultedLossyPlanWithoutRecovery) {
  harness::MicroScenario s = base_scenario();
  s.nprocs = 6;
  s.iterations = 6;
  // Lossy transport with ack/retransmit, but recovery explicitly off —
  // the blocking-free slice of the fault machinery both modes share.
  s.fault_plan = "drop:p=0.02;rto=0.002;retries=8;op_timeout=0";
  s.fault_plan_name = "lossy";
  expect_equivalent(s, 0);
}

// ------------------------------------------------------------ determinism

TEST(ExecDeterminism, MachineModeReproducesAcrossPoolThreadCounts) {
  auto sweep = [&](int threads) {
    std::vector<double> times(4);
    harness::ScenarioPool pool(threads);
    pool.run_indexed(times.size(), [&](std::size_t i) {
      harness::MicroScenario s = base_scenario();
      s.exec = harness::ExecMode::Machine;
      s.noise_scale = 1.0;
      s.seed = 40 + i;
      s.nprocs = 4 + static_cast<int>(i) * 2;
      times[i] = harness::run_fixed(s, 0).loop_time;
    });
    return times;
  };
  const auto t1 = sweep(1);
  const auto t4 = sweep(4);
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i], t4[i]) << "scenario " << i;
  }
}

// ----------------------------------------------------------------- gating

TEST(ExecGating, RunAdclRejectsMachineMode) {
  harness::MicroScenario s = base_scenario();
  s.exec = harness::ExecMode::Machine;
  EXPECT_THROW((void)harness::run_adcl(s, adcl::TuningOptions{}),
               std::invalid_argument);
}

TEST(ExecGating, MachineModeRejectsRecoveryPlans) {
  harness::MicroScenario s = base_scenario();
  s.exec = harness::ExecMode::Machine;
  s.fault_plan = "drop:p=0.01;rto=0.002;retries=8;op_timeout=0.05";
  EXPECT_THROW((void)harness::run_fixed(s, 0), std::invalid_argument);
  s.fault_plan = "degrade:at=0.01;for=0.02;factor=4;drift_window=8";
  EXPECT_THROW((void)harness::run_fixed(s, 0), std::invalid_argument);
}

// ------------------------------------------------------- fiber stack knobs

TEST(ExecFiberStack, EnvOverridesAndClampsDefault) {
  ASSERT_EQ(unsetenv("NBCTUNE_FIBER_STACK"), 0);
  EXPECT_EQ(sim::default_fiber_stack_bytes(), 256u * 1024u);
  ASSERT_EQ(setenv("NBCTUNE_FIBER_STACK", "1048576", 1), 0);
  EXPECT_EQ(sim::default_fiber_stack_bytes(), 1048576u);
  ASSERT_EQ(setenv("NBCTUNE_FIBER_STACK", "4096", 1), 0);
  EXPECT_EQ(sim::default_fiber_stack_bytes(), 16u * 1024u);  // clamped
  ASSERT_EQ(setenv("NBCTUNE_FIBER_STACK", "garbage", 1), 0);
  EXPECT_EQ(sim::default_fiber_stack_bytes(), 256u * 1024u);
  ASSERT_EQ(unsetenv("NBCTUNE_FIBER_STACK"), 0);
}

TEST(ExecFiberStack, ScenarioKnobReachesWorldFibers) {
  harness::MicroScenario s = base_scenario();
  s.nprocs = 4;
  s.iterations = 2;
  s.fiber_stack_bytes = 64 * 1024;  // small but sufficient for the loop
  const harness::RunOutcome out = harness::run_fixed(s, 0);
  EXPECT_GT(out.loop_time, 0.0);
}

TEST(ExecFiberStack, ExhaustionErrorNamesTheRemedies) {
  // An absurd per-fiber stack must fail with an actionable message, not a
  // bare bad_alloc (satellite: clear error on fiber-mode memory pressure).
  try {
    sim::Fiber f([] {}, std::size_t{1} << 48);
    FAIL() << "expected the stack allocation to fail";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("NBCTUNE_FIBER_STACK"), std::string::npos) << what;
    EXPECT_NE(what.find("--exec=machine"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace nbctune
