#pragma once

// ScenarioPool: a work-stealing thread pool for embarrassingly parallel
// simulation sweeps.
//
// The paper's headline numbers are sweeps — hundreds of verification runs
// and FFT tests — and every scenario owns a fully independent sim::Engine
// (its own clock, event queue and Rng).  The pool shards those scenarios
// across cores under a strict determinism contract:
//
//   * one Engine / Rng per task, no shared mutable state between tasks;
//   * results are aggregated by submission index, never by completion
//     order — so a sweep produces byte-identical tables at 1 thread and
//     at N threads;
//   * an exception thrown by a task is re-thrown to the caller; when
//     several tasks throw, the one with the lowest submission index wins
//     (again independent of thread count).
//
// Scheduling: each worker owns a deque of task indices, seeded with a
// contiguous block of the batch.  Workers pop their own deque from the
// front and steal from the back of the busiest victim when empty, so an
// uneven sweep (one huge scenario amid many small ones) still finishes
// in max(task) rather than sum(block).

#include <atomic>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace nbctune::harness {

class ScenarioPool {
 public:
  /// threads <= 0 resolves via NBCTUNE_THREADS, then the hardware
  /// concurrency.  threads == 1 runs every batch inline on the caller.
  explicit ScenarioPool(int threads = 0);
  ~ScenarioPool();

  ScenarioPool(const ScenarioPool&) = delete;
  ScenarioPool& operator=(const ScenarioPool&) = delete;

  /// Worker count this pool executes with (>= 1).
  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Resolve a requested thread count: positive values pass through,
  /// otherwise $NBCTUNE_THREADS, otherwise std::thread::hardware_concurrency.
  static int resolve_threads(int requested) noexcept;

  /// Run fn(0) .. fn(n-1), blocking until all have finished.  Tasks must
  /// be independent; every index runs exactly once.  If any task throws,
  /// the remaining tasks still run and the exception from the lowest
  /// index is re-thrown here.  Re-entrant calls (a task dispatching a
  /// sub-batch on its own pool) execute inline on the calling thread —
  /// same contract, no deadlock.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Map items through `make` (item, index) -> R, returning results in
  /// submission order.
  template <typename R, typename Item, typename F>
  std::vector<R> map(const std::vector<Item>& items, F&& make) {
    std::vector<R> out(items.size());
    run_indexed(items.size(),
                [&](std::size_t i) { out[i] = make(items[i], i); });
    return out;
  }

  /// Run a batch of nullary callables, returning their results in
  /// submission order.
  template <typename R>
  std::vector<R> run_all(const std::vector<std::function<R()>>& tasks) {
    std::vector<R> out(tasks.size());
    run_indexed(tasks.size(), [&](std::size_t i) { out[i] = tasks[i](); });
    return out;
  }

 private:
  struct Impl;
  Impl* impl_;  // pimpl: keeps <thread>/<mutex> out of this header
  int threads_;
  std::atomic<bool> busy_{false};  // batch in flight (run_indexed re-entrancy)
};

}  // namespace nbctune::harness
