#include "coll/ireduce.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace nbctune::coll {

nbc::Schedule build_ireduce_binomial(int me, int n, const void* sbuf,
                                     void* rbuf, std::size_t count,
                                     nbc::DType dtype, mpi::ReduceOp op,
                                     int root) {
  if (root < 0 || root >= n) throw std::invalid_argument("ireduce: bad root");
  nbc::Schedule s;
  const std::size_t esz = nbc::dtype_size(dtype);
  const std::size_t bytes = count * esz;
  const int v = (me - root + n) % n;

  // Accumulator: root folds into rbuf, others into scratch.  Cost-model
  // runs (null sbuf) elide scratch allocation; nulls propagate.
  const bool real = sbuf != nullptr;
  std::byte* acc;
  if (v == 0 && rbuf != nullptr) {
    acc = static_cast<std::byte*>(rbuf);
  } else {
    acc = real ? s.scratch(bytes) : nullptr;
  }
  s.copy(sbuf, acc, bytes);

  // Children in virtual-rank space: v + mask while mask bits below v's
  // lowest set bit.  Receive child subtotals one round each (a child with
  // a bigger subtree arrives later), folding as they come.
  std::vector<int> children;
  for (int mask = 1; mask < n; mask <<= 1) {
    if (v & mask) break;
    if (v + mask < n) children.push_back(v + mask);
  }
  for (int cv : children) {
    std::byte* in = real ? s.scratch(bytes) : nullptr;
    s.recv(in, bytes, (cv + root) % n);
    s.barrier();
    s.op(in, acc, count, dtype, op);
  }
  if (v != 0) {
    const int parent = ((v & ~(v & -v)) + root) % n;
    s.barrier();
    s.send(acc, bytes, parent);
  }
  s.finalize();
  nbc::trace_built(s, "ireduce.binomial", me);
  return s;
}

nbc::Schedule build_ireduce_chain(int me, int n, const void* sbuf, void* rbuf,
                                  std::size_t count, nbc::DType dtype,
                                  mpi::ReduceOp op, int root,
                                  std::size_t seg_elems) {
  if (root < 0 || root >= n) throw std::invalid_argument("ireduce: bad root");
  nbc::Schedule s;
  const std::size_t esz = nbc::dtype_size(dtype);
  const std::size_t bytes = count * esz;
  const int v = (me - root + n) % n;  // chain: v receives from v+1
  const bool have_child = v + 1 < n;
  const bool is_root = v == 0;

  const bool real = sbuf != nullptr;
  std::byte* acc;
  if (is_root && rbuf != nullptr) {
    acc = static_cast<std::byte*>(rbuf);
  } else {
    acc = real ? s.scratch(bytes) : nullptr;
  }
  s.copy(sbuf, acc, bytes);
  s.barrier();

  const std::size_t seg =
      seg_elems == 0 ? count : std::min(seg_elems, count);
  const std::size_t nseg = count == 0 ? 0 : (count + seg - 1) / seg;
  std::byte* in = have_child && real ? s.scratch(seg * esz) : nullptr;

  for (std::size_t i = 0; i < nseg; ++i) {
    const std::size_t off = i * seg;
    const std::size_t len = std::min(seg, count - off);
    if (have_child) {
      s.recv(in, len * esz, (v + 1 + root) % n);
      s.barrier();
      s.op(in, acc == nullptr ? nullptr : acc + off * esz, len, dtype, op);
    }
    if (!is_root) {
      s.send(acc == nullptr ? nullptr : acc + off * esz, len * esz,
             (v - 1 + root) % n);
      s.barrier();
    }
  }
  s.finalize();
  nbc::trace_built(s, "ireduce.chain", me);
  return s;
}

}  // namespace nbctune::coll
