// Figure 3: influence of the network interconnect — the same Ialltoall
// scenario (32 processes, 128 KB per pair, 50 ms compute/iteration, 5
// progress calls) on whale over InfiniBand vs whale over Gigabit Ethernet.
//
// Expected shape (paper §IV-A-a): the linear algorithm is the best choice
// on InfiniBand (NIC-driven bulk overlaps once posted) and the worst (or
// near-worst) choice over TCP, where every bulk byte needs the CPU and
// 31 concurrent flows congest the link.

#include "bench_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::harness;

int main(int argc, char** argv) {
  bench::Driver drv("fig3", argc, argv);
  for (const auto& platform : {net::whale(), net::whale_tcp()}) {
    MicroScenario s;
    s.platform = platform;
    s.nprocs = 32;
    s.op = OpKind::Ialltoall;
    s.bytes = 128 * 1024;
    s.compute_per_iter = 50e-3;
    s.progress_calls = 5;
    s.iterations = drv.full() ? 24 : 8;
    s.noise_scale = 0.0;  // systematic comparison: noise off
    drv.configure(s);     // --exec=machine must reproduce fiber stdout
    bench::print_fixed_comparison(
        "Fig 3: network influence — Ialltoall implementations on " +
            platform.name,
        s, drv.pool());
  }
  return 0;
}
