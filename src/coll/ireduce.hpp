#pragma once

// Non-blocking reduce schedules: binomial tree and segmented chain.
//
// `sbuf` holds `count` elements of `dtype` on every rank; the root's
// `rbuf` receives the elementwise reduction.  Non-root ranks may pass
// rbuf == nullptr.

#include <cstddef>

#include "mpi/types.hpp"
#include "nbc/schedule.hpp"

namespace nbctune::coll {

nbc::Schedule build_ireduce_binomial(int me, int n, const void* sbuf,
                                     void* rbuf, std::size_t count,
                                     nbc::DType dtype, mpi::ReduceOp op,
                                     int root);

/// Chain (pipeline) reduce with segmentation: rank r receives partial
/// results from r+1, folds its own data, forwards to r-1 (virtual order
/// rooted at `root`).  seg_elems == 0 disables segmentation.
nbc::Schedule build_ireduce_chain(int me, int n, const void* sbuf, void* rbuf,
                                  std::size_t count, nbc::DType dtype,
                                  mpi::ReduceOp op, int root,
                                  std::size_t seg_elems);

}  // namespace nbctune::coll
