// Figure 10: 3-D FFT with LibNBC, ADCL and the blocking MPI_Alltoall
// version, on whale with 160 and 358 processes.
//
// Expected shape (paper §IV-B-f): ADCL beats LibNBC in most cases; in
// some scenarios the blocking version beats all non-blocking ones (the
// observation that motivates the extended function-set of Fig. 11).

#include "fft_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::bench;

int main(int argc, char** argv) {
  Driver drv("fig10", argc, argv);
  adcl::TuningOptions tuning;
  tuning.tests_per_function = drv.full() ? 3 : 2;
  const int iters = 3 * tuning.tests_per_function + (drv.full() ? 16 : 9);

  struct Case {
    int nprocs;
    int grid_n;  // N = 8P (eight planes per rank)
  };
  std::vector<Case> cases = {{160, 1280}};
  if (drv.full()) cases.push_back({358, 2864});  // paper scale

  // One pool task per (case, pattern, backend) run: 3 backends per row.
  struct Unit {
    Case c;
    fft::Pattern pattern;
    fft::Backend backend;
  };
  std::vector<Unit> units;
  for (const Case& c : cases) {
    for (fft::Pattern p : kAllPatterns) {
      units.push_back({c, p, fft::Backend::Blocking});
      units.push_back({c, p, fft::Backend::LibNBC});
      units.push_back({c, p, fft::Backend::Adcl});
    }
  }
  std::vector<FftRun> results(units.size());
  {
    auto timer = drv.timer();
    drv.pool().run_indexed(units.size(), [&](std::size_t i) {
      const Unit& u = units[i];
      const adcl::TuningOptions opts =
          u.backend == fft::Backend::Adcl ? tuning : adcl::TuningOptions{};
      results[i] = run_fft(net::whale(), u.c.nprocs, u.c.grid_n, u.pattern,
                           u.backend, iters, opts);
    });
  }

  std::size_t unit = 0;
  for (const Case& c : cases) {
    harness::banner("Fig 10: 3-D FFT, LibNBC vs ADCL vs blocking MPI — "
                    "whale, " +
                    std::to_string(c.nprocs) + " procs, N=" +
                    std::to_string(c.grid_n));
    harness::Table t({"pattern", "MPI(blocking)[s]", "LibNBC[s]", "ADCL[s]",
                      "best", "ADCL winner"});
    for (fft::Pattern p : kAllPatterns) {
      const FftRun mpi = results[unit++];
      const FftRun nbc = results[unit++];
      const FftRun ad = results[unit++];
      std::string best = "MPI";
      double bt = mpi.total_time;
      if (nbc.total_time < bt) { best = "LibNBC"; bt = nbc.total_time; }
      if (ad.total_time < bt) { best = "ADCL"; bt = ad.total_time; }
      t.add_row({fft::pattern_name(p), harness::Table::num(mpi.total_time),
                 harness::Table::num(nbc.total_time),
                 harness::Table::num(ad.total_time), best, ad.winner});
    }
    t.print();
  }
  return 0;
}
