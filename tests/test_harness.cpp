// Micro-benchmark harness: accounting identities, fixed-vs-tuned runs,
// verification-run scoring, and table formatting.

#include <gtest/gtest.h>

#include <sstream>

#include "harness/microbench.hpp"
#include "harness/table.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::harness;

namespace {
MicroScenario tiny_scenario() {
  MicroScenario s;
  s.platform = net::whale();
  s.nprocs = 4;
  s.op = OpKind::Ialltoall;
  s.bytes = 1024;
  s.compute_per_iter = 1e-3;
  s.iterations = 12;
  s.progress_calls = 4;
  s.noise_scale = 0.0;
  return s;
}
}  // namespace

TEST(Microbench, ComputeDominatedLoopTimeIsComputeBound) {
  // With compute far larger than communication, the loop time must be
  // close to iterations x compute (full overlap), and never below it.
  MicroScenario s = tiny_scenario();
  s.compute_per_iter = 10e-3;
  auto out = run_fixed(s, 0);
  const double floor_time = s.iterations * s.compute_per_iter;
  EXPECT_GE(out.loop_time, floor_time);
  EXPECT_LT(out.loop_time, floor_time * 1.15);
}

TEST(Microbench, FixedRunsNameTheImplementation) {
  MicroScenario s = tiny_scenario();
  auto fset = scenario_functionset(s);
  ASSERT_EQ(fset->size(), 3u);
  EXPECT_EQ(run_fixed(s, 0).impl, "linear");
  EXPECT_EQ(run_fixed(s, 1).impl, "dissemination");
  EXPECT_EQ(run_fixed(s, 2).impl, "pairwise");
  EXPECT_THROW(run_fixed(s, 3), std::invalid_argument);
}

TEST(Microbench, AdclDecidesWithinLoop) {
  MicroScenario s = tiny_scenario();
  adcl::TuningOptions opts;
  opts.policy = adcl::PolicyKind::BruteForce;
  opts.tests_per_function = 3;
  auto out = run_adcl(s, opts);
  EXPECT_NE(out.impl, "<undecided>");
  EXPECT_EQ(out.decision_iteration, 9);
  EXPECT_GT(out.post_decision_iterations, 0);
  EXPECT_GT(out.post_decision_time, 0.0);
  EXPECT_LT(out.post_decision_time, out.loop_time);
}

TEST(Microbench, VerificationRunScoresDecision) {
  MicroScenario s = tiny_scenario();
  s.iterations = 20;
  auto v = run_verification(s, /*tests_per_function=*/4);
  ASSERT_EQ(v.fixed.size(), 3u);
  ASSERT_GE(v.best_fixed, 0);
  // The ADCL winners name real implementations.
  auto fset = scenario_functionset(s);
  EXPECT_GE(fset->find_by_name(v.adcl_bruteforce.impl), 0);
  EXPECT_GE(fset->find_by_name(v.adcl_heuristic.impl), 0);
  // With noise off, brute force must pick the true best.
  EXPECT_TRUE(v.bruteforce_correct);
  // The learning phase makes ADCL slower than (or equal to) the best
  // fixed implementation, but it must beat the worst by a margin when
  // implementations differ.
  double worst = 0;
  for (const auto& f : v.fixed) worst = std::max(worst, f.loop_time);
  EXPECT_LE(v.fixed[v.best_fixed].loop_time, v.adcl_bruteforce.loop_time);
  EXPECT_LE(v.adcl_bruteforce.loop_time, worst * 1.05);
}

TEST(Microbench, IbcastScenario) {
  MicroScenario s = tiny_scenario();
  s.op = OpKind::Ibcast;
  s.bytes = 64 * 1024;
  s.nprocs = 8;
  auto fset = scenario_functionset(s);
  EXPECT_EQ(fset->size(), 21u);
  auto out = run_fixed(s, fset->find_by_name("binomial/seg64k"));
  EXPECT_EQ(out.impl, "binomial/seg64k");
  EXPECT_GT(out.loop_time, 0.0);
}

TEST(Microbench, BlockingExtendedSetRuns) {
  MicroScenario s = tiny_scenario();
  s.include_blocking = true;
  s.iterations = 14;
  adcl::TuningOptions opts;
  opts.tests_per_function = 2;
  auto out = run_adcl(s, opts);
  EXPECT_NE(out.impl, "<undecided>");
  EXPECT_EQ(out.decision_iteration, 12);  // 6 functions x 2 tests
}

TEST(Microbench, DeterministicAcrossRuns) {
  MicroScenario s = tiny_scenario();
  s.noise_scale = 1.0;
  s.seed = 7;
  auto a = run_fixed(s, 1);
  auto b = run_fixed(s, 1);
  EXPECT_DOUBLE_EQ(a.loop_time, b.loop_time);
  s.seed = 8;
  auto c = run_fixed(s, 1);
  EXPECT_NE(a.loop_time, c.loop_time);
}

TEST(Microbench, ZeroProgressCallsStillCompletes) {
  MicroScenario s = tiny_scenario();
  s.progress_calls = 0;
  s.bytes = 64 * 1024;  // rendezvous: all work lands in wait()
  auto out = run_fixed(s, 2);
  EXPECT_GT(out.loop_time, s.iterations * s.compute_per_iter);
}

TEST(TableFormat, AlignsAndCsvs) {
  Table t({"impl", "time"});
  t.add_row({"linear", Table::num(1.5, 2)});
  t.add_row({"pairwise", Table::num(2.0, 2)});
  std::ostringstream text, csv;
  t.print(text);
  t.print_csv(csv);
  EXPECT_NE(text.str().find("impl"), std::string::npos);
  EXPECT_NE(text.str().find("-----"), std::string::npos);
  EXPECT_EQ(csv.str(), "impl,time\nlinear,1.50\npairwise,2.00\n");
  EXPECT_EQ(t.rows(), 2u);
}

// ------------------------------------------------------- utilization

#include "harness/utilization.hpp"
#include "mpi/world.hpp"
#include "net/machine.hpp"
#include "sim/engine.hpp"

TEST(Utilization, ReportsBusyResources) {
  sim::Engine engine(1);
  net::Machine machine(net::whale());
  mpi::WorldOptions o;
  o.nprocs = 9;
  o.noise_scale = 0;
  mpi::World world(engine, machine, o);
  world.launch([&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    std::vector<std::byte> buf(64 * 1024);
    if (ctx.world_rank() == 0) {
      for (int i = 0; i < 4; ++i) ctx.send(comm, buf.data(), buf.size(), 8, i);
    } else if (ctx.world_rank() == 8) {
      for (int i = 0; i < 4; ++i) ctx.recv(comm, buf.data(), buf.size(), 0, i);
    }
  });
  engine.run();
  auto report = utilization_report(world, engine.now());
  ASSERT_NE(report.hottest(), nullptr);
  EXPECT_GT(report.hottest()->busy_fraction, 0.0);
  EXPECT_LE(report.hottest()->busy_fraction, 1.0);
  EXPECT_EQ(report.data_messages, 4u);
  EXPECT_EQ(report.ctrl_messages, 8u);  // 4 rendezvous handshakes
  // Only resources that actually served traffic appear.
  for (const auto& u : report.resources) EXPECT_GT(u.reservations, 0u);
  // The busiest resources are node 0's transmit and node 1's receive NICs.
  bool saw_tx0 = false;
  for (const auto& u : report.resources) saw_tx0 |= (u.name == "tx:0:0");
  EXPECT_TRUE(saw_tx0);
  std::ostringstream oss;
  print_utilization(report, 4, oss);
  EXPECT_NE(oss.str().find("tx:0:0"), std::string::npos);
}

TEST(Utilization, EmptyWorldEmptyReport) {
  sim::Engine engine(1);
  net::Machine machine(net::whale());
  mpi::WorldOptions o;
  o.nprocs = 2;
  mpi::World world(engine, machine, o);
  auto report = utilization_report(world, 0.0);
  EXPECT_EQ(report.hottest(), nullptr);
  EXPECT_EQ(report.data_messages, 0u);
}
