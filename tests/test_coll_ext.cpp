// Property tests for the extended collective library: non-blocking
// allreduce (recursive doubling / reduce+bcast / ring) and the Cartesian
// neighborhood exchange (all three orderings, periodic and bounded grids,
// including the tricky size-2 and size-1 dimensions).

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "coll/blocking.hpp"
#include "coll/iallgather.hpp"
#include "coll/iallreduce.hpp"
#include "coll/ineighbor.hpp"
#include "mpi/world.hpp"
#include "nbc/handle.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"

using namespace nbctune;
namespace t = nbctune::testing;

namespace {
const net::Platform kIb = net::whale();
}

// ------------------------------------------------------------ Iallreduce

enum class AR { RecDbl, ReduceBcast, Ring };

class AllreduceCorrectness
    : public ::testing::TestWithParam<std::tuple<AR, int, std::size_t>> {};

static std::string ar_name(
    const ::testing::TestParamInfo<std::tuple<AR, int, std::size_t>>& info) {
  static const char* names[] = {"recdbl", "redbcast", "ring"};
  return std::string(names[int(std::get<0>(info.param))]) + "_n" +
         std::to_string(std::get<1>(info.param)) + "_c" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllreduceCorrectness,
    ::testing::Combine(::testing::Values(AR::RecDbl, AR::ReduceBcast,
                                         AR::Ring),
                       ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16),
                       ::testing::Values(std::size_t{1}, std::size_t{10},
                                         std::size_t{1000},
                                         std::size_t{5000})),
    ar_name);

TEST_P(AllreduceCorrectness, SumsDoublesEverywhere) {
  const auto [algo, n, count] = GetParam();
  if (algo == AR::RecDbl && !coll::is_pow2(n)) GTEST_SKIP();
  std::vector<std::vector<double>> results(n);
  t::run_world(kIb, n, [&, algo = algo, n = n, count = count](mpi::Ctx& ctx) {
    const int me = ctx.world_rank();
    std::vector<double> in(count), out(count, -1);
    for (std::size_t i = 0; i < count; ++i) in[i] = (me + 1) * 0.25 + i;
    nbc::Schedule s;
    switch (algo) {
      case AR::RecDbl:
        s = coll::build_iallreduce_recursive_doubling(
            me, n, in.data(), out.data(), count, nbc::DType::F64,
            mpi::ReduceOp::Sum);
        break;
      case AR::ReduceBcast:
        s = coll::build_iallreduce_reduce_bcast(me, n, in.data(), out.data(),
                                                count, nbc::DType::F64,
                                                mpi::ReduceOp::Sum);
        break;
      case AR::Ring:
        s = coll::build_iallreduce_ring(me, n, in.data(), out.data(), count,
                                        nbc::DType::F64, mpi::ReduceOp::Sum);
        break;
    }
    nbc::Handle h(ctx, ctx.world().comm_world(), &s, ctx.alloc_nbc_tag());
    h.start();
    h.wait();
    results[me] = out;
  });
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      const double expect = n * (n + 1) / 2.0 * 0.25 + double(n) * i;
      ASSERT_DOUBLE_EQ(results[r][i], expect) << "rank " << r << " i " << i;
    }
  }
}

TEST(Allreduce, MaxWithIntsOnRing) {
  const int n = 7;
  const std::size_t count = 123;
  std::vector<std::vector<int>> results(n);
  t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
    const int me = ctx.world_rank();
    std::vector<int> in(count), out(count);
    for (std::size_t i = 0; i < count; ++i)
      in[i] = int((me * 97 + i * 31) % 500);
    nbc::Schedule s = coll::build_iallreduce_ring(
        me, n, in.data(), out.data(), count, nbc::DType::I32,
        mpi::ReduceOp::Max);
    nbc::Handle h(ctx, ctx.world().comm_world(), &s, ctx.alloc_nbc_tag());
    h.start();
    h.wait();
    results[me] = out;
  });
  for (std::size_t i = 0; i < count; ++i) {
    int expect = 0;
    for (int r = 0; r < n; ++r)
      expect = std::max(expect, int((r * 97 + i * 31) % 500));
    for (int r = 0; r < n; ++r) ASSERT_EQ(results[r][i], expect);
  }
}

TEST(Allreduce, RecursiveDoublingRejectsNonPow2) {
  double x = 0;
  EXPECT_THROW(coll::build_iallreduce_recursive_doubling(
                   0, 6, &x, &x, 1, nbc::DType::F64, mpi::ReduceOp::Sum),
               std::invalid_argument);
}

TEST(Allreduce, CountSmallerThanRanks) {
  // Ring chunking with count < n: some chunks are empty.
  const int n = 8;
  const std::size_t count = 3;
  std::vector<std::vector<double>> results(n);
  t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
    const int me = ctx.world_rank();
    std::vector<double> in{me + 1.0, me + 2.0, me + 3.0}, out(count);
    nbc::Schedule s = coll::build_iallreduce_ring(
        me, n, in.data(), out.data(), count, nbc::DType::F64,
        mpi::ReduceOp::Sum);
    nbc::Handle h(ctx, ctx.world().comm_world(), &s, ctx.alloc_nbc_tag());
    h.start();
    h.wait();
    results[me] = out;
  });
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_DOUBLE_EQ(results[r][i], n * (n + 1) / 2.0 + n * double(i));
    }
  }
}

// -------------------------------------------------------------- Topology

TEST(CartTopo, CoordsRoundTrip) {
  coll::CartTopo topo{{3, 4, 5}, true};
  EXPECT_EQ(topo.size(), 60);
  for (int r = 0; r < topo.size(); ++r) {
    EXPECT_EQ(coll::cart_rank(topo, coll::cart_coords(topo, r)), r);
  }
  EXPECT_EQ(coll::cart_coords(topo, 0), (std::vector<int>{0, 0, 0}));
  EXPECT_EQ(coll::cart_coords(topo, 59), (std::vector<int>{2, 3, 4}));
}

TEST(CartTopo, NeighborsPeriodicAndBounded) {
  coll::CartTopo per{{4}, true};
  EXPECT_EQ(coll::cart_neighbor(per, 0, 0, -1), 3);  // wraparound
  EXPECT_EQ(coll::cart_neighbor(per, 3, 0, +1), 0);
  coll::CartTopo bnd{{4}, false};
  EXPECT_EQ(coll::cart_neighbor(bnd, 0, 0, -1), -1);  // boundary
  EXPECT_EQ(coll::cart_neighbor(bnd, 3, 0, +1), -1);
  EXPECT_EQ(coll::cart_neighbor(bnd, 1, 0, +1), 2);
  EXPECT_THROW(coll::cart_neighbor(bnd, 0, 1, 1), std::invalid_argument);
}

// ------------------------------------------------------------- Ineighbor

namespace {

std::byte halo_byte(int owner, int slot, std::size_t i) {
  return static_cast<std::byte>((owner * 131 + slot * 17 + int(i)) & 0xff);
}

enum class NB { AllAtOnce, DimOrdered, EvenOdd };

/// Run a halo exchange on `topo` with the given builder and verify every
/// halo block equals the face block the corresponding neighbour sent.
void check_neighbor(const coll::CartTopo& topo, NB flavor) {
  const int n = topo.size();
  const std::size_t block = 700;
  const int slots = 2 * topo.ndims();
  std::vector<std::vector<std::byte>> results(n);
  t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
    const int me = ctx.world_rank();
    std::vector<std::byte> sbuf(slots * block), rbuf(slots * block,
                                                     std::byte{0xab});
    for (int sl = 0; sl < slots; ++sl)
      for (std::size_t i = 0; i < block; ++i)
        sbuf[sl * block + i] = halo_byte(me, sl, i);
    nbc::Schedule s;
    switch (flavor) {
      case NB::AllAtOnce:
        s = coll::build_ineighbor_all_at_once(topo, me, sbuf.data(),
                                              rbuf.data(), block);
        break;
      case NB::DimOrdered:
        s = coll::build_ineighbor_dimension_ordered(topo, me, sbuf.data(),
                                                    rbuf.data(), block);
        break;
      case NB::EvenOdd:
        s = coll::build_ineighbor_even_odd(topo, me, sbuf.data(), rbuf.data(),
                                           block);
        break;
    }
    nbc::Handle h(ctx, ctx.world().comm_world(), &s, ctx.alloc_nbc_tag());
    h.start();
    h.wait();
    results[me] = rbuf;
  });
  // My (dim, low) halo must hold my low neighbour's (dim, high) face.
  for (int r = 0; r < n; ++r) {
    for (int dim = 0; dim < topo.ndims(); ++dim) {
      for (int disp : {-1, +1}) {
        const int nbr = coll::cart_neighbor(topo, r, dim, disp);
        const int my_slot = 2 * dim + (disp > 0 ? 1 : 0);
        if (nbr < 0) {
          for (std::size_t i = 0; i < block; ++i) {
            ASSERT_EQ(results[r][my_slot * block + i], std::byte{0xab})
                << "rank " << r << " slot " << my_slot << " not untouched";
          }
          continue;
        }
        const int nbr_slot = 2 * dim + (disp > 0 ? 0 : 1);  // facing me
        for (std::size_t i = 0; i < block; ++i) {
          ASSERT_EQ(results[r][my_slot * block + i],
                    halo_byte(nbr, nbr_slot, i))
              << "rank " << r << " dim " << dim << " disp " << disp;
        }
      }
    }
  }
}

}  // namespace

class NeighborCorrectness : public ::testing::TestWithParam<NB> {};

static std::string nb_name(const ::testing::TestParamInfo<NB>& info) {
  static const char* names[] = {"all_at_once", "dim_ordered", "even_odd"};
  return names[int(info.param)];
}

INSTANTIATE_TEST_SUITE_P(Flavors, NeighborCorrectness,
                         ::testing::Values(NB::AllAtOnce, NB::DimOrdered,
                                           NB::EvenOdd),
                         nb_name);

TEST_P(NeighborCorrectness, Ring1D) {
  check_neighbor(coll::CartTopo{{8}, true}, GetParam());
}

TEST_P(NeighborCorrectness, Line1DBounded) {
  check_neighbor(coll::CartTopo{{6}, false}, GetParam());
}

TEST_P(NeighborCorrectness, Grid2DPeriodic) {
  check_neighbor(coll::CartTopo{{4, 4}, true}, GetParam());
}

TEST_P(NeighborCorrectness, Grid2DOddPeriodic) {
  check_neighbor(coll::CartTopo{{3, 5}, true}, GetParam());
}

TEST_P(NeighborCorrectness, Grid2DBounded) {
  check_neighbor(coll::CartTopo{{4, 3}, false}, GetParam());
}

TEST_P(NeighborCorrectness, Grid3DMixed) {
  check_neighbor(coll::CartTopo{{2, 3, 4}, true}, GetParam());
}

TEST_P(NeighborCorrectness, Size2DimensionSamePeerBothFaces) {
  // dims = 2 periodic: both faces connect to the same peer; matching
  // order must still route each face into the right halo slot.
  check_neighbor(coll::CartTopo{{2, 4}, true}, GetParam());
}

TEST_P(NeighborCorrectness, Size1DimensionSelfExchange) {
  // Degenerate periodic dimension: the rank exchanges with itself.
  check_neighbor(coll::CartTopo{{1, 6}, true}, GetParam());
}

// ----------------------------------------------- volume diagnostics

TEST(AllreduceShape, DataVolumesMatchTheory) {
  const int n = 8;
  const std::size_t count = 8000;  // divisible by n
  const std::size_t esz = sizeof(double);
  std::vector<double> in(count), out(count);
  auto rd = coll::build_iallreduce_recursive_doubling(
      3, n, in.data(), out.data(), count, nbc::DType::F64,
      mpi::ReduceOp::Sum);
  auto ring = coll::build_iallreduce_ring(3, n, in.data(), out.data(), count,
                                          nbc::DType::F64, mpi::ReduceOp::Sum);
  // Recursive doubling: log2(n) full-vector exchanges.
  EXPECT_EQ(rd.total_sends(), 3u);
  EXPECT_EQ(rd.total_send_bytes(), 3u * count * esz);
  // Ring: 2(n-1) chunk messages of count/n elements each — the
  // bandwidth-optimal 2(n-1)/n vector volume.
  EXPECT_EQ(ring.total_sends(), 2u * (n - 1));
  EXPECT_EQ(ring.total_send_bytes(), 2u * (n - 1) * (count / n) * esz);
  // Round counts drive progress-call sensitivity (paper Fig. 7).
  EXPECT_EQ(rd.num_rounds(), 4u);              // copy + 3 exchanges
  EXPECT_EQ(ring.num_rounds(), 2u * (n - 1) + 1);
}

TEST(NeighborShape, RoundStructureMatchesOrdering) {
  coll::CartTopo topo{{4, 4}, true};
  std::vector<std::byte> s(4 * 2 * 128), r(4 * 2 * 128);
  auto once =
      coll::build_ineighbor_all_at_once(topo, 5, s.data(), r.data(), 128);
  auto dim = coll::build_ineighbor_dimension_ordered(topo, 5, s.data(),
                                                     r.data(), 128);
  auto eo = coll::build_ineighbor_even_odd(topo, 5, s.data(), r.data(), 128);
  EXPECT_EQ(once.num_rounds(), 1u);   // everything concurrent
  EXPECT_EQ(dim.num_rounds(), 2u);    // one round per dimension
  EXPECT_EQ(eo.num_rounds(), 4u);     // two phases per dimension
  // All move the same data: 4 faces of 128 bytes.
  for (const auto* sched : {&once, &dim, &eo}) {
    EXPECT_EQ(sched->total_sends(), 4u);
    EXPECT_EQ(sched->total_send_bytes(), 4u * 128);
  }
}

TEST(BlockingBcastComparator, DeliversRootData) {
  const int n = 9;
  const std::size_t bytes = 200 * 1000;
  std::vector<std::vector<std::byte>> results(n);
  t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
    const int me = ctx.world_rank();
    auto buf = me == 2 ? t::make_pattern(2, bytes)
                       : std::vector<std::byte>(bytes);
    coll::blocking_bcast(ctx, ctx.world().comm_world(), buf.data(), bytes, 2);
    results[me] = buf;
  });
  const auto expect = t::make_pattern(2, bytes);
  for (int r = 0; r < n; ++r) EXPECT_EQ(results[r], expect) << r;
}
