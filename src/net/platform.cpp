#include "net/platform.hpp"

#include <stdexcept>

namespace nbctune::net {

namespace {
constexpr double kUs = 1e-6;

NoiseParams default_noise() {
  // Mild gaussian jitter plus rare 3x outliers: enough to exercise the
  // tuner's statistical filtering without burying the signal.
  return NoiseParams{.rel_sigma = 0.005, .outlier_prob = 0.01,
                     .outlier_factor = 3.0};
}
}  // namespace

Platform crill() {
  Platform p;
  p.name = "crill";
  p.nodes = 16;
  p.cores_per_node = 48;
  p.nics_per_node = 2;  // two 4x DDR InfiniBand HCAs per node
  p.inter = LinkParams{.latency = 3.0 * kUs,
                       .byte_time = 1.0 / 1.5e9,
                       .send_overhead = 0.8 * kUs,
                       .recv_overhead = 0.6 * kUs,
                       .msg_gap = 1.0 * kUs};
  p.intra = LinkParams{.latency = 0.5 * kUs,
                       .byte_time = 1.0 / 3.0e9,
                       .send_overhead = 0.25 * kUs,
                       .recv_overhead = 0.25 * kUs,
                       .msg_gap = 0.1 * kUs};
  p.eager_limit = 12 * 1024;
  p.cpu_driven_bulk = false;  // RDMA: bulk moves on the HCA
  p.bulk_chunk = 512 * 1024;
  p.ctrl_overhead = 0.3 * kUs;
  p.progress_cost = 0.8 * kUs;
  p.per_req_poll_cost = 0.05 * kUs;
  p.copy_byte_time = 1.0 / 3.5e9;
  p.mem_byte_time = 1.0 / 24.0e9;  // 4 memory controllers per node
  p.congest_coef = 0.01;
  p.congest_free = 48;
  p.congest_cap = 3.0;
  p.mem_congest_coef = 0.002;
  p.mem_congest_free = 64;
  p.noise = default_noise();
  p.flops_per_sec = 1.5e9;
  // 4x 12-core Magny Cours per node; the 16 nodes span two 8-node racks.
  // Within a socket the HT links stay out of the picture entirely.
  p.sockets_per_node = 4;
  p.nodes_per_rack = 8;
  p.rack_extra_latency = 0.5 * kUs;
  p.socket = LinkParams{.latency = 0.3 * kUs,
                        .byte_time = 1.0 / 6.0e9,
                        .send_overhead = 0.2 * kUs,
                        .recv_overhead = 0.2 * kUs,
                        .msg_gap = 0.05 * kUs};
  return p;
}

Platform whale() {
  Platform p;
  p.name = "whale";
  p.nodes = 64;
  p.cores_per_node = 8;
  p.nics_per_node = 1;  // single DDR InfiniBand HCA per node
  p.inter = LinkParams{.latency = 3.2 * kUs,
                       .byte_time = 1.0 / 1.4e9,
                       .send_overhead = 0.9 * kUs,
                       .recv_overhead = 0.7 * kUs,
                       .msg_gap = 0.25 * kUs};
  p.intra = LinkParams{.latency = 0.6 * kUs,
                       .byte_time = 1.0 / 2.5e9,
                       .send_overhead = 0.3 * kUs,
                       .recv_overhead = 0.3 * kUs,
                       .msg_gap = 0.1 * kUs};
  p.eager_limit = 12 * 1024;
  p.cpu_driven_bulk = false;
  p.bulk_chunk = 512 * 1024;
  p.ctrl_overhead = 0.35 * kUs;
  p.progress_cost = 1.0 * kUs;
  p.per_req_poll_cost = 0.06 * kUs;
  p.copy_byte_time = 1.0 / 3.0e9;
  p.mem_byte_time = 1.0 / 7.0e9;
  p.congest_coef = 0.01;
  p.congest_free = 32;
  p.congest_cap = 1.2;  // shallow: single-HCA whale is volume-dominated
  p.mem_congest_coef = 0.003;
  p.mem_congest_free = 32;
  p.noise = default_noise();
  p.flops_per_sec = 1.2e9;
  // 2x quad-core Barcelona per node; 64 nodes in two 32-node racks.
  p.sockets_per_node = 2;
  p.nodes_per_rack = 32;
  p.rack_extra_latency = 0.8 * kUs;
  p.socket = LinkParams{.latency = 0.4 * kUs,
                        .byte_time = 1.0 / 4.0e9,
                        .send_overhead = 0.25 * kUs,
                        .recv_overhead = 0.25 * kUs,
                        .msg_gap = 0.05 * kUs};
  return p;
}

Platform whale_tcp() {
  Platform p = whale();
  p.name = "whale-tcp";
  p.nics_per_node = 1;
  // Gigabit Ethernet through the kernel TCP stack: high per-message cost,
  // ~117 MB/s, and the CPU has to feed the socket from the progress engine.
  p.inter = LinkParams{.latency = 48.0 * kUs,
                       .byte_time = 1.0 / 117.0e6,
                       .send_overhead = 5.0 * kUs,
                       .recv_overhead = 5.0 * kUs,
                       .msg_gap = 5.0 * kUs};
  p.eager_limit = 16 * 1024;
  p.cpu_driven_bulk = true;
  p.congest_coef = 0.10;   // TCP incast collapse under concurrent flows
  p.congest_free = 2;
  p.congest_cap = 8.0;     // lossy Ethernet really does collapse
  p.bulk_chunk = 64 * 1024;
  p.ctrl_overhead = 2.0 * kUs;
  p.progress_cost = 1.5 * kUs;
  p.per_req_poll_cost = 0.12 * kUs;
  return p;
}

Platform bluegene_p() {
  Platform p;
  p.name = "bgp";
  p.nodes = 256;
  p.cores_per_node = 4;  // VN mode: 1024 MPI processes
  p.nics_per_node = 1;   // torus DMA unit
  p.inter = LinkParams{.latency = 2.7 * kUs,
                       .byte_time = 1.0 / 425.0e6,
                       .send_overhead = 1.8 * kUs,
                       .recv_overhead = 1.4 * kUs,
                       .msg_gap = 1.5 * kUs};
  p.intra = LinkParams{.latency = 0.8 * kUs,
                       .byte_time = 1.0 / 1.6e9,
                       .send_overhead = 0.6 * kUs,
                       .recv_overhead = 0.6 * kUs,
                       .msg_gap = 0.2 * kUs};
  p.eager_limit = 1200;  // BG/P switches to rendezvous early
  p.cpu_driven_bulk = false;  // torus DMA moves bulk data
  p.bulk_chunk = 256 * 1024;
  p.ctrl_overhead = 0.8 * kUs;
  p.progress_cost = 1.6 * kUs;
  p.per_req_poll_cost = 0.12 * kUs;
  p.copy_byte_time = 1.0 / 1.2e9;
  p.mem_byte_time = 1.0 / 4.0e9;
  p.congest_coef = 0.01;
  p.congest_free = 8;
  p.mem_congest_coef = 0.004;
  p.mem_congest_free = 16;
  p.noise = NoiseParams{.rel_sigma = 0.001, .outlier_prob = 0.001,
                        .outlier_factor = 2.0};  // BG/P is famously quiet
  p.torus_x = 8;
  p.torus_y = 8;
  p.torus_z = 4;
  p.hop_latency = 0.1 * kUs;
  p.flops_per_sec = 0.4e9;
  // A midplane is 8x8x8 half-rack on real BG/P; this 256-node partition
  // groups into 32-node units purely descriptively (the torus hop model
  // already prices distance, so no extra rack latency on top).
  p.sockets_per_node = 1;
  p.nodes_per_rack = 32;
  p.rack_extra_latency = 0.0;
  return p;
}

Platform mega() {
  Platform p;
  p.name = "mega";
  // A synthetic petascale-class system for the 100k+-rank scaling sweeps:
  // 4096 nodes x 32 cores = 131072 ranks, modern HDR-InfiniBand-like
  // parameters.  Used with machine-mode execution; fiber mode at this
  // scale exhausts stack memory by design.
  p.nodes = 4096;
  p.cores_per_node = 32;
  p.nics_per_node = 1;
  p.inter = LinkParams{.latency = 1.1 * kUs,
                       .byte_time = 1.0 / 24.0e9,
                       .send_overhead = 0.4 * kUs,
                       .recv_overhead = 0.3 * kUs,
                       .msg_gap = 0.05 * kUs};
  p.intra = LinkParams{.latency = 0.3 * kUs,
                       .byte_time = 1.0 / 12.0e9,
                       .send_overhead = 0.15 * kUs,
                       .recv_overhead = 0.15 * kUs,
                       .msg_gap = 0.02 * kUs};
  p.eager_limit = 16 * 1024;
  p.cpu_driven_bulk = false;
  p.bulk_chunk = 1024 * 1024;
  p.ctrl_overhead = 0.15 * kUs;
  p.progress_cost = 0.4 * kUs;
  p.per_req_poll_cost = 0.02 * kUs;
  p.copy_byte_time = 1.0 / 12.0e9;
  p.mem_byte_time = 1.0 / 100.0e9;
  p.congest_coef = 0.005;
  p.congest_free = 64;
  p.congest_cap = 2.0;
  p.mem_congest_coef = 0.001;
  p.mem_congest_free = 128;
  p.noise = default_noise();
  p.flops_per_sec = 3.0e9;
  // Descriptive hierarchy only: the scale sweeps pin their trajectories,
  // so crossing racks costs nothing extra on this synthetic system.
  p.sockets_per_node = 4;
  p.nodes_per_rack = 128;
  p.rack_extra_latency = 0.0;
  return p;
}

Platform platform_by_name(const std::string& name) {
  if (name == "crill") return crill();
  if (name == "whale") return whale();
  if (name == "whale-tcp" || name == "whale_tcp") return whale_tcp();
  if (name == "bgp" || name == "bluegene_p" || name == "bluegene") {
    return bluegene_p();
  }
  if (name == "mega") return mega();
  throw std::invalid_argument("unknown platform: " + name);
}

}  // namespace nbctune::net
