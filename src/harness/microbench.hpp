#pragma once

// The micro-benchmark of the paper (§IV-A): a loop that initiates a
// non-blocking collective, computes in chunks with progress calls in
// between, and completes the operation — measuring how well each
// implementation overlaps and which one the tuner selects.
//
//   for it in iterations:
//     request.init()
//     repeat progress_calls times:
//       compute(compute_per_iter / progress_calls)
//       request.progress()
//     request.wait()
//
// run_fixed() pins one implementation (circumventing the selection logic,
// the paper's "verification run" reference data); run_adcl() lets a policy
// choose.  run_verification() combines both and scores the decision.

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "adcl/adcl.hpp"
#include "harness/scenario_pool.hpp"
#include "net/platform.hpp"

namespace nbctune::harness {

enum class OpKind { Ialltoall, Ibcast, Iallreduce, Iscatter };

[[nodiscard]] const char* op_name(OpKind k) noexcept;

/// How the per-rank loop executes (see exec/machine_runner.hpp).
/// Fiber: every rank runs on its own ucontext stack (the default; supports
/// run-time selection, recovery and drift re-tuning).  Machine: ranks run
/// as explicit state machines in flat arenas — no fiber stacks, scales to
/// 100k+ ranks, but restricted to pinned (forced-winner) fault-free-or-
/// lossy-without-recovery runs.  Where both modes can run they produce
/// byte-identical event streams and timings.
enum class ExecMode { Fiber, Machine };

[[nodiscard]] const char* exec_name(ExecMode m) noexcept;

/// One benchmark configuration.
struct MicroScenario {
  net::Platform platform;
  int nprocs = 4;
  OpKind op = OpKind::Ialltoall;
  /// Message size: bytes per process pair (alltoall) / total (bcast).
  std::size_t bytes = 1024;
  /// Compute per iteration (the paper quotes totals like "50 s compute
  /// time" over 1000 iterations, i.e. 50 ms per iteration).
  double compute_per_iter = 50e-3;
  int iterations = 30;
  int progress_calls = 5;
  std::uint64_t seed = 1;
  double noise_scale = 1.0;
  /// Move real payload bytes (off for large-scale runs).
  bool payload = false;
  /// Include blocking implementations in the alltoall set (paper §IV-B).
  bool include_blocking = false;
  /// Include the hierarchy-aware two-level members in the Ibcast /
  /// Iallreduce function-sets (coll/hierarchical.hpp).
  bool include_hierarchical = false;
  /// Short topology tag folded into trace labels as "+topo=<tag>" (last
  /// suffix), isolating hierarchy experiments into their own analyzer
  /// label groups; empty = untagged (labels unchanged).
  std::string topo_tag;
  /// Fault-plan spec (see fault/fault.hpp grammar); empty = fault-free.
  /// The plan's rto/retries/op_timeout knobs arm the resilient transport
  /// and NBC recovery; drift knobs arm ADCL re-tuning.
  std::string fault_plan;
  /// Short name folded into trace labels as "+plan=<name>" (analyzer
  /// grouping); defaults to "spec" when a plan is set without a name.
  std::string fault_plan_name;
  /// Execution mode; Machine is valid for run_fixed() only and appends
  /// "+exec=machine" to trace labels.
  ExecMode exec = ExecMode::Fiber;
  /// Fiber stack size for ExecMode::Fiber; 0 = sim default (the
  /// NBCTUNE_FIBER_STACK env var, else 256 KiB).  Ignored in machine mode.
  std::size_t fiber_stack_bytes = 0;
};

/// Result of one benchmark execution.
struct RunOutcome {
  std::string impl;       ///< implementation (or winner) name
  double loop_time = 0;   ///< simulated time of the whole loop
  int decision_iteration = -1;
  double decision_time = std::numeric_limits<double>::quiet_NaN();
  /// Time of the iterations after the decision (excludes learning phase);
  /// equals loop_time for fixed runs.
  double post_decision_time = 0;
  int post_decision_iterations = 0;
};

/// The per-operation function-set used by the harness for a scenario.
std::shared_ptr<const adcl::FunctionSet> scenario_functionset(
    const MicroScenario& s);

/// Run the loop with implementation `func_idx` pinned.
RunOutcome run_fixed(const MicroScenario& s, int func_idx);

/// Run the loop with run-time selection under `opts.policy`.
RunOutcome run_adcl(const MicroScenario& s, adcl::TuningOptions opts);

/// A full verification run: every fixed implementation plus ADCL with the
/// brute-force and attribute-heuristic policies.
struct VerificationRun {
  std::vector<RunOutcome> fixed;  ///< one per function
  RunOutcome adcl_bruteforce;
  RunOutcome adcl_heuristic;
  int best_fixed = -1;            ///< index of the fastest fixed run
  bool bruteforce_correct = false;  ///< winner within tol of the best
  bool heuristic_correct = false;
};

/// Tolerance for "correct decision" (paper: within 5% of the best).
inline constexpr double kCorrectTolerance = 0.05;

/// When a pool is given, the component runs (every fixed implementation
/// plus the two ADCL policies — each with its own Engine) execute as
/// parallel tasks; results are identical to the serial path.
VerificationRun run_verification(const MicroScenario& s,
                                 int tests_per_function = 5,
                                 ScenarioPool* pool = nullptr);

}  // namespace nbctune::harness
