#pragma once

// Hierarchy-aware two-level collective schedules.
//
// Both builders split the communicator along node boundaries: one leader
// per node runs the inter-node phase (binomial over the leader list), and
// every other rank talks only to its node's leader over shared memory.
// On multi-node communicators this turns (n-1) wide-area transfers into
// (L-1) of them — the classic hierarchical-collective win the multi-rail
// platforms of the paper's testbeds (crill) are built for.
//
// Message totals match the flat counterparts exactly (bcast: n-1 payload
// sends; allreduce reduce+bcast: 2(n-1)), so two-level and flat variants
// of one operation are trace-equivalent in BytesOnWire — the analyzer
// leans on that when pairing them (guideline G7).

#include <cstddef>
#include <vector>

#include "mpi/types.hpp"
#include "nbc/schedule.hpp"

namespace nbctune::coll {

/// Leader (communicator rank) of each rank's node: the lowest rank on the
/// node, except the root's node where the root leads (no extra hop).
/// `node_of[r]` is the node id of comm rank r; exposed for testing.
std::vector<int> node_leaders(const std::vector<int>& node_of, int root);

/// Two-level broadcast: binomial over node leaders rooted at `root`,
/// then a binomial tree inside each node (a linear fan-out would
/// serialize the leader's sends on wide nodes).  `node_of[r]` maps comm
/// rank r to its node id (World::node_of of the world rank).
nbc::Schedule build_ibcast_two_level(int me, int n, void* buf,
                                     std::size_t bytes, int root,
                                     const std::vector<int>& node_of);

/// Two-level allreduce: binomial intra-node reduce to the leader,
/// binomial reduce+broadcast among leaders, binomial intra-node result
/// broadcast.
nbc::Schedule build_iallreduce_two_level(int me, int n, const void* sbuf,
                                         void* rbuf, std::size_t count,
                                         nbc::DType dtype, mpi::ReduceOp op,
                                         const std::vector<int>& node_of);

}  // namespace nbctune::coll
