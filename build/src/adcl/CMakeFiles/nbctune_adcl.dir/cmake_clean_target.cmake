file(REMOVE_RECURSE
  "libnbctune_adcl.a"
)
