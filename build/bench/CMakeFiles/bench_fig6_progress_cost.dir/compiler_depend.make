# Empty compiler generated dependencies file for bench_fig6_progress_cost.
# This may be replaced when dependencies are built.
