#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

#include "analyze/analyze.hpp"

// Report writers.  The JSON writer emits integers only (times in
// nanoseconds, ratios in basis points) so the bytes are identical across
// compilers, libcs and thread counts; CI diffs the output against a
// committed golden.

namespace nbctune::analyze {

namespace {

long long ns(double seconds) {
  return static_cast<long long>(std::llround(seconds * 1e9));
}

long long bp(double ratio) {
  return static_cast<long long>(std::llround(ratio * 1e4));
}

void put_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

void put_str(std::ostream& os, const char* key, const std::string& v,
             bool comma = true) {
  os << "\"" << key << "\":\"";
  put_escaped(os, v);
  os << "\"";
  if (comma) os << ",";
}

void put_blame(std::ostream& os, const char* key, const Blame& b) {
  os << "\"" << key << "\":{\"compute\":" << ns(b.compute)
     << ",\"progress\":" << ns(b.progress) << ",\"wire\":" << ns(b.wire)
     << ",\"late_sender\":" << ns(b.late_sender)
     << ",\"missing_progress\":" << ns(b.missing_progress)
     << ",\"other\":" << ns(b.other) << ",\"total\":" << ns(b.total()) << "}";
}

void put_stats(std::ostream& os, const char* key, const SampleStats& st) {
  os << "\"" << key << "\":{\"n\":" << st.n << ",\"median_ns\":"
     << ns(st.median) << ",\"lo_ns\":" << ns(st.lo)
     << ",\"hi_ns\":" << ns(st.hi) << "}";
}

}  // namespace

void write_json(std::ostream& os, const Report& report) {
  os << "{\"schema\":\"nbctune-report-v2\"";
  os << ",\"scenario_count\":" << report.scenarios.size();
  os << ",\"scenarios\":[";
  for (std::size_t i = 0; i < report.scenarios.size(); ++i) {
    const ScenarioReport& s = report.scenarios[i];
    os << (i == 0 ? "" : ",") << "\n{";
    put_str(os, "label", s.label);
    os << "\"ops_started\":" << s.ops_started
       << ",\"ops_completed\":" << s.ops_completed;
    // Conditional: only fail-stop runs abort executions, so kill-free
    // golden reports stay byte-identical.
    if (s.ops_aborted > 0) os << ",\"ops_aborted\":" << s.ops_aborted;
    os << ",\"mean_op_ns\":" << ns(s.mean_op_elapsed)
       << ",\"post_decision_op_ns\":" << ns(s.post_decision_op_elapsed)
       << ",\"zero_compute\":" << (s.zero_compute ? "true" : "false") << ",";
    put_blame(os, "blame_ns", s.blame);
    os << ",\"stats\":{\"min_reps_met\":"
       << (s.min_reps_met ? "true" : "false") << ",";
    put_stats(os, "op", s.op_stats);
    os << ",\"blame\":{";
    put_stats(os, "compute", s.blame_stats.compute);
    os << ",";
    put_stats(os, "progress", s.blame_stats.progress);
    os << ",";
    put_stats(os, "wire", s.blame_stats.wire);
    os << ",";
    put_stats(os, "late_sender", s.blame_stats.late_sender);
    os << ",";
    put_stats(os, "missing_progress", s.blame_stats.missing_progress);
    os << ",";
    put_stats(os, "other", s.blame_stats.other);
    os << "}}";
    if (s.has_critical) {
      const OpCritical& c = s.worst;
      os << ",\"critical\":{\"corr\":" << c.corr
         << ",\"rank\":" << c.critical_rank << ",\"start_ns\":" << ns(c.start)
         << ",\"elapsed_ns\":" << ns(c.elapsed) << ",";
      put_blame(os, "blame_ns", c.blame);
      os << ",\"hops\":[";
      for (std::size_t h = 0; h < c.hops.size(); ++h) {
        const CriticalHop& hop = c.hops[h];
        os << (h == 0 ? "" : ",") << "{\"rank\":" << hop.rank
           << ",\"from\":" << hop.from_rank << ",\"corr\":" << hop.corr
           << ",\"post_ns\":" << ns(hop.post_ts)
           << ",\"arrival_ns\":" << ns(hop.arrival_ts) << "}";
      }
      os << "]}";
    }
    os << ",\"ranks\":[";
    for (std::size_t r = 0; r < s.ranks.size(); ++r) {
      const RankOverlap& ro = s.ranks[r];
      os << (r == 0 ? "" : ",") << "{\"rank\":" << ro.rank
         << ",\"ops\":" << ro.ops << ",\"op_ns\":" << ns(ro.op_time)
         << ",\"compute_ns\":" << ns(ro.compute_in_op)
         << ",\"wire_ns\":" << ns(ro.wire_in_op)
         << ",\"overlap_bp\":" << bp(ro.overlap_ratio)
         << ",\"slack_ns\":" << ns(ro.slack) << "}";
    }
    os << "]";
    if (s.adcl.present) {
      const AdclAudit& a = s.adcl;
      os << ",\"adcl\":{\"winner\":" << a.winner
         << ",\"decision_iteration\":" << a.decision_iteration
         << ",\"decision_ns\":" << ns(a.decision_ts)
         << ",\"winner_score_ns\":" << ns(a.winner_score)
         << ",\"runner_up_score_ns\":" << ns(a.runner_up_score)
         << ",\"margin_bp\":" << bp(a.margin)
         << ",\"samples_seen\":" << a.samples_seen
         << ",\"samples_filtered\":" << a.samples_filtered << ",\"scores\":[";
      for (std::size_t k = 0; k < a.scores.size(); ++k) {
        const AdclScore& sc = a.scores[k];
        os << (k == 0 ? "" : ",") << "{\"func\":" << sc.func
           << ",\"score_ns\":" << ns(sc.score) << ",\"iter\":" << sc.iteration
           << "}";
      }
      os << "]";
      // Conditional keys: absent for fault-free, non-eliminating runs so
      // pre-existing golden reports stay byte-identical.
      if (a.retunes > 0) os << ",\"retunes\":" << a.retunes;
      if (!a.eliminations.empty()) {
        os << ",\"eliminations\":[";
        for (std::size_t k = 0; k < a.eliminations.size(); ++k) {
          const AdclElimination& el = a.eliminations[k];
          os << (k == 0 ? "" : ",") << "{\"attr\":" << el.attr
             << ",\"value\":" << el.value << ",\"kept\":" << el.kept
             << ",\"iter\":" << el.iteration << ",\"pruned\":[";
          for (std::size_t p = 0; p < el.pruned.size(); ++p) {
            os << (p == 0 ? "" : ",") << el.pruned[p];
          }
          os << "]}";
        }
        os << "]";
      }
      if (!a.prunes.empty()) {
        os << ",\"prunes\":[";
        for (std::size_t k = 0; k < a.prunes.size(); ++k) {
          const AdclPrune& p = a.prunes[k];
          os << (k == 0 ? "" : ",") << "{\"func\":" << p.func
             << ",\"bound_ns\":" << ns(p.bound) << ",\"iter\":" << p.iteration
             << "}";
        }
        os << "]";
      }
      os << "}";
    }
    if (s.faults.any()) {
      os << ",\"faults\":{\"drops\":" << s.faults.drops
         << ",\"dups\":" << s.faults.dups
         << ",\"dup_deliveries\":" << s.faults.dup_deliveries
         << ",\"retransmits\":" << s.faults.retransmits
         << ",\"send_failures\":" << s.faults.send_failures
         << ",\"fallbacks\":" << s.faults.fallbacks
         << ",\"stragglers\":" << s.faults.stragglers << "}";
    }
    if (s.recovery.any()) {
      const RecoverySummary& rec = s.recovery;
      os << ",\"recovery\":{\"deaths\":" << rec.deaths
         << ",\"epochs\":" << rec.epochs
         << ",\"rebuilds\":" << rec.rebuilds
         << ",\"aborted_ops\":" << rec.aborted_ops
         << ",\"detection_ns\":" << ns(rec.detection)
         << ",\"agreement_ns\":" << ns(rec.agreement)
         << ",\"rebuild_ns\":" << ns(rec.rebuild)
         << ",\"time_to_recover_ns\":" << ns(rec.time_to_recover) << "}";
    }
    if (s.fibers_created > 0 || s.peak_arena_bytes > 0) {
      os << ",\"exec\":{\"fibers_created\":" << s.fibers_created
         << ",\"peak_arena_bytes\":" << s.peak_arena_bytes << "}";
    }
    // Conditional: only capped traces carry the key, so fault-free golden
    // reports stay byte-identical.
    if (s.truncated()) {
      os << ",\"trace\":{\"dropped_events\":" << s.dropped_events
         << ",\"truncated\":true}";
    }
    os << "}";
  }
  os << "\n]";
  if (!report.session_counters.empty()) {
    os << ",\"session_counters\":{";
    bool first = true;
    for (const auto& [k, v] : report.session_counters) {
      if (!first) os << ",";
      first = false;
      os << "\"";
      put_escaped(os, k);
      os << "\":" << v;
    }
    os << "}";
  }
  os << ",\"guidelines\":[";
  for (std::size_t i = 0; i < report.guidelines.size(); ++i) {
    const GuidelineResult& g = report.guidelines[i];
    os << (i == 0 ? "" : ",") << "\n{";
    put_str(os, "id", g.id);
    put_str(os, "description", g.description);
    os << "\"checked\":" << g.checked << ",\"passed\":" << g.passed << ",";
    put_str(os, "status", g.status());
    os << "\"violations\":[";
    for (std::size_t v = 0; v < g.violations.size(); ++v) {
      os << (v == 0 ? "" : ",") << "\"";
      put_escaped(os, g.violations[v]);
      os << "\"";
    }
    os << "]}";
  }
  os << "\n]}\n";
}

namespace {

std::string us(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

std::string pct(double num, double den) {
  if (den <= 0.0) return "-";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * num / den);
  return buf;
}

}  // namespace

void write_table(std::ostream& os, const Report& report) {
  os << "== trace analysis: " << report.scenarios.size()
     << " scenario(s) ==\n";
  for (const ScenarioReport& s : report.scenarios) {
    os << "\n-- " << s.label << " --\n";
    os << "  ops " << s.ops_completed << "/" << s.ops_started
       << " completed";
    if (s.ops_aborted > 0) os << " (" << s.ops_aborted << " aborted)";
    os << ", mean op " << us(s.mean_op_elapsed) << " us";
    if (s.adcl.present) {
      os << ", post-decision " << us(s.post_decision_op_elapsed) << " us";
    }
    os << "\n";
    const double tot = s.blame.total();
    os << "  blame: compute " << pct(s.blame.compute, tot) << ", progress "
       << pct(s.blame.progress, tot) << ", wire " << pct(s.blame.wire, tot)
       << ", late-sender " << pct(s.blame.late_sender, tot)
       << ", missing-progress " << pct(s.blame.missing_progress, tot)
       << ", other " << pct(s.blame.other, tot) << "\n";
    if (s.op_stats.n > 0) {
      os << "  stats: " << s.op_stats.n << " op sample(s), median "
         << us(s.op_stats.median) << " us, ~95% CI [" << us(s.op_stats.lo)
         << ", " << us(s.op_stats.hi) << "] us"
         << (s.min_reps_met ? "" : "  [below min-reps: not a measurement]")
         << "\n";
      os << "  blame medians: compute " << us(s.blame_stats.compute.median)
         << ", progress " << us(s.blame_stats.progress.median) << ", wire "
         << us(s.blame_stats.wire.median) << ", late-sender "
         << us(s.blame_stats.late_sender.median) << ", missing-progress "
         << us(s.blame_stats.missing_progress.median) << ", other "
         << us(s.blame_stats.other.median) << " us\n";
    }
    if (s.has_critical) {
      const OpCritical& c = s.worst;
      os << "  worst op: corr " << c.corr << " on rank " << c.critical_rank
         << ", elapsed " << us(c.elapsed) << " us, " << c.hops.size()
         << " critical hop(s)";
      for (const CriticalHop& h : c.hops) {
        os << "\n    rank " << h.rank << " <- msg " << h.corr << " from rank "
           << h.from_rank << " (posted " << us(h.post_ts) << ", arrived "
           << us(h.arrival_ts) << ")";
      }
      os << "\n";
    }
    for (const RankOverlap& r : s.ranks) {
      os << "  rank " << r.rank << ": " << r.ops << " op(s), op time "
         << us(r.op_time) << " us, compute-in-op " << us(r.compute_in_op)
         << " us, wire-in-op " << us(r.wire_in_op) << " us, overlap "
         << pct(r.overlap_ratio, 1.0) << ", slack " << us(r.slack) << " us\n";
    }
    if (s.adcl.present) {
      const AdclAudit& a = s.adcl;
      os << "  adcl: winner func " << a.winner << " at iteration "
         << a.decision_iteration << ", score " << us(a.winner_score)
         << " us, margin " << pct(a.margin, 1.0);
      if (a.samples_seen > 0) {
        os << ", filtered " << a.samples_filtered << "/" << a.samples_seen
           << " samples";
      }
      os << "\n";
      for (const AdclScore& sc : a.scores) {
        os << "    iter " << sc.iteration << ": func " << sc.func << " -> "
           << us(sc.score) << " us\n";
      }
      if (a.retunes > 0) {
        os << "    drift re-tunes: " << a.retunes << "\n";
      }
      for (const AdclElimination& el : a.eliminations) {
        os << "    iter " << el.iteration << ": fixed attr " << el.attr
           << "=" << el.value << " (kept func " << el.kept << "), pruned";
        for (int p : el.pruned) os << " " << p;
        os << "\n";
      }
      for (const AdclPrune& p : a.prunes) {
        os << "    iter " << p.iteration << ": guideline-pruned func "
           << p.func;
        if (p.bound > 0.0) {
          os << " (mock-up bound " << us(p.bound) << " us)";
        } else {
          os << " (pre-marked dominated)";
        }
        os << "\n";
      }
    }
    if (s.faults.any()) {
      const FaultSummary& f = s.faults;
      os << "  faults: drops " << f.drops << ", dups " << f.dups
         << ", dup-deliveries " << f.dup_deliveries << ", retransmits "
         << f.retransmits << ", send-failures " << f.send_failures
         << ", fallbacks " << f.fallbacks << ", stragglers " << f.stragglers
         << "\n";
    }
    if (s.recovery.any()) {
      const RecoverySummary& rec = s.recovery;
      os << "  recovery: " << rec.deaths << " death(s), " << rec.epochs
         << " shrink epoch(s), " << rec.rebuilds << " handle rebuild(s), "
         << rec.aborted_ops << " aborted op(s)\n";
      os << "    detection " << us(rec.detection) << " us, agreement "
         << us(rec.agreement) << " us, rebuild " << us(rec.rebuild)
         << " us, time-to-recover " << us(rec.time_to_recover) << " us\n";
    }
    if (s.fibers_created > 0 || s.peak_arena_bytes > 0) {
      os << "  exec: fibers " << s.fibers_created << ", peak arena "
         << s.peak_arena_bytes << " B"
         << (s.fibers_created == 0 ? " (machine mode)" : "") << "\n";
    }
    if (s.truncated()) {
      os << "  TRUNCATED: " << s.dropped_events
         << " event(s) dropped by the trace buffer cap; all numbers above "
            "are lower bounds\n";
    }
  }
  os << "\n== guidelines ==\n";
  for (const GuidelineResult& g : report.guidelines) {
    os << "  [" << g.status() << "] " << g.id << " " << g.description << ": "
       << g.passed << "/" << g.checked << "\n";
    for (const std::string& v : g.violations) {
      os << "    violation: " << v << "\n";
    }
  }
}

}  // namespace nbctune::analyze
