#include "exec/machine_runner.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace nbctune::exec {

MachineRunner::MachineRunner(mpi::World& world, MachineSpec spec)
    : world_(world), engine_(world.engine()), spec_(std::move(spec)) {
  if (!spec_.make_request) {
    throw std::invalid_argument("MachineRunner: no make_request");
  }
  const auto n = static_cast<std::size_t>(world_.size());
  sms_.resize(n);
  ranks_.resize(n);
  world_.launch_machine(*this);
}

MachineRunner::~MachineRunner() = default;

std::size_t MachineRunner::arena_bytes() const noexcept {
  return sms_.capacity() * sizeof(RankSM);
}

void MachineRunner::start() {
  // Rank order 0..N-1, like Engine::launch_pending() starts fibers.
  for (int w = 0; w < world_.size(); ++w) run(w);
}

void MachineRunner::check_finished() const {
  for (std::size_t w = 0; w < sms_.size(); ++w) {
    if (!sms_[w].finished) {
      throw sim::Engine::DeadlockError(
          "simulated deadlock: event queue empty but machine-mode rank " +
          std::to_string(w) + " has not completed its loop");
    }
  }
}

void MachineRunner::on_wake(int wrank) {
  // Byte-for-byte replica of sim::Process::wake().
  RankSM& sm = sms_[wrank];
  if (sm.running || sm.finished) return;
  if (!sm.suspended) {
    // Sleeping (a charge/compute resume is queued) or mid-phase: remember
    // the wake so the next suspend point returns immediately.
    sm.wake_pending = true;
    return;
  }
  if (sm.wake_pending) return;  // a resume event is already queued
  sm.wake_pending = true;
  engine_.schedule_after(0.0, [this, wrank] {
    RankSM& s = sms_[wrank];
    if (s.suspended) {
      s.wake_pending = false;
      s.suspended = false;
      run(wrank);
    }
    // No longer suspended (e.g. finished meanwhile): drop the wake.
  });
}

void MachineRunner::run(int w) {
  RankSM& sm = sms_[w];
  sm.running = true;
  while (step(w)) {
  }
  sm.running = false;
}

bool MachineRunner::block_sleep(int w, double dt) {
  // sim::Process::sleep semantics.
  if (dt < 0) throw std::invalid_argument("machine sleep: negative dt");
  if (dt == 0) return false;
  engine_.schedule_after(dt, [this, w] { run(w); });
  return true;
}

bool MachineRunner::block_charge(int w, double cost) {
  // Ctx::charge semantics: no-op for non-positive costs, jittered sleep
  // otherwise (the jitter draw happens iff the fiber path would draw).
  if (cost <= 0.0) return false;
  return block_sleep(w, world_.jitter(w, cost));
}

bool MachineRunner::step(int w) {
  RankSM& sm = sms_[w];
  Rank& rk = ranks_[w];
  mpi::Ctx& ctx = world_.rank_ctx(w);
  switch (sm.phase) {
    case Phase::Setup: {
      rk.req = spec_.make_request(ctx, rk.sbuf, rk.rbuf);
      rk.timer = std::make_unique<adcl::Timer>(
          ctx, std::vector<adcl::Request*>{rk.req.get()});
      sm.t0 = ctx.now();
      sm.phase = Phase::IterStart;
      return true;
    }

    case Phase::IterStart: {
      if (sm.iter >= spec_.iterations) {
        sm.phase = Phase::Finish;
        return true;
      }
      sm.decided_before = rk.req->selection().decided();
      rk.timer->start();
      rk.handle = rk.req->init_begin();
      const double cost = rk.handle->start_begin();
      if (rk.handle->done()) {
        // Empty schedule: completed inside start_begin, nothing charged.
        sm.phase = Phase::AfterInit;
        return true;
      }
      sm.phase = Phase::StartCascade;
      return !block_charge(w, cost);
    }

    case Phase::StartCascade: {
      const double extra = rk.handle->start_cascade();
      sm.phase = Phase::StartFinish;
      return !block_charge(w, extra);
    }

    case Phase::StartFinish: {
      rk.handle->start_finish();
      sm.phase = Phase::AfterInit;
      return true;
    }

    case Phase::AfterInit: {
      if (rk.req->bound_blocking()) {
        // Blocking function-set member: the fiber path waits inside
        // init(); the wait loop always runs at least one progress pass.
        sm.wait_ret = Phase::ComputeStep;
        sm.pc_idx = 0;
        sm.phase = Phase::WaitPass;
      } else {
        sm.pc_idx = 0;
        sm.phase = Phase::ComputeStep;
      }
      return true;
    }

    case Phase::ComputeStep: {
      const int pc = spec_.progress_calls > 1 ? spec_.progress_calls : 1;
      if (sm.pc_idx >= pc) {
        // req->wait(): the handle wait loop, then wait_finish at IterEnd.
        sm.wait_ret = Phase::IterEnd;
        sm.phase = Phase::WaitPass;
        return true;
      }
      const double per = spec_.compute_per_iter / pc;
      if (per < 0.0) throw std::invalid_argument("compute: negative time");
      if (per == 0.0) {
        // Ctx::compute(0) returns without draws or a span.
        sm.phase = Phase::ComputeDone;
        sm.compute_t0 = ctx.now();
        return true;
      }
      const double t = ctx.compute_cost(per);
      sm.compute_t0 = ctx.now();
      sm.phase = Phase::ComputeDone;
      return !block_sleep(w, t);
    }

    case Phase::ComputeDone: {
      const double per =
          spec_.compute_per_iter /
          (spec_.progress_calls > 1 ? spec_.progress_calls : 1);
      if (per > 0.0 && trace::active()) {
        trace::span(sm.compute_t0, ctx.now() - sm.compute_t0, w,
                    trace::Cat::Progress, "compute");
      }
      if (spec_.progress_calls > 0) {
        rk.req->note_progress();
        sm.pass_t0 = ctx.now();
        sm.pass_cost = ctx.progress_work(true);
        sm.phase = Phase::ProgressDone;
        return !block_charge(w, sm.pass_cost);
      }
      ++sm.pc_idx;
      sm.phase = Phase::ComputeStep;
      return true;
    }

    case Phase::ProgressDone: {
      if (sm.pass_cost > 0.0 && trace::active()) {
        trace::span(sm.pass_t0, ctx.now() - sm.pass_t0, w,
                    trace::Cat::Progress, "progress.call");
      }
      ++sm.pc_idx;
      sm.phase = Phase::ComputeStep;
      return true;
    }

    case Phase::WaitPass: {
      sm.pass_t0 = ctx.now();
      sm.pass_cost = ctx.progress_work(false);
      sm.phase = Phase::WaitCheck;
      return !block_charge(w, sm.pass_cost);
    }

    case Phase::WaitCheck: {
      if (sm.pass_cost > 0.0 && trace::active()) {
        trace::span(sm.pass_t0, ctx.now() - sm.pass_t0, w,
                    trace::Cat::Progress, "progress.pass");
      }
      if (rk.handle->done()) {
        sm.phase = sm.wait_ret;
        return true;
      }
      // sim::Process::suspend(): consume a pending wake, else block until
      // on_wake schedules the resume.
      sm.phase = Phase::WaitPass;
      if (sm.wake_pending) {
        sm.wake_pending = false;
        return true;
      }
      sm.suspended = true;
      return false;
    }

    case Phase::IterEnd: {
      rk.req->wait_finish();
      rk.timer->stop();
      if (sm.decided_before) ++sm.post_iters;
      ++sm.iter;
      sm.phase = Phase::IterStart;
      return true;
    }

    case Phase::Finish: {
      const double t_end = ctx.now();
      if (w == 0) {
        auto& sel = rk.req->selection();
        const double decision_t =
            sel.decided() ? sel.decision_time()
                          : std::numeric_limits<double>::quiet_NaN();
        outcome_.loop_time = t_end - sm.t0;
        outcome_.impl =
            sel.decided() ? rk.req->current_function().name : "<undecided>";
        outcome_.decision_iteration = sel.decision_iteration();
        outcome_.decision_time = decision_t;
        outcome_.post_decision_iterations = sm.post_iters;
        outcome_.post_decision_time =
            std::isnan(decision_t)
                ? 0.0
                : t_end - (decision_t > sm.t0 ? decision_t : sm.t0);
      }
      sm.finished = true;
      return false;
    }
  }
  return false;  // unreachable
}

}  // namespace nbctune::exec
