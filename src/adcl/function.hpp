#pragma once

// Functions and function-sets (paper §III-C): a function-set is one
// communication operation; a function is one concrete implementation of
// it, optionally characterized by attribute values.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "adcl/attribute.hpp"
#include "mpi/comm.hpp"
#include "mpi/types.hpp"
#include "mpi/world.hpp"
#include "nbc/schedule.hpp"

namespace nbctune::adcl {

/// The persistent operation arguments a request binds a function-set to.
/// Interpretation is per operation (alltoall uses sbuf/rbuf/block; bcast
/// uses rbuf/bytes/root; reduce adds count/dtype/op).
struct OpArgs {
  mpi::Comm comm;
  const void* sbuf = nullptr;
  void* rbuf = nullptr;
  std::size_t bytes = 0;  ///< per-block bytes (alltoall/allgather) or total
  int root = 0;
  std::size_t count = 0;  ///< reduction element count
  nbc::DType dtype = nbc::DType::F64;
  mpi::ReduceOp op = mpi::ReduceOp::Sum;
};

/// One implementation of the operation.
struct Function {
  std::string name;
  /// Attribute values, parallel to the function-set's AttributeSet.
  std::vector<int> attrs;
  /// Blocking implementations have no completion phase: executing them
  /// runs to completion inside Request::init() and the wait function
  /// pointer is conceptually NULL (paper §III-E / §IV-B).
  bool blocking = false;
  /// Build this implementation's schedule for the bound arguments on the
  /// calling rank.  The schedule references args' buffers directly.
  std::function<nbc::Schedule(mpi::Ctx&, const OpArgs&)> build;
};

/// A communication operation together with all its implementations.
class FunctionSet {
 public:
  FunctionSet() = default;
  FunctionSet(std::string name, AttributeSet attrs,
              std::vector<Function> functions)
      : name_(std::move(name)),
        attrs_(std::move(attrs)),
        functions_(std::move(functions)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const AttributeSet& attributes() const noexcept {
    return attrs_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return functions_.size(); }
  [[nodiscard]] const Function& function(std::size_t i) const {
    return functions_.at(i);
  }
  [[nodiscard]] const std::vector<Function>& functions() const noexcept {
    return functions_;
  }

  /// Index of the function with exactly these attribute values, or -1.
  [[nodiscard]] int find_by_attrs(const std::vector<int>& attrs) const {
    for (std::size_t i = 0; i < functions_.size(); ++i) {
      if (functions_[i].attrs == attrs) return static_cast<int>(i);
    }
    return -1;
  }

  /// Index of the function with this name, or -1.
  [[nodiscard]] int find_by_name(const std::string& name) const {
    for (std::size_t i = 0; i < functions_.size(); ++i) {
      if (functions_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Register an additional implementation (the low-level user API the
  /// paper mentions: applications can add their own functions and reuse
  /// the ADCL selection logic).
  void add(Function f) { functions_.push_back(std::move(f)); }

 private:
  std::string name_;
  AttributeSet attrs_;
  std::vector<Function> functions_;
};

}  // namespace nbctune::adcl
