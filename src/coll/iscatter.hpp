#pragma once

// Non-blocking scatter schedules.
//
// Scatter is the multi-rail showcase: the root injects n-1 independent
// blocks, so its NIC(s) are the bottleneck.  The variants differ only in
// how root-side sends map onto NIC rails:
//
//   linear   transport default (per-peer spread; Machine::nic_for)
//   fan      every send pinned to ONE rail — models a naive implementation
//            that binds the communicator to a single HCA and chokes on it
//   rail     whole blocks round-robined across rails (destination d on
//            rail d mod R)
//   striped  every block split into per-rail stripes (Topology::
//            plan_stripes), so even a single large block uses all rails
//
// Root's `sbuf` holds n blocks of `bytes`; every rank receives its block
// in `rbuf` (the root by local copy).

#include <cstddef>
#include <vector>

#include "nbc/schedule.hpp"
#include "net/topology.hpp"

namespace nbctune::coll {

/// Flat scatter on the transport's default rail spreading.
nbc::Schedule build_iscatter_linear(int me, int n, const void* sbuf,
                                    void* rbuf, std::size_t bytes, int root);

/// Flat scatter with every transfer pinned to `rail` (single-HCA fan).
nbc::Schedule build_iscatter_fan(int me, int n, const void* sbuf, void* rbuf,
                                 std::size_t bytes, int root, int rail);

/// Whole destination blocks round-robined across `nrails` rails.
nbc::Schedule build_iscatter_rail(int me, int n, const void* sbuf, void* rbuf,
                                  std::size_t bytes, int root, int nrails);

/// Each block split into the given stripes (offset/length/rail triples,
/// normally Topology::plan_stripes(bytes)); stripes must tile `bytes`.
nbc::Schedule build_iscatter_striped(int me, int n, const void* sbuf,
                                     void* rbuf, std::size_t bytes, int root,
                                     const std::vector<net::Stripe>& stripes);

}  // namespace nbctune::coll
