file(REMOVE_RECURSE
  "CMakeFiles/historic_learning.dir/historic_learning.cpp.o"
  "CMakeFiles/historic_learning.dir/historic_learning.cpp.o.d"
  "historic_learning"
  "historic_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/historic_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
