// Figure 9: 3-D FFT application kernel, LibNBC vs ADCL, on crill with
// 160 and 500 processes, for the four overlap patterns.
//
// Expected shape (paper §IV-B-e): ADCL at or below LibNBC in the large
// majority of cases — LibNBC is pinned to its default linear algorithm,
// ADCL picks per scenario.  Where linear happens to be optimal, ADCL pays
// only its learning-phase overhead.

#include "fft_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::bench;

int main(int argc, char** argv) {
  Driver drv("fig9", argc, argv);
  adcl::TuningOptions tuning;
  tuning.tests_per_function = drv.full() ? 3 : 2;
  const int iters = 3 * tuning.tests_per_function + (drv.full() ? 16 : 9);

  struct Case {
    int nprocs;
    int grid_n;  // N = 8P: eight planes per rank, so the four overlap
                 // patterns genuinely differ (see fft3d.hpp)
  };
  std::vector<Case> cases = {{96, 768}, {160, 1280}};
  if (drv.full()) cases.push_back({500, 4000});  // paper scale

  // One pool task per (case, pattern, backend) run.
  struct Unit {
    Case c;
    fft::Pattern pattern;
    bool adcl;
  };
  std::vector<Unit> units;
  for (const Case& c : cases) {
    for (fft::Pattern p : kAllPatterns) {
      units.push_back({c, p, false});
      units.push_back({c, p, true});
    }
  }
  std::vector<FftRun> results(units.size());
  {
    auto timer = drv.timer();
    drv.pool().run_indexed(units.size(), [&](std::size_t i) {
      const Unit& u = units[i];
      results[i] = u.adcl
                       ? run_fft(net::crill(), u.c.nprocs, u.c.grid_n,
                                 u.pattern, fft::Backend::Adcl, iters, tuning)
                       : run_fft(net::crill(), u.c.nprocs, u.c.grid_n,
                                 u.pattern, fft::Backend::LibNBC, iters);
    });
  }

  std::size_t unit = 0;
  for (const Case& c : cases) {
    harness::banner("Fig 9: 3-D FFT, LibNBC vs ADCL — crill, " +
                    std::to_string(c.nprocs) + " procs, N=" +
                    std::to_string(c.grid_n));
    harness::Table t({"pattern", "LibNBC[s]", "ADCL[s]", "ADCL/LibNBC",
                      "ADCL winner"});
    for (fft::Pattern p : kAllPatterns) {
      const FftRun nbc = results[unit++];
      const FftRun ad = results[unit++];
      t.add_row({fft::pattern_name(p), harness::Table::num(nbc.total_time),
                 harness::Table::num(ad.total_time),
                 harness::Table::num(ad.total_time / nbc.total_time, 3),
                 ad.winner});
    }
    t.print();
  }
  std::cout << "\nExpected: ADCL/LibNBC <= ~1.0 in most rows (paper: ADCL "
               "faster in 74% of all FFT tests).\n";
  return 0;
}
