#include "sim/random.hpp"

#include <cmath>

namespace nbctune::sim {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  have_cached_ = false;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::normal() noexcept {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  double u1 = uniform();
  double u2 = uniform();
  // Avoid log(0).
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_ = r * std::sin(theta);
  have_cached_ = true;
  return r * std::cos(theta);
}

}  // namespace nbctune::sim
