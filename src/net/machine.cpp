#include "net/machine.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "trace/trace.hpp"

namespace nbctune::net {

Machine::Machine(Platform platform) : platform_(std::move(platform)) {
  if (platform_.nodes <= 0 || platform_.nics_per_node <= 0) {
    throw std::invalid_argument("Machine: platform must have nodes and NICs");
  }
  tx_.resize(platform_.nodes);
  rx_.resize(platform_.nodes);
  mem_.reserve(platform_.nodes);
  for (int n = 0; n < platform_.nodes; ++n) {
    for (int i = 0; i < platform_.nics_per_node; ++i) {
      tx_[n].emplace_back("tx:" + std::to_string(n) + ":" + std::to_string(i));
      rx_[n].emplace_back("rx:" + std::to_string(n) + ":" + std::to_string(i));
    }
    mem_.emplace_back("mem:" + std::to_string(n));
  }
  inflight_.assign(platform_.nodes, 0);
}

sim::Resource& Machine::nic_tx(int node, int nic) { return tx_.at(node).at(nic); }
sim::Resource& Machine::nic_rx(int node, int nic) { return rx_.at(node).at(nic); }
sim::Resource& Machine::mem(int node) { return mem_.at(node); }

namespace {
// Emit the serialization interval on the node's wire track.  Injection
// sides (tx / mem) also account the payload bytes; receive sides do not,
// so each transfer is counted once.
void trace_slot(int node, const sim::Resource::Slot& slot, const char* what,
                std::uint64_t bytes, bool injects, std::uint64_t corr) {
  if (!trace::active()) return;
  trace::span(slot.start, slot.end - slot.start, trace::wire_track(node),
              trace::Cat::Wire, what, "bytes", bytes, nullptr, 0, corr);
  if (injects) {
    trace::count(trace::Ctr::BytesOnWire, bytes);
    trace::record(trace::Hist::WireBytes, bytes);
  }
}
}  // namespace

sim::Resource::Slot Machine::reserve_tx(int node, int nic, double earliest,
                                        double seconds, const char* what,
                                        std::uint64_t bytes,
                                        std::uint64_t corr) {
  const auto slot = nic_tx(node, nic).reserve(earliest, seconds);
  trace_slot(node, slot, what, bytes, /*injects=*/true, corr);
  return slot;
}

sim::Resource::Slot Machine::reserve_rx(int node, int nic, double earliest,
                                        double seconds, const char* what,
                                        std::uint64_t bytes,
                                        std::uint64_t corr) {
  const auto slot = nic_rx(node, nic).reserve(earliest, seconds);
  trace_slot(node, slot, what, bytes, /*injects=*/false, corr);
  return slot;
}

sim::Resource::Slot Machine::reserve_mem(int node, double earliest,
                                         double seconds, const char* what,
                                         std::uint64_t bytes,
                                         std::uint64_t corr) {
  const auto slot = mem(node).reserve(earliest, seconds);
  trace_slot(node, slot, what, bytes, /*injects=*/true, corr);
  return slot;
}

int Machine::nic_for(int node, int peer_node) const noexcept {
  (void)node;
  return peer_node % platform_.nics_per_node;
}

namespace {
int ring_distance(int a, int b, int dim) noexcept {
  const int d = std::abs(a - b);
  return std::min(d, dim - d);
}
}  // namespace

int Machine::torus_hops(int node_a, int node_b) const noexcept {
  if (platform_.torus_x <= 0 || node_a == node_b) return 0;
  // Degenerate axes (declared 0 or negative alongside torus_x > 0) are
  // 1-wide rings: every coordinate is 0 and the axis contributes no hops.
  const int tx = platform_.torus_x;
  const int ty = platform_.torus_y > 0 ? platform_.torus_y : 1;
  const int tz = platform_.torus_z > 0 ? platform_.torus_z : 1;
  const int zplane = tx * ty;
  // Every coordinate is reduced modulo its own axis extent, so node ids
  // beyond tx*ty*tz wrap around the torus instead of producing
  // out-of-range coordinates (which made ring_distance go negative).
  const int ax = node_a % tx, ay = (node_a / tx) % ty,
            az = (node_a / zplane) % tz;
  const int bx = node_b % tx, by = (node_b / tx) % ty,
            bz = (node_b / zplane) % tz;
  return ring_distance(ax, bx, tx) + ring_distance(ay, by, ty) +
         ring_distance(az, bz, tz);
}

double Machine::latency(int node_a, int node_b) const noexcept {
  if (node_a == node_b) return platform_.intra.latency;
  double l = platform_.inter.latency +
             platform_.hop_latency * torus_hops(node_a, node_b);
  if (platform_.rack_extra_latency > 0 &&
      topology_.rack_of(node_a) != topology_.rack_of(node_b)) {
    l += platform_.rack_extra_latency;
  }
  return l;
}

void Machine::reset() {
  for (auto& node : tx_)
    for (auto& r : node) r.reset();
  for (auto& node : rx_)
    for (auto& r : node) r.reset();
  for (auto& r : mem_) r.reset();
  inflight_.assign(platform_.nodes, 0);
}

}  // namespace nbctune::net
