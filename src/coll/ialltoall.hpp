#pragma once

// Non-blocking all-to-all schedules: the three algorithms of the paper's
// Ialltoall function-set.
//
//   linear        one round, all (n-1) sends and receives posted at once;
//                 minimal data volume, floods the NICs, but needs only a
//                 single progress call once posted (NIC-driven networks)
//   dissemination Bruck's algorithm: ceil(log2 n) rounds of aggregated
//                 blocks; few messages (wins for small payloads) at the
//                 cost of log2(n)/2 times the data volume (loses for big)
//   pairwise      n-1 ordered exchange rounds; contention-free structured
//                 traffic, but one round per progress invocation
//
// Buffers: sbuf/rbuf hold n consecutive blocks of `block` bytes; block i
// of sbuf is destined for rank i, block i of rbuf receives from rank i.

#include <cstddef>

#include "nbc/schedule.hpp"

namespace nbctune::coll {

nbc::Schedule build_ialltoall_linear(int me, int n, const void* sbuf,
                                     void* rbuf, std::size_t block);

nbc::Schedule build_ialltoall_pairwise(int me, int n, const void* sbuf,
                                       void* rbuf, std::size_t block);

nbc::Schedule build_ialltoall_bruck(int me, int n, const void* sbuf,
                                    void* rbuf, std::size_t block);

}  // namespace nbctune::coll
