#pragma once

// Profile exporters: turn the analyzer's per-op blame partitions into
// standard profiling formats, so the simulated critical path can be
// explored with the same tools used on real profiles.
//
//   * write_collapsed — Brendan Gregg collapsed-stack lines
//     (`scenario;rank;op;phase weight`), pipe into flamegraph.pl or any
//     "folded stacks" consumer.  Weights are the blame components of
//     each op instance's critical rank, in simulated nanoseconds.
//   * write_speedscope — a speedscope JSON file (speedscope.app /
//     `npx speedscope`), one "sampled" profile per scenario sharing one
//     frame table.  The sum of a profile's weights equals the sum of
//     that scenario's blame partitions exactly (both sides llround each
//     component independently).
//   * write_otlp — an OTLP/JSON ExportTraceServiceRequest mapping every
//     rank-track and wire-track span to an OTLP span (one trace id per
//     scenario, deterministic ids).  Hand-written serialization: the
//     container has no OTLP SDK, and none is needed for the JSON
//     encoding.  Gated by the NBCTUNE_OTLP build option; when built out,
//     otlp_enabled() is false and write_otlp writes nothing.
//
// All three are deterministic functions of their inputs (the analyzer
// report / trace IR), so they inherit the any-thread-count
// byte-identity of the analysis itself.

#include <iosfwd>
#include <vector>

#include "analyze/analyze.hpp"

namespace nbctune::obs {

/// Collapsed-stack lines: `<label>;rank:<R>;op:<corr>;<phase> <ns>` with
/// spaces in the scenario label folded to '_' (frames must be
/// space-free; the weight is the last space-separated token).  Zero
/// components are skipped.
void write_collapsed(std::ostream& os, const analyze::Report& report);

/// Speedscope file: shared frame table, one sampled profile per
/// scenario, unit nanoseconds.
void write_speedscope(std::ostream& os, const analyze::Report& report);

/// Sum of every weight the two exporters above emit for `report` —
/// by construction the llround'ed blame-partition total.
[[nodiscard]] long long profile_total_weight_ns(const analyze::Report& report);

/// True when the build carries the OTLP exporter (NBCTUNE_OTLP=ON).
[[nodiscard]] bool otlp_enabled() noexcept;

/// OTLP/JSON ExportTraceServiceRequest over every span event: one
/// resourceSpans entry, one scopeSpans per scenario (scope name = the
/// scenario label), spans carrying track/cat/corr attributes.  No-op
/// when otlp_enabled() is false.
void write_otlp(std::ostream& os,
                const std::vector<analyze::ScenarioTrace>& traces);

}  // namespace nbctune::obs
