file(REMOVE_RECURSE
  "libnbctune_harness.a"
)
