# Empty compiler generated dependencies file for test_adcl_ext.
# This may be replaced when dependencies are built.
