# Empty dependencies file for test_coll_ext.
# This may be replaced when dependencies are built.
