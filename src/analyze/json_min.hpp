#pragma once

// A deliberately small recursive-descent JSON parser: no external
// dependencies are allowed in this repo, and every input is our own
// exporter's output (Chrome trace-event files, report JSONs), so only
// the core grammar is needed — objects, arrays, strings with backslash
// escapes, numbers, true/false/null.  Shared by the Chrome-trace reader
// (chrome_reader.cpp) and the report reader of the --regress mode
// (regress.cpp).

#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace nbctune::analyze::jsonmin {

struct Value;
using Object = std::vector<std::pair<std::string, Value>>;  // keeps order
using Array = std::vector<Value>;

struct Value {
  enum class Kind { Null, Bool, Num, Str, Arr, Obj } kind = Kind::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::shared_ptr<Array> arr;
  std::shared_ptr<Object> obj;

  [[nodiscard]] const Value* get(const std::string& key) const {
    if (kind != Kind::Obj || !obj) return nullptr;
    for (const auto& [k, v] : *obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] double as_num(double fallback = 0.0) const {
    return kind == Kind::Num ? num : fallback;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::Str;
        v.str = string();
        return v;
      }
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return Value{};
      default:
        return number();
    }
  }

  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  Value boolean() {
    Value v;
    v.kind = Value::Kind::Bool;
    if (peek() == 't') {
      literal("true");
      v.b = true;
    } else {
      literal("false");
    }
    return v;
  }

  Value number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a number");
    Value v;
    v.kind = Value::Kind::Num;
    v.num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          default:
            out += e;  // \" \\ \/ and anything exotic: literal
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Arr;
    v.arr = std::make_shared<Array>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr->push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected , or ] in array");
    }
    return v;
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Obj;
    v.obj = std::make_shared<Object>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj->emplace_back(std::move(key), value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected , or } in object");
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace nbctune::analyze::jsonmin
