#pragma once

// Non-blocking Cartesian neighborhood (halo) exchange.
//
// ADCL's original application domain (paper §III-A lists "Cartesian
// neighborhood communication" first among the supported operations):
// every process sits in a d-dimensional process grid and exchanges a halo
// block with each of its 2d face neighbours.  The classic implementation
// choices differ in how the per-dimension traffic is ordered:
//
//   all-at-once        post all 2d sends/receives in one round; maximal
//                      concurrency, maximal contention
//   dimension-ordered  complete dimension 0's exchange before dimension 1
//                      (the structure stencil codes use)
//   even-odd           per dimension, even-coordinate ranks send first,
//                      odd ranks receive first (contention-free pairing)
//
// Buffer layout: sbuf/rbuf hold 2*ndims consecutive blocks of `block`
// bytes, ordered (dim0,low), (dim0,high), (dim1,low), (dim1,high), ...
// Missing neighbours (non-periodic boundaries) skip their block.

#include <cstddef>
#include <vector>

#include "nbc/schedule.hpp"

namespace nbctune::coll {

/// A Cartesian process grid.
struct CartTopo {
  std::vector<int> dims;
  bool periodic = true;

  [[nodiscard]] int ndims() const noexcept {
    return static_cast<int>(dims.size());
  }
  [[nodiscard]] int size() const noexcept {
    int n = 1;
    for (int d : dims) n *= d;
    return n;
  }
};

/// Row-major coordinates of a rank in the grid.
std::vector<int> cart_coords(const CartTopo& topo, int rank);
/// Rank of coordinates (each must be in range).
int cart_rank(const CartTopo& topo, const std::vector<int>& coords);
/// Neighbour of `rank` displaced by `disp` (+1/-1) along `dim`, or -1 at
/// a non-periodic boundary.
int cart_neighbor(const CartTopo& topo, int rank, int dim, int disp);

nbc::Schedule build_ineighbor_all_at_once(const CartTopo& topo, int me,
                                          const void* sbuf, void* rbuf,
                                          std::size_t block);

nbc::Schedule build_ineighbor_dimension_ordered(const CartTopo& topo, int me,
                                                const void* sbuf, void* rbuf,
                                                std::size_t block);

nbc::Schedule build_ineighbor_even_odd(const CartTopo& topo, int me,
                                       const void* sbuf, void* rbuf,
                                       std::size_t block);

}  // namespace nbctune::coll
