# Empty dependencies file for test_adcl_request.
# This may be replaced when dependencies are built.
