#pragma once

// Fiberless (machine-mode) execution of the micro-benchmark loop.
//
// Fiber mode runs every rank's loop on its own ucontext stack and blocks by
// yielding; stack memory and context-switch cost cap worlds at ~1k ranks.
// Machine mode runs the same loop as an explicit per-rank state machine
// advanced in place by sim::Engine events: each blocking point of the fiber
// program (charge, compute sleep, suspend-until-wake) becomes a phase
// transition, and transport wakeups dispatch to on_wake() instead of
// Process::wake().  Per-rank progress state lives in one flat contiguous
// arena, so a pure-collective scenario needs zero fibers and memory scales
// to 100k+ ranks.
//
// The runner replicates the fiber blocking protocol bit for bit — the same
// Ctx/Handle/Request code performs all work, RNG draws, and trace emission,
// so both modes produce identical event streams and timings wherever both
// can run.  Machine mode is restricted to pinned (forced-winner) runs: the
// tuner's undecided-path decision allreduce and timeout/drift recovery are
// blocking control flows that still need fibers.

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "adcl/request.hpp"
#include "mpi/world.hpp"

namespace nbctune::exec {

/// Result of the loop (mirrors harness::RunOutcome; rank 0's view).
struct Outcome {
  std::string impl;
  double loop_time = 0.0;
  int decision_iteration = -1;
  double decision_time = std::numeric_limits<double>::quiet_NaN();
  double post_decision_time = 0.0;
  int post_decision_iterations = 0;
};

/// What every rank executes (the harness micro-benchmark loop shape).
struct MachineSpec {
  /// Build the rank's persistent request (buffers owned by the runner so
  /// they outlive the iterations); force the winner here for pinned runs.
  std::function<std::unique_ptr<adcl::Request>(
      mpi::Ctx&, std::vector<std::byte>& sbuf, std::vector<std::byte>& rbuf)>
      make_request;
  double compute_per_iter = 0.0;
  int iterations = 1;
  int progress_calls = 0;
};

class MachineRunner final : public mpi::MachineDriver {
 public:
  /// Calls world.launch_machine(*this); the runner must outlive engine.run().
  MachineRunner(mpi::World& world, MachineSpec spec);
  ~MachineRunner() override;

  MachineRunner(const MachineRunner&) = delete;
  MachineRunner& operator=(const MachineRunner&) = delete;

  /// Run every rank's state machine up to its first blocking point, in
  /// rank order (the fiberless analogue of Engine::launch_pending()).
  /// Call engine.run() afterwards, then check_finished().
  void start();

  /// MachineDriver: a transport event wants this rank to make progress.
  void on_wake(int wrank) override;

  /// Throws if any rank's loop did not run to completion (the machine-mode
  /// analogue of the engine's fiber deadlock check).
  void check_finished() const;

  [[nodiscard]] const Outcome& outcome() const noexcept { return outcome_; }

  /// Flat per-rank state-machine arena footprint (diagnostics).
  [[nodiscard]] std::size_t arena_bytes() const noexcept;

 private:
  /// Continuation points of the fiber program.  Every phase entry is a spot
  /// where the fiber version would resume after blocking (or fall through
  /// synchronously when the modeled cost is zero).
  enum class Phase : std::uint8_t {
    Setup,         // build request/timer, stamp loop t0
    IterStart,     // timer.start + init_begin + handle start_begin
    StartCascade,  // after charging round-0 cost
    StartFinish,   // after charging the cascade cost
    AfterInit,     // blocking members enter the wait loop here
    ComputeStep,   // next compute slice (or enter the request wait loop)
    ComputeDone,   // after the compute sleep: emit the span
    ProgressDone,  // after charging an explicit progress call
    WaitPass,      // wait loop: run one progress pass
    WaitCheck,     // after charging the pass: span, predicate, suspend
    IterEnd,       // wait_finish + timer.stop, next iteration
    Finish,        // loop complete: fill the outcome on rank 0
  };

  /// Flat POD progress state, one slot per rank (the per-rank arena).
  struct RankSM {
    Phase phase = Phase::Setup;
    Phase wait_ret = Phase::IterEnd;  // where the wait loop returns to
    // Blocking-protocol state, mirroring sim::Process exactly.
    bool running = false;
    bool suspended = false;
    bool wake_pending = false;
    bool finished = false;
    bool decided_before = false;
    int iter = 0;
    int pc_idx = 0;
    int post_iters = 0;
    double t0 = 0.0;          // loop start (after setup)
    double compute_t0 = 0.0;  // current compute slice start
    double pass_t0 = 0.0;     // current progress pass start
    double pass_cost = 0.0;   // its cost (span emitted only when > 0)
  };

  /// Per-rank objects with identity (heap-owning, parallel to the arena).
  struct Rank {
    std::vector<std::byte> sbuf, rbuf;
    std::unique_ptr<adcl::Request> req;
    std::unique_ptr<adcl::Timer> timer;
    nbc::Handle* handle = nullptr;
  };

  /// Advance rank `w` until it blocks or finishes (Process::run_slice).
  void run(int w);
  /// Execute the current phase; returns false when the rank blocked.
  bool step(int w);

  /// Process::sleep equivalent: false = continue synchronously (dt == 0),
  /// true = resume event scheduled.  The caller has already set the phase
  /// to the continuation point.
  bool block_sleep(int w, double dt);
  /// Ctx::charge equivalent (applies jitter to a positive cost).
  bool block_charge(int w, double cost);

  mpi::World& world_;
  sim::Engine& engine_;
  MachineSpec spec_;
  std::vector<RankSM> sms_;
  std::vector<Rank> ranks_;
  Outcome outcome_;
};

}  // namespace nbctune::exec
