// Low-level API example (paper §III-A): applications can register their
// own implementations of an operation and reuse the ADCL selection logic,
// statistical filtering, and timer machinery.
//
// Here we build a custom "neighbor halo exchange" function-set with three
// hand-written schedules — ordered, chaotic, and staged — and let the
// tuner pick.

#include <cstdio>
#include <vector>

#include "adcl/adcl.hpp"
#include "mpi/world.hpp"
#include "net/machine.hpp"
#include "net/platform.hpp"
#include "sim/engine.hpp"

using namespace nbctune;

namespace {

// A 1-D halo exchange: every rank sends `halo` bytes to both ring
// neighbours.  Three implementations with different round structures.
nbc::Schedule build_halo(int me, int n, const void* sbuf, void* rbuf,
                         std::size_t halo, int flavor) {
  nbc::Schedule s;
  const int left = (me - 1 + n) % n;
  const int right = (me + 1) % n;
  auto* r = static_cast<std::byte*>(rbuf);
  auto rb = [&](int i) { return r == nullptr ? nullptr : r + i * halo; };
  switch (flavor) {
    case 0:  // both directions at once, single round
      s.recv(rb(0), halo, left);
      s.recv(rb(1), halo, right);
      s.send(sbuf, halo, right);
      s.send(sbuf, halo, left);
      break;
    case 1:  // staged: first rightward shift, then leftward
      s.recv(rb(0), halo, left);
      s.send(sbuf, halo, right);
      s.barrier();
      s.recv(rb(1), halo, right);
      s.send(sbuf, halo, left);
      break;
    case 2:  // even/odd pairing (contention-free on shared nodes)
      if (me % 2 == 0) {
        s.send(sbuf, halo, right);
        s.recv(rb(1), halo, right);
        s.barrier();
        s.send(sbuf, halo, left);
        s.recv(rb(0), halo, left);
      } else {
        s.recv(rb(0), halo, left);
        s.send(sbuf, halo, left);
        s.barrier();
        s.recv(rb(1), halo, right);
        s.send(sbuf, halo, right);
      }
      break;
  }
  s.finalize();
  return s;
}

std::shared_ptr<adcl::FunctionSet> make_halo_functionset() {
  adcl::AttributeSet attrs{{{"flavor", {0, 1, 2}}}};
  std::vector<adcl::Function> fns;
  const char* names[] = {"eager-both", "staged", "even-odd"};
  for (int flavor = 0; flavor < 3; ++flavor) {
    adcl::Function f;
    f.name = names[flavor];
    f.attrs = {flavor};
    f.build = [flavor](mpi::Ctx& ctx, const adcl::OpArgs& a) {
      const int me = a.comm.rank_of_world(ctx.world_rank());
      return build_halo(me, a.comm.size(), a.sbuf, a.rbuf, a.bytes, flavor);
    };
    fns.push_back(std::move(f));
  }
  return std::make_shared<adcl::FunctionSet>("halo1d", std::move(attrs),
                                             std::move(fns));
}

}  // namespace

int main() {
  sim::Engine engine(11);
  net::Machine machine(net::crill());
  mpi::WorldOptions options;
  options.nprocs = 48;  // one fat crill node
  mpi::World world(engine, machine, options);

  world.launch([](mpi::Ctx& ctx) {
    const auto comm = ctx.world().comm_world();
    const std::size_t halo = 256 * 1024;
    std::vector<std::byte> sbuf(halo), rbuf(2 * halo);

    adcl::OpArgs args;
    args.comm = comm;
    args.sbuf = sbuf.data();
    args.rbuf = rbuf.data();
    args.bytes = halo;

    adcl::TuningOptions opts;
    opts.tests_per_function = 4;
    auto req = adcl::request_create(ctx, make_halo_functionset(), args, opts);

    for (int it = 0; it < 16; ++it) {
      req->init();
      ctx.compute(2e-3);
      req->progress();
      req->wait();
    }
    if (ctx.world_rank() == 0) {
      std::printf("halo exchange winner on %s: %s\n",
                  ctx.world().platform().name.c_str(),
                  req->current_function().name.c_str());
      for (const auto& [fn, score] : req->selection().scores()) {
        std::printf("  %-10s %.6f s/iter\n",
                    req->selection().function_set().function(fn).name.c_str(),
                    score);
      }
    }
  });
  engine.run();
  return 0;
}
