// Additional transport and engine coverage: control-message accounting,
// rendezvous statuses, sub-communicator collectives under load, engine
// bookkeeping, noise model behaviour, and misuse handling.

#include <gtest/gtest.h>

#include <vector>

#include "mpi/world.hpp"
#include "net/platform.hpp"
#include "testing_util.hpp"

using namespace nbctune;
namespace t = nbctune::testing;

namespace {
const net::Platform kIb = net::whale();
}

TEST(Transport, RendezvousCountsControlMessages) {
  sim::Engine engine(1);
  net::Machine machine(kIb);
  mpi::WorldOptions o;
  o.nprocs = 9;
  o.noise_scale = 0;
  mpi::World world(engine, machine, o);
  world.launch([&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    std::vector<std::byte> buf(256 * 1024);
    if (ctx.world_rank() == 0) {
      ctx.send(comm, buf.data(), buf.size(), 8, 0);
    } else if (ctx.world_rank() == 8) {
      ctx.recv(comm, buf.data(), buf.size(), 0, 0);
    }
  });
  engine.run();
  // One rendezvous: RTS + CTS control messages, one bulk data message.
  EXPECT_EQ(world.total_ctrl_msgs(), 2u);
  EXPECT_EQ(world.total_data_msgs(), 1u);
}

TEST(Transport, EagerSendsNoControlMessages) {
  sim::Engine engine(1);
  net::Machine machine(kIb);
  mpi::WorldOptions o;
  o.nprocs = 2;
  o.noise_scale = 0;
  mpi::World world(engine, machine, o);
  world.launch([&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    std::vector<std::byte> buf(128);
    if (ctx.world_rank() == 0) {
      ctx.send(comm, buf.data(), buf.size(), 1, 0);
    } else {
      ctx.recv(comm, buf.data(), buf.size(), 0, 0);
    }
  });
  engine.run();
  EXPECT_EQ(world.total_ctrl_msgs(), 0u);
  EXPECT_EQ(world.total_data_msgs(), 1u);
}

TEST(Transport, RendezvousStatusCarriesSourceAndSize) {
  t::run_world(kIb, 9, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    std::vector<std::byte> buf(64 * 1024);
    if (ctx.world_rank() == 0) {
      ctx.send(comm, buf.data(), 50 * 1024, 8, 42);
    } else if (ctx.world_rank() == 8) {
      // Post a bigger buffer than the incoming message: allowed; the
      // status reports the actual size.
      const mpi::Status st = ctx.recv(comm, buf.data(), buf.size(), 0, 42);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 42);
      EXPECT_EQ(st.bytes, 50u * 1024);
    }
  });
}

TEST(Transport, TestPollsRendezvousToCompletion) {
  t::run_world(kIb, 9, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    std::vector<std::byte> buf(100 * 1024);
    if (ctx.world_rank() == 0) {
      mpi::Req s = ctx.isend(comm, buf.data(), buf.size(), 8, 0);
      int polls = 0;
      while (!ctx.test(s)) {
        ctx.compute(20e-6);
        ++polls;
      }
      EXPECT_GT(polls, 0);  // cannot complete instantly: needs handshake
    } else if (ctx.world_rank() == 8) {
      mpi::Req r = ctx.irecv(comm, buf.data(), buf.size(), 0, 0);
      while (!ctx.test(r)) ctx.compute(20e-6);
    }
  });
}

TEST(Transport, BootstrapCollectivesOnSplitComm) {
  // Heavier use of sub-communicators: disjoint halves run independent
  // reductions and barriers concurrently without interference.
  const int n = 12;
  std::vector<double> sums(n);
  t::run_world(kIb, n, [&](mpi::Ctx& ctx) {
    auto world_comm = ctx.world().comm_world();
    const int half = ctx.world_rank() < n / 2 ? 0 : 1;
    auto sub = ctx.split(world_comm, half, ctx.world_rank());
    for (int round = 0; round < 5; ++round) {
      ctx.barrier(sub);
      sums[ctx.world_rank()] =
          ctx.allreduce(sub, double(ctx.world_rank()), mpi::ReduceOp::Sum);
    }
  });
  const double lo = 0 + 1 + 2 + 3 + 4 + 5;
  const double hi = 6 + 7 + 8 + 9 + 10 + 11;
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(sums[r], r < n / 2 ? lo : hi);
  }
}

TEST(Engine, EventsProcessedCounts) {
  sim::Engine eng;
  for (int i = 0; i < 5; ++i) eng.schedule_at(i, [] {});
  eng.run();
  EXPECT_EQ(eng.events_processed(), 5u);
}

TEST(Engine, RunUntilThenResume) {
  sim::Engine eng;
  int fired = 0;
  for (int i = 1; i <= 4; ++i) eng.schedule_at(i, [&] { ++fired; });
  eng.run_until(2.5);
  EXPECT_EQ(fired, 2);
  eng.run();
  EXPECT_EQ(fired, 4);
}

TEST(Noise, JitterScalesWithOption) {
  auto spread = [&](double scale) {
    sim::Engine engine(7);
    net::Machine machine(kIb);
    mpi::WorldOptions o;
    o.nprocs = 1;
    o.noise_scale = scale;
    mpi::World world(engine, machine, o);
    double lo = 1e300, hi = 0;
    world.launch([&](mpi::Ctx& ctx) {
      for (int i = 0; i < 200; ++i) {
        const double t0 = ctx.now();
        ctx.compute(1e-3);
        const double dt = ctx.now() - t0;
        lo = std::min(lo, dt);
        hi = std::max(hi, dt);
      }
    });
    engine.run();
    return hi - lo;
  };
  // scale 0: deterministic up to clock-accumulation epsilon.
  EXPECT_LT(spread(0.0), 1e-12);
  // Noise on: visible jitter.  (The max-min spread is dominated by the
  // outlier magnitude, which is scale-independent — only the outlier
  // probability scales — so we assert presence, not proportionality.)
  EXPECT_GT(spread(1.0), 1e-6);
  EXPECT_GT(spread(4.0), 1e-6);
}

TEST(Misuse, ComputeRejectsNegative) {
  t::run_world(kIb, 1, [&](mpi::Ctx& ctx) {
    EXPECT_THROW(ctx.compute(-1.0), std::invalid_argument);
    ctx.compute(0.0);  // zero is a no-op
  });
}

TEST(Misuse, BadRanksRejected) {
  t::run_world(kIb, 2, [&](mpi::Ctx& ctx) {
    auto comm = ctx.world().comm_world();
    std::byte b{};
    EXPECT_THROW(ctx.isend(comm, &b, 1, 2, 0), std::invalid_argument);
    EXPECT_THROW(ctx.isend(comm, &b, 1, -1, 0), std::invalid_argument);
    EXPECT_THROW(ctx.irecv(comm, &b, 1, 5, 0), std::invalid_argument);
  });
}

TEST(Misuse, TooManyRanksForPlatform) {
  sim::Engine engine(1);
  net::Machine machine(net::whale());  // 512 cores
  mpi::WorldOptions o;
  o.nprocs = 513;
  EXPECT_THROW(mpi::World(engine, machine, o), std::invalid_argument);
}

TEST(WorldAccounting, MessageTotalsAcrossCollective) {
  sim::Engine engine(1);
  net::Machine machine(kIb);
  mpi::WorldOptions o;
  o.nprocs = 8;
  o.noise_scale = 0;
  mpi::World world(engine, machine, o);
  world.launch([&](mpi::Ctx& ctx) {
    ctx.barrier(ctx.world().comm_world());
  });
  engine.run();
  // Dissemination barrier: log2(8) = 3 rounds, one message per rank each.
  EXPECT_EQ(world.total_data_msgs(), 8u * 3u);
}
