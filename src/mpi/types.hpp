#pragma once

// Shared constants and small value types of the message-passing layer.

#include <cstddef>
#include <cstdint>

namespace nbctune::mpi {

/// Wildcard source rank for receives.
inline constexpr int kAnySource = -1;
/// Wildcard tag for receives.
inline constexpr int kAnyTag = -1;

/// Reduction operators supported by the bootstrap collectives.
enum class ReduceOp { Sum, Max, Min };

/// Handle to a pending non-blocking operation.  Value type; owned by the
/// rank that created it.  A default-constructed handle is "null" and is
/// considered complete.
struct Req {
  std::uint32_t index = 0;
  std::uint32_t generation = 0;

  [[nodiscard]] bool null() const noexcept { return generation == 0; }
  friend bool operator==(const Req&, const Req&) = default;
};

/// Completion information for a receive.
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

}  // namespace nbctune::mpi
