// Bootstrap collectives: simple, blocking, built on the point-to-point
// layer.  These form the control plane used by the harness and by the
// tuner's decision synchronization — they are NOT the tuned collectives
// (those live in src/coll as LibNBC-style schedules).

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "mpi/world.hpp"

namespace nbctune::mpi {

namespace {
// Internal tag space, far above anything user code passes; doubles as
// the reliable-channel marker (see kReliableTagBase in world.hpp).
constexpr int kInternalTagBase = kReliableTagBase;
// Sub-tags per epoch (slots 0..3 below); shared with the fail-stop
// recovery tag-floor computation in Ctx::ft_cleanup.
constexpr int kEpochSpan = kCollEpochSpan;

void fold(double* acc, const double* in, std::size_t n, ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum:
      for (std::size_t i = 0; i < n; ++i) acc[i] += in[i];
      break;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < n; ++i) acc[i] = std::max(acc[i], in[i]);
      break;
    case ReduceOp::Min:
      for (std::size_t i = 0; i < n; ++i) acc[i] = std::min(acc[i], in[i]);
      break;
  }
}
}  // namespace

void Ctx::barrier(const Comm& comm) {
  const int n = comm.size();
  const int me = comm.rank_of_world(wrank_);
  const int tag =
      kInternalTagBase + (epoch_counter_++ % (1 << 20)) * kEpochSpan;
  if (n == 1) return;
  // Dissemination barrier: log2(n) rounds of 0-byte exchanges.
  for (int mask = 1; mask < n; mask <<= 1) {
    const int to = (me + mask) % n;
    const int from = (me - mask + n) % n;
    Req r = irecv(comm, nullptr, 0, from, tag);
    send(comm, nullptr, 0, to, tag);
    wait(r);
  }
}

void Ctx::bcast(const Comm& comm, void* buf, std::size_t bytes, int root) {
  const int n = comm.size();
  const int me = comm.rank_of_world(wrank_);
  const int tag =
      kInternalTagBase + (epoch_counter_++ % (1 << 20)) * kEpochSpan + 1;
  if (n == 1) return;
  const int vrank = (me - root + n) % n;
  // Binomial tree on virtual ranks.
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int parent = (vrank - mask + root) % n;
      recv(comm, buf, bytes, parent, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      const int child = (vrank + mask + root) % n;
      send(comm, buf, bytes, child, tag);
    }
    mask >>= 1;
  }
}

void Ctx::allreduce(const Comm& comm, const double* in, double* out,
                    std::size_t n_elems, ReduceOp op) {
  const int n = comm.size();
  const int me = comm.rank_of_world(wrank_);
  const int tag =
      kInternalTagBase + (epoch_counter_++ % (1 << 20)) * kEpochSpan + 2;
  std::memcpy(out, in, n_elems * sizeof(double));
  if (n == 1) return;
  // Binomial reduce to rank 0 ...
  std::vector<double> tmp(n_elems);
  int mask = 1;
  while (mask < n) {
    if (me & mask) {
      send(comm, out, n_elems * sizeof(double), me - mask, tag);
      break;
    }
    if (me + mask < n) {
      recv(comm, tmp.data(), n_elems * sizeof(double), me + mask, tag);
      fold(out, tmp.data(), n_elems, op);
    }
    mask <<= 1;
  }
  // ... then broadcast the result.
  bcast(comm, out, n_elems * sizeof(double), 0);
}

double Ctx::allreduce(const Comm& comm, double value, ReduceOp op) {
  double out = 0.0;
  allreduce(comm, &value, &out, 1, op);
  return out;
}

void Ctx::allgather(const Comm& comm, const void* in, void* out,
                    std::size_t bytes_each) {
  const int n = comm.size();
  const int me = comm.rank_of_world(wrank_);
  const int tag =
      kInternalTagBase + (epoch_counter_++ % (1 << 20)) * kEpochSpan + 3;
  auto* o = static_cast<std::byte*>(out);
  if (in != nullptr && out != nullptr) {
    std::memcpy(o + static_cast<std::size_t>(me) * bytes_each, in, bytes_each);
  }
  if (n == 1) return;
  // Ring: in step s we forward the block of rank (me - s).
  const int to = (me + 1) % n;
  const int from = (me - 1 + n) % n;
  for (int s = 0; s < n - 1; ++s) {
    const int send_block = (me - s + n) % n;
    const int recv_block = (me - s - 1 + n) % n;
    std::byte* sp = o ? o + static_cast<std::size_t>(send_block) * bytes_each
                      : nullptr;
    std::byte* rp = o ? o + static_cast<std::size_t>(recv_block) * bytes_each
                      : nullptr;
    Req r = irecv(comm, rp, bytes_each, from, tag);
    send(comm, sp, bytes_each, to, tag);
    wait(r);
  }
}

Comm Ctx::dup(const Comm& comm) {
  const int epoch = split_epochs_[comm.context()]++;
  const int ctx_id = world_.alloc_context(comm.context(), epoch, 0);
  auto data = std::make_shared<CommData>(comm.data());
  data->context = ctx_id;
  data->split_epoch = 0;
  return Comm(&world_, std::move(data));
}

Comm Ctx::split(const Comm& comm, int color, int key) {
  const int n = comm.size();
  const int epoch = split_epochs_[comm.context()]++;
  // Gather everyone's (color, key).
  std::vector<int> mine{color, key};
  std::vector<int> all(static_cast<std::size_t>(n) * 2);
  allgather(comm, mine.data(), all.data(), 2 * sizeof(int));
  // Collect members of my color, ordered by (key, parent rank).
  struct Member {
    int key;
    int parent_rank;
  };
  std::vector<Member> members;
  for (int r = 0; r < n; ++r) {
    if (all[static_cast<std::size_t>(r) * 2] == color) {
      members.push_back({all[static_cast<std::size_t>(r) * 2 + 1], r});
    }
  }
  std::stable_sort(members.begin(), members.end(),
                   [](const Member& a, const Member& b) {
                     if (a.key != b.key) return a.key < b.key;
                     return a.parent_rank < b.parent_rank;
                   });
  const int ctx_id = world_.alloc_context(comm.context(), epoch, color);
  auto data = std::make_shared<CommData>();
  data->context = ctx_id;
  for (const Member& m : members) {
    data->members.push_back(comm.world_rank(m.parent_rank));
  }
  return Comm(&world_, std::move(data));
}

}  // namespace nbctune::mpi
