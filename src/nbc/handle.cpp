#include "nbc/handle.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "trace/trace.hpp"

namespace nbctune::nbc {

namespace {

template <typename T>
void fold_elems(const void* src, void* dst, std::size_t n, mpi::ReduceOp op) {
  const T* s = static_cast<const T*>(src);
  T* d = static_cast<T*>(dst);
  switch (op) {
    case mpi::ReduceOp::Sum:
      for (std::size_t i = 0; i < n; ++i) d[i] += s[i];
      break;
    case mpi::ReduceOp::Max:
      for (std::size_t i = 0; i < n; ++i) d[i] = d[i] < s[i] ? s[i] : d[i];
      break;
    case mpi::ReduceOp::Min:
      for (std::size_t i = 0; i < n; ++i) d[i] = s[i] < d[i] ? s[i] : d[i];
      break;
  }
}

}  // namespace

Handle::Handle(mpi::Ctx& ctx, mpi::Comm comm, const Schedule* schedule,
               int tag)
    : ctx_(ctx), comm_(std::move(comm)), schedule_(schedule), tag_(tag) {
  if (schedule_ == nullptr) throw std::invalid_argument("Handle: no schedule");
  ctx_.register_client(this);
}

Handle::~Handle() { ctx_.unregister_client(this); }

void Handle::rebind(const Schedule* schedule) {
  if (active_) throw std::logic_error("rebind while operation in flight");
  if (schedule == nullptr) throw std::invalid_argument("rebind: no schedule");
  schedule_ = schedule;
}

void Handle::abort() {
  if (!active_) return;
  for (mpi::Req& h : pending_) ctx_.cancel_request(h);
  pending_.clear();
  pending_ptrs_.clear();
  active_ = false;
  done_ = true;
  // An aborted execution never emits its nbc.op completion span; the
  // redo after recovery starts a fresh logical execution.
  completion_emitted_ = true;
  trace::count(trace::Ctr::NbcOpsAborted);
  if (trace::active()) {
    trace::instant(ctx_.now(), ctx_.world_rank(), trace::Cat::Nbc,
                   "nbc.abort", "round", round_, "tag",
                   static_cast<std::uint64_t>(tag_), op_corr_);
  }
}

void Handle::rebind_comm(mpi::Comm comm, int tag) {
  if (active_) {
    throw std::logic_error("rebind_comm while operation in flight");
  }
  comm_ = std::move(comm);
  tag_ = tag;
}

void Handle::trace_completion() {
  if (completion_emitted_) return;
  completion_emitted_ = true;
  trace::count(trace::Ctr::NbcOpsCompleted);
  trace::record(trace::Hist::RoundsPerOp, round_);
  if (trace::active()) {
    trace::span(start_time_, ctx_.now() - start_time_, ctx_.world_rank(),
                trace::Cat::Nbc, "nbc.op", "rounds", round_, "tag",
                static_cast<std::uint64_t>(tag_), op_corr_);
  }
}

double Handle::post_round(std::size_t r) {
  double cost = 0.0;
  const auto& p = ctx_.world().platform();
  trace::count(trace::Ctr::NbcRoundsPosted);
  if (trace::active()) {
    trace::instant(ctx_.now(), ctx_.world_rank(), trace::Cat::Nbc,
                   "nbc.round", "round", r, "actions",
                   schedule_->round(r).size(), op_corr_);
  }
  for (const Action& a : schedule_->round(r)) {
    switch (a.kind) {
      case Action::Kind::Send:
        pending_.push_back(ctx_.post_isend(comm_, a.src, a.bytes, a.peer,
                                           tag_, cost, cost, a.rail));
        pending_ptrs_.push_back(ctx_.request_ptr(pending_.back()));
        break;
      case Action::Kind::Recv:
        pending_.push_back(ctx_.post_irecv(comm_, a.dst, a.bytes, a.peer,
                                           tag_, cost, a.rail));
        pending_ptrs_.push_back(ctx_.request_ptr(pending_.back()));
        break;
      case Action::Kind::Copy:
        if (a.src != nullptr && a.dst != nullptr && a.bytes > 0) {
          std::memcpy(a.dst, a.src, a.bytes);
        }
        cost += static_cast<double>(a.bytes) * p.copy_byte_time;
        break;
      case Action::Kind::Op:
        if (a.src != nullptr && a.dst != nullptr) {
          if (a.dtype == DType::F64) {
            fold_elems<double>(a.src, a.dst, a.bytes, a.op);
          } else {
            fold_elems<int>(a.src, a.dst, a.bytes, a.op);
          }
        }
        // ~2 useful flops per element (load + op) on this platform's core.
        cost += 2.0 * static_cast<double>(a.bytes) / p.flops_per_sec;
        break;
    }
  }
  return cost;
}

double Handle::start_begin() {
  if (active_) throw std::logic_error("start() while operation in flight");
  round_ = 0;
  completion_emitted_ = false;
  start_time_ = ctx_.now();
  op_corr_ = ctx_.alloc_op_corr();
  trace::count(trace::Ctr::NbcOpsStarted);
  if (trace::active()) {
    trace::instant(start_time_, ctx_.world_rank(), trace::Cat::Nbc,
                   "nbc.start", "rounds", schedule_->num_rounds(), "tag",
                   static_cast<std::uint64_t>(tag_), op_corr_);
  }
  done_ = schedule_->num_rounds() == 0;
  active_ = !done_;
  pending_.clear();
  pending_ptrs_.clear();
  if (done_) {
    trace_completion();
    return 0.0;
  }
  return post_round(0);
}

double Handle::start_cascade() {
  // A schedule whose first rounds are local-only completes them here.
  double extra = 0.0;
  while (!done_ && pending_.empty()) {
    if (++round_ >= schedule_->num_rounds()) {
      done_ = true;
      active_ = false;
      break;
    }
    extra += post_round(round_);
  }
  return extra;
}

void Handle::start_finish() {
  if (done_) trace_completion();
}

void Handle::start() {
  const double cost = start_begin();
  if (done_) return;  // empty schedule: completed in start_begin()
  ctx_.charge(cost);
  ctx_.charge(start_cascade());
  start_finish();
}

double Handle::poke(mpi::Ctx& ctx) {
  assert(&ctx == &ctx_);
  if (!active_ || done_) return 0.0;
  double cost = 0.0;
  for (;;) {
    // Is the current round finished?
    for (const mpi::Request* r : pending_ptrs_) {
      if (!r->complete) return cost;
    }
    for (mpi::Req& h : pending_) ctx_.observe(h, nullptr);
    pending_.clear();
    pending_ptrs_.clear();
    // Advance to the next round.  Purely local rounds (copies/ops) and
    // rounds whose operations completed synchronously (e.g. intra-node
    // eager sends) cascade within one pass — like LibNBC, which tests the
    // freshly posted round before leaving NBC_Progress.  Rounds waiting on
    // wire traffic stop the loop, so multi-round schedules still need one
    // progress invocation per communication round.
    do {
      if (++round_ >= schedule_->num_rounds()) {
        done_ = true;
        active_ = false;
        trace_completion();
        return cost;
      }
      cost += post_round(round_);
    } while (pending_.empty());
  }
}

bool Handle::test() {
  ctx_.progress_pass(false);
  return done_;
}

bool Handle::any_pending_failed() const {
  for (const mpi::Request* r : pending_ptrs_) {
    if (r->failed) return true;
  }
  return false;
}

void Handle::recover() {
  for (mpi::Req& h : pending_) ctx_.cancel_request(h);
  pending_.clear();
  pending_ptrs_.clear();
  ++fallbacks_;
  trace::count(trace::Ctr::NbcFallbacks);
  if (trace::active()) {
    trace::instant(ctx_.now(), ctx_.world_rank(), trace::Cat::Nbc,
                   "nbc.fallback", "attempt",
                   static_cast<std::uint64_t>(fallbacks_), "tag",
                   static_cast<std::uint64_t>(tag_), op_corr_);
  }
  // Restart on the fallback schedule with a fresh tag.  Every rank
  // recovers the same number of times (the agreement in wait() is
  // collective), so the per-rank tag counters stay aligned and stale
  // messages for the old tag rot unmatched in the unexpected queues.
  schedule_ = recovery_.fallback;
  tag_ = ctx_.alloc_nbc_tag();
  round_ = 0;
  done_ = schedule_->num_rounds() == 0;
  active_ = !done_;
  // Like start(), but with no nbc.start / ops-started emission: this is
  // still the same logical operation (G1 counts one start, one
  // completion).  Data-movement schedules are idempotent, so ranks that
  // had already finished simply re-execute.
  if (done_) {
    active_ = false;
    trace_completion();
    return;
  }
  ctx_.charge(post_round(0));
  ctx_.charge(start_cascade());
  start_finish();
}

void Handle::wait() {
  if (recovery_.op_timeout <= 0.0 || recovery_.fallback == nullptr) {
    ctx_.wait_until([this] { return done_; });
    return;
  }
  int attempts = 0;
  for (;;) {
    const double deadline = ctx_.now() + recovery_.op_timeout;
    // A timer event guarantees the blocked rank wakes to observe the
    // deadline even if no message ever arrives again.
    const std::uint64_t wake = ctx_.schedule_wake(recovery_.op_timeout);
    ctx_.wait_until([this, deadline] {
      return done_ || any_pending_failed() || ctx_.now() >= deadline;
    });
    ctx_.cancel_event(wake);
    // Collective agreement: recovery must be lockstep, so every rank asks
    // whether anyone is still incomplete before returning or recovering.
    const double unfinished =
        ctx_.allreduce(comm_, done_ ? 0.0 : 1.0, mpi::ReduceOp::Max);
    if (unfinished == 0.0) return;
    if (++attempts > recovery_.max_attempts) {
      throw std::runtime_error(
          "nbc: operation incomplete after max fallback attempts");
    }
    recover();
  }
}

}  // namespace nbctune::nbc
