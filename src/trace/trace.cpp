#include "trace/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <ostream>
#include <set>
#include <string_view>

namespace nbctune::trace {

const char* cat_name(Cat c) noexcept {
  switch (c) {
    case Cat::Engine:
      return "engine";
    case Cat::Fiber:
      return "fiber";
    case Cat::Msg:
      return "msg";
    case Cat::Wire:
      return "wire";
    case Cat::Nbc:
      return "nbc";
    case Cat::Coll:
      return "coll";
    case Cat::Progress:
      return "progress";
    case Cat::Adcl:
      return "adcl";
    case Cat::Harness:
      return "harness";
  }
  return "?";
}

const char* ctr_name(Ctr c) noexcept {
  switch (c) {
    case Ctr::EngineEventsScheduled:
      return "engine.events_scheduled";
    case Ctr::EngineEventsFired:
      return "engine.events_fired";
    case Ctr::EngineEventsCancelled:
      return "engine.events_cancelled";
    case Ctr::EngineNowFifoHits:
      return "engine.now_fifo_hits";
    case Ctr::FiberSwitches:
      return "fiber.switches";
    case Ctr::MsgsEager:
      return "msg.eager";
    case Ctr::MsgsRts:
      return "msg.rts";
    case Ctr::MsgsCts:
      return "msg.cts";
    case Ctr::MsgsBulkChunks:
      return "msg.bulk_chunks";
    case Ctr::MsgsNicBulks:
      return "msg.nic_bulks";
    case Ctr::BytesOnWire:
      return "wire.bytes";
    case Ctr::NbcRoundsPosted:
      return "nbc.rounds_posted";
    case Ctr::NbcOpsStarted:
      return "nbc.ops_started";
    case Ctr::NbcOpsCompleted:
      return "nbc.ops_completed";
    case Ctr::CollSchedulesBuilt:
      return "coll.schedules_built";
    case Ctr::ProgressPasses:
      return "progress.passes";
    case Ctr::ProgressCallsExplicit:
      return "progress.explicit_calls";
    case Ctr::AdclBatchesScored:
      return "adcl.batches_scored";
    case Ctr::AdclDecisions:
      return "adcl.decisions";
    case Ctr::AdclSamplesSeen:
      return "adcl.samples_seen";
    case Ctr::AdclSamplesFiltered:
      return "adcl.samples_filtered";
    case Ctr::AdclEliminations:
      return "adcl.eliminations";
    case Ctr::AdclRetunes:
      return "adcl.retunes";
    case Ctr::AdclGuidelinePrunes:
      return "adcl.guideline_prunes";
    case Ctr::FaultDrops:
      return "fault.drops";
    case Ctr::FaultDups:
      return "fault.dups";
    case Ctr::FaultDegradedMsgs:
      return "fault.degraded_msgs";
    case Ctr::FaultNicStalls:
      return "fault.nic_stalls";
    case Ctr::FaultStragglerBursts:
      return "fault.straggler_bursts";
    case Ctr::FaultStarvedPasses:
      return "fault.starved_passes";
    case Ctr::MsgsAcks:
      return "msg.acks";
    case Ctr::MsgsRetransmits:
      return "msg.retransmits";
    case Ctr::MsgsDupDeliveries:
      return "msg.dup_deliveries";
    case Ctr::MsgsSendFailures:
      return "msg.send_failures";
    case Ctr::NbcFallbacks:
      return "nbc.fallbacks";
    case Ctr::SimFibersCreated:
      return "sim.fibers_created";
    case Ctr::WorldPeakArenaBytes:
      return "world.peak_arena_bytes";
    case Ctr::RailPinnedMsgs:
      return "net.rail_pinned_msgs";
    case Ctr::RailAutoMsgs:
      return "net.rail_auto_msgs";
    case Ctr::TraceDroppedEvents:
      return "trace.dropped_events";
    case Ctr::MpiRankDeaths:
      return "mpi.rank_deaths";
    case Ctr::MpiShrinks:
      return "mpi.shrinks";
    case Ctr::NbcRebuilds:
      return "nbc.rebuilds";
    case Ctr::NbcOpsAborted:
      return "nbc.ops_aborted";
    case Ctr::kCount:
      break;
  }
  return "?";
}

const char* hist_name(Hist h) noexcept {
  switch (h) {
    case Hist::WireBytes:
      return "wire.bytes_per_transfer";
    case Hist::RoundsPerOp:
      return "nbc.rounds_per_op";
    case Hist::ScheduleRounds:
      return "coll.rounds_per_schedule";
    case Hist::ProgressPerOp:
      return "adcl.progress_calls_per_iteration";
    case Hist::SocketBytes:
      return "net.socket_bytes";
    case Hist::NodeBytes:
      return "net.node_bytes";
    case Hist::RackBytes:
      return "net.rack_bytes";
    case Hist::SystemBytes:
      return "net.system_bytes";
    case Hist::kCount:
      break;
  }
  return "?";
}

std::size_t Tracer::default_max_events() noexcept {
  // Read per construction (one getenv per scenario, noise at sweep
  // granularity) so tests and long-running drivers can adjust the cap
  // without re-launching.
  if (const char* env = std::getenv("NBCTUNE_TRACE_MAX_EVENTS")) {
    const long long n = std::atoll(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 0;
}

void Tracer::record(Hist h, std::uint64_t v) noexcept {
  HistData& d = hists_[static_cast<std::size_t>(h)];
  // bucket 0: v == 0; bucket i >= 1: v in [2^(i-1), 2^i).
  std::size_t b = 0;
  for (std::uint64_t x = v; x != 0; x >>= 1) ++b;
  ++d.buckets[b];
  ++d.count;
  d.sum += v;
}

namespace {

thread_local Tracer* tl_current = nullptr;
thread_local std::vector<FinishedTrace>* tl_staging = nullptr;

std::atomic<bool> g_enabled{false};
std::atomic<Session::Listener*> g_listener{nullptr};

}  // namespace

Tracer* current() noexcept { return tl_current; }

Tracer* set_current(Tracer* t) noexcept {
  Tracer* prev = tl_current;
  tl_current = t;
  return prev;
}

// --------------------------------------------------------------- session

struct Session::Impl {
  mutable std::mutex mu;
  std::vector<FinishedTrace> traces;
};

Session::Impl& Session::impl() const {
  static Impl i;
  return i;
}

void Session::set_listener(Listener* l) noexcept {
  g_listener.store(l, std::memory_order_release);
}

Session::Listener* Session::listener() noexcept {
  return g_listener.load(std::memory_order_acquire);
}

bool Session::enabled() noexcept {
  return g_enabled.load(std::memory_order_acquire);
}

void Session::enable() { g_enabled.store(true, std::memory_order_release); }

Session& Session::instance() {
  static Session s;
  return s;
}

void Session::adopt(FinishedTrace t) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  i.traces.push_back(std::move(t));
}

std::vector<FinishedTrace>* Session::set_staging(
    std::vector<FinishedTrace>* s) noexcept {
  std::vector<FinishedTrace>* prev = tl_staging;
  tl_staging = s;
  return prev;
}

void Session::finish(FinishedTrace t) {
  if (tl_staging != nullptr) {
    tl_staging->push_back(std::move(t));
    return;
  }
  if (enabled()) instance().adopt(std::move(t));
}

std::size_t Session::size() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  return i.traces.size();
}

std::vector<FinishedTrace> Session::drain() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  std::vector<FinishedTrace> out;
  out.swap(i.traces);
  return out;
}

std::uint64_t Session::total_events() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lk(i.mu);
  std::uint64_t n = 0;
  for (const auto& t : i.traces) n += t.events.size();
  return n;
}

namespace {

/// Deterministic fixed-point formatting of simulated microseconds
/// (nanosecond resolution; enough for LogGP-scale costs).
void put_us(std::ostream& os, double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  os << buf;
}

void put_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

/// Chrome tid for a track id (tids should be non-negative integers).
int chrome_tid(std::int32_t track) {
  return track >= 0 ? track : 1000000 + (-1 - track);
}

}  // namespace

void Session::write_chrome(std::ostream& os) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (std::size_t pid = 0; pid < im.traces.size(); ++pid) {
    const FinishedTrace& t = im.traces[pid];
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"name\":\"process_name\",\"args\":{\"name\":\"";
    put_escaped(os, t.label);
    os << "\"}}";
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"name\":\"process_sort_index\",\"args\":{\"sort_index\":" << pid
       << "}}";
    // Name every track that appears (ranks and per-node wire lanes).
    std::set<std::int32_t> tracks;
    for (const Event& e : t.events) tracks.insert(e.track);
    for (std::int32_t tr : tracks) {
      sep();
      os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << chrome_tid(tr)
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      if (tr >= 0) {
        os << "rank " << tr;
      } else {
        os << "node " << (-1 - tr) << " wire";
      }
      os << "\"}}";
    }
    for (const Event& e : t.events) {
      sep();
      os << "{\"pid\":" << pid << ",\"tid\":" << chrome_tid(e.track)
         << ",\"cat\":\"" << cat_name(e.cat) << "\",\"name\":\"" << e.name
         << "\",\"ts\":";
      put_us(os, e.ts);
      if (e.dur >= 0.0) {
        os << ",\"ph\":\"X\",\"dur\":";
        put_us(os, e.dur);
      } else {
        os << ",\"ph\":\"i\",\"s\":\"t\"";
      }
      if (e.akey != nullptr || e.bkey != nullptr || e.corr != 0) {
        os << ",\"args\":{";
        bool any = false;
        if (e.akey != nullptr) {
          os << "\"" << e.akey << "\":" << e.aval;
          any = true;
        }
        if (e.bkey != nullptr) {
          if (any) os << ",";
          os << "\"" << e.bkey << "\":" << e.bval;
          any = true;
        }
        if (e.corr != 0) {
          if (any) os << ",";
          os << "\"corr\":" << e.corr;
        }
        os << "}";
      }
      os << "}";
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void Session::write_counters(std::ostream& os) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  os << "# nbctune trace counter dump\n";
  os << "scenarios " << im.traces.size() << "\n";
  std::uint64_t events = 0;
  for (const auto& t : im.traces) events += t.events.size();
  os << "trace_events " << events << "\n";
  // Lines are sorted by metric *name*, not enum declaration order, so
  // committed goldens survive enum reorders and insertions (see
  // docs/ARCHITECTURE.md for the format).
  std::vector<std::size_t> ctr_order(static_cast<std::size_t>(Ctr::kCount));
  for (std::size_t c = 0; c < ctr_order.size(); ++c) ctr_order[c] = c;
  std::sort(ctr_order.begin(), ctr_order.end(), [](std::size_t a, std::size_t b) {
    return std::string_view(ctr_name(static_cast<Ctr>(a))) <
           std::string_view(ctr_name(static_cast<Ctr>(b)));
  });
  for (std::size_t c : ctr_order) {
    std::uint64_t total = 0;
    for (const auto& t : im.traces) total += t.counts[c];
    os << "counter " << ctr_name(static_cast<Ctr>(c)) << " " << total << "\n";
  }
  std::vector<std::size_t> hist_order(static_cast<std::size_t>(Hist::kCount));
  for (std::size_t h = 0; h < hist_order.size(); ++h) hist_order[h] = h;
  std::sort(hist_order.begin(), hist_order.end(),
            [](std::size_t a, std::size_t b) {
              return std::string_view(hist_name(static_cast<Hist>(a))) <
                     std::string_view(hist_name(static_cast<Hist>(b)));
            });
  for (std::size_t h : hist_order) {
    HistData agg;
    for (const auto& t : im.traces) {
      const HistData& d = t.hists[h];
      agg.count += d.count;
      agg.sum += d.sum;
      for (std::size_t b = 0; b < d.buckets.size(); ++b) {
        agg.buckets[b] += d.buckets[b];
      }
    }
    os << "hist " << hist_name(static_cast<Hist>(h)) << " count " << agg.count
       << " sum " << agg.sum << "\n";
    for (std::size_t b = 0; b < agg.buckets.size(); ++b) {
      if (agg.buckets[b] == 0) continue;
      os << "hist " << hist_name(static_cast<Hist>(h)) << " bucket " << b
         << " " << agg.buckets[b] << "\n";
    }
  }
}

// ----------------------------------------------------------------- scope

Scope::Scope(std::string label) {
  if (!Session::enabled()) return;
  tracer_ = std::make_unique<Tracer>(std::move(label));
  prev_ = set_current(tracer_.get());
  if (Session::Listener* l = Session::listener()) {
    l->on_scope_start(tracer_->label());
  }
}

Scope::~Scope() {
  if (!tracer_) return;
  set_current(prev_);
  FinishedTrace f;
  f.label = std::move(tracer_->label_);
  f.events = std::move(tracer_->events_);
  f.counts = tracer_->counts_;
  f.hists = tracer_->hists_;
  // The listener sees the finished trace in completion order, before the
  // submission-order staging/adoption path takes ownership — this is the
  // live-streaming seam (src/obs).
  if (Session::Listener* l = Session::listener()) {
    l->on_scope_finish(f);
  }
  Session::finish(std::move(f));
}

}  // namespace nbctune::trace
