// nbctune-analyze: offline trace analysis and report regression gating.
//
// Analysis mode (default):
//
//   nbctune-analyze [options] trace.json [trace2.json ...]
//
//   --counters FILE     fold a flat counter dump into the report
//   --report=table      human-readable output (default)
//   --report=json       machine-readable output (integers only; see
//                       docs/ARCHITECTURE.md for the schema)
//   --out FILE          write the report there instead of stdout
//   --epsilon X         guideline tolerance (default 0.25)
//   --min-reps N        repetitions below which a scenario's stats are
//                       flagged as not-a-measurement (default 5)
//   --flame FILE        write collapsed stacks (rank;op;phase weighted
//                       by blame nanoseconds) for flamegraph.pl
//   --speedscope FILE   write a speedscope JSON profile of the same
//                       blame partition
//   --otlp-json FILE    write an OTLP/JSON span export of every
//                       rank/wire track span (requires NBCTUNE_OTLP=ON)
//
// Reads the Chrome trace-event JSON exported by any bench driver's
// --trace flag, reconstructs the per-scenario event streams, and runs
// the full analysis pass: critical paths with blame breakdowns, overlap
// and slack accounting, repetition-aware statistics (median + ~95% CI),
// the ADCL decision audit and the performance guidelines (G1-G6).
// Multiple trace files are concatenated into one scenario list, so a
// combined report over several drivers is a single invocation.
//
// Regression mode:
//
//   nbctune-analyze --regress old.json new.json [options]
//
//   --tolerance KEY=VAL   override one tolerance (repeatable); keys:
//                         blame_share, op_rel, overlap, ci_separation
//   --tolerance-config F  read `key value` lines from F
//   --out FILE            write the diff summary there instead of stdout
//
// Diffs two report JSONs (old golden vs. fresh run) semantically and
// exits 4 when blame shares, overlap, op times (CI-arbitrated), ADCL
// winners or guideline verdicts drift beyond tolerance.  See
// docs/METHODOLOGY.md for how to read a failure.
//
// Extract mode:
//
//   nbctune-analyze --extract-report live.jsonl [--out FILE]
//
// Pulls the embedded report JSON out of a live stream's terminal
// summary record (see src/obs/live.hpp) and prints it verbatim — the
// bytes equal a `--report=json` run of the same sweep, so CI can `cmp`
// a streamed sweep against the golden report.
//
// Exit codes: 0 ok, 1 I/O or parse error, 2 usage, 3 guideline failure
// (analysis mode), 4 regression beyond tolerance (regress mode).

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/chrome_reader.hpp"
#include "analyze/json_min.hpp"
#include "analyze/regress.hpp"
#include "obs/profile.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--counters FILE] [--report=json|table] [--out FILE]"
               " [--epsilon X] [--min-reps N] trace.json...\n"
               "       "
            << argv0
            << " --regress old.json new.json [--tolerance KEY=VAL]..."
               " [--tolerance-config FILE] [--out FILE]\n"
               "       "
            << argv0
            << " --extract-report live.jsonl [--out FILE]\n"
               "  profile exporters (analysis mode): [--flame FILE]"
               " [--speedscope FILE] [--otlp-json FILE]\n";
  return 2;
}

/// Find the last summary record of a live JSONL stream and print its
/// embedded report JSON verbatim.
int run_extract(const std::vector<std::string>& inputs,
                const std::string& out_path) {
  using namespace nbctune;
  if (inputs.size() != 1) {
    std::cerr << "--extract-report needs exactly one live stream, got "
              << inputs.size() << "\n";
    return 2;
  }
  std::ifstream is(inputs[0]);
  if (!is) {
    std::cerr << "cannot open live stream: " << inputs[0] << "\n";
    return 1;
  }
  std::string report;
  std::string status;
  bool found = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] != '{') continue;
    analyze::jsonmin::Value v;
    try {
      v = analyze::jsonmin::parse(line);
    } catch (const std::exception&) {
      continue;  // interleaved non-record line
    }
    const analyze::jsonmin::Value* type = v.get("type");
    if (type == nullptr || type->str != "summary") continue;
    if (const analyze::jsonmin::Value* st = v.get("status")) {
      status = st->str;
    }
    if (const analyze::jsonmin::Value* r = v.get("report")) {
      report = r->str;
      found = true;
    }
  }
  if (!found) {
    std::cerr << inputs[0] << ": no summary record with an embedded report"
              << (status.empty() ? "" : " (status: " + status + ")") << "\n";
    return 1;
  }
  if (out_path.empty()) {
    std::cout << report;
  } else {
    std::ofstream os(out_path);
    if (!os) {
      std::cerr << "cannot write report: " << out_path << "\n";
      return 1;
    }
    os << report;
  }
  return 0;
}

int run_regress(const std::vector<std::string>& inputs,
                const nbctune::analyze::RegressTolerances& tol,
                const std::string& out_path) {
  using namespace nbctune;
  if (inputs.size() != 2) {
    std::cerr << "--regress needs exactly two reports (old new), got "
              << inputs.size() << "\n";
    return 2;
  }
  analyze::ReportDigest digests[2];
  for (int i = 0; i < 2; ++i) {
    std::ifstream is(inputs[i]);
    if (!is) {
      std::cerr << "cannot open report: " << inputs[i] << "\n";
      return 1;
    }
    try {
      digests[i] = analyze::read_report_json(is);
    } catch (const std::exception& e) {
      std::cerr << inputs[i] << ": " << e.what() << "\n";
      return 1;
    }
  }
  const analyze::RegressResult res = analyze::regress(digests[0], digests[1], tol);
  std::ostringstream body;
  body << "old: " << inputs[0] << " (" << digests[0].schema << ")\n"
       << "new: " << inputs[1] << " (" << digests[1].schema << ")\n";
  analyze::write_regress(body, res, tol);
  if (out_path.empty()) {
    std::cout << body.str();
  } else {
    std::ofstream os(out_path);
    if (!os) {
      std::cerr << "cannot write regress summary: " << out_path << "\n";
      return 1;
    }
    os << body.str();
    std::cerr << (res.ok() ? "regress: OK -> " : "regress: REGRESSION -> ")
              << out_path << "\n";
  }
  return res.ok() ? 0 : 4;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nbctune;
  std::vector<std::string> inputs;
  std::string counters_path;
  std::string out_path;
  std::string flame_path;
  std::string speedscope_path;
  std::string otlp_path;
  bool json = false;
  bool regress_mode = false;
  bool extract_mode = false;
  analyze::Options opts;
  analyze::RegressTolerances tol;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--counters") == 0 && i + 1 < argc) {
      counters_path = argv[++i];
    } else if (std::strcmp(a, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(a, "--epsilon") == 0 && i + 1 < argc) {
      opts.epsilon = std::atof(argv[++i]);
    } else if (std::strcmp(a, "--min-reps") == 0 && i + 1 < argc) {
      opts.min_reps = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--regress") == 0) {
      regress_mode = true;
    } else if (std::strcmp(a, "--extract-report") == 0) {
      extract_mode = true;
    } else if (std::strcmp(a, "--flame") == 0 && i + 1 < argc) {
      flame_path = argv[++i];
    } else if (std::strcmp(a, "--speedscope") == 0 && i + 1 < argc) {
      speedscope_path = argv[++i];
    } else if (std::strcmp(a, "--otlp-json") == 0 && i + 1 < argc) {
      otlp_path = argv[++i];
    } else if (std::strcmp(a, "--tolerance") == 0 && i + 1 < argc) {
      const std::string kv = argv[++i];
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos ||
          !tol.set(kv.substr(0, eq), kv.substr(eq + 1))) {
        std::cerr << "bad --tolerance setting: " << kv << "\n";
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--tolerance-config") == 0 && i + 1 < argc) {
      const char* path = argv[++i];
      std::ifstream is(path);
      if (!is) {
        std::cerr << "cannot open tolerance config: " << path << "\n";
        return 1;
      }
      try {
        analyze::read_tolerances(is, tol);
      } catch (const std::exception& e) {
        std::cerr << path << ": " << e.what() << "\n";
        return 1;
      }
    } else if (std::strcmp(a, "--report=json") == 0) {
      json = true;
    } else if (std::strcmp(a, "--report=table") == 0 ||
               std::strcmp(a, "--report") == 0) {
      json = false;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      return usage(argv[0]);
    } else if (a[0] == '-') {
      std::cerr << "unknown option: " << a << "\n";
      return usage(argv[0]);
    } else {
      inputs.push_back(a);
    }
  }
  if (inputs.empty()) return usage(argv[0]);
  if (regress_mode) return run_regress(inputs, tol, out_path);
  if (extract_mode) return run_extract(inputs, out_path);
  if (!otlp_path.empty() && !obs::otlp_enabled()) {
    std::cerr << "--otlp-json: this build has no OTLP exporter "
                 "(reconfigure with -DNBCTUNE_OTLP=ON)\n";
    return 2;
  }

  std::vector<analyze::ScenarioTrace> traces;
  for (const std::string& path : inputs) {
    std::ifstream is(path);
    if (!is) {
      std::cerr << "cannot open trace file: " << path << "\n";
      return 1;
    }
    try {
      std::vector<analyze::ScenarioTrace> batch = analyze::read_chrome(is);
      for (auto& t : batch) traces.push_back(std::move(t));
    } catch (const std::exception& e) {
      std::cerr << path << ": " << e.what() << "\n";
      return 1;
    }
  }

  analyze::Report report = analyze::analyze(traces, opts);
  if (!flame_path.empty()) {
    std::ofstream os(flame_path);
    if (!os) {
      std::cerr << "cannot write collapsed stacks: " << flame_path << "\n";
      return 1;
    }
    obs::write_collapsed(os, report);
    std::cerr << "flame: " << obs::profile_total_weight_ns(report)
              << " ns of blame -> " << flame_path << "\n";
  }
  if (!speedscope_path.empty()) {
    std::ofstream os(speedscope_path);
    if (!os) {
      std::cerr << "cannot write speedscope profile: " << speedscope_path
                << "\n";
      return 1;
    }
    obs::write_speedscope(os, report);
    std::cerr << "speedscope: " << report.scenarios.size()
              << " profile(s) -> " << speedscope_path << "\n";
  }
  if (!otlp_path.empty()) {
    std::ofstream os(otlp_path);
    if (!os) {
      std::cerr << "cannot write OTLP spans: " << otlp_path << "\n";
      return 1;
    }
    obs::write_otlp(os, traces);
    std::cerr << "otlp: " << traces.size() << " trace(s) -> " << otlp_path
              << "\n";
  }
  if (!counters_path.empty()) {
    std::ifstream is(counters_path);
    if (!is) {
      std::cerr << "cannot open counters file: " << counters_path << "\n";
      return 1;
    }
    report.session_counters = analyze::read_counters(is);
  }

  std::ostringstream body;
  if (json) {
    analyze::write_json(body, report);
  } else {
    analyze::write_table(body, report);
  }
  if (out_path.empty()) {
    std::cout << body.str();
  } else {
    std::ofstream os(out_path);
    if (!os) {
      std::cerr << "cannot write report: " << out_path << "\n";
      return 1;
    }
    os << body.str();
    std::cerr << "report: " << traces.size() << " scenario(s) -> " << out_path
              << "\n";
  }

  // Exit non-zero when a guideline fails, so CI can gate on it.
  for (const auto& g : report.guidelines) {
    if (g.checked > 0 && g.passed != g.checked) return 3;
  }
  return 0;
}
